"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
``pip install -e .`` cannot build the editable wheel that PEP 660
requires.  This shim lets ``python setup.py develop`` (which pip falls
back to with ``--no-build-isolation`` on legacy setuptools) install the
package in editable mode; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
