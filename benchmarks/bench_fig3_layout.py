"""Bench: Figure 3 — layout of the circuits with the on-chip sensor.

The die photo itself cannot be reproduced in software; this bench
regenerates its *structure*: the AES block, the four Trojan regions and
the A2 cell each in their own placement region, the spiral sensor
covering the whole die on the topmost metal layer, and the sensor's
area/wiring overhead statistics.
"""

import numpy as np
from conftest import run_once

from repro.layout.floorplan import Floorplan


def _layout_report(chip) -> dict:
    fp: Floorplan = chip.floorplan
    sensor = chip.sensor
    coil_trace_area = sensor.length() * sensor.trace_width
    return {
        "floorplan": fp.summary(),
        "sensor": sensor.describe(),
        "die_area_mm2": fp.die.area * 1e6,
        "coil_metal_fraction": coil_trace_area / fp.die.area,
        "n_segments": chip.grid.n_segments,
    }


def test_fig3_layout(benchmark, chip):
    report = run_once(benchmark, _layout_report, chip)

    print("\n=== Figure 3: layout with on-chip sensor ===")
    print(report["floorplan"])
    print(report["sensor"])
    print(f"die area: {report['die_area_mm2']:.3f} mm^2")
    print(
        f"sensor metal usage: {100 * report['coil_metal_fraction']:.1f}% of "
        "the top-layer area (the only change to the original design)"
    )
    print(f"power grid: {report['n_segments']} segments")

    # Every subsystem of the paper's die is present as a region.
    fp = chip.floorplan
    assert set(fp.regions) == {
        "aes", "trojan1", "trojan2", "trojan3", "trojan4", "a2",
    }
    # The AES occupies the dominant block (Fig. 3 left side).
    areas = {g: r.rect.area for g, r in fp.regions.items()}
    assert areas["aes"] > 0.5 * fp.die.area
    # The sensor coil covers the die but stays within it.
    extent = np.abs(
        chip.sensor.polyline[:, :2] - np.array(fp.die.center)
    ).max()
    assert 0.3 * fp.die.width < extent < 0.5 * min(fp.die.width, fp.die.height)
    # Sensor-only top layer: all routing sits below M6.
    z_top = chip.tech.layer("M6").z
    assert chip.grid.seg_start[:, 2].max() < z_top
    # The add-on stays lightweight: coil uses a small share of M6.
    assert report["coil_metal_fraction"] < 0.25
