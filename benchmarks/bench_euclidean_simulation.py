"""Bench: Section IV-C — simulated Euclidean distances of the Trojans.

Paper (on-chip sensor, simulation): T1 = 0.27, T2 = 0.25, T3 = 0.05,
T4 = 0.28 — "those distances are highly distinguishable in the scenario
of simulations".  The shape requirements checked here: every Trojan's
separation clears the golden sampling floor except possibly T3 (the
paper's hardest case), T3 is by far the smallest, and T4 is the
largest.
"""

from conftest import run_once

from repro.experiments.euclidean import PAPER_EUCLIDEAN, run_euclidean_experiment


def test_euclidean_distances_simulation(benchmark, chip, sim_scenario):
    result = run_once(
        benchmark,
        run_euclidean_experiment,
        chip,
        sim_scenario,
    )

    print("\n=== Section IV-C: simulated Euclidean distances ===")
    print(result.format())

    seps = result.separations
    # T3 is the hardest Trojan by a wide margin.
    others = [seps[t] for t in ("trojan1", "trojan2", "trojan4")]
    assert seps["trojan3"] < 0.6 * min(others)
    # T4 (power waster) is the loudest.
    assert seps["trojan4"] == max(seps.values())
    # Every separation is positive and bounded (unit-norm space).
    for name, value in seps.items():
        assert 0 < value < 2.0, name
    # The big three are detected outright.
    for name in ("trojan1", "trojan2", "trojan4"):
        assert result.reports[name].detected, name
    # Order-of-magnitude agreement with the paper's numbers.
    for name, ref in PAPER_EUCLIDEAN.items():
        assert seps[name] < 8 * ref, (name, seps[name], ref)
