"""Bench: design signoff — STA, DRC and power of the full test chip.

The add-on claim of the paper ("can be easily integrated into the IC
design flow ... no runtime performance degradation ... [prior on-chip
structures] cause undesired area and power overhead") as a signoff
run: the die must close timing at 24 MHz, pass DRC, and the passive
sensor must add zero switching power while the dormant Trojans stay
within leakage.
"""

from conftest import run_once

from repro.experiments.campaign import DEFAULT_KEY
from repro.layout.drc import run_drc
from repro.logic.timing import analyze_timing
from repro.power.report import encryption_power_workload, measure_power


def _signoff(chip):
    timing = analyze_timing(chip.netlist, clock_period=chip.config.t_clk)
    drc = run_drc(chip)
    power = measure_power(
        chip.netlist,
        chip.sim,
        chip.tech,
        chip.config.f_clk,
        encryption_power_workload(chip.aes, DEFAULT_KEY, n_cycles=96, batch=8),
    )
    return timing, drc, power


def test_signoff(benchmark, chip):
    timing, drc, power = run_once(benchmark, _signoff, chip)

    print("\n=== signoff: timing ===")
    print(timing.format())
    print("\n=== signoff: DRC ===")
    print(drc.format())
    print("\n=== signoff: power (dormant Trojans) ===")
    print(power.format())

    # Timing closes at the chip's 24 MHz clock.
    assert timing.met, timing.format()
    # Physical design is clean.
    assert drc.clean, drc.format()
    # The sensor is a passive coil: no cells, no power entry at all.
    assert "sensor" not in power.groups
    # Dormant Trojans draw (almost) nothing: their combined non-leakage
    # power stays under 2% of the AES's.
    aes_active = power.groups["aes"].dynamic + power.groups["aes"].clock
    for name, grp in power.groups.items():
        if name.startswith("trojan") or name == "a2":
            assert grp.dynamic + grp.clock < 0.02 * aes_active, name
    # The AES burns single-digit milliwatts at 24 MHz in 180 nm.
    assert 0.3e-3 < power.total < 30e-3
