"""Bench: Figure 6(e)-(h) — on-chip sensor Euclidean-distance histograms.

Paper: "because the on-chip sensor has a higher SNR compared with the
external probe, the peaks of distributions of the original circuit and
Trojan activated circuit are separable", with Trojan 1 showing a
characteristic flattened distribution and Trojan 3 remaining the
hardest case.
"""

import numpy as np
from conftest import run_once

from repro.experiments.fig6 import run_fig6_histograms


def test_fig6_sensor_histograms(benchmark, chip, sil_scenario):
    result = run_once(
        benchmark,
        run_fig6_histograms,
        chip,
        sil_scenario,
        "sensor",
        n_golden=1200,
        n_suspect=1200,
    )

    print("\n=== Figure 6(e)-(h): sensor distance histograms ===")
    print(result.format())
    print("\nTrojan 4 panel (the clearest separation):")
    print(result.panels["trojan4"].histogram.render(width=64, height=8))

    # T4 separates cleanly on the sensor.
    t4 = result.panels["trojan4"]
    assert t4.overlap < 0.5
    assert t4.peak_shift_sigma > 1.0 or t4.overlap < 0.2
    # T1's distribution changes distinctly (paper: a flat peak) — the
    # trojan population spreads and/or shifts against golden.
    t1 = result.panels["trojan1"]
    spread_ratio = float(
        np.std(t1.trojan_distances) / np.std(t1.golden_distances)
    )
    assert t1.overlap < 0.8 or spread_ratio > 1.3
    # T3 stays the hardest Trojan on the sensor as well.
    overlaps = {name: p.overlap for name, p in result.panels.items()}
    assert overlaps["trojan3"] == max(overlaps.values())
