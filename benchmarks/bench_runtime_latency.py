"""Bench: runtime detection latency + Trojan localisation.

Two framework-level figures of merit beyond the paper's tables: how
many encryption windows the streaming monitor needs to raise the alarm
after a Trojan activates, and whether the EM field difference map
points at the Trojan's floorplan region ("location awareness").
"""

from conftest import run_once

from repro.experiments.latency import run_detection_latency
from repro.experiments.localization import run_localization


def test_runtime_detection_latency(benchmark, chip, sim_scenario):
    result = run_once(
        benchmark,
        run_detection_latency,
        chip,
        sim_scenario,
        trojans=("trojan1", "trojan2", "trojan4"),
        horizon=384,
    )

    print("\n=== runtime detection latency ===")
    print(result.format())

    assert result.false_alarms_on_golden == 0
    for trojan in ("trojan1", "trojan2", "trojan4"):
        latency = result.latency_windows[trojan]
        assert latency is not None, f"{trojan} missed"
        # Milliseconds-scale reaction at 24 MHz.
        assert result.latency_seconds(trojan) < 1e-3


def test_trojan_localization(benchmark, chip):
    result = run_once(benchmark, run_localization, chip)

    print("\n=== Trojan localisation (field difference maps) ===")
    print(result.format())

    for trojan in ("trojan1", "trojan2", "trojan4"):
        assert result.localised(trojan), result.located_region[trojan]
