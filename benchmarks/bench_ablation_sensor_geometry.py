"""Bench: ablation — sensor coil geometry and probe standoff.

DESIGN.md §5 items 1 and 4: how the spiral's turn count trades
resistance/area against SNR, and how quickly the external probe's SNR
decays with standoff (the quantitative version of "the signal intensity
of direct EM radiation is closely related to the distance between the
chip and the probe").
"""

from conftest import run_once

from repro.experiments.ablation import sweep_probe_standoff, sweep_sensor_turns


def test_ablation_sensor_turns(benchmark):
    points = run_once(benchmark, sweep_sensor_turns, (4, 8, 12, 16))

    print("\n=== ablation: spiral turns vs sensor SNR ===")
    print(f"{'turns':>6} {'R [ohm]':>9} {'A_eff [mm2]':>12} {'SNR [dB]':>9}")
    for p in points:
        print(
            f"{int(p.parameter):>6} {p.extra['resistance_ohm']:>9.1f} "
            f"{p.extra['effective_area_mm2']:>12.3f} {p.snr_db:>9.2f}"
        )

    # Monotonic electrical trends with turn count.
    resistances = [p.extra["resistance_ohm"] for p in points]
    areas = [p.extra["effective_area_mm2"] for p in points]
    assert resistances == sorted(resistances)
    assert areas == sorted(areas)
    # More turns gather more flux: the 16-turn coil clearly beats the
    # 4-turn one (intermediate points can dip where the spiral's
    # geometry changes which rails it overlays).
    by_turns = {int(p.parameter): p.snr_db for p in points}
    assert by_turns[16] > by_turns[4] + 2.0


def test_ablation_probe_standoff(benchmark):
    points = run_once(benchmark, sweep_probe_standoff)

    print("\n=== ablation: probe standoff vs probe SNR ===")
    print(f"{'standoff [um]':>14} {'SNR [dB]':>9}")
    for p in points:
        print(f"{p.parameter * 1e6:>14.0f} {p.snr_db:>9.2f}")

    # SNR decays monotonically with distance.
    snrs = [p.snr_db for p in points]
    assert snrs == sorted(snrs, reverse=True)
    assert snrs[0] - snrs[-1] > 1.5
