"""Shared fixtures for the benchmark harness.

One chip and one pair of SNR-calibrated scenarios serve every bench;
the benches run each experiment once (``rounds=1``) because a single
campaign already averages thousands of traces internally.
"""

from __future__ import annotations

import pytest

from repro.chip import silicon_scenario, simulation_scenario
from repro.chip.calibration import calibrate_scenario
from repro.experiments import shared_chip


@pytest.fixture(scope="session")
def chip():
    """The paper's full test chip."""
    return shared_chip(seed=1)


@pytest.fixture(scope="session")
def sim_scenario(chip):
    """Calibrated Section IV (simulation) scenario."""
    return calibrate_scenario(chip, simulation_scenario())


@pytest.fixture(scope="session")
def sil_scenario(chip):
    """Calibrated Section V (fabricated chip) scenario."""
    return calibrate_scenario(chip, silicon_scenario())


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
