"""Shared fixtures for the benchmark harness.

One chip and one pair of SNR-calibrated scenarios serve every bench;
the benches run each experiment once (``rounds=1``) because a single
campaign already averages thousands of traces internally.

Pass ``--bench-json FILE`` to append this run's timings to *FILE* as
one JSON snapshot (a list of runs accumulates across invocations), so
the perf trajectory survives across PRs::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_kernels.py \
        -q --bench-json BENCH_perf_kernels.json
"""

from __future__ import annotations

import datetime
import json
import os
import platform
from pathlib import Path

import pytest

from repro.chip import silicon_scenario, simulation_scenario
from repro.chip.calibration import calibrate_scenario
from repro.experiments import shared_chip

#: Timings recorded by :func:`run_once` during this session.
_BENCH_RESULTS: list[dict] = []


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="FILE",
        help="append this run's benchmark timings to FILE as one JSON "
        "snapshot (the file holds a list of snapshots)",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json", default=None)
    if not path or not _BENCH_RESULTS:
        return
    snapshot = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "results": _BENCH_RESULTS,
    }
    target = Path(path)
    history: list = []
    if target.exists():
        try:
            history = json.loads(target.read_text())
        except (OSError, ValueError):
            history = []
        if not isinstance(history, list):
            history = [history]
    history.append(snapshot)
    target.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="session")
def chip():
    """The paper's full test chip."""
    return shared_chip(seed=1)


@pytest.fixture(scope="session")
def sim_scenario(chip):
    """Calibrated Section IV (simulation) scenario."""
    return calibrate_scenario(chip, simulation_scenario())


@pytest.fixture(scope="session")
def sil_scenario(chip):
    """Calibrated Section V (fabricated chip) scenario."""
    return calibrate_scenario(chip, silicon_scenario())


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    result = benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    record_timing(benchmark.name, benchmark.stats.stats.mean)
    return result


def record_timing(name: str, seconds: float, **extra) -> None:
    """Add one timing to the session's ``--bench-json`` snapshot."""
    _BENCH_RESULTS.append({"name": name, "seconds": float(seconds), **extra})
