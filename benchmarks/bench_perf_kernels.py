"""Bench: the performance layer — EM kernels, acquisition, campaigns.

Timings (and speedups against the retained loop reference
implementations) for the three hot paths every figure funnels through:
the Biot–Savart field solver, the Neumann mutual-inductance quadrature,
and the cycle-by-cycle acquisition engine — plus the parallel campaign
runner.  Sizes mirror real use: a full-die field map is ~2000 power-grid
segments × a 40×40 surface grid, and the coil couples through a 64-side
spiral approximation.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import record_timing, run_once

from repro.chip.acquire import AcquisitionEngine, EncryptionWorkload
from repro.logic.simulator import BACKEND_ENV_VAR
from repro.em.biot_savart import (
    _b_field_of_segments_loop,
    b_field_of_segments,
)
from repro.em.mutual import (
    _mutual_inductance_to_loop_loop,
    mutual_inductance_to_loop,
)
from repro.experiments import campaign_spec, run_campaigns

N_SEGMENTS = 2000
N_POINTS = 1600  # 40 x 40 surface grid


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _grid_geometry(rng: np.random.Generator):
    """Axis-aligned power-grid-like segments over a 2x2 mm die."""
    s = np.zeros((N_SEGMENTS, 3))
    s[:, 0] = rng.uniform(0.0, 2e-3, N_SEGMENTS)
    s[:, 1] = rng.uniform(0.0, 2e-3, N_SEGMENTS)
    e = s.copy()
    half = N_SEGMENTS // 2
    e[:half, 0] += 25e-6  # rail stubs along x
    e[half:, 1] += rng.choice([-1.0, 1.0], N_SEGMENTS - half) * 150e-6
    currents = rng.normal(size=N_SEGMENTS)
    gx, gy = np.meshgrid(np.linspace(0, 2e-3, 40), np.linspace(0, 2e-3, 40))
    points = np.stack(
        [gx.ravel(), gy.ravel(), np.full(gx.size, 10e-6)], axis=1
    )
    return s, e, currents, points


def test_biot_savart_kernel(benchmark):
    """Vectorised field solver ≥ 5× over the per-segment loop."""
    rng = np.random.default_rng(2020)
    s, e, currents, points = _grid_geometry(rng)

    field = run_once(benchmark, b_field_of_segments, s, e, currents, points)
    t_vec = _best_of(lambda: b_field_of_segments(s, e, currents, points))
    t_loop = _best_of(
        lambda: _b_field_of_segments_loop(s, e, currents, points), repeats=1
    )
    reference = _b_field_of_segments_loop(s, e, currents, points)

    speedup = t_loop / t_vec
    record_timing("biot_savart_loop_reference", t_loop, speedup=speedup)
    print(
        f"\nb_field_of_segments (N={N_SEGMENTS}, P={N_POINTS}): "
        f"{t_vec * 1e3:.0f} ms vs loop {t_loop * 1e3:.0f} ms "
        f"-> {speedup:.1f}x"
    )
    rel = np.max(np.abs(field - reference)) / np.max(np.abs(reference))
    assert rel <= 1e-12, rel
    assert speedup >= 5.0, speedup


def test_mutual_inductance_kernel(benchmark):
    """Vectorised Neumann quadrature beats the per-coil-segment loop."""
    rng = np.random.default_rng(2021)
    s, e, _currents, _points = _grid_geometry(rng)
    theta = np.linspace(0.0, 2.0 * np.pi, 65)
    coil = np.stack(
        [
            1e-3 + 4e-4 * np.cos(theta),
            1e-3 + 4e-4 * np.sin(theta),
            np.full(theta.size, 10e-6),
        ],
        axis=1,
    )

    m = run_once(benchmark, mutual_inductance_to_loop, s, e, coil)
    t_vec = _best_of(lambda: mutual_inductance_to_loop(s, e, coil))
    t_loop = _best_of(
        lambda: _mutual_inductance_to_loop_loop(s, e, coil), repeats=1
    )
    reference = _mutual_inductance_to_loop_loop(s, e, coil)

    speedup = t_loop / t_vec
    record_timing("mutual_inductance_loop_reference", t_loop, speedup=speedup)
    print(
        f"\nmutual_inductance_to_loop (N={N_SEGMENTS}, C=64): "
        f"{t_vec * 1e3:.0f} ms vs loop {t_loop * 1e3:.0f} ms "
        f"-> {speedup:.1f}x"
    )
    rel = np.max(np.abs(m - reference)) / np.max(np.abs(reference))
    assert rel <= 1e-12, rel
    assert speedup >= 1.5, speedup


def test_acquisition_engine(benchmark, chip, sim_scenario):
    """Cycle loop throughput at a realistic campaign size."""
    engine = AcquisitionEngine(chip, sim_scenario)
    workload = EncryptionWorkload(chip.aes, b"\x2b" * 16, period=12)
    result = run_once(
        benchmark,
        engine.acquire,
        workload,
        n_cycles=120,
        batch=32,
        rng_role="bench/acquire",
    )
    assert set(result.traces) == set(chip.receivers)
    print(
        f"\nacquire (120 cycles x batch 32): "
        f"{benchmark.stats.stats.mean:.2f} s"
    )


def test_packed_backend_speedup(benchmark, chip, sim_scenario):
    """Bit-sliced backend: exact bool equality, ≥4× over the reference.

    Sensor-only and noise-free so the measurement isolates the cycle
    loop + activity fold the bit-sliced backend targets.  With
    ``REPRO_BENCH_SMOKE=1`` (the CI smoke job) a small configuration
    runs instead and only the packed-vs-bool equality is enforced.
    """
    smoke = os.environ.get("REPRO_BENCH_SMOKE") == "1"
    batch = 64 if smoke else 256
    n_cycles = 48 if smoke else 120
    engine = AcquisitionEngine(chip, sim_scenario)
    kw = dict(
        n_cycles=n_cycles,
        batch=batch,
        receivers=("sensor",),
        include_noise=False,
        rng_role="bench/packed",
    )

    def acquire(backend=None, **extra):
        prev = os.environ.get(BACKEND_ENV_VAR)
        if backend is not None:
            os.environ[BACKEND_ENV_VAR] = backend
        try:
            return engine.acquire(
                EncryptionWorkload(chip.aes, b"\x2b" * 16, period=12),
                **kw,
                **extra,
            )
        finally:
            if backend is not None:
                if prev is None:
                    del os.environ[BACKEND_ENV_VAR]
                else:
                    os.environ[BACKEND_ENV_VAR] = prev

    packed = run_once(benchmark, acquire, "packed")
    t_packed = _best_of(lambda: acquire("packed"), repeats=1)
    t_packed = min(t_packed, benchmark.stats.stats.mean)
    boolr = acquire("bool")
    t_reference = _best_of(lambda: acquire(reference_fold=True), repeats=1)

    assert np.array_equal(
        packed.traces["sensor"], boolr.traces["sensor"]
    ), "packed backend diverged from bool backend"

    speedup = t_reference / t_packed
    record_timing(
        "packed_backend_reference",
        t_reference,
        speedup=speedup,
        batch=batch,
        n_cycles=n_cycles,
        smoke=smoke,
    )
    print(
        f"\npacked acquire ({n_cycles} cycles x batch {batch}): "
        f"{t_packed:.2f} s vs reference {t_reference:.2f} s "
        f"-> {speedup:.1f}x"
    )
    if not smoke:
        assert speedup >= 4.0, speedup


def test_parallel_campaign_sweep(benchmark, chip, sim_scenario):
    """4-campaign Trojan sweep: parallel output identical to serial."""
    trojans = ("trojan1", "trojan2", "trojan3", "trojan4")
    specs = [
        campaign_spec(
            name,
            "ed",
            chip,
            sim_scenario,
            n_traces=48,
            batch=16,
            trojan_enables=(name,),
            receivers=("sensor",),
            rng_role=f"bench/{name}",
        )
        for name in trojans
    ]

    t0 = time.perf_counter()
    serial = run_campaigns(specs, workers=1)
    t_serial = time.perf_counter() - t0

    parallel = run_once(benchmark, run_campaigns, specs, workers=4)
    t_parallel = benchmark.stats.stats.mean

    speedup = t_serial / t_parallel
    record_timing(
        "campaign_sweep_serial",
        t_serial,
        speedup=speedup,
        workers=4,
        cpu_count=os.cpu_count(),
    )
    print(
        f"\n4-campaign sweep: serial {t_serial:.1f} s, "
        f"4 workers {t_parallel:.1f} s -> {speedup:.1f}x "
        f"({os.cpu_count()} CPUs)"
    )
    for name in trojans:
        assert np.array_equal(
            serial[name]["sensor"], parallel[name]["sensor"]
        ), name
    # The fan-out can only beat the serial loop when the machine has
    # cores to fan onto.  On a single-CPU host run_campaigns degrades
    # to the serial loop on its own (a pool there measured 0.79× of
    # serial), so the "speedup" must sit near 1.0 — anything well below
    # means the auto-degrade regressed and pool overhead leaked back in.
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, speedup
    elif (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.2, speedup
    else:
        assert speedup >= 0.85, speedup
