"""Bench: Figure 4 — A2 Trojan detection in the frequency domain.

The triggered A2 pump adds a comb at f_clk/3 (a spot the original
circuit never occupies — the paper's "newly added frequency spot"
case); the detection criterion is the magnitude change at that spot.
"""

from conftest import run_once

from repro.experiments.fig4 import run_a2_spectrum


def test_fig4_a2_spectrum(benchmark, chip, sim_scenario):
    result = run_once(
        benchmark, run_a2_spectrum, chip, sim_scenario, n_cycles=2048
    )

    print("\n=== Figure 4: A2 Trojan detection in the frequency domain ===")
    print(result.format())

    assert result.detected
    # The activation line stands well above the original spectrum.
    assert result.magnitude_ratio_at_trigger() > 1.5
    # The trigger frequency avoids the clock comb entirely.
    f_clk = chip.config.f_clk
    ratio = result.trigger_frequency / f_clk
    assert abs(ratio - round(ratio)) > 0.2
    # Time-domain invisibility is the point of A2: the trigger line is
    # tiny in absolute terms compared with the clock line.
    clock_amp = result.golden.magnitude_at(f_clk)
    trig_amp = result.triggered.magnitude_at(result.trigger_frequency)
    assert trig_amp < 0.5 * clock_amp
