"""Bench: Section IV-B — simulated SNR of on-chip sensor vs external probe.

Paper: sensor 29.976 dB, probe 17.483 dB.  The absolute values are
anchored by the SNR calibration (see DESIGN.md); the bench verifies the
measurement procedure reproduces them and that the sensor's advantage
is the paper's ~12 dB.
"""

from conftest import run_once

from repro.experiments.snr import PAPER_SNR, run_snr_experiment


def test_snr_simulation(benchmark, chip, sim_scenario):
    result = run_once(benchmark, run_snr_experiment, chip, sim_scenario)

    print("\n=== Section IV-B: simulated SNR ===")
    print(result.format())

    sensor = result.per_receiver["sensor"].snr_db
    probe = result.per_receiver["probe"].snr_db
    paper = PAPER_SNR["simulation"]
    assert abs(sensor - paper["sensor"]) < 2.0
    assert abs(probe - paper["probe"]) < 2.0
    # The headline claim: the on-chip sensor wins by ~12 dB.
    assert 8.0 < sensor - probe < 17.0
