"""Bench: ablation — analysis-pipeline design choices.

DESIGN.md §5 items 2 and 3: PCA depth before the Euclidean distance,
and the paper's Eq. (1) max-intra-golden threshold vs percentile
thresholds.
"""

from conftest import run_once

from repro.experiments.ablation import sweep_pca_dimensions, threshold_study


def test_ablation_pca_dimensions(benchmark, chip, sim_scenario):
    points = run_once(
        benchmark, sweep_pca_dimensions, chip, sim_scenario, "trojan4"
    )

    print("\n=== ablation: PCA depth vs Trojan-4 detection ===")
    print(f"{'components':>11} {'AUC':>7} {'separation':>11}")
    for p in points:
        label = "raw" if p.n_components is None else str(p.n_components)
        print(f"{label:>11} {p.auc:>7.3f} {p.separation:>11.3f}")

    by_depth = {p.n_components: p for p in points}
    # The raw pipeline already detects T4 essentially perfectly.
    assert by_depth[None].auc > 0.9
    # Collapsing to very few components still leaves the loud Trojan
    # visible (its energy dominates the leading components).
    assert by_depth[2].auc > 0.7


def test_ablation_threshold_rules(benchmark, chip, sim_scenario):
    points = run_once(benchmark, threshold_study, chip, sim_scenario, "trojan4")

    print("\n=== ablation: Eq. (1) threshold vs percentile thresholds ===")
    print(f"{'rule':>8} {'threshold':>10} {'TPR':>6} {'FPR':>6}")
    for p in points:
        print(
            f"{p.rule:>8} {p.threshold:>10.3f} "
            f"{p.true_positive_rate:>6.2f} {p.false_positive_rate:>6.2f}"
        )

    by_rule = {p.rule: p for p in points}
    # Eq. (1)'s max threshold is by construction the most conservative:
    # zero false positives on the golden data that defined it.
    assert by_rule["eq1-max"].false_positive_rate == 0.0
    # Percentile thresholds trade false positives for sensitivity.
    assert (
        by_rule["p90"].true_positive_rate
        >= by_rule["eq1-max"].true_positive_rate
    )
    assert by_rule["p90"].false_positive_rate >= 0.05
