"""Bench: Figure 6(a)-(d) — external-probe Euclidean-distance histograms.

Paper: "all the Trojan activated stripes are not separated with the
original circuit's data ... the peaks of distributions of original
circuit and Trojan activated circuit are not separable."  The key
quantitative shape: the probe's golden/Trojan distributions overlap far
more than the sensor's (see the sensor bench), with T3 nearly fully
overlapped.
"""

from conftest import run_once

from repro.experiments.fig6 import run_fig6_histograms


def test_fig6_probe_histograms(benchmark, chip, sil_scenario):
    result = run_once(
        benchmark,
        run_fig6_histograms,
        chip,
        sil_scenario,
        "probe",
        n_golden=1200,
        n_suspect=1200,
    )

    print("\n=== Figure 6(a)-(d): probe distance histograms ===")
    print(result.format())
    print("\nTrojan 3 panel (the most-overlapped case):")
    print(result.panels["trojan3"].histogram.render(width=64, height=8))

    # T3's distributions are almost completely overlapped ("the two EM
    # radiations in Figure 6(c) are almost completely overlapped").
    assert result.panels["trojan3"].overlap > 0.5
    # Overlap ordering follows Trojan size: T3 overlaps most.
    overlaps = {name: p.overlap for name, p in result.panels.items()}
    assert overlaps["trojan3"] == max(overlaps.values())
    # Every distribution remains in the unit-norm range of the paper's
    # axes (0 .. ~1.5).
    for panel in result.panels.values():
        assert panel.trojan_distances.max() < 2.0
