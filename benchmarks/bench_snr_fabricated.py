"""Bench: Section V-A — measured SNR on the fabricated chip.

Paper: sensor 30.5489 dB, probe 13.8684 dB.  The probe must degrade
relative to the Section IV simulation (packaging, bench noise, scope)
while the sensor holds — the asymmetry that motivates the whole paper.
"""

from conftest import run_once

from repro.experiments.snr import PAPER_SNR, run_snr_experiment


def test_snr_fabricated(benchmark, chip, sim_scenario, sil_scenario):
    result = run_once(benchmark, run_snr_experiment, chip, sil_scenario)

    print("\n=== Section V-A: fabricated-chip SNR ===")
    print(result.format())

    sensor = result.per_receiver["sensor"].snr_db
    probe = result.per_receiver["probe"].snr_db
    paper = PAPER_SNR["silicon"]
    assert abs(sensor - paper["sensor"]) < 2.0
    assert abs(probe - paper["probe"]) < 2.0
    # Shape: silicon widens the gap to ~17 dB.
    assert sensor - probe > 12.0

    # Cross-scenario shape: the probe loses SNR on silicon, the sensor
    # does not (compare against the simulation scenario).
    sim_result = run_snr_experiment(chip, sim_scenario)
    assert probe < sim_result.per_receiver["probe"].snr_db
    assert abs(sensor - sim_result.per_receiver["sensor"].snr_db) < 2.5
