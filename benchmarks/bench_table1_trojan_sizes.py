"""Bench: Table I — Trojan sizes compared to the whole AES design.

Regenerates the paper's Table I from the generated netlists and prints
both next to each other.
"""

from conftest import run_once

from repro.experiments.table1 import PAPER_TABLE1, run_table1


def test_table1_trojan_sizes(benchmark, chip):
    result = run_once(benchmark, run_table1, chip)

    print("\n=== Table I: Trojan sizes compared to the whole AES design ===")
    print(result.format())
    print("\npaper reference:")
    for name, (gates, pct) in PAPER_TABLE1.items():
        gate_txt = f"{gates}" if gates is not None else "n/a"
        print(f"  {name:<9} gates={gate_txt:<7} {pct}%")

    by_name = {row.circuit: row for row in result.rows}
    # Shape assertions: each Trojan's relative size stays in the
    # paper's class, and the ordering T2 ~= T4 > T1 >> T3 holds.
    assert 4.0 < by_name["trojan1"].percentage < 7.0
    assert 7.0 < by_name["trojan2"].percentage < 10.0
    assert 0.4 < by_name["trojan3"].percentage < 1.2
    assert 7.0 < by_name["trojan4"].percentage < 10.0
    assert by_name["a2"].is_area_percentage
    assert by_name["a2"].percentage < 0.2
