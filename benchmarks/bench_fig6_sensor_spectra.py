"""Bench: Figure 6(i)-(l) — sensor FFT spectra of the four Trojans.

Paper's reading: T1 "introduces extra energy at a lower frequency
range"; T2 and T4 introduce "significant amplitude increase in a number
of frequency spots" with T4's peaks higher than T2's; T3's "frequency
spots are not distinguished clearly because of the extreme low
overhead".
"""

from conftest import run_once

from repro.experiments.fig6 import run_fig6_spectra


def test_fig6_sensor_spectra(benchmark, chip, sil_scenario):
    result = run_once(
        benchmark,
        run_fig6_spectra,
        chip,
        sil_scenario,
        n_cycles=2048,
    )

    print("\n=== Figure 6(i)-(l): sensor spectra ===")
    print(result.format())
    for name, panel in result.panels.items():
        g12 = panel.suspect.magnitude_at(12e6) / panel.golden.magnitude_at(12e6)
        g750 = panel.suspect.magnitude_at(750e3) / panel.golden.magnitude_at(750e3)
        print(f"  {name}: 750 kHz x{g750:.2f}, 12 MHz x{g12:.2f}")

    panels = result.panels
    # (i) T1 adds low-frequency energy (its 750 kHz carrier comb).
    assert panels["trojan1"].low_freq_energy_ratio > 1.25
    # (l) T4 lifts its 12 MHz-comb spots strongly...
    t4_12 = panels["trojan4"].suspect.magnitude_at(12e6) / panels[
        "trojan4"
    ].golden.magnitude_at(12e6)
    assert t4_12 > 1.3
    # ...more than T2 lifts the same spots ("overall energy peaks for
    # Trojan 4 are higher than that for Trojan 2").
    t2_12 = panels["trojan2"].suspect.magnitude_at(12e6) / panels[
        "trojan2"
    ].golden.magnitude_at(12e6)
    assert t4_12 > t2_12
    # (k) T3 remains spectrally indistinct.
    assert 0.7 < panels["trojan3"].total_energy_ratio < 1.4
    assert panels["trojan3"].low_freq_energy_ratio < panels[
        "trojan1"
    ].low_freq_energy_ratio
