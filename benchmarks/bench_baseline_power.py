"""Bench: power-fingerprinting baseline vs the EM framework.

Two studies behind the paper's motivation:

* runtime self-reference — both channels fingerprint the same die they
  were trained on;
* the classical cross-chip setting of Agrawal et al. [3] — the golden
  model comes from *other* dies, so process variation is in the
  reference and small Trojans drown ("attackers evade those
  approaches"), while the runtime framework still detects them.
"""

from conftest import run_once

from repro.chip import silicon_scenario, simulation_scenario
from repro.experiments.baseline_power import (
    build_power_baseline_chip,
    run_crosschip_study,
    run_power_baseline,
)


def test_baseline_power_self_reference(benchmark):
    chip = build_power_baseline_chip(seed=1)
    result = run_once(
        benchmark, run_power_baseline, chip, simulation_scenario()
    )

    print("\n=== baseline: EM sensor vs power shunt (self-reference) ===")
    print(result.format())

    # Self-reference is powerful: both channels rank the Trojans the
    # same way and T3 stays the hardest on both.
    assert min(result.sensor, key=result.sensor.get) == "trojan3"
    assert min(result.power, key=result.power.get) == "trojan3"
    assert result.sensor["trojan4"] == max(result.sensor.values())


def test_baseline_crosschip_process_variation(benchmark, chip, sil_scenario):
    result = run_once(
        benchmark,
        run_crosschip_study,
        chip,
        sil_scenario,
        n_golden=256,
        n_suspect=192,
    )

    print("\n=== baseline: classical cross-chip fingerprinting ===")
    print(result.format())

    # Process variation separates even the CLEAN device from the fleet.
    assert result.process_gap > 0
    # The classical approach misses at least the small Trojans...
    missed = [
        t for t in ("trojan1", "trojan2", "trojan3")
        if not result.classical_detects(t)
    ]
    assert missed, "process variation should hide the small Trojans"
    # ...which the runtime (self-referenced) framework still catches.
    for trojan in ("trojan1", "trojan2", "trojan4"):
        assert result.runtime_detects(trojan), trojan
