"""Bench: fleet scale-up of the batched scoring engine.

Streams synthetic fleets of increasing size (multiples of the paper's
golden + T1-T4 + A2 line-up, fleet-smoke monitor parameters) and
records, per fleet size:

* **scoring windows/s** for both engines, measured head-to-head over
  identical prematerialised arrival ticks — sequential
  :meth:`MonitorSession.ingest` (the PR 4 baseline path) against one
  :meth:`BatchedFleetMonitor.ingest_tick` per tick.  This isolates the
  scoring path the batched engine replaces; scheduler production,
  feed replay and report assembly are identical constants in both
  modes and are reported separately as the end-to-end wall time.
* the **batched-vs-sequential speedup** (the acceptance gate),
* the **alarm-latency p99** in delivered windows, and
* full end-to-end scheduler wall time under the batched default.

The alarm streams of the two modes must be bit-identical at every
fleet size — the speedup is only admissible because the answers are
exactly the same, which the sweep asserts via complete end-to-end
scheduler runs in both modes before timing anything.

A second sweep scales the same fleets across shard worker processes
(:class:`~repro.fleet.ingest.ShardedFleetScheduler`, socket transport)
and records end-to-end ingest windows/s and alarm-latency p99 per
shard count.  Every sharded run must be bit-identical to the 1-shard
(plain scheduler) run; the >= 3x at-4-shards speedup floor only
applies on a multi-core host (the repo's single-CPU degrade
convention — forked workers cannot beat serial on one core).

Run with ``--bench-json BENCH_fleet_scale.json`` to append the scaling
record; ``REPRO_BENCH_SMOKE=1`` selects the reduced CI sweep and floor.
"""

from __future__ import annotations

import resource
import time

import numpy as np
from conftest import record_timing

from repro.analysis.euclidean import EuclideanDetector
from repro.config import active_config
from repro.fleet import (
    ArrayChunkSource,
    ChunkPlan,
    EventJournal,
    FleetScheduler,
    MetricsRegistry,
    MonitorSession,
    ShardedFleetScheduler,
    StreamingTraceProducer,
    TraceFeed,
)
from repro.framework.batched import BatchedFleetMonitor
from repro.framework.evaluator import EvaluatorConfig, RuntimeTrustEvaluator

#: Fleet-smoke monitor/feed parameters (``FleetConfig.smoke``).
N_GOLDEN, WINDOW, CONFIRM, BATCH, N_WINDOWS = 192, 64, 2, 8, 96

#: Samples per trace window.  Short windows are the deployment-relevant
#: regime (a fleet service scores *many* chips' short sensor windows,
#: not a few long captures) and the regime where per-window Python
#: overhead — the thing the batched engine removes — dominates the
#: sequential path.
SAMPLES = 64

#: Envelope shifts of one paper line-up (golden, T1..T4, A2); larger
#: fleets repeat the pattern.
SHIFTS = (0.0, 0.5, 0.35, 0.25, 0.02, 0.6)

#: Minimum batched-over-sequential scoring windows/s ratio at the
#: largest fleet size (the issue's acceptance target), and a
#: conservative floor for the reduced CI smoke sweep (small fleets on
#: noisy shared runners amortise far less Python overhead per tick).
SPEEDUP_FLOOR = 5.0
SMOKE_SPEEDUP_FLOOR = 1.5

#: Scoring timings take the best of this many interleaved repetitions
#: (alternating modes decorrelates shared-runner noise spikes).
REPS = 4

#: Fleet sizes large enough to amortise per-tick overhead; the
#: acceptance gate applies to the best of these.
AT_SCALE = 24


def _fleet_inputs(n_chips: int, n_windows: int = N_WINDOWS):
    """Evaluator plus *n_chips* labelled synthetic streams."""
    rng = np.random.default_rng(0xF1EE7)
    base = np.sin(np.linspace(0, 15, SAMPLES))
    golden = base[None, :] + 0.05 * rng.normal(size=(N_GOLDEN, SAMPLES))
    detector = EuclideanDetector().fit(golden)
    ev = RuntimeTrustEvaluator.__new__(RuntimeTrustEvaluator)
    ev.detector = detector
    ev.golden_spectrum = None
    ev.fs = 1e9
    ev.config = EvaluatorConfig()
    shape = np.cos(np.linspace(0, 9, SAMPLES))
    streams = {
        f"chip{i:03d}": (base + SHIFTS[i % len(SHIFTS)] * shape)[None, :]
        + 0.05 * rng.normal(size=(n_windows, SAMPLES))
        for i in range(n_chips)
    }
    return ev, streams


def _sessions(ev, streams):
    return [
        MonitorSession(c, ev, window=WINDOW, confirm=CONFIRM,
                       metrics=MetricsRegistry(), journal=EventJournal())
        for c in streams
    ]


def _feeds(streams):
    return [
        TraceFeed(c, streams[c], batch=BATCH, seed=11) for c in streams
    ]


def _run_scheduler(ev, streams, scoring: str):
    """Full end-to-end fleet run (bit-identity + latency ground truth)."""
    scheduler = FleetScheduler(_sessions(ev, streams), scoring=scoring)
    start = time.perf_counter()
    result = scheduler.run(_feeds(streams))
    return result, time.perf_counter() - start


def _materialize_ticks(streams):
    """The scheduler's arrival schedule as explicit per-tick batches."""
    feeds = {f.chip_id: f for f in _feeds(streams)}
    n_batches = max(f.n_batches for f in feeds.values())
    return [
        [
            (chip_id, feeds[chip_id].batch_at(i))
            for chip_id in streams
            if i < feeds[chip_id].n_batches
        ]
        for i in range(n_batches)
    ]


def _time_scoring(ev, streams, ticks) -> tuple[float, float]:
    """Best-of-REPS wall times (sequential, batched), interleaved."""
    best_seq = best_bat = float("inf")
    for _ in range(REPS):
        sessions = {s.chip_id: s for s in _sessions(ev, streams)}
        pair_ticks = [
            [(sessions[c], b) for c, b in tick] for tick in ticks
        ]
        start = time.perf_counter()
        for tick in pair_ticks:
            for session, batch in tick:
                session.ingest(batch)
        best_seq = min(best_seq, time.perf_counter() - start)

        sessions = {s.chip_id: s for s in _sessions(ev, streams)}
        pair_ticks = [
            [(sessions[c], b) for c, b in tick] for tick in ticks
        ]
        engine = BatchedFleetMonitor(sessions.values())
        start = time.perf_counter()
        for tick in pair_ticks:
            engine.ingest_tick(tick)
        best_bat = min(best_bat, time.perf_counter() - start)
    return best_seq, best_bat


def test_fleet_scale(capsys):
    smoke = active_config().bench_smoke
    chip_counts = (6, 12) if smoke else (6, 12, 24, 48, 96, 192)
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    rows = []
    for n_chips in chip_counts:
        ev, streams = _fleet_inputs(n_chips)

        # The speedup is only admissible with identical answers: full
        # end-to-end runs in both modes must agree chip by chip.
        r_seq, _ = _run_scheduler(ev, streams, "sequential")
        r_bat, t_wall = _run_scheduler(ev, streams, "batched")
        for chip in streams:
            assert (
                r_bat.reports[chip].alarms == r_seq.reports[chip].alarms
            ), f"{chip}: scoring modes diverged at {n_chips} chips"

        latencies = [
            r.first_alarm_window
            for r in r_bat.reports.values()
            if r.first_alarm_window is not None
        ]
        assert latencies, "no chip alarmed; the sweep lost its signal"
        p99 = float(np.percentile(latencies, 99.0))

        # Head-to-head scoring throughput over the identical schedule.
        ticks = _materialize_ticks(streams)
        n_windows = sum(len(b) for tick in ticks for _, b in tick)
        t_seq, t_bat = _time_scoring(ev, streams, ticks)
        wps_seq = n_windows / t_seq
        wps_bat = n_windows / t_bat
        speedup = wps_bat / wps_seq
        rows.append((n_chips, wps_seq, wps_bat, speedup, p99))
        record_timing(
            f"fleet_scale[{n_chips}chips]",
            t_bat,
            chips=n_chips,
            windows=n_windows,
            windows_per_s_sequential=wps_seq,
            windows_per_s_batched=wps_bat,
            speedup=speedup,
            alarm_latency_p99_windows=p99,
            end_to_end_s=t_wall,
        )

    with capsys.disabled():
        print("\n=== fleet scale: batched vs sequential scoring ===")
        print(f"  {'chips':>5} {'seq w/s':>10} {'batched w/s':>12} "
              f"{'speedup':>8} {'alarm p99':>10}")
        for n_chips, wps_seq, wps_bat, speedup, p99 in rows:
            print(f"  {n_chips:>5} {wps_seq:>10.0f} {wps_bat:>12.0f} "
                  f"{speedup:>7.1f}x {p99:>9.0f}w")

    # Scaling acceptance: the fleet must clear the floor at scale
    # (small fleets amortise too little per-tick overhead to count,
    # and a single shared-runner noise spike must not fail the gate).
    at_scale = [r for r in rows if r[0] >= AT_SCALE] or rows[-1:]
    best = max(r[3] for r in at_scale)
    assert best >= floor, (
        f"batched speedup peaked at {best:.1f}x, below the {floor:.1f}x "
        f"floor (fleet sizes >= {at_scale[0][0]} chips)"
    )


# ---------------------------------------------------------------------
# Shard scale-out sweep (the sharded multi-process fleet service).

#: Shard worker counts of the scale-out sweep.
SHARD_COUNTS = (1, 2, 4)

#: Minimum 4-shard-over-1-shard end-to-end windows/s ratio at the
#: largest fleet size.  Only enforced on hosts with at least 4 CPUs:
#: on fewer cores the forked workers time-slice one another and the
#: sweep records the (honest, <1x) numbers without gating on them.
SHARD_SPEEDUP_FLOOR = 3.0

#: End-to-end runs per (fleet size, shard count); best-of wall time.
SHARD_REPS = 2


def _run_shard_topology(ev, streams, n_shards: int):
    """One end-to-end run at *n_shards* (1 = the plain serial path)."""
    if n_shards == 1:
        scheduler = FleetScheduler(
            _sessions(ev, streams), scoring="batched"
        )
    else:
        scheduler = ShardedFleetScheduler(
            _sessions(ev, streams),
            scoring="batched",
            shards=n_shards,
            transport="socket",
        )
    start = time.perf_counter()
    result = scheduler.run(_feeds(streams))
    return result, time.perf_counter() - start


def test_fleet_shard_scale(capsys):
    smoke = active_config().bench_smoke
    chip_counts = (12,) if smoke else (24, 96)
    host_cpus = active_config().host_cpus
    rows = []
    for n_chips in chip_counts:
        ev, streams = _fleet_inputs(n_chips)
        reference = None
        baseline_wps = None
        for n_shards in SHARD_COUNTS:
            best = float("inf")
            result = None
            for _ in range(SHARD_REPS):
                result, wall = _run_shard_topology(ev, streams, n_shards)
                best = min(best, wall)
            if reference is None:
                reference = result
            else:
                # Scale-out is only admissible with identical answers.
                for chip in streams:
                    assert (
                        result.reports[chip].alarms
                        == reference.reports[chip].alarms
                    ), f"{chip}: {n_shards} shards diverged from serial"
            latencies = [
                r.first_alarm_window
                for r in result.reports.values()
                if r.first_alarm_window is not None
            ]
            assert latencies, "no chip alarmed; the sweep lost its signal"
            p99 = float(np.percentile(latencies, 99.0))
            wps = result.windows_ingested / best
            if baseline_wps is None:
                baseline_wps = wps
            speedup = wps / baseline_wps
            rows.append((n_chips, n_shards, wps, speedup, p99))
            record_timing(
                f"fleet_shard_scale[{n_chips}chips x{n_shards}shards]",
                best,
                chips=n_chips,
                shards=n_shards,
                windows=result.windows_ingested,
                windows_per_s=wps,
                speedup_vs_single_process=speedup,
                alarm_latency_p99_windows=p99,
                host_cpus=host_cpus,
            )

    with capsys.disabled():
        print("\n=== fleet scale-out: shard workers (socket) ===")
        print(f"  {'chips':>5} {'shards':>6} {'w/s':>10} "
              f"{'vs 1-shard':>10} {'alarm p99':>10}")
        for n_chips, n_shards, wps, speedup, p99 in rows:
            print(f"  {n_chips:>5} {n_shards:>6} {wps:>10.0f} "
                  f"{speedup:>9.2f}x {p99:>9.0f}w")
        if host_cpus < 4:
            print(f"  ({host_cpus}-CPU host: shard speedup floor not "
                  f"enforced)")

    # The >= 3x floor needs 4 cores to be physically reachable; the
    # bit-identity assertions above gate every host.
    if not smoke and host_cpus >= 4:
        at_scale = max(cc for cc, *_ in rows)
        best = max(
            speedup for cc, ns, _, speedup, _ in rows
            if cc == at_scale and ns == max(SHARD_COUNTS)
        )
        assert best >= SHARD_SPEEDUP_FLOOR, (
            f"4-shard speedup peaked at {best:.1f}x, below the "
            f"{SHARD_SPEEDUP_FLOOR:.1f}x floor at {at_scale} chips"
        )


# ---------------------------------------------------------------------
# Streaming ingest sweep: time-to-first-verdict and peak memory.

#: The ingest sweep models the *full-size* fleet campaign (384
#: windows per chip, the ``FleetConfig`` default): streaming's payoff
#: is the generation of everything past the first verdict, so the
#: honest measurement needs the deployment-size window count, not the
#: smoke one (where a verdict ~2/3 in caps the saving at ~1.5x).
STREAM_N_WINDOWS = 384
SMOKE_STREAM_N_WINDOWS = 96

#: Windows per streamed chunk and the monitor sliding window of the
#: ingest sweep.  The short window alarms a strongly shifted chip
#: ~35 windows in — chunk 16 keeps the generation the verdict must
#: wait for fine-grained (3 chunks, not half the campaign).
STREAM_CHUNK = 16
STREAM_WINDOW = 32

#: Modelled acquisition cost per campaign window.  The synthetic
#: streams are free to slice, so the sweep charges the generation side
#: explicitly — the regime the streaming pipeline targets is the real
#: campaign's, where trace acquisition dominates scoring.
GEN_COST_PER_WINDOW_S = 0.004
SMOKE_GEN_COST_PER_WINDOW_S = 0.001

#: Minimum replay-over-stream time-to-first-verdict ratio.  Replay
#: pays the whole campaign's generation before the first window is
#: scored; streaming pays roughly one chunk of it, so the ratio
#: approaches the chunk count.  Enforced only on multi-core
#: non-smoke runs (the single-CPU degrade convention).
TTFV_FLOOR = 5.0


class CostlyChunkSource:
    """Chunk source bearing an explicit per-window generation cost."""

    def __init__(self, streams, cost_per_window: float) -> None:
        self._inner = ArrayChunkSource(streams)
        self.cost = cost_per_window

    def generate(self, index, lo, hi):
        time.sleep((hi - lo) * self.cost)
        return self._inner.generate(index, lo, hi)


def _peak_rss_mb() -> float:
    """Process-lifetime peak RSS in MiB (monotone across the sweep)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _stream_build(ev, streams):
    metrics = MetricsRegistry()
    journal = EventJournal()
    sessions = [
        MonitorSession(c, ev, window=STREAM_WINDOW, confirm=CONFIRM,
                       metrics=metrics, journal=journal)
        for c in streams
    ]
    scheduler = FleetScheduler(
        sessions, scoring="batched", journal=journal, metrics=metrics
    )
    return scheduler, metrics


def test_fleet_stream_ttfv(capsys):
    """Stream vs replay: identical alarms, far earlier first verdict."""
    smoke = active_config().bench_smoke
    host_cpus = active_config().host_cpus
    n_chips = 6 if smoke else 24
    cost = SMOKE_GEN_COST_PER_WINDOW_S if smoke else GEN_COST_PER_WINDOW_S
    n_windows = SMOKE_STREAM_N_WINDOWS if smoke else STREAM_N_WINDOWS
    ev, streams = _fleet_inputs(n_chips, n_windows=n_windows)
    plan = ChunkPlan(n_windows=n_windows, chunk=STREAM_CHUNK)

    # Replay: the whole campaign is generated (chunk by chunk, same
    # cost model) before the scheduler sees a single window, so its
    # first verdict waits behind all of it.
    source = CostlyChunkSource(streams, cost)
    t0 = time.perf_counter()
    parts: dict[str, list] = {c: [] for c in streams}
    for k in range(plan.n_chunks):
        data = source.generate(k, *plan.bounds(k))
        for c in streams:
            parts[c].append(data[c])
    matrices = {c: np.concatenate(parts[c]) for c in streams}
    gen_s = time.perf_counter() - t0
    scheduler, metrics = _stream_build(ev, streams)
    t0 = time.perf_counter()
    r_replay = scheduler.run(
        [TraceFeed(c, matrices[c], batch=BATCH, seed=11) for c in streams]
    )
    replay_wall = gen_s + time.perf_counter() - t0
    replay_ttfv = (
        gen_s + metrics.snapshot()["gauges"]["fleet.ttfv.seconds"]
    )
    replay_rss = _peak_rss_mb()

    # Stream: generation overlaps scoring; the first verdict only
    # waits for the chunks it actually needs.
    scheduler, metrics = _stream_build(ev, streams)
    producer = StreamingTraceProducer(
        CostlyChunkSource(streams, cost),
        list(streams),
        n_windows=n_windows,
        chunk=STREAM_CHUNK,
        metrics=metrics,
    ).start()
    try:
        t0 = time.perf_counter()
        r_stream = scheduler.run(
            [
                TraceFeed(c, producer.source_for(c), batch=BATCH, seed=11)
                for c in streams
            ]
        )
        producer.join()
        stream_wall = time.perf_counter() - t0
    finally:
        producer.close()
    gauges = metrics.snapshot()["gauges"]
    stream_ttfv = gauges["fleet.ttfv.seconds"]
    buffered_hw = gauges["producer.buffered_windows"]
    stream_rss = _peak_rss_mb()

    # The earlier verdict is only admissible with identical answers.
    for chip in streams:
        assert (
            r_stream.reports[chip].alarms == r_replay.reports[chip].alarms
        ), f"{chip}: ingest modes diverged"
    # Bounded look-ahead: the producer never buffered more than the
    # prefetch window, a fraction of the campaign replay holds whole.
    assert buffered_hw <= 3 * STREAM_CHUNK

    ratio = replay_ttfv / stream_ttfv
    for mode, ttfv, wall, rss in (
        ("replay", replay_ttfv, replay_wall, replay_rss),
        ("stream", stream_ttfv, stream_wall, stream_rss),
    ):
        record_timing(
            f"fleet_stream_ttfv[{n_chips}chips {mode}]",
            wall,
            chips=n_chips,
            ingest=mode,
            windows=n_windows,
            chunk=STREAM_CHUNK,
            gen_cost_per_window_s=cost,
            ttfv_s=ttfv,
            peak_rss_mb=rss,
            buffered_windows_high_water=(
                None if mode == "replay" else int(buffered_hw)
            ),
            ttfv_speedup_vs_replay=(
                None if mode == "replay" else ratio
            ),
            host_cpus=host_cpus,
        )

    with capsys.disabled():
        print("\n=== fleet ingest: stream vs replay ===")
        print(f"  {'mode':>7} {'ttfv':>9} {'wall':>9} {'peak rss':>10}")
        print(f"  {'replay':>7} {replay_ttfv:>8.3f}s {replay_wall:>8.3f}s "
              f"{replay_rss:>8.1f}MB")
        print(f"  {'stream':>7} {stream_ttfv:>8.3f}s {stream_wall:>8.3f}s "
              f"{stream_rss:>8.1f}MB")
        print(f"  first verdict {ratio:.1f}x earlier streamed; producer "
              f"high-water {int(buffered_hw)}/{n_windows} windows")
        if host_cpus < 2 or smoke:
            print(f"  ({host_cpus}-CPU host / smoke: TTFV floor not "
                  f"enforced)")

    if not smoke and host_cpus >= 2:
        assert ratio >= TTFV_FLOOR, (
            f"streamed TTFV only {ratio:.1f}x earlier than replay, "
            f"below the {TTFV_FLOOR:.1f}x floor"
        )
