"""Bench: fleet scale-up of the batched scoring engine.

Streams synthetic fleets of increasing size (multiples of the paper's
golden + T1-T4 + A2 line-up, fleet-smoke monitor parameters) and
records, per fleet size:

* **scoring windows/s** for both engines, measured head-to-head over
  identical prematerialised arrival ticks — sequential
  :meth:`MonitorSession.ingest` (the PR 4 baseline path) against one
  :meth:`BatchedFleetMonitor.ingest_tick` per tick.  This isolates the
  scoring path the batched engine replaces; scheduler production,
  feed replay and report assembly are identical constants in both
  modes and are reported separately as the end-to-end wall time.
* the **batched-vs-sequential speedup** (the acceptance gate),
* the **alarm-latency p99** in delivered windows, and
* full end-to-end scheduler wall time under the batched default.

The alarm streams of the two modes must be bit-identical at every
fleet size — the speedup is only admissible because the answers are
exactly the same, which the sweep asserts via complete end-to-end
scheduler runs in both modes before timing anything.

Run with ``--bench-json BENCH_fleet_scale.json`` to append the scaling
record; ``REPRO_BENCH_SMOKE=1`` selects the reduced CI sweep and floor.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import record_timing

from repro.analysis.euclidean import EuclideanDetector
from repro.config import active_config
from repro.fleet import (
    EventJournal,
    FleetScheduler,
    MetricsRegistry,
    MonitorSession,
    TraceFeed,
)
from repro.framework.batched import BatchedFleetMonitor
from repro.framework.evaluator import EvaluatorConfig, RuntimeTrustEvaluator

#: Fleet-smoke monitor/feed parameters (``FleetConfig.smoke``).
N_GOLDEN, WINDOW, CONFIRM, BATCH, N_WINDOWS = 192, 64, 2, 8, 96

#: Samples per trace window.  Short windows are the deployment-relevant
#: regime (a fleet service scores *many* chips' short sensor windows,
#: not a few long captures) and the regime where per-window Python
#: overhead — the thing the batched engine removes — dominates the
#: sequential path.
SAMPLES = 64

#: Envelope shifts of one paper line-up (golden, T1..T4, A2); larger
#: fleets repeat the pattern.
SHIFTS = (0.0, 0.5, 0.35, 0.25, 0.02, 0.6)

#: Minimum batched-over-sequential scoring windows/s ratio at the
#: largest fleet size (the issue's acceptance target), and a
#: conservative floor for the reduced CI smoke sweep (small fleets on
#: noisy shared runners amortise far less Python overhead per tick).
SPEEDUP_FLOOR = 5.0
SMOKE_SPEEDUP_FLOOR = 1.5

#: Scoring timings take the best of this many interleaved repetitions
#: (alternating modes decorrelates shared-runner noise spikes).
REPS = 4

#: Fleet sizes large enough to amortise per-tick overhead; the
#: acceptance gate applies to the best of these.
AT_SCALE = 24


def _fleet_inputs(n_chips: int):
    """Evaluator plus *n_chips* labelled synthetic streams."""
    rng = np.random.default_rng(0xF1EE7)
    base = np.sin(np.linspace(0, 15, SAMPLES))
    golden = base[None, :] + 0.05 * rng.normal(size=(N_GOLDEN, SAMPLES))
    detector = EuclideanDetector().fit(golden)
    ev = RuntimeTrustEvaluator.__new__(RuntimeTrustEvaluator)
    ev.detector = detector
    ev.golden_spectrum = None
    ev.fs = 1e9
    ev.config = EvaluatorConfig()
    shape = np.cos(np.linspace(0, 9, SAMPLES))
    streams = {
        f"chip{i:03d}": (base + SHIFTS[i % len(SHIFTS)] * shape)[None, :]
        + 0.05 * rng.normal(size=(N_WINDOWS, SAMPLES))
        for i in range(n_chips)
    }
    return ev, streams


def _sessions(ev, streams):
    return [
        MonitorSession(c, ev, window=WINDOW, confirm=CONFIRM,
                       metrics=MetricsRegistry(), journal=EventJournal())
        for c in streams
    ]


def _feeds(streams):
    return [
        TraceFeed(c, streams[c], batch=BATCH, seed=11) for c in streams
    ]


def _run_scheduler(ev, streams, scoring: str):
    """Full end-to-end fleet run (bit-identity + latency ground truth)."""
    scheduler = FleetScheduler(_sessions(ev, streams), scoring=scoring)
    start = time.perf_counter()
    result = scheduler.run(_feeds(streams))
    return result, time.perf_counter() - start


def _materialize_ticks(streams):
    """The scheduler's arrival schedule as explicit per-tick batches."""
    feeds = {f.chip_id: f for f in _feeds(streams)}
    n_batches = max(f.n_batches for f in feeds.values())
    return [
        [
            (chip_id, feeds[chip_id].batch_at(i))
            for chip_id in streams
            if i < feeds[chip_id].n_batches
        ]
        for i in range(n_batches)
    ]


def _time_scoring(ev, streams, ticks) -> tuple[float, float]:
    """Best-of-REPS wall times (sequential, batched), interleaved."""
    best_seq = best_bat = float("inf")
    for _ in range(REPS):
        sessions = {s.chip_id: s for s in _sessions(ev, streams)}
        pair_ticks = [
            [(sessions[c], b) for c, b in tick] for tick in ticks
        ]
        start = time.perf_counter()
        for tick in pair_ticks:
            for session, batch in tick:
                session.ingest(batch)
        best_seq = min(best_seq, time.perf_counter() - start)

        sessions = {s.chip_id: s for s in _sessions(ev, streams)}
        pair_ticks = [
            [(sessions[c], b) for c, b in tick] for tick in ticks
        ]
        engine = BatchedFleetMonitor(sessions.values())
        start = time.perf_counter()
        for tick in pair_ticks:
            engine.ingest_tick(tick)
        best_bat = min(best_bat, time.perf_counter() - start)
    return best_seq, best_bat


def test_fleet_scale(capsys):
    smoke = active_config().bench_smoke
    chip_counts = (6, 12) if smoke else (6, 12, 24, 48, 96, 192)
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    rows = []
    for n_chips in chip_counts:
        ev, streams = _fleet_inputs(n_chips)

        # The speedup is only admissible with identical answers: full
        # end-to-end runs in both modes must agree chip by chip.
        r_seq, _ = _run_scheduler(ev, streams, "sequential")
        r_bat, t_wall = _run_scheduler(ev, streams, "batched")
        for chip in streams:
            assert (
                r_bat.reports[chip].alarms == r_seq.reports[chip].alarms
            ), f"{chip}: scoring modes diverged at {n_chips} chips"

        latencies = [
            r.first_alarm_window
            for r in r_bat.reports.values()
            if r.first_alarm_window is not None
        ]
        assert latencies, "no chip alarmed; the sweep lost its signal"
        p99 = float(np.percentile(latencies, 99.0))

        # Head-to-head scoring throughput over the identical schedule.
        ticks = _materialize_ticks(streams)
        n_windows = sum(len(b) for tick in ticks for _, b in tick)
        t_seq, t_bat = _time_scoring(ev, streams, ticks)
        wps_seq = n_windows / t_seq
        wps_bat = n_windows / t_bat
        speedup = wps_bat / wps_seq
        rows.append((n_chips, wps_seq, wps_bat, speedup, p99))
        record_timing(
            f"fleet_scale[{n_chips}chips]",
            t_bat,
            chips=n_chips,
            windows=n_windows,
            windows_per_s_sequential=wps_seq,
            windows_per_s_batched=wps_bat,
            speedup=speedup,
            alarm_latency_p99_windows=p99,
            end_to_end_s=t_wall,
        )

    with capsys.disabled():
        print("\n=== fleet scale: batched vs sequential scoring ===")
        print(f"  {'chips':>5} {'seq w/s':>10} {'batched w/s':>12} "
              f"{'speedup':>8} {'alarm p99':>10}")
        for n_chips, wps_seq, wps_bat, speedup, p99 in rows:
            print(f"  {n_chips:>5} {wps_seq:>10.0f} {wps_bat:>12.0f} "
                  f"{speedup:>7.1f}x {p99:>9.0f}w")

    # Scaling acceptance: the fleet must clear the floor at scale
    # (small fleets amortise too little per-tick overhead to count,
    # and a single shared-runner noise spike must not fail the gate).
    at_scale = [r for r in rows if r[0] >= AT_SCALE] or rows[-1:]
    best = max(r[3] for r in at_scale)
    assert best >= floor, (
        f"batched speedup peaked at {best:.1f}x, below the {floor:.1f}x "
        f"floor (fleet sizes >= {at_scale[0][0]} chips)"
    )
