"""Bench: the content-addressed trace cache, cold vs warm.

Three timed phases of the same ``ed`` campaign:

* **nocache** — the collector runs directly (cache explicitly off);
  the pre-cache baseline every run used to pay.
* **cold** — first run against an empty cache: generation plus the
  v2 store write.  Must stay within noise of *nocache*.
* **warm** — second run: a pure cache hit served as a read-only
  memmap, which is where the ≥5× (in practice orders of magnitude)
  win lives.

All three phases must return bit-identical traces — the cache is a
pure transport, never a source of numbers.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import record_timing

from repro.experiments.campaign import get_or_generate_traces
from repro.io.cache import TraceCache

CAMPAIGN = dict(
    n_traces=96,
    batch=16,
    receivers=("sensor",),
    rng_role="bench/cache",
)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def test_cache_cold_vs_warm(chip, sim_scenario, tmp_path):
    cache = TraceCache(tmp_path / "cache")

    t_nocache, direct = _timed(
        lambda: get_or_generate_traces(
            chip, sim_scenario, "ed", cache=False, **CAMPAIGN
        )
    )
    t_cold, cold = _timed(
        lambda: get_or_generate_traces(
            chip, sim_scenario, "ed", cache=cache, **CAMPAIGN
        )
    )
    t_warm, warm = _timed(
        lambda: get_or_generate_traces(
            chip, sim_scenario, "ed", cache=cache, **CAMPAIGN
        )
    )

    assert cache.stats.puts == 1 and cache.stats.hits == 1
    assert np.array_equal(direct["sensor"], cold["sensor"])
    assert np.array_equal(direct["sensor"], np.asarray(warm["sensor"]))

    record_timing("cache_pipeline_nocache", t_nocache)
    record_timing("cache_pipeline_cold", t_cold, cache_mb=round(
        cache.size_bytes() / 1e6, 3))
    record_timing(
        "cache_pipeline_warm",
        t_warm,
        speedup_vs_cold=round(t_cold / max(t_warm, 1e-9), 1),
    )

    # Acceptance: warm >= 5x faster than cold; cold within noise of the
    # uncached baseline (5% + a fixed slack for fs jitter on small runs).
    assert t_warm * 5.0 <= t_cold, (t_warm, t_cold)
    assert t_cold <= 1.05 * t_nocache + 0.15, (t_cold, t_nocache)
