"""Streaming runtime monitoring — the Fig. 1 deployment, live.

Simulates the deployed system: trace windows stream from the on-chip
sensor to the trusted analysis module one at a time; halfway through,
an attacker arms Trojan 4.  The monitor's sliding separation estimate
crosses its envelope a few windows later and the alarm fires.

Run:  python examples/runtime_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro.chip import simulation_scenario
from repro.chip.calibration import calibrate_scenario
from repro.experiments import shared_chip
from repro.experiments.campaign import collect_ed_traces
from repro.framework import RuntimeMonitor, RuntimeTrustEvaluator
from repro.framework.evaluator import EvaluatorConfig


def main() -> None:
    chip = shared_chip(seed=1)
    scenario = calibrate_scenario(chip, simulation_scenario())

    print("training the evaluator on the golden fingerprint...")
    evaluator = RuntimeTrustEvaluator.train(
        chip, scenario, EvaluatorConfig(n_reference=256, spectral_cycles=512)
    )
    monitor = RuntimeMonitor(evaluator, window=24, confirm=3)

    clean = collect_ed_traces(chip, scenario, 96, rng_role="mon/clean")["sensor"]
    dirty = collect_ed_traces(
        chip, scenario, 96, trojan_enables=("trojan4",), rng_role="mon/dirty"
    )["sensor"]
    stream = np.concatenate([clean, dirty], axis=0)
    activation_at = clean.shape[0]

    print(
        f"streaming {stream.shape[0]} encryption windows "
        f"(Trojan 4 activates at window {activation_at})...\n"
    )
    for i, trace in enumerate(stream):
        event = monitor.observe(trace)
        if i >= monitor.window and i % 12 == 0:
            sep = monitor.current_separation()
            bar = "#" * min(48, int(sep / monitor.threshold * 16))
            mark = " <- Trojan active" if i >= activation_at else ""
            print(f"window {i:3d}  sep {sep:7.4f}  |{bar}{mark}")
        if event is not None:
            print(f"\nALARM at window {event.window_index}: {event.message}")
            latency = event.window_index - activation_at
            t_us = latency * 12 / chip.config.f_clk * 1e6
            print(
                f"detection latency: {latency} windows "
                f"({t_us:.1f} us of chip time at 24 MHz)"
            )
            break
    else:
        print("no alarm raised — unexpected; see EXPERIMENTS.md")


if __name__ == "__main__":
    main()
