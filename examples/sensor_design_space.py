"""Sensor design-space exploration (the paper's Section VI future work:
"the structure of the on-chip EM sensor will also be enhanced to
increase the SNR").

Sweeps the spiral's turn count and the external probe's standoff and
reports the resulting coil properties and SNR, using the same physical
chain as the main experiments.

Run:  python examples/sensor_design_space.py
"""

from __future__ import annotations

from repro.chip import (
    AcquisitionEngine,
    Chip,
    ChipConfig,
    EncryptionWorkload,
    IdleWorkload,
    simulation_scenario,
)
from repro.em.snr import measure_snr
from repro.units import UM

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def snr_of(chip: Chip, receiver: str) -> float:
    """Record-level SNR of one receiver under the standard workload."""
    engine = AcquisitionEngine(chip, simulation_scenario())
    sig = engine.acquire(
        EncryptionWorkload(chip.aes, KEY, period=12),
        n_cycles=256,
        batch=4,
        rng_role="design/sig",
    )
    noi = engine.acquire(
        IdleWorkload(), n_cycles=256, batch=4, rng_role="design/noise"
    )
    return measure_snr(sig.traces[receiver], noi.traces[receiver]).snr_db


def main() -> None:
    print("=== spiral turn count vs sensor properties ===")
    print(f"{'turns':>6} {'R [ohm]':>9} {'A_eff [mm^2]':>13} {'SNR [dB]':>9}")
    for turns in (4, 8, 12, 16):
        chip = Chip.build(
            config=ChipConfig(sensor_turns=turns), trojans=(), seed=1
        )
        print(
            f"{turns:>6} {chip.sensor.resistance():>9.1f} "
            f"{chip.sensor.effective_area() * 1e6:>13.3f} "
            f"{snr_of(chip, 'sensor'):>9.2f}"
        )

    print("\n=== probe standoff vs probe SNR (direct die radiation) ===")
    print(f"{'standoff [um]':>14} {'SNR [dB]':>9}")
    for standoff in (50 * UM, 100 * UM, 200 * UM, 400 * UM):
        # Package-loop pickup is standoff-independent at these
        # distances; switch it off to expose the near-field decay.
        chip = Chip.build(
            config=ChipConfig(
                probe_standoff=standoff, package_loop_coupling=0.0
            ),
            trojans=(),
            seed=1,
        )
        print(f"{standoff * 1e6:>14.0f} {snr_of(chip, 'probe'):>9.2f}")

    print(
        "\nThe on-chip coil's SNR saturates once its own thermal noise"
        "\ndominates; the probe decays with standoff — the paper's"
        "\nlocality argument in one table."
    )


if __name__ == "__main__":
    main()
