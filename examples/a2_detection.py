"""A2 analog-Trojan detection in the frequency domain (paper Fig. 4).

Shows both halves of the A2 story:

1. the *behavioural* charge pump — sustained fast toggling fires the
   payload while sparse toggles leak away harmlessly;
2. the *spectral* detection — while the pump is being triggered, its
   strokes add a new comb at f_clk/3, a spot the original circuit never
   occupies, and the framework flags the magnitude change.

Run:  python examples/a2_detection.py
"""

from __future__ import annotations

from repro.chip import simulation_scenario
from repro.experiments import run_a2_spectrum, shared_chip
from repro.trojans.a2 import A2ChargePump, A2Params


def charge_pump_demo() -> None:
    print("--- A2 charge-pump behaviour ---")
    params = A2Params()
    pump = A2ChargePump(params)

    # Sustained fast toggling: one stroke per cycle.
    cycles_to_fire = None
    for cycle in range(1, 500):
        if pump.step(toggles=1):
            cycles_to_fire = cycle
            break
    print(f"sustained trigger: payload fires after {cycles_to_fire} cycles")

    # Sparse toggling: one stroke every 50 cycles leaks away.
    pump.reset()
    fired = False
    for cycle in range(1, 5000):
        fired |= pump.step(toggles=1 if cycle % 50 == 0 else 0)
    print(f"sparse trigger: payload fired = {fired} "
          f"(cap sits at {pump.voltage:.2f} V, threshold "
          f"{pump.threshold_voltage:.2f} V)")


def spectral_demo() -> None:
    print("\n--- Fig. 4: spectral detection of the A2 trigger ---")
    chip = shared_chip(seed=1)
    result = run_a2_spectrum(chip, simulation_scenario(), n_cycles=2048)
    print(result.format())
    f = result.trigger_frequency
    print(
        f"\ngolden amplitude  @ {f / 1e6:.0f} MHz: "
        f"{result.golden.magnitude_at(f):.3e} V"
    )
    print(
        f"triggered amplitude @ {f / 1e6:.0f} MHz: "
        f"{result.triggered.magnitude_at(f):.3e} V"
    )


def main() -> None:
    charge_pump_demo()
    spectral_demo()


if __name__ == "__main__":
    main()
