"""Quickstart: build the paper's test chip, train the trust framework,
catch a Trojan.

Builds the security-enhanced AES die (on-chip EM sensor + four digital
Trojans + the A2 analog Trojan), characterises the golden EM
fingerprint, then activates Trojan 4 and watches the runtime framework
raise the alarm.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.chip import simulation_scenario
from repro.experiments.campaign import calibrated, collect_ed_traces, shared_chip
from repro.framework import RuntimeTrustEvaluator


def main() -> None:
    print("Building the test chip (AES-128 + 4 digital Trojans + A2)...")
    # shared_chip/calibrated are the memoised helpers every experiment
    # driver and the `repro` CLI use — repeated runs in one process
    # reuse the same chip and calibration.
    chip = shared_chip(seed=1)
    print(chip.describe())
    print()

    print("Calibrating the measurement bench to the paper's SNR figures...")
    scenario = calibrated(chip, simulation_scenario())

    print("Training the trust evaluator on the golden fingerprint...")
    evaluator = RuntimeTrustEvaluator.train(chip, scenario)

    print("\n--- evaluating the dormant chip (all Trojans off) ---")
    clean = collect_ed_traces(chip, scenario, 128, rng_role="quickstart/clean")
    report = evaluator.evaluate_traces(clean["sensor"])
    print(report.format())

    print("\n--- evaluating with Trojan 4 (power waster) active ---")
    dirty = collect_ed_traces(
        chip,
        scenario,
        128,
        trojan_enables=("trojan4",),
        rng_role="quickstart/dirty",
    )
    report = evaluator.evaluate_traces(dirty["sensor"])
    print(report.format())

    if report.verdict.is_alarm:
        print("\nALARM: hardware Trojan activity detected at runtime.")
    else:
        print("\nNo alarm raised — unexpected; see EXPERIMENTS.md.")

    print(
        "\nNext: `repro list` shows every reproduced table/figure; "
        "`repro run --all --smoke` reproduces them end to end."
    )


if __name__ == "__main__":
    main()
