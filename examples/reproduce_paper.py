"""One-shot paper reproduction: run every table/figure experiment and
write a machine-readable report.

This is the scripted equivalent of the benchmark suite, for users who
want the numbers (JSON + stdout) without pytest.  Expect ~10 minutes.

Run:  python examples/reproduce_paper.py [output.json]
"""

from __future__ import annotations

import sys
import time

from repro.chip import silicon_scenario, simulation_scenario
from repro.chip.calibration import calibrate_scenario
from repro.experiments import (
    run_a2_spectrum,
    run_euclidean_experiment,
    run_fig6_histograms,
    run_fig6_spectra,
    run_snr_experiment,
    run_table1,
    shared_chip,
)
from repro.io import save_json_report


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "reproduction_report.json"
    t0 = time.time()
    report: dict = {}

    print("building the test chip...")
    chip = shared_chip(seed=1)
    sim = calibrate_scenario(chip, simulation_scenario())
    sil = calibrate_scenario(chip, silicon_scenario())

    print("\n[Table I] Trojan sizes")
    table1 = run_table1(chip)
    print(table1.format())
    report["table1"] = {
        row.circuit: {"gates": row.gate_count, "percent": row.percentage}
        for row in table1.rows
    }

    for label, scenario in (("IV-B", sim), ("V-A", sil)):
        print(f"\n[{label}] SNR")
        snr = run_snr_experiment(chip, scenario)
        print(snr.format())
        report[f"snr_{scenario.name}"] = {
            name: res.snr_db for name, res in snr.per_receiver.items()
        }

    print("\n[IV-C] Euclidean distances")
    euclid = run_euclidean_experiment(chip, sim)
    print(euclid.format())
    report["euclidean"] = euclid.separations

    print("\n[Fig. 4] A2 spectrum")
    a2 = run_a2_spectrum(chip, sim, n_cycles=2048)
    print(a2.format())
    report["fig4"] = {
        "trigger_mhz": a2.trigger_frequency / 1e6,
        "gain": a2.magnitude_ratio_at_trigger(),
        "detected": a2.detected,
    }

    for receiver in ("probe", "sensor"):
        print(f"\n[Fig. 6] {receiver} histograms")
        hist = run_fig6_histograms(
            chip, sil, receiver, n_golden=800, n_suspect=800
        )
        print(hist.format())
        report[f"fig6_{receiver}"] = {
            name: {
                "overlap": panel.overlap,
                "peak_shift_sigma": panel.peak_shift_sigma,
            }
            for name, panel in hist.panels.items()
        }

    print("\n[Fig. 6 i-l] sensor spectra")
    spectra = run_fig6_spectra(chip, sil, n_cycles=2048)
    print(spectra.format())
    report["fig6_spectra"] = {
        name: {
            "low_freq_energy_ratio": p.low_freq_energy_ratio,
            "total_energy_ratio": p.total_energy_ratio,
        }
        for name, p in spectra.panels.items()
    }

    save_json_report(report, out_path)
    print(f"\nreport written to {out_path} ({time.time() - t0:.0f}s total)")


if __name__ == "__main__":
    main()
