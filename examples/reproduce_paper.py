"""One-shot paper reproduction through the experiment registry.

The scripted equivalent of ``repro run --all``: every registered
table/figure experiment runs at full size and writes one validated
``RunResult`` JSON artifact (config snapshot + per-stage metrics +
the numbers).  Kept as the library-usage example of the registry API;
prefer the ``repro`` console script for day-to-day runs.

Run:  python examples/reproduce_paper.py [out_dir] [--smoke]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments import all_specs, run_experiment


def main() -> None:
    args = [a for a in sys.argv[1:] if a != "--smoke"]
    smoke = "--smoke" in sys.argv[1:]
    out_dir = Path(args[0]) if args else Path("reproduction_report")
    t0 = time.time()

    specs = all_specs()
    for i, spec in enumerate(specs, 1):
        print(f"\n[{i}/{len(specs)}] {spec.title}")
        result = run_experiment(spec.name, smoke=smoke)
        print(result.text)
        path = result.save(out_dir / f"{spec.name}.json")
        print(f"artifact: {path}  ({result.elapsed_seconds:.1f}s)")

    print(
        f"\n{len(specs)} artifacts in {out_dir}/ "
        f"({time.time() - t0:.0f}s total)"
    )


if __name__ == "__main__":
    main()
