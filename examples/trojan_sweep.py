"""Trojan sweep: Section IV-C's Euclidean-distance table plus Fig. 6
histogram summaries for every digital Trojan, on both receivers.

Run:  python examples/trojan_sweep.py          (simulation scenario)
      python examples/trojan_sweep.py silicon  (fabricated-chip scenario)

The golden and per-Trojan campaigns fan out across worker processes;
pass ``--workers N`` (or set ``REPRO_WORKERS``) to control the pool,
``--workers 1`` to force the serial path — the numbers are identical
either way.
"""

from __future__ import annotations

import argparse

from repro.chip import silicon_scenario, simulation_scenario
from repro.chip.calibration import calibrate_scenario
from repro.experiments import (
    run_euclidean_experiment,
    run_fig6_histograms,
    shared_chip,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "scenario",
        nargs="?",
        default="simulation",
        choices=("simulation", "silicon"),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="campaign worker processes (default: REPRO_WORKERS or all CPUs)",
    )
    args = parser.parse_args()
    which = args.scenario
    base = silicon_scenario() if which == "silicon" else simulation_scenario()

    chip = shared_chip(seed=1)
    scenario = calibrate_scenario(chip, base)

    print(f"=== Euclidean distances ({which}) ===")
    result = run_euclidean_experiment(chip, scenario, workers=args.workers)
    print(result.format())
    print()

    for receiver in ("probe", "sensor"):
        print(f"=== Fig. 6 histograms via the {receiver} ({which}) ===")
        hist = run_fig6_histograms(
            chip, scenario, receiver, n_golden=600, n_suspect=600,
            workers=args.workers,
        )
        print(hist.format())
        # Render the paper's most telling panel: Trojan 4.
        print("\nTrojan 4 distance histogram (g = golden, T = trojan):")
        print(hist.panels["trojan4"].histogram.render(width=64, height=8))
        print()


if __name__ == "__main__":
    main()
