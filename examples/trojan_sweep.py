"""Trojan sweep: Section IV-C's Euclidean-distance table plus Fig. 6
histogram summaries for every digital Trojan, on both receivers.

Run:  python examples/trojan_sweep.py          (simulation scenario)
      python examples/trojan_sweep.py silicon  (fabricated-chip scenario)
"""

from __future__ import annotations

import sys

from repro.chip import silicon_scenario, simulation_scenario
from repro.chip.calibration import calibrate_scenario
from repro.experiments import (
    run_euclidean_experiment,
    run_fig6_histograms,
    shared_chip,
)


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "simulation"
    base = silicon_scenario() if which == "silicon" else simulation_scenario()

    chip = shared_chip(seed=1)
    scenario = calibrate_scenario(chip, base)

    print(f"=== Euclidean distances ({which}) ===")
    result = run_euclidean_experiment(chip, scenario)
    print(result.format())
    print()

    for receiver in ("probe", "sensor"):
        print(f"=== Fig. 6 histograms via the {receiver} ({which}) ===")
        hist = run_fig6_histograms(
            chip, scenario, receiver, n_golden=600, n_suspect=600
        )
        print(hist.format())
        # Render the paper's most telling panel: Trojan 4.
        print("\nTrojan 4 distance histogram (g = golden, T = trojan):")
        print(hist.panels["trojan4"].histogram.render(width=64, height=8))
        print()


if __name__ == "__main__":
    main()
