"""End-to-end attack demo: recover secret-key bits from Trojan 1's
750 kHz AM transmission, straight from the EM trace.

This is the attacker's side of the paper's Trojan 1 ("the leaked
information can be demodulated with a wireless radio receiver"): we
play the radio receiver, the defender's on-chip sensor plays the
antenna.

Run:  python examples/am_key_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.demod import demodulate_am_bits
from repro.chip import AcquisitionEngine, Chip, EncryptionWorkload, simulation_scenario
from repro.trojans.t1_am import CYCLES_PER_BIT, Trojan1Params

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def key_bits(key: bytes, start: int, count: int) -> list[int]:
    return [
        (key[i // 8] >> (7 - i % 8)) & 1 for i in range(start, start + count)
    ]


def main() -> None:
    # Start the leaker's frame at bit 0 so the demodulated stream lines
    # up with the key from its first bit.
    chip = Chip.build(
        seed=1,
        trojans=("trojan1",),
        trojan_params={"trojan1": Trojan1Params(frame_init=0)},
    )
    engine = AcquisitionEngine(chip, simulation_scenario())

    n_bits = 24
    n_cycles = (n_bits + 1) * CYCLES_PER_BIT
    print(f"capturing {n_cycles} cycles of EM while the chip encrypts...")
    # A real AM receiver integrates the repeating 16384-cycle frame
    # many times to average the bench noise away; we shortcut that by
    # capturing the noise-free signal path once (the covert channel
    # itself, not the receiver's averaging loop, is what this example
    # demonstrates).
    result = engine.acquire(
        EncryptionWorkload(chip.aes, KEY, period=12),
        n_cycles=n_cycles,
        batch=1,
        trojan_enables=("trojan1",),
        include_noise=False,
        rng_role="am-demo",
    )
    trace = result.traces["sensor"][0]

    bit_duration = CYCLES_PER_BIT / chip.config.f_clk
    recovered = demodulate_am_bits(
        trace,
        fs=chip.config.fs,
        carrier_freq=750e3,
        bit_duration=bit_duration,
        n_bits=n_bits,
        start_time=1.0 / chip.config.f_clk,
    )
    expected = key_bits(KEY, 0, n_bits)
    matches = int(np.sum(np.array(expected) == recovered))
    print("expected bits :", "".join(map(str, expected)))
    print("recovered bits:", "".join(map(str, recovered)))
    print(f"{matches}/{n_bits} bits recovered correctly")
    if matches >= n_bits - 2:
        print("the Trojan's covert channel works — and so would the attack.")


if __name__ == "__main__":
    main()
