"""CPA key-recovery attack on the chip's own EM traces.

Validation of leakage realism: if the simulated EM traces behave like
real side-channel measurements, the textbook last-round CPA attack
must start recovering AES key bytes from them — and it does.

Run:  python examples/cpa_attack.py [n_traces]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.cpa import cpa_attack
from repro.chip import Chip, simulation_scenario
from repro.chip.calibration import calibrate_scenario
from repro.crypto.aes import encrypt_block, expand_key
from repro.experiments.campaign import DEFAULT_KEY, collect_attack_traces


def main() -> None:
    n_traces = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    print("building the (Trojan-free) AES chip...")
    chip = Chip.build(seed=1, trojans=())
    scenario = calibrate_scenario(chip, simulation_scenario())

    print(f"capturing {n_traces} sensor traces...")
    traces, plaintexts = collect_attack_traces(chip, scenario, n_traces)
    ciphertexts = np.stack(
        [
            np.frombuffer(encrypt_block(bytes(p), DEFAULT_KEY), np.uint8)
            for p in plaintexts
        ]
    )

    spc = chip.config.samples_per_cycle
    window = (11 * spc - 20, 11 * spc + 120)  # the final-round edge
    print("running last-round CPA over all 16 key bytes...")
    result = cpa_attack(
        traces, ciphertexts, expand_key(DEFAULT_KEY)[10], sample_window=window
    )
    print()
    print(result.format())
    print(
        f"\n(random guessing would average rank 127.5; "
        f"ours is {result.mean_rank():.1f} — the traces leak.)"
    )


if __name__ == "__main__":
    main()
