"""EM surface field maps: locate a Trojan on the die.

The paper lists "location awareness" among EM's advantages over other
side channels.  This example computes |B| maps over the die (golden vs
Trojan-4 active) and prints the difference as an ASCII heat map — the
power-wasting Trojan literally glows in its own floorplan corner.

Run:  python examples/em_field_map.py
"""

from __future__ import annotations

from repro.chip import EncryptionWorkload
from repro.em.fieldmap import trojan_difference_map
from repro.experiments import shared_chip

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def main() -> None:
    chip = shared_chip(seed=1)
    print(chip.floorplan.summary())
    print("\ncomputing |B| maps (golden vs trojan4 active)...")
    golden, active, diff = trojan_difference_map(
        chip,
        "trojan4",
        lambda: EncryptionWorkload(chip.aes, KEY, period=12),
        n_cycles=48,
        grid=36,
    )

    print("\n|B| with the chip encrypting (golden):")
    print(golden.render(width=48, height=18))
    print("\n|difference| when Trojan 4 activates:")
    print(diff.render(width=48, height=18))

    hx, hy = diff.hotspot()
    region = chip.floorplan.regions["trojan4"].rect
    print(
        f"\nhotspot at ({hx * 1e6:.0f}, {hy * 1e6:.0f}) um; "
        f"trojan4 region spans ({region.x0 * 1e6:.0f}, {region.y0 * 1e6:.0f})"
        f" - ({region.x1 * 1e6:.0f}, {region.y1 * 1e6:.0f}) um"
    )
    inside = region.contains(hx, hy, tol=30e-6)
    print(f"hotspot inside the Trojan's region: {inside}")


if __name__ == "__main__":
    main()
