"""Behavioural tests for the reference-free detectors.

Synthetic sinusoid-plus-noise populations exercise the scoring
pipeline cheaply; the chip-level test at the bottom is the acceptance
criterion — both detectors must separate A2 from golden with
AUC >= 0.95 at the paper's calibrated SNR after fitting on **zero**
golden windows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors import auc, create_detector
from repro.detectors.reference_free import (
    MIN_FIT_WINDOWS,
    CrossScalePersistenceDetector,
    SpectralMedianDetector,
)
from repro.errors import AnalysisError


def _stream(rng, n, length=256, tone=0.0):
    t = np.arange(length)
    base = np.sin(2 * np.pi * 0.125 * t)
    x = base[None, :] + 0.05 * rng.normal(size=(n, length))
    if tone:
        x = x + tone * np.sin(2 * np.pi * 0.25 * t)[None, :]
    return x


class TestValidation:
    def test_bad_constructor_parameters(self):
        with pytest.raises(AnalysisError, match="positive integers"):
            CrossScalePersistenceDetector(scales=())
        with pytest.raises(AnalysisError, match="positive integers"):
            CrossScalePersistenceDetector(scales=(0, 2))
        with pytest.raises(AnalysisError, match="smooth_len"):
            SpectralMedianDetector(smooth_len=0)
        with pytest.raises(AnalysisError, match="top_bins"):
            SpectralMedianDetector(top_bins=0)
        with pytest.raises(AnalysisError, match="z_cut"):
            SpectralMedianDetector(z_cut=0.0)
        with pytest.raises(AnalysisError, match="alarm_fraction"):
            SpectralMedianDetector(alarm_fraction=1.0)

    def test_fit_needs_a_minimum_population(self, rng):
        det = SpectralMedianDetector()
        with pytest.raises(AnalysisError, match=str(MIN_FIT_WINDOWS)):
            det.fit(_stream(rng, MIN_FIT_WINDOWS - 1))

    def test_windows_too_short_for_welch(self, rng):
        det = SpectralMedianDetector(welch_k=4)
        with pytest.raises(AnalysisError, match="too short"):
            det.fit(np.empty((0, 0))).score(
                rng.normal(size=(16, 16))
            )

    def test_fingerprint_requires_a_fitted_baseline(self, rng):
        det = SpectralMedianDetector()
        with pytest.raises(AnalysisError, match="before fit"):
            det.fingerprint
        det.fit(np.empty((0, 0)))
        with pytest.raises(AnalysisError, match="before fit"):
            det.fingerprint
        det.fit(_stream(rng, 32))
        fp = det.fingerprint
        with pytest.raises(ValueError):
            fp[0] = 1.0

    def test_streaming_threshold_requires_a_fitted_baseline(self, rng):
        det = SpectralMedianDetector().fit(np.empty((0, 0)))
        with pytest.raises(AnalysisError, match="fitted population"):
            det.streaming_threshold(16)
        det.fit(_stream(rng, 32))
        with pytest.raises(AnalysisError, match="window"):
            det.streaming_threshold(0)

    def test_window_length_must_match_the_fitted_population(self, rng):
        det = SpectralMedianDetector().fit(_stream(rng, 32, length=256))
        with pytest.raises(AnalysisError, match="window length"):
            det.score(_stream(rng, 8, length=512))

    def test_decide_on_empty_scores(self):
        decision = SpectralMedianDetector().decide(np.array([]))
        assert not decision.detected
        assert decision.threshold == 0.0
        assert decision.exceed_fraction == 0.0


class TestSyntheticSeparation:
    @pytest.mark.parametrize(
        "name", ["spectral_median", "persistence"]
    )
    def test_transductive_pooled_separation(self, rng, name):
        det = create_detector(name).fit(np.empty((0, 0)))
        golden = _stream(rng, 128)
        bad = _stream(rng, 64, tone=0.05)
        scores = det.score(np.vstack([golden, bad]))
        assert auc(scores[:128], scores[128:]) >= 0.95
        assert det.decide(scores).detected
        clean = det.score(_stream(rng, 128))
        assert not det.decide(clean).detected

    @pytest.mark.parametrize(
        "name", ["spectral_median", "persistence"]
    )
    def test_fitted_baseline_mode(self, rng, name):
        # 256 fit windows: the per-bin baseline median's sampling
        # error must be small against the raw-scale MAD scales, or
        # bias bins outrank the tone in the exceedance-rate selection.
        det = create_detector(name).fit(_stream(rng, 256))
        pooled = np.vstack([
            _stream(rng, 128), _stream(rng, 64, tone=0.1)
        ])
        scores = det.score(pooled)
        assert auc(scores[:128], scores[128:]) >= 0.95
        assert det.decide(scores).detected

    def test_persistence_is_the_min_over_single_scale_scores(self, rng):
        x = np.vstack([_stream(rng, 96), _stream(rng, 32, tone=0.05)])
        multi = CrossScalePersistenceDetector(scales=(1, 2, 4))
        multi.fit(np.empty((0, 0)))
        per_scale = [
            SpectralMedianDetector(welch_k=k).fit(np.empty((0, 0))).score(x)
            for k in (1, 2, 4)
        ]
        np.testing.assert_array_equal(
            multi.score(x), np.min(np.stack(per_scale), axis=0)
        )

    def test_streaming_threshold_shrinks_with_window(self, rng):
        det = SpectralMedianDetector().fit(_stream(rng, 128))
        assert det.streaming_threshold(64) < det.streaming_threshold(4)
        assert det.floor_threshold(16) == det.streaming_threshold(16)


class TestChipAuc:
    """Acceptance: zero-golden-fit A2 separation at the paper's SNR."""

    @pytest.fixture(scope="class")
    def pooled_traces(self, chip, sim_scenario):
        from repro.experiments.campaign import get_or_generate_traces

        common = dict(receivers=("sensor",), decimate=1)
        golden = get_or_generate_traces(
            chip, sim_scenario, "ed", n_traces=192, trojan_enables=(),
            rng_role="tournament/eval", **common,
        )["sensor"]
        a2 = get_or_generate_traces(
            chip, sim_scenario, "ed", n_traces=96,
            trojan_enables=("a2",), rng_role="tournament/suspect",
            **common,
        )["sensor"]
        return golden, a2

    @pytest.mark.parametrize(
        "name", ["spectral_median", "persistence"]
    )
    def test_zero_golden_fit_separates_a2(self, pooled_traces, name):
        golden, a2 = pooled_traces
        detector = create_detector(name).fit(np.empty((0, 0)))
        scores = detector.score(np.vstack([golden, a2]))
        assert auc(scores[: golden.shape[0]],
                   scores[golden.shape[0]:]) >= 0.95
        # The null stream must stay quiet at the same operating point.
        assert not detector.decide(detector.score(golden)).detected
