"""Tests for the pluggable detector subsystem."""
