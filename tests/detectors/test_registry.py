"""Tests for the detector registry, the exact ROC helper, and the
JSON state round trip every plugin must survive bit-identically."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import ReproConfig, use_config
from repro.detectors import (
    Detector,
    all_detector_infos,
    auc,
    create_detector,
    detector_from_state,
    detector_names,
    get_detector_class,
    roc_curve,
)
from repro.detectors.base import DetectorInfo
from repro.detectors.registry import REGISTRY, register_detector
from repro.errors import AnalysisError

EXPECTED_DETECTORS = (
    "euclidean", "persistence", "spectral", "spectral_median",
)


class TestRegistry:
    def test_all_four_detectors_registered(self):
        assert detector_names() == EXPECTED_DETECTORS
        infos = all_detector_infos()
        assert tuple(i.name for i in infos) == EXPECTED_DETECTORS
        for info in infos:
            assert info.summary
            assert info.basis in ("golden-based", "reference-free")
        by_name = {i.name: i for i in infos}
        assert not by_name["euclidean"].reference_free
        assert not by_name["spectral"].reference_free
        assert by_name["spectral_median"].reference_free
        assert by_name["persistence"].reference_free

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(AnalysisError, match="euclidean"):
            get_detector_class("nope")

    def test_duplicate_name_rejected(self):
        before = detector_names()
        with pytest.raises(AnalysisError, match="duplicate"):
            @register_detector
            class Clash:
                info = DetectorInfo(
                    name="euclidean", summary="x", reference_free=False
                )
        assert detector_names() == before

    def test_registration_requires_info(self):
        with pytest.raises(AnalysisError, match="DetectorInfo"):
            register_detector(type("NoInfo", (), {}))

    def test_create_by_name_forwards_kwargs(self):
        det = create_detector("spectral_median", welch_k=2)
        assert det.welch_k == 2
        assert det.info.name == "spectral_median"

    def test_create_default_honours_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_DETECTOR", "persistence")
        assert create_detector().info.name == "persistence"
        monkeypatch.delenv("REPRO_DETECTOR")
        assert create_detector().info.name == "euclidean"

    def test_create_default_honours_pinned_config(self):
        with use_config(ReproConfig(detector="spectral")):
            assert create_detector().info.name == "spectral"

    def test_every_plugin_satisfies_the_protocol(self):
        for name in detector_names():
            det = create_detector(name)
            assert isinstance(det, Detector), name
            assert isinstance(det.supports_batched, bool), name

    def test_only_euclidean_supports_batched_scoring(self):
        supported = {
            name: REGISTRY[name].supports_batched
            for name in detector_names()
        }
        assert supported == {
            "euclidean": True,
            "persistence": False,
            "spectral": False,
            "spectral_median": False,
        }


class TestRoc:
    def test_hand_computed_overlapping_classes(self):
        # Pairwise: 6 of 9 pairs strictly ordered, 2 tied -> 7/9.
        curve = roc_curve([1.0, 2.0, 3.0], [2.0, 3.0, 4.0])
        assert curve.auc == pytest.approx(7.0 / 9.0)
        np.testing.assert_allclose(
            curve.fpr, [0.0, 0.0, 1 / 3, 2 / 3, 1.0]
        )
        np.testing.assert_allclose(
            curve.tpr, [0.0, 1 / 3, 2 / 3, 1.0, 1.0]
        )
        # Thresholds sweep the distinct scores descending; the closing
        # (1, 1) point carries -inf.
        np.testing.assert_array_equal(
            curve.thresholds, [4.0, 3.0, 2.0, 1.0, -np.inf]
        )

    def test_perfect_and_inverted_separation(self):
        assert auc([0.0, 1.0], [2.0, 3.0]) == 1.0
        assert auc([2.0, 3.0], [0.0, 1.0]) == 0.0

    def test_all_tied_scores_is_chance(self):
        curve = roc_curve([5.0, 5.0, 5.0], [5.0, 5.0])
        assert curve.auc == pytest.approx(0.5)
        # One diagonal segment: (0,0) then the tie moves both rates.
        np.testing.assert_allclose(curve.fpr, [0.0, 1.0])
        np.testing.assert_allclose(curve.tpr, [0.0, 1.0])

    def test_empty_class_rejected(self):
        with pytest.raises(AnalysisError, match="each class"):
            roc_curve([], [1.0])
        with pytest.raises(AnalysisError, match="each class"):
            roc_curve([1.0], [])

    def test_non_finite_scores_rejected(self):
        with pytest.raises(AnalysisError, match="finite"):
            roc_curve([np.nan], [1.0])
        with pytest.raises(AnalysisError, match="finite"):
            roc_curve([0.0], [np.inf])

    def test_matches_pairwise_probability(self, rng):
        neg = rng.normal(size=200)
        pos = rng.normal(loc=0.7, size=150)
        gt = pos[:, None] > neg[None, :]
        eq = pos[:, None] == neg[None, :]
        pairwise = float(gt.mean() + 0.5 * eq.mean())
        assert auc(neg, pos) == pytest.approx(pairwise)

    def test_points_decimation_keeps_endpoints(self, rng):
        curve = roc_curve(
            rng.normal(size=500), rng.normal(loc=0.5, size=500)
        )
        pts = curve.points(cap=33)
        assert len(pts) <= 33
        assert pts[0] == {"fpr": 0.0, "tpr": 0.0}
        assert pts[-1] == {"fpr": 1.0, "tpr": 1.0}
        fprs = [p["fpr"] for p in pts]
        assert fprs == sorted(fprs)


def _population(rng, n, length=256, tone=0.0):
    """Sinusoid-plus-noise windows, optionally with an extra tone."""
    t = np.arange(length)
    base = np.sin(2 * np.pi * 0.125 * t)
    x = base[None, :] + 0.05 * rng.normal(size=(n, length))
    if tone:
        x = x + tone * np.sin(2 * np.pi * 0.25 * t)[None, :]
    return x


class TestStateRoundTrip:
    def test_every_detector_round_trips_bit_identically(self, rng):
        golden = _population(rng, 128)
        probe = np.vstack([
            _population(rng, 24), _population(rng, 24, tone=0.05)
        ])
        for name in detector_names():
            det = create_detector(name).fit(golden)
            state = json.loads(json.dumps(det.state_dict()))
            clone = detector_from_state(name, state)
            np.testing.assert_array_equal(
                det.score(probe), clone.score(probe),
                err_msg=f"{name} scores drifted through JSON",
            )
            assert det.decide(det.score(probe)) == clone.decide(
                clone.score(probe)
            ), name
            assert clone.state_dict() == det.state_dict(), name

    def test_transductive_state_round_trips(self, rng):
        probe = np.vstack([
            _population(rng, 64), _population(rng, 32, tone=0.05)
        ])
        for name in ("spectral_median", "persistence"):
            det = create_detector(name).fit(np.empty((0, 0)))
            state = json.loads(json.dumps(det.state_dict()))
            assert state["baseline"] is None
            clone = detector_from_state(name, state)
            np.testing.assert_array_equal(
                det.score(probe), clone.score(probe)
            )
