"""Integration of registry detectors with the framework and fleet.

The backward-compatibility contract: selecting ``"euclidean"`` through
the registry is bit-identical to the analysis class (same state, same
scores, same fleet journal bytes), and non-batchable plugins degrade
the fleet's batched scoring mode to sequential loudly, never silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.euclidean import EuclideanDetector
from repro.detectors import create_detector
from repro.errors import AnalysisError, ExperimentError
from repro.fleet import (
    EventJournal,
    FleetScheduler,
    MetricsRegistry,
    MonitorSession,
    TraceFeed,
)
from repro.fleet.campaign import StreamingOneShot, oneshot_report
from repro.framework.batched import BatchedFleetMonitor
from repro.framework.classifier import TrojanClassifier
from repro.framework.evaluator import EvaluatorConfig, RuntimeTrustEvaluator


def _stream(rng, n, length=256, tone=0.0, amp=1.0):
    t = np.arange(length)
    base = np.sin(2 * np.pi * 0.125 * t)
    x = base[None, :] + 0.05 * rng.normal(size=(n, length))
    if tone:
        x = x + amp * np.sin(2 * np.pi * tone * t)[None, :]
    return x


def _evaluator(detector):
    ev = RuntimeTrustEvaluator.__new__(RuntimeTrustEvaluator)
    ev.detector = detector
    ev.golden_spectrum = None
    ev.fs = 1e9
    ev.config = EvaluatorConfig()
    return ev


def _run_fleet(detector, streams, scoring):
    metrics = MetricsRegistry()
    journal = EventJournal()
    ev = _evaluator(detector)
    sessions = [
        MonitorSession(c, ev, window=16, confirm=2,
                       metrics=metrics, journal=journal)
        for c in streams
    ]
    feeds = [
        TraceFeed(c, streams[c], batch=8, seed=11) for c in streams
    ]
    scheduler = FleetScheduler(
        sessions, scoring=scoring, journal=journal, metrics=metrics
    )
    return scheduler.run(feeds), journal, metrics


@pytest.fixture()
def streams(rng):
    return {
        "clean": _stream(rng, 120),
        "bad": _stream(rng, 120, tone=0.25, amp=0.4),
    }


class TestEuclideanViaRegistry:
    def test_plugin_state_and_scores_match_analysis_class(self, rng):
        golden = _stream(rng, 128)
        probe = np.vstack([
            _stream(rng, 24), _stream(rng, 24, tone=0.25, amp=0.3)
        ])
        direct = EuclideanDetector().fit(golden)
        plugin = create_detector("euclidean").fit(golden)
        assert plugin.state_dict() == direct.state_dict()
        np.testing.assert_array_equal(
            plugin.score(probe), direct.distances(probe)
        )

    def test_fleet_journal_is_bit_identical(self, rng, streams):
        golden = _stream(rng, 128)
        r_direct, j_direct, _ = _run_fleet(
            EuclideanDetector().fit(golden), streams, "batched"
        )
        r_plugin, j_plugin, m_plugin = _run_fleet(
            create_detector("euclidean").fit(golden), streams, "batched"
        )
        assert j_direct.events == j_plugin.events
        for chip in streams:
            assert (
                r_direct.reports[chip].alarms
                == r_plugin.reports[chip].alarms
            )
        counters = m_plugin.snapshot()["counters"]
        assert counters["fleet.scoring.batched"] > 0
        assert "fleet.scoring.batched_fallback" not in counters


class TestBatchedFallback:
    def test_unsupported_detector_falls_back_loudly(self, rng, streams):
        golden = _stream(rng, 128)
        detector = create_detector("spectral_median").fit(golden)
        r_bat, j_bat, m_bat = _run_fleet(detector, streams, "batched")
        counters = m_bat.snapshot()["counters"]
        assert counters["fleet.scoring.batched_fallback"] == 1
        assert "fleet.scoring.batched" not in counters
        # The degraded run must equal an explicitly sequential one.
        r_seq, j_seq, _ = _run_fleet(detector, streams, "sequential")
        assert j_bat.events == j_seq.events
        for chip in streams:
            assert (
                r_bat.reports[chip].alarms == r_seq.reports[chip].alarms
            )

    def test_batched_engine_rejects_unsupported_detector(self, rng):
        detector = create_detector("persistence").fit(_stream(rng, 64))
        session = MonitorSession("a", _evaluator(detector), window=16)
        with pytest.raises(AnalysisError, match="support batched"):
            BatchedFleetMonitor([session])


class TestClassifierWithRegistryDetectors:
    def test_accepts_any_fitted_detector_with_a_fingerprint(self, rng):
        detector = create_detector("spectral_median").fit(
            _stream(rng, 128)
        )
        clf = TrojanClassifier(detector)
        clf.add_template("tone-a", _stream(rng, 64, tone=0.25, amp=0.3))
        clf.add_template("tone-b", _stream(rng, 64, tone=0.375, amp=0.3))
        result = clf.classify(_stream(rng, 64, tone=0.25, amp=0.3))
        assert result.label == "tone-a"
        assert result.similarity > 0.8

    def test_rejects_transductive_detector(self):
        detector = create_detector("persistence").fit(np.empty((0, 0)))
        with pytest.raises(AnalysisError, match="fitted"):
            TrojanClassifier(detector)

    def test_rejects_detector_without_fingerprint(self):
        class NoFingerprint:
            pass

        with pytest.raises(AnalysisError, match="no fingerprint"):
            TrojanClassifier(NoFingerprint())


class TestEvaluatorGuards:
    def test_one_shot_evaluation_needs_a_golden_detector(self, rng):
        detector = create_detector("spectral_median").fit(
            _stream(rng, 64)
        )
        ev = _evaluator(detector)
        with pytest.raises(AnalysisError, match="golden-based"):
            ev.evaluate_traces(_stream(rng, 8))


class TestFleetOneShot:
    """The fleet campaign's one-shot verdict for registry plugins."""

    def test_euclidean_path_is_the_historical_evaluate(self, rng):
        detector = EuclideanDetector().fit(_stream(rng, 96))
        suspect = _stream(rng, 48, tone=0.25, amp=0.4)
        report = oneshot_report(detector, suspect)
        expected = detector.evaluate(suspect)
        np.testing.assert_array_equal(report.distances, expected.distances)
        assert report.threshold == expected.threshold
        assert report.separation == expected.separation
        assert report.separation_floor == expected.separation_floor
        assert report.detected == expected.detected

    def test_reference_free_detector_separates_via_envelope(self, rng):
        detector = create_detector("spectral_median").fit(_stream(rng, 128))
        clean = oneshot_report(detector, _stream(rng, 96))
        bad = oneshot_report(
            detector, _stream(rng, 96, tone=0.25, amp=0.4)
        )
        assert not clean.detected
        assert bad.detected
        assert bad.separation > bad.separation_floor
        # The envelope tightens with the window count, as the monitor's
        # analytic H0 threshold does.
        assert clean.separation_floor < clean.threshold

    def test_streaming_accumulator_matches_replay(self, rng):
        detector = create_detector("spectral_median").fit(_stream(rng, 128))
        traces = _stream(rng, 96, tone=0.25, amp=0.4)
        acc = StreamingOneShot(detector)
        acc.set_weights({"chip": np.ones(len(traces))})
        for lo in range(0, len(traces), 32):
            hi = min(lo + 32, len(traces))
            acc(0, lo, hi, {"chip": traces[lo:hi]})
        streamed = acc.report("chip")
        replay = oneshot_report(detector, traces)
        assert streamed.threshold == replay.threshold
        assert streamed.exceed_fraction == replay.exceed_fraction
        assert streamed.separation_floor == replay.separation_floor
        np.testing.assert_allclose(
            streamed.separation, replay.separation, rtol=1e-12
        )
        np.testing.assert_allclose(
            streamed.mean_distance, replay.mean_distance, rtol=1e-12
        )
        assert streamed.detected == replay.detected

    def test_streaming_accumulator_rejects_unfitted_detector(self):
        detector = create_detector("spectral_median").fit(np.empty((0, 0)))
        with pytest.raises(ExperimentError, match="fitted"):
            StreamingOneShot(detector)
