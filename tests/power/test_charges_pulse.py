"""Tests for per-cell charges and pulse-kernel waveform synthesis."""

import numpy as np
import pytest

from repro.errors import EmModelError
from repro.layout.technology import make_tech180
from repro.logic.builder import NetlistBuilder
from repro.power.charges import (
    clock_charges,
    leakage_power,
    switching_charges,
    total_dynamic_energy,
)
from repro.power.pulse import (
    convolve_kernel,
    current_kernel,
    emf_kernel,
    step_kernel,
    synthesize_events,
)

FS = 2.4e9


@pytest.fixture(scope="module")
def small_netlist():
    b = NetlistBuilder("p", group="core")
    a = b.input("a")
    y1 = b.inv(a)
    y2 = b.inv(y1)
    b.dff(y2)
    # High-fanout node.
    for _ in range(10):
        b.buf(y1)
    return b.build()


def test_switching_charges_positive_and_fanout_sensitive(small_netlist):
    tech = make_tech180()
    names = list(small_netlist.instances)
    q = switching_charges(small_netlist, names, tech)
    assert (q > 0).all()
    # The first inverter drives 11 loads and must carry the most charge.
    idx = {n: i for i, n in enumerate(names)}
    driver = small_netlist.nets[
        small_netlist.instances[names[0]].output_net
    ].driver
    assert q[idx[driver]] == q.max()


def test_clock_charges_only_for_flops(small_netlist):
    tech = make_tech180()
    names = list(small_netlist.instances)
    qc = clock_charges(small_netlist, names, tech)
    for name, value in zip(names, qc):
        inst = small_netlist.instances[name]
        if inst.cell.is_sequential:
            assert value > 0
        else:
            assert value == 0


def test_leakage_power_positive(small_netlist):
    assert leakage_power(small_netlist, make_tech180()) > 0


def test_total_dynamic_energy(small_netlist):
    tech = make_tech180()
    names = list(small_netlist.instances)
    q = switching_charges(small_netlist, names, tech)
    counts = np.ones(len(names))
    energy = total_dynamic_energy(counts, q, tech.vdd)
    assert energy == pytest.approx(float(q.sum()) * tech.vdd)
    with pytest.raises(ValueError):
        total_dynamic_energy(np.ones(3), q, tech.vdd)


def test_current_kernel_unit_area():
    k = current_kernel(FS, 1e-9)
    assert k.sum() / FS == pytest.approx(1.0)
    assert (k >= 0).all()
    assert len(k) % 2 == 1


def test_emf_kernel_integrates_to_zero():
    k = emf_kernel(FS, 1e-9)
    assert abs(k.sum() / FS) < 1e-6 * np.abs(k).max()


def test_step_kernel_is_negative_unit_area():
    k = step_kernel(FS, 2e-9)
    assert k.sum() / FS == pytest.approx(-1.0)


def test_kernel_validation():
    with pytest.raises(EmModelError):
        current_kernel(-1, 1e-9)
    with pytest.raises(EmModelError):
        current_kernel(FS, 0)


def test_synthesize_single_event_places_kernel():
    kern = emf_kernel(FS, 1e-9)
    wave = synthesize_events(
        np.array([100 / FS]), np.array([2.0]), kern, 300, FS
    )
    assert wave.shape == (1, 300)
    peak_idx = int(np.argmax(np.abs(wave[0])))
    assert abs(peak_idx - 100) <= len(kern)
    assert np.abs(wave).max() == pytest.approx(2.0 * np.abs(kern).max(), rel=1e-9)


def test_synthesize_is_linear():
    kern = emf_kernel(FS, 1e-9)
    times = np.array([50 / FS, 120 / FS])
    a = synthesize_events(times, np.array([1.0, 0.0]), kern, 300, FS)
    b = synthesize_events(times, np.array([0.0, 3.0]), kern, 300, FS)
    both = synthesize_events(times, np.array([1.0, 3.0]), kern, 300, FS)
    assert np.allclose(both, a + b, atol=1e-9 * np.abs(both).max())


def test_synthesize_batched_amplitudes():
    kern = emf_kernel(FS, 1e-9)
    amps = np.array([[1.0, 2.0]])
    wave = synthesize_events(np.array([10 / FS]), amps, kern, 100, FS)
    assert wave.shape == (2, 100)
    assert np.allclose(wave[1], 2 * wave[0])


def test_synthesize_ignores_out_of_range_events():
    kern = emf_kernel(FS, 1e-9)
    wave = synthesize_events(
        np.array([-5 / FS, 1e6 / FS]), np.array([1.0, 1.0]), kern, 100, FS
    )
    assert np.abs(wave).max() < 1e-30 * np.abs(kern).max() + 1e-30


def test_synthesize_shape_mismatch():
    kern = emf_kernel(FS, 1e-9)
    with pytest.raises(EmModelError):
        synthesize_events(np.array([0.0]), np.array([1.0, 2.0]), kern, 10, FS)


def test_convolve_kernel_requires_2d():
    with pytest.raises(EmModelError):
        convolve_kernel(np.zeros(10), np.zeros(3))
