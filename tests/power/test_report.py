"""Tests for the power reporter."""

import pytest

from repro.crypto import build_aes_circuit
from repro.layout.technology import make_tech180
from repro.logic import CompiledNetlist, NetlistBuilder
from repro.power.report import encryption_power_workload, measure_power
from repro.trojans import attach_trojan4
from repro.trojans.t4_power import Trojan4Params

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


@pytest.fixture(scope="module")
def power_setup():
    b = NetlistBuilder("die")
    aes = build_aes_circuit(b)
    attach_trojan4(b, aes, Trojan4Params(n_toggles=64))
    nl = b.build()
    return nl, aes, CompiledNetlist(nl)


def test_power_report_structure(power_setup):
    nl, aes, sim = power_setup
    report = measure_power(
        nl, sim, make_tech180(), 24e6,
        encryption_power_workload(aes, KEY, n_cycles=48, batch=4),
    )
    assert "aes" in report.groups and "trojan4" in report.groups
    aes_power = report.groups["aes"]
    assert aes_power.dynamic > 0
    assert aes_power.clock > 0
    assert aes_power.leakage > 0
    assert report.total > aes_power.total
    assert "TOTAL" in report.format()


def test_aes_power_in_plausible_180nm_range(power_setup):
    nl, aes, sim = power_setup
    report = measure_power(
        nl, sim, make_tech180(), 24e6,
        encryption_power_workload(aes, KEY, n_cycles=48, batch=4),
    )
    # A 28 k-gate AES at 24 MHz in 180 nm: single-digit milliwatts.
    assert 0.3e-3 < report.groups["aes"].total < 30e-3


def test_dormant_trojan_draws_only_leakage(power_setup):
    nl, aes, sim = power_setup
    report = measure_power(
        nl, sim, make_tech180(), 24e6,
        encryption_power_workload(aes, KEY, n_cycles=48, batch=4),
    )
    t4 = report.groups["trojan4"]
    # Clock-gated and idle: only the (ungated) armed flop clocks, and
    # only the dormant trigger comparator sees data edges.
    assert t4.clock < 0.01 * report.groups["aes"].clock
    assert t4.dynamic < 0.05 * report.groups["aes"].dynamic
    assert t4.leakage > 0
    assert report.overhead_percent("trojan4") < 5.0
