"""Tests for the Trojan trigger machinery shared by all payloads."""

import numpy as np
import pytest

from repro.crypto import build_aes_circuit
from repro.crypto.encoding import blocks_from_bytes
from repro.errors import TrojanError
from repro.logic import CompiledNetlist, NetlistBuilder
from repro.trojans import attach_trojan1, trigger_plaintext
from repro.trojans.t1_am import Trojan1Params


def _die_with_t1():
    b = NetlistBuilder("die")
    aes = build_aes_circuit(b)
    t1 = attach_trojan1(b, aes, Trojan1Params(n_drivers=4))
    return aes, t1, CompiledNetlist(b.build())


@pytest.fixture(scope="module")
def die():
    return _die_with_t1()


def test_dormant_trojan_stays_inactive(die):
    aes, t1, sim = die
    rng = np.random.default_rng(0)
    pts = rng.integers(0, 256, (2, 16), np.uint8)
    keys = rng.integers(0, 256, (2, 16), np.uint8)
    state = sim.reset(batch=2, inputs=aes.start_inputs(pts, keys))
    for i in range(40):
        sim.step(state, aes.idle_inputs(2) if i == 0 else None)
    assert not sim.read(state, t1.active_net).any()


def test_external_enable_activates(die):
    aes, t1, sim = die
    state = sim.reset(batch=1, inputs={t1.enable_pin: np.array([True])})
    assert sim.read(state, t1.active_net)[0]


def test_internal_trigger_arms_on_crafted_plaintext(die):
    aes, t1, sim = die
    key = bytes(range(16))
    params = Trojan1Params()
    pt = trigger_plaintext(key, params.match_byte, params.match_value)
    pts = blocks_from_bytes([pt])
    keys = blocks_from_bytes([key])
    state = sim.reset(batch=1, inputs=aes.start_inputs(pts, keys))
    sim.step(state, aes.idle_inputs(1))  # load: magic value lands in state
    sim.step(state)  # armed flop captures the match
    assert sim.read(state, t1.active_net)[0]
    # Sticky: still active many cycles later with no enable.
    for _ in range(20):
        sim.step(state)
    assert sim.read(state, t1.active_net)[0]


def test_random_plaintexts_do_not_arm(die):
    aes, t1, sim = die
    rng = np.random.default_rng(3)
    key = bytes(range(16))
    keys = np.tile(np.frombuffer(key, np.uint8), (8, 1))
    state = sim.reset(batch=8)
    for enc in range(6):
        pts = rng.integers(0, 256, (8, 16), np.uint8)
        sim.step(state, aes.start_inputs(pts, keys))
        sim.step(state, aes.idle_inputs(8))
        for _ in range(12):
            sim.step(state)
    assert not sim.read(state, t1.active_net).any()


def test_trigger_plaintext_validation():
    with pytest.raises(TrojanError):
        trigger_plaintext(b"short", 0, 0)
    with pytest.raises(TrojanError):
        trigger_plaintext(bytes(16), 13, 0)


def test_trigger_plaintext_places_pattern():
    key = bytes(range(16))
    pt = trigger_plaintext(key, 4, 0xDEADBEEF)
    state = bytes(p ^ k for p, k in zip(pt, key))
    assert state[4:8] == bytes.fromhex("deadbeef")
