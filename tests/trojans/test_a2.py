"""Tests for the A2 analog Trojan (charge pump + gated trigger)."""

import numpy as np
import pytest

from repro.crypto import build_aes_circuit
from repro.errors import TrojanError
from repro.logic import CompiledNetlist, NetlistBuilder
from repro.trojans import A2ChargePump, attach_a2
from repro.trojans.a2 import A2Params
from repro.trojans.base import TapMode


@pytest.fixture(scope="module")
def a2_die():
    b = NetlistBuilder("die")
    aes = build_aes_circuit(b)
    a2 = attach_a2(b, aes)
    return aes, a2, CompiledNetlist(b.build())


def test_pump_fires_under_sustained_fast_toggling():
    pump = A2ChargePump(A2Params())
    fired_at = None
    for cycle in range(1, 1000):
        if pump.step(toggles=1):
            fired_at = cycle
            break
    assert fired_at is not None
    assert fired_at < 200


def test_pump_immune_to_sparse_toggling():
    """The A2 design point: occasional toggles leak away harmlessly."""
    pump = A2ChargePump(A2Params())
    for cycle in range(1, 20000):
        assert not pump.step(toggles=1 if cycle % 40 == 0 else 0)
    assert pump.voltage < pump.threshold_voltage


def test_pump_saturates_at_vdd():
    pump = A2ChargePump(A2Params(leak_fraction=0.0))
    for _ in range(10000):
        pump.step(toggles=4)
    assert pump.voltage <= pump.vdd + 1e-12


def test_pump_fires_once_until_reset():
    pump = A2ChargePump(A2Params())
    fires = sum(pump.step(toggles=3) for _ in range(500))
    assert fires == 1
    pump.reset()
    assert pump.charge == 0.0 and not pump.fired
    assert sum(pump.step(toggles=3) for _ in range(500)) == 1


def test_pump_parameter_validation():
    with pytest.raises(TrojanError):
        A2ChargePump(A2Params(threshold_fraction=1.5))
    with pytest.raises(TrojanError):
        A2ChargePump(A2Params(leak_fraction=1.0))
    pump = A2ChargePump(A2Params())
    with pytest.raises(TrojanError):
        pump.step(toggles=-1)


def test_trigger_wire_quiet_until_enabled(a2_die):
    aes, a2, sim = a2_die
    wire = a2.monitor_nets["trigger_wire"]
    state = sim.reset(batch=1)
    values = []
    for _ in range(24):
        sim.step(state)
        values.append(int(sim.read(state, wire)[0]))
    assert set(values) == {0}, "dormant trigger must not flip"


def test_trigger_wire_pulses_at_f_clk_over_3(a2_die):
    aes, a2, sim = a2_die
    wire = a2.monitor_nets["trigger_wire"]
    state = sim.reset(batch=1, inputs={a2.enable_pin: np.array([True])})
    values = []
    for _ in range(30):
        sim.step(state)
        values.append(int(sim.read(state, wire)[0]))
    rises = np.nonzero(np.diff(values) > 0)[0]
    assert len(rises) >= 8
    assert (np.diff(rises) == 3).all(), "mod-3 divider period"


def test_a2_tap_is_rise_mode_and_gated(a2_die):
    _aes, a2, _sim = a2_die
    assert len(a2.analog_taps) == 1
    tap = a2.analog_taps[0]
    assert tap.mode is TapMode.PULSE_ON_RISE
    assert tap.gate_by == a2.enable_pin
    assert tap.amplitude > 0
    assert a2.metadata["trigger_period_cycles"] == 3


def test_a2_payload_fault_injection(a2_die):
    """Once the pump fires, the payload flips a victim bit: the chip's
    ciphertext corrupts (demonstrated via force_net fault injection)."""
    from repro.crypto import encrypt_block
    from repro.crypto.encoding import bits_to_bytes

    aes, a2, sim = a2_die
    rng = np.random.default_rng(4)
    pt = rng.integers(0, 256, (1, 16), np.uint8)
    key = rng.integers(0, 256, (1, 16), np.uint8)
    state = sim.reset(batch=1, inputs=aes.start_inputs(pt, key))
    for i in range(aes.latency - 1):
        sim.step(state, aes.idle_inputs(1) if i == 0 else None)
    # Payload fires during the final round: flip one state bit.
    sim.force_net(state, aes.state_q[0], ~sim.read(state, aes.state_q[0]))
    sim.step(state)
    ct = bits_to_bytes(sim.read_bus_bits(state, aes.state_q))
    good = encrypt_block(bytes(pt[0]), bytes(key[0]))
    assert bytes(ct[0]) != good


def test_a2_params_validation():
    b = NetlistBuilder("die")
    aes = build_aes_circuit(b)
    with pytest.raises(TrojanError):
        attach_a2(b, aes, A2Params(trigger_period_cycles=1))
