"""Functional tests proving each Trojan's payload actually leaks.

Each Trojan is attached to a real AES die (small driver banks to keep
the netlists light) and driven by the logic simulator; the leaked
streams are recovered by the receivers in :mod:`repro.analysis.demod`.
"""

import numpy as np
import pytest

from repro.analysis.demod import (
    despread_cdma_bits,
    leakage_symbol_bits,
    lfsr_sequence,
)
from repro.crypto import build_aes_circuit
from repro.logic import CompiledNetlist, NetlistBuilder
from repro.trojans import (
    attach_trojan1,
    attach_trojan2,
    attach_trojan3,
    attach_trojan4,
)
from repro.trojans.t1_am import CYCLES_PER_BIT, Trojan1Params
from repro.trojans.t2_leakage import Trojan2Params
from repro.trojans.t3_cdma import CHIPS_PER_BIT, LFSR_TAPS, LFSR_WIDTH, Trojan3Params
from repro.trojans.t4_power import Trojan4Params

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def _key_bits(key: bytes) -> list[int]:
    return [(key[i // 8] >> (7 - i % 8)) & 1 for i in range(128)]


def _run(sim, aes, trojan, cycles, record):
    """Enable the trojan, hold the key on the bus, record nets per cycle."""
    keys = np.tile(np.frombuffer(KEY, np.uint8), (1, 1))
    pts = np.zeros((1, 16), np.uint8)
    inputs = aes.start_inputs(pts, keys)
    inputs[aes.start] = np.array([False])  # key applied, no encryption
    inputs[trojan.enable_pin] = np.array([True])
    state = sim.reset(batch=1, inputs=inputs)
    log = {label: [sim.read(state, net)[0]] for label, net in record.items()}
    for _ in range(cycles):
        sim.step(state)
        for label, net in record.items():
            log[label].append(sim.read(state, net)[0])
    return {k: np.array(v, dtype=np.uint8) for k, v in log.items()}


@pytest.fixture(scope="module")
def t1_die():
    b = NetlistBuilder("die")
    aes = build_aes_circuit(b)
    t1 = attach_trojan1(b, aes, Trojan1Params(n_drivers=4, frame_init=0))
    return aes, t1, CompiledNetlist(b.build())


def test_t1_antenna_transmits_key_ook(t1_die):
    aes, t1, sim = t1_die
    n_bits = 10
    log = _run(
        sim, aes, t1, n_bits * CYCLES_PER_BIT + 2,
        {"antenna": t1.monitor_nets["antenna"]},
    )
    ant = log["antenna"][1:]  # drop the reset sample
    bits = []
    for k in range(n_bits):
        window = ant[k * CYCLES_PER_BIT : (k + 1) * CYCLES_PER_BIT]
        bits.append(1 if window.mean() > 0.1 else 0)
    assert bits == _key_bits(KEY)[:n_bits]


def test_t1_carrier_period_is_32_cycles(t1_die):
    aes, t1, sim = t1_die
    log = _run(sim, aes, t1, 128, {"carrier": t1.monitor_nets["carrier"]})
    carrier = log["carrier"]
    edges = np.nonzero(np.diff(carrier))[0]
    assert (np.diff(edges) == 16).all()  # half-period 16 -> 750 kHz @ 24 MHz


@pytest.fixture(scope="module")
def t2_die():
    b = NetlistBuilder("die")
    aes = build_aes_circuit(b)
    t2 = attach_trojan2(b, aes, Trojan2Params(depth=8))
    return aes, t2, CompiledNetlist(b.build())


def test_t2_leak_net_carries_key_stream(t2_die):
    aes, t2, sim = t2_die
    log = _run(sim, aes, t2, 80, {"leak": t2.monitor_nets["leak"]})
    # leak stage 1 reproduces key bit (t - 2) after the 2-stage delay.
    got = leakage_symbol_bits(log["leak"], symbol_cycles=1, n_bits=40, phase=2)
    assert list(got) == _key_bits(KEY)[:40]


def test_t2_has_leakage_tap(t2_die):
    _aes, t2, _sim = t2_die
    assert len(t2.analog_taps) == 1
    tap = t2.analog_taps[0]
    assert tap.amplitude > 0
    assert tap.gate_by == t2.active_net


@pytest.fixture(scope="module")
def t3_die():
    b = NetlistBuilder("die")
    aes = build_aes_circuit(b)
    t3 = attach_trojan3(b, aes)
    return aes, t3, CompiledNetlist(b.build())


def test_t3_despreads_to_key(t3_die):
    aes, t3, sim = t3_die
    n_bits = 4
    cycles = n_bits * CHIPS_PER_BIT + 4
    log = _run(sim, aes, t3, cycles, {"chip": t3.monitor_nets["chip"]})
    # chip_q lags the XOR by one cycle; PRN output starts at the seed.
    chips = log["chip"][1 : 1 + n_bits * CHIPS_PER_BIT]
    prn = lfsr_sequence(LFSR_WIDTH, LFSR_TAPS, 0xACE1, chips.size)
    bits = despread_cdma_bits(chips, prn, CHIPS_PER_BIT)
    assert list(bits) == _key_bits(KEY)[:n_bits]


def test_t3_prn_matches_software_replay(t3_die):
    aes, t3, sim = t3_die
    log = _run(sim, aes, t3, 64, {"prn": t3.monitor_nets["prn"]})
    replay = lfsr_sequence(LFSR_WIDTH, LFSR_TAPS, 0xACE1, 64)
    assert np.array_equal(log["prn"][:64], replay)


@pytest.fixture(scope="module")
def t4_die():
    b = NetlistBuilder("die")
    aes = build_aes_circuit(b)
    t4 = attach_trojan4(b, aes, Trojan4Params(n_toggles=16))
    return aes, t4, CompiledNetlist(b.build())


def test_t4_bank_toggles_when_active(t4_die):
    aes, t4, sim = t4_die
    log = _run(sim, aes, t4, 16, {"q": t4.monitor_nets["toggle0"]})
    # The bank flips every other cycle.
    assert 4 <= np.abs(np.diff(log["q"].astype(int))).sum() <= 12


def test_t4_bank_silent_when_dormant(t4_die):
    aes, t4, sim = t4_die
    state = sim.reset(batch=1)
    values = []
    for _ in range(16):
        sim.step(state)
        values.append(int(sim.read(state, t4.monitor_nets["toggle0"])[0]))
    assert len(set(values)) == 1
