"""Tests for the Trojan taxonomy registry."""

import pytest

from repro.chip.chip import ALL_TROJANS
from repro.trojans.taxonomy import (
    AbstractionLevel,
    Activation,
    Effect,
    PROFILES,
    by_effect,
    coverage_summary,
    profile,
)


def test_every_chip_trojan_has_a_profile():
    assert set(PROFILES) == set(ALL_TROJANS)


def test_profile_lookup():
    p = profile("trojan1")
    assert p.effect is Effect.LEAK_INFORMATION
    assert "750 kHz" in p.channel
    with pytest.raises(KeyError):
        profile("trojan9")


def test_a2_is_the_only_transistor_level_trojan():
    analog = [
        name
        for name, p in PROFILES.items()
        if p.abstraction is AbstractionLevel.TRANSISTOR
    ]
    assert analog == ["a2"]


def test_leakers_vs_degraders():
    leakers = {p.name for p in by_effect(Effect.LEAK_INFORMATION)}
    assert leakers == {"trojan1", "trojan2", "trojan3"}
    degraders = {p.name for p in by_effect(Effect.DEGRADE_PERFORMANCE)}
    assert degraders == {"trojan4"}


def test_all_digital_trojans_have_dual_triggers():
    """Paper: 'Besides the original triggering mechanism, we design an
    extra triggering signal for each Trojan'."""
    for name in ("trojan1", "trojan2", "trojan3", "trojan4"):
        acts = profile(name).activation
        assert Activation.INTERNALLY_TRIGGERED in acts
        assert Activation.EXTERNALLY_TRIGGERED in acts


def test_coverage_summary_mentions_everyone():
    text = coverage_summary()
    for name in ALL_TROJANS:
        assert name in text
