"""Structure and determinism of the sensor-array localisation driver.

The heavy statistical gate (hit@4 = 4/4 on T1–T4 with the golden chip
unflagged at the full smoke size) runs in CI's ``array-smoke`` job via
the CLI; these tests pin the driver's *contract* on a tiny grid —
payload shape against the registered schema, heatmap geometry, the
golden round, and the input validation paths.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.chip import array_scenario
from repro.chip.chip import Chip
from repro.chip.config import ChipConfig
from repro.errors import ExperimentError
from repro.experiments import validate_payload
from repro.experiments.localization import run_array_localization
from repro.experiments.registry import get_spec


@pytest.fixture(scope="module")
def tiny_array_chip() -> Chip:
    return Chip.build(
        config=ChipConfig(sensor_array_rows=2, sensor_array_cols=2),
        seed=1,
    )


@pytest.fixture(scope="module")
def result(tiny_array_chip):
    return run_array_localization(
        tiny_array_chip,
        array_scenario(2, 2),
        trojans=("trojan4",),
        n_golden=32,
        n_eval=16,
        n_suspect=16,
        batch=16,
        fieldmap_cycles=8,
        fieldmap_grid=8,
        cache=False,
    )


def test_result_structure(result):
    assert (result.rows, result.cols) == (2, 2)
    assert len(result.channels) == 4
    assert set(result.outcomes) == {"trojan4"}
    outcome = result.outcomes["trojan4"]
    assert outcome.heatmap.shape == (2, 2)
    assert outcome.true_cell is not None
    assert 0 <= outcome.argmax_cell[0] < 2
    assert np.isfinite(outcome.centroid_distance_um)
    # The golden round carries a heatmap but no truth to compare to.
    assert result.golden.heatmap.shape == (2, 2)
    assert result.golden.true_cell is None
    assert "trojan4" in result.diff_maps
    assert isinstance(result.format(), str)


def test_payload_matches_registered_schema(result):
    payload = json.loads(json.dumps(result.payload()))
    validate_payload(payload, get_spec("localization_array").schema)
    assert payload["rows"] == 2 and payload["cols"] == 2
    assert payload["trojans"]["trojan4"]["heatmap"][0][0] == pytest.approx(
        float(result.outcomes["trojan4"].heatmap[0, 0])
    )


def test_localization_is_deterministic(tiny_array_chip, result):
    again = run_array_localization(
        tiny_array_chip,
        array_scenario(2, 2),
        trojans=("trojan4",),
        n_golden=32,
        n_eval=16,
        n_suspect=16,
        batch=16,
        fieldmap_cycles=8,
        fieldmap_grid=8,
        cache=False,
    )
    np.testing.assert_array_equal(
        again.outcomes["trojan4"].heatmap,
        result.outcomes["trojan4"].heatmap,
    )
    assert again.outcomes["trojan4"].argmax_cell == (
        result.outcomes["trojan4"].argmax_cell
    )


def test_rejects_chip_without_array(chip):
    with pytest.raises(ExperimentError, match="sensor array"):
        run_array_localization(chip, array_scenario(2, 2))
