"""Tests for the ablation drivers (reduced sizes for speed)."""

import pytest

from repro.experiments.ablation import (
    sweep_pca_dimensions,
    threshold_study,
)


def test_pca_sweep_returns_all_depths(chip, sim_scenario):
    points = sweep_pca_dimensions(
        chip,
        sim_scenario,
        trojan="trojan4",
        depths=(None, 4),
        n_golden=96,
        n_suspect=64,
    )
    assert [p.n_components for p in points] == [None, 4]
    for p in points:
        assert 0.0 <= p.auc <= 1.0
        assert p.separation >= 0.0
    # The loud Trojan is detectable with and without PCA.
    assert points[0].auc > 0.8


def test_threshold_study_rules(chip, sim_scenario):
    points = threshold_study(
        chip, sim_scenario, trojan="trojan4", n_golden=96, n_suspect=64
    )
    rules = [p.rule for p in points]
    assert rules == ["eq1-max", "p90", "p95", "p99"]
    by_rule = {p.rule: p for p in points}
    # Eq. (1) uses the max golden distance: zero FPR on its own data.
    assert by_rule["eq1-max"].false_positive_rate == 0.0
    # Thresholds decrease from eq1-max to p90.
    assert by_rule["p90"].threshold < by_rule["eq1-max"].threshold
    # Lower thresholds can only increase both rates.
    assert (
        by_rule["p90"].true_positive_rate
        >= by_rule["p99"].true_positive_rate
    )
