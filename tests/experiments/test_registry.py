"""Tests for the experiment registry and the RunResult envelope."""

from __future__ import annotations

import json

import pytest

from repro.config import ReproConfig
from repro.errors import ExperimentError
from repro.experiments import (
    REGISTRY,
    RunResult,
    all_specs,
    get_spec,
    run_experiment,
    run_euclidean_experiment,
    run_table1,
    shared_chip,
    validate_artifact,
    validate_payload,
)
from repro.experiments.campaign import calibrated
from repro.chip import simulation_scenario


EXPECTED_EXPERIMENTS = {
    "table1", "snr", "snr_silicon", "euclidean", "fig4",
    "fig6_histograms", "fig6_spectra", "latency", "ablation",
    "leakage", "localization", "localization_array", "baseline_power",
    "detector_tournament",
}


class TestRegistry:
    def test_all_fourteen_experiments_registered(self):
        assert set(REGISTRY) == EXPECTED_EXPERIMENTS
        assert len(all_specs()) == 14

    def test_specs_are_well_formed(self):
        for spec in all_specs():
            assert spec.scenario in ("sim", "sil", "none")
            assert spec.schema, f"{spec.name} has no payload schema"
            assert set(spec.smoke_params) == set(spec.params)

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_spec("fig99")

    def test_unknown_parameter_override(self):
        with pytest.raises(ExperimentError, match="unknown parameters"):
            run_experiment("table1", params={"n_rows": 3})


class TestValidatePayload:
    def test_scalars(self):
        validate_payload(3, "int")
        validate_payload(3.5, "number")
        validate_payload(3, "number")
        validate_payload("x", "str")
        validate_payload(True, "bool")
        validate_payload(None, "int?")
        validate_payload({"anything": [1]}, "any")

    def test_bool_is_not_a_number(self):
        with pytest.raises(ExperimentError, match="bool"):
            validate_payload(True, "int")
        with pytest.raises(ExperimentError, match="bool"):
            validate_payload(True, "number")

    def test_type_mismatch_names_the_path(self):
        with pytest.raises(ExperimentError, match=r"payload\.a\[1\]"):
            validate_payload({"a": [1, "two"]}, {"a": ["int"]})

    def test_object_keys_are_exact(self):
        schema = {"x": "int", "y": "int"}
        with pytest.raises(ExperimentError, match="missing"):
            validate_payload({"x": 1}, schema)
        with pytest.raises(ExperimentError, match="unexpected"):
            validate_payload({"x": 1, "y": 2, "z": 3}, schema)

    def test_mapping_wildcard(self):
        validate_payload({"a": 1.0, "b": 2.0}, {"*": "number"})
        with pytest.raises(ExperimentError):
            validate_payload({"a": "nope"}, {"*": "number"})

    def test_null_only_where_allowed(self):
        validate_payload({"t": None}, {"*": "int?"})
        with pytest.raises(ExperimentError):
            validate_payload({"t": None}, {"*": "int"})


class TestRunResult:
    def _result(self) -> RunResult:
        return RunResult(
            spec="demo",
            scenario="sim",
            seed=1,
            smoke=True,
            config=ReproConfig.resolve(environ={}).describe(),
            metrics={"counters": {}, "gauges": {}, "histograms": {}},
            payload={"value": 1.5},
            text="demo",
            elapsed_seconds=0.25,
        )

    def test_save_load_round_trip(self, tmp_path):
        result = self._result()
        path = result.save(tmp_path / "sub" / "demo.json")
        loaded = RunResult.load(path)
        assert loaded == result

    def test_json_is_canonical(self):
        doc = json.loads(self._result().to_json_bytes())
        assert doc["schema_version"] == 1
        assert doc["payload"] == {"value": 1.5}

    def test_missing_and_unknown_fields_rejected(self):
        doc = json.loads(self._result().to_json_bytes())
        del doc["payload"]
        with pytest.raises(ExperimentError, match="missing"):
            RunResult.from_json_bytes(json.dumps(doc).encode())
        doc["payload"] = {}
        doc["surprise"] = 1
        with pytest.raises(ExperimentError, match="unknown fields"):
            RunResult.from_json_bytes(json.dumps(doc).encode())

    def test_config_snapshot_round_trips_through_artifact(self, tmp_path):
        cfg = ReproConfig(workers=2, sim_backend="packed", host_cpus=4)
        result = self._result()
        result.config = cfg.describe()
        loaded = RunResult.load(result.save(tmp_path / "demo.json"))
        assert ReproConfig.from_snapshot(loaded.config) == cfg


class TestRunExperiment:
    def test_table1_payload_matches_direct_driver(self):
        result = run_experiment("table1", smoke=True)
        direct = run_table1(shared_chip(seed=1))
        expected = {
            row.circuit: {
                "gates": row.gate_count,
                "percent": row.percentage,
                "area_based": row.is_area_percentage,
            }
            for row in direct.rows
        }
        assert result.payload == {"rows": expected}
        assert result.text == direct.format()
        assert result.spec == "table1"
        assert result.smoke is True

    def test_euclidean_payload_matches_direct_driver(self):
        result = run_experiment("euclidean", smoke=True)
        chip = shared_chip(seed=1)
        scenario = calibrated(chip, simulation_scenario())
        direct = run_euclidean_experiment(
            chip,
            scenario,
            receiver="sensor",
            n_golden=128,
            n_suspect=64,
            trojans=("trojan4",),
        )
        assert result.payload["separations"] == direct.separations
        assert result.payload["threshold"] == direct.threshold
        # The artifact must survive a JSON round trip bit-for-bit.
        dumped = json.loads(result.to_json_bytes())
        assert dumped["payload"] == result.payload

    def test_artifact_embeds_config_and_metrics(self, tmp_path):
        cfg = ReproConfig.resolve(environ={}, workers=1)
        result = run_experiment("euclidean", smoke=True, config=cfg)
        assert result.config == cfg.describe()
        assert ReproConfig.from_snapshot(result.config) == cfg
        counters = result.metrics["counters"]
        assert any(k.startswith("sim.backend.") for k in counters)
        loaded = RunResult.load(result.save(tmp_path / "euclidean.json"))
        assert validate_artifact(loaded) is loaded

    def test_explicit_config_overrides_environment(self, monkeypatch):
        # Regression: a config passed by argument must beat REPRO_* env
        # vars for the whole run.
        monkeypatch.setenv("REPRO_SIM_BACKEND", "packed")
        cfg = ReproConfig.resolve(environ={}, sim_backend="bool")
        result = run_experiment("table1", smoke=True, config=cfg)
        assert result.config["sim_backend"] == "bool"
