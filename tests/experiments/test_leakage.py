"""Tests for the TVLA leakage experiments on the live chip."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.leakage import (
    FixedPlaintextWorkload,
    TVLA_FIXED_PLAINTEXT,
    run_fixed_vs_random_tvla,
    run_trojan_tvla,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def test_fixed_workload_repeats_plaintext(chip):
    import numpy as np

    wl = FixedPlaintextWorkload(chip.aes, KEY, TVLA_FIXED_PLAINTEXT)
    wl.begin(4, np.random.default_rng(0))
    wl.inputs(0, 4)
    wl.inputs(12, 4)
    assert len(wl.plaintexts) == 2
    assert np.array_equal(wl.plaintexts[0], wl.plaintexts[1])
    target = np.frombuffer(TVLA_FIXED_PLAINTEXT, np.uint8)
    assert (wl.plaintexts[0] == target[None, :]).all()


def test_fixed_workload_validation(chip):
    with pytest.raises(ExperimentError):
        FixedPlaintextWorkload(chip.aes, KEY, b"short")


def test_unprotected_aes_fails_tvla(chip, sim_scenario):
    """Our AES has no masking: fixed-vs-random must leak hard."""
    report = run_fixed_vs_random_tvla(chip, sim_scenario, n_traces=192)
    assert report.result.leaks
    assert report.result.max_abs_t > 10
    assert "LEAKS" in report.format()


def test_trojan_tvla_detects_t4_not_dormant(chip, sim_scenario):
    report = run_trojan_tvla(chip, sim_scenario, "trojan4", n_traces=160)
    assert report.result.leaks
    assert report.result.max_abs_t > 10
