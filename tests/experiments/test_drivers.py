"""Tests for the experiment drivers (fast, reduced sizes)."""

import pytest

from repro.experiments.campaign import (
    DEFAULT_KEY,
    collect_ed_traces,
    collect_spectral_record,
)
from repro.experiments.euclidean import run_euclidean_experiment
from repro.experiments.fig4 import run_a2_spectrum
from repro.experiments.fig6 import run_fig6_histograms, run_fig6_spectra
from repro.experiments.snr import run_snr_experiment
from repro.experiments.table1 import run_table1


def test_collect_ed_traces_shapes(chip, sim_scenario):
    traces = collect_ed_traces(chip, sim_scenario, 40, batch=16)
    spc = chip.config.samples_per_cycle
    for name in ("sensor", "probe"):
        assert traces[name].shape == (40, 12 * spc // 12)


def test_collect_ed_traces_no_decimation(chip, sim_scenario):
    traces = collect_ed_traces(
        chip, sim_scenario, 8, batch=8, decimate=1, receivers=("sensor",)
    )
    assert traces["sensor"].shape == (8, 12 * chip.config.samples_per_cycle)


def test_collect_spectral_record_shape(chip, sim_scenario):
    rec = collect_spectral_record(
        chip, sim_scenario, 128, receivers=("sensor",), batch=2
    )
    assert rec["sensor"].shape == (2, 129 * chip.config.samples_per_cycle)


def test_table1_driver(chip):
    result = run_table1(chip)
    assert {r.circuit for r in result.rows} == {
        "aes", "trojan1", "trojan2", "trojan3", "trojan4", "a2",
    }
    assert "Gate Count" in result.format()


def test_snr_driver_structure(chip, sim_scenario):
    result = run_snr_experiment(chip, sim_scenario, n_cycles=128, batch=4)
    assert set(result.per_receiver) == {"sensor", "probe"}
    assert "paper" in result.format()
    assert (
        result.per_receiver["sensor"].snr_db
        > result.per_receiver["probe"].snr_db
    )


def test_euclidean_driver_small(chip, sim_scenario):
    result = run_euclidean_experiment(
        chip,
        sim_scenario,
        n_golden=128,
        n_suspect=64,
        trojans=("trojan4",),
    )
    assert result.separations["trojan4"] > 0
    assert result.reports["trojan4"].detected
    assert "EDth" in result.format()


def test_fig4_driver_small(chip, sim_scenario):
    result = run_a2_spectrum(chip, sim_scenario, n_cycles=768)
    assert result.trigger_frequency == pytest.approx(chip.config.f_clk / 3)
    assert result.magnitude_ratio_at_trigger() > 1.2
    assert "MHz" in result.format()


def test_fig6_histogram_driver_small(chip, sil_scenario):
    result = run_fig6_histograms(
        chip,
        sil_scenario,
        "sensor",
        n_golden=96,
        n_suspect=96,
        trojans=("trojan4",),
    )
    panel = result.panels["trojan4"]
    assert panel.histogram.golden_counts.sum() == 96
    assert 0 <= panel.overlap <= 1
    assert "trojan4" in result.format()


def test_fig6_spectra_driver_small(chip, sil_scenario):
    result = run_fig6_spectra(
        chip, sil_scenario, n_cycles=512, trojans=("trojan1", "trojan3")
    )
    assert set(result.panels) == {"trojan1", "trojan3"}
    t1 = result.panels["trojan1"]
    assert t1.low_freq_energy_ratio > 1.0
    assert "trojan1" in result.format()
