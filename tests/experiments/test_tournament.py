"""Tests for the detector tournament experiment (structure, not AUC:
the detection-quality acceptance lives in tests/detectors and the CI
detector-smoke job)."""

from __future__ import annotations

import json

import pytest

from repro.detectors import detector_names
from repro.errors import ExperimentError
from repro.experiments import run_experiment, validate_artifact
from repro.experiments.tournament import (
    SCENARIOS,
    run_detector_tournament,
    scaled_noise_scenario,
)


class TestScaledNoiseScenario:
    def test_unit_scale_is_identity(self, sim_scenario):
        assert scaled_noise_scenario(sim_scenario, 1.0) is sim_scenario

    def test_scales_env_noise_and_overrides(self, sim_scenario):
        scaled = scaled_noise_scenario(sim_scenario, 2.0)
        assert scaled.name == f"{sim_scenario.name}-noise2x"
        assert scaled.env_noise == sim_scenario.env_noise.scaled(2.0)
        if sim_scenario.noise_overrides is not None:
            assert scaled.noise_overrides == tuple(
                (receiver, rms * 2.0)
                for receiver, rms in sim_scenario.noise_overrides
            )

    def test_non_positive_scale_rejected(self, sim_scenario):
        with pytest.raises(ExperimentError, match="noise scale"):
            scaled_noise_scenario(sim_scenario, 0.0)


class TestTournamentStructure:
    def test_window_minimums(self, chip, sim_scenario):
        with pytest.raises(ExperimentError, match="at least two"):
            run_detector_tournament(chip, sim_scenario, n_eval=1)

    def test_unknown_detector_selection(self, chip, sim_scenario):
        with pytest.raises(ExperimentError, match="unknown detectors"):
            run_detector_tournament(
                chip, sim_scenario, detectors=("bogus",)
            )

    def test_tiny_run_emits_schema_valid_artifact(self):
        result = run_experiment(
            "detector_tournament",
            smoke=True,
            params={
                "n_reference": 32,
                "n_eval": 16,
                "n_suspect": 8,
                "noise_scales": (1.0,),
            },
        )
        validate_artifact(result)
        payload = result.payload
        assert set(payload["sweep"]) == set(detector_names())
        assert tuple(payload["scenarios"]) == SCENARIOS
        assert payload["noise_scales"] == [1.0]
        for name, by_scale in payload["sweep"].items():
            assert set(by_scale) == {"1"}
            cells = by_scale["1"]
            assert set(cells) == set(SCENARIOS)
            for cell in cells.values():
                assert 0.0 <= cell["auc"] <= 1.0
                assert cell["n_neg"] == 16
                assert cell["n_pos"] == 8
                assert cell["roc"][0] == {"fpr": 0.0, "tpr": 0.0}
                assert cell["roc"][-1] == {"fpr": 1.0, "tpr": 1.0}
        ref_free = {
            name: info["reference_free"]
            for name, info in payload["detectors"].items()
        }
        assert ref_free == {
            "euclidean": False,
            "spectral": False,
            "spectral_median": True,
            "persistence": True,
        }
        assert "detector tournament" in result.text
        # The artifact survives a JSON round trip bit-for-bit.
        assert json.loads(result.to_json_bytes())["payload"] == payload
