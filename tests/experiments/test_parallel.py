"""The parallel campaign runner must be invisible in the results.

``run_campaigns`` with a worker pool has to return bit-identical traces
to the serial loop — every random stream is derived from the spec's
``(chip seed, scenario seed, rng_role)``, never from process or
scheduling state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.parallel import (
    WORKERS_ENV_VAR,
    campaign_spec,
    resolve_workers,
    run_campaigns,
)


def _small_specs(chip, scenario):
    specs = [
        campaign_spec(
            "golden",
            "ed",
            chip,
            scenario,
            n_traces=8,
            batch=4,
            receivers=("sensor",),
            rng_role="ptest/golden",
        ),
        campaign_spec(
            "trojan1",
            "ed",
            chip,
            scenario,
            n_traces=8,
            batch=4,
            receivers=("sensor",),
            trojan_enables=("trojan1",),
            rng_role="ptest/trojan1",
        ),
        campaign_spec(
            "spectrum",
            "spectral",
            chip,
            scenario,
            n_cycles=64,
            batch=2,
            receivers=("sensor",),
            rng_role="ptest/spectrum",
        ),
    ]
    return specs


def test_parallel_matches_serial_bit_for_bit(chip, sim_scenario):
    specs = _small_specs(chip, sim_scenario)
    serial = run_campaigns(specs, workers=1)
    parallel = run_campaigns(specs, workers=2)
    assert list(serial) == ["golden", "trojan1", "spectrum"]
    assert list(parallel) == list(serial)
    for name in serial:
        s, p = serial[name]["sensor"], parallel[name]["sensor"]
        assert s.shape == p.shape, name
        assert np.array_equal(s, p), name


def test_rerun_is_deterministic(chip, sim_scenario):
    spec = _small_specs(chip, sim_scenario)[0]
    first = run_campaigns([spec], workers=1)["golden"]["sensor"]
    again = run_campaigns([spec], workers=1)["golden"]["sensor"]
    assert np.array_equal(first, again)


def test_trojan_campaign_differs_from_golden(chip, sim_scenario):
    specs = _small_specs(chip, sim_scenario)[:2]
    out = run_campaigns(specs, workers=1)
    assert not np.array_equal(
        out["golden"]["sensor"], out["trojan1"]["sensor"]
    )


def test_duplicate_names_rejected(chip, sim_scenario):
    spec = _small_specs(chip, sim_scenario)[0]
    with pytest.raises(ExperimentError):
        run_campaigns([spec, spec], workers=1)


def test_unknown_kind_rejected(chip, sim_scenario):
    with pytest.raises(ExperimentError):
        campaign_spec("x", "nope", chip, sim_scenario)


def test_default_rng_role_is_per_campaign(chip, sim_scenario):
    spec = campaign_spec(
        "auto-role", "ed", chip, sim_scenario, n_traces=4, batch=4
    )
    assert ("rng_role", "campaign/auto-role") in spec.params


def test_resolve_workers(monkeypatch):
    assert resolve_workers(3) == 3
    monkeypatch.setenv(WORKERS_ENV_VAR, "5")
    assert resolve_workers() == 5
    monkeypatch.setenv(WORKERS_ENV_VAR, "zero?")
    with pytest.raises(ExperimentError):
        resolve_workers()
    monkeypatch.delenv(WORKERS_ENV_VAR)
    assert resolve_workers() >= 1
    with pytest.raises(ExperimentError):
        resolve_workers(0)
