"""Shared fixtures.

The full test chip takes a few seconds to assemble (netlist generation
plus the Neumann coupling integrals), so one instance is shared across
the whole session; tests must treat it as immutable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chip import Chip, simulation_scenario, silicon_scenario
from repro.chip.calibration import calibrate_scenario


@pytest.fixture(scope="session")
def chip() -> Chip:
    """The paper's full test chip: AES + four digital Trojans + A2."""
    return Chip.build(seed=1)


@pytest.fixture(scope="session")
def golden_chip() -> Chip:
    """A Trojan-free AES die (the trusted reference design)."""
    return Chip.build(seed=1, trojans=())


@pytest.fixture(scope="session")
def sim_scenario(chip):
    """SNR-calibrated simulation scenario for the shared chip."""
    return calibrate_scenario(chip, simulation_scenario())


@pytest.fixture(scope="session")
def sil_scenario(chip):
    """SNR-calibrated silicon scenario for the shared chip."""
    return calibrate_scenario(chip, silicon_scenario())


@pytest.fixture(scope="session", autouse=True)
def _release_campaign_caches():
    """Session teardown: drop the chips pinned by the campaign caches.

    The memoised acquisition engine / shared-chip caches hold full Chip
    objects for the process lifetime; releasing them at teardown keeps
    long pytest-driven harnesses (and xdist workers) from accumulating
    every chip ever built.
    """
    yield
    from repro.experiments import clear_campaign_caches

    clear_campaign_caches()


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
