"""Tests for activity recorders and netlist statistics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.logic import (
    ActivityAccumulator,
    CompiledNetlist,
    NetlistBuilder,
    ToggleCountRecorder,
    TraceRecorder,
    netlist_stats,
)
from repro.logic.stats import format_table


def _counter_sim():
    b = NetlistBuilder("cnt", group="core")
    q = b.counter(3)
    return CompiledNetlist(b.build())


def test_toggle_counts_of_counter():
    sim = _counter_sim()
    state = sim.reset()
    rec = ToggleCountRecorder(sim)
    for _ in range(8):
        rec.record(sim.step(state))
    # The LSB flop toggles on every one of the 8 cycles.
    assert rec.counts.max() == 8
    assert rec.cycles == 8
    assert rec.activity_factor().max() == pytest.approx(1.0)


def test_toggle_counts_by_group():
    sim = _counter_sim()
    state = sim.reset()
    rec = ToggleCountRecorder(sim)
    rec.record(sim.step(state))
    by_group = rec.counts_by_group()
    assert set(by_group) == {"core"}
    assert by_group["core"] > 0


def test_activity_factor_requires_cycles():
    sim = _counter_sim()
    rec = ToggleCountRecorder(sim)
    with pytest.raises(SimulationError):
        rec.activity_factor()


def test_activity_accumulator_weighted_bins():
    weights = np.array([1.0, 2.0, 4.0])
    bins = np.array([0, 1, 1])
    acc = ActivityAccumulator(weights, bins)
    toggles = np.array([[1, 0], [1, 1], [0, 1]], dtype=bool)
    acc.record(toggles)
    out = acc.result()
    assert out.shape == (1, 2, 2)
    # bin0 = w0*t0; bin1 = w1*t1 + w2*t2
    assert np.allclose(out[0, 0], [1.0, 0.0])
    assert np.allclose(out[0, 1], [2.0, 6.0])


def test_activity_accumulator_accepts_float_matrices():
    acc = ActivityAccumulator(np.ones(2), np.zeros(2, dtype=int))
    acc.record(np.array([[0.35, 1.0], [1.0, 0.35]]))
    assert np.allclose(acc.result()[0, 0], [1.35, 1.35])


def test_activity_accumulator_validates_shapes():
    with pytest.raises(SimulationError):
        ActivityAccumulator(np.ones(3), np.zeros(2, dtype=int))
    acc = ActivityAccumulator(np.ones(2), np.zeros(2, dtype=int))
    with pytest.raises(SimulationError):
        acc.record(np.zeros((3, 1), dtype=bool))
    with pytest.raises(SimulationError):
        acc.result()  # nothing recorded


def test_activity_accumulator_clear():
    acc = ActivityAccumulator(np.ones(1), np.zeros(1, dtype=int))
    acc.record(np.ones((1, 1), dtype=bool))
    acc.clear()
    assert acc.cycles == 0


def test_trace_recorder_history():
    sim = _counter_sim()
    state = sim.reset()
    rec = TraceRecorder(sim)
    for _ in range(4):
        rec.record(sim.step(state))
    hist = rec.history()
    assert hist.shape == (4, sim.num_instances, 1)


def test_trace_recorder_limit():
    sim = _counter_sim()
    rec = TraceRecorder(sim, limit_cycles=1)
    state = sim.reset()
    rec.record(sim.step(state))
    with pytest.raises(SimulationError):
        rec.record(sim.step(state))


def test_netlist_stats_groups_and_percentages():
    b = NetlistBuilder("die", group="aes")
    a = b.input("a")
    for _ in range(10):
        b.inv(a)
    with b.in_group("trojan"):
        b.inv(a)
    stats = netlist_stats(b.build())
    assert stats.groups["aes"].gate_count == 10
    assert stats.groups["trojan"].gate_count == 1
    assert stats.gate_percentage("trojan", "aes") == pytest.approx(10.0)
    assert 0 < stats.area_percentage("trojan", "aes") <= 100
    assert stats.total_gates == 11


def test_format_table_contains_rows():
    b = NetlistBuilder("die", group="aes")
    a = b.input("a")
    b.inv(a)
    with b.in_group("trojan1"):
        b.inv(a)
    stats = netlist_stats(b.build())
    table = format_table(stats, reference="aes")
    assert "aes" in table and "trojan1" in table and "%" in table
