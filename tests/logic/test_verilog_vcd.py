"""Tests for Verilog export and VCD waveform dumping."""

import re

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.logic.builder import NetlistBuilder
from repro.logic.simulator import CompiledNetlist
from repro.logic.vcd import VcdWriter, _vcd_id
from repro.logic.verilog import (
    library_verilog,
    netlist_to_verilog,
    sanitize_identifier,
    write_verilog,
)


def _small_design():
    b = NetlistBuilder("unit", group="core")
    a = b.input("a[0]")
    c = b.input("b")
    y = b.xor2(a, c)
    q = b.dff(y)
    en = b.input("en")
    b.dff(y, enable=en)
    b.mark_output(q)
    return b.build(), q


def test_sanitize_identifier():
    assert sanitize_identifier("pt[3]") == "pt_3"
    assert sanitize_identifier("module") == "module_"
    assert sanitize_identifier("3net") == "n_3net"
    assert re.match(r"^[A-Za-z_][A-Za-z0-9_$]*$", sanitize_identifier("w$ird-name!"))


def test_netlist_to_verilog_structure():
    nl, q = _small_design()
    text = netlist_to_verilog(nl)
    assert "module unit (" in text
    assert "input clk;" in text and "input rst_n;" in text
    assert "input a_0;" in text and "input b;" in text
    assert "XOR2" in text
    assert ".CLK(clk)" in text and ".RSTN(rst_n)" in text
    assert '(* group = "core" *)' in text
    assert text.strip().endswith("endmodule // unit")


def test_verilog_instance_count_matches_netlist():
    nl, _q = _small_design()
    text = netlist_to_verilog(nl)
    # One instantiation line per instance.
    inst_lines = [
        l for l in text.splitlines()
        if re.match(r"^\s+(XOR2|DFF|DFFE)\s+\w+ \(", l)
    ]
    assert len(inst_lines) == nl.num_instances


def test_library_verilog_covers_all_cells():
    from repro.logic.library import list_cells

    text = library_verilog()
    for name in list_cells():
        assert f"module {name} (" in text, name


def test_write_verilog_file(tmp_path):
    nl, _q = _small_design()
    path = tmp_path / "unit.v"
    write_verilog(nl, str(path))
    text = path.read_text()
    assert "module unit (" in text
    assert "module NAND2 (" in text  # library appended


def test_vcd_id_unique_and_printable():
    ids = [_vcd_id(i) for i in range(500)]
    assert len(set(ids)) == 500
    assert all(33 <= ord(ch) <= 126 for vid in ids for ch in vid)


def test_vcd_dump_counter(tmp_path):
    b = NetlistBuilder("cnt")
    q = b.counter(2)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    path = tmp_path / "cnt.vcd"
    with VcdWriter(str(path), sim, nets=list(q)) as vcd:
        vcd.sample(state)
        for _ in range(4):
            sim.step(state)
            vcd.sample(state)
    text = path.read_text()
    assert "$timescale 1ns $end" in text
    assert "$enddefinitions $end" in text
    # Initial values plus value changes appear with timestamps.
    assert text.count("#") >= 4
    # LSB toggles every cycle -> its id must appear repeatedly.
    lsb_id = text.split("$var wire 1 ")[2].split(" ")[0]
    assert text.count(lsb_id) >= 4


def test_vcd_unknown_net_rejected(tmp_path):
    b = NetlistBuilder("x")
    b.input("a")
    sim = CompiledNetlist(b.build())
    with pytest.raises(SimulationError):
        VcdWriter(str(tmp_path / "x.vcd"), sim, nets=["ghost"])
    with pytest.raises(SimulationError):
        VcdWriter(str(tmp_path / "x.vcd"), sim, nets=[])


def test_verilog_of_full_aes_is_consistent():
    """Exporting the full AES must produce one instance line per cell."""
    from repro.crypto import build_aes_circuit

    aes = build_aes_circuit()
    text = netlist_to_verilog(aes.netlist, module_name="aes_core")
    assert text.count("endmodule") == 1
    # Sampled structural facts.
    assert ".CLK(clk)" in text
    assert "pt_0" in text and "key_127" in text
