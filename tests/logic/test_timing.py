"""Tests for the static timing analyser."""

import pytest

from repro.errors import SimulationError
from repro.logic.builder import NetlistBuilder
from repro.logic.timing import analyze_timing, cell_delay


def _chain(n_inverters: int):
    b = NetlistBuilder("chain")
    d = b.input("d")
    q = b.dff(d)
    node = q
    for _ in range(n_inverters):
        node = b.inv(node)
    b.dff(node)
    return b.build()


def test_longer_chain_is_slower():
    short = analyze_timing(_chain(4), clock_period=10e-9)
    long_ = analyze_timing(_chain(20), clock_period=10e-9)
    assert long_.critical_path.delay > short.critical_path.delay
    assert long_.max_frequency < short.max_frequency


def test_critical_path_is_the_chain():
    report = analyze_timing(_chain(6), clock_period=10e-9)
    # Path: 6 inverters (the DFF start point appears as the first hop).
    inv_hops = [i for i in report.critical_path.instances if i.startswith("inv")]
    assert len(inv_hops) == 6


def test_slack_sign():
    report = analyze_timing(_chain(8), clock_period=100e-9)
    assert report.met and report.slack > 0
    tight = analyze_timing(_chain(200), clock_period=1e-9)
    assert not tight.met and tight.slack < 0
    assert "VIOLATED" in tight.format()


def test_load_increases_delay():
    b = NetlistBuilder("load")
    a = b.input("a")
    light = b.inv(a)
    heavy = b.inv(a)
    for _ in range(12):
        b.buf(heavy)
    nl = b.build()
    light_drv = nl.nets[light].driver
    heavy_drv = nl.nets[heavy].driver
    assert cell_delay(nl, heavy_drv) > cell_delay(nl, light_drv)


def test_bad_period_rejected():
    with pytest.raises(SimulationError):
        analyze_timing(_chain(2), clock_period=0.0)


def test_aes_closes_timing_at_24mhz():
    """The generated AES must actually run at the chip's clock."""
    from repro.crypto import build_aes_circuit

    aes = build_aes_circuit()
    report = analyze_timing(aes.netlist, clock_period=1 / 24e6)
    assert report.met, report.format()
    # And its critical path is S-box-ish deep, not trivial.
    assert report.critical_path.delay > 2e-9
    assert report.max_frequency > 24e6
