"""Tests for the vectorised cycle-based simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.logic.builder import NetlistBuilder
from repro.logic.simulator import CompiledNetlist


def _xor_chain():
    b = NetlistBuilder("x")
    a = b.input("a")
    c = b.input("b")
    y = b.xor2(a, c)
    q = b.dff(y)
    b.mark_output(q)
    return b.build(), y, q


def test_reset_settles_combinational():
    nl, y, _q = _xor_chain()
    sim = CompiledNetlist(nl)
    state = sim.reset(
        batch=2, inputs={"a": np.array([1, 0], bool), "b": np.array([0, 0], bool)}
    )
    assert np.array_equal(sim.read(state, y), np.array([True, False]))


def test_flop_captures_on_edge_not_reset():
    nl, _y, q = _xor_chain()
    sim = CompiledNetlist(nl)
    state = sim.reset(
        batch=1, inputs={"a": np.array([True]), "b": np.array([False])}
    )
    assert not sim.read(state, q)[0]
    sim.step(state)
    assert sim.read(state, q)[0]


def test_input_applied_after_capture():
    """step() captures the PREVIOUS cycle's D, then applies new inputs."""
    nl, _y, q = _xor_chain()
    sim = CompiledNetlist(nl)
    state = sim.reset(
        batch=1, inputs={"a": np.array([True]), "b": np.array([False])}
    )
    # New input a=0 arrives with this step; the flop still captures the
    # old settled value (1).
    sim.step(state, {"a": np.array([False])})
    assert sim.read(state, q)[0]
    sim.step(state)
    assert not sim.read(state, q)[0]


def test_toggle_matrix_shape_and_content():
    nl, _y, _q = _xor_chain()
    sim = CompiledNetlist(nl)
    state = sim.reset(batch=3)
    toggles = sim.step(
        state, {"a": np.array([1, 0, 1], bool), "b": np.array([0, 0, 1], bool)}
    )
    assert toggles.shape == (sim.num_instances, 3)
    xor_row = toggles[sim.instance_index[nl.nets[_y].driver]]
    assert np.array_equal(xor_row, np.array([True, False, False]))


def test_dffe_holds_when_disabled():
    b = NetlistBuilder("e")
    d = b.input("d")
    en = b.input("en")
    q = b.dff(d, enable=en)
    sim = CompiledNetlist(b.build())
    state = sim.reset(
        batch=1, inputs={"d": np.array([True]), "en": np.array([True])}
    )
    sim.step(state, {"en": np.array([False]), "d": np.array([False])})
    assert sim.read(state, q)[0]  # captured while enabled
    sim.step(state)
    assert sim.read(state, q)[0]  # held while disabled


def test_ff_init_values_applied():
    b = NetlistBuilder("i")
    q1 = b.dff(b.const(0), init=1)
    q0 = b.dff(b.const(1), init=0)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    assert sim.read(state, q1)[0]
    assert not sim.read(state, q0)[0]


def test_unknown_input_rejected():
    nl, _y, _q = _xor_chain()
    sim = CompiledNetlist(nl)
    state = sim.reset()
    with pytest.raises(SimulationError):
        sim.step(state, {"ghost": np.array([True])})


def test_wrong_input_shape_rejected():
    nl, _y, _q = _xor_chain()
    sim = CompiledNetlist(nl)
    state = sim.reset(batch=2)
    with pytest.raises(SimulationError):
        sim.step(state, {"a": np.array([True, False, True])})


def test_scalar_input_broadcasts():
    nl, y, _q = _xor_chain()
    sim = CompiledNetlist(nl)
    state = sim.reset(batch=4, inputs={"a": True, "b": False})
    assert sim.read(state, y).all()


def test_zero_batch_rejected():
    nl, _y, _q = _xor_chain()
    sim = CompiledNetlist(nl)
    with pytest.raises(SimulationError):
        sim.reset(batch=0)


def test_read_bus_width_limit():
    b = NetlistBuilder("w")
    bus = b.input_bus("x", 64)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    with pytest.raises(SimulationError):
        sim.read_bus(state, bus)
    assert sim.read_bus_bits(state, bus).shape == (64, 1)


def test_force_net_propagates():
    b = NetlistBuilder("f")
    a = b.input("a")
    y = b.inv(a)
    sim = CompiledNetlist(b.build())
    state = sim.reset(inputs={"a": np.array([False])})
    assert sim.read(state, y)[0]
    sim.force_net(state, a, True)
    assert not sim.read(state, y)[0]


def test_output_values_tracks_instances():
    b = NetlistBuilder("ov")
    a = b.input("a")
    b.inv(a)
    sim = CompiledNetlist(b.build())
    state = sim.reset(inputs={"a": np.array([False])})
    vals = sim.output_values(state)
    assert vals.shape == (1, 1)
    assert vals[0, 0]  # INV of 0


def test_clock_enable_values():
    b = NetlistBuilder("ce")
    d = b.input("d")
    en = b.input("en")
    b.dff(d)  # always clocked
    b.dff(d, enable=en)
    sim = CompiledNetlist(b.build())
    state = sim.reset(
        batch=2,
        inputs={"d": np.zeros(2, bool), "en": np.array([True, False])},
    )
    ce = sim.clock_enable_values(state)
    assert ce.shape == (2, 2)
    assert ce[0].all()  # plain DFF always enabled
    assert np.array_equal(ce[1], np.array([True, False]))


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
def test_batched_equals_sequential_simulation(a_val, b_val):
    """One batched run must equal two independent runs (no cross-talk)."""
    b = NetlistBuilder("p")
    xa = b.input_bus("xa", 16)
    xb = b.input_bus("xb", 16)
    s, carry = b.adder_bus(xa, xb)
    q = b.register_bus(s)
    sim = CompiledNetlist(b.build())

    def run(batch_vals):
        inputs = {}
        av = np.array([v[0] for v in batch_vals])
        bv = np.array([v[1] for v in batch_vals])
        for i in range(16):
            inputs[f"xa[{i}]"] = ((av >> (15 - i)) & 1).astype(bool)
            inputs[f"xb[{i}]"] = ((bv >> (15 - i)) & 1).astype(bool)
        state = sim.reset(batch=len(batch_vals), inputs=inputs)
        sim.step(state)
        return sim.read_bus(state, q)

    together = run([(a_val, b_val), (b_val, a_val)])
    alone0 = run([(a_val, b_val)])
    alone1 = run([(b_val, a_val)])
    assert together[0] == alone0[0]
    assert together[1] == alone1[0]
    assert together[0] == (a_val + b_val) % 65536
