"""Tests for the structural netlist builder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.logic.builder import NetlistBuilder
from repro.logic.simulator import CompiledNetlist


def _run_comb(build, inputs):
    """Build a small combinational circuit and evaluate it."""
    b = NetlistBuilder("t")
    pins = {name: b.input(name) for name in inputs}
    outs = build(b, pins)
    sim = CompiledNetlist(b.build())
    batch = len(next(iter(inputs.values())))
    state = sim.reset(
        batch=batch,
        inputs={n: np.asarray(v, dtype=bool) for n, v in inputs.items()},
    )
    return {o: sim.read(state, net) for o, net in outs.items()}, sim, state


def test_adder_bus_matches_integer_addition():
    b = NetlistBuilder("add")
    a_bus = b.input_bus("a", 6)
    b_bus = b.input_bus("b", 6)
    s_bus, carry = b.adder_bus(a_bus, b_bus)
    sim = CompiledNetlist(b.build())
    avals = np.arange(0, 64, 7)
    bvals = np.arange(0, 64, 5)[: len(avals)]
    inputs = {}
    for i in range(6):
        inputs[f"a[{i}]"] = ((avals >> (5 - i)) & 1).astype(bool)
        inputs[f"b[{i}]"] = ((bvals >> (5 - i)) & 1).astype(bool)
    state = sim.reset(batch=len(avals), inputs=inputs)
    total = sim.read_bus(state, s_bus) + (sim.read(state, carry) << 6)
    assert np.array_equal(total, avals + bvals)


def test_decoder_is_one_hot():
    b = NetlistBuilder("dec")
    sel = b.input_bus("s", 3)
    lines = b.decoder(sel)
    sim = CompiledNetlist(b.build())
    vals = np.arange(8)
    inputs = {f"s[{i}]": ((vals >> (2 - i)) & 1).astype(bool) for i in range(3)}
    state = sim.reset(batch=8, inputs=inputs)
    matrix = np.stack([sim.read(state, l) for l in lines])
    assert np.array_equal(matrix.sum(axis=0), np.ones(8))
    assert np.array_equal(np.argmax(matrix, axis=0), vals)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=8, max_size=8))
def test_rom_returns_programmed_words(words):
    b = NetlistBuilder("rom")
    addr = b.input_bus("a", 3)
    out = b.rom(addr, words, 8)
    sim = CompiledNetlist(b.build())
    vals = np.arange(8)
    inputs = {f"a[{i}]": ((vals >> (2 - i)) & 1).astype(bool) for i in range(3)}
    state = sim.reset(batch=8, inputs=inputs)
    assert np.array_equal(sim.read_bus(state, out), np.array(words))


def test_rom_wrong_word_count_rejected():
    b = NetlistBuilder("rom")
    addr = b.input_bus("a", 3)
    with pytest.raises(NetlistError):
        b.rom(addr, [0] * 7, 8)


def test_mux_tree_selects():
    b = NetlistBuilder("mux")
    values = b.input_bus("v", 8)
    sel = b.input_bus("s", 3)
    out = b.mux_tree(values, sel)
    sim = CompiledNetlist(b.build())
    data = 0b10110010
    batch = 8
    sels = np.arange(8)
    inputs = {f"v[{i}]": np.full(batch, bool((data >> (7 - i)) & 1)) for i in range(8)}
    inputs.update(
        {f"s[{i}]": ((sels >> (2 - i)) & 1).astype(bool) for i in range(3)}
    )
    state = sim.reset(batch=batch, inputs=inputs)
    got = sim.read(state, out)
    expected = np.array([bool((data >> (7 - k)) & 1) for k in sels])
    assert np.array_equal(got, expected)


def test_mux_tree_size_mismatch_rejected():
    b = NetlistBuilder("mux")
    values = b.input_bus("v", 6)
    sel = b.input_bus("s", 3)
    with pytest.raises(NetlistError):
        b.mux_tree(values, sel)


def test_counter_counts_and_wraps():
    b = NetlistBuilder("cnt")
    q = b.counter(3)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    seen = []
    for _ in range(10):
        sim.step(state)
        seen.append(int(sim.read_bus(state, q)[0]))
    assert seen == [1, 2, 3, 4, 5, 6, 7, 0, 1, 2]


def test_counter_enable_freezes():
    b = NetlistBuilder("cnt")
    en = b.input("en")
    q = b.counter(3, enable=en)
    sim = CompiledNetlist(b.build())
    state = sim.reset(inputs={"en": np.array([True])})
    for _ in range(3):
        sim.step(state)
    assert int(sim.read_bus(state, q)[0]) == 3
    sim.step(state, {"en": np.array([False])})
    frozen = int(sim.read_bus(state, q)[0])
    for _ in range(5):
        sim.step(state)
    assert int(sim.read_bus(state, q)[0]) == frozen


@pytest.mark.parametrize(
    "width,taps,period",
    [(3, (0, 2), 7), (4, (0, 3), 15), (16, (10, 12, 13, 15), 65535)],
)
def test_lfsr_maximal_period(width, taps, period):
    b = NetlistBuilder("lfsr")
    q = b.lfsr(width, taps=taps, init=1)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    start = int(sim.read_bus(state, q)[0])
    count = 0
    while True:
        sim.step(state)
        count += 1
        if int(sim.read_bus(state, q)[0]) == start:
            break
        assert count <= period, "period exceeded expectation"
    assert count == period


def test_lfsr_rejects_zero_seed():
    b = NetlistBuilder("lfsr")
    with pytest.raises(NetlistError):
        b.lfsr(4, taps=(0, 3), init=0)


def test_equals_const_detects_value():
    b = NetlistBuilder("eq")
    bus = b.input_bus("x", 4)
    hit = b.equals_const(bus, 0b1010)
    sim = CompiledNetlist(b.build())
    vals = np.arange(16)
    inputs = {f"x[{i}]": ((vals >> (3 - i)) & 1).astype(bool) for i in range(4)}
    state = sim.reset(batch=16, inputs=inputs)
    got = sim.read(state, hit)
    assert np.array_equal(np.nonzero(got)[0], np.array([0b1010]))


def test_shift_register_delays_stream():
    b = NetlistBuilder("sr")
    din = b.input("d")
    stages = b.shift_register(din, 4)
    sim = CompiledNetlist(b.build())
    state = sim.reset(batch=1)
    pattern = [1, 0, 1, 1, 0, 0, 1, 0]
    seen_last = []
    for bit in pattern:
        sim.step(state, {"d": np.array([bool(bit)])})
        seen_last.append(int(sim.read(state, stages[-1])[0]))
    # Last stage reproduces the input delayed by 4 cycles.
    assert seen_last[4:] == pattern[:4]


def test_const_bus_encodes_value():
    b = NetlistBuilder("c")
    bus = b.const_bus(0b1011, 4)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    assert int(sim.read_bus(state, bus)[0]) == 0b1011


def test_tie_cells_are_shared_within_group():
    b = NetlistBuilder("c")
    n1 = b.const(1)
    n2 = b.const(1)
    assert n1 == n2


def test_in_group_scopes_label():
    b = NetlistBuilder("g", group="outer")
    a = b.input("a")
    b.inv(a)
    with b.in_group("inner"):
        b.inv(a)
    b.inv(a)
    groups = [inst.group for inst in b.netlist.instances.values()]
    assert groups == ["outer", "inner", "outer"]


def test_reduce_tree_rejects_empty():
    b = NetlistBuilder("r")
    with pytest.raises(NetlistError):
        b.reduce_tree("AND2", [])
