"""Extra builder tests: flop_into, register buses, counter init."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.logic.builder import NetlistBuilder
from repro.logic.simulator import CompiledNetlist


def test_flop_into_drives_preexisting_net():
    b = NetlistBuilder("f")
    q = b.netlist.add_net("state_q").name
    d = b.inv(q)  # feedback through the pre-declared net
    b.flop_into(d, q)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    values = []
    for _ in range(4):
        sim.step(state)
        values.append(int(sim.read(state, q)[0]))
    assert values == [1, 0, 1, 0]


def test_flop_into_with_init():
    b = NetlistBuilder("f")
    q = b.netlist.add_net("q").name
    b.flop_into(b.buf(q), q, init=1)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    assert sim.read(state, q)[0]


def test_register_bus_with_init_value():
    b = NetlistBuilder("r")
    d = b.input_bus("d", 4)
    q = b.register_bus(d, init=0b1010)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    assert int(sim.read_bus(state, q)[0]) == 0b1010


def test_counter_init_offsets_sequence():
    b = NetlistBuilder("c")
    q = b.counter(4, init=13)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    seen = [int(sim.read_bus(state, q)[0])]
    for _ in range(4):
        sim.step(state)
        seen.append(int(sim.read_bus(state, q)[0]))
    assert seen == [13, 14, 15, 0, 1]


def test_counter_init_out_of_range():
    b = NetlistBuilder("c")
    with pytest.raises(NetlistError):
        b.counter(3, init=8)


def test_mux_bus_selects_whole_bus():
    b = NetlistBuilder("m")
    a = b.const_bus(0b0011, 4)
    c = b.const_bus(0b1100, 4)
    sel = b.input("sel")
    out = b.mux_bus(a, c, sel)
    sim = CompiledNetlist(b.build())
    state = sim.reset(batch=2, inputs={"sel": np.array([False, True])})
    got = sim.read_bus(state, out)
    assert list(got) == [0b0011, 0b1100]


def test_xor_bus_width_mismatch():
    b = NetlistBuilder("x")
    a = b.input_bus("a", 4)
    c = b.input_bus("c", 3)
    with pytest.raises(NetlistError):
        b.xor_bus(a, c)


def test_adder_bus_carry_out():
    b = NetlistBuilder("a")
    x = b.const_bus(0b111, 3)
    y = b.const_bus(0b001, 3)
    s, carry = b.adder_bus(x, y)
    sim = CompiledNetlist(b.build())
    state = sim.reset()
    assert int(sim.read_bus(state, s)[0]) == 0
    assert sim.read(state, carry)[0]


def test_gate_arity_check():
    b = NetlistBuilder("g")
    a = b.input("a")
    with pytest.raises(NetlistError):
        b.gate("AND2", a)
