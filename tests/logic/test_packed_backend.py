"""Packed (bit-sliced) backend equivalence against the bool backend."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.logic.builder import NetlistBuilder
from repro.logic.cells import packed_function
from repro.logic.library import LIBRARY
from repro.logic.simulator import (
    BACKEND_ENV_VAR,
    PACKED_BATCH_THRESHOLD,
    CompiledNetlist,
    PackedState,
    pack_bits,
    packed_words,
    resolve_backend,
    unpack_bits,
)

# Batch sizes straddling every packing edge case: single lane, partial
# word, word-boundary-minus-one, exact words, and a ragged tail word.
BATCHES = (1, 7, 63, 64, 65, 100, 128, 256)


# ----------------------------------------------------------------------
# pack/unpack primitives
# ----------------------------------------------------------------------
@pytest.mark.parametrize("batch", BATCHES)
def test_pack_unpack_roundtrip(batch):
    rng = np.random.default_rng(batch)
    values = rng.integers(0, 2, size=(5, batch)).astype(bool)
    words = pack_bits(values)
    assert words.shape == (5, packed_words(batch))
    assert words.dtype == np.uint64
    assert np.array_equal(unpack_bits(words, batch), values)


def test_pack_pads_with_zero_lanes():
    words = pack_bits(np.ones(65, dtype=bool))
    assert words.shape == (2,)
    assert words[0] == np.uint64(0xFFFFFFFFFFFFFFFF)
    assert words[1] == np.uint64(1)  # lanes 65..127 are zero


def test_resolve_backend_threshold_and_env(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert resolve_backend(PACKED_BATCH_THRESHOLD - 1) == "bool"
    assert resolve_backend(PACKED_BATCH_THRESHOLD) == "packed"
    monkeypatch.setenv(BACKEND_ENV_VAR, "bool")
    assert resolve_backend(4096) == "bool"
    monkeypatch.setenv(BACKEND_ENV_VAR, "packed")
    assert resolve_backend(1) == "packed"
    # An explicit argument beats the environment.
    assert resolve_backend(1, backend="bool") == "bool"
    monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
    with pytest.raises(SimulationError, match="bogus"):
        resolve_backend(64)


# ----------------------------------------------------------------------
# per-cell equivalence
# ----------------------------------------------------------------------
_COMBINATIONAL = sorted(
    name for name, cell in LIBRARY.items() if cell.function is not None
)


@pytest.mark.parametrize("name", _COMBINATIONAL)
def test_library_cell_packed_equivalence(name):
    """Every combinational cell's packed evaluation matches lane-by-lane."""
    cell = LIBRARY[name]
    pfn = packed_function(cell.function)
    assert pfn is not None, f"{name} has no packed evaluation"
    rng = np.random.default_rng(hash(name) & 0xFFFF)
    batch = 130  # two full words plus a ragged tail
    pins = [rng.integers(0, 2, size=batch).astype(bool) for _ in range(cell.arity)]
    expected = cell.function(*pins)
    got = unpack_bits(pfn(*[pack_bits(p) for p in pins]), batch)
    assert np.array_equal(got, expected)


def test_sequential_and_tie_cells_have_no_function():
    """DFF/DFFE/ties are handled by the simulator, not packed_function."""
    for name in ("DFF", "DFFE", "TIE0", "TIE1"):
        assert LIBRARY[name].function is None


# ----------------------------------------------------------------------
# whole-netlist equivalence
# ----------------------------------------------------------------------
def _every_cell_netlist():
    """A netlist exercising every library cell, including DFFE and ties."""
    b = NetlistBuilder("allcells")
    a = b.input("a")
    c = b.input("c")
    d = b.input("d")
    en = b.input("en")
    one = b.const(1)
    zero = b.const(0)
    nets = [
        b.gate("BUF", a),
        b.gate("INV", c),
        b.gate("NAND2", a, c),
        b.gate("NOR2", c, d),
        b.gate("AND2", a, d),
        b.gate("OR2", a, c),
        b.gate("XOR2", c, d),
        b.gate("XNOR2", a, d),
        b.gate("AND3", a, c, d),
        b.gate("OR3", a, c, one),
        b.gate("NAND3", a, c, d),
        b.gate("NOR3", a, d, zero),
        b.mux2(a, c, d),
        b.gate("AOI21", a, c, d),
        b.gate("OAI21", a, c, d),
    ]
    q_plain = b.dff(nets[6])
    q_en = b.dff(nets[12], enable=en, init=1)
    nets += [q_plain, q_en]
    for n in nets:
        b.mark_output(n)
    return b.build(), nets


def _run_both(nl, nets, batch, n_cycles=20, force=None):
    """Drive identical stimulus through both backends; return snapshots."""
    rng = np.random.default_rng(99)
    stim = [
        {
            name: rng.integers(0, 2, size=batch).astype(bool)
            for name in ("a", "c", "d", "en")
        }
        for _ in range(n_cycles)
    ]
    out = {}
    for backend in ("bool", "packed"):
        sim = CompiledNetlist(nl)
        state = sim.reset(batch=batch, inputs=stim[0], backend=backend)
        if backend == "packed":
            assert isinstance(state, PackedState)
        toggles, reads = [], []
        for cycle in range(1, n_cycles):
            t = sim.step(state, stim[cycle])
            if isinstance(state, PackedState):
                t = unpack_bits(t, batch)
            if force is not None and cycle == n_cycles // 2:
                sim.force_net(state, force[0], force[1])
            toggles.append(t.copy())
            reads.append(np.stack([sim.read(state, n) for n in nets]))
        out[backend] = (
            np.stack(toggles),
            np.stack(reads),
            sim.read_bus(state, nets[:8]),
        )
    return out


@pytest.mark.parametrize("batch", (1, 65, 128))
def test_netlist_packed_matches_bool(batch):
    nl, nets = _every_cell_netlist()
    out = _run_both(nl, nets, batch)
    for got, want in zip(out["packed"], out["bool"]):
        assert np.array_equal(got, want)


def test_force_net_packed_matches_bool():
    nl, nets = _every_cell_netlist()
    forced = np.array([bool(i % 3 == 0) for i in range(65)])
    out = _run_both(nl, nets, 65, force=(nets[0], forced))
    for got, want in zip(out["packed"], out["bool"]):
        assert np.array_equal(got, want)


def test_read_bus_matches_shift_loop():
    """The bit-weight matmul equals the classic shift-accumulate read."""
    nl, nets = _every_cell_netlist()
    sim = CompiledNetlist(nl)
    rng = np.random.default_rng(5)
    stim = {
        name: rng.integers(0, 2, size=70).astype(bool)
        for name in ("a", "c", "d", "en")
    }
    state = sim.reset(batch=70, inputs=stim, backend="packed")
    bus = nets[:10]
    expected = np.zeros(70, dtype=np.int64)
    for net in bus:  # MSB first
        expected = (expected << 1) | sim.read(state, net).astype(np.int64)
    assert np.array_equal(sim.read_bus(state, bus), expected)


def test_read_bus_guards_63_bits():
    nl, nets = _every_cell_netlist()
    sim = CompiledNetlist(nl)
    state = sim.reset(batch=2, backend="packed")
    wide = (nets * 5)[:64]
    with pytest.raises(SimulationError, match="63"):
        sim.read_bus(state, wide)


def test_packed_reset_refuses_unsupported_cell():
    """A netlist with a non-lane-safe function cannot run packed."""
    nl, _ = _every_cell_netlist()
    sim = CompiledNetlist(nl)
    sim._packed_functions = [None] * len(sim._packed_functions)
    with pytest.raises(SimulationError, match="packed"):
        sim.reset(batch=64, backend="packed")
    # The bool backend remains available.
    sim.reset(batch=64, backend="bool")
