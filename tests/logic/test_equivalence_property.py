"""Equivalence checker tests + hypothesis property test of the
simulator against direct Boolean evaluation of random circuits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.logic.builder import NetlistBuilder
from repro.logic.equivalence import random_equivalence_check
from repro.logic.simulator import CompiledNetlist

_OPS = {
    "AND2": lambda a, b: a & b,
    "OR2": lambda a, b: a | b,
    "XOR2": lambda a, b: a ^ b,
    "NAND2": lambda a, b: ~(a & b),
    "NOR2": lambda a, b: ~(a | b),
}


def _sbox_rom(width_tag: str):
    """Two structurally different implementations of the same function."""
    from repro.crypto.aes import SBOX

    b = NetlistBuilder(f"rom_{width_tag}")
    addr = b.input_bus("a", 8)
    out = b.rom(addr, SBOX, 8)
    for i, net in enumerate(out):
        alias = b.buf(net)
        b.netlist.add_net(f"y[{i}]")
        b.netlist.add_instance(
            f"out_buf_{i}", "BUF", {"A": alias, "Y": f"y[{i}]"}
        )
        b.mark_output(f"y[{i}]")
    return b.build()


def test_identical_roms_are_equivalent():
    a = _sbox_rom("a")
    b = _sbox_rom("b")
    report = random_equivalence_check(a, b, n_vectors=128, n_cycles=1)
    assert report.equivalent
    assert "equivalent" in report.format()


def test_mismatch_detected():
    b1 = NetlistBuilder("one")
    x = b1.input("x")
    y = b1.input("y")
    out = b1.and2(x, y)
    b1.netlist.add_net("z")
    b1.netlist.add_instance("ob", "BUF", {"A": out, "Y": "z"})
    b1.mark_output("z")

    b2 = NetlistBuilder("two")
    x2 = b2.input("x")
    y2 = b2.input("y")
    out2 = b2.or2(x2, y2)  # different function
    b2.netlist.add_net("z")
    b2.netlist.add_instance("ob", "BUF", {"A": out2, "Y": "z"})
    b2.mark_output("z")

    report = random_equivalence_check(b1.build(), b2.build(), n_vectors=64)
    assert not report.equivalent
    assert report.mismatches[0].output == "z"
    assert "NOT equivalent" in report.format()


def test_interface_mismatch_rejected():
    b1 = NetlistBuilder("a")
    b1.input("x")
    b2 = NetlistBuilder("b")
    b2.input("different")
    with pytest.raises(NetlistError):
        random_equivalence_check(b1.build(), b2.build())


@st.composite
def random_circuit(draw):
    """A random 4-input combinational circuit as (ops, args) layers."""
    n_gates = draw(st.integers(1, 12))
    gates = []
    for g in range(n_gates):
        op = draw(st.sampled_from(sorted(_OPS)))
        # Inputs can be any primary input (0..3) or earlier gate (4..).
        a = draw(st.integers(0, 3 + g))
        b = draw(st.integers(0, 3 + g))
        gates.append((op, a, b))
    return gates


@settings(max_examples=40, deadline=None)
@given(random_circuit(), st.integers(0, 15))
def test_simulator_matches_direct_evaluation(gates, stimulus):
    """The compiled simulator must agree with straightforward Boolean
    evaluation on arbitrary random circuits."""
    b = NetlistBuilder("rand")
    nets = [b.input(f"i{k}") for k in range(4)]
    for op, x, y in gates:
        nets.append(b.gate(op, nets[x], nets[y]))
    nl = b.build()
    sim = CompiledNetlist(nl)

    bits = [(stimulus >> k) & 1 for k in range(4)]
    inputs = {f"i{k}": np.array([bool(bits[k])]) for k in range(4)}
    state = sim.reset(batch=1, inputs=inputs)

    values = [np.array([bool(v)]) for v in bits]
    for op, x, y in gates:
        values.append(_OPS[op](values[x], values[y]))
    for net, expected in zip(nets[4:], values[4:]):
        assert sim.read(state, net)[0] == expected[0]
