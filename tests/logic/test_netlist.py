"""Tests for the netlist data model."""

import pytest

from repro.errors import NetlistError, SimulationError
from repro.logic.netlist import INPUT_DRIVER, Netlist


def _tiny() -> Netlist:
    nl = Netlist("tiny")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_net("y")
    nl.add_instance("g1", "AND2", {"A": "a", "B": "b", "Y": "y"}, group="core")
    nl.mark_output("y")
    return nl


def test_basic_construction():
    nl = _tiny()
    assert nl.num_instances == 1
    assert nl.num_nets == 3
    assert nl.nets["a"].driver == INPUT_DRIVER
    assert nl.nets["y"].driver == "g1"
    assert nl.nets["a"].loads == [("g1", "A")]


def test_duplicate_net_rejected():
    nl = Netlist("x")
    nl.add_net("n")
    with pytest.raises(NetlistError):
        nl.add_net("n")


def test_duplicate_instance_rejected():
    nl = _tiny()
    nl.add_net("y2")
    with pytest.raises(NetlistError):
        nl.add_instance("g1", "AND2", {"A": "a", "B": "b", "Y": "y2"})


def test_multiple_drivers_rejected():
    nl = _tiny()
    with pytest.raises(NetlistError):
        nl.add_instance("g2", "OR2", {"A": "a", "B": "b", "Y": "y"})


def test_wrong_pin_set_rejected():
    nl = Netlist("x")
    nl.add_input("a")
    nl.add_net("y")
    with pytest.raises(NetlistError):
        nl.add_instance("g", "INV", {"IN": "a", "Y": "y"})


def test_unknown_net_rejected():
    nl = Netlist("x")
    nl.add_net("y")
    with pytest.raises(NetlistError):
        nl.add_instance("g", "INV", {"A": "ghost", "Y": "y"})


def test_validate_flags_undriven_net():
    nl = Netlist("x")
    nl.add_net("floating")
    with pytest.raises(NetlistError, match="undriven"):
        nl.validate()


def test_mark_output_unknown_net():
    nl = Netlist("x")
    with pytest.raises(NetlistError):
        nl.mark_output("nope")


def test_mark_output_twice_rejected():
    nl = _tiny()
    with pytest.raises(NetlistError):
        nl.mark_output("y")


def test_levelize_orders_dependencies():
    nl = Netlist("chain")
    nl.add_input("a")
    for name in ("n1", "n2", "n3"):
        nl.add_net(name)
    nl.add_instance("i1", "INV", {"A": "a", "Y": "n1"})
    nl.add_instance("i2", "INV", {"A": "n1", "Y": "n2"})
    nl.add_instance("i3", "INV", {"A": "n2", "Y": "n3"})
    levels = nl.levelize()
    assert levels == {"i1": 0, "i2": 1, "i3": 2}


def test_levelize_detects_combinational_loop():
    nl = Netlist("loop")
    nl.add_net("p")
    nl.add_net("q")
    nl.add_instance("i1", "INV", {"A": "p", "Y": "q"})
    nl.add_instance("i2", "INV", {"A": "q", "Y": "p"})
    with pytest.raises(SimulationError, match="loop"):
        nl.levelize()


def test_flop_breaks_loop():
    nl = Netlist("seqloop")
    nl.add_net("q")
    nl.add_net("d")
    nl.add_instance("inv", "INV", {"A": "q", "Y": "d"})
    nl.add_instance("ff", "DFF", {"D": "d", "Q": "q"})
    levels = nl.levelize()  # must not raise
    assert levels == {"inv": 0}


def test_group_queries():
    nl = _tiny()
    assert nl.groups() == ["core"]
    assert nl.gate_count(["core"]) == 1
    assert nl.gate_count(["other"]) == 0
    assert nl.total_area(["core"]) > 0


def test_sequential_and_combinational_partitions():
    nl = _tiny()
    nl.add_net("q")
    nl.add_instance("ff", "DFF", {"D": "y", "Q": "q"})
    assert [i.name for i in nl.sequential_instances()] == ["ff"]
    assert [i.name for i in nl.combinational_instances()] == ["g1"]
