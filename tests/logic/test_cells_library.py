"""Tests for the standard-cell primitives and library."""

import itertools

import numpy as np
import pytest

from repro.errors import LibraryError
from repro.logic.cells import CellKind
from repro.logic.library import LIBRARY, get_cell, list_cells

TRUTH_TABLES = {
    "INV": lambda a: not a,
    "BUF": lambda a: a,
    "AND2": lambda a, b: a and b,
    "OR2": lambda a, b: a or b,
    "NAND2": lambda a, b: not (a and b),
    "NOR2": lambda a, b: not (a or b),
    "XOR2": lambda a, b: a != b,
    "XNOR2": lambda a, b: a == b,
    "AND3": lambda a, b, c: a and b and c,
    "OR3": lambda a, b, c: a or b or c,
    "NAND3": lambda a, b, c: not (a and b and c),
    "NOR3": lambda a, b, c: not (a or b or c),
    "MUX2": lambda a, b, s: b if s else a,
    "AOI21": lambda a, b, c: not ((a and b) or c),
    "OAI21": lambda a, b, c: not ((a or b) and c),
}


@pytest.mark.parametrize("name", sorted(TRUTH_TABLES))
def test_cell_truth_table(name):
    cell = get_cell(name)
    ref = TRUTH_TABLES[name]
    for bits in itertools.product([False, True], repeat=cell.arity):
        args = [np.array([b]) for b in bits]
        out = cell.evaluate(*args)
        assert bool(out[0]) == ref(*bits), f"{name}{bits}"


def test_cells_are_batched():
    cell = get_cell("XOR2")
    a = np.array([False, False, True, True])
    b = np.array([False, True, False, True])
    assert np.array_equal(cell.evaluate(a, b), a ^ b)


def test_sequential_cells_have_no_function():
    for name in ("DFF", "DFFE"):
        cell = get_cell(name)
        assert cell.is_sequential
        with pytest.raises(TypeError):
            cell.evaluate(np.array([True]))


def test_tie_cells_marked():
    assert get_cell("TIE0").is_tie
    assert get_cell("TIE1").is_tie


def test_unknown_cell_raises():
    with pytest.raises(LibraryError):
        get_cell("NAND17")


def test_evaluate_wrong_arity_raises():
    with pytest.raises(ValueError):
        get_cell("AND2").evaluate(np.array([True]))


def test_all_cells_have_positive_physical_data():
    for cell in LIBRARY.values():
        assert cell.area > 0
        assert cell.output_cap > 0
        assert cell.leakage >= 0
        if cell.kind is not CellKind.TIE:
            assert cell.input_cap > 0
            assert cell.drive_current > 0


def test_list_cells_sorted_and_complete():
    names = list_cells()
    assert names == sorted(names)
    assert set(names) == set(LIBRARY)


def test_flop_area_exceeds_inverter():
    assert get_cell("DFF").area > get_cell("INV").area
