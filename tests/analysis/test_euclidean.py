"""Tests for the Eq. (1) Euclidean-distance detector."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.euclidean import (
    EuclideanDetector,
    euclidean_distances,
    max_intra_distance,
    normalize_traces,
    pairwise_max_distance,
)
from repro.errors import AnalysisError


def _golden(rng, n=100, length=256):
    base = np.sin(np.linspace(0, 20, length))
    return base[None, :] + 0.05 * rng.normal(size=(n, length))


def test_normalize_traces_unit_norm(rng):
    x = rng.normal(size=(5, 64)) + 3.0
    z = normalize_traces(x)
    assert np.allclose(np.linalg.norm(z, axis=1), 1.0)
    assert np.allclose(z.mean(axis=1), 0.0, atol=1e-12)


def test_normalize_rejects_constant_trace():
    with pytest.raises(AnalysisError):
        normalize_traces(np.ones((2, 16)))


def test_euclidean_distances_basic():
    data = np.array([[3.0, 4.0], [0.0, 0.0]])
    d = euclidean_distances(data, np.zeros(2))
    assert np.allclose(d, [5.0, 0.0])


def test_pairwise_max_distance_matches_bruteforce(rng):
    x = rng.normal(size=(40, 8))
    brute = max(
        np.linalg.norm(a - b) for a in x for b in x
    )
    assert pairwise_max_distance(x, chunk=7) == pytest.approx(brute)
    assert max_intra_distance is pairwise_max_distance


def test_pairwise_needs_two_vectors():
    with pytest.raises(AnalysisError):
        pairwise_max_distance(np.zeros((1, 4)))


def test_detector_golden_statistics(rng):
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    assert det.threshold > 0
    assert det.separation_floor > 0
    assert det.golden_distances.shape == (100,)
    # Golden traces against their own fingerprint: all below Eq. (1).
    assert det.golden_distances.max() <= det.threshold


def test_detector_flags_shifted_population(rng):
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    suspect = _golden(rng) + 0.3 * np.cos(np.linspace(0, 7, 256))[None, :]
    report = det.evaluate(suspect)
    assert report.separation > det.separation_floor
    assert report.detected


def test_detector_accepts_golden_lookalike(rng):
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    more_golden = _golden(np.random.default_rng(999))
    report = det.evaluate(more_golden)
    assert not report.detected


def test_detector_distance_bounded_by_two(rng):
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    adversarial = -_golden(rng)  # anti-correlated traces
    d = det.distances(adversarial)
    assert (d <= 2.0 + 1e-9).all()


def test_detector_with_pca_denoising(rng):
    golden = _golden(rng)
    det = EuclideanDetector(n_components=5).fit(golden)
    suspect = _golden(rng) + 0.3 * np.cos(np.linspace(0, 7, 256))[None, :]
    assert det.evaluate(suspect).separation > 0


def test_detector_use_before_fit(rng):
    det = EuclideanDetector()
    with pytest.raises(AnalysisError):
        det.distances(np.zeros((2, 8)))
    with pytest.raises(AnalysisError):
        det.evaluate(np.zeros((2, 8)))


def test_detector_needs_two_golden_traces():
    with pytest.raises(AnalysisError):
        EuclideanDetector().fit(np.zeros((1, 8)))


@settings(max_examples=10, deadline=None)
@given(st.floats(min_value=1e-3, max_value=1e3))
def test_distances_invariant_to_trace_scale(scale):
    rng = np.random.default_rng(5)
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    suspect = _golden(rng)
    d1 = det.distances(suspect)
    d2 = det.distances(scale * suspect)
    assert np.allclose(d1, d2)


def test_separation_is_mean_shift(rng):
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    # Separation of the golden set itself is essentially zero.
    assert det.separation(golden) < 1e-9


# -- vectorised bootstrap ------------------------------------------------


def test_bootstrap_orders_match_sequential_permutations():
    """``permuted`` on a tiled index matrix reproduces the exact
    permutation stream the old per-draw loop consumed."""
    from repro.analysis.euclidean import _bootstrap_orders

    orders = _bootstrap_orders(np.random.default_rng(0), 100, 32)
    rng = np.random.default_rng(0)
    expected = np.stack([rng.permutation(100) for _ in range(32)])
    assert np.array_equal(orders, expected)


def test_split_half_floors_match_loop_reference(rng):
    from repro.analysis.euclidean import (
        _bootstrap_orders,
        _split_half_floors,
        _split_half_floors_loop,
    )

    feats = normalize_traces(_golden(rng))
    orders = _bootstrap_orders(np.random.default_rng(7), feats.shape[0], 32)
    fast = _split_half_floors(feats, orders)
    slow = _split_half_floors_loop(feats, orders)
    # gemm vs per-row mean differ only in summation order: last-ulp.
    np.testing.assert_allclose(fast, slow, rtol=0, atol=1e-12)


def test_fit_threshold_bit_identical_to_loop_reference(rng):
    """Eq. (1)'s threshold never touches the bootstrap — exact match —
    and the vectorised floor agrees with the loop to float precision."""
    from repro.analysis.euclidean import (
        _bootstrap_orders,
        _split_half_floors_loop,
    )

    golden = _golden(rng)
    det = EuclideanDetector(seed=3).fit(golden)
    feats = normalize_traces(golden)
    assert det.threshold == pairwise_max_distance(feats)
    loop_orders = _bootstrap_orders(
        np.random.default_rng(3), feats.shape[0], det.n_bootstrap
    )
    loop_floor = det.FLOOR_FACTOR * float(
        _split_half_floors_loop(feats, loop_orders).max()
    )
    assert det.separation_floor == pytest.approx(loop_floor, abs=1e-12)


def test_state_dict_roundtrip_bit_identical(rng):
    golden = _golden(rng)
    for n_components in (None, 5):
        det = EuclideanDetector(n_components=n_components).fit(golden)
        clone = EuclideanDetector.from_state(det.state_dict())
        assert clone.threshold == det.threshold
        assert clone.separation_floor == det.separation_floor
        assert np.array_equal(clone._fingerprint, det._fingerprint)
        suspect = _golden(rng, n=20)
        assert np.array_equal(clone.distances(suspect), det.distances(suspect))


def test_state_dict_requires_fit():
    with pytest.raises(AnalysisError):
        EuclideanDetector().state_dict()


def test_fingerprint_property_is_public_and_read_only(rng):
    det = EuclideanDetector().fit(_golden(rng))
    fingerprint = det.fingerprint
    assert np.array_equal(fingerprint, det._fingerprint)
    assert not fingerprint.flags.writeable
    with pytest.raises(ValueError):
        fingerprint[0] = 0.0
    # The backing array is untouched by the read-only view.
    assert np.array_equal(det.fingerprint, det._fingerprint)


def test_fingerprint_property_requires_fit():
    with pytest.raises(AnalysisError):
        EuclideanDetector().fingerprint
