"""Tests for the Eq. (1) Euclidean-distance detector."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.euclidean import (
    EuclideanDetector,
    euclidean_distances,
    max_intra_distance,
    normalize_traces,
    pairwise_max_distance,
)
from repro.errors import AnalysisError


def _golden(rng, n=100, length=256):
    base = np.sin(np.linspace(0, 20, length))
    return base[None, :] + 0.05 * rng.normal(size=(n, length))


def test_normalize_traces_unit_norm(rng):
    x = rng.normal(size=(5, 64)) + 3.0
    z = normalize_traces(x)
    assert np.allclose(np.linalg.norm(z, axis=1), 1.0)
    assert np.allclose(z.mean(axis=1), 0.0, atol=1e-12)


def test_normalize_rejects_constant_trace():
    with pytest.raises(AnalysisError):
        normalize_traces(np.ones((2, 16)))


def test_euclidean_distances_basic():
    data = np.array([[3.0, 4.0], [0.0, 0.0]])
    d = euclidean_distances(data, np.zeros(2))
    assert np.allclose(d, [5.0, 0.0])


def test_pairwise_max_distance_matches_bruteforce(rng):
    x = rng.normal(size=(40, 8))
    brute = max(
        np.linalg.norm(a - b) for a in x for b in x
    )
    assert pairwise_max_distance(x, chunk=7) == pytest.approx(brute)
    assert max_intra_distance is pairwise_max_distance


def test_pairwise_needs_two_vectors():
    with pytest.raises(AnalysisError):
        pairwise_max_distance(np.zeros((1, 4)))


def test_detector_golden_statistics(rng):
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    assert det.threshold > 0
    assert det.separation_floor > 0
    assert det.golden_distances.shape == (100,)
    # Golden traces against their own fingerprint: all below Eq. (1).
    assert det.golden_distances.max() <= det.threshold


def test_detector_flags_shifted_population(rng):
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    suspect = _golden(rng) + 0.3 * np.cos(np.linspace(0, 7, 256))[None, :]
    report = det.evaluate(suspect)
    assert report.separation > det.separation_floor
    assert report.detected


def test_detector_accepts_golden_lookalike(rng):
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    more_golden = _golden(np.random.default_rng(999))
    report = det.evaluate(more_golden)
    assert not report.detected


def test_detector_distance_bounded_by_two(rng):
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    adversarial = -_golden(rng)  # anti-correlated traces
    d = det.distances(adversarial)
    assert (d <= 2.0 + 1e-9).all()


def test_detector_with_pca_denoising(rng):
    golden = _golden(rng)
    det = EuclideanDetector(n_components=5).fit(golden)
    suspect = _golden(rng) + 0.3 * np.cos(np.linspace(0, 7, 256))[None, :]
    assert det.evaluate(suspect).separation > 0


def test_detector_use_before_fit(rng):
    det = EuclideanDetector()
    with pytest.raises(AnalysisError):
        det.distances(np.zeros((2, 8)))
    with pytest.raises(AnalysisError):
        det.evaluate(np.zeros((2, 8)))


def test_detector_needs_two_golden_traces():
    with pytest.raises(AnalysisError):
        EuclideanDetector().fit(np.zeros((1, 8)))


@settings(max_examples=10, deadline=None)
@given(st.floats(min_value=1e-3, max_value=1e3))
def test_distances_invariant_to_trace_scale(scale):
    rng = np.random.default_rng(5)
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    suspect = _golden(rng)
    d1 = det.distances(suspect)
    d2 = det.distances(scale * suspect)
    assert np.allclose(d1, d2)


def test_separation_is_mean_shift(rng):
    golden = _golden(rng)
    det = EuclideanDetector().fit(golden)
    # Separation of the golden set itself is essentially zero.
    assert det.separation(golden) < 1e-9
