"""Tests for the from-scratch PCA."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.pca import PCA
from repro.errors import AnalysisError


def _correlated_data(rng, n=200, d=10):
    latent = rng.normal(size=(n, 2))
    mix = rng.normal(size=(2, d))
    return latent @ mix + 0.01 * rng.normal(size=(n, d))


def test_components_are_orthonormal(rng):
    x = _correlated_data(rng)
    pca = PCA(4).fit(x)
    gram = pca.components_ @ pca.components_.T
    assert np.allclose(gram, np.eye(4), atol=1e-10)


def test_explained_variance_sorted_and_ratio(rng):
    x = _correlated_data(rng)
    pca = PCA(5).fit(x)
    ev = pca.explained_variance_
    assert (np.diff(ev) <= 1e-12).all()
    assert 0 < pca.explained_variance_ratio_.sum() <= 1 + 1e-12
    # Two latent factors dominate.
    assert pca.explained_variance_ratio_[:2].sum() > 0.95


def test_transform_centers_data(rng):
    x = _correlated_data(rng)
    pca = PCA(2).fit(x)
    z = pca.transform(x)
    assert z.shape == (x.shape[0], 2)
    assert np.allclose(z.mean(axis=0), 0, atol=1e-9)


def test_reconstruction_near_perfect_for_low_rank(rng):
    x = _correlated_data(rng)
    pca = PCA(2).fit(x)
    recon = pca.inverse_transform(pca.transform(x))
    err = np.abs(x - recon).max()
    assert err < 0.2  # noise-level residual only


def test_reconstruction_error_flags_out_of_subspace(rng):
    x = _correlated_data(rng)
    pca = PCA(2).fit(x)
    clean = pca.reconstruction_error(x)
    spiked = x.copy()
    spiked[:, 0] += 10 * rng.normal(size=x.shape[0])
    assert pca.reconstruction_error(spiked).mean() > 5 * clean.mean()


def test_fit_transform_equals_fit_then_transform(rng):
    x = _correlated_data(rng)
    a = PCA(3).fit_transform(x)
    pca = PCA(3).fit(x)
    assert np.allclose(a, pca.transform(x))


def test_use_before_fit_raises(rng):
    pca = PCA(2)
    with pytest.raises(AnalysisError):
        pca.transform(np.zeros((3, 4)))
    with pytest.raises(AnalysisError):
        pca.inverse_transform(np.zeros((3, 2)))


def test_dimension_validation(rng):
    x = _correlated_data(rng, n=20, d=5)
    with pytest.raises(AnalysisError):
        PCA(0)
    with pytest.raises(AnalysisError):
        PCA(6).fit(x)
    pca = PCA(2).fit(x)
    with pytest.raises(AnalysisError):
        pca.transform(np.zeros((3, 7)))
    with pytest.raises(AnalysisError):
        pca.inverse_transform(np.zeros((3, 5)))


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 4))
def test_projection_preserves_variance_ordering(k):
    rng = np.random.default_rng(k)
    x = _correlated_data(rng, n=100, d=8)
    pca = PCA(k).fit(x)
    z = pca.transform(x)
    variances = z.var(axis=0)
    assert (np.diff(variances) <= 1e-9).all()
