"""Tests for the CPA attack machinery (unit level; the live-chip attack
runs in the integration suite)."""

import numpy as np
import pytest

from repro.analysis.cpa import (
    correlation_matrix,
    cpa_attack,
    last_round_predictions,
)
from repro.crypto.aes import INV_SBOX, SHIFT_ROWS_PERM, expand_key
from repro.errors import AnalysisError

_HW = np.array([bin(v).count("1") for v in range(256)])


def _synthetic_campaign(rng, n=600, key10=None):
    """Traces that leak exactly the last-round Hamming distances."""
    key10 = key10 or bytes(range(16))
    cts = rng.integers(0, 256, (n, 16), dtype=np.uint8)
    inv = np.asarray(INV_SBOX)
    traces = np.zeros((n, 24))
    for j in range(16):
        r9 = inv[cts[:, j] ^ key10[j]]
        hd = _HW[r9 ^ cts[:, SHIFT_ROWS_PERM[j]]]
        traces[:, j + 4] += hd  # one leaky sample per byte
    traces += 0.5 * rng.normal(size=traces.shape)
    return traces, cts, key10


def test_predictions_shape_and_range(rng):
    cts = rng.integers(0, 256, (50, 16), dtype=np.uint8)
    preds = last_round_predictions(cts, 3)
    assert preds.shape == (256, 50)
    assert preds.min() >= 0 and preds.max() <= 8


def test_predictions_validation(rng):
    with pytest.raises(AnalysisError):
        last_round_predictions(np.zeros((4, 15), dtype=np.uint8), 0)
    with pytest.raises(AnalysisError):
        last_round_predictions(np.zeros((4, 16), dtype=np.uint8), 16)


def test_correlation_matrix_identity(rng):
    x = rng.normal(size=(100, 5))
    preds = x[:, 2][None, :].repeat(3, axis=0)
    corr = correlation_matrix(preds, x)
    assert corr.shape == (3, 5)
    assert corr[0, 2] == pytest.approx(1.0)
    assert abs(corr[0, 0]) < 0.4


def test_correlation_shape_mismatch(rng):
    with pytest.raises(AnalysisError):
        correlation_matrix(np.zeros((256, 10)), np.zeros((11, 4)))


def test_cpa_recovers_key_from_ideal_leakage(rng):
    traces, cts, key10 = _synthetic_campaign(rng)
    result = cpa_attack(traces, cts, key10)
    assert result.recovered_count == 16
    assert result.mean_rank() == 0.0
    assert "16/16" in result.format()


def test_cpa_fails_without_leakage(rng):
    cts = rng.integers(0, 256, (400, 16), dtype=np.uint8)
    traces = rng.normal(size=(400, 24))
    result = cpa_attack(traces, cts, bytes(range(16)))
    # Random data: essentially chance-level recovery.
    assert result.recovered_count <= 2
    assert result.mean_rank() > 40


def test_cpa_sample_window(rng):
    traces, cts, key10 = _synthetic_campaign(rng)
    narrow = cpa_attack(traces, cts, key10, sample_window=(4, 20))
    assert narrow.recovered_count == 16
    with pytest.raises(AnalysisError):
        cpa_attack(traces, cts, key10, sample_window=(20, 20))


def test_cpa_key_length_validation(rng):
    traces, cts, _key10 = _synthetic_campaign(rng, n=50)
    with pytest.raises(AnalysisError):
        cpa_attack(traces, cts, b"short")
