"""Tests for preprocessing and the Trojan payload demodulators."""

import numpy as np
import pytest

from repro.analysis.demod import (
    demodulate_am_bits,
    despread_cdma_bits,
    leakage_symbol_bits,
    lfsr_sequence,
)
from repro.analysis.preprocess import (
    segment_traces,
    standardize_traces,
    trace_align,
)
from repro.errors import AnalysisError


def test_standardize_applies_reference_transform(rng):
    golden = rng.normal(1.0, 0.5, size=(20, 64))
    std, mean, scale = standardize_traces(golden)
    assert mean.shape == (64,)
    assert scale > 0
    assert np.sqrt((std**2).mean()) == pytest.approx(1.0)
    # The same transform applied to a different set reuses statistics.
    other = rng.normal(5.0, 0.5, size=(4, 64))
    std2, _m, _s = standardize_traces(other, mean, scale)
    assert std2.mean() > 1.0  # offset preserved relative to reference


def test_standardize_validation(rng):
    with pytest.raises(AnalysisError):
        standardize_traces(np.zeros(8))
    with pytest.raises(AnalysisError):
        standardize_traces(np.zeros((2, 8)), reference_mean=np.zeros(5))


def test_trace_align_compensates_shifts(rng):
    ref = np.sin(np.linspace(0, 12 * np.pi, 512))
    shifted = np.stack([np.roll(ref, s) for s in (-3, 0, 5)])
    aligned = trace_align(shifted, ref, max_shift=8)
    for row in aligned:
        assert np.corrcoef(row, ref)[0, 1] > 0.999


def test_trace_align_clamps_to_max_shift():
    ref = np.sin(np.linspace(0, 12 * np.pi, 512))
    shifted = np.roll(ref, 20)[None, :]
    aligned = trace_align(shifted, ref, max_shift=4)
    # Cannot fully recover, but must not crash and must return same shape.
    assert aligned.shape == (1, 512)


def test_segment_traces_shapes():
    x = np.arange(100, dtype=float)
    segs = segment_traces(x, 25)
    assert segs.shape == (4, 25)
    overlapped = segment_traces(x, 25, hop_samples=5)
    assert overlapped.shape == (16, 25)
    batched = segment_traces(np.stack([x, x]), 50)
    assert batched.shape == (4, 50)


def test_segment_traces_validation():
    with pytest.raises(AnalysisError):
        segment_traces(np.arange(10.0), 0)
    with pytest.raises(AnalysisError):
        segment_traces(np.arange(10.0), 100)


def test_am_demodulation_recovers_ook_bits(rng):
    fs = 100e6
    carrier = 1e6
    bit_duration = 20e-6
    bits = [1, 0, 1, 1, 0, 0, 1, 0]
    t = np.arange(int(len(bits) * bit_duration * fs)) / fs
    envelope = np.repeat(bits, int(bit_duration * fs)).astype(float)
    signal = envelope * np.sin(2 * np.pi * carrier * t)
    signal += 0.05 * rng.normal(size=signal.size)
    got = demodulate_am_bits(signal, fs, carrier, bit_duration, len(bits))
    assert list(got) == bits


def test_am_demodulation_too_short_raises():
    with pytest.raises(AnalysisError):
        demodulate_am_bits(np.zeros(100), 1e6, 1e5, 1e-3, 10)


def test_lfsr_sequence_properties():
    seq = lfsr_sequence(16, (10, 12, 13, 15), 0xACE1, 1000)
    assert set(np.unique(seq)) <= {0, 1}
    # Balanced-ish pseudo-noise.
    assert 0.4 < seq.mean() < 0.6
    with pytest.raises(AnalysisError):
        lfsr_sequence(8, (0,), 0, 10)


def test_cdma_despread_roundtrip(rng):
    prn = lfsr_sequence(16, (10, 12, 13, 15), 0xACE1, 320)
    bits = rng.integers(0, 2, 10).astype(np.uint8)
    chips = np.repeat(bits, 32) ^ prn
    got = despread_cdma_bits(chips, prn, 32)
    assert np.array_equal(got, bits)


def test_cdma_despread_majority_vote_tolerates_chip_errors(rng):
    prn = lfsr_sequence(16, (10, 12, 13, 15), 0xACE1, 320)
    bits = rng.integers(0, 2, 10).astype(np.uint8)
    chips = np.repeat(bits, 32) ^ prn
    flip = rng.choice(chips.size, size=30, replace=False)
    chips[flip] ^= 1  # < 50% errors per bit window
    got = despread_cdma_bits(chips, prn, 32)
    assert np.array_equal(got, bits)


def test_cdma_despread_validation():
    with pytest.raises(AnalysisError):
        despread_cdma_bits(np.ones(64, np.uint8), np.ones(32, np.uint8), 32)
    with pytest.raises(AnalysisError):
        despread_cdma_bits(np.ones(8, np.uint8), np.ones(8, np.uint8), 32)


def test_leakage_symbol_bits_sampling():
    stream = np.array([0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1])
    got = leakage_symbol_bits(stream, symbol_cycles=4, n_bits=3, phase=0)
    assert list(got) == [0, 0, 0] or list(got) == [1, 1, 1]
    with pytest.raises(AnalysisError):
        leakage_symbol_bits(stream, 4, 10)


def test_am_demodulation_stable_at_gigasample_rates(rng):
    """Regression: transfer-function filters blow up at 750 kHz on a
    2.4 GS/s trace; the SOS implementation must stay finite."""
    fs = 2.4e9
    carrier = 750e3
    bit_duration = 128 / 24e6
    bits = [0, 1, 1, 0]
    n = int(len(bits) * bit_duration * fs)
    t = np.arange(n) / fs
    envelope = np.repeat(bits, n // len(bits))[:n].astype(float)
    x = 1e-5 * envelope * np.sin(2 * np.pi * carrier * t)
    x += 1e-6 * rng.normal(size=n)
    got = demodulate_am_bits(x, fs, carrier, bit_duration, len(bits))
    assert np.isfinite(got).all()
    assert list(got) == bits
