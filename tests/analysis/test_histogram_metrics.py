"""Tests for histogram utilities and detection metrics."""

import numpy as np
import pytest

from repro.analysis.histogram import (
    distance_histogram,
    histogram_overlap,
    peak_separation,
)
from repro.analysis.metrics import auc, roc_curve, score_detection
from repro.errors import AnalysisError


def test_histogram_bins_shared_axis(rng):
    g = rng.normal(0.5, 0.05, 1000).clip(0)
    t = rng.normal(0.9, 0.05, 1000).clip(0)
    hist = distance_histogram(g, t, bins=50)
    assert hist.golden_counts.sum() == 1000
    assert hist.trojan_counts.sum() == 1000
    assert hist.bin_edges[0] == 0.0
    assert hist.golden_peak() == pytest.approx(0.5, abs=0.05)
    assert hist.trojan_peak() == pytest.approx(0.9, abs=0.05)


def test_overlap_identical_distributions(rng):
    g = rng.normal(0.5, 0.05, 5000).clip(0)
    hist = distance_histogram(g, g.copy(), bins=40)
    assert histogram_overlap(hist) == pytest.approx(1.0)


def test_overlap_disjoint_distributions(rng):
    g = rng.normal(0.2, 0.01, 2000).clip(0)
    t = rng.normal(1.0, 0.01, 2000).clip(0)
    hist = distance_histogram(g, t)
    assert histogram_overlap(hist) < 0.01


def test_peak_separation_in_sigma_units(rng):
    g = rng.normal(0.5, 0.1, 20000).clip(0)
    t = rng.normal(0.8, 0.1, 20000).clip(0)
    hist = distance_histogram(g, t, bins=60)
    assert peak_separation(hist, g) == pytest.approx(3.0, abs=0.8)


def test_histogram_validation():
    with pytest.raises(AnalysisError):
        distance_histogram(np.array([]), np.array([1.0]))
    hist = distance_histogram(np.array([0.5, 0.6]), np.array([0.5, 0.7]))
    with pytest.raises(AnalysisError):
        peak_separation(hist, np.array([0.5, 0.5]))  # zero spread


def test_histogram_render_ascii(rng):
    g = rng.normal(0.4, 0.05, 500).clip(0)
    t = rng.normal(0.8, 0.05, 500).clip(0)
    art = distance_histogram(g, t).render(width=40, height=6)
    assert "g" in art and "T" in art
    assert len(art.splitlines()) == 8


def test_score_detection_perfect_split():
    g = np.linspace(0.0, 0.4, 100)
    t = np.linspace(0.6, 1.0, 100)
    m = score_detection(g, t, threshold=0.5)
    assert m.true_positive_rate == 1.0
    assert m.false_positive_rate == 0.0
    assert m.accuracy == 1.0


def test_score_detection_threshold_tradeoff(rng):
    g = rng.normal(0.5, 0.1, 2000)
    t = rng.normal(0.7, 0.1, 2000)
    loose = score_detection(g, t, threshold=0.4)
    tight = score_detection(g, t, threshold=0.9)
    assert loose.true_positive_rate > tight.true_positive_rate
    assert loose.false_positive_rate > tight.false_positive_rate


def test_roc_monotone_and_auc(rng):
    g = rng.normal(0.5, 0.1, 3000)
    t = rng.normal(0.8, 0.1, 3000)
    fpr, tpr, thresholds = roc_curve(g, t)
    assert (np.diff(fpr) >= -1e-12).all()
    assert (np.diff(tpr) >= -1e-12).all()
    assert fpr[0] == 0.0 and tpr[-1] == 1.0
    score = auc(fpr, tpr)
    assert 0.9 < score <= 1.0


def test_roc_useless_detector(rng):
    g = rng.normal(0.5, 0.1, 3000)
    t = rng.normal(0.5, 0.1, 3000)
    fpr, tpr, _ = roc_curve(g, t)
    assert auc(fpr, tpr) == pytest.approx(0.5, abs=0.05)


def test_metrics_validation():
    with pytest.raises(AnalysisError):
        score_detection(np.array([]), np.array([1.0]), 0.5)
    with pytest.raises(AnalysisError):
        roc_curve(np.array([]), np.array([1.0]))
    with pytest.raises(AnalysisError):
        auc(np.array([0.0]), np.array([1.0]))
