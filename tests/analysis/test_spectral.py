"""Tests for FFT spectral analysis."""

import numpy as np
import pytest

from repro.analysis.spectral import (
    amplitude_spectrum,
    band_energy,
    compare_spectra,
    find_peaks_above,
)
from repro.errors import AnalysisError

FS = 1e9


def _tone(freq, amp=1.0, n=16384, fs=FS):
    t = np.arange(n) / fs
    return amp * np.sin(2 * np.pi * freq * t)


def test_single_tone_peak_location_and_amplitude():
    spec = amplitude_spectrum(_tone(50e6, amp=2.0), FS)
    peak_idx = int(np.argmax(spec.amplitude))
    assert spec.freqs[peak_idx] == pytest.approx(50e6, rel=0.01)
    assert spec.amplitude[peak_idx] == pytest.approx(2.0, rel=0.05)


def test_magnitude_at_tolerates_bin_offset():
    spec = amplitude_spectrum(_tone(50.01e6), FS)
    assert spec.magnitude_at(50e6, tolerance=0.1e6) == pytest.approx(1.0, rel=0.1)


def test_magnitude_at_empty_window_raises():
    spec = amplitude_spectrum(_tone(50e6), FS)
    with pytest.raises(AnalysisError):
        spec.magnitude_at(50e6, tolerance=0.0)


def test_band_restriction():
    spec = amplitude_spectrum(_tone(50e6) + _tone(200e6), FS)
    low = spec.band(1e6, 100e6)
    assert low.freqs.max() <= 100e6
    assert low.amplitude.max() == pytest.approx(1.0, rel=0.1)
    with pytest.raises(AnalysisError):
        spec.band(10e6, 10e6)


def test_band_energy_captures_tone():
    spec = amplitude_spectrum(_tone(50e6, amp=3.0), FS)
    inside = band_energy(spec, 40e6, 60e6)
    outside = band_energy(spec, 100e6, 200e6)
    assert inside > 100 * outside


def test_batch_averaging_reduces_noise_floor(rng):
    tone = _tone(50e6, amp=0.1)
    noisy = tone[None, :] + rng.normal(0, 1.0, size=(16, tone.size))
    avg = amplitude_spectrum(noisy, FS, average=True)
    single = amplitude_spectrum(noisy[0], FS)
    # Averaged floor is smoother: its variance drops.
    floor_avg = np.std(avg.amplitude[avg.freqs > 300e6])
    floor_one = np.std(single.amplitude[single.freqs > 300e6])
    assert floor_avg < floor_one


def test_find_peaks_above_detects_tones():
    sig = _tone(50e6, amp=1.0) + _tone(150e6, amp=0.5)
    spec = amplitude_spectrum(sig, FS)
    peaks = find_peaks_above(spec, floor_factor=10)
    freqs = [round(f / 1e6) for f, _ in peaks[:2]]
    assert 50 in freqs and 150 in freqs
    # Sorted strongest first.
    assert peaks[0][1] >= peaks[1][1]


def test_compare_spectra_flags_boost_and_new():
    golden = amplitude_spectrum(_tone(50e6, amp=1.0), FS)
    suspect = amplitude_spectrum(
        _tone(50e6, amp=2.5) + _tone(120e6, amp=0.8), FS
    )
    cmpres = compare_spectra(golden, suspect, boost_ratio=1.5)
    boosted_freqs = [round(f / 1e6) for f, _g, _s in cmpres.boosted_spots]
    new_freqs = [round(f / 1e6) for f, _a in cmpres.new_spots]
    assert 50 in boosted_freqs
    assert 120 in new_freqs
    assert cmpres.detected


def test_compare_spectra_identical_is_clean():
    golden = amplitude_spectrum(_tone(50e6), FS)
    cmpres = compare_spectra(golden, golden, boost_ratio=1.2)
    assert not cmpres.detected


def test_compare_spectra_requires_same_grid():
    a = amplitude_spectrum(_tone(50e6, n=8192), FS)
    b = amplitude_spectrum(_tone(50e6, n=16384), FS)
    with pytest.raises(AnalysisError):
        compare_spectra(a, b)


def test_amplitude_spectrum_validation():
    with pytest.raises(AnalysisError):
        amplitude_spectrum(np.zeros(4), FS)
    with pytest.raises(AnalysisError):
        amplitude_spectrum(_tone(1e6), FS, window="flat-top")


def test_rect_window_supported():
    spec = amplitude_spectrum(_tone(50e6), FS, window="rect")
    assert spec.amplitude.max() == pytest.approx(1.0, rel=0.1)


# -- batched spectra -----------------------------------------------------


def test_amplitude_spectra_identical_to_single_calls(rng):
    from repro.analysis.spectral import amplitude_spectra

    sets = [
        np.stack([_tone(50e6), _tone(120e6, amp=0.3)]),
        _tone(75e6)[None, :] + 0.01 * rng.normal(size=(4, 16384)),
        _tone(10e6)[None, :],
    ]
    batched = amplitude_spectra(sets, FS)
    for traces, spec in zip(sets, batched):
        single = amplitude_spectrum(traces, FS)
        assert np.array_equal(spec.freqs, single.freqs)
        assert np.array_equal(spec.amplitude, single.amplitude)


def test_amplitude_spectra_no_average_keeps_rows(rng):
    from repro.analysis.spectral import amplitude_spectra

    sets = [rng.normal(size=(3, 1024)), rng.normal(size=(2, 1024))]
    batched = amplitude_spectra(sets, FS, average=False)
    assert batched[0].amplitude.shape[0] == 3
    assert batched[1].amplitude.shape[0] == 2
    single = amplitude_spectrum(sets[1], FS, average=False)
    assert np.array_equal(batched[1].amplitude, single.amplitude)


def test_amplitude_spectra_validation(rng):
    from repro.analysis.spectral import amplitude_spectra

    assert amplitude_spectra([], FS) == []
    with pytest.raises(AnalysisError):
        amplitude_spectra([np.zeros((2, 4))], FS)
    with pytest.raises(AnalysisError):
        amplitude_spectra(
            [rng.normal(size=(2, 64)), rng.normal(size=(2, 128))], FS
        )
