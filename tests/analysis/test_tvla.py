"""Tests for the TVLA Welch t-test."""

import numpy as np
import pytest

from repro.analysis.tvla import (
    TVLA_THRESHOLD,
    fixed_vs_random_split,
    welch_t_test,
)
from repro.errors import AnalysisError


def test_identical_populations_pass(rng):
    a = rng.normal(size=(500, 40))
    b = rng.normal(size=(500, 40))
    result = welch_t_test(a, b)
    assert not result.leaks
    assert result.max_abs_t < TVLA_THRESHOLD
    assert "passes" in result.format()


def test_mean_shift_detected(rng):
    a = rng.normal(size=(500, 40))
    b = rng.normal(size=(500, 40))
    b[:, 7] += 1.0
    result = welch_t_test(a, b)
    assert result.leaks
    assert result.leaky_samples >= 1
    assert int(np.argmax(np.abs(result.t_values))) == 7
    assert "LEAKS" in result.format()


def test_t_statistic_magnitude(rng):
    """t ~ shift / sqrt(2/n) for equal-size unit-variance groups."""
    n = 2000
    a = rng.normal(size=(n, 1))
    b = rng.normal(size=(n, 1)) + 0.5
    result = welch_t_test(a, b)
    expected = 0.5 / np.sqrt(2.0 / n)
    assert abs(result.t_values[0]) == pytest.approx(expected, rel=0.2)


def test_unequal_population_sizes_ok(rng):
    a = rng.normal(size=(100, 10))
    b = rng.normal(size=(400, 10))
    assert not welch_t_test(a, b).leaks


def test_validation(rng):
    with pytest.raises(AnalysisError):
        welch_t_test(rng.normal(size=(10, 5)), rng.normal(size=(10, 6)))
    with pytest.raises(AnalysisError):
        welch_t_test(rng.normal(size=(1, 5)), rng.normal(size=(10, 5)))


def test_constant_sample_does_not_crash(rng):
    a = np.zeros((50, 3))
    b = np.zeros((50, 3))
    result = welch_t_test(a, b)
    assert not result.leaks


def test_fixed_vs_random_split(rng):
    fixed = bytes(range(16))
    pts = rng.integers(0, 256, (50, 16), dtype=np.uint8)
    pts[::5] = np.frombuffer(fixed, np.uint8)
    fixed_idx, random_idx = fixed_vs_random_split(pts, fixed)
    assert len(fixed_idx) == 10
    assert len(fixed_idx) + len(random_idx) == 50
    assert (pts[fixed_idx] == np.frombuffer(fixed, np.uint8)).all()


def test_split_validation(rng):
    with pytest.raises(AnalysisError):
        fixed_vs_random_split(np.zeros((5, 15), dtype=np.uint8), bytes(16))
