"""Tests for the spectrogram and activation-time detector."""

import numpy as np
import pytest

from repro.analysis.spectrogram import (
    Spectrogram,
    detect_activation_time,
    spectrogram,
)
from repro.errors import AnalysisError

FS = 100e6


def _burst_record(rng, f_tone=5e6, start_frac=0.6, n=262144):
    t = np.arange(n) / FS
    x = 0.02 * rng.normal(size=n)
    start = int(start_frac * n)
    x[start:] += np.sin(2 * np.pi * f_tone * t[start:])
    return x, start / FS


def test_spectrogram_shapes(rng):
    x, _t0 = _burst_record(rng)
    spec = spectrogram(x, FS, window_samples=4096)
    assert spec.magnitude.shape == (spec.freqs.size, spec.times.size)
    assert spec.times[0] < spec.times[-1]
    assert spec.freqs.max() == pytest.approx(FS / 2)


def test_tone_appears_in_right_band(rng):
    x, t0 = _burst_record(rng)
    spec = spectrogram(x, FS)
    in_band = spec.band_track(4.5e6, 5.5e6)
    out_band = spec.band_track(20e6, 25e6)
    late = spec.times > t0 + 1e-4
    assert in_band[late].mean() > 20 * out_band[late].mean()


def test_activation_time_detected(rng):
    x, t0 = _burst_record(rng)
    detected = detect_activation_time(x, FS, band=(4.5e6, 5.5e6))
    assert detected is not None
    assert detected == pytest.approx(t0, abs=1.5e-4)


def test_no_activation_returns_none(rng):
    x = 0.02 * rng.normal(size=131072)
    assert detect_activation_time(x, FS, band=(4.5e6, 5.5e6)) is None


def test_validation(rng):
    with pytest.raises(AnalysisError):
        spectrogram(np.zeros(100), FS, window_samples=4096)
    with pytest.raises(AnalysisError):
        spectrogram(np.zeros(10000), FS, window_samples=8)
    spec = spectrogram(0.01 * rng.normal(size=65536), FS)
    with pytest.raises(AnalysisError):
        spec.band_track(1e9, 2e9)
