"""Content-addressed pipeline cache: keys, stats, eviction, equivalence.

The load-bearing property is the last one — traces served from the
cache must be bit-identical to freshly generated ones, through both the
serial entry point and the parallel campaign runner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.campaign import (
    campaign_pipeline_key,
    collect_ed_traces,
    get_or_fit_detector,
    get_or_generate_traces,
)
from repro.experiments.parallel import campaign_spec, run_campaigns
from repro.io.cache import (
    CACHE_DIR_ENV,
    CACHE_MB_ENV,
    PipelineKey,
    TraceCache,
    canonical_json,
    configured_cache,
)
from repro.io.store import TraceBundle

ED_PARAMS = dict(n_traces=8, batch=4, receivers=("sensor",), rng_role="ct/ed")


def _bundle(rng, n=4):
    return TraceBundle(
        traces=rng.normal(size=(n, 32)),
        receiver="sensor",
        fs=2.4e9,
        chip_seed=1,
        scenario="simulation",
    )


# -- keys ----------------------------------------------------------------


def test_pipeline_key_is_deterministic(chip, sim_scenario):
    k1 = campaign_pipeline_key(chip, sim_scenario, "ed", dict(ED_PARAMS))
    k2 = campaign_pipeline_key(chip, sim_scenario, "ed", dict(ED_PARAMS))
    assert k1 == k2
    assert k1.digest() == k2.digest()


def test_pipeline_key_binds_defaults(chip, sim_scenario):
    """Spelling a default out loud addresses the same entry."""
    implicit = campaign_pipeline_key(
        chip, sim_scenario, "ed", dict(n_traces=8)
    )
    explicit = campaign_pipeline_key(
        chip, sim_scenario, "ed", dict(n_traces=8, batch=64, decimate=12)
    )
    assert implicit.digest() == explicit.digest()


def test_pipeline_key_separates_campaigns(chip, sim_scenario, sil_scenario):
    base = campaign_pipeline_key(chip, sim_scenario, "ed", dict(ED_PARAMS))
    other_scenario = campaign_pipeline_key(
        chip, sil_scenario, "ed", dict(ED_PARAMS)
    )
    other_params = campaign_pipeline_key(
        chip, sim_scenario, "ed", dict(ED_PARAMS, n_traces=9)
    )
    derived = base.derived("detector", n_components=3)
    digests = {
        base.digest(),
        other_scenario.digest(),
        other_params.digest(),
        derived.digest(),
    }
    assert len(digests) == 4


def test_canonical_json_sorts_and_normalises():
    a = canonical_json({"b": (1, 2), "a": np.int64(3)})
    b = canonical_json({"a": 3, "b": [1, 2]})
    assert a == b


def test_pipeline_key_binds_receiver_topology(chip, sim_scenario):
    """An array chip and a plain chip must never share cache entries.

    The netlist, placement and scenario of the two chips are identical
    — only the installed receiver set differs — so the receiver-group
    topology has to be part of the key (the regression that motivated
    the ``receivers`` field and the salt bump).
    """
    from repro.chip.chip import Chip
    from repro.chip.config import ChipConfig

    array_chip = Chip.build(
        config=ChipConfig(sensor_array_rows=2, sensor_array_cols=2),
        seed=chip.seed,
    )
    plain = campaign_pipeline_key(chip, sim_scenario, "ed", dict(ED_PARAMS))
    arrayed = campaign_pipeline_key(
        array_chip, sim_scenario, "ed", dict(ED_PARAMS)
    )
    assert plain.receivers != arrayed.receivers
    assert plain.digest() != arrayed.digest()
    # The topology threads through derived artifact keys too.
    assert (
        plain.derived("detector").digest()
        != arrayed.derived("detector").digest()
    )
    assert arrayed.derived("detector").receivers == arrayed.receivers


# -- store behaviour -----------------------------------------------------


def test_cache_miss_then_hit_updates_stats(tmp_path, rng):
    cache = TraceCache(tmp_path)
    key = "0" * 64
    assert cache.get_bundle(key) is None
    bundle = _bundle(rng)
    cache.put_bundle(key, bundle)
    hit = cache.get_bundle(key)
    assert hit is not None
    assert np.array_equal(np.asarray(hit.traces), bundle.traces)
    assert not hit.traces.flags.writeable
    assert cache.stats.as_dict() == {
        "hits": 1, "misses": 1, "puts": 1, "evictions": 0,
    }
    assert "1 hit(s)" in cache.stats.format()


def test_corrupt_entry_counts_as_miss(tmp_path, rng):
    cache = TraceCache(tmp_path)
    key = "1" * 64
    path = cache.put_bundle(key, _bundle(rng))
    path.write_bytes(b"garbage")
    assert cache.get_bundle(key) is None
    assert not path.exists()  # dropped, not left to fail forever


def test_json_artifact_roundtrip(tmp_path):
    cache = TraceCache(tmp_path)
    key = "2" * 64
    assert cache.get_json(key) is None
    cache.put_json(key, {"threshold": np.float64(0.25), "taps": np.arange(3)})
    value = cache.get_json(key)
    assert value["threshold"] == pytest.approx(0.25)
    assert value["taps"] == [0, 1, 2]


def test_lru_eviction_under_budget(tmp_path, rng):
    import os
    import time

    cache = TraceCache(tmp_path)  # unbounded while populating
    keys = [str(i) * 64 for i in range(4)]
    for i, key in enumerate(keys):
        cache.put_bundle(key, _bundle(rng, n=32))  # ~8 KiB payload each
        # Distinct mtimes so the LRU ordering is unambiguous.
        payload = cache._base(key).with_suffix(".npy")
        stamp = time.time() - 100 + i
        for p in (payload, payload.with_suffix(".json")):
            os.utime(p, (stamp, stamp))
    cache.max_bytes = 2 * cache.size_bytes() // 4  # room for ~2 entries
    cache._evict()
    assert cache.size_bytes() <= cache.max_bytes
    assert cache.stats.evictions >= 1
    # The newest entry survives, the oldest went first.
    assert cache.get_bundle(keys[-1]) is not None
    assert cache.get_bundle(keys[0]) is None


def test_rejects_nonpositive_budget(tmp_path):
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        TraceCache(tmp_path, max_bytes=0)


def test_configured_cache_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    assert configured_cache() is None
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.setenv(CACHE_MB_ENV, "1")
    cache = configured_cache()
    assert cache is not None
    assert cache.max_bytes == 1024 * 1024
    # Same configuration → same instance (stats aggregate).
    assert configured_cache() is cache


# -- pipeline equivalence ------------------------------------------------


def test_cached_traces_bit_identical_serial(chip, sim_scenario, tmp_path):
    direct = collect_ed_traces(chip, sim_scenario, **ED_PARAMS)
    cache = TraceCache(tmp_path)
    cold = get_or_generate_traces(
        chip, sim_scenario, "ed", cache=cache, **ED_PARAMS
    )
    warm = get_or_generate_traces(
        chip, sim_scenario, "ed", cache=cache, **ED_PARAMS
    )
    assert cache.stats.puts == 1
    assert cache.stats.hits == 1
    assert np.array_equal(direct["sensor"], cold["sensor"])
    assert np.array_equal(direct["sensor"], np.asarray(warm["sensor"]))
    assert not warm["sensor"].flags.writeable


def test_cache_false_disables(chip, sim_scenario, monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    out = get_or_generate_traces(
        chip, sim_scenario, "ed", cache=False, **ED_PARAMS
    )
    assert list(tmp_path.iterdir()) == []  # nothing written
    assert np.array_equal(
        out["sensor"], collect_ed_traces(chip, sim_scenario, **ED_PARAMS)["sensor"]
    )


def test_cached_traces_bit_identical_parallel(
    chip, sim_scenario, tmp_path, monkeypatch
):
    specs = [
        campaign_spec(
            "golden", "ed", chip, sim_scenario,
            n_traces=8, batch=4, receivers=("sensor",), rng_role="ct/golden",
        ),
        campaign_spec(
            "trojan1", "ed", chip, sim_scenario,
            n_traces=8, batch=4, receivers=("sensor",),
            trojan_enables=("trojan1",), rng_role="ct/trojan1",
        ),
    ]
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    uncached = run_campaigns(specs, workers=1)
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    cold = run_campaigns(specs, workers=2)
    warm = run_campaigns(specs, workers=2)
    for name in ("golden", "trojan1"):
        assert np.array_equal(
            uncached[name]["sensor"], np.asarray(cold[name]["sensor"])
        ), name
        assert np.array_equal(
            uncached[name]["sensor"], np.asarray(warm[name]["sensor"])
        ), name
    assert any(tmp_path.rglob("*.npy"))


def test_detector_state_served_from_cache(chip, sim_scenario, tmp_path, rng):
    golden = collect_ed_traces(chip, sim_scenario, **ED_PARAMS)["sensor"]
    cache = TraceCache(tmp_path)
    fresh = get_or_fit_detector(
        chip, sim_scenario, "ed", dict(ED_PARAMS), golden, cache=cache
    )
    cached = get_or_fit_detector(
        chip, sim_scenario, "ed", dict(ED_PARAMS), golden, cache=cache
    )
    assert cache.stats.hits == 1
    assert cached.threshold == fresh.threshold
    assert cached.separation_floor == fresh.separation_floor
    assert np.array_equal(cached._fingerprint, fresh._fingerprint)
    assert np.array_equal(cached.golden_distances, fresh.golden_distances)
    probe = rng.normal(size=(4, golden.shape[1]))
    assert np.array_equal(cached.distances(probe), fresh.distances(probe))


def test_fig6_spectra_served_from_cache(
    chip, sim_scenario, tmp_path, monkeypatch
):
    from repro.experiments.fig6 import run_fig6_spectra

    kwargs = dict(n_cycles=64, trojans=("trojan1",), workers=1)
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    uncached = run_fig6_spectra(chip, sim_scenario, **kwargs)
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    cold = run_fig6_spectra(chip, sim_scenario, **kwargs)
    cache = configured_cache()
    puts_after_cold = cache.stats.puts
    warm = run_fig6_spectra(chip, sim_scenario, **kwargs)
    assert cache.stats.puts == puts_after_cold  # nothing regenerated
    for result in (cold, warm):
        panel = result.panels["trojan1"]
        ref = uncached.panels["trojan1"]
        assert np.array_equal(panel.golden.amplitude, ref.golden.amplitude)
        assert np.array_equal(panel.suspect.amplitude, ref.suspect.amplitude)
        assert panel.low_freq_energy_ratio == ref.low_freq_energy_ratio
        assert panel.total_energy_ratio == ref.total_energy_ratio


def test_table1_rows_served_from_cache(chip, tmp_path, monkeypatch):
    from repro.experiments.table1 import run_table1

    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    cold = run_table1(chip)
    assert cold.stats is not None
    warm = run_table1(chip)
    assert warm.stats is None  # netlist walk skipped
    assert warm.rows == cold.rows
    assert warm.format() == cold.format()
