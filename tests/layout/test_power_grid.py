"""Tests for the power grid and the cell→segment current map."""

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.layout.current_map import (
    build_current_map,
    position_coupling,
)
from repro.layout.floorplan import plan_floorplan
from repro.layout.power_grid import build_power_grid
from repro.layout.technology import make_tech180
from repro.logic.builder import NetlistBuilder
from repro.units import UM


@pytest.fixture(scope="module")
def grid_setup():
    b = NetlistBuilder("die", group="aes")
    a = b.input("a")
    for _ in range(600):
        b.inv(a)
    nl = b.build()
    tech = make_tech180()
    fp = plan_floorplan(nl, tech)
    grid = build_power_grid(fp)
    return nl, fp, grid


def test_grid_segment_blocks_are_ordered(grid_setup):
    _nl, fp, grid = grid_setup
    assert grid.vdd_rail_base == 0
    assert grid.vss_rail_base == grid.n_rows * grid.n_tiles_x
    assert grid.vdd_stripe_base == 2 * grid.n_rows * grid.n_tiles_x
    assert grid.n_segments == grid.seg_end.shape[0] == grid.seg_width.shape[0]


def test_grid_segments_inside_die(grid_setup):
    _nl, fp, grid = grid_setup
    for arr in (grid.seg_start, grid.seg_end):
        assert arr[:, 0].min() >= -1e-9
        assert arr[:, 0].max() <= fp.die.width + 1e-9
        assert arr[:, 1].min() >= -1e-9
        assert arr[:, 1].max() <= fp.die.height + 1e-9


def test_rails_on_m1_stripes_on_m5(grid_setup):
    _nl, fp, grid = grid_setup
    tech = fp.tech
    z_rail = tech.layer("M1").z
    z_stripe = tech.layer("M5").z
    rail_z = grid.seg_start[: grid.vdd_stripe_base, 2]
    assert np.allclose(rail_z, z_rail)
    stripe_z = grid.seg_start[grid.vdd_stripe_base :, 2]
    assert np.allclose(stripe_z, z_stripe)


def test_nearest_stripe(grid_setup):
    _nl, _fp, grid = grid_setup
    for i, xs in enumerate(grid.stripe_xs):
        assert grid.nearest_stripe(xs + 1e-7) == i


def test_current_map_shape_and_balance(grid_setup):
    nl, fp, grid = grid_setup
    from repro.layout.placement import place_netlist

    pl = place_netlist(nl, fp, seed=0)
    names = list(nl.instances)
    xs, ys = pl.arrays_for(names)
    cm = build_current_map(grid, xs, ys)
    assert cm.matrix.shape == (grid.n_segments, len(names))
    # Every cell must have a current path.
    per_cell = np.abs(cm.matrix).sum(axis=0)
    assert (np.asarray(per_cell).ravel() > 0).all()
    # VDD rail entry sum equals -1 * VSS rail entry sum per cell
    vdd_rail = cm.matrix[: grid.vss_rail_base].sum(axis=0)
    vss_rail = cm.matrix[grid.vss_rail_base : grid.vdd_stripe_base].sum(axis=0)
    assert np.allclose(np.asarray(vdd_rail), -np.asarray(vss_rail))


def test_cell_weights_fold(grid_setup):
    nl, fp, grid = grid_setup
    from repro.layout.placement import place_netlist

    pl = place_netlist(nl, fp, seed=0)
    xs, ys = pl.arrays_for(list(nl.instances))
    cm = build_current_map(grid, xs, ys)
    coupling = np.ones(grid.n_segments)
    w = cm.cell_weights(coupling)
    assert w.shape == (len(xs),)
    with pytest.raises(LayoutError):
        cm.cell_weights(np.ones(3))


def test_out_of_die_cell_rejected(grid_setup):
    _nl, fp, grid = grid_setup
    with pytest.raises(LayoutError):
        build_current_map(grid, np.array([-1.0]), np.array([0.0]))


def test_position_coupling_finite(grid_setup):
    _nl, fp, grid = grid_setup
    coupling = np.random.default_rng(0).normal(size=grid.n_segments)
    val = position_coupling(grid, coupling, fp.die.width / 2, fp.die.height / 2)
    assert np.isfinite(val)


def test_ring_current_fraction_scales_ring_entries(grid_setup):
    nl, fp, _grid = grid_setup
    from repro.layout.placement import place_netlist

    pl = place_netlist(nl, fp, seed=0)
    xs, ys = pl.arrays_for(list(nl.instances))
    g_off = build_power_grid(fp, ring_current_fraction=0.0)
    g_on = build_power_grid(fp, ring_current_fraction=0.5)
    cm_off = build_current_map(g_off, xs[:5], ys[:5])
    cm_on = build_current_map(g_on, xs[:5], ys[:5])
    ring_rows_off = np.abs(
        cm_off.matrix[g_off.ring_vdd_top_base :]
    ).sum()
    ring_rows_on = np.abs(cm_on.matrix[g_on.ring_vdd_top_base :]).sum()
    assert ring_rows_off == 0
    assert ring_rows_on > 0


def test_bad_tile_len_rejected(grid_setup):
    _nl, fp, _grid = grid_setup
    with pytest.raises(LayoutError):
        build_power_grid(fp, tile_len=-1 * UM)
