"""Tests for floorplanning and placement."""

import pytest

from repro.errors import LayoutError
from repro.layout.floorplan import plan_floorplan
from repro.layout.placement import place_netlist
from repro.layout.technology import make_tech180
from repro.logic.builder import NetlistBuilder


def _die_netlist(n_main=400, n_side=60):
    b = NetlistBuilder("die", group="aes")
    a = b.input("a")
    for _ in range(n_main):
        b.inv(a)
    with b.in_group("trojan1"):
        for _ in range(n_side):
            b.inv(a)
    with b.in_group("trojan2"):
        for _ in range(n_side // 2):
            b.inv(a)
    return b.build()


@pytest.fixture(scope="module")
def tech():
    return make_tech180()


def test_floorplan_covers_all_groups(tech):
    nl = _die_netlist()
    fp = plan_floorplan(nl, tech)
    assert set(fp.regions) == {"aes", "trojan1", "trojan2"}


def test_regions_fit_inside_die_and_disjoint(tech):
    nl = _die_netlist()
    fp = plan_floorplan(nl, tech)
    rects = [r.rect for r in fp.regions.values()]
    for r in rects:
        assert r.x0 >= -1e-12 and r.y0 >= -1e-12
        assert r.x1 <= fp.die.x1 + 1e-12 and r.y1 <= fp.die.y1 + 1e-12
    # Pairwise disjoint (up to shared edges).
    for i, a in enumerate(rects):
        for b_ in rects[i + 1 :]:
            overlap_w = min(a.x1, b_.x1) - max(a.x0, b_.x0)
            overlap_h = min(a.y1, b_.y1) - max(a.y0, b_.y0)
            assert min(overlap_w, overlap_h) <= 1e-12


def test_die_area_respects_utilization(tech):
    nl = _die_netlist()
    total_cells = sum(i.cell.area for i in nl.instances.values())
    for util in (0.5, 0.8):
        fp = plan_floorplan(nl, tech, utilization=util)
        assert fp.die.area >= total_cells / util * 0.95


def test_bad_utilization_rejected(tech):
    nl = _die_netlist()
    with pytest.raises(LayoutError):
        plan_floorplan(nl, tech, utilization=0.0)
    with pytest.raises(LayoutError):
        plan_floorplan(nl, tech, utilization=1.2)


def test_missing_main_group_rejected(tech):
    nl = _die_netlist()
    with pytest.raises(LayoutError):
        plan_floorplan(nl, tech, main_group="cpu")


def test_column_order_respected(tech):
    nl = _die_netlist()
    fp = plan_floorplan(nl, tech, column_order=["trojan2", "trojan1"])
    r2 = fp.regions["trojan2"].rect
    r1 = fp.regions["trojan1"].rect
    assert r2.y0 >= r1.y1 - 1e-12  # trojan2 stacked above trojan1


def test_incomplete_column_order_rejected(tech):
    nl = _die_netlist()
    with pytest.raises(LayoutError):
        plan_floorplan(nl, tech, column_order=["trojan1"])


def test_single_group_floorplan(tech):
    b = NetlistBuilder("solo", group="aes")
    a = b.input("a")
    for _ in range(50):
        b.inv(a)
    fp = plan_floorplan(b.build(), tech)
    assert set(fp.regions) == {"aes"}
    assert fp.regions["aes"].rect.area == fp.die.area


def test_placement_puts_cells_in_their_regions(tech):
    nl = _die_netlist()
    fp = plan_floorplan(nl, tech)
    pl = place_netlist(nl, fp, seed=3)
    for inst in nl.instances.values():
        x, y = pl.positions[inst.name]
        region = fp.regions[inst.group].rect
        assert region.contains(x, y, tol=1e-9), inst.name


def test_placement_no_overlapping_cells_in_row(tech):
    nl = _die_netlist()
    fp = plan_floorplan(nl, tech)
    pl = place_netlist(nl, fp, seed=3)
    by_row: dict[tuple, list] = {}
    for inst in nl.instances.values():
        x, y = pl.positions[inst.name]
        half = inst.cell.area / tech.row_height / 2
        by_row.setdefault(round(y, 12), []).append((x - half, x + half))
    for intervals in by_row.values():
        intervals.sort()
        for (a0, a1), (b0, _b1) in zip(intervals, intervals[1:]):
            assert b0 >= a1 - 1e-12


def test_placement_deterministic_per_seed(tech):
    nl = _die_netlist()
    fp = plan_floorplan(nl, tech)
    p1 = place_netlist(nl, fp, seed=3).positions
    p2 = place_netlist(nl, fp, seed=3).positions
    p3 = place_netlist(nl, fp, seed=4).positions
    assert p1 == p2
    assert p1 != p3


def test_placement_arrays_alignment(tech):
    nl = _die_netlist()
    fp = plan_floorplan(nl, tech)
    pl = place_netlist(nl, fp, seed=0)
    names = list(nl.instances)
    xs, ys = pl.arrays_for(names)
    assert xs.shape == ys.shape == (len(names),)
    assert (xs[0], ys[0]) == pl.positions[names[0]]
    with pytest.raises(LayoutError):
        pl.arrays_for(["ghost"])


def test_group_centroid_inside_region(tech):
    nl = _die_netlist()
    fp = plan_floorplan(nl, tech)
    pl = place_netlist(nl, fp, seed=0)
    cx, cy = pl.group_centroid(nl, "trojan1")
    assert fp.regions["trojan1"].rect.contains(cx, cy)


def test_floorplan_summary_mentions_groups(tech):
    nl = _die_netlist()
    fp = plan_floorplan(nl, tech)
    text = fp.summary()
    assert "die:" in text and "trojan1" in text
