"""Tests for layout geometry primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.layout.geometry import (
    Rect,
    circular_loop,
    enclosed_area,
    polyline_length,
    rectangular_spiral,
    segments_from_polyline,
)
from repro.units import UM


def test_rect_basic_properties():
    r = Rect(0, 0, 2, 3)
    assert r.width == 2 and r.height == 3 and r.area == 6
    assert r.center == (1.0, 1.5)
    assert r.contains(1, 1)
    assert not r.contains(-0.1, 1)
    assert r.contains(-0.05, 1, tol=0.1)


def test_rect_shrunk():
    r = Rect(0, 0, 10, 10).shrunk(1)
    assert (r.x0, r.y0, r.x1, r.y1) == (1, 1, 9, 9)


def test_degenerate_rect_rejected():
    with pytest.raises(LayoutError):
        Rect(1, 0, 0, 1)


def test_polyline_length_simple():
    pts = np.array([[0, 0, 0], [3, 0, 0], [3, 4, 0]], dtype=float)
    assert polyline_length(pts) == pytest.approx(7.0)


def test_segments_from_polyline():
    pts = np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0]], dtype=float)
    s, e = segments_from_polyline(pts)
    assert s.shape == (2, 3)
    assert np.array_equal(s[1], [1, 0, 0])
    assert np.array_equal(e[1], [1, 1, 0])


def test_polyline_validation():
    with pytest.raises(LayoutError):
        polyline_length(np.zeros((1, 3)))
    with pytest.raises(LayoutError):
        segments_from_polyline(np.zeros((2, 2)))


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 10), st.floats(min_value=1e-6, max_value=1e-4))
def test_spiral_extent_and_planarity(turns, pitch):
    pts = rectangular_spiral(0.0, 0.0, 5e-6, pitch, turns)
    assert pts.shape == (4 * turns + 1, 3)
    assert np.allclose(pts[:, 2], 5e-6)
    extent = np.abs(pts[:, :2]).max()
    assert extent == pytest.approx(turns * pitch, rel=1e-9)


def test_spiral_starts_at_center():
    pts = rectangular_spiral(1.0, 2.0, 0.0, 1e-5, 3)
    assert tuple(pts[0]) == (1.0, 2.0, 0.0)


def test_spiral_segments_are_axis_aligned():
    pts = rectangular_spiral(0, 0, 0, 1e-5, 4)
    d = np.diff(pts, axis=0)
    # Each leg moves along exactly one of x or y.
    assert np.all((d[:, 0] == 0) | (d[:, 1] == 0))


def test_spiral_rejects_bad_params():
    with pytest.raises(LayoutError):
        rectangular_spiral(0, 0, 0, -1.0, 3)
    with pytest.raises(LayoutError):
        rectangular_spiral(0, 0, 0, 1e-5, 0)


def test_spiral_effective_area_grows_with_turns():
    a1 = abs(enclosed_area(rectangular_spiral(0, 0, 0, 10 * UM, 4)))
    a2 = abs(enclosed_area(rectangular_spiral(0, 0, 0, 10 * UM, 8)))
    assert a2 > a1


def test_circular_loop_closed_and_radius():
    loop = circular_loop(0, 0, 1e-4, 5e-4, n_sides=32)
    assert np.array_equal(loop[0], loop[-1])
    radii = np.linalg.norm(loop[:, :2], axis=1)
    assert np.allclose(radii, 5e-4)


def test_circular_loop_area_approaches_circle():
    r = 1e-3
    loop = circular_loop(0, 0, 0, r, n_sides=128)
    assert enclosed_area(loop) == pytest.approx(np.pi * r * r, rel=2e-3)


def test_circular_loop_validation():
    with pytest.raises(LayoutError):
        circular_loop(0, 0, 0, -1)
    with pytest.raises(LayoutError):
        circular_loop(0, 0, 0, 1, n_sides=2)
