"""Tests for the design-rule checker."""

import numpy as np
import pytest

from repro.layout.drc import (
    DrcReport,
    check_floorplan,
    check_power_grid,
    check_sensor,
    check_top_layer_reserved,
    run_drc,
)
from repro.layout.floorplan import Floorplan, Region
from repro.layout.geometry import Rect
from repro.layout.technology import make_tech180
from repro.units import UM


def test_assembled_chip_is_drc_clean(chip):
    report = run_drc(chip)
    assert report.clean, report.format()
    assert report.checks_run > 10
    assert "clean" in report.format()


def test_grid_min_width_violation_detected(chip):
    report = DrcReport()
    grid = chip.grid
    original = grid.seg_width.copy()
    try:
        grid.seg_width[0] = 0.01 * UM  # illegally narrow
        check_power_grid(grid, chip.tech, report)
    finally:
        grid.seg_width[:] = original
    assert not report.clean
    assert report.violations[0].rule == "grid.min-width"


def test_sensor_spacing_violation_detected(chip):
    from dataclasses import replace as _
    import copy

    report = DrcReport()
    sensor = copy.copy(chip.sensor)
    sensor.trace_width = sensor.pitch  # zero gap between turns
    check_sensor(sensor, chip.floorplan, chip.tech, report)
    assert any(v.rule == "sensor.spacing" for v in report.violations)


def test_sensor_escape_detected(chip):
    import copy

    report = DrcReport()
    sensor = copy.copy(chip.sensor)
    sensor.polyline = chip.sensor.polyline.copy()
    sensor.polyline[-1, 0] = chip.floorplan.die.x1 + 50 * UM
    check_sensor(sensor, chip.floorplan, chip.tech, report)
    assert any(v.rule == "sensor.containment" for v in report.violations)


def test_floorplan_overlap_detected():
    tech = make_tech180()
    die = Rect(0, 0, 100 * UM, 100 * UM)
    fp = Floorplan(
        die=die,
        regions={
            "a": Region("a", Rect(0, 0, 60 * UM, 100 * UM)),
            "b": Region("b", Rect(40 * UM, 0, 100 * UM, 100 * UM)),
        },
        utilization=0.7,
        tech=tech,
    )
    report = DrcReport()
    check_floorplan(fp, report)
    assert any(v.rule == "floorplan.overlap" for v in report.violations)


def test_floorplan_containment_detected():
    tech = make_tech180()
    die = Rect(0, 0, 100 * UM, 100 * UM)
    fp = Floorplan(
        die=die,
        regions={"a": Region("a", Rect(0, 0, 150 * UM, 100 * UM))},
        utilization=0.7,
        tech=tech,
    )
    report = DrcReport()
    check_floorplan(fp, report)
    assert any(v.rule == "floorplan.containment" for v in report.violations)


def test_top_layer_reservation_detected(chip):
    report = DrcReport()
    grid = chip.grid
    original = grid.seg_start.copy()
    try:
        grid.seg_start[0, 2] = chip.tech.layer("M6").z
        check_top_layer_reserved(grid, chip.tech, report)
    finally:
        grid.seg_start[:] = original
    assert any(v.rule == "top-layer.reserved" for v in report.violations)


def test_report_format_lists_violations():
    report = DrcReport()
    report.add("x.rule", "something bad")
    text = report.format()
    assert "x.rule" in text and "something bad" in text
