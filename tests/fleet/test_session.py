"""Tests for per-chip monitor sessions."""

import json

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.fleet import (
    EventJournal,
    MetricsRegistry,
    MonitorSession,
    TraceFeed,
    floor_scaled_threshold,
)
from repro.fleet.feed import WindowBatch


def test_floor_scaled_threshold_geometry(synthetic):
    ev, _ = synthetic
    detector = ev.detector
    n = detector.golden_distances.shape[0]
    # thr(W) = floor * sqrt((1/W + 1/n) * n / 4): the bootstrapped
    # split-half envelope rescaled to W-window-mean noise.
    for window in (16, 64, 256):
        expected = detector.separation_floor * np.sqrt(
            (1.0 / window + 1.0 / n) * n / 4.0
        )
        assert floor_scaled_threshold(detector, window) == pytest.approx(
            float(expected)
        )
    # Longer windows average more noise away: tighter threshold.
    assert floor_scaled_threshold(detector, 256) < \
        floor_scaled_threshold(detector, 16)
    from repro.analysis.euclidean import EuclideanDetector

    with pytest.raises(AnalysisError):
        floor_scaled_threshold(EuclideanDetector(), 16)


def test_session_threshold_modes(synthetic):
    ev, _ = synthetic
    floor = MonitorSession("c", ev, window=16, threshold="floor")
    assert floor.monitor.threshold == pytest.approx(
        floor_scaled_threshold(ev.detector, 16)
    )
    explicit = MonitorSession("c", ev, window=16, threshold=0.5)
    assert explicit.monitor.threshold == 0.5
    analytic = MonitorSession("c", ev, window=16, threshold=None)
    assert analytic.monitor.threshold > 0
    with pytest.raises(AnalysisError):
        MonitorSession("c", ev, threshold="bogus")


def test_session_rejects_foreign_batches(synthetic, streams):
    ev, _ = synthetic
    session = MonitorSession("c0", ev, window=8)
    feed = TraceFeed("c1", streams["clean"], batch=8)
    with pytest.raises(AnalysisError):
        session.ingest(feed.batch_at(0))


def test_session_accounts_gaps_and_out_of_order(synthetic, streams):
    ev, _ = synthetic
    session = MonitorSession("c", ev, window=8)
    traces = streams["clean"]
    # seqs 0,1,  5 (gap),  3 (regression), delivered as one batch.
    batch = WindowBatch(
        chip_id="c", seqs=(0, 1, 5, 3), traces=traces[[0, 1, 5, 3]]
    )
    session.ingest(batch)
    assert session.windows_ingested == 4
    assert session.gaps == 1
    assert session.out_of_order == 1


def test_session_journals_alarm_with_source_seq(synthetic, streams):
    ev, _ = synthetic
    metrics = MetricsRegistry()
    journal = EventJournal()
    session = MonitorSession(
        "c", ev, window=8, confirm=2, threshold=0.05,
        metrics=metrics, journal=journal,
    )
    feed = TraceFeed("c", streams["bad"], batch=10)
    for batch in feed:
        session.ingest(batch)
    assert session.alarmed
    alarms = [e for e in journal.events if e["kind"] == "alarm"]
    assert alarms
    first = alarms[0]
    assert first["chip"] == "c"
    # The journalled seq is the source window that tripped the alarm
    # (clean feed: seq == window_index - 1).
    assert first["seq"] == first["window_index"] - 1
    assert first["separation"] > first["threshold"]
    assert metrics.counter("chip.c.alarms").value == len(alarms)
    # Stage timing hooks fired once per batch.
    assert (
        metrics.histogram("stage.features.seconds").count == feed.n_batches
    )
    assert (
        metrics.histogram("stage.separation.seconds").count
        == feed.n_batches
    )


def test_session_state_round_trips_through_json(synthetic, streams):
    ev, _ = synthetic
    session = MonitorSession("c", ev, window=8, confirm=2, threshold=0.05)
    feed = TraceFeed("c", streams["bad"], batch=10)
    for batch in list(feed)[:6]:
        session.ingest(batch)
    state = json.loads(json.dumps(session.state_dict()))
    clone = MonitorSession.from_state(state, ev)
    assert clone.chip_id == "c"
    assert clone.windows_ingested == session.windows_ingested
    assert clone.monitor.threshold == session.monitor.threshold
    assert clone.monitor.alarms == session.monitor.alarms
    assert clone.current_separation() == session.current_separation()
