"""Tests for the fleet scheduler: backpressure, fan-out, checkpointing."""

import json

import pytest

from repro.errors import ExperimentError
from repro.fleet import (
    BoundedQueue,
    EventJournal,
    FaultSpec,
    FleetScheduler,
    MetricsRegistry,
    MonitorSession,
    TraceFeed,
)

FAULTS = FaultSpec(drop=0.05, duplicate=0.05, reorder=0.1)


def _fleet(synthetic, streams, *, policy="block", queue_depth=4,
           workers=1, consume_every=1, faults=None, journal=None):
    ev, _ = synthetic
    metrics = MetricsRegistry()
    journal = journal if journal is not None else EventJournal()
    sessions = [
        MonitorSession(c, ev, window=16, confirm=2,
                       metrics=metrics, journal=journal)
        for c in ("clean", "bad")
    ]
    feeds = [
        TraceFeed(c, streams[c], batch=8, faults=faults, seed=11)
        for c in ("clean", "bad")
    ]
    scheduler = FleetScheduler(
        sessions, queue_depth=queue_depth, policy=policy, workers=workers,
        consume_every=consume_every, journal=journal, metrics=metrics,
    )
    return scheduler, feeds, journal


def test_serial_block_run_ingests_everything(synthetic, streams):
    scheduler, feeds, journal = _fleet(synthetic, streams, faults=FAULTS)
    result = scheduler.run(feeds)
    assert result.complete
    for feed in feeds:
        report = result.reports[feed.chip_id]
        assert report.windows_ingested == feed.n_delivered
        assert report.feed_dropped == len(feed.dropped_seqs)
        assert report.queue_dropped_windows == 0
    assert not result.reports["clean"].time_alarm
    assert result.reports["bad"].time_alarm
    assert any(e["kind"] == "alarm" for e in journal.events)
    assert result.throughput > 0
    assert "ALARM" in result.format() and "link drops" in result.format()


def test_drop_oldest_policy_drops_loudly(synthetic, streams):
    # A slow consumer (one drain per 3 ticks) against depth-2 queues
    # must overflow deterministically.
    scheduler, feeds, journal = _fleet(
        synthetic, streams, policy="drop_oldest", queue_depth=2,
        consume_every=3,
    )
    result = scheduler.run(feeds)
    report = result.reports["clean"]
    assert report.queue_dropped_batches > 0
    assert report.queue_dropped_windows > 0
    assert report.windows_ingested + report.queue_dropped_windows == \
        report.windows_delivered
    drops = [e for e in journal.events if e["kind"] == "drop"]
    assert drops and all("seqs" in e for e in drops)
    assert result.metrics["counters"]["fleet.queue.dropped_windows"] > 0


def test_block_policy_never_loses_windows(synthetic, streams):
    scheduler, feeds, _ = _fleet(
        synthetic, streams, policy="block", queue_depth=2, consume_every=3
    )
    result = scheduler.run(feeds)
    for feed in feeds:
        assert (
            result.reports[feed.chip_id].windows_ingested
            == feed.n_delivered
        )
        assert result.reports[feed.chip_id].queue_dropped_windows == 0


def test_threaded_run_matches_serial_alarms(
    synthetic, streams, monkeypatch
):
    monkeypatch.setenv("REPRO_FORCE_POOL", "1")
    serial, feeds_s, _ = _fleet(synthetic, streams, faults=FAULTS)
    r_serial = serial.run(feeds_s)
    threaded, feeds_t, _ = _fleet(
        synthetic, streams, faults=FAULTS, workers=2
    )
    r_threaded = threaded.run(feeds_t)
    for chip in ("clean", "bad"):
        assert (
            r_threaded.reports[chip].alarms == r_serial.reports[chip].alarms
        )
        assert (
            r_threaded.reports[chip].windows_ingested
            == r_serial.reports[chip].windows_ingested
        )


def test_checkpoint_resume_is_bit_identical(synthetic, streams):
    ev, _ = synthetic

    def build(journal):
        return _fleet(synthetic, streams, faults=FAULTS, journal=journal)

    # Uninterrupted reference run.
    full_journal = EventJournal()
    scheduler, feeds, _ = build(full_journal)
    r_full = scheduler.run(feeds)
    assert r_full.complete

    # Same fleet, stopped mid-stream...
    part_journal = EventJournal()
    scheduler, feeds, _ = build(part_journal)
    r_part = scheduler.run(feeds, max_ticks=5)
    assert not r_part.complete
    assert part_journal.events[-1]["kind"] == "checkpoint"
    events_before_resume = len(part_journal.events) - 1  # sans checkpoint

    # ...checkpointed through an actual JSON round trip...
    state = json.loads(json.dumps(scheduler.state_dict()))

    # ...and resumed against identically rebuilt feeds.
    resume_journal = EventJournal()
    metrics = MetricsRegistry()
    resumed = FleetScheduler.from_state(
        state, ev, journal=resume_journal, metrics=metrics
    )
    feeds2 = [
        TraceFeed(c, streams[c], batch=8, faults=FAULTS, seed=11)
        for c in ("clean", "bad")
    ]
    r_resumed = resumed.run(feeds2)
    assert r_resumed.complete

    # Acceptance: same alarms (indices, separations, thresholds) and
    # the resumed journal equals the uninterrupted journal's tail.
    for chip in ("clean", "bad"):
        assert (
            r_resumed.reports[chip].alarms == r_full.reports[chip].alarms
        )
        assert (
            r_resumed.reports[chip].windows_ingested
            == r_full.reports[chip].windows_ingested
        )
        assert r_resumed.reports[chip].gaps == r_full.reports[chip].gaps
        assert (
            r_resumed.reports[chip].out_of_order
            == r_full.reports[chip].out_of_order
        )
    assert (
        full_journal.events[events_before_resume:] == resume_journal.events
    )


def test_checkpointing_requires_serial_mode(
    synthetic, streams, monkeypatch
):
    monkeypatch.setenv("REPRO_FORCE_POOL", "1")
    scheduler, feeds, _ = _fleet(synthetic, streams, workers=2)
    with pytest.raises(ExperimentError):
        scheduler.run(feeds, max_ticks=3)


def test_scheduler_validation(synthetic, streams):
    ev, _ = synthetic
    session = MonitorSession("clean", ev, window=16)
    with pytest.raises(ExperimentError):
        FleetScheduler([])
    with pytest.raises(ExperimentError):
        FleetScheduler([session, MonitorSession("clean", ev, window=16)])
    with pytest.raises(ExperimentError):
        FleetScheduler([session], policy="drop_newest")
    with pytest.raises(ExperimentError):
        FleetScheduler([session], consume_every=0)
    scheduler = FleetScheduler([session])
    with pytest.raises(ExperimentError):
        scheduler.run([TraceFeed("other", streams["clean"])])


def test_bounded_queue_policies(streams):
    feed = TraceFeed("c", streams["clean"], batch=8)
    batches = list(feed)
    q = BoundedQueue(2, "drop_oldest")
    assert q.put(batches[0]) is None
    assert q.put(batches[1]) is None
    evicted = q.put(batches[2])
    assert evicted is batches[0]
    assert q.dropped == [batches[0]]
    assert q.high_water == 2
    assert q.get_nowait() is batches[1]
    q.close()
    assert not q.finished  # still holds batches[2]
    assert q.get_nowait() is batches[2]
    assert q.finished
    with pytest.raises(ExperimentError):
        BoundedQueue(0, "block")
    with pytest.raises(ExperimentError):
        BoundedQueue(2, "bogus")
