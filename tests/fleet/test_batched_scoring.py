"""Batched fleet scoring must be bit-identical to sequential scoring.

The :class:`~repro.framework.batched.BatchedFleetMonitor` replaces the
per-chip feature/separation loop with one dense pass per tick; these
tests drive both scoring modes over the same multi-chip fleets — link
faults, backpressure drops, checkpoint/resume — and require the exact
same alarm stream, stream accounting and journal tail.
"""

import json

import numpy as np
import pytest

from repro.config import ReproConfig, use_config
from repro.errors import AnalysisError, ExperimentError
from repro.fleet import (
    EventJournal,
    FaultSpec,
    FleetScheduler,
    MetricsRegistry,
    MonitorSession,
    TraceFeed,
)
from repro.framework.batched import BatchedFleetMonitor
from repro.framework.monitor import RuntimeMonitor

FAULTS = FaultSpec(drop=0.05, duplicate=0.05, reorder=0.1)

#: Golden plus five Trojan-style variants with graded envelope shifts
#: (the weakest stays inside, as the golden chip must).
VARIANTS = (
    ("golden", 0.0),
    ("t1", 0.5),
    ("t2", 0.35),
    ("t3", 0.25),
    ("t4", 0.02),
    ("a2", 0.6),
)


@pytest.fixture()
def fleet_streams(synthetic, fleet_rng):
    """Six labelled streams over the shared synthetic golden base."""
    _, base = synthetic
    shape = np.cos(np.linspace(0, 9, base.size))
    return {
        name: (base + amp * shape)[None, :]
        + 0.05 * fleet_rng.normal(size=(96, base.size))
        for name, amp in VARIANTS
    }


def _build(synthetic, streams, *, scoring, policy="block", queue_depth=4,
           consume_every=1, workers=1, faults=FAULTS, journal=None):
    ev, _ = synthetic
    metrics = MetricsRegistry()
    journal = journal if journal is not None else EventJournal()
    sessions = [
        MonitorSession(c, ev, window=16, confirm=2,
                       metrics=metrics, journal=journal)
        for c in streams
    ]
    feeds = [
        TraceFeed(c, streams[c], batch=8, faults=faults, seed=11)
        for c in streams
    ]
    scheduler = FleetScheduler(
        sessions, queue_depth=queue_depth, policy=policy, workers=workers,
        consume_every=consume_every, scoring=scoring,
        journal=journal, metrics=metrics,
    )
    return scheduler, feeds, journal, metrics


def _assert_identical(r_a, r_b, chips):
    for chip in chips:
        a, b = r_a.reports[chip], r_b.reports[chip]
        assert a.alarms == b.alarms, chip
        assert a.windows_ingested == b.windows_ingested, chip
        assert a.gaps == b.gaps and a.out_of_order == b.out_of_order, chip


def test_batched_matches_sequential_with_link_faults(
    synthetic, fleet_streams
):
    seq, feeds_s, j_seq, _ = _build(
        synthetic, fleet_streams, scoring="sequential"
    )
    r_seq = seq.run(feeds_s)
    bat, feeds_b, j_bat, m_bat = _build(
        synthetic, fleet_streams, scoring="batched"
    )
    r_bat = bat.run(feeds_b)
    _assert_identical(r_seq, r_bat, fleet_streams)
    # Same journal stream, record for record (alarms in the same order
    # with the same seqs/separations).
    assert j_seq.events == j_bat.events
    assert any(e["kind"] == "alarm" for e in j_bat.events)
    counters = m_bat.snapshot()["counters"]
    assert counters["fleet.scoring.batched"] == r_bat.windows_ingested
    assert "fleet.scoring.sequential" not in counters


def test_batched_matches_sequential_under_drop_oldest(
    synthetic, fleet_streams
):
    # A slow consumer over depth-2 queues overflows deterministically;
    # the inline drains of evicted batches must route through the same
    # engine and stay bit-identical.
    kw = dict(policy="drop_oldest", queue_depth=2, consume_every=3,
              faults=None)
    seq, feeds_s, j_seq, _ = _build(
        synthetic, fleet_streams, scoring="sequential", **kw
    )
    r_seq = seq.run(feeds_s)
    bat, feeds_b, j_bat, _ = _build(
        synthetic, fleet_streams, scoring="batched", **kw
    )
    r_bat = bat.run(feeds_b)
    _assert_identical(r_seq, r_bat, fleet_streams)
    assert r_bat.reports["golden"].queue_dropped_windows > 0
    assert j_seq.events == j_bat.events


def test_threaded_batched_matches_serial_sequential(
    synthetic, fleet_streams, monkeypatch
):
    monkeypatch.setenv("REPRO_FORCE_POOL", "1")
    seq, feeds_s, _, _ = _build(
        synthetic, fleet_streams, scoring="sequential"
    )
    r_seq = seq.run(feeds_s)
    bat, feeds_b, _, _ = _build(
        synthetic, fleet_streams, scoring="batched", workers=3
    )
    r_bat = bat.run(feeds_b)
    _assert_identical(r_seq, r_bat, fleet_streams)


@pytest.mark.parametrize("first,second", [
    ("sequential", "batched"), ("batched", "sequential"),
])
def test_checkpoint_resume_across_scoring_modes(
    synthetic, fleet_streams, first, second
):
    """A checkpoint taken under one mode resumes under the other."""
    ev, _ = synthetic
    ref, feeds, _, _ = _build(synthetic, fleet_streams, scoring="sequential")
    r_ref = ref.run(feeds)

    part, feeds_p, _, _ = _build(synthetic, fleet_streams, scoring=first)
    r_part = part.run(feeds_p, max_ticks=5)
    assert not r_part.complete
    state = json.loads(json.dumps(part.state_dict()))

    resumed = FleetScheduler.from_state(
        state, ev, journal=EventJournal(), metrics=MetricsRegistry()
    )
    resumed.scoring = second
    feeds_r = [
        TraceFeed(c, fleet_streams[c], batch=8, faults=FAULTS, seed=11)
        for c in fleet_streams
    ]
    r_resumed = resumed.run(feeds_r)
    assert r_resumed.complete
    _assert_identical(r_ref, r_resumed, fleet_streams)


def test_batched_matches_sequential_across_sum_refresh(
    synthetic, fleet_streams, monkeypatch
):
    """Both modes hit the periodic running-sum refresh identically."""
    monkeypatch.setattr(RuntimeMonitor, "REFRESH_EVERY", 7)
    seq, feeds_s, j_seq, _ = _build(
        synthetic, fleet_streams, scoring="sequential"
    )
    r_seq = seq.run(feeds_s)
    bat, feeds_b, j_bat, _ = _build(
        synthetic, fleet_streams, scoring="batched"
    )
    r_bat = bat.run(feeds_b)
    _assert_identical(r_seq, r_bat, fleet_streams)
    assert j_seq.events == j_bat.events


def test_scoring_mode_resolution(synthetic, fleet_streams):
    ev, _ = synthetic
    session = MonitorSession("golden", ev, window=16)
    with pytest.raises(ExperimentError):
        FleetScheduler([session], scoring="vectorised")
    with use_config(ReproConfig(fleet_scoring="sequential")):
        assert FleetScheduler([session]).scoring_mode() == "sequential"
        assert FleetScheduler(
            [session], scoring="batched"
        ).scoring_mode() == "batched"


def test_scoring_latency_lands_in_report(synthetic, fleet_streams):
    bat, feeds, _, _ = _build(synthetic, fleet_streams, scoring="batched")
    result = bat.run(feeds)
    for chip in fleet_streams:
        assert result.reports[chip].scoring_p99_s > 0.0
    assert "score p99" in result.format()


def test_engine_rejects_mismatched_sessions(synthetic, fleet_streams):
    ev, _ = synthetic
    with pytest.raises(AnalysisError):
        BatchedFleetMonitor([])
    with pytest.raises(AnalysisError):
        BatchedFleetMonitor([
            MonitorSession("a", ev, window=16),
            MonitorSession("a", ev, window=16),
        ])
    with pytest.raises(AnalysisError):
        BatchedFleetMonitor([
            MonitorSession("a", ev, window=16),
            MonitorSession("b", ev, window=32),
        ])


def test_engine_adopts_mid_stream_state(synthetic, fleet_streams):
    """An engine built over part-way sessions continues bit-identically."""
    ev, _ = synthetic
    chips = tuple(fleet_streams)

    def sessions():
        return {c: MonitorSession(c, ev, window=16, confirm=2) for c in chips}

    batches = {
        c: list(TraceFeed(c, fleet_streams[c], batch=8, seed=11))
        for c in chips
    }
    n_head = 3

    ref = sessions()
    for c in chips:
        for b in batches[c]:
            ref[c].ingest(b)

    mid = sessions()
    for c in chips:
        for b in batches[c][:n_head]:
            mid[c].ingest(b)
    engine = BatchedFleetMonitor(list(mid.values()))
    for i in range(n_head, max(len(b) for b in batches.values())):
        engine.ingest_tick([
            (mid[c], batches[c][i]) for c in chips if i < len(batches[c])
        ])
    engine.sync_to_sessions()
    for c in chips:
        assert mid[c].monitor.alarms == ref[c].monitor.alarms, c
        assert mid[c].monitor.state_dict() == ref[c].monitor.state_dict(), c
