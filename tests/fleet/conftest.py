"""Shared fixtures for the fleet service tests.

Fleet tests run against a synthetic evaluator (a detector fitted on
sinusoid-plus-noise golden traces, as in the monitor tests) so they
exercise the streaming machinery without paying for chip simulation.
"""

import numpy as np
import pytest

from repro.analysis.euclidean import EuclideanDetector
from repro.framework.evaluator import EvaluatorConfig, RuntimeTrustEvaluator


@pytest.fixture()
def fleet_rng():
    return np.random.default_rng(0xF1EE7)


@pytest.fixture()
def synthetic(fleet_rng):
    """(evaluator, golden base waveform) over synthetic golden traces."""
    length = 200
    base = np.sin(np.linspace(0, 15, length))
    golden = base[None, :] + 0.05 * fleet_rng.normal(size=(128, length))
    detector = EuclideanDetector().fit(golden)
    ev = RuntimeTrustEvaluator.__new__(RuntimeTrustEvaluator)
    ev.detector = detector
    ev.golden_spectrum = None
    ev.fs = 1e9
    ev.config = EvaluatorConfig()
    return ev, base


@pytest.fixture()
def streams(synthetic, fleet_rng):
    """Two labelled streams: a clean chip and a Trojan-shifted chip."""
    _, base = synthetic
    clean = base[None, :] + 0.05 * fleet_rng.normal(size=(120, base.size))
    shifted = base + 0.4 * np.cos(np.linspace(0, 9, base.size))
    bad = shifted[None, :] + 0.05 * fleet_rng.normal(size=(120, base.size))
    return {"clean": clean, "bad": bad}
