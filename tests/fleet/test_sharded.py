"""The sharded fleet service must be bit-identical to the serial path.

The :class:`~repro.fleet.ingest.ShardedFleetScheduler` front-end fans
the fleet out over shard workers (forked processes over unix sockets,
or in-process engines under the ``inline`` transport — the frames are
encoded either way).  These tests drive both topologies over the same
fleets — link faults, backpressure drops, checkpoint/resume across
topologies — and require the exact same alarm stream, accounting
counters and journal content as one single-process scheduler.

Identity scope: journal events, per-chip reports, and every counter
except the ``shard.*`` infrastructure ones; timing histograms
(``stage.*``) are excluded by construction (per-shard sample counts
differ), as are the ``fleet.shards``/``shard.*`` gauges.
"""

import json

import numpy as np
import pytest

from repro.config import ReproConfig, use_config
from repro.errors import ExperimentError
from repro.fleet import (
    EventJournal,
    FaultSpec,
    FleetScheduler,
    HashRing,
    MetricsRegistry,
    MonitorSession,
    ShardedFleetScheduler,
    TraceFeed,
    shard_assignments,
)
from repro.fleet.shard import ShardEngine, evaluator_to_wire
from repro.fleet.wire import BATCH, ERROR, INIT, RESULT, STATE

FAULTS = FaultSpec(drop=0.05, duplicate=0.05, reorder=0.1)

VARIANTS = (
    ("golden", 0.0),
    ("t1", 0.5),
    ("t2", 0.35),
    ("t3", 0.25),
    ("t4", 0.02),
    ("a2", 0.6),
)


@pytest.fixture()
def fleet_streams(synthetic, fleet_rng):
    """Six labelled streams over the shared synthetic golden base."""
    _, base = synthetic
    shape = np.cos(np.linspace(0, 9, base.size))
    return {
        name: (base + amp * shape)[None, :]
        + 0.05 * fleet_rng.normal(size=(96, base.size))
        for name, amp in VARIANTS
    }


def _build(cls, synthetic, streams, *, policy="block", queue_depth=4,
           consume_every=1, faults=FAULTS, scoring="batched", **kw):
    ev, _ = synthetic
    metrics = MetricsRegistry()
    journal = EventJournal()
    sessions = [
        MonitorSession(c, ev, window=16, confirm=2,
                       metrics=metrics, journal=journal)
        for c in streams
    ]
    feeds = [
        TraceFeed(c, streams[c], batch=8, faults=faults, seed=11)
        for c in streams
    ]
    if cls is FleetScheduler:
        kw.setdefault("workers", 1)
    scheduler = cls(
        sessions, queue_depth=queue_depth, policy=policy,
        consume_every=consume_every, scoring=scoring,
        journal=journal, metrics=metrics, **kw,
    )
    return scheduler, feeds, journal, metrics


def _clean_counters(metrics):
    return {
        k: v for k, v in metrics.snapshot()["counters"].items()
        if not k.startswith("shard.") and not k.startswith("stage.")
    }


def _assert_identical(r_a, r_b, chips):
    for chip in chips:
        a, b = r_a.reports[chip], r_b.reports[chip]
        assert a.alarms == b.alarms, chip
        assert a.windows_ingested == b.windows_ingested, chip
        assert a.gaps == b.gaps and a.out_of_order == b.out_of_order, chip
        assert a.queue_dropped_windows == b.queue_dropped_windows, chip


# -- placement ---------------------------------------------------------

def test_hash_ring_is_deterministic_and_covers_all_shards():
    chips = [f"chip-{i}" for i in range(64)]
    a = shard_assignments(chips, 4)
    b = shard_assignments(chips, 4)
    assert a == b  # pure function of (chip_ids, n_shards)
    assert set(a) == set(chips)
    assert set(a.values()) == {0, 1, 2, 3}


def test_hash_ring_stability_under_shard_growth():
    # Consistent hashing: growing 4 -> 5 shards must only move a
    # minority of chips (a modulo mapping would move ~4/5 of them).
    chips = [f"chip-{i}" for i in range(256)]
    before = shard_assignments(chips, 4)
    after = shard_assignments(chips, 5)
    moved = sum(1 for c in chips if before[c] != after[c])
    assert 0 < moved < len(chips) / 2


def test_hash_ring_rejects_bad_parameters():
    with pytest.raises(ExperimentError, match=">= 1"):
        HashRing(0)
    with pytest.raises(ExperimentError, match="virtual node"):
        HashRing(2, virtual_nodes=0)


# -- bit-identity against the serial scheduler -------------------------

@pytest.mark.parametrize("transport", ["inline", "socket"])
def test_sharded_matches_serial_with_link_faults(
    synthetic, fleet_streams, transport
):
    ref, feeds_r, j_ref, m_ref = _build(
        FleetScheduler, synthetic, fleet_streams
    )
    r_ref = ref.run(feeds_r)
    sharded, feeds_s, j_sh, m_sh = _build(
        ShardedFleetScheduler, synthetic, fleet_streams,
        shards=2, transport=transport,
    )
    r_sh = sharded.run(feeds_s)
    _assert_identical(r_ref, r_sh, fleet_streams)
    assert j_ref.events == j_sh.events
    assert any(e["kind"] == "alarm" for e in j_sh.events)
    assert _clean_counters(m_ref) == _clean_counters(m_sh)
    # The shard infrastructure still reports itself.
    gauges = m_sh.snapshot()["gauges"]
    assert gauges["fleet.shards"] == 2


def test_sharded_matches_serial_under_drop_oldest(
    synthetic, fleet_streams
):
    kw = dict(policy="drop_oldest", queue_depth=2, consume_every=3,
              faults=None)
    ref, feeds_r, j_ref, m_ref = _build(
        FleetScheduler, synthetic, fleet_streams, **kw
    )
    r_ref = ref.run(feeds_r)
    sharded, feeds_s, j_sh, m_sh = _build(
        ShardedFleetScheduler, synthetic, fleet_streams,
        shards=3, transport="inline", **kw,
    )
    r_sh = sharded.run(feeds_s)
    _assert_identical(r_ref, r_sh, fleet_streams)
    assert r_sh.reports["golden"].queue_dropped_windows > 0
    assert j_ref.events == j_sh.events
    assert _clean_counters(m_ref) == _clean_counters(m_sh)


def test_sharded_sequential_scoring_matches_serial(
    synthetic, fleet_streams
):
    ref, feeds_r, j_ref, _ = _build(
        FleetScheduler, synthetic, fleet_streams, scoring="sequential"
    )
    r_ref = ref.run(feeds_r)
    sharded, feeds_s, j_sh, _ = _build(
        ShardedFleetScheduler, synthetic, fleet_streams,
        scoring="sequential", shards=2, transport="inline",
    )
    r_sh = sharded.run(feeds_s)
    _assert_identical(r_ref, r_sh, fleet_streams)
    assert j_ref.events == j_sh.events


def test_more_shards_than_chips_degrades_to_chip_count(
    synthetic, fleet_streams
):
    # Never more shards than chips; the clamp keeps empty workers
    # from being forked at all.
    sharded, feeds, _, metrics = _build(
        ShardedFleetScheduler, synthetic, fleet_streams,
        shards=64, transport="inline",
    )
    assert sharded.effective_shards() == len(fleet_streams)
    result = sharded.run(feeds)
    assert result.complete
    assert metrics.snapshot()["gauges"]["fleet.shards"] == len(fleet_streams)


# -- checkpoint interconversion across topologies ----------------------

def test_checkpoint_sharded_resumes_single_process_sequential(
    synthetic, fleet_streams
):
    """A 4-shard batched checkpoint resumes serial sequential."""
    ev, _ = synthetic
    ref, feeds_r, _, _ = _build(FleetScheduler, synthetic, fleet_streams)
    r_ref = ref.run(feeds_r)

    part, feeds_p, _, _ = _build(
        ShardedFleetScheduler, synthetic, fleet_streams,
        shards=4, transport="socket",
    )
    r_part = part.run(feeds_p, max_ticks=5)
    assert not r_part.complete
    state = json.loads(json.dumps(part.state_dict()))

    j_serial, j_sharded = EventJournal(), EventJournal()
    serial = FleetScheduler.from_state(
        state, ev, journal=j_serial, metrics=MetricsRegistry()
    )
    serial.scoring = "sequential"
    r_serial = serial.run(
        [TraceFeed(c, fleet_streams[c], batch=8, faults=FAULTS, seed=11)
         for c in fleet_streams]
    )
    assert r_serial.complete
    _assert_identical(r_ref, r_serial, fleet_streams)

    # The same checkpoint resumed sharded produces the identical
    # remaining journal tail, event for event.
    resharded = ShardedFleetScheduler.from_state(
        state, ev, journal=j_sharded, metrics=MetricsRegistry(),
        shards=2, transport="inline",
    )
    r_resharded = resharded.run(
        [TraceFeed(c, fleet_streams[c], batch=8, faults=FAULTS, seed=11)
         for c in fleet_streams]
    )
    assert r_resharded.complete
    _assert_identical(r_serial, r_resharded, fleet_streams)
    assert j_serial.events == j_sharded.events


def test_checkpoint_serial_resumes_sharded(synthetic, fleet_streams):
    """The reverse direction: serial checkpoint, 4-shard resume."""
    ev, _ = synthetic
    ref, feeds_r, _, _ = _build(FleetScheduler, synthetic, fleet_streams)
    r_ref = ref.run(feeds_r)

    part, feeds_p, _, _ = _build(
        FleetScheduler, synthetic, fleet_streams, scoring="sequential"
    )
    r_part = part.run(feeds_p, max_ticks=5)
    assert not r_part.complete
    state = json.loads(json.dumps(part.state_dict()))

    resumed = ShardedFleetScheduler.from_state(
        state, ev, journal=EventJournal(), metrics=MetricsRegistry(),
        shards=4, transport="inline",
    )
    r_resumed = resumed.run(
        [TraceFeed(c, fleet_streams[c], batch=8, faults=FAULTS, seed=11)
         for c in fleet_streams]
    )
    assert r_resumed.complete
    _assert_identical(r_ref, r_resumed, fleet_streams)


def test_sharded_checkpoint_event_matches_serial(
    synthetic, fleet_streams
):
    kw = dict(faults=None)
    ref, feeds_r, j_ref, _ = _build(
        FleetScheduler, synthetic, fleet_streams, **kw
    )
    ref.run(feeds_r, max_ticks=4)
    sharded, feeds_s, j_sh, _ = _build(
        ShardedFleetScheduler, synthetic, fleet_streams,
        shards=2, transport="inline", **kw,
    )
    sharded.run(feeds_s, max_ticks=4)
    assert j_ref.events == j_sh.events
    assert j_sh.events[-1]["kind"] == "checkpoint"


# -- knob resolution ---------------------------------------------------

def test_shard_knob_resolution(synthetic):
    ev, _ = synthetic
    session = MonitorSession("golden", ev, window=16)
    with pytest.raises(ExperimentError, match=">= 1"):
        ShardedFleetScheduler([session], shards=0)
    with pytest.raises(ExperimentError, match="transport"):
        ShardedFleetScheduler([session], transport="pigeon")
    with use_config(ReproConfig(fleet_shards=4, fleet_transport="inline")):
        sched = ShardedFleetScheduler([session, MonitorSession(
            "t1", ev, window=16)])
        assert sched.effective_shards() == 2  # clamped to chips
        assert sched.effective_transport() == "inline"
        assert ShardedFleetScheduler(
            [session], shards=1
        ).effective_shards() == 1
    # auto transport: sockets only when actually sharded.
    assert ShardedFleetScheduler(
        [session], shards=1, transport="auto"
    ).effective_transport() == "inline"
    assert ShardedFleetScheduler(
        [session, MonitorSession("t1", ev, window=16)],
        shards=2, transport="auto",
    ).effective_transport() == "socket"


# -- failure surfacing -------------------------------------------------

def test_shard_engine_latches_errors_until_result(synthetic):
    ev, _ = synthetic
    engine = ShardEngine(0)
    assert engine.handle(INIT, {
        "shard": 0, "scoring": "sequential",
        "evaluator": evaluator_to_wire(ev), "chips": [],
    }) is None
    # An unknown chip id fails the BATCH frame; the failure must latch
    # into an ERROR response at RESULT, not kill the handler.
    assert engine.handle(BATCH, {
        "tick": 0, "chip": "nope", "batch": 0,
    }) is None
    kind, header, _ = engine.handle(RESULT, {})
    assert kind == ERROR
    assert "nope" in header["error"]


def test_socket_run_persists_stream_stores_where_directed(
    synthetic, fleet_streams, tmp_path
):
    sharded, feeds, _, _ = _build(
        ShardedFleetScheduler, synthetic, fleet_streams,
        shards=2, transport="socket",
    )
    result = sharded.run(feeds, store_dir=tmp_path / "stores")
    assert result.complete
    names = {p.name for p in (tmp_path / "stores").iterdir()}
    for chip in fleet_streams:
        assert any(chip in name for name in names), (chip, names)
