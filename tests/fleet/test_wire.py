"""Tests for the sharded fleet's framed wire protocol."""

import pytest

from repro.errors import ExperimentError
from repro.fleet.wire import (
    BATCH,
    ERROR,
    FrameDecoder,
    HELLO,
    INIT,
    KINDS,
    MAX_FRAME_BYTES,
    SHUTDOWN,
    decode_frame,
    encode_frame,
)


def test_round_trip_every_kind():
    header = {"tick": 3, "chip": "golden", "nested": {"a": [1, 2.5]}}
    for kind in KINDS:
        data = encode_frame(kind, header, b"\x00\x01payload")
        k, h, p = decode_frame(data)
        assert (k, h, p) == (kind, header, b"\x00\x01payload")


def test_empty_payload_and_header():
    k, h, p = decode_frame(encode_frame(SHUTDOWN, {}))
    assert (k, h, p) == (SHUTDOWN, {}, b"")


def test_header_floats_survive_exactly():
    # The shard hand-off sends detector state as JSON floats; shortest
    # round-trip encoding must return the identical float64.
    value = 0.1234567890123456789
    _, h, _ = decode_frame(encode_frame(BATCH, {"x": value}))
    assert h["x"] == value


def test_unknown_kind_rejected_both_ways():
    with pytest.raises(ExperimentError, match="unknown frame kind"):
        encode_frame(99, {})
    data = bytearray(encode_frame(HELLO, {}))
    data[4] = 99  # the u8 kind right after the length prefix
    with pytest.raises(ExperimentError, match="unknown frame kind"):
        decode_frame(bytes(data))


def test_truncated_frames_rejected():
    data = encode_frame(INIT, {"shard": 0})
    with pytest.raises(ExperimentError, match="truncated frame"):
        decode_frame(data[:2])
    with pytest.raises(ExperimentError, match="does not match"):
        decode_frame(data[:-1])
    with pytest.raises(ExperimentError, match="does not match"):
        decode_frame(data + b"x")


def test_header_overrun_rejected():
    # A header_len pointing past the body must not slice garbage.
    data = bytearray(encode_frame(HELLO, {}))
    data[5:9] = (9999).to_bytes(4, "big")
    with pytest.raises(ExperimentError, match="overruns"):
        decode_frame(bytes(data))


def test_non_object_header_rejected():
    import json
    import struct

    raw = json.dumps([1, 2]).encode()
    body = struct.pack(">BI", HELLO, len(raw)) + raw
    data = struct.pack(">I", len(body)) + body
    with pytest.raises(ExperimentError, match="JSON object"):
        decode_frame(data)


def test_oversize_frame_rejected_before_allocation():
    data = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"\x00" * 16
    with pytest.raises(ExperimentError, match="frame limit"):
        decode_frame(data)
    with pytest.raises(ExperimentError, match="frame limit"):
        FrameDecoder().feed(data)
    with pytest.raises(ExperimentError, match="frame limit"):
        encode_frame(HELLO, {}, b"\x00" * MAX_FRAME_BYTES)


def test_incremental_decoder_one_byte_at_a_time():
    frames = [
        encode_frame(HELLO, {"shard": 1}),
        encode_frame(BATCH, {"tick": 0, "chip": "a", "batch": 2}, b"pp"),
        encode_frame(ERROR, {"error": "boom"}),
    ]
    stream = b"".join(frames)
    decoder = FrameDecoder()
    out = []
    for i in range(len(stream)):
        out.extend(decoder.feed(stream[i:i + 1]))
    assert [k for k, _, _ in out] == [HELLO, BATCH, ERROR]
    assert out[1][1]["chip"] == "a" and out[1][2] == b"pp"
    assert decoder.pending_bytes == 0


def test_incremental_decoder_coalesced_and_partial():
    a = encode_frame(HELLO, {"shard": 0})
    b = encode_frame(SHUTDOWN, {})
    decoder = FrameDecoder()
    # Two frames plus the start of a third in one chunk.
    got = decoder.feed(a + b + a[:3])
    assert [k for k, _, _ in got] == [HELLO, SHUTDOWN]
    assert decoder.pending_bytes == 3
    got = decoder.feed(a[3:])
    assert [k for k, _, _ in got] == [HELLO]
    assert decoder.pending_bytes == 0
