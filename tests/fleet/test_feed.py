"""Tests for the per-chip trace feeds and fault injection."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.fleet import FaultSpec, NO_FAULTS, TraceFeed

FAULTY = FaultSpec(drop=0.1, duplicate=0.1, reorder=0.15)


def _traces(n=60, length=32):
    # Row i filled with i, so a row identifies its source window.
    return np.tile(np.arange(n, dtype=np.float64)[:, None], (1, length))


def test_clean_feed_is_identity_replay():
    traces = _traces()
    feed = TraceFeed("c", traces, batch=8)
    assert feed.delivered_seqs == tuple(range(60))
    assert feed.dropped_seqs == ()
    assert feed.duplicated == 0 and feed.reordered == 0
    assert feed.n_batches == 8  # 7 full + 1 short batch
    rows = np.concatenate([b.traces for b in feed])
    np.testing.assert_array_equal(rows, traces)


def test_batch_structure_and_random_access():
    feed = TraceFeed("c", _traces(), batch=8, faults=FAULTY, seed=3)
    batches = list(feed)
    assert len(batches) == feed.n_batches
    assert all(len(b) == 8 for b in batches[:-1])
    for i, batch in enumerate(batches):
        again = feed.batch_at(i)
        assert again.chip_id == "c"
        assert again.seqs == batch.seqs
        np.testing.assert_array_equal(again.traces, batch.traces)
        # Each delivered row really is the claimed source window.
        np.testing.assert_array_equal(
            batch.traces[:, 0], np.asarray(batch.seqs, dtype=np.float64)
        )


def test_fault_schedule_is_deterministic_per_chip_and_seed():
    a1 = TraceFeed("a", _traces(), faults=FAULTY, seed=7)
    a2 = TraceFeed("a", _traces(), faults=FAULTY, seed=7)
    b = TraceFeed("b", _traces(), faults=FAULTY, seed=7)
    a_reseed = TraceFeed("a", _traces(), faults=FAULTY, seed=8)
    assert a1.delivered_seqs == a2.delivered_seqs
    assert a1.dropped_seqs == a2.dropped_seqs
    assert a1.delivered_seqs != b.delivered_seqs
    assert a1.delivered_seqs != a_reseed.delivered_seqs


def test_fault_accounting_is_exact():
    traces = _traces(n=400)
    feed = TraceFeed("c", traces, faults=FAULTY, seed=1)
    delivered = feed.delivered_seqs
    # Dropped windows never appear; everything else appears >= once.
    assert set(feed.dropped_seqs).isdisjoint(delivered)
    assert set(delivered) | set(feed.dropped_seqs) == set(range(400))
    # Duplicates are exactly the extra deliveries.
    assert feed.duplicated == len(delivered) - len(set(delivered))
    assert feed.n_delivered == len(delivered)
    assert feed.dropped_seqs and feed.duplicated and feed.reordered
    # delivered_traces is the exact multiset, delivery order.
    np.testing.assert_array_equal(
        feed.delivered_traces()[:, 0],
        np.asarray(delivered, dtype=np.float64),
    )


def test_drop_wins_over_duplicate():
    # With drop certain-ish and duplicate certain-ish, no dropped
    # window may sneak back in as a duplicate.
    feed = TraceFeed(
        "c",
        _traces(n=200),
        faults=FaultSpec(drop=0.5, duplicate=0.9),
        seed=2,
    )
    assert set(feed.dropped_seqs).isdisjoint(feed.delivered_seqs)


def test_reorder_swaps_adjacent_delivered_windows():
    feed = TraceFeed(
        "c", _traces(), faults=FaultSpec(reorder=0.5), seed=4
    )
    assert feed.reordered > 0
    assert feed.dropped_seqs == () and feed.duplicated == 0
    # Reordering permutes, never loses: same multiset as the source.
    assert sorted(feed.delivered_seqs) == list(range(60))


def test_fault_spec_validation():
    with pytest.raises(ExperimentError):
        FaultSpec(drop=1.0)
    with pytest.raises(ExperimentError):
        FaultSpec(duplicate=-0.1)
    assert not NO_FAULTS.any
    assert FaultSpec(reorder=0.1).any


def test_feed_validation():
    with pytest.raises(ExperimentError):
        TraceFeed("c", _traces(), batch=0)
    with pytest.raises(ExperimentError):
        TraceFeed("c", np.zeros((0, 8)))
    feed = TraceFeed("c", _traces(), batch=8)
    with pytest.raises(ExperimentError):
        feed.batch_at(feed.n_batches)
