"""Streaming ingest must be bit-identical to replay.

``--ingest=stream`` swaps prematerialised campaign matrices for a
:class:`~repro.fleet.producer.StreamingTraceProducer` generating
chunks on a background thread while the scheduler scores.  The feed's
delivery schedule is a pure function of ``(n_windows, faults, seed,
chip_id)`` — no trace bytes involved — so the streamed run must
reproduce the replay run exactly: same alarms, same accounting
counters, same journal events, at one shard and at many.

Identity scope: journal events, per-chip reports, and every counter
except the ``shard.*`` / ``stage.*`` infrastructure ones (excluded by
the sharded tests already) plus the ``producer.*`` instruments and the
``fleet.ttfv.seconds`` gauge, which only exist on the streamed side
and measure wall clock, not campaign content.
"""

import json

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.fleet import (
    ArrayChunkSource,
    ChunkPlan,
    EventJournal,
    FaultSpec,
    FleetScheduler,
    MetricsRegistry,
    MonitorSession,
    ShardedFleetScheduler,
    StreamingTraceProducer,
    TraceFeed,
    chunk_role,
)
from repro.fleet.campaign import StreamingOneShot

FAULTS = FaultSpec(drop=0.05, duplicate=0.05, reorder=0.1)

VARIANTS = (
    ("golden", 0.0),
    ("t1", 0.5),
    ("t2", 0.35),
    ("t3", 0.25),
    ("t4", 0.02),
    ("a2", 0.6),
)


@pytest.fixture()
def fleet_streams(synthetic, fleet_rng):
    """Six labelled streams over the shared synthetic golden base."""
    _, base = synthetic
    shape = np.cos(np.linspace(0, 9, base.size))
    return {
        name: (base + amp * shape)[None, :]
        + 0.05 * fleet_rng.normal(size=(96, base.size))
        for name, amp in VARIANTS
    }


def _producer(streams, *, chunk=16, metrics=None, start_chunk=0,
              on_chunk=None, prefetch=2):
    n_windows = next(iter(streams.values())).shape[0]
    return StreamingTraceProducer(
        ArrayChunkSource(streams),
        list(streams),
        n_windows=n_windows,
        chunk=chunk,
        prefetch=prefetch,
        metrics=metrics,
        start_chunk=start_chunk,
        on_chunk=on_chunk,
    )


def _build(cls, synthetic, streams, *, ingest="replay", chunk=16,
           policy="block", queue_depth=4, consume_every=1,
           faults=FAULTS, scoring="batched", start_chunk=0, **kw):
    """Scheduler + feeds; feeds pull from a live producer when asked."""
    ev, _ = synthetic
    metrics = MetricsRegistry()
    journal = EventJournal()
    sessions = [
        MonitorSession(c, ev, window=16, confirm=2,
                       metrics=metrics, journal=journal)
        for c in streams
    ]
    producer = None
    if ingest == "stream":
        producer = _producer(
            streams, chunk=chunk, metrics=metrics,
            start_chunk=start_chunk,
        ).start()
        sources = {c: producer.source_for(c) for c in streams}
    else:
        sources = dict(streams)
    feeds = [
        TraceFeed(c, sources[c], batch=8, faults=faults, seed=11)
        for c in streams
    ]
    if cls is FleetScheduler:
        kw.setdefault("workers", 1)
    scheduler = cls(
        sessions, queue_depth=queue_depth, policy=policy,
        consume_every=consume_every, scoring=scoring,
        journal=journal, metrics=metrics, **kw,
    )
    return scheduler, feeds, journal, metrics, producer


def _clean_counters(metrics):
    return {
        k: v for k, v in metrics.snapshot()["counters"].items()
        if not k.startswith(("shard.", "stage.", "producer."))
    }


def _assert_identical(r_a, r_b, chips):
    for chip in chips:
        a, b = r_a.reports[chip], r_b.reports[chip]
        assert a.alarms == b.alarms, chip
        assert a.windows_ingested == b.windows_ingested, chip
        assert a.gaps == b.gaps and a.out_of_order == b.out_of_order, chip
        assert a.queue_dropped_windows == b.queue_dropped_windows, chip


# -- the chunk plan ----------------------------------------------------

def test_chunk_plan_bounds_and_lookup():
    plan = ChunkPlan(n_windows=100, chunk=32)
    assert plan.n_chunks == 4
    assert plan.bounds(0) == (0, 32)
    assert plan.bounds(3) == (96, 100)  # short tail chunk
    assert plan.chunk_of(0) == 0
    assert plan.chunk_of(95) == 2
    assert plan.chunk_of(99) == 3
    # Clamped at both ends: sequences past the stream (duplicates of
    # the tail) and negatives never index out of range.
    assert plan.chunk_of(10_000) == 3
    assert plan.chunk_of(-1) == 0
    with pytest.raises(ExperimentError, match="out of range"):
        plan.bounds(4)
    with pytest.raises(ExperimentError, match=">= 1"):
        ChunkPlan(n_windows=0, chunk=8)
    with pytest.raises(ExperimentError, match=">= 1"):
        ChunkPlan(n_windows=8, chunk=0)


def test_chunk_role_keeps_legacy_name_for_single_chunk_plans():
    # A plan whose one chunk covers the campaign must reproduce the
    # pre-streaming RNG role exactly — old cached campaigns stay valid.
    whole = ChunkPlan(n_windows=64, chunk=64)
    assert chunk_role("fleet/ed/golden", whole, 0) == "fleet/ed/golden"
    split = ChunkPlan(n_windows=64, chunk=16)
    assert chunk_role("fleet/ed/golden", split, 2) == \
        "fleet/ed/golden/chunk2"


def test_array_chunk_source_validation():
    with pytest.raises(ExperimentError, match="at least one chip"):
        ArrayChunkSource({})
    with pytest.raises(ExperimentError, match="window count"):
        ArrayChunkSource({
            "a": np.zeros((4, 8)), "b": np.zeros((5, 8)),
        })


# -- the producer ------------------------------------------------------

def test_producer_serves_exact_rows_and_read_only_views(fleet_rng):
    streams = {"a": fleet_rng.normal(size=(40, 12)),
               "b": fleet_rng.normal(size=(40, 12))}
    with _producer(streams, chunk=16) as producer:
        # A contiguous in-chunk request comes back as a read-only view.
        view = producer.rows("a", np.arange(4, 9))
        assert not view.flags.writeable
        assert np.array_equal(view, streams["a"][4:9])
        # A chunk-straddling request is gathered across chunks.
        seqs = np.array([14, 15, 16, 17, 33])
        got = producer.rows("b", seqs)
        assert np.array_equal(got, streams["b"][seqs])
        # Whole-fleet chunk pull (the sharded hand-off).
        data = producer.chunk(2)
        assert set(data) == {"a", "b"}
        assert np.array_equal(data["a"], streams["a"][32:40])


def test_producer_frees_passed_chunks_and_regenerates_on_demand(
    fleet_rng
):
    streams = {"a": fleet_rng.normal(size=(48, 8)),
               "b": fleet_rng.normal(size=(48, 8))}
    with _producer(streams, chunk=16, prefetch=1) as producer:
        producer.join()
        assert sorted(producer._chunks) == [0, 1, 2]
        # One chip moving past a chunk is not enough to free it...
        producer.advance("a", 16)
        assert 0 in producer._chunks
        # ...the *fleet minimum* watermark is.
        producer.advance("b", 20)
        assert 0 not in producer._chunks
        producer.release_through(48)
        assert not producer._chunks
        # Requests below a freed chunk (the post-run one-shot path)
        # regenerate it on demand — chunks are pure functions of
        # (source, index), so the bytes are identical.
        again = producer.rows("a", np.arange(0, 16))
        assert np.array_equal(again, streams["a"][:16])


def test_producer_demand_runs_past_the_prefetch_window(fleet_rng):
    # A consumer blocked on a chunk beyond watermark + prefetch
    # (reordered/duplicated deliveries can reference ahead) must raise
    # demand instead of deadlocking on the look-ahead gate.
    streams = {"a": fleet_rng.normal(size=(96, 8))}
    with _producer(streams, chunk=8, prefetch=1) as producer:
        rows = producer.rows("a", np.array([88]))  # last chunk
        assert np.array_equal(rows, streams["a"][88:89])


def test_producer_surfaces_generation_failures():
    class Exploding:
        def generate(self, index, lo, hi):
            if index >= 1:
                raise RuntimeError("acquisition backend fell over")
            return {"a": np.zeros((8, 4))}

    producer = StreamingTraceProducer(
        Exploding(), ["a"], n_windows=32, chunk=8
    ).start()
    try:
        with pytest.raises(ExperimentError, match="producer failed"):
            producer.rows("a", np.array([20]))
    finally:
        producer.close()


def test_producer_requires_start_and_validates_arguments(fleet_rng):
    streams = {"a": fleet_rng.normal(size=(32, 8))}
    producer = _producer(streams, chunk=8)
    with pytest.raises(ExperimentError, match="not started"):
        producer.rows("a", np.array([0]))
    with pytest.raises(ExperimentError, match="unknown chip"):
        producer.source_for("nope")
    with pytest.raises(ExperimentError, match="prefetch"):
        _producer(streams, chunk=8, prefetch=0)
    with pytest.raises(ExperimentError, match="start chunk"):
        _producer(streams, chunk=8, start_chunk=4)


def test_producer_metrics_and_cursor(fleet_rng):
    metrics = MetricsRegistry()
    streams = {"a": fleet_rng.normal(size=(40, 8))}
    with _producer(streams, chunk=16, metrics=metrics) as producer:
        producer.join()
        counters = metrics.snapshot()["counters"]
        assert counters["producer.chunks"] == 3
        assert counters["producer.windows"] == 40
        # Nothing consumed yet: the resume cursor still points at the
        # first chunk.
        assert producer.state_dict() == {
            "chunk": 16, "n_windows": 40, "next_chunk": 0,
        }
        producer.release_through(16)
        assert producer.state_dict()["next_chunk"] == 1


def test_on_chunk_fires_once_per_chunk_in_order(fleet_rng):
    streams = {"a": fleet_rng.normal(size=(40, 8))}
    seen = []
    with _producer(
        streams, chunk=16,
        on_chunk=lambda i, lo, hi, data: seen.append((i, lo, hi)),
    ) as producer:
        producer.join()
        producer.release_through(40)
        # Regeneration (a gather below the freed watermark) must NOT
        # re-fire the hook — the accumulator would double-count.
        producer.rows("a", np.arange(0, 16))
        producer.join()
    assert seen == [(0, 0, 16), (1, 16, 32), (2, 32, 40)]


# -- stream vs replay bit-identity -------------------------------------

def test_stream_matches_replay_serial_with_link_faults(
    synthetic, fleet_streams
):
    ref, feeds_r, j_ref, m_ref, _ = _build(
        FleetScheduler, synthetic, fleet_streams, ingest="replay"
    )
    r_ref = ref.run(feeds_r)
    sched, feeds_s, j_st, m_st, producer = _build(
        FleetScheduler, synthetic, fleet_streams, ingest="stream"
    )
    try:
        r_st = sched.run(feeds_s)
    finally:
        producer.close()
    _assert_identical(r_ref, r_st, fleet_streams)
    assert any(e["kind"] == "alarm" for e in j_st.events)
    assert j_ref.events == j_st.events
    assert _clean_counters(m_ref) == _clean_counters(m_st)
    # The streamed side reports its pipeline; the replay side has no
    # producer at all.
    assert m_st.snapshot()["counters"]["producer.chunks"] == 6
    assert "producer.chunks" not in m_ref.snapshot()["counters"]
    # First alarm fired mid-stream: TTFV exists and is positive.
    assert m_st.snapshot()["gauges"]["fleet.ttfv.seconds"] > 0


def test_stream_matches_replay_sequential_scoring(
    synthetic, fleet_streams
):
    ref, feeds_r, j_ref, _, _ = _build(
        FleetScheduler, synthetic, fleet_streams,
        ingest="replay", scoring="sequential",
    )
    r_ref = ref.run(feeds_r)
    sched, feeds_s, j_st, _, producer = _build(
        FleetScheduler, synthetic, fleet_streams,
        ingest="stream", scoring="sequential",
    )
    try:
        r_st = sched.run(feeds_s)
    finally:
        producer.close()
    _assert_identical(r_ref, r_st, fleet_streams)
    assert j_ref.events == j_st.events


def test_all_clear_stream_creates_no_ttfv_instrument(synthetic):
    # Snapshot parity: a run that never alarms must not grow a zeroed
    # TTFV gauge the replay side lacks.
    _, base = synthetic
    rng = np.random.default_rng(3)
    streams = {
        "golden": base[None, :]
        + 0.05 * rng.normal(size=(48, base.size))
    }
    sched, feeds, _, metrics, producer = _build(
        FleetScheduler, synthetic, streams, ingest="stream", faults=None
    )
    try:
        result = sched.run(feeds)
    finally:
        producer.close()
    assert not result.reports["golden"].alarms
    assert "fleet.ttfv.seconds" not in metrics.snapshot()["gauges"]


@pytest.mark.parametrize("transport", ["inline", "socket"])
def test_sharded_stream_matches_serial_replay(
    synthetic, fleet_streams, transport
):
    ref, feeds_r, j_ref, m_ref, _ = _build(
        FleetScheduler, synthetic, fleet_streams, ingest="replay"
    )
    r_ref = ref.run(feeds_r)
    sharded, feeds_s, j_sh, m_sh, producer = _build(
        ShardedFleetScheduler, synthetic, fleet_streams,
        ingest="stream", shards=2, transport=transport,
    )
    try:
        r_sh = sharded.run(feeds_s)
    finally:
        producer.close()
    _assert_identical(r_ref, r_sh, fleet_streams)
    assert j_ref.events == j_sh.events
    assert _clean_counters(m_ref) == _clean_counters(m_sh)
    # The fleet alarms, so the earliest shard TTFV surfaces merged.
    assert m_sh.snapshot()["gauges"]["fleet.ttfv.seconds"] > 0


def test_sharded_stream_rejects_mixed_sources(synthetic, fleet_streams):
    sharded, feeds, _, _, producer = _build(
        ShardedFleetScheduler, synthetic, fleet_streams,
        ingest="stream", shards=2, transport="inline",
    )
    try:
        chip = feeds[0].chip_id
        feeds[0] = TraceFeed(
            chip, fleet_streams[chip], batch=8, faults=FAULTS, seed=11
        )
        with pytest.raises(ExperimentError, match="one producer"):
            sharded.run(feeds)
    finally:
        producer.close()


# -- mid-stream checkpoint / resume ------------------------------------

def test_stream_checkpoint_resumes_mid_stream(synthetic, fleet_streams):
    """Producer cursor round-trips; the resumed tail is identical."""
    ev, _ = synthetic
    ref, feeds_r, _, _, _ = _build(
        FleetScheduler, synthetic, fleet_streams, ingest="replay"
    )
    r_ref = ref.run(feeds_r)

    part, feeds_p, _, _, producer = _build(
        FleetScheduler, synthetic, fleet_streams, ingest="stream"
    )
    try:
        r_part = part.run(feeds_p, max_ticks=5)
        assert not r_part.complete
        state = json.loads(json.dumps(part.state_dict()))
    finally:
        producer.close()
    cursor = state["producer"]
    assert cursor["chunk"] == 16
    assert 0 < cursor["next_chunk"] < ChunkPlan(96, 16).n_chunks

    resumed_producer = _producer(
        fleet_streams, chunk=cursor["chunk"],
        start_chunk=cursor["next_chunk"],
    ).start()
    try:
        resumed = FleetScheduler.from_state(
            state, ev, journal=EventJournal(), metrics=MetricsRegistry()
        )
        r_resumed = resumed.run([
            TraceFeed(
                c, resumed_producer.source_for(c),
                batch=8, faults=FAULTS, seed=11,
            )
            for c in fleet_streams
        ])
    finally:
        resumed_producer.close()
    assert r_resumed.complete
    _assert_identical(r_ref, r_resumed, fleet_streams)


def test_sharded_stream_checkpoint_resumes_serial_stream(
    synthetic, fleet_streams
):
    """A sharded streaming checkpoint's cursor comes from the feeds.

    The sharded front-end advances producer watermarks as it *ships*
    chunks (they land on disk for the shards), so its resume cursor is
    derived from the still-pending batches — it must point at or below
    the lowest window any of them references, never past it.
    """
    ev, _ = synthetic
    ref, feeds_r, _, _, _ = _build(
        FleetScheduler, synthetic, fleet_streams, ingest="replay"
    )
    r_ref = ref.run(feeds_r)

    part, feeds_p, _, _, producer = _build(
        ShardedFleetScheduler, synthetic, fleet_streams,
        ingest="stream", shards=2, transport="inline",
    )
    try:
        r_part = part.run(feeds_p, max_ticks=5)
        assert not r_part.complete
        state = json.loads(json.dumps(part.state_dict()))
    finally:
        producer.close()
    plan = ChunkPlan(96, 16)
    lowest_pending = min(
        TraceFeed(
            c, fleet_streams[c], batch=8, faults=FAULTS, seed=11
        ).low_watermark(
            state["pending"][c][0]
            if state["pending"][c] else state["produced"][c]
        )
        for c in fleet_streams
    )
    assert state["producer"]["next_chunk"] == plan.chunk_of(
        lowest_pending
    )

    resumed_producer = _producer(
        fleet_streams, chunk=16,
        start_chunk=state["producer"]["next_chunk"],
    ).start()
    try:
        resumed = FleetScheduler.from_state(
            state, ev, journal=EventJournal(), metrics=MetricsRegistry()
        )
        r_resumed = resumed.run([
            TraceFeed(
                c, resumed_producer.source_for(c),
                batch=8, faults=FAULTS, seed=11,
            )
            for c in fleet_streams
        ])
    finally:
        resumed_producer.close()
    assert r_resumed.complete
    _assert_identical(r_ref, r_resumed, fleet_streams)


# -- the streaming one-shot accumulator --------------------------------

def test_streaming_oneshot_matches_whole_matrix_evaluation(
    synthetic, fleet_streams
):
    ev, _ = synthetic
    detector = ev.detector
    feeds = {
        c: TraceFeed(c, fleet_streams[c], batch=8, faults=FAULTS,
                     seed=11)
        for c in fleet_streams
    }
    acc = StreamingOneShot(detector)
    acc.set_weights({
        c: np.bincount(
            np.asarray(f.delivered_seqs, dtype=np.intp), minlength=96
        )
        for c, f in feeds.items()
    })
    producer = _producer(fleet_streams, chunk=16, on_chunk=acc).start()
    try:
        producer.join()
    finally:
        producer.close()
    for chip_id, feed in feeds.items():
        expect = detector.evaluate(feed.delivered_traces())
        got = acc.report(chip_id)
        # Integer delivery counts divided identically: exact.
        assert got.exceed_fraction == expect.exceed_fraction, chip_id
        # Float accumulation order differs (chunked vs whole-matrix):
        # statistics agree to ~1 ulp, verdict booleans exactly.
        assert got.mean_distance == pytest.approx(
            expect.mean_distance, rel=1e-12
        )
        assert got.separation == pytest.approx(
            expect.separation, rel=1e-12
        )
        assert got.detected == expect.detected, chip_id


def test_streaming_oneshot_rejects_unseen_chips_and_unfitted(synthetic):
    ev, _ = synthetic
    acc = StreamingOneShot(ev.detector)
    with pytest.raises(ExperimentError, match="no windows"):
        acc.report("ghost")
    from repro.analysis.euclidean import EuclideanDetector
    with pytest.raises(ExperimentError, match="fitted"):
        StreamingOneShot(EuclideanDetector())
