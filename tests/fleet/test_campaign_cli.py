"""Unit tests for the fleet campaign config and the CLI plumbing.

The end-to-end campaign itself (trace generation through verdicts) is
exercised by CI's ``fleet-smoke`` job via the console entry point; the
tests here cover the pure logic around it.
"""

import pytest

from repro.errors import ExperimentError
from repro.fleet import (
    DEFAULT_FLEET,
    ChipVerdict,
    FleetCampaignResult,
    FleetConfig,
    run_fleet_campaign,
)
from repro.fleet.cli import _config_from, _parser
from repro.framework.report import Verdict


def test_default_fleet_is_the_paper_lineup():
    ids = [chip_id for chip_id, _ in DEFAULT_FLEET]
    assert ids == [
        "golden", "trojan1", "trojan2", "trojan3", "trojan4", "a2"
    ]
    enables = dict(DEFAULT_FLEET)
    assert enables["golden"] == ()
    assert enables["a2"] == ("a2",)


def test_smoke_config_shrinks_and_accepts_overrides():
    smoke = FleetConfig.smoke()
    full = FleetConfig()
    assert smoke.n_golden < full.n_golden
    assert smoke.n_windows < full.n_windows
    assert smoke.monitor_window < full.monitor_window
    assert smoke.threshold is None and full.threshold == "floor"
    override = FleetConfig.smoke(seed=9, policy="drop_oldest")
    assert override.seed == 9 and override.policy == "drop_oldest"
    assert override.n_golden == smoke.n_golden


def test_duplicate_fleet_ids_rejected():
    with pytest.raises(ExperimentError):
        run_fleet_campaign(fleet=(("x", ()), ("x", ("trojan1",))))


def test_cli_maps_args_onto_config(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
    args = _parser().parse_args(
        [
            "--seed", "3", "--windows", "48", "--monitor-window", "24",
            "--policy", "drop_oldest", "--drop", "0.1",
            "--journal", "/tmp/j.jsonl",
        ]
    )
    config = _config_from(args)
    assert config.seed == 3
    assert config.n_windows == 48
    assert config.monitor_window == 24
    assert config.policy == "drop_oldest"
    assert config.faults.drop == 0.1
    assert config.journal_path == "/tmp/j.jsonl"
    # Unset args keep the full-size defaults.
    assert config.n_golden == FleetConfig().n_golden


def test_cli_smoke_flag_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
    smoke_by_flag = _config_from(_parser().parse_args(["--smoke"]))
    assert smoke_by_flag.n_golden == FleetConfig.smoke().n_golden
    monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
    smoke_by_env = _config_from(_parser().parse_args([]))
    assert smoke_by_env.n_golden == FleetConfig.smoke().n_golden
    # Explicit args still override the smoke preset.
    custom = _config_from(_parser().parse_args(["--windows", "32"]))
    assert custom.n_windows == 32


def _verdict(chip_id, verdict, oneshot):
    return ChipVerdict(
        chip_id=chip_id,
        verdict=verdict,
        time_alarm=verdict in (
            Verdict.SUSPECT_TIME_DOMAIN, Verdict.SUSPECT_BOTH
        ),
        spectral_alarm=verdict in (
            Verdict.SUSPECT_SPECTRAL, Verdict.SUSPECT_BOTH
        ),
        first_alarm_window=None,
        alarm_latency=None,
        oneshot_verdict=oneshot,
        separation=0.1,
        separation_floor=0.2,
    )


def test_campaign_result_flagging_and_consistency():
    verdicts = {
        "golden": _verdict("golden", Verdict.TRUSTED, Verdict.TRUSTED),
        "trojan2": _verdict(
            "trojan2", Verdict.SUSPECT_BOTH, Verdict.SUSPECT_BOTH
        ),
    }
    result = FleetCampaignResult(
        config=FleetConfig(),
        fleet=None,
        verdicts=verdicts,
    )
    assert result.flagged == ("trojan2",)
    assert result.all_match_oneshot
    # Alarm-kind disagreement (time vs spectral) still *matches*: the
    # consistency gate compares alarm/no-alarm, not the alarm flavour.
    verdicts["trojan2"] = _verdict(
        "trojan2", Verdict.SUSPECT_BOTH, Verdict.SUSPECT_SPECTRAL
    )
    assert result.all_match_oneshot
    verdicts["trojan2"] = _verdict(
        "trojan2", Verdict.SUSPECT_BOTH, Verdict.TRUSTED
    )
    assert not result.all_match_oneshot
