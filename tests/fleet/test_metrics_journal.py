"""Tests for the fleet metrics registry and the JSONL event journal."""

import json
import threading

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.fleet import EventJournal, MetricsRegistry, format_snapshot


def test_counter_and_gauge():
    m = MetricsRegistry()
    c = m.counter("windows")
    assert c.inc() == 1
    assert c.inc(5) == 6
    assert m.counter("windows") is c  # lazy, by name
    with pytest.raises(ExperimentError):
        c.inc(-1)
    g = m.gauge("depth")
    g.set(3)
    g.max(1)
    assert g.value == 3
    g.max(9)
    assert g.value == 9


def test_histogram_percentiles_match_numpy():
    m = MetricsRegistry()
    h = m.histogram("lat")
    samples = [float(x) for x in range(1, 101)]
    for s in samples:
        h.observe(s)
    summary = h.summary()
    assert summary["count"] == 100
    assert summary["sum"] == pytest.approx(sum(samples))
    assert summary["max"] == 100.0
    for q in (50, 95, 99):
        assert summary[f"p{q}"] == pytest.approx(
            float(np.percentile(samples, q))
        )
    assert h.percentile(50) == summary["p50"]


def test_empty_histogram_summary_is_zeroed():
    summary = MetricsRegistry().histogram("lat").summary()
    assert summary == {
        "count": 0, "sum": 0.0, "mean": 0.0, "max": 0.0,
        "p50": 0.0, "p95": 0.0, "p99": 0.0,
    }


def test_timing_context_manager_lands_in_histogram():
    m = MetricsRegistry()
    with m.time("stage.x.seconds"):
        pass
    with m.time("stage.x.seconds"):
        pass
    summary = m.histogram("stage.x.seconds").summary()
    assert summary["count"] == 2
    assert summary["max"] >= 0.0


def test_snapshot_is_json_encodable_and_formats():
    m = MetricsRegistry()
    m.counter("a").inc(2)
    m.gauge("b").set(1.5)
    with m.time("c"):
        pass
    snap = m.snapshot()
    json.dumps(snap)  # must be plain data
    text = format_snapshot(snap)
    assert "a = 2" in text and "b = 1.5" in text and "p95" in text
    assert m.format() == text


def test_counter_is_thread_safe():
    m = MetricsRegistry()
    c = m.counter("n")

    def bump():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000


# ----------------------------------------------------------------------
def test_journal_record_order_and_tail():
    j = EventJournal()
    j.record("campaign", chips=["a"])
    j.record("alarm", chip="a", seq=3)
    j.record("drop", chip="a", seqs=[4, 5])
    assert len(j) == 3
    assert [e["kind"] for e in j.events] == ["campaign", "alarm", "drop"]
    assert j.tail(2) == j.events[1:]
    assert j.tail(99) == j.events
    assert j.tail(0) == []
    with pytest.raises(ExperimentError):
        j.tail(-1)
    with pytest.raises(ExperimentError):
        j.record("")


def test_journal_events_carry_no_timestamps():
    # Bit-identical resume comparisons rely on journals being pure
    # functions of the seeded run.
    j = EventJournal()
    event = j.record("alarm", chip="a", separation=1.0)
    assert set(event) == {"kind", "chip", "separation"}


def test_journal_flush_and_load_round_trip(tmp_path):
    path = tmp_path / "journal" / "events.jsonl"
    j = EventJournal(path)
    j.record("alarm", chip="a", separation=0.123456789012345678)
    j.record("drop", chip="b", seqs=[1, 2])
    assert j.flush() == path
    loaded = EventJournal.load(path)
    assert loaded == j.events
    # Re-flush after more events rewrites the whole file atomically.
    j.record("spectral", chip="a", detected=True)
    j.flush()
    assert EventJournal.load(path) == j.events
    # No temp files left behind by the atomic-rename convention.
    assert [p.name for p in path.parent.iterdir()] == ["events.jsonl"]


def test_in_memory_journal_flush_is_noop():
    j = EventJournal()
    j.record("alarm", chip="a")
    assert j.flush() is None
