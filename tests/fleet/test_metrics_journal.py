"""Tests for the fleet metrics registry and the JSONL event journal."""

import json
import threading

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.fleet import EventJournal, MetricsRegistry, format_snapshot


def test_counter_and_gauge():
    m = MetricsRegistry()
    c = m.counter("windows")
    assert c.inc() == 1
    assert c.inc(5) == 6
    assert m.counter("windows") is c  # lazy, by name
    with pytest.raises(ExperimentError):
        c.inc(-1)
    g = m.gauge("depth")
    g.set(3)
    g.max(1)
    assert g.value == 3
    g.max(9)
    assert g.value == 9


def test_histogram_percentiles_match_numpy():
    m = MetricsRegistry()
    h = m.histogram("lat")
    samples = [float(x) for x in range(1, 101)]
    for s in samples:
        h.observe(s)
    summary = h.summary()
    assert summary["count"] == 100
    assert summary["sum"] == pytest.approx(sum(samples))
    assert summary["max"] == 100.0
    for q in (50, 95, 99):
        assert summary[f"p{q}"] == pytest.approx(
            float(np.percentile(samples, q))
        )
    assert h.percentile(50) == summary["p50"]


def test_empty_histogram_summary_is_zeroed():
    summary = MetricsRegistry().histogram("lat").summary()
    assert summary == {
        "count": 0, "sum": 0.0, "mean": 0.0, "max": 0.0,
        "p50": 0.0, "p95": 0.0, "p99": 0.0,
    }


def test_timing_context_manager_lands_in_histogram():
    m = MetricsRegistry()
    with m.time("stage.x.seconds"):
        pass
    with m.time("stage.x.seconds"):
        pass
    summary = m.histogram("stage.x.seconds").summary()
    assert summary["count"] == 2
    assert summary["max"] >= 0.0


def test_snapshot_is_json_encodable_and_formats():
    m = MetricsRegistry()
    m.counter("a").inc(2)
    m.gauge("b").set(1.5)
    with m.time("c"):
        pass
    snap = m.snapshot()
    json.dumps(snap)  # must be plain data
    text = format_snapshot(snap)
    assert "a = 2" in text and "b = 1.5" in text and "p95" in text
    assert m.format() == text


def test_histogram_merge_matches_concatenated_reference():
    # The sharded fleet merges per-shard histograms back into one;
    # quantiles after the merge must be exact over the union of raw
    # samples, not an approximation over per-shard summaries.
    rng = np.random.default_rng(7)
    a_samples = [float(x) for x in rng.normal(10.0, 3.0, size=137)]
    b_samples = [float(x) for x in rng.normal(50.0, 1.0, size=61)]
    m = MetricsRegistry()
    a = m.histogram("lat.a")
    for s in a_samples:
        a.observe(s)
    b = MetricsRegistry().histogram("lat.b")
    for s in b_samples:
        b.observe(s)
    a.merge(b)
    combined = a_samples + b_samples
    summary = a.summary()
    assert summary["count"] == len(combined)
    assert summary["sum"] == pytest.approx(sum(combined))
    for q in (50, 95, 99):
        assert summary[f"p{q}"] == float(np.percentile(combined, q))
    # Raw sample lists merge too (the wire-format form).
    c = MetricsRegistry().histogram("lat.c")
    c.merge(a_samples)
    c.merge(b_samples)
    assert c.summary() == summary
    # Merging empties is a no-op.
    c.merge([])
    c.merge(MetricsRegistry().histogram("empty"))
    assert c.summary() == summary


def test_registry_state_dict_merge_round_trip():
    src = MetricsRegistry()
    src.counter("windows").inc(7)
    src.gauge("depth").max(3.5)
    src.histogram("lat").observe(0.25)
    src.histogram("lat").observe(0.75)
    state = json.loads(json.dumps(src.state_dict()))  # wire-clean

    dst = MetricsRegistry()
    dst.counter("windows").inc(2)
    dst.gauge("depth").max(5.0)
    dst.histogram("lat").observe(0.5)
    dst.merge_state(state)
    snap = dst.snapshot()
    assert snap["counters"]["windows"] == 9
    assert snap["gauges"]["depth"] == 5.0  # gauges merge by max
    assert dst.histogram("lat").summary()["count"] == 3
    assert dst.histogram("lat").summary()["max"] == 0.75


def test_counter_is_thread_safe():
    m = MetricsRegistry()
    c = m.counter("n")

    def bump():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000


# ----------------------------------------------------------------------
def test_journal_record_order_and_tail():
    j = EventJournal()
    j.record("campaign", chips=["a"])
    j.record("alarm", chip="a", seq=3)
    j.record("drop", chip="a", seqs=[4, 5])
    assert len(j) == 3
    assert [e["kind"] for e in j.events] == ["campaign", "alarm", "drop"]
    assert j.tail(2) == j.events[1:]
    assert j.tail(99) == j.events
    assert j.tail(0) == []
    with pytest.raises(ExperimentError):
        j.tail(-1)
    with pytest.raises(ExperimentError):
        j.record("")


def test_journal_events_carry_no_timestamps():
    # Bit-identical resume comparisons rely on journals being pure
    # functions of the seeded run.
    j = EventJournal()
    event = j.record("alarm", chip="a", separation=1.0)
    assert set(event) == {"kind", "chip", "separation"}


def test_journal_flush_and_load_round_trip(tmp_path):
    path = tmp_path / "journal" / "events.jsonl"
    j = EventJournal(path)
    j.record("alarm", chip="a", separation=0.123456789012345678)
    j.record("drop", chip="b", seqs=[1, 2])
    assert j.flush() == path
    loaded = EventJournal.load(path)
    assert loaded == j.events
    # Re-flush after more events rewrites the whole file atomically.
    j.record("spectral", chip="a", detected=True)
    j.flush()
    assert EventJournal.load(path) == j.events
    # No temp files left behind by the atomic-rename convention.
    assert [p.name for p in path.parent.iterdir()] == ["events.jsonl"]


def test_in_memory_journal_flush_is_noop():
    j = EventJournal()
    j.record("alarm", chip="a")
    assert j.flush() is None


def test_journal_annotate_tags_stay_out_of_events(tmp_path):
    # The sharded merge orders events by (tick, phase) tags; the tags
    # are pure bookkeeping and must never leak into journal bytes.
    j = EventJournal(tmp_path / "events.jsonl")
    j.record("campaign")
    with j.annotate(tick=3, phase=1):
        event = j.record("alarm", chip="a")
        with j.annotate(tick=4, phase=0):
            j.record("drop", chip="b", seqs=[1])
        # The outer annotation is restored after the inner block.
        j.record("alarm", chip="c")
    j.record("checkpoint")
    assert set(event) == {"kind", "chip"}
    tags = [tag for tag, _ in j.tagged()]
    assert tags == [
        None,
        {"tick": 3, "phase": 1},
        {"tick": 4, "phase": 0},
        {"tick": 3, "phase": 1},
        None,
    ]
    j.flush()
    assert EventJournal.load(j.path) == j.events


def test_journal_rewrite_replaces_events_and_clears_tags():
    j = EventJournal()
    with j.annotate(tick=0, phase=0):
        j.record("drop", chip="a", seqs=[0])
    merged = [{"kind": "drop", "chip": "a", "seqs": [0]},
              {"kind": "alarm", "chip": "a", "seq": 1}]
    j.rewrite(merged)
    assert j.events == merged
    assert [tag for tag, _ in j.tagged()] == [None, None]
