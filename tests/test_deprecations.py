"""Deprecation shims: old import paths and the repro-fleet script.

The fleet observability modules moved to :mod:`repro.obs`; importing
the old ``repro.fleet.metrics`` / ``repro.fleet.journal`` paths must
keep working but emit exactly one ``DeprecationWarning`` per process.
The ``repro-fleet`` console script stays as an alias of ``repro
fleet`` with the same one-warning contract.
"""

from __future__ import annotations

import importlib
import subprocess
import sys
import warnings

import pytest


def _import_fresh(module: str) -> list[warnings.WarningMessage]:
    sys.modules.pop(module, None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        importlib.import_module(module)
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


@pytest.mark.parametrize(
    "module, replacement",
    [
        ("repro.fleet.metrics", "repro.obs.metrics"),
        ("repro.fleet.journal", "repro.obs.journal"),
    ],
)
class TestShimModules:
    def test_warns_exactly_once_per_process(self, module, replacement):
        first = _import_fresh(module)
        assert len(first) == 1
        assert replacement in str(first[0].message)
        # The module is cached now; a re-import must stay silent.
        with warnings.catch_warnings(record=True) as again:
            warnings.simplefilter("always")
            importlib.import_module(module)
        assert [w for w in again
                if issubclass(w.category, DeprecationWarning)] == []

    def test_shim_reexports_the_real_objects(self, module, replacement):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = importlib.import_module(module)
        real = importlib.import_module(replacement)
        for name in ("MetricsRegistry", "EventJournal"):
            if hasattr(real, name):
                assert getattr(shim, name) is getattr(real, name)


class TestWarningFreePaths:
    def test_fleet_package_import_does_not_warn(self):
        # `from repro.fleet import MetricsRegistry` is the supported
        # compat path and must not trip the shims.
        code = (
            "import warnings; warnings.simplefilter('error', "
            "DeprecationWarning); "
            "from repro.fleet import MetricsRegistry, EventJournal, "
            "format_snapshot"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, env=_src_env()
        )

    def test_obs_import_does_not_warn(self):
        code = (
            "import warnings; warnings.simplefilter('error', "
            "DeprecationWarning); "
            "import repro.obs, repro.obs.metrics, repro.obs.journal"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, env=_src_env()
        )


def _src_env() -> dict:
    import os
    from pathlib import Path

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestDeprecatedScript:
    def test_repro_fleet_script_warns_and_delegates(self, capsys):
        from repro.fleet.cli import deprecated_main

        with pytest.warns(DeprecationWarning, match="repro fleet"):
            rc = deprecated_main(["--chips", "not-a-chip"])
        assert rc == 1
        assert "unknown chips" in capsys.readouterr().err
