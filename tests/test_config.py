"""Tests for the unified runtime configuration (:mod:`repro.config`).

Covers the resolution precedence (call argument > environment >
default), the per-knob validation error types (which must stay the
historical domain errors, not a new blanket type), the ``describe()``
snapshot round trip, and the single-decision pool-degrade rule.
"""

from __future__ import annotations

import pytest

from repro.config import (
    BACKEND_ENV_VAR,
    CACHE_DIR_ENV,
    CACHE_MB_ENV,
    CHUNK_ENV_VAR,
    DETECTOR_ENV_VAR,
    DEFAULT_CACHE_MB,
    DEFAULT_CHUNK_BYTES,
    DEFAULT_FLEET_INGEST_DEPTH,
    FLEET_INGEST_DEPTH_ENV_VAR,
    FLEET_SCORING_ENV_VAR,
    FLEET_SHARDS_ENV_VAR,
    FLEET_TRANSPORT_ENV_VAR,
    FORCE_POOL_ENV_VAR,
    SENSOR_ARRAY_ENV_VAR,
    SMOKE_ENV_VAR,
    WORKERS_ENV_VAR,
    ReproConfig,
    parse_sensor_array,
    active_config,
    use_config,
)
from repro.em.chunking import resolve_chunk_bytes
from repro.errors import (
    ConfigError,
    EmModelError,
    ExperimentError,
    SimulationError,
)
from repro.experiments.parallel import resolve_workers
from repro.logic.simulator import resolve_backend


class TestPrecedence:
    def test_defaults_with_empty_environment(self):
        cfg = ReproConfig.resolve(environ={})
        assert cfg.workers is None
        assert cfg.force_pool is False
        assert cfg.sim_backend == "auto"
        assert cfg.em_chunk_bytes == DEFAULT_CHUNK_BYTES
        assert cfg.cache_dir is None
        assert cfg.cache_mb == DEFAULT_CACHE_MB
        assert cfg.bench_smoke is False
        assert cfg.fleet_scoring == "batched"
        assert cfg.fleet_shards == 1
        assert cfg.fleet_ingest_depth == DEFAULT_FLEET_INGEST_DEPTH
        assert cfg.fleet_transport == "auto"
        assert cfg.detector == "euclidean"
        assert cfg.host_cpus >= 1

    def test_environment_beats_default(self):
        cfg = ReproConfig.resolve(environ={
            WORKERS_ENV_VAR: "3",
            FORCE_POOL_ENV_VAR: "1",
            BACKEND_ENV_VAR: "packed",
            CHUNK_ENV_VAR: "8",
            CACHE_DIR_ENV: "/tmp/traces",
            CACHE_MB_ENV: "64",
            SMOKE_ENV_VAR: "1",
            FLEET_SCORING_ENV_VAR: "sequential",
            FLEET_SHARDS_ENV_VAR: "4",
            FLEET_INGEST_DEPTH_ENV_VAR: "32",
            FLEET_TRANSPORT_ENV_VAR: "inline",
            DETECTOR_ENV_VAR: "spectral_median",
        })
        assert cfg.workers == 3
        assert cfg.force_pool is True
        assert cfg.sim_backend == "packed"
        assert cfg.em_chunk_bytes == 8 * 1024 * 1024
        assert cfg.cache_dir == "/tmp/traces"
        assert cfg.cache_mb == 64
        assert cfg.bench_smoke is True
        assert cfg.fleet_scoring == "sequential"
        assert cfg.fleet_shards == 4
        assert cfg.fleet_ingest_depth == 32
        assert cfg.fleet_transport == "inline"
        assert cfg.detector == "spectral_median"

    def test_detector_argument_beats_environment(self):
        cfg = ReproConfig.resolve(
            environ={DETECTOR_ENV_VAR: "spectral"}, detector="persistence"
        )
        assert cfg.detector == "persistence"

    def test_argument_beats_environment(self):
        cfg = ReproConfig.resolve(
            environ={WORKERS_ENV_VAR: "3", BACKEND_ENV_VAR: "packed"},
            workers=7,
            sim_backend="bool",
        )
        assert cfg.workers == 7
        assert cfg.sim_backend == "bool"

    def test_argument_restating_the_default_still_wins(self):
        cfg = ReproConfig.resolve(
            environ={BACKEND_ENV_VAR: "packed"}, sim_backend="auto"
        )
        assert cfg.sim_backend == "auto"

    def test_empty_cache_dir_means_cache_off(self):
        assert ReproConfig.resolve(
            environ={CACHE_DIR_ENV: ""}
        ).cache_dir is None
        assert ReproConfig(cache_dir="").cache_dir is None

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigError, match="unknown config override"):
            ReproConfig.resolve(environ={}, worker_count=4)


class TestValidation:
    """Invalid values keep raising the historical per-knob errors."""

    def test_non_integer_workers(self):
        with pytest.raises(ExperimentError, match="not an integer"):
            ReproConfig.resolve(environ={WORKERS_ENV_VAR: "many"})

    def test_zero_workers(self):
        with pytest.raises(ExperimentError, match=">= 1"):
            ReproConfig(workers=0)

    def test_non_numeric_chunk(self):
        with pytest.raises(EmModelError, match="not a number"):
            ReproConfig.resolve(environ={CHUNK_ENV_VAR: "not-a-number"})

    def test_non_positive_chunk(self):
        with pytest.raises(EmModelError, match="positive"):
            ReproConfig(em_chunk_bytes=0)

    def test_unknown_backend(self):
        with pytest.raises(SimulationError, match="bogus"):
            ReproConfig.resolve(environ={BACKEND_ENV_VAR: "bogus"})

    def test_unknown_fleet_scoring_mode(self):
        with pytest.raises(ExperimentError, match="vectorised"):
            ReproConfig.resolve(
                environ={FLEET_SCORING_ENV_VAR: "vectorised"}
            )
        with pytest.raises(ExperimentError, match="scoring mode"):
            ReproConfig(fleet_scoring="serial")

    def test_fleet_shard_knobs(self):
        with pytest.raises(ExperimentError, match="not an integer"):
            ReproConfig.resolve(environ={FLEET_SHARDS_ENV_VAR: "many"})
        with pytest.raises(ExperimentError, match=">= 1"):
            ReproConfig(fleet_shards=0)
        with pytest.raises(ExperimentError, match="not an integer"):
            ReproConfig.resolve(
                environ={FLEET_INGEST_DEPTH_ENV_VAR: "deep"}
            )
        with pytest.raises(ExperimentError, match=">= 1"):
            ReproConfig(fleet_ingest_depth=0)
        with pytest.raises(ExperimentError, match="pigeon"):
            ReproConfig.resolve(
                environ={FLEET_TRANSPORT_ENV_VAR: "pigeon"}
            )
        with pytest.raises(ExperimentError, match="transport"):
            ReproConfig(fleet_transport="tcp")
        with pytest.raises(ConfigError):
            ReproConfig(fleet_shards=True)

    def test_empty_detector_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            ReproConfig(detector="")
        with pytest.raises(ConfigError, match="non-empty"):
            ReproConfig.resolve(environ={DETECTOR_ENV_VAR: ""})
        with pytest.raises(ConfigError, match="non-empty"):
            ReproConfig(detector=42)

    def test_non_integer_cache_mb(self):
        with pytest.raises(ExperimentError, match="not an integer"):
            ReproConfig.resolve(environ={CACHE_MB_ENV: "big"})

    def test_non_positive_cache_mb(self):
        with pytest.raises(ExperimentError, match="positive"):
            ReproConfig(cache_mb=0)

    def test_wrong_types_rejected_at_the_boundary(self):
        with pytest.raises(ConfigError):
            ReproConfig(workers=True)
        with pytest.raises(ConfigError):
            ReproConfig(force_pool="yes")
        with pytest.raises(ConfigError):
            ReproConfig(host_cpus=-1)


class TestSnapshot:
    def test_describe_round_trip(self):
        cfg = ReproConfig(
            workers=4,
            sim_backend="packed",
            em_chunk_bytes=1 << 20,
            cache_dir="/tmp/c",
            cache_mb=16,
            host_cpus=8,
        )
        snapshot = cfg.describe()
        assert snapshot["workers"] == 4
        assert snapshot["host_cpus"] == 8
        assert ReproConfig.from_snapshot(snapshot) == cfg

    def test_snapshot_is_json_clean(self):
        import json

        doc = json.dumps(ReproConfig.resolve(environ={}).describe())
        restored = ReproConfig.from_snapshot(json.loads(doc))
        assert restored == ReproConfig.resolve(environ={})

    def test_unknown_snapshot_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown config snapshot"):
            ReproConfig.from_snapshot({"workerz": 4})


class TestActiveConfig:
    def test_environment_changes_are_seen_immediately(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert active_config().workers == 5
        monkeypatch.delenv(WORKERS_ENV_VAR)
        assert active_config().workers is None

    def test_pinned_config_beats_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        with use_config(ReproConfig(workers=2)):
            assert active_config().workers == 2
            assert resolve_workers() == 2
        assert active_config().workers == 5

    def test_use_config_nests(self):
        with use_config(ReproConfig(workers=2)):
            with use_config(ReproConfig(workers=3)):
                assert active_config().workers == 3
            assert active_config().workers == 2

    def test_consumers_read_the_pinned_config(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV_VAR, "2")
        monkeypatch.setenv(BACKEND_ENV_VAR, "packed")
        assert resolve_chunk_bytes() == 2 * 1024 * 1024
        assert resolve_backend(1) == "packed"
        pinned = ReproConfig(em_chunk_bytes=42, sim_backend="bool")
        with use_config(pinned):
            assert resolve_chunk_bytes() == 42
            assert resolve_backend(512) == "bool"


class TestPoolDegrade:
    """The single-CPU auto-degrade is decided once, in the config."""

    def test_single_cpu_disallows_pool(self):
        assert ReproConfig(host_cpus=1).pool_allowed is False

    def test_multi_cpu_allows_pool(self):
        assert ReproConfig(host_cpus=8).pool_allowed is True

    def test_force_pool_overrides_single_cpu(self):
        assert ReproConfig(host_cpus=1, force_pool=True).pool_allowed is True

    def test_force_pool_env_applies(self):
        cfg = ReproConfig.resolve(
            environ={FORCE_POOL_ENV_VAR: "1"}, host_cpus=1
        )
        assert cfg.pool_allowed is True

    def test_config_override_beats_force_pool_env(self):
        # Regression: an explicit force_pool=False argument must win
        # over REPRO_FORCE_POOL=1 (argument > environment).
        cfg = ReproConfig.resolve(
            environ={FORCE_POOL_ENV_VAR: "1"},
            force_pool=False,
            host_cpus=1,
        )
        assert cfg.force_pool is False
        assert cfg.pool_allowed is False

    def test_effective_workers_defaults_to_host_cpus(self):
        assert ReproConfig(host_cpus=6).effective_workers() == 6
        assert ReproConfig(workers=2, host_cpus=6).effective_workers() == 2

    def test_cache_bytes(self):
        assert ReproConfig().cache_bytes() is None
        cfg = ReproConfig(cache_dir="/tmp/c", cache_mb=3)
        assert cfg.cache_bytes() == 3 * 1024 * 1024


class TestSensorArrayKnob:
    def test_unset_by_default(self):
        cfg = ReproConfig.resolve(environ={})
        assert cfg.sensor_array is None
        assert cfg.sensor_array_dims() is None

    def test_parse_canonicalises(self):
        assert parse_sensor_array("") is None
        assert parse_sensor_array("4x4") == "4x4"
        assert parse_sensor_array("04x4") == "4x4"
        assert parse_sensor_array("2X8") == "2x8"

    @pytest.mark.parametrize("raw", ["4", "4x", "x4", "4x4x4", "axb",
                                     "0x4", "4x-1"])
    def test_parse_rejects_malformed(self, raw):
        with pytest.raises(ConfigError):
            parse_sensor_array(raw)

    def test_environment_resolution(self):
        cfg = ReproConfig.resolve(environ={SENSOR_ARRAY_ENV_VAR: "3x5"})
        assert cfg.sensor_array == "3x5"
        assert cfg.sensor_array_dims() == (3, 5)

    def test_constructor_canonicalises_and_validates(self):
        assert ReproConfig(sensor_array="08x2").sensor_array == "8x2"
        with pytest.raises(ConfigError):
            ReproConfig(sensor_array="nope")
        with pytest.raises(ConfigError):
            ReproConfig(sensor_array=4)  # type: ignore[arg-type]

    def test_describe_round_trip(self):
        cfg = ReproConfig(sensor_array="4x4")
        assert ReproConfig.from_snapshot(cfg.describe()) == cfg
