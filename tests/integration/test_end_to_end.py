"""End-to-end integration tests: the full paper pipeline.

These exercise netlist → placement → EM synthesis → analysis →
framework in one pass, using the shared session chip and the
SNR-calibrated scenarios.
"""

import numpy as np
import pytest

from repro.analysis import EuclideanDetector
from repro.experiments.campaign import collect_ed_traces, collect_spectral_record
from repro.framework import RuntimeTrustEvaluator, Verdict
from repro.framework.evaluator import EvaluatorConfig


@pytest.fixture(scope="module")
def evaluator(chip, sim_scenario):
    return RuntimeTrustEvaluator.train(
        chip,
        sim_scenario,
        EvaluatorConfig(n_reference=256, spectral_cycles=1024),
    )


def test_dormant_chip_is_trusted(chip, sim_scenario, evaluator):
    clean = collect_ed_traces(
        chip, sim_scenario, 96, rng_role="e2e/clean"
    )["sensor"]
    report = evaluator.evaluate_traces(clean)
    assert report.verdict is Verdict.TRUSTED


@pytest.mark.parametrize("trojan", ["trojan1", "trojan2", "trojan4"])
def test_activated_trojans_raise_time_domain_alarm(
    chip, sim_scenario, evaluator, trojan
):
    dirty = collect_ed_traces(
        chip,
        sim_scenario,
        192,
        trojan_enables=(trojan,),
        rng_role=f"e2e/{trojan}",
    )["sensor"]
    report = evaluator.evaluate_traces(dirty)
    assert report.verdict.is_alarm, trojan


def test_trojan3_is_the_hardest(chip, sim_scenario):
    golden = collect_ed_traces(
        chip, sim_scenario, 384, receivers=("sensor",), rng_role="e2e/g3"
    )["sensor"]
    det = EuclideanDetector().fit(golden)
    seps = {}
    for trojan in ("trojan1", "trojan2", "trojan3", "trojan4"):
        suspect = collect_ed_traces(
            chip,
            sim_scenario,
            192,
            trojan_enables=(trojan,),
            receivers=("sensor",),
            rng_role=f"e2e/s3/{trojan}",
        )["sensor"]
        seps[trojan] = det.separation(suspect)
    assert seps["trojan3"] == min(seps.values())
    assert seps["trojan4"] == max(seps.values())


def test_a2_invisible_in_time_visible_in_frequency(chip, sim_scenario, evaluator):
    # Time domain: A2's six transistors leave no usable trace.
    dirty = collect_ed_traces(
        chip,
        sim_scenario,
        192,
        trojan_enables=("a2",),
        rng_role="e2e/a2",
    )["sensor"]
    time_report = evaluator.evaluate_traces(dirty)
    assert not time_report.verdict.is_alarm

    # Frequency domain: the gated trigger's comb stands out.
    from repro.experiments.fig4 import run_a2_spectrum

    result = run_a2_spectrum(chip, sim_scenario, n_cycles=1536)
    assert result.detected


def test_spectral_evaluation_path(chip, sim_scenario, evaluator):
    golden_rec = collect_spectral_record(
        chip,
        sim_scenario,
        1024,
        rng_role="framework/train-spec",  # replay the training record role
    )["sensor"]
    report = evaluator.evaluate_spectrum(golden_rec)
    assert not report.verdict.is_alarm


def test_sensor_beats_probe_on_trojan4_contrast(chip, sil_scenario):
    """Fig. 6's strongest panel: T4 separates on the sensor and blurs
    on the probe."""
    from repro.analysis.histogram import distance_histogram, histogram_overlap

    golden = collect_ed_traces(chip, sil_scenario, 400, rng_role="e2e/cg")
    suspect = collect_ed_traces(
        chip, sil_scenario, 400, trojan_enables=("trojan4",), rng_role="e2e/cs"
    )
    overlaps = {}
    for rcv in ("sensor", "probe"):
        det = EuclideanDetector().fit(golden[rcv])
        hist = distance_histogram(
            det.golden_distances, det.distances(suspect[rcv])
        )
        overlaps[rcv] = histogram_overlap(hist)
    assert overlaps["sensor"] < overlaps["probe"] + 0.25


def test_runtime_monitor_catches_mid_stream_activation(chip, sim_scenario, evaluator):
    from repro.framework import RuntimeMonitor

    monitor = RuntimeMonitor(evaluator, window=24, confirm=3)
    clean = collect_ed_traces(
        chip, sim_scenario, 96, rng_role="e2e/monclean"
    )["sensor"]
    dirty = collect_ed_traces(
        chip,
        sim_scenario,
        96,
        trojan_enables=("trojan4",),
        rng_role="e2e/mondirty",
    )["sensor"]
    assert monitor.observe_stream(clean) == []
    events = monitor.observe_stream(dirty)
    assert events, "monitor must alarm after the Trojan activates"
    assert events[0].window_index > 96
