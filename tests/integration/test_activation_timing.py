"""Spectrogram localisation of a mid-record Trojan activation."""

import numpy as np
import pytest

from repro.analysis.spectrogram import detect_activation_time, spectrogram
from repro.chip import AcquisitionEngine, EncryptionWorkload
from repro.experiments.campaign import DEFAULT_KEY, SPECTRAL_PERIOD


class _MidRunActivation:
    """Encryption workload that asserts a Trojan enable mid-record."""

    def __init__(self, aes, enable_pin: str, turn_on_cycle: int):
        self._inner = EncryptionWorkload(aes, DEFAULT_KEY, period=SPECTRAL_PERIOD)
        self._pin = enable_pin
        self._turn_on = turn_on_cycle

    def begin(self, batch: int, rng) -> None:
        self._inner.begin(batch, rng)

    def inputs(self, cycle: int, batch: int):
        base = self._inner.inputs(cycle, batch) or {}
        if cycle == self._turn_on:
            base = dict(base)
            base[self._pin] = np.ones(batch, dtype=bool)
        return base or None


def test_a2_activation_localised_in_time(chip, sim_scenario):
    """The A2 trigger comb appears exactly when the attacker arms it."""
    engine = AcquisitionEngine(chip, sim_scenario)
    turn_on_cycle = 2048
    n_cycles = 4096
    workload = _MidRunActivation(
        chip.aes, chip.trojans["a2"].enable_pin, turn_on_cycle
    )
    result = engine.acquire(
        workload,
        n_cycles=n_cycles,
        batch=1,
        include_noise=False,
        rng_role="act-timing",
    )
    trace = result.traces["sensor"][0]
    fs = chip.config.fs
    f_trigger = chip.config.f_clk / 3
    t_on = turn_on_cycle / chip.config.f_clk

    # Direct before/after comparison of the trigger band's energy.
    spec = spectrogram(trace, fs, window_samples=32768)
    track = spec.band_track(f_trigger - 0.1e6, f_trigger + 0.1e6)
    before = track[spec.times < t_on - 1e-5]
    after = track[spec.times > t_on + 1e-5]
    assert after.mean() > 3 * before.mean()

    # The step detector localises the activation time.
    detected = detect_activation_time(
        trace,
        fs,
        band=(f_trigger - 0.1e6, f_trigger + 0.1e6),
        window_samples=32768,
        threshold_factor=2.0,
    )
    assert detected is not None
    assert detected == pytest.approx(t_on, abs=2.5e-5)

    # Control: a dormant record's band stays flat (no 3x step).
    clean = engine.acquire(
        EncryptionWorkload(chip.aes, DEFAULT_KEY, period=SPECTRAL_PERIOD),
        n_cycles=n_cycles,
        batch=1,
        include_noise=False,
        rng_role="act-timing-clean",
    ).traces["sensor"][0]
    clean_spec = spectrogram(clean, fs, window_samples=32768)
    clean_track = clean_spec.band_track(f_trigger - 0.1e6, f_trigger + 0.1e6)
    first_half = clean_track[: len(clean_track) // 2].mean()
    second_half = clean_track[len(clean_track) // 2 :].mean()
    assert second_half < 3 * first_half
