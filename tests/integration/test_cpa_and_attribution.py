"""Heavy integration tests: CPA leakage realism + Trojan attribution
on the real chip."""

import numpy as np
import pytest

from repro.analysis.cpa import cpa_attack
from repro.analysis.euclidean import EuclideanDetector
from repro.crypto.aes import encrypt_block, expand_key
from repro.experiments.campaign import (
    DEFAULT_KEY,
    collect_attack_traces,
    collect_ed_traces,
)
from repro.framework.classifier import TrojanClassifier


def test_cpa_attack_recovers_key_material(chip, sim_scenario):
    """The synthetic EM traces must leak like real ones: last-round CPA
    with a few thousand traces beats chance decisively."""
    traces, plaintexts = collect_attack_traces(chip, sim_scenario, 3000)
    ciphertexts = np.stack(
        [
            np.frombuffer(encrypt_block(bytes(p), DEFAULT_KEY), np.uint8)
            for p in plaintexts
        ]
    )
    spc = chip.config.samples_per_cycle
    window = (11 * spc - 20, 11 * spc + 120)
    result = cpa_attack(
        traces, ciphertexts, expand_key(DEFAULT_KEY)[10], sample_window=window
    )
    # Random guessing: expected 0.06 recovered bytes, mean rank 127.5.
    assert result.recovered_count >= 2
    assert result.mean_rank() < 90


def test_trojan_attribution_on_chip(chip, sim_scenario):
    """The classifier names the active Trojan from its EM signature."""
    golden = collect_ed_traces(
        chip, sim_scenario, 384, receivers=("sensor",), rng_role="attr/g"
    )["sensor"]
    detector = EuclideanDetector().fit(golden)
    clf = TrojanClassifier(detector)

    characterisation = {}
    for trojan in ("trojan1", "trojan2", "trojan4"):
        characterisation[trojan] = collect_ed_traces(
            chip,
            sim_scenario,
            192,
            trojan_enables=(trojan,),
            receivers=("sensor",),
            rng_role=f"attr/train/{trojan}",
        )["sensor"]
        clf.add_template(trojan, characterisation[trojan])

    # Fresh field measurements (different rng role = different
    # plaintexts and noise) must attribute to the right class.
    for trojan in ("trojan1", "trojan2", "trojan4"):
        field = collect_ed_traces(
            chip,
            sim_scenario,
            192,
            trojan_enables=(trojan,),
            receivers=("sensor",),
            rng_role=f"attr/field/{trojan}",
        )["sensor"]
        result = clf.classify(field)
        assert result.label == trojan, result.format()
        assert result.similarity > 0.5
