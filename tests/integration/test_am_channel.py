"""End-to-end Trojan-1 covert channel: key bits out of the EM trace."""

import numpy as np
import pytest

from repro.analysis.demod import demodulate_am_bits
from repro.chip import (
    AcquisitionEngine,
    Chip,
    EncryptionWorkload,
    simulation_scenario,
)
from repro.trojans.t1_am import CYCLES_PER_BIT, Trojan1Params

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


@pytest.fixture(scope="module")
def t1_chip():
    return Chip.build(
        seed=1,
        trojans=("trojan1",),
        trojan_params={"trojan1": Trojan1Params(frame_init=0)},
    )


def test_am_key_bits_recovered_from_em_trace(t1_chip):
    chip = t1_chip
    engine = AcquisitionEngine(chip, simulation_scenario())
    n_bits = 12
    result = engine.acquire(
        EncryptionWorkload(chip.aes, KEY, period=12),
        n_cycles=(n_bits + 1) * CYCLES_PER_BIT,
        batch=1,
        trojan_enables=("trojan1",),
        include_noise=False,
        rng_role="am-int",
    )
    recovered = demodulate_am_bits(
        result.traces["sensor"][0],
        fs=chip.config.fs,
        carrier_freq=750e3,
        bit_duration=CYCLES_PER_BIT / chip.config.f_clk,
        n_bits=n_bits,
        start_time=1.0 / chip.config.f_clk,
    )
    expected = [(KEY[i // 8] >> (7 - i % 8)) & 1 for i in range(n_bits)]
    errors = int(np.sum(np.array(expected) != recovered))
    assert errors <= 1, (expected, list(recovered))


def test_am_channel_silent_when_dormant(t1_chip):
    """Without the enable, the same demodulation yields no keyed
    envelope (all-zero or constant decision)."""
    chip = t1_chip
    engine = AcquisitionEngine(chip, simulation_scenario())
    n_bits = 8
    result = engine.acquire(
        EncryptionWorkload(chip.aes, KEY, period=12),
        n_cycles=(n_bits + 1) * CYCLES_PER_BIT,
        batch=1,
        include_noise=False,
        rng_role="am-dormant",
    )
    recovered = demodulate_am_bits(
        result.traces["sensor"][0],
        fs=chip.config.fs,
        carrier_freq=750e3,
        bit_duration=CYCLES_PER_BIT / chip.config.f_clk,
        n_bits=n_bits,
        start_time=1.0 / chip.config.f_clk,
    )
    expected = np.array([(KEY[i // 8] >> (7 - i % 8)) & 1 for i in range(n_bits)])
    matches = int(np.sum(expected == recovered))
    # The dormant chip's envelope carries no key: the decisions must
    # not track the key bits beyond chance.
    assert matches <= 6
