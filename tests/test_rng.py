"""Tests for repro.rng (deterministic stream derivation)."""

import numpy as np
import pytest

from repro import rng as rng_mod


def test_same_seed_role_reproduces():
    a = rng_mod.derive(42, "x").normal(size=8)
    b = rng_mod.derive(42, "x").normal(size=8)
    assert np.array_equal(a, b)


def test_different_roles_are_independent():
    a = rng_mod.derive(42, "alpha").normal(size=64)
    b = rng_mod.derive(42, "beta").normal(size=64)
    assert not np.array_equal(a, b)
    # Streams should be essentially uncorrelated.
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.5


def test_different_seeds_differ():
    a = rng_mod.derive(1, "x").normal(size=16)
    b = rng_mod.derive(2, "x").normal(size=16)
    assert not np.array_equal(a, b)


def test_spawn_seeds_deterministic():
    s1 = rng_mod.spawn_seeds(7, "workers", 5)
    s2 = rng_mod.spawn_seeds(7, "workers", 5)
    assert s1 == s2
    assert len(set(s1)) == 5


def test_spawn_seeds_rejects_negative_count():
    with pytest.raises(ValueError):
        rng_mod.spawn_seeds(7, "workers", -1)


def test_large_seed_supported():
    gen = rng_mod.derive(2**200 + 17, "big")
    assert gen.integers(0, 10, size=3).shape == (3,)
