"""Tests for trace-bundle persistence."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.io import (
    TraceBundle,
    load_json_report,
    load_traces,
    resolve_store_path,
    save_json_report,
    save_traces,
)


def _bundle(rng):
    return TraceBundle(
        traces=rng.normal(size=(8, 64)),
        receiver="sensor",
        fs=2.4e9,
        chip_seed=1,
        scenario="simulation",
        trojan_enables=("trojan4",),
        extras={"note": "unit test"},
    )


def test_roundtrip(tmp_path, rng):
    bundle = _bundle(rng)
    path = tmp_path / "campaign.npz"
    save_traces(bundle, path)
    loaded = load_traces(path)
    assert np.array_equal(loaded.traces, bundle.traces)
    assert loaded.receiver == "sensor"
    assert loaded.fs == 2.4e9
    assert loaded.chip_seed == 1
    assert loaded.trojan_enables == ("trojan4",)
    assert loaded.extras == {"note": "unit test"}
    assert loaded.n_traces == 8


def test_digest_detects_corruption(tmp_path, rng):
    bundle = _bundle(rng)
    path = tmp_path / "campaign.npz"
    save_traces(bundle, path)
    # Re-save with tampered traces but the old manifest.
    import json

    with np.load(path) as data:
        manifest = data["manifest"]
        traces = data["traces"].copy()
    traces[0, 0] += 1.0
    np.savez_compressed(path, traces=traces, manifest=manifest)
    with pytest.raises(MeasurementError, match="digest"):
        load_traces(path)


def test_not_a_bundle(tmp_path, rng):
    path = tmp_path / "other.npz"
    np.savez(path, foo=np.zeros(3))
    with pytest.raises(MeasurementError):
        load_traces(path)


def test_bad_trace_shape_rejected(tmp_path, rng):
    bundle = _bundle(rng)
    bundle.traces = bundle.traces.ravel()
    with pytest.raises(MeasurementError):
        save_traces(bundle, tmp_path / "x.npz")


def test_json_report_roundtrip(tmp_path):
    report = {
        "snr_db": np.float64(29.97),
        "count": np.int64(42),
        "values": np.arange(3),
        "name": "fig6",
    }
    path = tmp_path / "report.json"
    save_json_report(report, path)
    loaded = load_json_report(path)
    assert loaded["snr_db"] == pytest.approx(29.97)
    assert loaded["count"] == 42
    assert loaded["values"] == [0, 1, 2]


def test_json_report_rejects_exotic_types(tmp_path):
    with pytest.raises(TypeError):
        save_json_report({"x": object()}, tmp_path / "bad.json")


# -- v2 format -----------------------------------------------------------


def test_v2_roundtrip(tmp_path, rng):
    bundle = _bundle(rng)
    path = save_traces(bundle, tmp_path / "campaign.npy")
    assert path == tmp_path / "campaign.npy"
    assert (tmp_path / "campaign.json").exists()
    loaded = load_traces(path)
    assert np.array_equal(loaded.traces, bundle.traces)
    assert loaded.receiver == "sensor"
    assert loaded.trojan_enables == ("trojan4",)
    assert loaded.extras == {"note": "unit test"}
    assert loaded.stored_digest == bundle.digest()


def test_save_returns_real_path_for_suffixless_target(tmp_path, rng):
    """The historical save/load mismatch: savez appended .npz silently."""
    bundle = _bundle(rng)
    requested = tmp_path / "campaign"
    written = save_traces(bundle, requested)
    assert written.exists()
    assert written == resolve_store_path(requested)
    # Loading via the *requested* path works for both formats.
    assert np.array_equal(load_traces(requested).traces, bundle.traces)
    v1 = save_traces(bundle, tmp_path / "legacy", fmt="v1")
    assert v1.suffix == ".npz" and v1.exists()
    assert np.array_equal(load_traces(tmp_path / "legacy").traces, bundle.traces)


def test_v2_mmap_is_readonly_and_identical(tmp_path, rng):
    bundle = _bundle(rng)
    path = save_traces(bundle, tmp_path / "campaign.npy")
    loaded = load_traces(path, mmap=True)
    assert isinstance(loaded.traces, np.memmap)
    assert not loaded.traces.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        loaded.traces[0, 0] = 0.0
    assert np.array_equal(np.asarray(loaded.traces), bundle.traces)


def test_v2_digest_checked_lazily(tmp_path, rng):
    bundle = _bundle(rng)
    path = save_traces(bundle, tmp_path / "campaign.npy")
    # Corrupt the payload but keep the sidecar manifest.
    tampered = np.load(path).copy()
    tampered[0, 0] += 1.0
    np.save(path, tampered)
    # Default v2 load is lazy: no eager digest streaming.
    loaded = load_traces(path)
    with pytest.raises(MeasurementError, match="digest"):
        loaded.verify()
    with pytest.raises(MeasurementError, match="digest"):
        load_traces(path, verify=True)


def test_v2_missing_sidecar_rejected(tmp_path, rng):
    bundle = _bundle(rng)
    path = save_traces(bundle, tmp_path / "campaign.npy")
    path.with_suffix(".json").unlink()
    with pytest.raises(MeasurementError, match="sidecar"):
        load_traces(path)


def test_v2_extras_with_numpy_values(tmp_path, rng):
    bundle = _bundle(rng)
    bundle.extras = {
        "snr_db": np.float64(30.5),
        "count": np.int64(7),
        "flag": np.bool_(True),
        "taps": np.arange(4),
    }
    loaded = load_traces(save_traces(bundle, tmp_path / "campaign.npy"))
    assert loaded.extras["snr_db"] == pytest.approx(30.5)
    assert loaded.extras["count"] == 7
    assert loaded.extras["flag"] is True
    assert loaded.extras["taps"] == [0, 1, 2, 3]


def test_v1_still_loads_and_verifies_eagerly(tmp_path, rng):
    bundle = _bundle(rng)
    path = save_traces(bundle, tmp_path / "campaign.npz")
    assert path.suffix == ".npz"
    loaded = load_traces(path)
    assert np.array_equal(loaded.traces, bundle.traces)
    assert loaded.verify() is loaded


def test_resolve_store_path_rules():
    assert resolve_store_path("a.npz") == resolve_store_path("a.npz", "v1")
    assert str(resolve_store_path("a")) == "a.npy"
    assert str(resolve_store_path("a", "v1")) == "a.npz"
    assert str(resolve_store_path("a.npz", "v2")) == "a.npz.npy"
    with pytest.raises(MeasurementError):
        resolve_store_path("a", "v3")
