"""Tests for trace-bundle persistence."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.io import (
    TraceBundle,
    load_json_report,
    load_traces,
    save_json_report,
    save_traces,
)


def _bundle(rng):
    return TraceBundle(
        traces=rng.normal(size=(8, 64)),
        receiver="sensor",
        fs=2.4e9,
        chip_seed=1,
        scenario="simulation",
        trojan_enables=("trojan4",),
        extras={"note": "unit test"},
    )


def test_roundtrip(tmp_path, rng):
    bundle = _bundle(rng)
    path = tmp_path / "campaign.npz"
    save_traces(bundle, path)
    loaded = load_traces(path)
    assert np.array_equal(loaded.traces, bundle.traces)
    assert loaded.receiver == "sensor"
    assert loaded.fs == 2.4e9
    assert loaded.chip_seed == 1
    assert loaded.trojan_enables == ("trojan4",)
    assert loaded.extras == {"note": "unit test"}
    assert loaded.n_traces == 8


def test_digest_detects_corruption(tmp_path, rng):
    bundle = _bundle(rng)
    path = tmp_path / "campaign.npz"
    save_traces(bundle, path)
    # Re-save with tampered traces but the old manifest.
    import json

    with np.load(path) as data:
        manifest = data["manifest"]
        traces = data["traces"].copy()
    traces[0, 0] += 1.0
    np.savez_compressed(path, traces=traces, manifest=manifest)
    with pytest.raises(MeasurementError, match="digest"):
        load_traces(path)


def test_not_a_bundle(tmp_path, rng):
    path = tmp_path / "other.npz"
    np.savez(path, foo=np.zeros(3))
    with pytest.raises(MeasurementError):
        load_traces(path)


def test_bad_trace_shape_rejected(tmp_path, rng):
    bundle = _bundle(rng)
    bundle.traces = bundle.traces.ravel()
    with pytest.raises(MeasurementError):
        save_traces(bundle, tmp_path / "x.npz")


def test_json_report_roundtrip(tmp_path):
    report = {
        "snr_db": np.float64(29.97),
        "count": np.int64(42),
        "values": np.arange(3),
        "name": "fig6",
    }
    path = tmp_path / "report.json"
    save_json_report(report, path)
    loaded = load_json_report(path)
    assert loaded["snr_db"] == pytest.approx(29.97)
    assert loaded["count"] == 42
    assert loaded["values"] == [0, 1, 2]


def test_json_report_rejects_exotic_types(tmp_path):
    with pytest.raises(TypeError):
        save_json_report({"x": object()}, tmp_path / "bad.json")
