"""Tests for trust reports and the streaming runtime monitor."""

import numpy as np
import pytest

from repro.analysis.euclidean import EuclideanDetector
from repro.errors import AnalysisError
from repro.framework.evaluator import EvaluatorConfig, RuntimeTrustEvaluator
from repro.framework.monitor import RuntimeMonitor
from repro.framework.report import TrustReport, Verdict, combine_verdicts


def test_verdict_combination():
    assert combine_verdicts(False, False) is Verdict.TRUSTED
    assert combine_verdicts(True, False) is Verdict.SUSPECT_TIME_DOMAIN
    assert combine_verdicts(False, True) is Verdict.SUSPECT_SPECTRAL
    assert combine_verdicts(True, True) is Verdict.SUSPECT_BOTH


def test_verdict_alarm_property():
    assert not Verdict.TRUSTED.is_alarm
    for v in (
        Verdict.SUSPECT_TIME_DOMAIN,
        Verdict.SUSPECT_SPECTRAL,
        Verdict.SUSPECT_BOTH,
    ):
        assert v.is_alarm


def test_report_format_mentions_verdict():
    report = TrustReport(verdict=Verdict.TRUSTED, notes=["all good"])
    text = report.format()
    assert "trusted" in text and "all good" in text


def _synthetic_evaluator(rng, n=128, length=200):
    base = np.sin(np.linspace(0, 15, length))
    golden = base[None, :] + 0.05 * rng.normal(size=(n, length))
    detector = EuclideanDetector().fit(golden)
    ev = RuntimeTrustEvaluator.__new__(RuntimeTrustEvaluator)
    ev.detector = detector
    ev.golden_spectrum = None
    ev.fs = 1e9
    ev.config = EvaluatorConfig()
    return ev, base


def test_monitor_quiet_on_golden_stream(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=16, confirm=2)
    stream = base[None, :] + 0.05 * rng.normal(size=(200, base.size))
    events = monitor.observe_stream(stream)
    assert events == []
    assert monitor.windows_seen == 200


def test_monitor_alarms_on_shifted_stream(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=16, confirm=3)
    bad = base + 0.4 * np.cos(np.linspace(0, 9, base.size))
    stream = bad[None, :] + 0.05 * rng.normal(size=(100, base.size))
    events = monitor.observe_stream(stream)
    assert events, "expected an alarm"
    first = events[0]
    assert first.separation > first.threshold
    assert "envelope" in first.message


def test_monitor_hysteresis_suppresses_single_outlier(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=8, confirm=4)
    golden_stream = base[None, :] + 0.05 * rng.normal(size=(50, base.size))
    events = monitor.observe_stream(golden_stream[:30])
    assert not events
    # One moderately wild window must not alarm with confirm=4.
    outlier = base + 0.3 * rng.normal(size=base.size)
    assert monitor.observe(outlier) is None
    events = monitor.observe_stream(golden_stream[30:])
    assert not events


def test_monitor_recovers_after_alarm(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=8, confirm=2)
    bad = base + 0.5 * np.cos(np.linspace(0, 9, base.size))
    monitor.observe_stream(bad[None, :] + 0.05 * rng.normal(size=(30, base.size)))
    assert len(monitor.alarms) >= 1


def test_monitor_validation(rng):
    ev, _base = _synthetic_evaluator(rng)
    with pytest.raises(AnalysisError):
        RuntimeMonitor(ev, window=1)
    with pytest.raises(AnalysisError):
        RuntimeMonitor(ev, confirm=0)
    monitor = RuntimeMonitor(ev)
    with pytest.raises(AnalysisError):
        monitor.current_separation()
