"""Tests for trust reports and the streaming runtime monitor."""

import numpy as np
import pytest

from repro.analysis.euclidean import EuclideanDetector
from repro.errors import AnalysisError
from repro.framework.evaluator import EvaluatorConfig, RuntimeTrustEvaluator
from repro.framework.monitor import RuntimeMonitor
from repro.framework.report import TrustReport, Verdict, combine_verdicts


def test_verdict_combination():
    assert combine_verdicts(False, False) is Verdict.TRUSTED
    assert combine_verdicts(True, False) is Verdict.SUSPECT_TIME_DOMAIN
    assert combine_verdicts(False, True) is Verdict.SUSPECT_SPECTRAL
    assert combine_verdicts(True, True) is Verdict.SUSPECT_BOTH


def test_verdict_alarm_property():
    assert not Verdict.TRUSTED.is_alarm
    for v in (
        Verdict.SUSPECT_TIME_DOMAIN,
        Verdict.SUSPECT_SPECTRAL,
        Verdict.SUSPECT_BOTH,
    ):
        assert v.is_alarm


def test_report_format_mentions_verdict():
    report = TrustReport(verdict=Verdict.TRUSTED, notes=["all good"])
    text = report.format()
    assert "trusted" in text and "all good" in text


def _synthetic_evaluator(rng, n=128, length=200):
    base = np.sin(np.linspace(0, 15, length))
    golden = base[None, :] + 0.05 * rng.normal(size=(n, length))
    detector = EuclideanDetector().fit(golden)
    ev = RuntimeTrustEvaluator.__new__(RuntimeTrustEvaluator)
    ev.detector = detector
    ev.golden_spectrum = None
    ev.fs = 1e9
    ev.config = EvaluatorConfig()
    return ev, base


def test_monitor_quiet_on_golden_stream(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=16, confirm=2)
    stream = base[None, :] + 0.05 * rng.normal(size=(200, base.size))
    events = monitor.observe_stream(stream)
    assert events == []
    assert monitor.windows_seen == 200


def test_monitor_alarms_on_shifted_stream(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=16, confirm=3)
    bad = base + 0.4 * np.cos(np.linspace(0, 9, base.size))
    stream = bad[None, :] + 0.05 * rng.normal(size=(100, base.size))
    events = monitor.observe_stream(stream)
    assert events, "expected an alarm"
    first = events[0]
    assert first.separation > first.threshold
    assert "envelope" in first.message


def test_monitor_hysteresis_suppresses_single_outlier(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=8, confirm=4)
    golden_stream = base[None, :] + 0.05 * rng.normal(size=(50, base.size))
    events = monitor.observe_stream(golden_stream[:30])
    assert not events
    # One moderately wild window must not alarm with confirm=4.
    outlier = base + 0.3 * rng.normal(size=base.size)
    assert monitor.observe(outlier) is None
    events = monitor.observe_stream(golden_stream[30:])
    assert not events


def test_monitor_recovers_after_alarm(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=8, confirm=2)
    bad = base + 0.5 * np.cos(np.linspace(0, 9, base.size))
    monitor.observe_stream(bad[None, :] + 0.05 * rng.normal(size=(30, base.size)))
    assert len(monitor.alarms) >= 1


def test_monitor_validation(rng):
    ev, _base = _synthetic_evaluator(rng)
    with pytest.raises(AnalysisError):
        RuntimeMonitor(ev, window=1)
    with pytest.raises(AnalysisError):
        RuntimeMonitor(ev, confirm=0)
    monitor = RuntimeMonitor(ev)
    with pytest.raises(AnalysisError):
        monitor.current_separation()


def test_monitor_no_alarm_before_window_fills(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=16, confirm=1, threshold=1e-9)
    # Wildly out-of-envelope windows, but fewer than the window length:
    # the sliding estimate is not ready, so no alarm may fire yet.
    bad = base + 2.0 * np.cos(np.linspace(0, 9, base.size))
    stream = bad[None, :] + 0.05 * rng.normal(size=(15, base.size))
    assert monitor.observe_stream(stream) == []
    assert monitor.windows_seen == 15
    # The very next window completes the estimate and trips confirm=1.
    event = monitor.observe(stream[0])
    assert event is not None
    assert event.window_index == 16


def test_monitor_confirm_one_alarms_on_first_crossing(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=8, confirm=1)
    bad = base + 0.5 * np.cos(np.linspace(0, 9, base.size))
    events = monitor.observe_stream(
        bad[None, :] + 0.05 * rng.normal(size=(8, base.size))
    )
    assert len(events) == 1
    assert events[0].window_index == 8


def test_monitor_does_not_realarm_while_streak_persists(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=8, confirm=2)
    bad = base + 0.5 * np.cos(np.linspace(0, 9, base.size))
    stream = bad[None, :] + 0.05 * rng.normal(size=(60, base.size))
    events = monitor.observe_stream(stream)
    # The separation stays above threshold for the whole stream: one
    # alarm when the streak reaches confirm, then silence.
    assert len(events) == 1
    assert monitor.alarms == events


def test_monitor_streak_resets_and_realarm_after_recovery(rng):
    # Noiseless windows + a threshold placed so that only all-bad
    # sliding windows are out of envelope make the streak dynamics
    # exact: [golden, bad] mixes sit at ~half the full separation.
    ev, base = _synthetic_evaluator(rng)
    detector = ev.detector
    bad = base + 0.5 * np.cos(np.linspace(0, 9, base.size))
    full_sep = float(
        np.linalg.norm(
            detector.features(bad[None, :])[0] - detector.fingerprint
        )
    )
    monitor = RuntimeMonitor(
        ev, window=2, confirm=2, threshold=0.75 * full_sep
    )
    assert monitor.observe_stream(np.tile(base, (4, 1))) == []
    # One all-bad window starts the streak (1 < confirm)...
    assert monitor.observe(bad) is None  # window [golden, bad]: inside
    assert monitor.observe(bad) is None  # window [bad, bad]: streak 1
    # ...then a recovery window resets it without ever alarming.
    assert monitor.observe(base) is None  # [bad, golden]: inside again
    assert monitor._streak == 0 and monitor.alarms == []
    # A fresh excursion must re-earn both confirmations.
    assert monitor.observe(bad) is None   # [golden, bad]: inside
    assert monitor.observe(bad) is None   # [bad, bad]: streak 1
    first = monitor.observe(bad)          # [bad, bad]: streak 2 -> alarm
    assert first is not None
    # Recovery, then a second excursion: the monitor re-alarms.
    assert monitor.observe_stream(np.tile(base, (3, 1))) == []
    second = monitor.observe_stream(np.tile(bad, (4, 1)))
    assert len(second) == 1
    assert monitor.alarms == [first, second[0]]
    assert second[0].window_index > first.window_index


def test_monitor_running_sum_matches_restacked_mean(rng):
    # The O(1) running feature sum must track the exact windowed mean,
    # across the periodic drift-control refresh.
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=8, confirm=3)
    monitor.REFRESH_EVERY = 16  # cross several refresh boundaries
    detector = ev.detector
    stream = base[None, :] + 0.08 * rng.normal(size=(100, base.size))
    for trace in stream:
        monitor.observe(trace)
        reference = np.linalg.norm(
            np.stack(monitor._features).mean(axis=0) - detector.fingerprint
        )
        assert monitor.current_separation() == pytest.approx(
            float(reference), abs=1e-12
        )


def test_monitor_observe_stream_equals_per_trace_observe(rng):
    ev, base = _synthetic_evaluator(rng)
    bad = base + 0.4 * np.cos(np.linspace(0, 9, base.size))
    stream = bad[None, :] + 0.05 * rng.normal(size=(50, base.size))
    one_by_one = RuntimeMonitor(ev, window=8, confirm=2)
    events_single = [
        e for t in stream if (e := one_by_one.observe(t)) is not None
    ]
    vectorised = RuntimeMonitor(ev, window=8, confirm=2)
    events_stream = vectorised.observe_stream(stream)
    assert events_stream == events_single
    assert vectorised.current_separation() == one_by_one.current_separation()


def test_observe_features_keeps_float64_rows_uncopied(rng):
    # The fleet hot path hands the detector's float64 feature matrix
    # straight in; the monitor must keep row views, not asarray copies.
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=8, confirm=2)
    stream = base[None, :] + 0.05 * rng.normal(size=(6, base.size))
    feats = ev.detector.features(stream)
    assert feats.dtype == np.float64 and feats.ndim == 2
    monitor.observe_features(feats)
    for row in monitor._features:
        assert np.shares_memory(row, feats)


def test_observe_features_converts_other_dtypes(rng):
    # Non-float64 input still goes through one conversion copy.
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=4, confirm=2)
    feats = ev.detector.features(
        base[None, :] + 0.05 * rng.normal(size=(3, base.size))
    ).astype(np.float32)
    monitor.observe_features(feats)
    for row in monitor._features:
        assert row.dtype == np.float64
        assert not np.shares_memory(row, feats)


def test_monitor_explicit_threshold(rng):
    ev, base = _synthetic_evaluator(rng)
    monitor = RuntimeMonitor(ev, window=8, confirm=1, threshold=0.25)
    assert monitor.threshold == 0.25
    with pytest.raises(AnalysisError):
        RuntimeMonitor(ev, threshold=0.0)
    with pytest.raises(AnalysisError):
        RuntimeMonitor(ev, threshold=-1.0)


def test_monitor_state_roundtrip_resumes_bit_identically(rng):
    import json

    ev, base = _synthetic_evaluator(rng)
    bad = base + 0.4 * np.cos(np.linspace(0, 9, base.size))
    stream = bad[None, :] + 0.05 * rng.normal(size=(60, base.size))

    reference = RuntimeMonitor(ev, window=8, confirm=2)
    reference.observe_stream(stream)

    halted = RuntimeMonitor(ev, window=8, confirm=2)
    halted.observe_stream(stream[:25])
    state = json.loads(json.dumps(halted.state_dict()))
    resumed = RuntimeMonitor.from_state(state, ev)
    assert resumed.windows_seen == 25
    assert resumed.threshold == halted.threshold
    resumed.observe_stream(stream[25:])

    assert resumed.alarms == reference.alarms
    assert resumed.current_separation() == reference.current_separation()
    assert resumed.windows_seen == reference.windows_seen
