"""Tests for the Trojan attribution classifier."""

import numpy as np
import pytest

from repro.analysis.euclidean import EuclideanDetector
from repro.errors import AnalysisError
from repro.framework.classifier import TrojanClassifier


def _population(rng, offset=None, n=80, length=120):
    base = np.sin(np.linspace(0, 11, length))
    traces = base[None, :] + 0.05 * rng.normal(size=(n, length))
    if offset is not None:
        traces = traces + offset[None, :]
    return traces


@pytest.fixture()
def setup(rng):
    length = 120
    golden = _population(rng)
    det = EuclideanDetector().fit(golden)
    clf = TrojanClassifier(det)
    t = np.linspace(0, 11, length)
    offsets = {
        "am-leaker": 0.25 * np.cos(3 * t),
        "power-waster": 0.25 * np.sign(np.sin(7 * t)),
    }
    for label, off in offsets.items():
        clf.add_template(label, _population(rng, off))
    return clf, offsets, rng


def test_classifies_known_signatures(setup):
    clf, offsets, rng = setup
    for label, off in offsets.items():
        suspect = _population(rng, off)
        result = clf.classify(suspect)
        assert result.label == label
        assert result.similarity > 0.8
        assert result.separation > 0


def test_scores_cover_all_templates(setup):
    clf, offsets, rng = setup
    result = clf.classify(_population(rng, offsets["am-leaker"]))
    assert set(result.scores) == set(offsets)
    assert "attributed to" in result.format()


def test_duplicate_template_rejected(setup):
    clf, offsets, rng = setup
    with pytest.raises(AnalysisError):
        clf.add_template("am-leaker", _population(rng, offsets["am-leaker"]))


def test_unfitted_detector_rejected():
    with pytest.raises(AnalysisError):
        TrojanClassifier(EuclideanDetector())


def test_classify_without_templates(rng):
    det = EuclideanDetector().fit(_population(rng))
    clf = TrojanClassifier(det)
    with pytest.raises(AnalysisError):
        clf.classify(_population(rng))


def test_golden_template_rejected(rng):
    golden = _population(rng, n=200)
    det = EuclideanDetector().fit(golden)
    clf = TrojanClassifier(det)
    # A template built from the golden traces themselves has ~zero
    # offset; the implementation normalises it but it must still be a
    # poor match for real Trojans.
    t = np.linspace(0, 11, 120)
    clf.add_template("real", _population(rng, 0.3 * np.cos(3 * t)))
    res = clf.classify(_population(rng, 0.3 * np.cos(3 * t)))
    assert res.label == "real"
