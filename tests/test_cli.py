"""Tests for the unified ``repro`` command line."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import REGISTRY, RunResult, validate_artifact


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out
        assert "14 experiments" in out
        # Every spec line is followed by its payload schema sketch.
        assert out.count("payload:") == len(REGISTRY)
        assert "hit1:int" in out  # localization_array's schema


class TestDetectors:
    def test_lists_every_detector(self, capsys):
        from repro.detectors import detector_names

        assert main(["detectors"]) == 0
        out = capsys.readouterr().out
        for name in detector_names():
            assert name in out
        assert "4 detectors" in out
        assert "REPRO_DETECTOR" in out
        assert "detector_tournament" in out


class TestRun:
    def test_no_names_is_an_error(self, capsys):
        assert main(["run"]) == 1
        assert "--all" in capsys.readouterr().err

    def test_unknown_experiment_is_an_error(self, capsys):
        assert main(["run", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_writes_validated_artifact(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(
            ["run", "table1", "--smoke", "--out", str(out_dir)]
        ) == 0
        artifact = out_dir / "table1.json"
        assert artifact.is_file()
        loaded = RunResult.load(artifact)
        validate_artifact(loaded)
        assert loaded.spec == "table1"
        assert loaded.smoke is True
        stdout = capsys.readouterr().out
        assert "table1" in stdout
        assert "artifact:" in stdout

    def test_workers_flag_beats_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert main([
            "run", "table1", "--smoke", "--workers", "2",
            "--out", str(tmp_path),
        ]) == 0
        doc = json.loads((tmp_path / "table1.json").read_text())
        assert doc["config"]["workers"] == 2

    def test_smoke_env_var_selects_smoke_sizes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        assert main(["run", "table1", "--out", str(tmp_path)]) == 0
        assert json.loads(
            (tmp_path / "table1.json").read_text()
        )["smoke"] is True

    def test_metrics_flag_prints_snapshot(self, tmp_path, capsys):
        assert main([
            "run", "table1", "--smoke", "--metrics",
            "--out", str(tmp_path),
        ]) == 0
        assert "metrics:" in capsys.readouterr().out


class TestFleetForwarding:
    def test_fleet_subcommand_reaches_the_fleet_cli(self, capsys):
        # An unknown chip id errors out of the fleet CLI immediately,
        # which proves the forwarding without running a campaign.
        assert main(["fleet", "--chips", "not-a-chip"]) == 1
        assert "unknown chips" in capsys.readouterr().err

    def test_fleet_help_is_forwarded(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fleet", "--help"])
        assert exc.value.code == 0
        assert "--check-oneshot" in capsys.readouterr().out

    def test_fleet_shards_flag_reaches_the_campaign(
        self, capsys, monkeypatch
    ):
        import repro.fleet.cli as fleet_cli

        seen = {}

        class _Stub:
            metrics = {"counters": {}, "gauges": {}, "histograms": {}}
            journal_path = None
            all_match_oneshot = True

            def format(self):
                return "stub fleet report"

        def fake_campaign(config, fleet):
            seen["config"] = config
            return _Stub()

        monkeypatch.setattr(
            fleet_cli, "run_fleet_campaign", fake_campaign
        )
        # The flag wins over the environment (argument > env), and
        # --shards 1 pins the serial single-process path regardless of
        # REPRO_FLEET_SHARDS.
        monkeypatch.setenv("REPRO_FLEET_SHARDS", "4")
        assert main(["fleet", "--shards", "1"]) == 0
        assert seen["config"].shards == 1
        assert main(
            ["fleet", "--shards", "2", "--transport", "inline"]
        ) == 0
        assert seen["config"].shards == 2
        assert seen["config"].transport == "inline"
        # Unset, the config defers to REPRO_FLEET_SHARDS at run time.
        assert main(["fleet"]) == 0
        assert seen["config"].shards is None
        assert seen["config"].transport is None
        assert "stub fleet report" in capsys.readouterr().out
