"""Tests for the AES-128 reference model (FIPS-197)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import (
    AES128,
    INV_SBOX,
    RCON,
    SBOX,
    SHIFT_ROWS_PERM,
    decrypt_block,
    encrypt_block,
    expand_key,
    gf_mul,
    round_states,
    xtime,
)

# FIPS-197 Appendix B.
PT_B = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
KEY_B = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
CT_B = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")

# FIPS-197 Appendix C.1.
PT_C = bytes.fromhex("00112233445566778899aabbccddeeff")
KEY_C = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
CT_C = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


def test_fips_appendix_b_vector():
    assert encrypt_block(PT_B, KEY_B) == CT_B


def test_fips_appendix_c_vector():
    assert encrypt_block(PT_C, KEY_C) == CT_C


def test_decrypt_inverts_fips_vectors():
    assert decrypt_block(CT_B, KEY_B) == PT_B
    assert decrypt_block(CT_C, KEY_C) == PT_C


def test_sbox_known_entries():
    assert SBOX[0x00] == 0x63
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_sbox_is_a_permutation():
    assert sorted(SBOX) == list(range(256))
    for value in range(256):
        assert INV_SBOX[SBOX[value]] == value


def test_sbox_has_no_fixed_points():
    assert all(SBOX[v] != v for v in range(256))
    assert all(SBOX[v] != v ^ 0xFF for v in range(256))


def test_rcon_values():
    assert RCON == [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def test_key_expansion_last_round_key():
    # FIPS-197 Appendix A.1 final round key.
    keys = expand_key(KEY_B)
    assert keys[0] == KEY_B
    assert keys[10] == bytes.fromhex("d014f9a8c9ee2589e13f0cc8b6630ca6")


def test_round_states_length_and_final():
    states = round_states(PT_B, KEY_B)
    assert len(states) == 11
    assert states[-1] == CT_B


def test_xtime_examples():
    assert xtime(0x57) == 0xAE
    assert xtime(0xAE) == 0x47


def test_gf_mul_examples():
    # FIPS-197 section 4.2: {57} x {83} = {c1}.
    assert gf_mul(0x57, 0x83) == 0xC1
    assert gf_mul(0x57, 0x13) == 0xFE


def test_gf_mul_identity_and_zero():
    for a in range(0, 256, 17):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0


def test_shift_rows_perm_is_permutation():
    assert sorted(SHIFT_ROWS_PERM) == list(range(16))
    # Row 0 is untouched.
    for col in range(4):
        assert SHIFT_ROWS_PERM[4 * col] == 4 * col


def test_bad_key_length_rejected():
    with pytest.raises(ValueError):
        expand_key(b"short")
    with pytest.raises(ValueError):
        encrypt_block(PT_B, b"short")
    with pytest.raises(ValueError):
        encrypt_block(b"short", KEY_B)
    with pytest.raises(ValueError):
        decrypt_block(b"short", KEY_B)


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_decrypt_inverts_encrypt(pt, key):
    assert decrypt_block(encrypt_block(pt, key), key) == pt


@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_encryption_is_injective_in_plaintext(pt, key):
    other = bytes([pt[0] ^ 1]) + pt[1:]
    assert encrypt_block(pt, key) != encrypt_block(other, key)


def test_aes128_object_caches_schedule():
    aes = AES128(KEY_B)
    assert aes.round_keys == expand_key(KEY_B)
    assert aes.encrypt(PT_B) == CT_B
    assert aes.decrypt(CT_B) == PT_B
