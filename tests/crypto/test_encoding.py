"""Tests for bit/byte packing helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.encoding import (
    bits_to_bytes,
    blocks_from_bytes,
    bus_inputs,
    bytes_to_bits,
    random_blocks,
)


def test_bytes_to_bits_msb_first():
    blocks = np.array([[0x80, 0x01]], dtype=np.uint8)
    bits = bytes_to_bits(blocks)
    assert bits.shape == (16, 1)
    assert bits[0, 0] and not bits[1:8, 0].any()
    assert bits[15, 0] and not bits[8:15, 0].any()


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 8), st.integers(1, 20))
def test_bits_bytes_roundtrip(batch, nbytes):
    rng = np.random.default_rng(batch * 100 + nbytes)
    blocks = rng.integers(0, 256, (batch, nbytes), dtype=np.uint8)
    assert np.array_equal(bits_to_bytes(bytes_to_bits(blocks)), blocks)


def test_bits_to_bytes_rejects_ragged():
    with pytest.raises(ValueError):
        bits_to_bytes(np.zeros((9, 2), dtype=bool))


def test_bus_inputs_maps_nets():
    bus = [f"n[{i}]" for i in range(8)]
    blocks = np.array([[0xA5]], dtype=np.uint8)
    inputs = bus_inputs(bus, blocks)
    assert set(inputs) == set(bus)
    value = 0
    for i in range(8):
        value = (value << 1) | int(inputs[f"n[{i}]"][0])
    assert value == 0xA5


def test_bus_inputs_width_mismatch():
    with pytest.raises(ValueError):
        bus_inputs(["a", "b"], np.array([[0xA5]], dtype=np.uint8))


def test_random_blocks_shape_and_range(rng):
    blocks = random_blocks(rng, 5)
    assert blocks.shape == (5, 16)
    assert blocks.dtype == np.uint8


def test_random_blocks_rejects_bad_batch(rng):
    with pytest.raises(ValueError):
        random_blocks(rng, 0)


def test_blocks_from_bytes():
    arr = blocks_from_bytes([b"\x00" * 16, b"\xff" * 16])
    assert arr.shape == (2, 16)
    assert arr[0].sum() == 0 and arr[1].sum() == 255 * 16


def test_blocks_from_bytes_rejects_mixed_lengths():
    with pytest.raises(ValueError):
        blocks_from_bytes([b"\x00" * 16, b"\x00" * 15])
    with pytest.raises(ValueError):
        blocks_from_bytes([])
