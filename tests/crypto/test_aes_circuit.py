"""Gate-level AES vs the FIPS-197 reference, cycle by cycle."""

import numpy as np
import pytest

from repro.crypto import build_aes_circuit, encrypt_block
from repro.crypto.aes import round_states
from repro.crypto.encoding import bits_to_bytes, blocks_from_bytes
from repro.logic import CompiledNetlist, netlist_stats


@pytest.fixture(scope="module")
def aes_sim():
    aes = build_aes_circuit()
    return aes, CompiledNetlist(aes.netlist)


def _encrypt(aes, sim, pts, keys, extra_cycles=0):
    batch = pts.shape[0]
    state = sim.reset(batch=batch, inputs=aes.start_inputs(pts, keys))
    for i in range(aes.latency + extra_cycles):
        sim.step(state, aes.idle_inputs(batch) if i == 0 else None)
    return state


def test_matches_reference_on_fips_vector(aes_sim):
    aes, sim = aes_sim
    pt = np.frombuffer(bytes.fromhex("3243f6a8885a308d313198a2e0370734"), np.uint8)
    key = np.frombuffer(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"), np.uint8)
    state = _encrypt(aes, sim, pt[None, :], key[None, :])
    ct = bits_to_bytes(sim.read_bus_bits(state, aes.state_q))
    assert bytes(ct[0]).hex() == "3925841d02dc09fbdc118597196a0b32"
    assert sim.read(state, aes.done)[0]


def test_matches_reference_on_random_batch(aes_sim):
    aes, sim = aes_sim
    rng = np.random.default_rng(7)
    pts = rng.integers(0, 256, (16, 16), dtype=np.uint8)
    keys = rng.integers(0, 256, (16, 16), dtype=np.uint8)
    state = _encrypt(aes, sim, pts, keys)
    got = bits_to_bytes(sim.read_bus_bits(state, aes.state_q))
    expected = blocks_from_bytes(
        [encrypt_block(bytes(p), bytes(k)) for p, k in zip(pts, keys)]
    )
    assert np.array_equal(got, expected)


def test_intermediate_round_states_match_reference(aes_sim):
    """The state register must hold round_states[r] after load + r rounds."""
    aes, sim = aes_sim
    pt = bytes(range(16))
    key = bytes(range(16, 32))
    expected = round_states(pt, key)
    pts = np.frombuffer(pt, np.uint8)[None, :]
    keys = np.frombuffer(key, np.uint8)[None, :]
    state = sim.reset(batch=1, inputs=aes.start_inputs(pts, keys))
    sim.step(state, aes.idle_inputs(1))  # load: initial AddRoundKey
    got = bits_to_bytes(sim.read_bus_bits(state, aes.state_q))
    assert bytes(got[0]) == expected[0]
    for rnd in range(1, 11):
        sim.step(state)
        got = bits_to_bytes(sim.read_bus_bits(state, aes.state_q))
        assert bytes(got[0]) == expected[rnd], f"round {rnd}"


def test_done_pulses_exactly_once(aes_sim):
    aes, sim = aes_sim
    rng = np.random.default_rng(8)
    pts = rng.integers(0, 256, (1, 16), dtype=np.uint8)
    keys = rng.integers(0, 256, (1, 16), dtype=np.uint8)
    state = sim.reset(batch=1, inputs=aes.start_inputs(pts, keys))
    done_history = []
    for i in range(aes.latency + 5):
        sim.step(state, aes.idle_inputs(1) if i == 0 else None)
        done_history.append(bool(sim.read(state, aes.done)[0]))
    assert done_history.count(True) == 1
    assert done_history[aes.latency - 1]


def test_ciphertext_holds_after_done(aes_sim):
    aes, sim = aes_sim
    rng = np.random.default_rng(9)
    pts = rng.integers(0, 256, (1, 16), dtype=np.uint8)
    keys = rng.integers(0, 256, (1, 16), dtype=np.uint8)
    state = _encrypt(aes, sim, pts, keys, extra_cycles=6)
    ct = bits_to_bytes(sim.read_bus_bits(state, aes.state_q))
    expected = encrypt_block(bytes(pts[0]), bytes(keys[0]))
    assert bytes(ct[0]) == expected


def test_back_to_back_encryptions(aes_sim):
    """A second start must work without reset in between."""
    aes, sim = aes_sim
    rng = np.random.default_rng(10)
    pts = rng.integers(0, 256, (2, 1, 16), dtype=np.uint8)
    keys = rng.integers(0, 256, (2, 1, 16), dtype=np.uint8)
    state = sim.reset(batch=1, inputs=aes.start_inputs(pts[0], keys[0]))
    for i in range(aes.latency):
        sim.step(state, aes.idle_inputs(1) if i == 0 else None)
    first = bits_to_bytes(sim.read_bus_bits(state, aes.state_q))
    sim.step(state, aes.start_inputs(pts[1], keys[1]))
    sim.step(state, aes.idle_inputs(1))
    for _ in range(aes.latency - 1):
        sim.step(state)
    second = bits_to_bytes(sim.read_bus_bits(state, aes.state_q))
    assert bytes(first[0]) == encrypt_block(bytes(pts[0, 0]), bytes(keys[0, 0]))
    assert bytes(second[0]) == encrypt_block(bytes(pts[1, 0]), bytes(keys[1, 0]))


def test_gate_count_in_paper_class(aes_sim):
    """The paper's AES is 33k gates; ours must be the same class."""
    aes, _sim = aes_sim
    stats = netlist_stats(aes.netlist)
    count = stats.groups["aes"].gate_count
    assert 20_000 <= count <= 45_000
    assert stats.groups["aes"].flop_count >= 256  # state + key registers


def test_clkdiv_free_runs(aes_sim):
    aes, sim = aes_sim
    state = sim.reset(batch=1)
    values = []
    for _ in range(16):
        sim.step(state)
        values.append(int(sim.read_bus(state, aes.clkdiv)[0]))
    assert values == [(k + 1) % 8 for k in range(16)]
