"""Sensor-array geometry and the batched multi-coil mutual kernel.

The batched :func:`mutual_inductance_to_loops` must agree with calling
the single-loop kernel per coil to 1e-12 relative error (the only
numerical difference is the shared centring constant), and the
:class:`SensorArray` grid must tile the die row-major with full DRC'd
spirals per tile.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.em.mutual import (
    mutual_inductance_to_loop,
    mutual_inductance_to_loops,
)
from repro.em.sensor import OnChipSensor, SensorArray
from repro.errors import EmModelError
from repro.layout.geometry import Rect
from repro.layout.technology import make_tech180
from repro.units import UM

TOL = 1e-12


@pytest.fixture(scope="module")
def die():
    return Rect(0, 0, 800 * UM, 800 * UM)


@pytest.fixture(scope="module")
def tech():
    return make_tech180()


def _segments(rng, n):
    s = np.zeros((n, 3))
    s[:, 0] = rng.uniform(0.0, 800 * UM, n)
    s[:, 1] = rng.uniform(0.0, 800 * UM, n)
    e = s.copy()
    half = n // 2
    e[:half, 0] += 25 * UM
    e[half:, 1] += rng.choice([-1.0, 1.0], n - half) * 150 * UM
    return s, e


def _square_loop(cx, cy, half, z=1e-6, jitter=None):
    pts = np.array(
        [
            [cx - half, cy - half, z],
            [cx + half, cy - half, z],
            [cx + half, cy + half, z],
            [cx - half, cy + half, z],
            [cx - half, cy - half, z],
        ]
    )
    if jitter is not None:
        pts = pts + jitter
    return pts


class TestBatchedKernel:
    def test_matches_per_coil_kernel(self, rng):
        seg_start, seg_end = _segments(rng, 300)
        loops = [
            _square_loop(
                rng.uniform(100 * UM, 700 * UM),
                rng.uniform(100 * UM, 700 * UM),
                rng.uniform(20 * UM, 80 * UM),
                jitter=rng.normal(scale=0.5 * UM, size=(5, 3)),
            )
            for _ in range(6)
        ]
        batched = mutual_inductance_to_loops(seg_start, seg_end, loops)
        assert batched.shape == (len(loops), len(seg_start))
        for i, loop in enumerate(loops):
            solo = mutual_inductance_to_loop(seg_start, seg_end, loop)
            scale = max(np.max(np.abs(solo)), 1e-30)
            assert np.max(np.abs(batched[i] - solo)) / scale < TOL

    def test_chunking_does_not_change_results(self, rng):
        seg_start, seg_end = _segments(rng, 120)
        loops = [
            _square_loop(200 * UM, 200 * UM, 60 * UM),
            _square_loop(600 * UM, 500 * UM, 40 * UM),
        ]
        full = mutual_inductance_to_loops(seg_start, seg_end, loops)
        tiny = mutual_inductance_to_loops(
            seg_start, seg_end, loops, chunk_bytes=4096
        )
        scale = max(np.max(np.abs(full)), 1e-30)
        assert np.max(np.abs(tiny - full)) / scale < TOL

    def test_degenerate_coil_contributes_zero_row(self, rng):
        seg_start, seg_end = _segments(rng, 50)
        live = _square_loop(400 * UM, 400 * UM, 50 * UM)
        # All points coincident: every segment is dropped as zero-length.
        dead = np.tile(np.array([[100 * UM, 100 * UM, 1e-6]]), (4, 1))
        batched = mutual_inductance_to_loops(
            seg_start, seg_end, [dead, live, dead]
        )
        assert np.all(batched[0] == 0.0)
        assert np.all(batched[2] == 0.0)
        solo = mutual_inductance_to_loop(seg_start, seg_end, live)
        scale = max(np.max(np.abs(solo)), 1e-30)
        assert np.max(np.abs(batched[1] - solo)) / scale < TOL

    def test_rejects_malformed_loop(self, rng):
        seg_start, seg_end = _segments(rng, 10)
        with pytest.raises(EmModelError):
            mutual_inductance_to_loops(
                seg_start, seg_end, [np.zeros((1, 3))]
            )
        with pytest.raises(EmModelError):
            mutual_inductance_to_loops(
                seg_start, seg_end, [np.zeros((4, 2))]
            )


class TestSensorArray:
    def test_grid_geometry(self, die, tech):
        array = SensorArray.design_grid(die, tech, rows=2, cols=3)
        assert (array.rows, array.cols) == (2, 3)
        assert len(array.coils) == 6 and len(array.tiles) == 6
        # Row-major, row 0 at the bottom (lowest y).
        assert array.tiles[0].y0 == die.y0 and array.tiles[0].x0 == die.x0
        assert array.tiles[1].x0 > array.tiles[0].x0
        assert array.tiles[3].y0 > array.tiles[0].y0
        for coil, tile in zip(array.coils, array.tiles):
            assert isinstance(coil, OnChipSensor)
            assert tile.contains(*coil.polyline[:, :2].mean(axis=0))

    def test_channel_names_row_major(self, die, tech):
        array = SensorArray.design_grid(die, tech, rows=2, cols=2)
        assert array.channel_names() == [
            "array.r0c0", "array.r0c1", "array.r1c0", "array.r1c1",
        ]
        assert array.coil_at(1, 0) is array.coils[2]
        with pytest.raises(EmModelError):
            array.coil_at(2, 0)

    def test_cell_of_clamps(self, die, tech):
        array = SensorArray.design_grid(die, tech, rows=4, cols=4)
        assert array.cell_of(1 * UM, 1 * UM) == (0, 0)
        assert array.cell_of(799 * UM, 799 * UM) == (3, 3)
        # Outside the die clamps to the nearest edge cell.
        assert array.cell_of(-50 * UM, 900 * UM) == (3, 0)

    def test_rejects_degenerate_grid(self, die, tech):
        with pytest.raises(EmModelError):
            SensorArray.design_grid(die, tech, rows=0, cols=2)
        with pytest.raises(EmModelError):
            SensorArray.design_grid(die, tech, rows=2, cols=-1)

    def test_coupling_matches_per_coil(self, die, tech, rng):
        array = SensorArray.design_grid(die, tech, rows=2, cols=2)
        seg_start, seg_end = _segments(rng, 150)
        batched = array.coupling(seg_start, seg_end)
        assert batched.shape == (4, 150)
        for i, coil in enumerate(array.coils):
            solo = mutual_inductance_to_loop(
                seg_start, seg_end, coil.polyline
            )
            scale = max(np.max(np.abs(solo)), 1e-30)
            assert np.max(np.abs(batched[i] - solo)) / scale < TOL
