"""Equivalence of the vectorised EM kernels with their loop references.

The vectorised :func:`b_field_of_segments` (axis-aligned fast branch +
generic broadcast) and :func:`mutual_inductance_to_loop` (GEMM distance
expansion with exact recompute of near-coincident pairs) must agree
with the retained per-segment loop implementations to 1e-12 relative
error — on randomised oblique segments, on power-grid-style axis
geometry, with the distance clamp active, and independently of the
chunk size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.em.biot_savart import (
    _b_field_of_segments_loop,
    b_field_of_segments,
)
from repro.em.chunking import (
    CHUNK_ENV_VAR,
    DEFAULT_CHUNK_BYTES,
    resolve_chunk_bytes,
    rows_per_chunk,
)
from repro.em.mutual import (
    _mutual_inductance_to_loop_loop,
    mutual_inductance_to_loop,
)
from repro.errors import EmModelError

TOL = 1e-12


def _rel_err(got: np.ndarray, ref: np.ndarray) -> float:
    scale = np.max(np.abs(ref))
    if scale == 0.0:
        return float(np.max(np.abs(got)))
    return float(np.max(np.abs(got - ref)) / scale)


def _grid_segments(rng: np.random.Generator, n: int):
    """Axis-aligned rails/stripes over a 2x2 mm die, like the power grid."""
    s = np.zeros((n, 3))
    s[:, 0] = rng.uniform(0.0, 2e-3, n)
    s[:, 1] = rng.uniform(0.0, 2e-3, n)
    e = s.copy()
    half = n // 2
    e[:half, 0] += 25e-6
    e[half:, 1] += rng.choice([-1.0, 1.0], n - half) * 150e-6
    return s, e, rng.normal(size=n)


def _random_segments(rng: np.random.Generator, n: int):
    s = rng.normal(size=(n, 3)) * 1e-3
    e = s + rng.normal(size=(n, 3)) * 2e-4
    return s, e, rng.normal(size=n)


def _surface_points(rng: np.random.Generator, n: int, z: float = 10e-6):
    pts = np.zeros((n, 3))
    pts[:, 0] = rng.uniform(0.0, 2e-3, n)
    pts[:, 1] = rng.uniform(0.0, 2e-3, n)
    pts[:, 2] = z
    return pts


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_biot_savart_matches_loop_random_orientations(seed):
    rng = np.random.default_rng(seed)
    s, e, cur = _random_segments(rng, 300)
    pts = rng.normal(size=(200, 3)) * 1e-3
    got = b_field_of_segments(s, e, cur, pts)
    ref = _b_field_of_segments_loop(s, e, cur, pts)
    assert _rel_err(got, ref) <= TOL


@pytest.mark.parametrize("seed", [3, 4])
def test_biot_savart_matches_loop_grid_geometry(seed):
    rng = np.random.default_rng(seed)
    s, e, cur = _grid_segments(rng, 500)
    pts = _surface_points(rng, 300)
    got = b_field_of_segments(s, e, cur, pts)
    ref = _b_field_of_segments_loop(s, e, cur, pts)
    assert _rel_err(got, ref) <= TOL


def test_biot_savart_matches_loop_with_clamp_active():
    """Observation points directly on the wires hit the distance floor."""
    rng = np.random.default_rng(5)
    s, e, cur = _grid_segments(rng, 200)
    pts = _surface_points(rng, 150, z=0.0)
    pts[:50] = s[:50]  # points exactly on segment start points
    got = b_field_of_segments(s, e, cur, pts)
    ref = _b_field_of_segments_loop(s, e, cur, pts)
    assert _rel_err(got, ref) <= TOL


def test_biot_savart_mixed_orientations_and_degenerate_segments():
    rng = np.random.default_rng(6)
    sa, ea, ca = _grid_segments(rng, 40)
    sr, er, cr = _random_segments(rng, 40)
    sz = np.zeros((10, 3))
    sz[:, 0] = rng.uniform(0, 2e-3, 10)
    ez = sz.copy()
    ez[:, 2] -= 20e-6  # z-aligned vias
    s0 = sr[:5]  # zero-length segments contribute nothing
    s = np.vstack([sa, sr, sz, s0])
    e = np.vstack([ea, er, ez, s0])
    cur = np.concatenate([ca, cr, rng.normal(size=10), rng.normal(size=5)])
    pts = _surface_points(rng, 120)
    got = b_field_of_segments(s, e, cur, pts)
    ref = _b_field_of_segments_loop(s, e, cur, pts)
    assert _rel_err(got, ref) <= TOL


def test_biot_savart_chunk_size_invariance():
    rng = np.random.default_rng(7)
    s, e, cur = _grid_segments(rng, 300)
    pts = _surface_points(rng, 200)
    full = b_field_of_segments(s, e, cur, pts)
    tiny_chunks = b_field_of_segments(
        s, e, cur, pts, chunk_bytes=64 * 1024
    )
    assert _rel_err(tiny_chunks, full) <= TOL


@pytest.mark.parametrize("seed", [10, 11])
def test_mutual_matches_loop_random_orientations(seed):
    rng = np.random.default_rng(seed)
    s, e, _ = _random_segments(rng, 250)
    theta = np.linspace(0.0, 2.0 * np.pi, 33)
    coil = np.stack(
        [4e-4 * np.cos(theta), 4e-4 * np.sin(theta), np.full(33, 1e-5)],
        axis=1,
    )
    got = mutual_inductance_to_loop(s, e, coil)
    ref = _mutual_inductance_to_loop_loop(s, e, coil)
    assert _rel_err(got, ref) <= TOL


def test_mutual_matches_loop_grid_geometry_with_clamp():
    """Coil in the wire plane forces the min-distance clamp."""
    rng = np.random.default_rng(12)
    s, e, _ = _grid_segments(rng, 300)
    theta = np.linspace(0.0, 2.0 * np.pi, 33)
    coil = np.stack(
        [
            1e-3 + 4e-4 * np.cos(theta),
            1e-3 + 4e-4 * np.sin(theta),
            np.zeros(33),
        ],
        axis=1,
    )
    got = mutual_inductance_to_loop(s, e, coil)
    ref = _mutual_inductance_to_loop_loop(s, e, coil)
    assert _rel_err(got, ref) <= TOL


def test_mutual_chunk_size_invariance():
    rng = np.random.default_rng(13)
    s, e, _ = _grid_segments(rng, 200)
    theta = np.linspace(0.0, 2.0 * np.pi, 17)
    coil = np.stack(
        [
            1e-3 + 3e-4 * np.cos(theta),
            1e-3 + 3e-4 * np.sin(theta),
            np.full(17, 1e-5),
        ],
        axis=1,
    )
    full = mutual_inductance_to_loop(s, e, coil)
    tiny = mutual_inductance_to_loop(s, e, coil, chunk_bytes=32 * 1024)
    assert _rel_err(tiny, full) <= TOL


def test_chunk_env_var_override(monkeypatch):
    monkeypatch.setenv(CHUNK_ENV_VAR, "2")
    assert resolve_chunk_bytes(None) == 2 * 1024 * 1024
    monkeypatch.setenv(CHUNK_ENV_VAR, "not-a-number")
    with pytest.raises(EmModelError):
        resolve_chunk_bytes(None)
    monkeypatch.delenv(CHUNK_ENV_VAR)
    assert resolve_chunk_bytes(None) == DEFAULT_CHUNK_BYTES
    with pytest.raises(EmModelError):
        resolve_chunk_bytes(0)


def test_rows_per_chunk_floors_and_targets():
    assert rows_per_chunk(10**12) == 1  # never below one row
    assert rows_per_chunk(1024, chunk_bytes=1024 * 1024) == 1024
    # A cache target below the budget shrinks the chunk further.
    assert (
        rows_per_chunk(1024, chunk_bytes=1024 * 1024, target_bytes=64 * 1024)
        == 64
    )
    # ... but a target above the budget cannot raise it.
    assert (
        rows_per_chunk(
            1024, chunk_bytes=64 * 1024, target_bytes=1024 * 1024
        )
        == 64
    )
