"""Tests for surface EM field maps and Trojan localisation."""

import numpy as np
import pytest

from repro.chip import EncryptionWorkload
from repro.em.fieldmap import (
    FieldMap,
    average_cell_activity,
    field_map_from_activity,
)
from repro.errors import EmModelError

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def test_fieldmap_render_and_hotspot():
    xs = np.linspace(0, 1, 8)
    ys = np.linspace(0, 1, 8)
    mag = np.zeros((8, 8))
    mag[2, 5] = 1.0
    fm = FieldMap(xs=xs, ys=ys, magnitude=mag)
    hx, hy = fm.hotspot()
    assert hx == pytest.approx(xs[5])
    assert hy == pytest.approx(ys[2])
    art = fm.render(width=8, height=8)
    assert "@" in art and len(art.splitlines()) == 8


def test_hotspot_tie_breaks_on_lowest_flat_index():
    xs = np.linspace(0, 1, 6)
    ys = np.linspace(0, 1, 6)
    mag = np.zeros((6, 6))
    # Four-way tie: the bottom-most row, then left-most column, wins.
    for iy, ix in [(1, 4), (3, 1), (1, 2), (4, 4)]:
        mag[iy, ix] = 2.0
    fm = FieldMap(xs=xs, ys=ys, magnitude=mag)
    assert fm.hotspot() == (float(xs[2]), float(ys[1]))


def test_fieldmap_payload_round_trip():
    xs = np.linspace(0, 1e-3, 5)
    ys = np.linspace(0, 2e-3, 4)
    mag = np.arange(20, dtype=np.float64).reshape(4, 5) * 1e-9
    fm = FieldMap(xs=xs, ys=ys, magnitude=mag)
    back = FieldMap.from_payload(fm.as_payload())
    np.testing.assert_array_equal(back.xs, xs)
    np.testing.assert_array_equal(back.ys, ys)
    np.testing.assert_array_equal(back.magnitude, mag)
    with pytest.raises(EmModelError):
        FieldMap.from_payload({"xs": [0.0], "ys": [0.0]})
    with pytest.raises(EmModelError):
        FieldMap.from_payload(
            {"xs": [0.0, 1.0], "ys": [0.0], "magnitude": [[1.0]]}
        )


def test_fieldmap_save_load_round_trip(tmp_path):
    xs = np.linspace(0, 1e-3, 7)
    ys = np.linspace(0, 1e-3, 3)
    mag = np.random.default_rng(5).normal(size=(3, 7))
    fm = FieldMap(xs=xs, ys=ys, magnitude=mag)
    npy = fm.save(tmp_path / "maps" / "diff")
    assert npy.exists() and npy.with_suffix(".json").exists()
    back = FieldMap.load(tmp_path / "maps" / "diff")
    np.testing.assert_array_equal(back.xs, xs)
    np.testing.assert_array_equal(back.ys, ys)
    np.testing.assert_array_equal(back.magnitude, mag)


def test_fieldmap_region_mean():
    from repro.layout.geometry import Rect

    xs = np.linspace(0, 1, 10)
    ys = np.linspace(0, 1, 10)
    mag = np.outer(np.ones(10), xs)  # grows to the right
    fm = FieldMap(xs=xs, ys=ys, magnitude=mag)
    left = fm.region_mean(Rect(0.0, 0.0, 0.4, 1.0))
    right = fm.region_mean(Rect(0.6, 0.0, 1.0, 1.0))
    assert right > left
    with pytest.raises(EmModelError):
        fm.region_mean(Rect(2.0, 2.0, 3.0, 3.0))


def test_average_cell_activity(chip):
    wl = EncryptionWorkload(chip.aes, KEY, period=12)
    activity = average_cell_activity(chip, wl, n_cycles=24, batch=2)
    assert activity.shape == (chip.sim.num_instances,)
    assert activity.max() <= 1.0 + 1e-12
    assert activity.mean() > 0.01  # the AES is busy


def test_field_map_activity_validation(chip):
    with pytest.raises(EmModelError):
        field_map_from_activity(chip, np.ones(3))


def test_trojan4_lights_up_its_region(chip):
    """Location awareness: T4's activation raises the field over its
    own floorplan region more than anywhere else."""
    wl = EncryptionWorkload(chip.aes, KEY, period=12)
    golden_act = average_cell_activity(chip, wl, n_cycles=24, batch=2)
    wl2 = EncryptionWorkload(chip.aes, KEY, period=12)
    active_act = average_cell_activity(
        chip, wl2, n_cycles=24, batch=2, trojan_enables=("trojan4",)
    )
    golden = field_map_from_activity(chip, golden_act, grid=24)
    active = field_map_from_activity(chip, active_act, grid=24)
    diff = FieldMap(
        xs=golden.xs,
        ys=golden.ys,
        magnitude=np.abs(active.magnitude - golden.magnitude),
    )
    t4_rect = chip.floorplan.regions["trojan4"].rect
    aes_rect = chip.floorplan.regions["aes"].rect
    assert diff.region_mean(t4_rect) > 3 * diff.region_mean(aes_rect)
    hx, hy = diff.hotspot()
    assert t4_rect.contains(hx, hy, tol=30e-6)
