"""Tests for the on-chip sensor and external probe models."""

import numpy as np
import pytest

from repro.em.probe import ExternalProbe
from repro.em.sensor import OnChipSensor
from repro.errors import EmModelError, TechnologyError
from repro.layout.geometry import Rect
from repro.layout.technology import make_tech180
from repro.units import MM, UM


@pytest.fixture(scope="module")
def die():
    return Rect(0, 0, 800 * UM, 800 * UM)


@pytest.fixture(scope="module")
def tech():
    return make_tech180()


def test_sensor_design_basics(die, tech):
    sensor = OnChipSensor.design(die, tech, turns=10)
    assert sensor.turns == 10
    assert sensor.layer_name == tech.sensor_layer
    # Coil stays on the top metal plane.
    assert np.allclose(sensor.polyline[:, 2], tech.layer("M6").z)
    # Coil covers the die but stays inside it.
    half = 0.5 * min(die.width, die.height)
    extent = np.abs(sensor.polyline[:, :2] - np.array(die.center)).max()
    assert extent <= half
    assert extent >= 0.9 * (half - 10 * UM)


def test_sensor_min_width_rule_enforced(die, tech):
    with pytest.raises(TechnologyError):
        OnChipSensor.design(die, tech, trace_width=0.1 * UM)


def test_sensor_too_many_turns_rejected(die, tech):
    with pytest.raises(EmModelError):
        OnChipSensor.design(die, tech, turns=200, trace_width=4 * UM)


def test_sensor_effective_area_scales_with_turns(die, tech):
    a_small = OnChipSensor.design(die, tech, turns=6).effective_area()
    a_big = OnChipSensor.design(die, tech, turns=12).effective_area()
    assert a_big > a_small > 0


def test_sensor_resistance_positive_and_scales(die, tech):
    s_narrow = OnChipSensor.design(die, tech, turns=8, trace_width=2 * UM)
    s_wide = OnChipSensor.design(die, tech, turns=8, trace_width=4 * UM)
    assert s_narrow.resistance() > s_wide.resistance() > 0


def test_sensor_coupling_vector_shape(die, tech):
    sensor = OnChipSensor.design(die, tech, turns=6)
    seg_s = np.array([[100 * UM, 100 * UM, 0.8 * UM]])
    seg_e = np.array([[200 * UM, 100 * UM, 0.8 * UM]])
    m = sensor.coupling(seg_s, seg_e)
    assert m.shape == (1,)
    assert m[0] != 0.0


def test_sensor_describe_mentions_layer(die, tech):
    text = OnChipSensor.design(die, tech).describe()
    assert "M6" in text and "turns" in text


def test_probe_construction(die, tech):
    probe = ExternalProbe.langer_rf(die, die_top_z=5 * UM)
    assert probe.turns == 8
    zs = [loop[0, 2] for loop in probe.loops]
    assert min(zs) == pytest.approx(5 * UM + 100 * UM)
    assert zs == sorted(zs)


def test_probe_effective_area(die):
    probe = ExternalProbe.langer_rf(die, die_top_z=5 * UM, radius=1 * MM, turns=4)
    assert probe.effective_area() == pytest.approx(4 * np.pi * (1 * MM) ** 2, rel=0.02)


def test_probe_coupling_smaller_than_sensor_for_local_source(die, tech):
    """The locality argument: a single rail segment couples much more
    strongly to the on-chip coil than to the distant probe."""
    sensor = OnChipSensor.design(die, tech, turns=12)
    probe = ExternalProbe.langer_rf(die, die_top_z=5 * UM)
    seg_s = np.array([[300 * UM, 450 * UM, 0.8 * UM]])
    seg_e = np.array([[330 * UM, 450 * UM, 0.8 * UM]])
    m_sensor = abs(sensor.coupling(seg_s, seg_e)[0])
    m_probe = abs(probe.coupling(seg_s, seg_e)[0])
    assert m_sensor > 3 * m_probe


def test_probe_validation(die):
    with pytest.raises(EmModelError):
        ExternalProbe.langer_rf(die, die_top_z=0, turns=0)
    with pytest.raises(EmModelError):
        ExternalProbe.langer_rf(die, die_top_z=0, standoff=-1 * UM)


def test_probe_describe(die):
    text = ExternalProbe.langer_rf(die, die_top_z=5 * UM).describe()
    assert "standoff" in text and "mm" in text
