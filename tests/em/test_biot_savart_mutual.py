"""EM solver validation against analytic results and cross-checks."""

import numpy as np
import pytest

from repro.em.biot_savart import (
    b_field_of_segments,
    flux_through_polygon,
)
from repro.em.mutual import mutual_inductance_to_loop
from repro.errors import EmModelError
from repro.layout.geometry import circular_loop
from repro.units import MU_0, UM


def test_field_at_center_of_circular_loop():
    radius = 1e-3
    loop = circular_loop(0, 0, 0, radius, n_sides=200)
    s, e = loop[:-1], loop[1:]
    field = b_field_of_segments(s, e, np.ones(len(s)), np.array([[0.0, 0.0, 0.0]]))
    assert field[0, 2] == pytest.approx(MU_0 / (2 * radius), rel=1e-3)
    assert abs(field[0, 0]) < 1e-12 and abs(field[0, 1]) < 1e-12


def test_field_of_long_straight_wire():
    """A long finite wire approaches mu0 I / (2 pi d) at its middle."""
    length = 1.0
    d = 1e-3
    s = np.array([[-length / 2, 0, 0]])
    e = np.array([[length / 2, 0, 0]])
    field = b_field_of_segments(s, e, np.array([1.0]), np.array([[0.0, d, 0.0]]))
    expected = MU_0 / (2 * np.pi * d)
    assert np.linalg.norm(field[0]) == pytest.approx(expected, rel=1e-4)
    # Direction: x-current, +y offset => field along -z... check orthogonality.
    assert abs(field[0, 0]) < 1e-15
    assert abs(field[0, 1]) < 1e-15


def test_field_reverses_with_current_sign():
    s = np.array([[-1.0, 0, 0]])
    e = np.array([[1.0, 0, 0]])
    p = np.array([[0.0, 1e-3, 0.0]])
    f1 = b_field_of_segments(s, e, np.array([1.0]), p)
    f2 = b_field_of_segments(s, e, np.array([-1.0]), p)
    assert np.allclose(f1, -f2)


def test_field_superposition():
    s = np.array([[-1.0, 0, 0], [0, -1.0, 0]])
    e = np.array([[1.0, 0, 0], [0, 1.0, 0]])
    p = np.array([[0.5e-3, 1e-3, 2e-3]])
    both = b_field_of_segments(s, e, np.array([1.0, 2.0]), p)
    first = b_field_of_segments(s[:1], e[:1], np.array([1.0]), p)
    second = b_field_of_segments(s[1:], e[1:], np.array([2.0]), p)
    assert np.allclose(both, first + second)


def test_bad_shapes_rejected():
    with pytest.raises(EmModelError):
        b_field_of_segments(
            np.zeros((2, 3)), np.zeros((3, 3)), np.ones(2), np.zeros((1, 3))
        )
    with pytest.raises(EmModelError):
        b_field_of_segments(
            np.zeros((2, 3)), np.ones((2, 3)), np.ones(3), np.zeros((1, 3))
        )


def test_neumann_matches_flux_integration():
    seg_s = np.array([[-200 * UM, 0, 0]])
    seg_e = np.array([[200 * UM, 0, 0]])
    loop = circular_loop(50 * UM, 180 * UM, 40 * UM, 250 * UM, n_sides=64)
    m = mutual_inductance_to_loop(seg_s, seg_e, loop, n_quad=8)[0]
    phi = flux_through_polygon(seg_s, seg_e, np.array([1.0]), loop, grid=160)
    assert m == pytest.approx(phi, rel=5e-3)


def test_neumann_is_additive_over_segment_split():
    loop = circular_loop(50 * UM, 180 * UM, 40 * UM, 250 * UM, n_sides=32)
    whole = mutual_inductance_to_loop(
        np.array([[-200 * UM, 0, 0]]), np.array([[200 * UM, 0, 0]]), loop, n_quad=8
    )[0]
    halves = mutual_inductance_to_loop(
        np.array([[-200 * UM, 0, 0], [0, 0, 0]]),
        np.array([[0, 0, 0], [200 * UM, 0, 0]]),
        loop,
        n_quad=8,
    ).sum()
    assert halves == pytest.approx(whole, rel=2e-3)


def test_neumann_perpendicular_segments_decouple():
    """A z-directed segment has zero coupling to a planar loop's x/y runs."""
    loop = np.array(
        [[0, 0, 0], [1e-3, 0, 0], [1e-3, 1e-3, 0], [0, 1e-3, 0], [0, 0, 0]]
    )
    m = mutual_inductance_to_loop(
        np.array([[2e-3, 2e-3, 0]]), np.array([[2e-3, 2e-3, 1e-3]]), loop
    )
    assert m[0] == 0.0


def test_neumann_symmetric_geometry_is_zero():
    """Wire through the loop centre: flux cancels by symmetry."""
    loop = circular_loop(0, 0, 50 * UM, 300 * UM, n_sides=64)
    m = mutual_inductance_to_loop(
        np.array([[-200 * UM, 0, 0]]), np.array([[200 * UM, 0, 0]]), loop, n_quad=6
    )
    assert abs(m[0]) < 1e-15


def test_neumann_decays_with_distance():
    seg_s = np.array([[-100 * UM, 0, 0]])
    seg_e = np.array([[100 * UM, 0, 0]])
    values = []
    # Loop fully on one side of the wire (no flux cancellation), moved
    # progressively further away in z.
    for z in (20 * UM, 100 * UM, 500 * UM):
        loop = circular_loop(0, 120 * UM, z, 100 * UM, n_sides=32)
        values.append(
            abs(mutual_inductance_to_loop(seg_s, seg_e, loop, n_quad=6)[0])
        )
    assert values[0] > values[1] > values[2]


def test_neumann_empty_input():
    loop = circular_loop(0, 0, 0, 1e-4)
    out = mutual_inductance_to_loop(np.zeros((0, 3)), np.zeros((0, 3)), loop)
    assert out.shape == (0,)


def test_neumann_input_validation():
    loop = circular_loop(0, 0, 0, 1e-4)
    with pytest.raises(EmModelError):
        mutual_inductance_to_loop(np.zeros((2, 3)), np.zeros((3, 3)), loop)
    with pytest.raises(EmModelError):
        mutual_inductance_to_loop(
            np.zeros((1, 3)), np.ones((1, 3)), np.zeros((1, 3))
        )
    with pytest.raises(EmModelError):
        mutual_inductance_to_loop(
            np.zeros((1, 3)), np.ones((1, 3)), loop, min_distance=0.0
        )


def test_neumann_antisymmetric_under_segment_reversal():
    loop = circular_loop(80 * UM, 200 * UM, 60 * UM, 200 * UM, n_sides=24)
    fwd = mutual_inductance_to_loop(
        np.array([[-150 * UM, 10 * UM, 0]]),
        np.array([[150 * UM, 10 * UM, 0]]),
        loop,
        n_quad=5,
    )[0]
    rev = mutual_inductance_to_loop(
        np.array([[150 * UM, 10 * UM, 0]]),
        np.array([[-150 * UM, 10 * UM, 0]]),
        loop,
        n_quad=5,
    )[0]
    assert rev == pytest.approx(-fwd, rel=1e-9)


def test_neumann_antisymmetric_under_loop_reversal():
    loop = circular_loop(80 * UM, 200 * UM, 60 * UM, 200 * UM, n_sides=24)
    fwd = mutual_inductance_to_loop(
        np.array([[-150 * UM, 10 * UM, 0]]),
        np.array([[150 * UM, 10 * UM, 0]]),
        loop,
        n_quad=5,
    )[0]
    rev = mutual_inductance_to_loop(
        np.array([[-150 * UM, 10 * UM, 0]]),
        np.array([[150 * UM, 10 * UM, 0]]),
        loop[::-1],
        n_quad=5,
    )[0]
    assert rev == pytest.approx(-fwd, rel=1e-9)


def test_neumann_translation_invariance():
    """Shifting source and coil together leaves the coupling unchanged."""
    loop = circular_loop(80 * UM, 200 * UM, 60 * UM, 200 * UM, n_sides=24)
    shift = np.array([123 * UM, -47 * UM, 11 * UM])
    base = mutual_inductance_to_loop(
        np.array([[-150 * UM, 10 * UM, 0]]),
        np.array([[150 * UM, 10 * UM, 0]]),
        loop,
        n_quad=5,
    )[0]
    moved = mutual_inductance_to_loop(
        np.array([[-150 * UM, 10 * UM, 0]]) + shift,
        np.array([[150 * UM, 10 * UM, 0]]) + shift,
        loop + shift,
        n_quad=5,
    )[0]
    assert moved == pytest.approx(base, rel=1e-12)
