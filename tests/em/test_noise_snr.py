"""Tests for the noise models and the paper's SNR equations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.em.noise import EnvironmentNoise, thermal_noise_rms, white_noise
from repro.em.snr import measure_snr, rms, snr_db, snr_voltage
from repro.errors import AnalysisError, EmModelError


def test_environment_noise_scales_with_area():
    env = EnvironmentNoise(b_dot_rms=0.1)
    assert env.emf_rms(2e-6) == pytest.approx(2 * env.emf_rms(1e-6))


def test_environment_noise_scaled_copy():
    env = EnvironmentNoise(0.2)
    assert env.scaled(0.5).b_dot_rms == pytest.approx(0.1)


def test_environment_noise_validation():
    with pytest.raises(EmModelError):
        EnvironmentNoise(-1.0)
    with pytest.raises(EmModelError):
        EnvironmentNoise(1.0).emf_rms(-1e-6)


def test_thermal_noise_formula():
    # 1 kOhm over 1 MHz at 300 K -> ~4.07 uV.
    assert thermal_noise_rms(1e3, 1e6) == pytest.approx(4.07e-6, rel=0.01)


def test_thermal_noise_validation():
    with pytest.raises(EmModelError):
        thermal_noise_rms(-1, 1e6)


def test_white_noise_statistics(rng):
    x = white_noise(rng, (4, 100_000), 2e-6)
    assert x.shape == (4, 100_000)
    assert rms(x) == pytest.approx(2e-6, rel=0.02)
    assert abs(x.mean()) < 1e-7


def test_white_noise_zero_rms(rng):
    assert not white_noise(rng, (3,), 0.0).any()
    with pytest.raises(EmModelError):
        white_noise(rng, (3,), -1.0)


def test_rms_known_values():
    assert rms(np.array([3.0, -3.0])) == pytest.approx(3.0)
    assert rms(np.array([[1.0, 1.0], [7.0, 7.0]]), axis=1) == pytest.approx(
        [1.0, 7.0]
    )


def test_snr_equations_match_paper_form():
    # Eq. (2) then Eq. (3): ratio 10 -> 20 dB.
    assert snr_voltage(1e-3, 1e-4) == pytest.approx(10.0)
    assert snr_db(1e-3, 1e-4) == pytest.approx(20.0)


def test_snr_validation():
    with pytest.raises(AnalysisError):
        snr_voltage(1.0, 0.0)
    with pytest.raises(AnalysisError):
        snr_voltage(-1.0, 1.0)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=1e-7, max_value=1e-2), st.floats(min_value=1e-7, max_value=1e-2))
def test_snr_db_is_monotone_in_ratio(sig, noise):
    base = snr_db(sig, noise)
    assert snr_db(2 * sig, noise) > base
    assert snr_db(sig, 2 * noise) < base


def test_measure_snr_recovers_known_ratio(rng):
    noise = rng.normal(0, 1e-6, size=200_000)
    signal = rng.normal(0, 1e-5, size=200_000)
    result = measure_snr(signal, noise)
    assert result.snr_db == pytest.approx(20.0, abs=0.3)
    assert result.signal_rms == pytest.approx(1e-5, rel=0.02)


def test_measure_snr_subtracts_dc(rng):
    noise = rng.normal(0, 1e-6, size=100_000) + 5.0
    signal = rng.normal(0, 1e-5, size=100_000) - 3.0
    result = measure_snr(signal, noise)
    assert result.snr_db == pytest.approx(20.0, abs=0.5)


def test_measure_snr_rejects_empty():
    with pytest.raises(AnalysisError):
        measure_snr(np.array([]), np.array([1.0]))
