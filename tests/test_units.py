"""Tests for repro.units."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_length_scale_chain():
    assert units.MM == 1e-3 * units.M
    assert units.UM == 1e-3 * units.MM
    assert units.NM == 1e-3 * units.UM


def test_frequency_scale_chain():
    assert units.GHZ == 1e3 * units.MHZ == 1e6 * units.KHZ == 1e9 * units.HZ


def test_mu0_matches_definition():
    assert units.MU_0 == pytest.approx(4 * math.pi * 1e-7)


def test_db_of_unity_is_zero():
    assert units.db(1.0) == 0.0


def test_db_of_ten_is_twenty():
    assert units.db(10.0) == pytest.approx(20.0)


def test_power_db_of_ten_is_ten():
    assert units.power_db(10.0) == pytest.approx(10.0)


@pytest.mark.parametrize("bad", [0.0, -1.0, -1e-12])
def test_db_rejects_non_positive(bad):
    with pytest.raises(ValueError):
        units.db(bad)
    with pytest.raises(ValueError):
        units.power_db(bad)


@given(st.floats(min_value=1e-6, max_value=1e6))
def test_db_roundtrip(ratio):
    assert units.from_db(units.db(ratio)) == pytest.approx(ratio, rel=1e-9)


@given(st.floats(min_value=-120, max_value=120))
def test_from_db_roundtrip(level):
    assert units.db(units.from_db(level)) == pytest.approx(level, abs=1e-9)
