"""Tests for the SNR-anchored noise calibration."""

import pytest

from repro.chip import AcquisitionEngine, EncryptionWorkload, IdleWorkload
from repro.chip.calibration import PAPER_SNR_TARGETS, calibrate_scenario
from repro.chip.scenario import Scenario
from repro.em.noise import EnvironmentNoise
from repro.em.snr import measure_snr
from repro.errors import MeasurementError

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def test_calibrated_scenario_has_overrides(chip, sim_scenario):
    assert sim_scenario.noise_overrides is not None
    names = {name for name, _ in sim_scenario.noise_overrides}
    assert names == {"sensor", "probe"}
    for _name, rms in sim_scenario.noise_overrides:
        assert rms > 0


def test_calibration_hits_paper_targets(chip, sim_scenario):
    engine = AcquisitionEngine(chip, sim_scenario)
    sig = engine.acquire(
        EncryptionWorkload(chip.aes, KEY, period=12),
        n_cycles=512,
        batch=8,
        rng_role="caltest/sig",
    )
    noi = engine.acquire(
        IdleWorkload(), n_cycles=512, batch=8, rng_role="caltest/noise"
    )
    targets = PAPER_SNR_TARGETS["simulation"]
    for name, target in targets.items():
        got = measure_snr(sig.traces[name], noi.traces[name]).snr_db
        assert got == pytest.approx(target, abs=1.5), name


def test_silicon_gap_wider_than_simulation(chip, sim_scenario, sil_scenario):
    """The paper's asymmetry: silicon hurts the probe, not the sensor."""

    def gap(scenario):
        engine = AcquisitionEngine(chip, scenario)
        sig = engine.acquire(
            EncryptionWorkload(chip.aes, KEY, period=12),
            n_cycles=256,
            batch=4,
            rng_role="gap/sig",
        )
        noi = engine.acquire(
            IdleWorkload(), n_cycles=256, batch=4, rng_role="gap/noise"
        )
        s = measure_snr(sig.traces["sensor"], noi.traces["sensor"]).snr_db
        p = measure_snr(sig.traces["probe"], noi.traces["probe"]).snr_db
        return s - p

    assert gap(sil_scenario) > gap(sim_scenario)


def test_unknown_scenario_needs_explicit_targets(chip):
    weird = Scenario(name="moonbase", env_noise=EnvironmentNoise(0.01))
    with pytest.raises(MeasurementError):
        calibrate_scenario(chip, weird)
    cal = calibrate_scenario(
        chip, weird, targets={"sensor": 20.0}, n_cycles=128, batch=2
    )
    assert cal.noise_override_for("sensor") is not None


def test_unknown_receiver_target_rejected(chip):
    from repro.chip.scenario import simulation_scenario

    with pytest.raises(MeasurementError):
        calibrate_scenario(
            chip,
            simulation_scenario(),
            targets={"antenna": 10.0},
            n_cycles=64,
            batch=2,
        )
