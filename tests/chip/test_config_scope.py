"""Tests for chip configuration and the oscilloscope model."""

import numpy as np
import pytest

from repro.chip.config import ChipConfig
from repro.chip.oscilloscope import Oscilloscope
from repro.chip.scenario import (
    Scenario,
    silicon_scenario,
    simulation_scenario,
)
from repro.em.noise import EnvironmentNoise
from repro.errors import MeasurementError


def test_config_samples_per_cycle():
    cfg = ChipConfig()
    assert cfg.samples_per_cycle == 100
    assert cfg.t_clk == pytest.approx(1 / 24e6)


def test_config_rejects_non_integer_ratio():
    cfg = ChipConfig(fs=2.5e9)
    with pytest.raises(ValueError):
        _ = cfg.samples_per_cycle


def test_trojan1_carrier_is_750khz():
    cfg = ChipConfig()
    assert cfg.f_clk / 32 == pytest.approx(750e3)


def test_scope_bandwidth_attenuates_high_frequency(rng):
    scope = Oscilloscope(bandwidth=100e6, bits=16, jitter_rms_samples=0)
    fs = 2.4e9
    t = np.arange(8192) / fs
    low = np.sin(2 * np.pi * 10e6 * t)[None, :]
    high = np.sin(2 * np.pi * 900e6 * t)[None, :]
    low_out = scope.digitize(low, fs, rng)
    high_out = scope.digitize(high, fs, rng)
    assert np.abs(high_out[0, 2000:]).max() < 0.3 * np.abs(low_out[0, 2000:]).max()


def test_scope_quantization_step(rng):
    scope = Oscilloscope(bandwidth=2e9, bits=4, jitter_rms_samples=0, headroom=1.0)
    x = np.linspace(-1, 1, 1000)[None, :]
    y = scope.digitize(x, 2.4e9, rng, full_scale=1.0)
    levels = np.unique(y)
    assert len(levels) <= 2**4 + 1
    # Quantisation error bounded by half an LSB.
    lsb = 2.0 / 2**4
    assert np.abs(y - x).max() <= lsb / 2 + 1e-12


def test_scope_jitter_rolls_traces(rng):
    scope = Oscilloscope(bandwidth=2e9, bits=16, jitter_rms_samples=3.0)
    x = np.zeros((8, 256))
    x[:, 128] = 1.0
    y = scope.digitize(x, 2.4e9, rng, full_scale=2.0)
    peaks = np.argmax(np.abs(y), axis=1)
    assert len(set(int(p) for p in peaks)) > 1


def test_scope_validation(rng):
    scope = Oscilloscope()
    with pytest.raises(MeasurementError):
        scope.digitize(np.zeros(16), 2.4e9, rng)
    with pytest.raises(MeasurementError):
        scope.digitize(np.zeros((1, 16)), -1, rng)
    with pytest.raises(MeasurementError):
        scope.digitize(np.ones((1, 16)), 2.4e9, rng, full_scale=-1)


def test_scope_zero_signal_passthrough(rng):
    scope = Oscilloscope(jitter_rms_samples=0)
    out = scope.digitize(np.zeros((2, 64)), 2.4e9, rng)
    assert not out.any()


def test_scenarios_have_expected_structure():
    sim = simulation_scenario()
    sil = silicon_scenario()
    assert sim.process_sigma == 0.0
    assert sil.process_sigma > 0
    assert sil.probe_attenuation < 1.0
    assert sil.oscilloscope is not None
    assert sim.oscilloscope is None


def test_scenario_noise_override_lookup():
    s = Scenario(
        name="x",
        env_noise=EnvironmentNoise(0.0),
        noise_overrides=(("sensor", 1e-6),),
    )
    assert s.noise_override_for("sensor") == 1e-6
    assert s.noise_override_for("probe") is None


def test_process_scale_reproducible():
    sil = silicon_scenario(seed=5)
    a = sil.cell_charge_scale(100, chip_seed=1)
    b = sil.cell_charge_scale(100, chip_seed=1)
    c = sil.cell_charge_scale(100, chip_seed=2)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert (a > 0).all()


def test_simulation_scenario_has_no_process_variation():
    assert simulation_scenario().cell_charge_scale(10, 0) is None
