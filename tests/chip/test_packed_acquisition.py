"""Full-campaign equivalence of the packed simulation backend.

The packed backend must be *bit-identical* to the bool backend — same
traces, same recorded nets, for every Trojan — because both feed the
same blocked float32 activity fold.  The legacy per-cycle float64 fold
(``reference_fold=True``) is kept as a numerical baseline and is only
required to agree to float32 round-off.
"""

import gc
import weakref

import numpy as np
import pytest

from repro.chip import AcquisitionEngine, EncryptionWorkload
from repro.chip.acquire import acquisition_engine
from repro.chip.chip import Chip
from repro.chip.scenario import simulation_scenario
from repro.experiments import clear_campaign_caches
from repro.logic.simulator import BACKEND_ENV_VAR

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


@pytest.fixture(scope="module")
def engine(chip, sim_scenario):
    return AcquisitionEngine(chip, sim_scenario)


def _campaign(chip, engine, backend, monkeypatch, *, batch, trojans=(),
              n_cycles=48, **kw):
    monkeypatch.setenv(BACKEND_ENV_VAR, backend)
    wl = EncryptionWorkload(chip.aes, KEY)
    return engine.acquire(
        wl,
        n_cycles=n_cycles,
        batch=batch,
        trojan_enables=trojans,
        record_nets={"busy": chip.aes.busy},
        rng_role=f"packed-eq/{'+'.join(trojans) or 'golden'}",
        **kw,
    )


def _assert_identical(a, b):
    assert set(a.traces) == set(b.traces)
    for name in a.traces:
        assert np.array_equal(a.traces[name], b.traces[name]), name
    assert set(a.recorded) == set(b.recorded)
    for name in a.recorded:
        assert np.array_equal(a.recorded[name], b.recorded[name]), name


@pytest.mark.parametrize("batch", (64, 65))
def test_golden_campaign_bit_identity(chip, engine, monkeypatch, batch):
    """Noise, both receivers, recorded nets — exact equality end to end."""
    packed = _campaign(chip, engine, "packed", monkeypatch, batch=batch)
    boolr = _campaign(chip, engine, "bool", monkeypatch, batch=batch)
    _assert_identical(packed, boolr)


@pytest.mark.parametrize(
    "trojans", [("trojan1",), ("trojan2",), ("trojan3",), ("trojan4",), ("a2",)]
)
def test_trojan_campaign_bit_identity(chip, engine, monkeypatch, trojans):
    packed = _campaign(chip, engine, "packed", monkeypatch,
                       batch=64, trojans=trojans)
    boolr = _campaign(chip, engine, "bool", monkeypatch,
                      batch=64, trojans=trojans)
    _assert_identical(packed, boolr)


def test_reference_fold_tolerance(chip, engine, monkeypatch):
    """The retained float64 per-cycle fold agrees to float32 round-off."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    kw = dict(n_cycles=48, batch=64, receivers=("sensor",),
              include_noise=False, rng_role="packed-eq/reference")
    fast = engine.acquire(EncryptionWorkload(chip.aes, KEY), **kw)
    ref = engine.acquire(
        EncryptionWorkload(chip.aes, KEY), reference_fold=True, **kw
    )
    for name in ref.traces:
        scale = np.max(np.abs(ref.traces[name])) or 1.0
        err = np.max(np.abs(fast.traces[name] - ref.traces[name])) / scale
        assert err < 1e-5, (name, err)


def test_engine_cache_releases_dropped_chip():
    """A chip only reachable through the engine cache must be collectable
    once campaign teardown calls :func:`clear_campaign_caches`."""
    chip = Chip.build(seed=987, trojans=())
    scenario = simulation_scenario()
    acquisition_engine(chip, scenario)  # pins chip via the lru_cache
    ref = weakref.ref(chip)
    del chip
    gc.collect()
    assert ref() is not None  # the cache really was the pin
    clear_campaign_caches()
    gc.collect()
    assert ref() is None
