"""Tests for the assembled chip (uses the shared session chip)."""

import numpy as np
import pytest

from repro.chip import Chip
from repro.chip.chip import ALL_TROJANS
from repro.errors import ExperimentError


def test_chip_has_all_trojans(chip):
    assert set(chip.trojans) == set(ALL_TROJANS)


def test_unknown_trojan_rejected():
    with pytest.raises(ExperimentError):
        Chip.build(trojans=("trojanX",))


def test_every_instance_is_placed(chip):
    assert set(chip.placement.positions) == set(chip.netlist.instances)


def test_receivers_installed(chip):
    assert set(chip.receivers) == {"sensor", "probe"}
    assert not chip.receivers["sensor"].external
    assert chip.receivers["probe"].external


def test_cell_coupling_vectors_aligned(chip):
    n = chip.sim.num_instances
    for rcv in chip.receivers.values():
        assert rcv.cell_coupling.shape == (n,)
        assert np.isfinite(rcv.cell_coupling).all()
        assert np.abs(rcv.cell_coupling).max() > 0


def test_sensor_couples_stronger_than_probe_on_average(chip):
    """The paper's core physical claim at the coupling level: the
    sensor's *differential* (on-die) coupling dwarfs the probe's once
    the shared package-loop term is removed."""
    probe = chip.receivers["probe"]
    s = np.abs(chip.receivers["sensor"].cell_coupling).mean()
    p_local = np.abs(probe.cell_coupling - probe.package_coupling).mean()
    assert s > 2 * p_local


def test_tap_couplings_present(chip):
    for rcv in chip.receivers.values():
        assert set(rcv.tap_coupling) == set(range(len(chip.taps)))
        for val in rcv.tap_coupling.values():
            assert np.isfinite(val)


def test_charges_aligned_and_positive(chip):
    n = chip.sim.num_instances
    assert chip.q_switch.shape == (n,)
    assert (chip.q_switch > 0).all()
    assert chip.q_clock.shape == (n,)
    seq_idx = chip.sim.seq_instance_idx
    assert (chip.q_clock[seq_idx] > 0).all()


def test_table1_shape(chip):
    stats = chip.stats()
    aes = stats.groups["aes"].gate_count
    # Relative Trojan sizes must stay in the paper's class.
    assert 4.0 < stats.gate_percentage("trojan1", "aes") < 7.0
    assert 7.0 < stats.gate_percentage("trojan2", "aes") < 10.0
    assert 0.4 < stats.gate_percentage("trojan3", "aes") < 1.2
    assert 7.0 < stats.gate_percentage("trojan4", "aes") < 10.0
    assert stats.area_percentage("a2", "aes") < 0.2


def test_describe_is_informative(chip):
    text = chip.describe()
    assert "cells" in text and "spiral" in text and "probe" in text


def test_golden_chip_excludes_trojan_groups(golden_chip):
    assert golden_chip.trojans == {}
    assert golden_chip.netlist.groups() == ["aes"]


def test_sensor_coil_stays_on_top_layer(chip):
    z = chip.tech.layer(chip.tech.sensor_layer).z
    assert np.allclose(chip.sensor.polyline[:, 2], z)
    # No placement/routing uses M6: the power grid stays below it.
    assert chip.grid.seg_start[:, 2].max() < z
