"""Tests for the acquisition engine (uses the shared session chip)."""

import numpy as np
import pytest

from repro.chip import AcquisitionEngine, EncryptionWorkload, IdleWorkload
from repro.crypto import encrypt_block
from repro.errors import ExperimentError, MeasurementError

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


@pytest.fixture(scope="module")
def engine(chip, sim_scenario):
    return AcquisitionEngine(chip, sim_scenario)


def test_trace_shapes(chip, engine):
    res = engine.acquire(IdleWorkload(), n_cycles=16, batch=3)
    spc = chip.config.samples_per_cycle
    for name in ("sensor", "probe"):
        assert res.traces[name].shape == (3, 17 * spc)
    assert res.time.shape == (res.n_samples,)


def test_acquisition_is_deterministic(chip, engine):
    wl = EncryptionWorkload(chip.aes, KEY)
    a = engine.acquire(wl, n_cycles=32, batch=2, rng_role="det")
    b = engine.acquire(
        EncryptionWorkload(chip.aes, KEY), n_cycles=32, batch=2, rng_role="det"
    )
    assert np.array_equal(a.traces["sensor"], b.traces["sensor"])


def test_different_roles_differ(chip, engine):
    wl = EncryptionWorkload(chip.aes, KEY)
    a = engine.acquire(wl, n_cycles=16, batch=1, rng_role="r1")
    b = engine.acquire(
        EncryptionWorkload(chip.aes, KEY), n_cycles=16, batch=1, rng_role="r2"
    )
    assert not np.array_equal(a.traces["sensor"], b.traces["sensor"])


def test_workload_role_replays_stimulus(chip, engine):
    wl1 = EncryptionWorkload(chip.aes, KEY)
    a = engine.acquire(
        wl1, n_cycles=16, batch=1, rng_role="x1", workload_role="shared",
        include_noise=False,
    )
    wl2 = EncryptionWorkload(chip.aes, KEY)
    b = engine.acquire(
        wl2, n_cycles=16, batch=1, rng_role="x2", workload_role="shared",
        include_noise=False,
    )
    assert np.array_equal(a.traces["sensor"], b.traces["sensor"])
    assert np.array_equal(wl1.plaintexts[0], wl2.plaintexts[0])


def test_encryption_workload_completes_encryptions(chip, engine):
    """`done` must pulse at the AES latency inside the engine's loop."""
    wl = EncryptionWorkload(chip.aes, KEY, period=12)
    res = engine.acquire(wl, n_cycles=12, batch=2, rng_role="ct",
                         record_nets={"done": chip.aes.done})
    assert res.recorded["done"][chip.aes.latency].all()


def test_trojan_enable_changes_traces(chip, engine):
    wl = EncryptionWorkload(chip.aes, KEY)
    clean = engine.acquire(
        wl, n_cycles=24, batch=1, rng_role="t", workload_role="w",
        include_noise=False,
    )
    dirty = engine.acquire(
        EncryptionWorkload(chip.aes, KEY), n_cycles=24, batch=1,
        trojan_enables=("trojan4",), rng_role="t", workload_role="w",
        include_noise=False,
    )
    assert not np.array_equal(clean.traces["sensor"], dirty.traces["sensor"])


def test_idle_quieter_than_encrypting(chip, engine):
    idle = engine.acquire(IdleWorkload(), n_cycles=64, batch=2,
                          include_noise=False, rng_role="q")
    busy = engine.acquire(EncryptionWorkload(chip.aes, KEY), n_cycles=64,
                          batch=2, include_noise=False, rng_role="q")
    for name in ("sensor", "probe"):
        assert np.abs(idle.traces[name]).mean() < 0.2 * np.abs(
            busy.traces[name]
        ).mean()


def test_unknown_receiver_rejected(chip, engine):
    with pytest.raises(MeasurementError):
        engine.acquire(IdleWorkload(), n_cycles=4, receivers=("antenna",))


def test_unknown_trojan_rejected(chip, engine):
    with pytest.raises(MeasurementError):
        engine.acquire(IdleWorkload(), n_cycles=4, trojan_enables=("ghost",))


def test_bad_cycle_count_rejected(chip, engine):
    with pytest.raises(MeasurementError):
        engine.acquire(IdleWorkload(), n_cycles=0)


def test_workload_validation(chip):
    with pytest.raises(ExperimentError):
        EncryptionWorkload(chip.aes, KEY, period=5)
    with pytest.raises(ExperimentError):
        EncryptionWorkload(chip.aes, b"short")
    wl = EncryptionWorkload(chip.aes, KEY)
    with pytest.raises(ExperimentError):
        wl.inputs(0, 1)  # begin() not called


def test_record_nets(chip, engine):
    res = engine.acquire(
        IdleWorkload(), n_cycles=8, batch=2,
        record_nets={"busy": chip.aes.busy},
    )
    assert res.recorded["busy"].shape == (9, 2)
    assert not res.recorded["busy"].any()  # idle chip never gets busy
