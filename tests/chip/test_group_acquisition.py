"""Lane-packed group acquisition must match solo acquisitions exactly.

``acquire_group`` packs several same-netlist campaigns (golden vs the
Trojan variants) into one stepping pass and one blocked activity fold;
because every per-member RNG stream is derived exactly as the solo
``acquire`` call derives it, each member's traces, recorded nets and
plaintext log must be **bit-identical** to its solo acquisition —
including ragged (non-uniform, non-word-aligned) batch sizes.
"""

import numpy as np
import pytest

from repro.chip import AcquisitionEngine, EncryptionWorkload, GroupMember
from repro.chip.acquire import IdleWorkload
from repro.errors import MeasurementError, SimulationError
from repro.logic.simulator import (
    WORD_BITS,
    extract_lanes,
    lane_slices,
    pack_bits,
    unpack_bits,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


@pytest.fixture(scope="module")
def engine(chip, sim_scenario):
    return AcquisitionEngine(chip, sim_scenario)


def _member(chip, name, batch, trojans=()):
    return GroupMember(
        name=name,
        workload=EncryptionWorkload(chip.aes, KEY),
        batch=batch,
        trojan_enables=trojans,
        rng_role=f"group-eq/{name}",
    )


def _solo(chip, engine, name, batch, trojans=(), **kw):
    return engine.acquire(
        EncryptionWorkload(chip.aes, KEY),
        n_cycles=48,
        batch=batch,
        trojan_enables=trojans,
        rng_role=f"group-eq/{name}",
        **kw,
    )


@pytest.mark.parametrize("backend", ("bool", "packed"))
def test_ragged_group_matches_solo_acquisitions(chip, engine, backend):
    """Golden + three Trojans, ragged batches, both backends."""
    specs = [
        ("golden", (), 8),
        ("t1", ("trojan1",), 8),
        ("t2", ("trojan2",), 12),
        ("a2", ("a2",), 5),
    ]
    members = [_member(chip, n, b, tr) for n, tr, b in specs]
    group = engine.acquire_group(
        members,
        n_cycles=48,
        record_nets={"busy": chip.aes.busy},
        backend=backend,
    )
    assert list(group) == [m.name for m in members]
    for (name, trojans, batch), member in zip(specs, members):
        solo = _solo(chip, engine, name, batch, trojans,
                     record_nets={"busy": chip.aes.busy})
        got = group[name]
        assert got.n_cycles == solo.n_cycles
        assert got.samples_per_cycle == solo.samples_per_cycle
        for rcv in solo.traces:
            assert got.traces[rcv].shape == (batch, solo.n_samples)
            assert np.array_equal(got.traces[rcv], solo.traces[rcv]), (
                name, rcv,
            )
        for label in solo.recorded:
            assert np.array_equal(
                got.recorded[label], solo.recorded[label]
            ), (name, label)
        # The stimulus stream is the solo stream, plaintext for
        # plaintext — the lane pack changed the compute layout only.
        solo_pts = _solo_plaintexts(chip, name, batch)
        assert len(member.workload.plaintexts) == len(solo_pts)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(member.workload.plaintexts, solo_pts)
        )


def _solo_plaintexts(chip, name, batch):
    from repro.rng import derive

    wl = EncryptionWorkload(chip.aes, KEY)
    wl.begin(batch, derive(chip.seed, f"group-eq/{name}/workload"))
    for cycle in range(49):
        wl.inputs(cycle, batch)
    return wl.plaintexts


def test_mixed_workload_group(chip, engine):
    """Idle and encrypting members cannot share one stimulus cadence."""
    members = [
        GroupMember(name="idle", workload=IdleWorkload(), batch=4),
        _member(chip, "busy", 4),
    ]
    with pytest.raises(MeasurementError):
        engine.acquire_group(members, n_cycles=16)


def test_group_validation(chip, engine):
    with pytest.raises(MeasurementError):
        engine.acquire_group([], n_cycles=16)
    with pytest.raises(MeasurementError):
        engine.acquire_group(
            [_member(chip, "a", 4), _member(chip, "a", 4)], n_cycles=16
        )
    wl = EncryptionWorkload(chip.aes, KEY)
    shared = [
        GroupMember(name="a", workload=wl, batch=4),
        GroupMember(name="b", workload=wl, batch=4),
    ]
    with pytest.raises(MeasurementError):
        engine.acquire_group(shared, n_cycles=16)
    with pytest.raises(MeasurementError):
        engine.acquire_group(
            [_member(chip, "a", 4, ("nosuch",))], n_cycles=16
        )


# ----------------------------------------------------------------------
# Lane bookkeeping helpers.

def test_lane_slices_partitions_contiguously():
    slices = lane_slices([8, 12, 5])
    assert slices == [slice(0, 8), slice(8, 20), slice(20, 25)]
    with pytest.raises(SimulationError):
        lane_slices([8, 0])


@pytest.mark.parametrize("start,count", [
    (0, 7), (3, 61), (64, 64), (60, 10), (1, 129), (95, 33),
])
def test_extract_lanes_matches_unpacked_slice(rng, start, count):
    total = start + count + 11
    bits = rng.random((5, 3, total)) < 0.5
    words = pack_bits(bits)
    sub = extract_lanes(words, start, count)
    assert sub.shape[-1] == (count + WORD_BITS - 1) // WORD_BITS
    assert np.array_equal(
        unpack_bits(sub, count), bits[..., start : start + count]
    )


def test_extract_lanes_validation(rng):
    words = pack_bits(rng.random((2, 70)) < 0.5)
    with pytest.raises(SimulationError):
        extract_lanes(words, -1, 4)
    with pytest.raises(SimulationError):
        extract_lanes(words, 0, 0)
