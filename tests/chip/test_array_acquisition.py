"""Multi-channel sensor-array acquisition invariants.

Three contracts gate the array refactor:

* **Single-coil bit-identity** — installing an array must not move a
  single bit of the legacy ``sensor``/``probe`` path: couplings and
  acquired traces on an array chip equal a plain chip's exactly.
* **Solo == multi** — acquiring one array channel alone produces the
  same bits as acquiring the whole grid and selecting that channel
  (per-channel derived RNG streams), on the bool and packed backends.
* **One simulation pass** — a multi-channel acquire steps the logic
  exactly once, asserted via the ``acquire.cycles`` counter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chip import EncryptionWorkload
from repro.chip.acquire import AcquisitionEngine
from repro.chip.chip import Chip
from repro.chip.config import ChipConfig
from repro.chip.scenario import array_scenario
from repro.errors import ExperimentError, MeasurementError
from repro.logic.simulator import BACKEND_ENV_VAR
from repro.obs import use_metrics

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
ROWS, COLS = 2, 2


@pytest.fixture(scope="module")
def array_chip() -> Chip:
    """Same seed as the session ``chip`` fixture, plus a 2x2 array."""
    return Chip.build(
        config=ChipConfig(sensor_array_rows=ROWS, sensor_array_cols=COLS),
        seed=1,
    )


@pytest.fixture(scope="module")
def array_engine(array_chip):
    return AcquisitionEngine(array_chip, array_scenario(ROWS, COLS))


def _acquire(chip, engine, receivers, n_cycles=36, batch=5, trojans=()):
    return engine.acquire(
        EncryptionWorkload(chip.aes, KEY),
        n_cycles=n_cycles,
        batch=batch,
        trojan_enables=trojans,
        receivers=receivers,
        rng_role="array-eq",
    )


class TestChipBuild:
    def test_array_channels_installed(self, array_chip):
        names = tuple(array_chip.sensor_array.channel_names())
        assert array_chip.receiver_groups["array"] == names
        for name in names:
            assert array_chip.receivers[name].group == "array"
        # Legacy receivers stay standalone (shared-RNG) channels.
        assert array_chip.receivers["sensor"].group is None
        assert array_chip.receivers["probe"].group is None
        assert array_chip.receiver_groups["sensor"] == ("sensor",)

    def test_rejects_half_configured_array(self):
        with pytest.raises(ExperimentError):
            Chip.build(
                config=ChipConfig(sensor_array_rows=2, sensor_array_cols=0),
                seed=1,
            )

    def test_single_coil_couplings_bit_identical(self, chip, array_chip):
        for name in ("sensor", "probe"):
            plain, arrayed = chip.receivers[name], array_chip.receivers[name]
            assert np.array_equal(plain.cell_coupling, arrayed.cell_coupling)
            assert plain.resistance == arrayed.resistance
            assert plain.effective_area == arrayed.effective_area


class TestAcquisition:
    def test_single_coil_traces_bit_identical(self, chip, array_chip):
        """The array chip's sensor path replays the plain chip's bits."""
        scenario = array_scenario(ROWS, COLS)
        plain = _acquire(
            chip, AcquisitionEngine(chip, scenario), ("sensor", "probe")
        )
        arrayed = _acquire(
            array_chip,
            AcquisitionEngine(array_chip, scenario),
            ("sensor", "probe"),
        )
        for name in ("sensor", "probe"):
            assert np.array_equal(plain.traces[name], arrayed.traces[name])

    def test_solo_equals_multi_channel(self, array_chip, array_engine):
        channels = array_chip.receiver_groups["array"]
        multi = _acquire(array_chip, array_engine, channels)
        for name in channels:
            solo = _acquire(array_chip, array_engine, (name,))
            assert np.array_equal(solo.traces[name], multi.traces[name]), name

    def test_subset_order_invariance(self, array_chip, array_engine):
        """Array channels derive their own RNG streams, so any subset in
        any order reproduces the same per-channel bits."""
        channels = array_chip.receiver_groups["array"]
        multi = _acquire(array_chip, array_engine, channels)
        subset = _acquire(array_chip, array_engine, channels[::-1][:3])
        for name in subset.traces:
            assert np.array_equal(subset.traces[name], multi.traces[name])

    @pytest.mark.parametrize("backend", ("bool", "packed"))
    def test_backends_bit_identical(
        self, array_chip, array_engine, monkeypatch, backend
    ):
        monkeypatch.setenv(BACKEND_ENV_VAR, backend)
        got = _acquire(
            array_chip,
            array_engine,
            array_chip.receiver_groups["array"],
            trojans=("trojan4",),
        )
        monkeypatch.setenv(BACKEND_ENV_VAR, "bool")
        ref = _acquire(
            array_chip,
            array_engine,
            array_chip.receiver_groups["array"],
            trojans=("trojan4",),
        )
        for name in ref.traces:
            assert np.array_equal(got.traces[name], ref.traces[name]), name

    def test_multi_channel_is_one_simulation_pass(
        self, array_chip, array_engine
    ):
        channels = array_chip.receiver_groups["array"]
        n_cycles, batch = 36, 5
        with use_metrics() as metrics:
            _acquire(
                array_chip, array_engine, channels,
                n_cycles=n_cycles, batch=batch,
            )
            assert (
                metrics.counter("acquire.cycles").value == n_cycles * batch
            )

    def test_stacked_view(self, array_chip, array_engine):
        channels = array_chip.receiver_groups["array"]
        result = _acquire(array_chip, array_engine, channels, batch=3)
        stacked = result.stacked(channels)
        assert stacked.shape[:2] == (3, len(channels))
        for i, name in enumerate(channels):
            assert np.array_equal(stacked[:, i], result.traces[name])
        with pytest.raises(MeasurementError):
            result.stacked(())


class TestArrayScenario:
    def test_name_carries_grid_shape(self):
        assert array_scenario(3, 5).name == "array3x5"

    def test_rejects_degenerate_grid(self):
        with pytest.raises(ValueError):
            array_scenario(0, 4)
