"""SI unit helpers and physical constants.

All quantities inside the library are plain floats in base SI units
(metres, seconds, volts, amperes, farads, henries).  The constants below
make call sites read naturally::

    probe_height = 100 * UM
    clock_period = 1 / (12 * MHZ)

Keeping everything in SI avoids the classic EDA pitfall of mixed
micron/nanometre databases.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Length
# ---------------------------------------------------------------------------
M = 1.0
MM = 1e-3
UM = 1e-6
NM = 1e-9

# ---------------------------------------------------------------------------
# Time / frequency
# ---------------------------------------------------------------------------
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12

HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# ---------------------------------------------------------------------------
# Electrical
# ---------------------------------------------------------------------------
V = 1.0
MV = 1e-3
UV = 1e-6

A = 1.0
MA = 1e-3
UA = 1e-6
NA = 1e-9

F = 1.0
PF = 1e-12
FF = 1e-15

OHM = 1.0
KOHM = 1e3

H = 1.0
NH = 1e-9
PH = 1e-12

W = 1.0
MW = 1e-3
UW = 1e-6
NW = 1e-9

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------
#: Vacuum permeability [H/m].
MU_0 = 4.0 * math.pi * 1e-7

#: Boltzmann constant [J/K].
K_BOLTZMANN = 1.380649e-23

#: Room temperature used throughout the thermal-noise models [K].
ROOM_TEMPERATURE = 300.0


def db(ratio: float) -> float:
    """Convert an amplitude ratio to decibels (``20*log10``).

    This is the paper's Eq. (3): ``SNR_dB = 20 log10(SNR_voltage)``.

    Raises
    ------
    ValueError
        If *ratio* is not strictly positive.
    """
    if ratio <= 0.0:
        raise ValueError(f"amplitude ratio must be > 0, got {ratio!r}")
    return 20.0 * math.log10(ratio)


def from_db(level_db: float) -> float:
    """Inverse of :func:`db`: decibels back to an amplitude ratio."""
    return 10.0 ** (level_db / 20.0)


def power_db(ratio: float) -> float:
    """Convert a power ratio to decibels (``10*log10``)."""
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be > 0, got {ratio!r}")
    return 10.0 * math.log10(ratio)
