"""Unified runtime configuration — every ``REPRO_*`` knob in one place.

The reproduction grew one environment variable at a time: the EM
kernels read ``REPRO_EM_CHUNK_MB``, the campaign runner read
``REPRO_WORKERS`` and ``REPRO_FORCE_POOL``, the simulator read
``REPRO_SIM_BACKEND``, the trace cache read ``REPRO_CACHE_DIR`` /
``REPRO_CACHE_MB`` and the CI jobs read ``REPRO_BENCH_SMOKE`` — each
parsed independently at its point of use.  :class:`ReproConfig` is the
single resolution point for all of them, with an explicit precedence:

    call argument  >  environment variable  >  built-in default

The environment variable *names* are unchanged — they are the config's
inputs, not a parallel configuration path.  Consumers
(:func:`repro.em.chunking.resolve_chunk_bytes`,
:func:`repro.experiments.parallel.resolve_workers`,
:func:`repro.logic.simulator.resolve_backend`,
:meth:`repro.io.cache.TraceCache.from_env`, the fleet scheduler and
the ``repro`` CLI) all read the *active* config, which is re-resolved
from the environment on every access unless an explicit config has
been installed with :func:`use_config` — so tests that flip an
environment variable keep seeing the change immediately, while the
CLI can pin one immutable snapshot for a whole run.

:meth:`ReproConfig.describe` produces the JSON snapshot embedded in
every saved :class:`~repro.experiments.result.RunResult` artifact;
:meth:`ReproConfig.from_snapshot` round-trips it.

See ``docs/CONFIG.md`` for the full knob table.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, fields
from typing import Iterator, Mapping

from repro.errors import (
    ConfigError,
    EmModelError,
    ExperimentError,
    SimulationError,
)

# -- environment variable names (the historical, stable API) -----------

#: Worker-process count for parallel campaign fan-out.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Set to ``1`` to keep the process pool even on single-CPU hosts.
FORCE_POOL_ENV_VAR = "REPRO_FORCE_POOL"

#: Simulation backend: ``auto`` (default), ``bool`` or ``packed``.
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

#: EM-kernel transient-buffer budget, in mebibytes.
CHUNK_ENV_VAR = "REPRO_EM_CHUNK_MB"

#: Trace-cache directory (unset/empty = cache off).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Trace-cache size budget, in mebibytes.
CACHE_MB_ENV = "REPRO_CACHE_MB"

#: Set to ``1`` to select reduced CI smoke sizes everywhere.
SMOKE_ENV_VAR = "REPRO_BENCH_SMOKE"

#: Fleet scoring engine: ``batched`` (default) or ``sequential``.
FLEET_SCORING_ENV_VAR = "REPRO_FLEET_SCORING"

#: Fleet shard-worker count (``1`` = single-process, today's path).
FLEET_SHARDS_ENV_VAR = "REPRO_FLEET_SHARDS"

#: Per-shard ingest queue depth (frames buffered per shard link).
FLEET_INGEST_DEPTH_ENV_VAR = "REPRO_FLEET_INGEST_DEPTH"

#: Shard transport: ``auto`` (default), ``socket`` or ``inline``.
FLEET_TRANSPORT_ENV_VAR = "REPRO_FLEET_TRANSPORT"

#: Fleet trace ingest mode: ``replay`` (prematerialise every campaign
#: up front, then stream it) or ``stream`` (generate chunks live,
#: overlapped with scoring).
FLEET_INGEST_ENV_VAR = "REPRO_FLEET_INGEST"

#: Default detector plugin name (see ``repro detectors``).
DETECTOR_ENV_VAR = "REPRO_DETECTOR"

#: Sensor-array grid for array experiments, as ``RxC`` (e.g. ``4x4``);
#: unset/empty = no override (specs use their own default grid).
SENSOR_ARRAY_ENV_VAR = "REPRO_SENSOR_ARRAY"

# -- built-in defaults -------------------------------------------------

#: Default cap on an EM kernel's transient broadcast buffers [bytes].
DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024

#: Default trace-cache size budget when :data:`CACHE_MB_ENV` is unset [MiB].
DEFAULT_CACHE_MB = 2048

#: Valid simulation backend names.
SIM_BACKENDS = ("auto", "bool", "packed")

#: Valid fleet scoring modes.
FLEET_SCORING_MODES = ("batched", "sequential")

#: Valid shard transports.  ``auto`` picks ``socket`` (real processes
#: + framed unix-socket links) when shards > 1, ``inline`` runs the
#: shard engines in-process over the same wire encoding (CI-friendly
#: determinism checks without fork); forcing either is for tests.
FLEET_TRANSPORTS = ("auto", "socket", "inline")

#: Default per-shard ingest queue depth [frames].
DEFAULT_FLEET_INGEST_DEPTH = 16

#: Valid fleet trace ingest modes.  ``replay`` prematerialises every
#: chip's campaign before the first window is scored; ``stream``
#: drives the acquisition pipeline chunk by chunk while earlier chunks
#: are being scored.  Both deliver bit-identical windows — the choice
#: trades time-to-first-verdict and peak memory, never results.
FLEET_INGEST_MODES = ("replay", "stream")


def _parse_workers(raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ExperimentError(
            f"{WORKERS_ENV_VAR}={raw!r} is not an integer"
        ) from None


def _parse_chunk_mb(raw: str) -> int:
    try:
        return int(float(raw) * 1024 * 1024)
    except ValueError:
        raise EmModelError(f"{CHUNK_ENV_VAR}={raw!r} is not a number") from None


def _parse_cache_mb(raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ExperimentError(
            f"{CACHE_MB_ENV}={raw!r} is not an integer"
        ) from None


def parse_sensor_array(raw: str) -> str | None:
    """Validate a ``RxC`` sensor-array grid string (empty = unset).

    Returns the canonical ``"{rows}x{cols}"`` form, so ``04x4`` and
    ``4x4`` resolve to equal configs (and equal cache keys).
    """
    if not raw:
        return None
    parts = raw.lower().split("x")
    if len(parts) != 2:
        raise ConfigError(
            f"{SENSOR_ARRAY_ENV_VAR}={raw!r} is not of the form RxC "
            "(e.g. 4x4)"
        )
    try:
        rows, cols = (int(p) for p in parts)
    except ValueError:
        raise ConfigError(
            f"{SENSOR_ARRAY_ENV_VAR}={raw!r} has non-integer dimensions"
        ) from None
    if rows < 1 or cols < 1:
        raise ConfigError(
            f"{SENSOR_ARRAY_ENV_VAR}={raw!r}: rows and cols must be >= 1"
        )
    return f"{rows}x{cols}"


def _parse_int_env(env_var: str):
    def parse(raw: str) -> int:
        try:
            return int(raw)
        except ValueError:
            raise ExperimentError(
                f"{env_var}={raw!r} is not an integer"
            ) from None
    return parse


@dataclass(frozen=True)
class ReproConfig:
    """Frozen, validated snapshot of every runtime knob.

    Build one with :meth:`resolve` (argument > environment > default)
    or directly with keyword arguments (argument > default, the
    environment ignored).  Validation runs on construction, so an
    invalid value fails at the configuration boundary, not deep inside
    a kernel.
    """

    #: Campaign worker processes; ``None`` means "one per host CPU".
    workers: int | None = None
    #: Keep the process pool even where the single-CPU auto-degrade
    #: heuristic would run serially.
    force_pool: bool = False
    #: Logic-simulation backend (``auto`` picks packed from batch 64).
    sim_backend: str = "auto"
    #: EM-kernel transient-buffer budget [bytes].
    em_chunk_bytes: int = DEFAULT_CHUNK_BYTES
    #: Trace-cache directory; ``None`` disables the cache.
    cache_dir: str | None = None
    #: Trace-cache LRU size budget [MiB].
    cache_mb: int = DEFAULT_CACHE_MB
    #: Reduced CI smoke sizes (benchmarks, fleet campaign, ``repro
    #: run --all``).
    bench_smoke: bool = False
    #: Fleet scoring engine: ``batched`` scores every chip's windows
    #: through the dense :class:`~repro.framework.batched.
    #: BatchedFleetMonitor`; ``sequential`` keeps the per-session
    #: Python loop.  Both produce bit-identical alarms.
    fleet_scoring: str = "batched"
    #: Fleet shard-worker count.  ``1`` (the default) runs the classic
    #: single-process scheduler; ``N > 1`` spreads chips across N
    #: shard engines behind the framed ingest front-end.
    fleet_shards: int = 1
    #: Per-shard ingest queue depth — frames buffered on a shard link
    #: before the front-end awaits drain (flow control, distinct from
    #: the per-chip window-batch queue_depth backpressure).
    fleet_ingest_depth: int = DEFAULT_FLEET_INGEST_DEPTH
    #: Shard transport: ``auto`` / ``socket`` / ``inline``.
    fleet_transport: str = "auto"
    #: Fleet trace ingest mode: ``replay`` (prematerialised campaigns)
    #: or ``stream`` (live chunked generation overlapping scoring).
    fleet_ingest: str = "replay"
    #: Default detector plugin the framework resolves when no explicit
    #: name is given (``repro detectors`` lists the registry).  The
    #: name is validated against the registry at detector-creation
    #: time, not here — the registry populates on package import and
    #: the config must stay importable without it.
    detector: str = "euclidean"
    #: Sensor-array grid override for array experiments, canonical
    #: ``"RxC"`` or ``None`` (no override).  Like :attr:`detector`, the
    #: value selects among registered experiment geometries; the chip
    #: build validates whether the grid physically fits the die.
    sensor_array: str | None = None
    #: Host CPU count snapshot; ``0`` means "detect now".  The
    #: single-CPU pool auto-degrade decision is taken from this field,
    #: once, instead of re-reading ``os.cpu_count()`` at every
    #: ``run_campaigns`` call.
    host_cpus: int = 0

    def __post_init__(self) -> None:
        if self.workers is not None:
            if not isinstance(self.workers, int) or isinstance(
                self.workers, bool
            ):
                raise ConfigError(
                    f"workers must be an int or None, got {self.workers!r}"
                )
            if self.workers < 1:
                raise ExperimentError(
                    f"worker count must be >= 1, got {self.workers}"
                )
        for name in ("force_pool", "bench_smoke"):
            if not isinstance(getattr(self, name), bool):
                raise ConfigError(
                    f"{name} must be a bool, got {getattr(self, name)!r}"
                )
        if self.sim_backend not in SIM_BACKENDS:
            raise SimulationError(
                f"unknown simulation backend {self.sim_backend!r}; "
                "expected 'auto', 'bool' or 'packed'"
            )
        if not isinstance(self.em_chunk_bytes, int) or isinstance(
            self.em_chunk_bytes, bool
        ):
            raise ConfigError(
                f"em_chunk_bytes must be an int, got {self.em_chunk_bytes!r}"
            )
        if self.em_chunk_bytes <= 0:
            raise EmModelError(
                f"chunk budget must be positive, got {self.em_chunk_bytes}"
            )
        if self.cache_dir is not None and not self.cache_dir:
            object.__setattr__(self, "cache_dir", None)
        if not isinstance(self.cache_mb, int) or isinstance(
            self.cache_mb, bool
        ):
            raise ConfigError(
                f"cache_mb must be an int, got {self.cache_mb!r}"
            )
        if self.cache_mb <= 0:
            raise ExperimentError(
                f"cache size budget must be positive, got {self.cache_mb}"
            )
        if self.fleet_scoring not in FLEET_SCORING_MODES:
            raise ExperimentError(
                f"unknown fleet scoring mode {self.fleet_scoring!r}; "
                f"expected one of {FLEET_SCORING_MODES}"
            )
        for name, floor in (("fleet_shards", 1), ("fleet_ingest_depth", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError(
                    f"{name} must be an int, got {value!r}"
                )
            if value < floor:
                raise ExperimentError(
                    f"{name} must be >= {floor}, got {value}"
                )
        if self.fleet_transport not in FLEET_TRANSPORTS:
            raise ExperimentError(
                f"unknown fleet transport {self.fleet_transport!r}; "
                f"expected one of {FLEET_TRANSPORTS}"
            )
        if self.fleet_ingest not in FLEET_INGEST_MODES:
            raise ExperimentError(
                f"unknown fleet ingest mode {self.fleet_ingest!r}; "
                f"expected one of {FLEET_INGEST_MODES}"
            )
        if not isinstance(self.detector, str) or not self.detector:
            raise ConfigError(
                f"detector must be a non-empty string, got {self.detector!r}"
            )
        if self.sensor_array is not None:
            if not isinstance(self.sensor_array, str):
                raise ConfigError(
                    f"sensor_array must be a str or None, "
                    f"got {self.sensor_array!r}"
                )
            object.__setattr__(
                self, "sensor_array", parse_sensor_array(self.sensor_array)
            )
        if not isinstance(self.host_cpus, int) or isinstance(
            self.host_cpus, bool
        ):
            raise ConfigError(
                f"host_cpus must be an int, got {self.host_cpus!r}"
            )
        if self.host_cpus < 0:
            raise ConfigError(
                f"host_cpus must be >= 0, got {self.host_cpus}"
            )
        if self.host_cpus == 0:
            object.__setattr__(self, "host_cpus", os.cpu_count() or 1)

    # -- resolution ----------------------------------------------------
    @classmethod
    def resolve(
        cls,
        environ: Mapping[str, str] | None = None,
        **overrides,
    ) -> "ReproConfig":
        """Resolve a config: override argument > environment > default.

        *overrides* use the dataclass field names (``workers=4``,
        ``sim_backend="bool"``, ``em_chunk_bytes=...``); an override
        that is present always wins over the environment variable, even
        when the override re-states the default.  *environ* substitutes
        for ``os.environ`` (tests).
        """
        env = os.environ if environ is None else environ
        known = {f.name for f in fields(cls)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigError(
                f"unknown config override(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        values = dict(overrides)

        def from_env(field_name: str, env_var: str, parse) -> None:
            if field_name in values:
                return
            raw = env.get(env_var)
            if raw is not None:
                values[field_name] = parse(raw)

        from_env("workers", WORKERS_ENV_VAR, _parse_workers)
        from_env("force_pool", FORCE_POOL_ENV_VAR, lambda raw: raw == "1")
        from_env("sim_backend", BACKEND_ENV_VAR, str)
        from_env("em_chunk_bytes", CHUNK_ENV_VAR, _parse_chunk_mb)
        from_env("cache_dir", CACHE_DIR_ENV, lambda raw: raw or None)
        from_env("cache_mb", CACHE_MB_ENV, _parse_cache_mb)
        from_env("bench_smoke", SMOKE_ENV_VAR, lambda raw: raw == "1")
        from_env("fleet_scoring", FLEET_SCORING_ENV_VAR, str)
        from_env(
            "fleet_shards",
            FLEET_SHARDS_ENV_VAR,
            _parse_int_env(FLEET_SHARDS_ENV_VAR),
        )
        from_env(
            "fleet_ingest_depth",
            FLEET_INGEST_DEPTH_ENV_VAR,
            _parse_int_env(FLEET_INGEST_DEPTH_ENV_VAR),
        )
        from_env("fleet_transport", FLEET_TRANSPORT_ENV_VAR, str)
        from_env("fleet_ingest", FLEET_INGEST_ENV_VAR, str)
        from_env("detector", DETECTOR_ENV_VAR, str)
        from_env("sensor_array", SENSOR_ARRAY_ENV_VAR, parse_sensor_array)
        return cls(**values)

    # -- derived views -------------------------------------------------
    @property
    def pool_allowed(self) -> bool:
        """Whether campaign fan-out may use a process pool at all.

        On a single-CPU host fork + pickle overhead loses to the serial
        loop (measured 0.79×), so the pool degrades to serial there
        unless :attr:`force_pool` is set.  The decision is a pure
        function of this (frozen) config — it is taken once at
        resolution time, not re-derived from the environment on every
        ``run_campaigns`` call.
        """
        return self.force_pool or self.host_cpus > 1

    def effective_workers(self) -> int:
        """The resolved worker count (``workers`` or one per CPU)."""
        return self.workers if self.workers is not None else self.host_cpus

    def sensor_array_dims(self) -> tuple[int, int] | None:
        """The ``(rows, cols)`` of :attr:`sensor_array`, or ``None``."""
        if self.sensor_array is None:
            return None
        rows, cols = self.sensor_array.split("x")
        return int(rows), int(cols)

    def cache_bytes(self) -> int | None:
        """Cache size budget in bytes, or ``None`` when the cache is off."""
        if self.cache_dir is None:
            return None
        return self.cache_mb * 1024 * 1024

    # -- snapshots -----------------------------------------------------
    def describe(self) -> dict:
        """JSON-encodable snapshot of every knob.

        Embedded in every saved :class:`~repro.experiments.result.
        RunResult` artifact so a result file records the exact runtime
        configuration that produced it;
        :meth:`from_snapshot` reconstructs an equal config.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_snapshot(cls, snapshot: Mapping) -> "ReproConfig":
        """Inverse of :meth:`describe`."""
        known = {f.name for f in fields(cls)}
        unknown = set(snapshot) - known
        if unknown:
            raise ConfigError(
                f"unknown config snapshot key(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        values = dict(snapshot)
        if values.get("cache_dir") is not None:
            values["cache_dir"] = str(values["cache_dir"])
        return cls(**values)


# -- the active config -------------------------------------------------

_ACTIVE: list[ReproConfig] = []


def active_config() -> ReproConfig:
    """The config every consumer reads.

    Returns the innermost config installed with :func:`use_config`
    when one is active; otherwise resolves a fresh snapshot from the
    environment, so flipping a ``REPRO_*`` variable (as the tests do)
    takes effect on the very next call.
    """
    if _ACTIVE:
        return _ACTIVE[-1]
    return ReproConfig.resolve()


@contextlib.contextmanager
def use_config(config: ReproConfig) -> Iterator[ReproConfig]:
    """Pin *config* as the active config for the enclosed block.

    While pinned, the environment is **not** consulted — the installed
    config wins over any ``REPRO_*`` variable (argument > env).  Nests:
    the innermost pin wins; the previous config is restored on exit.
    """
    _ACTIVE.append(config)
    try:
        yield config
    finally:
        _ACTIVE.pop()
