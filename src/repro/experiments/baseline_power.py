"""Baseline: classical power-consumption fingerprinting vs the EM sensor.

The paper's related work dismisses global power fingerprinting
(Agrawal et al. [3]) because stealthy Trojans "are small enough to
evade power consumption based fingerprinting".  Two studies make that
comparison concrete:

* :func:`run_power_baseline` — *runtime self-reference* (this paper's
  setting): the same Eq. (1) pipeline on the EM sensor and on a
  shunt-based supply monitor of the *same die*.  Finding: with a
  golden reference from the very chip under test, even the power
  channel sees the register-bank Trojans — self-reference removes the
  wall that defeats classical fingerprinting.
* :func:`run_crosschip_study` — the *classical* setting [3]: the
  golden model comes from other dies, so ±8 % process variation is in
  the reference.  Finding: small Trojans vanish under the die-to-die
  scatter, exactly the failure mode that motivates the paper's
  post-deployment runtime framework.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.euclidean import EuclideanDetector
from repro.chip.chip import ALL_TROJANS, Chip
from repro.chip.config import ChipConfig
from repro.chip.scenario import Scenario
from repro.experiments.campaign import collect_ed_traces

DIGITAL_TROJANS = ("trojan1", "trojan2", "trojan3", "trojan4")


@dataclass
class BaselineComparison:
    """Separation of each Trojan on the EM sensor vs the power monitor."""

    sensor: dict[str, float]
    power: dict[str, float]
    sensor_floor: float
    power_floor: float

    def format(self) -> str:
        lines = [
            f"{'trojan':<9} {'EM sensor':>10} {'power':>10}   (separation; "
            f"floors {self.sensor_floor:.3f} / {self.power_floor:.3f})"
        ]
        for name in self.sensor:
            lines.append(
                f"{name:<9} {self.sensor[name]:>10.3f} "
                f"{self.power[name]:>10.3f}"
            )
        return "\n".join(lines)

    def advantage(self, trojan: str) -> float:
        """Sensor separation over power separation, floor-relative."""
        s = self.sensor[trojan] / max(self.sensor_floor, 1e-12)
        p = self.power[trojan] / max(self.power_floor, 1e-12)
        return s / max(p, 1e-12)


def build_power_baseline_chip(seed: int = 1) -> Chip:
    """The standard test chip with the shunt power monitor installed."""
    return Chip.build(
        config=ChipConfig(include_power_monitor=True), seed=seed
    )


def run_power_baseline(
    chip: Chip,
    scenario: Scenario,
    n_golden: int = 512,
    n_suspect: int = 256,
    trojans: tuple[str, ...] = DIGITAL_TROJANS,
    power_snr_db: float = 20.0,
) -> BaselineComparison:
    """Fingerprint every Trojan through both channels.

    *chip* must have been built with ``include_power_monitor=True``.
    The power channel's record-level SNR is calibrated to
    *power_snr_db* (a well-built shunt + amplifier bench); the EM
    receivers keep the paper's figures.
    """
    if "power" not in chip.receivers:
        raise ValueError(
            "chip has no power monitor; build it with "
            "ChipConfig(include_power_monitor=True)"
        )
    from repro.chip.calibration import PAPER_SNR_TARGETS, calibrate_scenario

    base_targets = dict(PAPER_SNR_TARGETS.get(scenario.name, {}))
    base_targets["power"] = power_snr_db
    if scenario.noise_overrides is None:
        scenario = calibrate_scenario(chip, scenario, targets=base_targets)
    elif scenario.noise_override_for("power") is None:
        scenario = calibrate_scenario(
            chip, scenario, targets={"power": power_snr_db}
        )
    receivers = ("sensor", "power")
    golden = collect_ed_traces(
        chip,
        scenario,
        n_golden,
        receivers=receivers,
        rng_role="baseline/golden",
    )
    detectors = {
        rcv: EuclideanDetector().fit(golden[rcv]) for rcv in receivers
    }
    sensor_seps: dict[str, float] = {}
    power_seps: dict[str, float] = {}
    for trojan in trojans:
        suspect = collect_ed_traces(
            chip,
            scenario,
            n_suspect,
            trojan_enables=(trojan,),
            receivers=receivers,
            rng_role=f"baseline/{trojan}",
        )
        sensor_seps[trojan] = detectors["sensor"].separation(suspect["sensor"])
        power_seps[trojan] = detectors["power"].separation(suspect["power"])
    assert detectors["sensor"].separation_floor is not None
    assert detectors["power"].separation_floor is not None
    return BaselineComparison(
        sensor=sensor_seps,
        power=power_seps,
        sensor_floor=detectors["sensor"].separation_floor,
        power_floor=detectors["power"].separation_floor,
    )


@dataclass
class CrossChipStudy:
    """Classical fingerprinting vs runtime self-reference, per Trojan."""

    #: Separation of the device-under-test's *clean* traces from the
    #: golden fleet's fingerprint (pure process variation).
    process_gap: float
    #: Separation of the DUT's Trojan-active traces from the fleet
    #: fingerprint, per Trojan (classical detection signal).
    crosschip: dict[str, float]
    #: Self-referenced separations on the same DUT (runtime setting).
    runtime: dict[str, float]
    #: Self-reference sampling floor.
    runtime_floor: float

    def classical_detects(self, trojan: str, margin: float = 1.3) -> bool:
        """Classical verdict: the Trojan must stand out beyond the
        die-to-die scatter the golden fleet already exhibits."""
        return self.crosschip[trojan] > margin * self.process_gap

    def runtime_detects(self, trojan: str) -> bool:
        return self.runtime[trojan] > self.runtime_floor

    def format(self) -> str:
        lines = [
            f"{'trojan':<9} {'cross-chip':>11} {'runtime':>9}   "
            f"(process gap {self.process_gap:.3f}, "
            f"runtime floor {self.runtime_floor:.3f})"
        ]
        for name in self.crosschip:
            c = "detect" if self.classical_detects(name) else "miss  "
            r = "detect" if self.runtime_detects(name) else "miss  "
            lines.append(
                f"{name:<9} {self.crosschip[name]:>7.3f} {c} "
                f"{self.runtime[name]:>6.3f} {r}"
            )
        return "\n".join(lines)


def run_crosschip_study(
    chip: Chip,
    base_scenario: Scenario,
    n_golden: int = 384,
    n_suspect: int = 256,
    trojans: tuple[str, ...] = DIGITAL_TROJANS,
    fleet_seeds: tuple[int, ...] = (11, 12, 13),
    dut_seed: int = 99,
    receiver: str = "sensor",
) -> CrossChipStudy:
    """Classical (cross-die) vs runtime (self-referenced) detection.

    Different dies are emulated by re-seeding the silicon scenario's
    process-variation stream; *base_scenario* must be a silicon-style
    scenario (``process_sigma > 0``).
    """
    from dataclasses import replace

    if base_scenario.process_sigma <= 0:
        raise ValueError("cross-chip study needs process variation")

    def traces_for(seed: int, enables: tuple[str, ...], role: str):
        scen = replace(base_scenario, seed=seed)
        return collect_ed_traces(
            chip,
            scen,
            n_golden if not enables else n_suspect,
            trojan_enables=enables,
            receivers=(receiver,),
            rng_role=role,
        )[receiver]

    # Golden fleet: clean traces from several other dies.
    import numpy as np

    fleet = np.concatenate(
        [traces_for(s, (), f"fleet/{s}") for s in fleet_seeds], axis=0
    )
    fleet_detector = EuclideanDetector().fit(fleet)

    # The DUT's own clean traces sit away from the fleet fingerprint by
    # the process gap; its Trojan traces must beat that to be detected.
    dut_clean = traces_for(dut_seed, (), "dut/clean")
    process_gap = fleet_detector.separation(dut_clean)

    crosschip: dict[str, float] = {}
    runtime: dict[str, float] = {}
    dut_detector = EuclideanDetector().fit(dut_clean)
    for trojan in trojans:
        dut_dirty = traces_for(dut_seed, (trojan,), f"dut/{trojan}")
        crosschip[trojan] = fleet_detector.separation(dut_dirty)
        runtime[trojan] = dut_detector.separation(dut_dirty)
    assert dut_detector.separation_floor is not None
    return CrossChipStudy(
        process_gap=process_gap,
        crosschip=crosschip,
        runtime=runtime,
        runtime_floor=dut_detector.separation_floor,
    )
