"""Parallel campaign runner.

Trojan sweeps are embarrassingly parallel: one acquisition campaign per
(Trojan, scenario, receiver) combination, no shared mutable state.
:func:`run_campaigns` fans a list of :class:`CampaignSpec` across a
``ProcessPoolExecutor`` and returns exactly what the serial loop would
have produced — every random stream is derived from
``(chip.seed ^ scenario.seed, rng_role)`` through :func:`repro.rng.derive`
inside the acquisition engine, so a campaign's traces depend only on its
spec, never on which process ran it or in what order.

Workers rebuild (or, under the ``fork`` start method, inherit) the chip
via :func:`repro.experiments.campaign.shared_chip`; a caller holding a
chip that did not come from that cache can make it available to the
serial path and forked workers with :func:`register_chip`.

Worker count: ``run_campaigns(..., workers=N)``, else the
``REPRO_WORKERS`` environment variable, else ``os.cpu_count()``.  With
one worker (or one campaign) everything runs in-process — same results,
no pool overhead.  The runner also degrades to the serial loop on its
own when the pool cannot win: never more workers than campaigns, and no
pool at all on a single-CPU host (where fork + pickle overhead measured
0.79× of serial; ``REPRO_FORCE_POOL=1`` overrides, for tests that
exercise the pool itself).  See ``docs/PERFORMANCE.md`` for when the
fan-out actually pays off.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable

from repro.chip.chip import Chip
from repro.chip.scenario import Scenario
# WORKERS_ENV_VAR / FORCE_POOL_ENV_VAR are re-exported here for
# backwards compatibility; their resolution lives in repro.config.
from repro.config import FORCE_POOL_ENV_VAR, WORKERS_ENV_VAR, active_config
from repro.errors import ExperimentError
from repro.experiments.campaign import (
    TRACE_COLLECTORS,
    get_or_generate_traces,
    shared_chip,
)

#: Campaign kinds understood by the runner (the collector registry).
CAMPAIGN_KINDS = tuple(TRACE_COLLECTORS)

#: Chips registered by callers, keyed like :func:`shared_chip`.  Forked
#: workers inherit this (copy-on-write), so a registered chip is never
#: rebuilt; spawned workers fall back to :func:`shared_chip`.
_CHIP_CACHE: dict[tuple[int, tuple[str, ...]], Chip] = {}


@dataclass(frozen=True)
class CampaignSpec:
    """One acquisition campaign, fully described by picklable values.

    ``params`` are keyword arguments for the collector chosen by
    ``kind`` (an entry of :data:`repro.experiments.campaign.
    TRACE_COLLECTORS`), stored as a sorted item tuple so specs are
    hashable and order-insensitive.
    """

    name: str
    kind: str
    scenario: Scenario
    chip_seed: int
    chip_trojans: tuple[str, ...]
    params: tuple[tuple[str, Any], ...]


def campaign_spec(
    name: str,
    kind: str,
    chip: Chip,
    scenario: Scenario,
    **params: Any,
) -> CampaignSpec:
    """Build a :class:`CampaignSpec` for *chip* under *scenario*.

    The campaign's random streams are labelled by its ``rng_role``;
    when the caller does not pass one, a role unique to *name* is
    derived so distinct campaigns never share a stream.
    """
    if kind not in CAMPAIGN_KINDS:
        raise ExperimentError(
            f"unknown campaign kind {kind!r}; expected one of {CAMPAIGN_KINDS}"
        )
    params.setdefault("rng_role", f"campaign/{name}")
    register_chip(chip)
    return CampaignSpec(
        name=name,
        kind=kind,
        scenario=scenario,
        chip_seed=chip.seed,
        chip_trojans=tuple(chip.trojans),
        params=tuple(sorted(params.items())),
    )


def register_chip(chip: Chip) -> None:
    """Make *chip* available to the runner without a rebuild.

    The serial path and ``fork``-started workers resolve the chip from
    this cache; workers on spawn-only platforms rebuild an identical
    chip from ``(seed, trojans)`` via :func:`shared_chip`.
    """
    _CHIP_CACHE[(chip.seed, tuple(chip.trojans))] = chip


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: argument, ``REPRO_WORKERS``, cpu count.

    Resolution goes through :func:`repro.config.active_config`, so a
    config pinned with :func:`repro.config.use_config` beats the
    environment variable.
    """
    if workers is None:
        workers = active_config().effective_workers()
    if workers < 1:
        raise ExperimentError(f"worker count must be >= 1, got {workers}")
    return workers


def _resolve_chip(spec: CampaignSpec) -> Chip:
    chip = _CHIP_CACHE.get((spec.chip_seed, spec.chip_trojans))
    if chip is None:
        chip = shared_chip(spec.chip_seed, spec.chip_trojans)
    return chip


def _run_one(spec: CampaignSpec) -> Any:
    """Execute one campaign (also the worker-process entry point).

    Routed through :func:`~repro.experiments.campaign.
    get_or_generate_traces`, so when ``REPRO_CACHE_DIR`` is set every
    worker consults — and, on a miss, populates — the shared
    content-addressed cache.  Writes are atomic renames, so concurrent
    workers generating the same bundle race benignly (last writer
    wins with identical bytes).
    """
    chip = _resolve_chip(spec)
    return get_or_generate_traces(
        chip, spec.scenario, spec.kind, **dict(spec.params)
    )


def run_campaigns(
    specs: Iterable[CampaignSpec],
    workers: int | None = None,
) -> dict[str, Any]:
    """Run every campaign and return ``{spec.name: collector result}``.

    Results are bit-identical to running the specs serially in a loop:
    campaigns share nothing, and all randomness is seeded from the spec
    itself.  The returned dict preserves the input order.
    """
    spec_list = list(specs)
    names = [spec.name for spec in spec_list]
    if len(set(names)) != len(names):
        raise ExperimentError(f"campaign names must be unique, got {names}")
    # More workers than campaigns only adds idle processes; a pool on a
    # single CPU only adds fork + pickle overhead (measured 0.79× of
    # serial) — degrade to the bit-identical serial loop in both cases.
    # The single-CPU/force-pool decision is taken once by ReproConfig
    # (config override > REPRO_FORCE_POOL), not re-read per call here.
    n_workers = min(resolve_workers(workers), len(spec_list))
    if n_workers > 1 and not active_config().pool_allowed:
        n_workers = 1
    if n_workers <= 1 or len(spec_list) <= 1:
        return {spec.name: _run_one(spec) for spec in spec_list}
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
        futures = [pool.submit(_run_one, spec) for spec in spec_list]
        return {
            spec.name: fut.result()
            for spec, fut in zip(spec_list, futures)
        }
