"""Declarative experiment registry behind the ``repro`` CLI.

One :class:`ExperimentSpec` per reproduced table/figure: the spec
names the experiment, states which measurement scenario it needs,
carries both a full-size and a smoke-size parameter set, and declares
the JSON schema of the artifact payload.  :func:`run_experiment` is
the single execution path — it pins the resolved
:class:`~repro.config.ReproConfig`, scopes a fresh
:class:`~repro.obs.MetricsRegistry` to the run, invokes the driver,
and returns a validated
:class:`~repro.experiments.result.RunResult`.

The runners are thin adapters over the existing drivers
(:func:`~repro.experiments.table1.run_table1` & co.) — the drivers
stay the API for programmatic use and keep producing the exact same
numbers; the registry only standardises invocation and artifact
shape.  ``examples/reproduce_paper.py`` and CI's ``cli-smoke`` job
both run through here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.chip import array_scenario, silicon_scenario, simulation_scenario
from repro.config import ReproConfig, active_config, use_config
from repro.errors import ExperimentError
from repro.experiments.ablation import sweep_pca_dimensions, threshold_study
from repro.experiments.baseline_power import (
    build_power_baseline_chip,
    run_power_baseline,
)
from repro.experiments.campaign import (
    calibrated,
    shared_array_chip,
    shared_chip,
)
from repro.experiments.euclidean import run_euclidean_experiment
from repro.experiments.fig4 import run_a2_spectrum
from repro.experiments.fig6 import run_fig6_histograms, run_fig6_spectra
from repro.experiments.latency import run_detection_latency
from repro.experiments.leakage import (
    run_fixed_vs_random_tvla,
    run_trojan_tvla,
)
from repro.experiments.localization import (
    run_array_localization,
    run_localization,
)
from repro.experiments.result import RunResult
from repro.experiments.snr import run_snr_experiment
from repro.experiments.table1 import run_table1
from repro.experiments.tournament import run_detector_tournament
from repro.obs import use_metrics


@dataclass
class RunContext:
    """What a runner gets: the pinned config, the seed, chip helpers."""

    config: ReproConfig
    seed: int
    smoke: bool

    def chip(self):
        """The shared (memoised) standard test chip for this seed."""
        return shared_chip(seed=self.seed)

    def scenario(self, kind: str):
        """A calibrated measurement scenario (``sim`` or ``sil``)."""
        base = {
            "sim": simulation_scenario,
            "sil": silicon_scenario,
        }[kind]()
        return calibrated(self.chip(), base)


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: driver + sizes + artifact schema."""

    name: str
    title: str
    #: Measurement scenario the runner uses: "sim", "sil" or "none".
    scenario: str
    runner: Callable[..., tuple[dict, str]]
    params: Mapping = field(default_factory=dict)
    smoke_params: Mapping = field(default_factory=dict)
    schema: Mapping = field(default_factory=dict)
    paper_ref: str = ""

    def run_params(self, smoke: bool) -> dict:
        return dict(self.smoke_params if smoke else self.params)


REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.name in REGISTRY:
        raise ExperimentError(f"duplicate experiment spec {spec.name!r}")
    REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    try:
        return REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; known: {sorted(REGISTRY)}"
        ) from None


def all_specs() -> tuple[ExperimentSpec, ...]:
    return tuple(REGISTRY[name] for name in sorted(REGISTRY))


def run_experiment(
    name: str,
    smoke: bool = False,
    seed: int = 1,
    config: ReproConfig | None = None,
    params: Mapping | None = None,
) -> RunResult:
    """Run one registered experiment and return its validated artifact.

    *config* defaults to the active configuration (environment +
    defaults) and is pinned for the whole run, so every knob the
    drivers consult is decided once up front and recorded verbatim in
    the artifact.  A fresh metrics registry is scoped to the run; the
    snapshot that lands in the artifact covers exactly this run.
    """
    spec = get_spec(name)
    cfg = config if config is not None else active_config()
    run_params = spec.run_params(smoke)
    if params:
        unknown = sorted(set(params) - set(run_params))
        if unknown:
            raise ExperimentError(
                f"unknown parameters {unknown} for experiment {name!r}"
            )
        run_params.update(params)
    ctx = RunContext(config=cfg, seed=seed, smoke=smoke)
    start = time.perf_counter()
    with use_config(cfg), use_metrics() as metrics:
        payload, text = spec.runner(ctx, **run_params)
        snapshot = metrics.snapshot()
    result = RunResult(
        spec=spec.name,
        scenario=spec.scenario,
        seed=seed,
        smoke=smoke,
        config=cfg.describe(),
        metrics=snapshot,
        payload=payload,
        text=text,
        elapsed_seconds=time.perf_counter() - start,
    )
    return result.validate(spec.schema)


def validate_artifact(result: RunResult) -> RunResult:
    """Validate a (possibly loaded) artifact against its spec schema."""
    return result.validate(get_spec(result.spec).schema)


# ---------------------------------------------------------------------------
# Runners.  Each returns (payload, formatted_text); payloads hold only
# JSON scalars/dicts/lists and reproduce the numbers of a direct
# driver call with the same arguments, bit for bit.


def _run_table1(ctx: RunContext) -> tuple[dict, str]:
    result = run_table1(ctx.chip())
    payload = {
        "rows": {
            row.circuit: {
                "gates": row.gate_count,
                "percent": row.percentage,
                "area_based": row.is_area_percentage,
            }
            for row in result.rows
        }
    }
    return payload, result.format()


def _run_snr(ctx: RunContext, scenario: str, n_cycles: int, batch: int):
    result = run_snr_experiment(
        ctx.chip(), ctx.scenario(scenario), n_cycles=n_cycles, batch=batch
    )
    payload = {
        "scenario": result.scenario,
        "snr_db": {
            name: res.snr_db for name, res in result.per_receiver.items()
        },
    }
    return payload, result.format()


def _run_euclidean(
    ctx: RunContext,
    receiver: str,
    n_golden: int,
    n_suspect: int,
    trojans: tuple,
):
    result = run_euclidean_experiment(
        ctx.chip(),
        ctx.scenario("sim"),
        receiver=receiver,
        n_golden=n_golden,
        n_suspect=n_suspect,
        trojans=tuple(trojans),
    )
    payload = {
        "receiver": result.receiver,
        "threshold": result.threshold,
        "separations": dict(result.separations),
    }
    return payload, result.format()


def _run_fig4(ctx: RunContext, n_cycles: int):
    result = run_a2_spectrum(ctx.chip(), ctx.scenario("sim"), n_cycles=n_cycles)
    payload = {
        "trigger_mhz": result.trigger_frequency / 1e6,
        "gain": result.magnitude_ratio_at_trigger(),
        "detected": result.detected,
    }
    return payload, result.format()


def _run_fig6_histograms(
    ctx: RunContext, receivers: tuple, n_golden: int, n_suspect: int
):
    payload: dict = {"receivers": {}}
    texts = []
    for receiver in receivers:
        result = run_fig6_histograms(
            ctx.chip(),
            ctx.scenario("sil"),
            receiver,
            n_golden=n_golden,
            n_suspect=n_suspect,
        )
        payload["receivers"][receiver] = {
            name: {
                "overlap": panel.overlap,
                "peak_shift_sigma": panel.peak_shift_sigma,
                "separable": panel.peaks_separable,
            }
            for name, panel in result.panels.items()
        }
        texts.append(result.format())
    return payload, "\n\n".join(texts)


def _run_fig6_spectra(ctx: RunContext, n_cycles: int):
    result = run_fig6_spectra(
        ctx.chip(), ctx.scenario("sil"), n_cycles=n_cycles
    )
    payload = {
        "panels": {
            name: {
                "low_freq_energy_ratio": p.low_freq_energy_ratio,
                "total_energy_ratio": p.total_energy_ratio,
            }
            for name, p in result.panels.items()
        }
    }
    return payload, result.format()


def _run_latency(
    ctx: RunContext,
    n_reference: int,
    golden_prefix: int,
    horizon: int,
    window: int,
    confirm: int,
):
    result = run_detection_latency(
        ctx.chip(),
        ctx.scenario("sim"),
        n_reference=n_reference,
        golden_prefix=golden_prefix,
        horizon=horizon,
        window=window,
        confirm=confirm,
    )
    payload = {
        "horizon": result.horizon,
        "window_seconds": result.window_seconds,
        "false_alarms_on_golden": result.false_alarms_on_golden,
        "latency_windows": dict(result.latency_windows),
    }
    return payload, result.format()


def _run_ablation(
    ctx: RunContext, n_golden: int, n_suspect: int, depths: tuple
):
    chip, scenario = ctx.chip(), ctx.scenario("sim")
    pca = sweep_pca_dimensions(
        chip,
        scenario,
        depths=tuple(depths),
        n_golden=n_golden,
        n_suspect=n_suspect,
    )
    thresholds = threshold_study(
        chip, scenario, n_golden=n_golden, n_suspect=n_suspect
    )
    payload = {
        "pca": [
            {
                "n_components": p.n_components,
                "auc": p.auc,
                "separation": p.separation,
            }
            for p in pca
        ],
        "thresholds": [
            {
                "rule": t.rule,
                "threshold": t.threshold,
                "true_positive_rate": t.true_positive_rate,
                "false_positive_rate": t.false_positive_rate,
            }
            for t in thresholds
        ],
    }
    lines = ["PCA depth sweep (trojan4)"]
    for p in pca:
        depth = "full" if p.n_components is None else str(p.n_components)
        lines.append(
            f"  k={depth:<5} auc={p.auc:.3f} separation={p.separation:.3f}"
        )
    lines.append("threshold study (trojan4)")
    for t in thresholds:
        lines.append(
            f"  {t.rule:<8} thr={t.threshold:.3f} "
            f"tpr={t.true_positive_rate:.3f} fpr={t.false_positive_rate:.3f}"
        )
    return payload, "\n".join(lines)


def _run_leakage(ctx: RunContext, n_traces: int, trojan: str):
    chip, scenario = ctx.chip(), ctx.scenario("sim")
    fvr = run_fixed_vs_random_tvla(chip, scenario, n_traces=n_traces)
    gvt = run_trojan_tvla(chip, scenario, trojan, n_traces=n_traces)

    def _report(rep):
        return {
            "max_abs_t": rep.result.max_abs_t,
            "leaky_samples": rep.result.leaky_samples,
            "leaks": rep.result.leaks,
        }

    payload = {
        "fixed_vs_random": _report(fvr),
        "golden_vs_trojan": {"trojan": trojan, **_report(gvt)},
    }
    return payload, "\n".join([fvr.format(), gvt.format()])


def _run_localization(
    ctx: RunContext, trojans: tuple, n_cycles: int, grid: int
):
    result = run_localization(
        ctx.chip(), trojans=tuple(trojans), n_cycles=n_cycles, grid=grid
    )
    payload = {
        "located": dict(result.located_region),
        "hit": {t: result.localised(t) for t in result.located_region},
    }
    return payload, result.format()


def _run_baseline_power(
    ctx: RunContext, n_golden: int, n_suspect: int, trojans: tuple
):
    chip = build_power_baseline_chip(seed=ctx.seed)
    result = run_power_baseline(
        chip,
        simulation_scenario(),
        n_golden=n_golden,
        n_suspect=n_suspect,
        trojans=tuple(trojans),
    )
    payload = {
        "sensor": dict(result.sensor),
        "power": dict(result.power),
        "sensor_floor": result.sensor_floor,
        "power_floor": result.power_floor,
    }
    return payload, result.format()


def _run_tournament(
    ctx: RunContext,
    n_reference: int,
    n_eval: int,
    n_suspect: int,
    noise_scales: tuple,
):
    result = run_detector_tournament(
        ctx.chip(),
        ctx.scenario("sim"),
        n_reference=n_reference,
        n_eval=n_eval,
        n_suspect=n_suspect,
        noise_scales=tuple(noise_scales),
    )
    return result.payload(), result.format()


def _run_localization_array(
    ctx: RunContext,
    rows: int,
    cols: int,
    trojans: tuple,
    n_golden: int,
    n_eval: int,
    n_suspect: int,
    batch: int,
    fieldmap_cycles: int,
    fieldmap_grid: int,
):
    dims = ctx.config.sensor_array_dims()
    if dims is not None:
        rows, cols = dims
    chip = shared_array_chip(seed=ctx.seed, rows=rows, cols=cols)
    result = run_array_localization(
        chip,
        array_scenario(rows, cols),
        trojans=tuple(trojans),
        n_golden=n_golden,
        n_eval=n_eval,
        n_suspect=n_suspect,
        batch=batch,
        fieldmap_cycles=fieldmap_cycles,
        fieldmap_grid=fieldmap_grid,
    )
    return result.payload(), result.format()


DIGITAL_TROJANS = ("trojan1", "trojan2", "trojan3", "trojan4")

register(ExperimentSpec(
    name="table1",
    title="Table I: Trojan gate counts and area fractions",
    scenario="none",
    runner=_run_table1,
    schema={"rows": {"*": {
        "gates": "int", "percent": "number", "area_based": "bool",
    }}},
    paper_ref="Table I",
))

_SNR_SCHEMA = {"scenario": "str", "snr_db": {"*": "number"}}

register(ExperimentSpec(
    name="snr",
    title="Receiver SNR, simulation scenario",
    scenario="sim",
    runner=_run_snr,
    params={"scenario": "sim", "n_cycles": 1024, "batch": 8},
    smoke_params={"scenario": "sim", "n_cycles": 256, "batch": 4},
    schema=_SNR_SCHEMA,
    paper_ref="Section IV-B",
))

register(ExperimentSpec(
    name="snr_silicon",
    title="Receiver SNR, silicon scenario",
    scenario="sil",
    runner=_run_snr,
    params={"scenario": "sil", "n_cycles": 1024, "batch": 8},
    smoke_params={"scenario": "sil", "n_cycles": 256, "batch": 4},
    schema=_SNR_SCHEMA,
    paper_ref="Section V-A",
))

register(ExperimentSpec(
    name="euclidean",
    title="Euclidean-distance Trojan separations",
    scenario="sim",
    runner=_run_euclidean,
    params={
        "receiver": "sensor",
        "n_golden": 1024,
        "n_suspect": 384,
        "trojans": DIGITAL_TROJANS,
    },
    smoke_params={
        "receiver": "sensor",
        "n_golden": 128,
        "n_suspect": 64,
        "trojans": ("trojan4",),
    },
    schema={
        "receiver": "str",
        "threshold": "number",
        "separations": {"*": "number"},
    },
    paper_ref="Section IV-C",
))

register(ExperimentSpec(
    name="fig4",
    title="Fig. 4: A2 trigger-line spectrum inspection",
    scenario="sim",
    runner=_run_fig4,
    params={"n_cycles": 2048},
    smoke_params={"n_cycles": 768},
    schema={"trigger_mhz": "number", "gain": "number", "detected": "bool"},
    paper_ref="Figure 4",
))

register(ExperimentSpec(
    name="fig6_histograms",
    title="Fig. 6(a)-(h): distance histograms, probe vs sensor",
    scenario="sil",
    runner=_run_fig6_histograms,
    params={"receivers": ("probe", "sensor"), "n_golden": 800,
            "n_suspect": 800},
    smoke_params={"receivers": ("sensor",), "n_golden": 160,
                  "n_suspect": 160},
    schema={"receivers": {"*": {"*": {
        "overlap": "number",
        "peak_shift_sigma": "number",
        "separable": "bool",
    }}}},
    paper_ref="Figure 6(a)-(h)",
))

register(ExperimentSpec(
    name="fig6_spectra",
    title="Fig. 6(i)-(l): sensor spectra per Trojan",
    scenario="sil",
    runner=_run_fig6_spectra,
    params={"n_cycles": 2048},
    smoke_params={"n_cycles": 768},
    schema={"panels": {"*": {
        "low_freq_energy_ratio": "number",
        "total_energy_ratio": "number",
    }}},
    paper_ref="Figure 6(i)-(l)",
))

register(ExperimentSpec(
    name="latency",
    title="Runtime detection latency per Trojan",
    scenario="sim",
    runner=_run_latency,
    params={"n_reference": 384, "golden_prefix": 64, "horizon": 512,
            "window": 32, "confirm": 3},
    smoke_params={"n_reference": 128, "golden_prefix": 32, "horizon": 96,
                  "window": 16, "confirm": 2},
    schema={
        "horizon": "int",
        "window_seconds": "number",
        "false_alarms_on_golden": "int",
        "latency_windows": {"*": "int?"},
    },
    paper_ref="Section V (runtime framing)",
))

register(ExperimentSpec(
    name="ablation",
    title="PCA-depth sweep and threshold-rule study",
    scenario="sim",
    runner=_run_ablation,
    params={"n_golden": 384, "n_suspect": 256,
            "depths": (None, 2, 4, 8, 16, 32)},
    smoke_params={"n_golden": 128, "n_suspect": 96,
                  "depths": (None, 4, 16)},
    schema={
        "pca": [{
            "n_components": "int?",
            "auc": "number",
            "separation": "number",
        }],
        "thresholds": [{
            "rule": "str",
            "threshold": "number",
            "true_positive_rate": "number",
            "false_positive_rate": "number",
        }],
    },
    paper_ref="Section VI (design space)",
))

_TVLA_SCHEMA = {
    "max_abs_t": "number", "leaky_samples": "int", "leaks": "bool",
}

register(ExperimentSpec(
    name="leakage",
    title="TVLA: fixed-vs-random and golden-vs-Trojan t-tests",
    scenario="sim",
    runner=_run_leakage,
    params={"n_traces": 400, "trojan": "trojan4"},
    smoke_params={"n_traces": 128, "trojan": "trojan4"},
    schema={
        "fixed_vs_random": _TVLA_SCHEMA,
        "golden_vs_trojan": {"trojan": "str", **_TVLA_SCHEMA},
    },
    paper_ref="side-channel leakage cross-check",
))

register(ExperimentSpec(
    name="localization",
    title="Trojan localisation via |B| difference maps",
    scenario="none",
    runner=_run_localization,
    params={"trojans": ("trojan1", "trojan2", "trojan4"),
            "n_cycles": 48, "grid": 32},
    # The grid must stay at 32: the thin trojan3/a2 floorplan strips
    # need a grid row inside them for region scoring.
    smoke_params={"trojans": ("trojan4",), "n_cycles": 24, "grid": 32},
    schema={"located": {"*": "str"}, "hit": {"*": "bool"}},
    paper_ref="Section II (location awareness)",
))

_HEATMAP = [["number"]]

register(ExperimentSpec(
    name="localization_array",
    title="Sensor-array Trojan localisation (per-coil anomaly heatmap)",
    scenario="sim",
    runner=_run_localization_array,
    params={
        "rows": 4, "cols": 4,
        "trojans": ("trojan1", "trojan2", "trojan3", "trojan4", "a2"),
        "n_golden": 256, "n_eval": 128, "n_suspect": 128,
        "batch": 32, "fieldmap_cycles": 48, "fieldmap_grid": 32,
    },
    smoke_params={
        "rows": 4, "cols": 4,
        "trojans": ("trojan1", "trojan2", "trojan3", "trojan4", "a2"),
        "n_golden": 96, "n_eval": 64, "n_suspect": 64,
        "batch": 32, "fieldmap_cycles": 24, "fieldmap_grid": 24,
    },
    schema={
        "rows": "int", "cols": "int",
        "detector": "str", "reference_free": "bool",
        "channels": ["str"],
        "golden": {
            "heatmap": _HEATMAP,
            "detected_channels": "int",
            "flagged": "bool",
        },
        "trojans": {"*": {
            "heatmap": _HEATMAP,
            "argmax_cell": ["int"],
            "true_cell": ["int"],
            "hit1": "bool",
            "hit4": "bool",
            "centroid_distance_um": "number",
            "detected_channels": "int",
        }},
        "hit1": "int", "hit4": "int",
        "fieldmaps": {"*": {
            "xs": ["number"], "ys": ["number"], "magnitude": _HEATMAP,
        }},
    },
    paper_ref="sensor-array follow-up (Section VII outlook)",
))

register(ExperimentSpec(
    name="detector_tournament",
    title="ROC/AUC tournament across the detector registry",
    scenario="sim",
    runner=_run_tournament,
    params={
        "n_reference": 384,
        "n_eval": 384,
        "n_suspect": 192,
        "noise_scales": (0.5, 1.0, 2.0),
    },
    smoke_params={
        "n_reference": 128,
        "n_eval": 128,
        "n_suspect": 64,
        "noise_scales": (1.0,),
    },
    schema={
        "receiver": "str",
        "noise_scales": ["number"],
        "scenarios": ["str"],
        "detectors": {"*": {"reference_free": "bool", "summary": "str"}},
        "sweep": {"*": {"*": {"*": {
            "auc": "number",
            "detected": "bool",
            "n_neg": "int",
            "n_pos": "int",
            "roc": [{"fpr": "number", "tpr": "number"}],
        }}}},
    },
    paper_ref="detector design space (Section VI framing)",
))

register(ExperimentSpec(
    name="baseline_power",
    title="EM sensor vs shunt power monitor baseline",
    scenario="sim",
    runner=_run_baseline_power,
    params={"n_golden": 512, "n_suspect": 256, "trojans": DIGITAL_TROJANS},
    smoke_params={"n_golden": 128, "n_suspect": 96,
                  "trojans": ("trojan4",)},
    schema={
        "sensor": {"*": "number"},
        "power": {"*": "number"},
        "sensor_floor": "number",
        "power_floor": "number",
    },
    paper_ref="baseline comparison",
))
