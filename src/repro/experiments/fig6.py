"""Figure 6 — fabricated-chip Trojan detection, all twelve panels.

* Panels (a)–(d): Euclidean-distance histograms from the **external
  probe** — golden and Trojan-active distributions overlap and their
  peaks are not separable.
* Panels (e)–(h): the same from the **on-chip sensor** — bodies still
  overlap but the peaks separate (T1's goes flat/bimodal because the
  carrier phase wanders against the encryption windows).
* Panels (i)–(l): sensor FFT spectra — T1 adds low-frequency energy,
  T2 and T4 lift many spots (T4 > T2), T3 stays indistinct.

All panels run under the *silicon* scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.histogram import (
    DistanceHistogram,
    distance_histogram,
    histogram_overlap,
    peak_separation,
)
from repro.analysis.spectral import Spectrum, amplitude_spectra, band_energy
from repro.chip.chip import Chip
from repro.chip.scenario import Scenario
from repro.experiments.campaign import (
    campaign_pipeline_key,
    get_or_fit_detector,
)
from repro.experiments.parallel import campaign_spec, run_campaigns
from repro.io.cache import configured_cache

DIGITAL_TROJANS = ("trojan1", "trojan2", "trojan3", "trojan4")


@dataclass
class Fig6Panel:
    """One histogram panel of Fig. 6(a)–(h)."""

    trojan: str
    receiver: str
    histogram: DistanceHistogram
    golden_distances: np.ndarray
    trojan_distances: np.ndarray
    overlap: float
    peak_shift_sigma: float

    @property
    def peaks_separable(self) -> bool:
        """The paper's criterion: distribution-peak shift observable."""
        return self.peak_shift_sigma > 1.0


@dataclass
class Fig6HistogramResult:
    """Panels (a)-(d) or (e)-(h) for one receiver."""

    receiver: str
    panels: dict[str, Fig6Panel]

    def format(self) -> str:
        lines = [f"Fig. 6 histograms ({self.receiver})"]
        for name, panel in self.panels.items():
            lines.append(
                f"  {name:<9} overlap={panel.overlap:.3f} "
                f"peak shift={panel.peak_shift_sigma:5.2f} sigma "
                f"separable={panel.peaks_separable}"
            )
        return "\n".join(lines)


def run_fig6_histograms(
    chip: Chip,
    scenario: Scenario,
    receiver: str,
    n_golden: int = 2000,
    n_suspect: int = 2000,
    trojans: tuple[str, ...] = DIGITAL_TROJANS,
    bins: int = 80,
    workers: int | None = None,
) -> Fig6HistogramResult:
    """Reproduce one histogram row of Figure 6 for *receiver*.

    The golden and per-Trojan acquisition campaigns are independent, so
    they fan out across *workers* processes (see
    :mod:`repro.experiments.parallel`); results match the serial loop
    exactly.
    """
    specs = [
        campaign_spec(
            "golden",
            "ed",
            chip,
            scenario,
            n_traces=n_golden,
            receivers=(receiver,),
            rng_role="fig6/golden",
        )
    ]
    specs += [
        campaign_spec(
            name,
            "ed",
            chip,
            scenario,
            n_traces=n_suspect,
            trojan_enables=(name,),
            receivers=(receiver,),
            rng_role=f"fig6/{name}",
        )
        for name in trojans
    ]
    traces = run_campaigns(specs, workers=workers)
    golden = traces["golden"][receiver]
    detector = get_or_fit_detector(
        chip, scenario, "ed", dict(specs[0].params), golden
    )
    golden_d = detector.golden_distances
    assert golden_d is not None
    panels: dict[str, Fig6Panel] = {}
    for name in trojans:
        suspect = traces[name][receiver]
        trojan_d = detector.distances(suspect)
        hist = distance_histogram(golden_d, trojan_d, bins=bins)
        panels[name] = Fig6Panel(
            trojan=name,
            receiver=receiver,
            histogram=hist,
            golden_distances=golden_d,
            trojan_distances=trojan_d,
            overlap=histogram_overlap(hist),
            peak_shift_sigma=peak_separation(hist, golden_d),
        )
    return Fig6HistogramResult(receiver=receiver, panels=panels)


@dataclass
class Fig6SpectrumPanel:
    """One spectrum panel of Fig. 6(i)-(l)."""

    trojan: str
    golden: Spectrum
    suspect: Spectrum
    #: Extra energy below 4 MHz relative to golden (T1's signature).
    low_freq_energy_ratio: float
    #: Total spectral energy ratio suspect/golden (T2/T4 lift spots).
    total_energy_ratio: float


@dataclass
class Fig6SpectraResult:
    """Panels (i)-(l)."""

    panels: dict[str, Fig6SpectrumPanel] = field(default_factory=dict)

    def format(self) -> str:
        lines = ["Fig. 6 sensor spectra"]
        for name, p in self.panels.items():
            lines.append(
                f"  {name:<9} low-freq energy x{p.low_freq_energy_ratio:7.2f} "
                f"total energy x{p.total_energy_ratio:6.2f}"
            )
        return "\n".join(lines)


def run_fig6_spectra(
    chip: Chip,
    scenario: Scenario,
    n_cycles: int = 4096,
    receiver: str = "sensor",
    trojans: tuple[str, ...] = DIGITAL_TROJANS,
    low_band_hz: float = 4e6,
    workers: int | None = None,
) -> Fig6SpectraResult:
    """Reproduce the spectral row of Figure 6."""
    specs = [
        campaign_spec(
            "golden",
            "spectral",
            chip,
            scenario,
            n_cycles=n_cycles,
            receivers=(receiver,),
            rng_role="fig6s/golden",
        )
    ]
    specs += [
        campaign_spec(
            name,
            "spectral",
            chip,
            scenario,
            n_cycles=n_cycles,
            trojan_enables=(name,),
            receivers=(receiver,),
            rng_role=f"fig6s/{name}",
        )
        for name in trojans
    ]
    fs = chip.config.fs
    # The figure's averaged spectra are a derived artifact of the
    # golden campaign: on a warm cache they load directly and the
    # acquisition campaigns never run at all.
    cache = configured_cache()
    spectra_key = campaign_pipeline_key(
        chip, scenario, "spectral", dict(specs[0].params)
    ).derived("fig6-spectra", trojans=list(trojans))
    spectra: list[Spectrum] | None = None
    if cache is not None:
        stored = cache.get_json(spectra_key)
        if stored is not None:
            freqs = np.asarray(stored["freqs"], dtype=np.float64)
            spectra = [
                Spectrum(
                    freqs=freqs,
                    amplitude=np.asarray(amp, dtype=np.float64),
                )
                for amp in stored["amplitudes"]
            ]
    if spectra is None:
        records = run_campaigns(specs, workers=workers)
        # Golden plus every Trojan record in one batched rfft dispatch.
        spectra = amplitude_spectra(
            [records["golden"][receiver]]
            + [records[name][receiver] for name in trojans],
            fs,
        )
        if cache is not None:
            cache.put_json(
                spectra_key,
                {
                    "freqs": spectra[0].freqs,
                    "amplitudes": [s.amplitude for s in spectra],
                },
            )
    golden = spectra[0]
    g_low = band_energy(golden, 1e5, low_band_hz)
    g_tot = band_energy(golden, 1e5, fs / 2)
    result = Fig6SpectraResult()
    for name, spec in zip(trojans, spectra[1:]):
        result.panels[name] = Fig6SpectrumPanel(
            trojan=name,
            golden=golden,
            suspect=spec,
            low_freq_energy_ratio=band_energy(spec, 1e5, low_band_hz) / max(g_low, 1e-30),
            total_energy_ratio=band_energy(spec, 1e5, fs / 2) / max(g_tot, 1e-30),
        )
    return result
