"""Experiment drivers — one per paper table/figure.

Each driver owns the full recipe of one reported result (workload,
acquisition, analysis, expected shape) and returns a plain-dataclass
result that both the benchmark harness and the tests consume.  The
mapping to the paper:

=====================  ==============================================
:mod:`~repro.experiments.table1`     Table I (Trojan sizes)
:mod:`~repro.experiments.snr`        Sections IV-B and V-A (SNR)
:mod:`~repro.experiments.euclidean`  Section IV-C (simulated EDs)
:mod:`~repro.experiments.fig4`       Figure 4 (A2 spectrum)
:mod:`~repro.experiments.fig6`       Figure 6 (histograms + spectra)
:mod:`~repro.experiments.ablation`   Design-space sweeps (Section VI)
=====================  ==============================================
"""

from repro.experiments.campaign import (
    DEFAULT_KEY,
    TRACE_COLLECTORS,
    calibrated,
    clear_campaign_caches,
    collect_ed_traces,
    collect_raw_records,
    collect_spectral_record,
    get_or_fit_detector,
    get_or_generate_traces,
    shared_array_chip,
    shared_chip,
)
from repro.experiments.parallel import (
    CampaignSpec,
    campaign_spec,
    register_chip,
    resolve_workers,
    run_campaigns,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.snr import SnrExperimentResult, run_snr_experiment
from repro.experiments.euclidean import (
    EuclideanExperimentResult,
    run_euclidean_experiment,
)
from repro.experiments.fig4 import A2SpectrumResult, run_a2_spectrum
from repro.experiments.fig6 import (
    Fig6HistogramResult,
    Fig6SpectraResult,
    run_fig6_histograms,
    run_fig6_spectra,
)
from repro.experiments.baseline_power import (
    run_crosschip_study,
    run_power_baseline,
)
from repro.experiments.latency import run_detection_latency
from repro.experiments.localization import (
    ArrayLocalizationResult,
    run_array_localization,
    run_localization,
)
from repro.experiments.leakage import (
    run_fixed_vs_random_tvla,
    run_trojan_tvla,
)
from repro.experiments.result import RunResult, validate_payload
from repro.experiments.registry import (
    REGISTRY,
    ExperimentSpec,
    RunContext,
    all_specs,
    get_spec,
    run_experiment,
    validate_artifact,
)

__all__ = [
    "DEFAULT_KEY",
    "TRACE_COLLECTORS",
    "calibrated",
    "clear_campaign_caches",
    "collect_ed_traces",
    "collect_raw_records",
    "collect_spectral_record",
    "get_or_fit_detector",
    "get_or_generate_traces",
    "shared_array_chip",
    "shared_chip",
    "CampaignSpec",
    "campaign_spec",
    "register_chip",
    "resolve_workers",
    "run_campaigns",
    "Table1Result",
    "run_table1",
    "SnrExperimentResult",
    "run_snr_experiment",
    "EuclideanExperimentResult",
    "run_euclidean_experiment",
    "A2SpectrumResult",
    "run_a2_spectrum",
    "Fig6HistogramResult",
    "Fig6SpectraResult",
    "run_fig6_histograms",
    "run_fig6_spectra",
    "run_crosschip_study",
    "run_power_baseline",
    "run_detection_latency",
    "ArrayLocalizationResult",
    "run_array_localization",
    "run_localization",
    "run_fixed_vs_random_tvla",
    "run_trojan_tvla",
    "RunResult",
    "validate_payload",
    "REGISTRY",
    "ExperimentSpec",
    "RunContext",
    "all_specs",
    "get_spec",
    "run_experiment",
    "validate_artifact",
]
