"""Detector tournament: ROC/AUC for every registered detector.

Runs each registry detector (``repro detectors``) against every
scenario — the golden chip and each Trojan (T1–T4, A2) — at one or
more environment-noise scales, and reports an exact threshold-sweep
ROC curve and AUC per (detector, noise scale, scenario) cell through
the shared :mod:`repro.detectors.roc` helper.

Scoring protocols
-----------------

* **Golden-based** detectors (``euclidean``, ``spectral``) fit on a
  golden reference campaign (cached via
  :func:`~repro.experiments.campaign.get_or_fit_detector`), then
  score a held-out golden evaluation set (the ROC negatives) and each
  suspect set (the positives) on the standard decimated ED windows.
* **Reference-free** detectors (``spectral_median``, ``persistence``)
  are fitted on **zero windows** — the transductive protocol — and
  score the pooled ``[golden eval; suspect]`` stream in one call on
  full-rate (undecimated) windows, where the clock-harmonic comb of
  an always-on Trojan is resolvable.  The two-to-one golden majority
  anchors the population median to clean behaviour; the detector
  never sees a labelled golden window.

The ``golden`` scenario row is the null experiment: its "suspects"
are more golden windows, so a calibrated detector should land near
AUC 0.5 there and must not report a detection.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.chip.chip import Chip
from repro.chip.scenario import Scenario
from repro.detectors import all_detector_infos, create_detector
from repro.detectors.roc import roc_curve
from repro.errors import ExperimentError
from repro.experiments.campaign import (
    get_or_fit_detector,
    get_or_generate_traces,
)

#: Tournament scenarios: the null row plus every implemented Trojan.
SCENARIOS = ("golden", "trojan1", "trojan2", "trojan3", "trojan4", "a2")


def scaled_noise_scenario(scenario: Scenario, scale: float) -> Scenario:
    """*scenario* with every noise magnitude scaled by *scale*.

    Scales both the ambient environment noise and any calibrated
    absolute receiver-noise overrides, so the effective SNR shifts by
    ``-20 log10(scale)`` dB regardless of which source dominates a
    receiver.  ``scale == 1.0`` returns the scenario unchanged (same
    object, same trace-cache identity).
    """
    if scale <= 0:
        raise ExperimentError(f"noise scale must be > 0, got {scale}")
    if scale == 1.0:
        return scenario
    overrides = scenario.noise_overrides
    if overrides is not None:
        overrides = tuple(
            (receiver, rms * scale) for receiver, rms in overrides
        )
    return dataclasses.replace(
        scenario,
        name=f"{scenario.name}-noise{scale:g}x",
        env_noise=scenario.env_noise.scaled(scale),
        noise_overrides=overrides,
    )


@dataclass(frozen=True)
class TournamentCell:
    """One (detector, noise scale, scenario) outcome."""

    auc: float
    detected: bool
    n_neg: int
    n_pos: int
    #: Decimated ROC polyline, ``[{"fpr", "tpr"}, ...]``.
    roc: list


@dataclass(frozen=True)
class TournamentResult:
    """Full sweep outcome."""

    receiver: str
    noise_scales: tuple[float, ...]
    scenarios: tuple[str, ...]
    #: name -> (reference_free, summary).
    detectors: dict
    #: detector -> str(noise scale) -> scenario -> TournamentCell.
    sweep: dict

    def payload(self) -> dict:
        return {
            "receiver": self.receiver,
            "noise_scales": [float(s) for s in self.noise_scales],
            "scenarios": list(self.scenarios),
            "detectors": {
                name: {
                    "reference_free": bool(info["reference_free"]),
                    "summary": info["summary"],
                }
                for name, info in self.detectors.items()
            },
            "sweep": {
                name: {
                    scale: {
                        scen: {
                            "auc": cell.auc,
                            "detected": cell.detected,
                            "n_neg": cell.n_neg,
                            "n_pos": cell.n_pos,
                            "roc": cell.roc,
                        }
                        for scen, cell in by_scenario.items()
                    }
                    for scale, by_scenario in by_scale.items()
                }
                for name, by_scale in self.sweep.items()
            },
        }

    def format(self) -> str:
        lines = ["detector tournament (AUC; * = stream flagged)"]
        name_w = max(len(n) for n in self.sweep)
        for scale in self.noise_scales:
            key = f"{scale:g}"
            lines.append(f"noise x{key}:")
            header = "  " + " " * name_w + "  " + "  ".join(
                f"{scen:>8s}" for scen in self.scenarios
            )
            lines.append(header)
            for name, by_scale in self.sweep.items():
                cells = by_scale[key]
                row = "  ".join(
                    f"{cells[scen].auc:7.3f}{'*' if cells[scen].detected else ' '}"
                    for scen in self.scenarios
                )
                lines.append(f"  {name:<{name_w}}  {row}")
        return "\n".join(lines)


def _enables(scenario_name: str) -> tuple[str, ...]:
    return () if scenario_name == "golden" else (scenario_name,)


def run_detector_tournament(
    chip: Chip,
    scenario: Scenario,
    n_reference: int = 384,
    n_eval: int = 384,
    n_suspect: int = 192,
    noise_scales: tuple[float, ...] = (0.5, 1.0, 2.0),
    receiver: str = "sensor",
    detectors: tuple[str, ...] | None = None,
) -> TournamentResult:
    """Sweep every (detector, noise scale, scenario) cell.

    Parameters mirror the registry experiment: *n_reference* golden
    windows fit the golden-based detectors, *n_eval* held-out golden
    windows are the ROC negatives, *n_suspect* windows per scenario
    are the positives.  *detectors* defaults to the whole registry.
    """
    if n_eval < 2 or n_suspect < 2:
        raise ExperimentError("need at least two windows per ROC class")
    infos = {
        info.name: info
        for info in all_detector_infos()
        if detectors is None or info.name in detectors
    }
    if detectors is not None:
        missing = sorted(set(detectors) - set(infos))
        if missing:
            raise ExperimentError(f"unknown detectors {missing}")
    sweep: dict = {name: {} for name in infos}

    for scale in noise_scales:
        scen = scaled_noise_scenario(scenario, scale)
        key = f"{scale:g}"

        def ed(enables, n, role, decimate):
            params = dict(
                n_traces=n,
                receivers=(receiver,),
                trojan_enables=enables,
                rng_role=role,
            )
            if decimate is not None:
                params["decimate"] = decimate
            return (
                get_or_generate_traces(chip, scen, "ed", **params)[receiver],
                params,
            )

        # Standard decimated ED windows for the golden-based plugins.
        ref_dec, fit_params = ed((), n_reference, "tournament/fit", None)
        eval_dec, _ = ed((), n_eval, "tournament/eval", None)
        # Full-rate windows for the reference-free plugins.
        eval_raw, _ = ed((), n_eval, "tournament/eval", 1)

        for name, info in infos.items():
            cells: dict = {}
            if info.reference_free:
                detector = create_detector(name).fit(np.empty((0, 0)))
            else:
                detector = get_or_fit_detector(
                    chip, scen, "ed", fit_params, ref_dec,
                    detector_name=name,
                )
                neg = detector.score(eval_dec)
            for scenario_name in SCENARIOS:
                if info.reference_free:
                    suspect, _ = ed(
                        _enables(scenario_name), n_suspect,
                        "tournament/suspect", 1,
                    )
                    scores = detector.score(
                        np.vstack([eval_raw, suspect])
                    )
                    neg_s, pos_s = scores[:n_eval], scores[n_eval:]
                    decision = detector.decide(scores)
                else:
                    suspect, _ = ed(
                        _enables(scenario_name), n_suspect,
                        "tournament/suspect", None,
                    )
                    neg_s, pos_s = neg, detector.score(suspect)
                    decision = detector.decide(pos_s)
                curve = roc_curve(neg_s, pos_s)
                cells[scenario_name] = TournamentCell(
                    auc=curve.auc,
                    detected=bool(decision.detected),
                    n_neg=int(neg_s.shape[0]),
                    n_pos=int(pos_s.shape[0]),
                    roc=curve.points(),
                )
            sweep[name][key] = cells

    return TournamentResult(
        receiver=receiver,
        noise_scales=tuple(float(s) for s in noise_scales),
        scenarios=SCENARIOS,
        detectors={
            name: {
                "reference_free": info.reference_free,
                "summary": info.summary,
            }
            for name, info in infos.items()
        },
        sweep=sweep,
    )
