"""The common ``RunResult`` artifact envelope.

Every registered experiment (:mod:`repro.experiments.registry`) emits
one uniformly shaped JSON artifact so downstream tooling — CI's
``cli-smoke`` job, notebook plotting, fleet dashboards — can consume
any table/figure without per-experiment parsing:

``spec``/``scenario``/``seed``/``smoke``
    which experiment ran, and at which size;
``config``
    the resolved :meth:`repro.config.ReproConfig.describe` snapshot,
    so an artifact always records the knobs that produced it;
``metrics``
    the run's :meth:`repro.obs.MetricsRegistry.snapshot` — per-stage
    timings, trace-cache hit/miss counters, simulator-backend choice;
``payload``
    the experiment's own numbers, validated against the spec's
    declarative schema (:func:`validate_payload`);
``text``
    the driver's human-readable ``format()`` report, embedded so the
    artifact is self-describing.

Artifacts are written atomically via
:func:`repro.io.store.atomic_write_bytes` and round-trip through
:meth:`RunResult.to_json_bytes` / :meth:`RunResult.from_json_bytes`.

Schema language
---------------

A schema node is one of:

* a type name — ``"int"``, ``"number"``, ``"str"``, ``"bool"``,
  ``"list"``, ``"dict"``, ``"any"`` — with an optional ``"?"`` suffix
  allowing ``None``;
* a one-element list ``[node]`` — a homogeneous list;
* a dict ``{"*": node}`` — a mapping whose values all match *node*;
* any other dict — an object with exactly those keys, each value
  matching its node.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import ExperimentError
from repro.io.store import _json_default, atomic_write_bytes

#: Version of the artifact envelope itself (not of any payload).
SCHEMA_VERSION = 1

_SCALARS = {
    "int": (int,),
    "number": (int, float),
    "str": (str,),
    "bool": (bool,),
    "list": (list,),
    "dict": (dict,),
}


def validate_payload(payload, schema, path: str = "payload") -> None:
    """Check *payload* against *schema*; raise ExperimentError on drift.

    The check runs on the JSON-decoded form (plain dicts/lists/
    scalars), so validate *after* a round trip — numpy scalars in a
    freshly built payload would fail the strict type checks.
    """
    if isinstance(schema, str):
        name = schema
        if name.endswith("?"):
            if payload is None:
                return
            name = name[:-1]
        if name == "any":
            return
        if name not in _SCALARS:
            raise ExperimentError(f"{path}: unknown schema type {name!r}")
        # bool is an int subclass; keep int/number strict about it.
        if isinstance(payload, bool) and name != "bool":
            raise ExperimentError(f"{path}: expected {name}, got bool")
        if not isinstance(payload, _SCALARS[name]):
            raise ExperimentError(
                f"{path}: expected {name}, got {type(payload).__name__}"
            )
        return
    if isinstance(schema, list):
        if len(schema) != 1:
            raise ExperimentError(
                f"{path}: list schema must have exactly one element"
            )
        if not isinstance(payload, list):
            raise ExperimentError(
                f"{path}: expected list, got {type(payload).__name__}"
            )
        for i, item in enumerate(payload):
            validate_payload(item, schema[0], f"{path}[{i}]")
        return
    if isinstance(schema, dict):
        if not isinstance(payload, dict):
            raise ExperimentError(
                f"{path}: expected dict, got {type(payload).__name__}"
            )
        if "*" in schema:
            for key, value in payload.items():
                validate_payload(value, schema["*"], f"{path}[{key!r}]")
            return
        missing = sorted(set(schema) - set(payload))
        extra = sorted(set(payload) - set(schema))
        if missing or extra:
            raise ExperimentError(
                f"{path}: keys mismatch (missing {missing}, "
                f"unexpected {extra})"
            )
        for key, node in schema.items():
            validate_payload(payload[key], node, f"{path}.{key}")
        return
    raise ExperimentError(f"{path}: invalid schema node {schema!r}")


@dataclass
class RunResult:
    """One experiment run: provenance + metrics + validated payload."""

    spec: str
    scenario: str
    seed: int
    smoke: bool
    config: dict
    metrics: dict
    payload: dict
    text: str
    elapsed_seconds: float = 0.0
    schema_version: int = SCHEMA_VERSION

    def to_json_bytes(self) -> bytes:
        """Canonical JSON encoding (sorted keys, trailing newline)."""
        doc = json.dumps(
            asdict(self),
            indent=2,
            sort_keys=True,
            default=_json_default,
        )
        return (doc + "\n").encode("utf-8")

    @classmethod
    def from_json_bytes(cls, data: bytes) -> "RunResult":
        doc = json.loads(data.decode("utf-8"))
        unknown = sorted(set(doc) - set(cls.__dataclass_fields__))
        if unknown:
            raise ExperimentError(
                f"RunResult artifact has unknown fields {unknown}"
            )
        missing = sorted(set(cls.__dataclass_fields__) - set(doc))
        if missing:
            raise ExperimentError(
                f"RunResult artifact is missing fields {missing}"
            )
        return cls(**doc)

    def save(self, path: str | Path) -> Path:
        """Atomically write the artifact; returns the resolved path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(target, self.to_json_bytes())
        return target

    @classmethod
    def load(cls, path: str | Path) -> "RunResult":
        return cls.from_json_bytes(Path(path).read_bytes())

    def validate(self, schema) -> "RunResult":
        """Validate the envelope and the payload against *schema*.

        Runs on the canonical JSON round trip, so numpy scalars left
        in a payload are caught here rather than at ``save()`` time.
        """
        if self.schema_version != SCHEMA_VERSION:
            raise ExperimentError(
                f"artifact schema_version {self.schema_version} != "
                f"{SCHEMA_VERSION}"
            )
        roundtripped = json.loads(self.to_json_bytes())
        validate_payload(roundtripped["payload"], schema)
        return self
