"""Table I — Trojan sizes compared to the whole AES design.

Gate counts come straight out of the generated netlists; percentages
are relative to the AES gate count, and the A2 row is expressed as an
area percentage (a 6-transistor analog cell has no gate count), exactly
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.chip import ALL_TROJANS, Chip
from repro.logic.stats import NetlistStats

#: The paper's Table I, for side-by-side reporting.
PAPER_TABLE1 = {
    "aes": (33083, 100.0),
    "trojan1": (1657, 5.01),
    "trojan2": (2793, 8.44),
    "trojan3": (250, 0.76),
    "trojan4": (2793, 8.44),
    "a2": (None, 0.087),  # area percentage
}


@dataclass
class Table1Row:
    """One row of the reproduced Table I."""

    circuit: str
    gate_count: int
    percentage: float
    is_area_percentage: bool = False


@dataclass
class Table1Result:
    """The reproduced table plus raw stats."""

    rows: list[Table1Row]
    stats: NetlistStats

    def format(self) -> str:
        """Render in the paper's layout."""
        lines = [f"{'Circuit':<10}{'Gate Count':>12}{'Percentage':>13}"]
        for row in self.rows:
            unit = " (area)" if row.is_area_percentage else ""
            lines.append(
                f"{row.circuit:<10}{row.gate_count:>12}"
                f"{row.percentage:>11.2f}%{unit}"
            )
        return "\n".join(lines)


def run_table1(chip: Chip) -> Table1Result:
    """Compute Table I from the chip's netlist."""
    stats = chip.stats()
    rows = [
        Table1Row(
            circuit="aes",
            gate_count=stats.groups["aes"].gate_count,
            percentage=100.0,
        )
    ]
    for name in ALL_TROJANS:
        if name not in stats.groups:
            continue
        if name == "a2":
            rows.append(
                Table1Row(
                    circuit=name,
                    gate_count=stats.groups[name].gate_count,
                    percentage=stats.area_percentage(name, "aes"),
                    is_area_percentage=True,
                )
            )
        else:
            rows.append(
                Table1Row(
                    circuit=name,
                    gate_count=stats.groups[name].gate_count,
                    percentage=stats.gate_percentage(name, "aes"),
                )
            )
    return Table1Result(rows=rows, stats=stats)
