"""Table I — Trojan sizes compared to the whole AES design.

Gate counts come straight out of the generated netlists; percentages
are relative to the AES gate count, and the A2 row is expressed as an
area percentage (a 6-transistor analog cell has no gate count), exactly
as in the paper.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.chip.chip import ALL_TROJANS, Chip
from repro.io.cache import PipelineKey, canonical_json, configured_cache
from repro.logic.stats import NetlistStats

#: The paper's Table I, for side-by-side reporting.
PAPER_TABLE1 = {
    "aes": (33083, 100.0),
    "trojan1": (1657, 5.01),
    "trojan2": (2793, 8.44),
    "trojan3": (250, 0.76),
    "trojan4": (2793, 8.44),
    "a2": (None, 0.087),  # area percentage
}


@dataclass
class Table1Row:
    """One row of the reproduced Table I."""

    circuit: str
    gate_count: int
    percentage: float
    is_area_percentage: bool = False


@dataclass
class Table1Result:
    """The reproduced table plus raw stats.

    ``stats`` is None when the rows were served from the artifact
    cache — the full netlist walk only runs on a miss.
    """

    rows: list[Table1Row]
    stats: NetlistStats | None = None

    def format(self) -> str:
        """Render in the paper's layout."""
        lines = [f"{'Circuit':<10}{'Gate Count':>12}{'Percentage':>13}"]
        for row in self.rows:
            unit = " (area)" if row.is_area_percentage else ""
            lines.append(
                f"{row.circuit:<10}{row.gate_count:>12}"
                f"{row.percentage:>11.2f}%{unit}"
            )
        return "\n".join(lines)


def _table1_key(chip: Chip) -> PipelineKey:
    """The table is a pure function of the chip build alone."""
    return PipelineKey(
        kind="table1/rows",
        chip_seed=chip.seed,
        chip_trojans=tuple(chip.trojans),
        chip_config=canonical_json(chip.config),
        scenario=canonical_json(None),
        params=canonical_json({}),
    )


def run_table1(chip: Chip) -> Table1Result:
    """Compute Table I from the chip's netlist.

    Gate counting walks the full netlist, so the finished rows are
    cached as a derived JSON artifact when ``REPRO_CACHE_DIR`` is set;
    hits skip the walk (``stats`` is None in that case).
    """
    cache = configured_cache()
    if cache is not None:
        stored = cache.get_json(_table1_key(chip))
        if stored is not None:
            return Table1Result(rows=[Table1Row(**row) for row in stored])
    stats = chip.stats()
    rows = [
        Table1Row(
            circuit="aes",
            gate_count=stats.groups["aes"].gate_count,
            percentage=100.0,
        )
    ]
    for name in ALL_TROJANS:
        if name not in stats.groups:
            continue
        if name == "a2":
            rows.append(
                Table1Row(
                    circuit=name,
                    gate_count=stats.groups[name].gate_count,
                    percentage=stats.area_percentage(name, "aes"),
                    is_area_percentage=True,
                )
            )
        else:
            rows.append(
                Table1Row(
                    circuit=name,
                    gate_count=stats.groups[name].gate_count,
                    percentage=stats.gate_percentage(name, "aes"),
                )
            )
    if cache is not None:
        cache.put_json(_table1_key(chip), [asdict(row) for row in rows])
    return Table1Result(rows=rows, stats=stats)
