"""Runtime detection latency — how fast does the framework react?

The paper positions the framework as *runtime* ("continuously monitors
the circuit status and triggers an alarm"), so the operative figure of
merit beyond accuracy is latency: how many encryption windows after a
Trojan activates does the alarm fire?  This driver feeds the streaming
monitor a golden prefix followed by Trojan-active windows and measures
the alarm delay per Trojan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.chip import Chip
from repro.chip.scenario import Scenario
from repro.errors import ExperimentError
from repro.experiments.campaign import get_or_generate_traces

DIGITAL_TROJANS = ("trojan1", "trojan2", "trojan3", "trojan4")


@dataclass
class LatencyResult:
    """Alarm latency per Trojan, in encryption windows."""

    #: Windows between Trojan activation and the alarm; None = missed
    #: within the observation horizon.
    latency_windows: dict[str, int | None]
    #: Encryption-window duration [s] for converting to wall time.
    window_seconds: float
    horizon: int
    false_alarms_on_golden: int

    def latency_seconds(self, trojan: str) -> float | None:
        lw = self.latency_windows[trojan]
        return None if lw is None else lw * self.window_seconds

    def format(self) -> str:
        lines = [
            f"runtime detection latency (horizon {self.horizon} windows, "
            f"{self.false_alarms_on_golden} false alarms on golden)"
        ]
        for name, lw in self.latency_windows.items():
            if lw is None:
                lines.append(f"  {name:<9} missed within horizon")
            else:
                us = lw * self.window_seconds * 1e6
                lines.append(f"  {name:<9} {lw:4d} windows  ({us:8.1f} us)")
        return "\n".join(lines)


def run_detection_latency(
    chip: Chip,
    scenario: Scenario,
    trojans: tuple[str, ...] = DIGITAL_TROJANS,
    n_reference: int = 384,
    golden_prefix: int = 64,
    horizon: int = 512,
    window: int = 32,
    confirm: int = 3,
) -> LatencyResult:
    """Measure the streaming monitor's alarm latency for each Trojan."""
    # Imported here: the framework package itself imports the
    # experiment campaign helpers, so a module-level import would cycle.
    from repro.framework.evaluator import EvaluatorConfig, RuntimeTrustEvaluator
    from repro.framework.monitor import RuntimeMonitor

    if golden_prefix < window:
        raise ExperimentError(
            f"golden prefix {golden_prefix} shorter than the monitor "
            f"window {window}"
        )
    evaluator = RuntimeTrustEvaluator.train(
        chip,
        scenario,
        EvaluatorConfig(n_reference=n_reference, spectral_cycles=512),
    )
    golden_stream = get_or_generate_traces(
        chip,
        scenario,
        "ed",
        n_traces=golden_prefix,
        receivers=(evaluator.config.receiver,),
        rng_role="latency/golden",
    )[evaluator.config.receiver]

    latencies: dict[str, int | None] = {}
    false_alarms = 0
    for trojan in trojans:
        monitor = RuntimeMonitor(evaluator, window=window, confirm=confirm)
        pre_events = monitor.observe_stream(golden_stream)
        false_alarms += len(pre_events)
        dirty = get_or_generate_traces(
            chip,
            scenario,
            "ed",
            n_traces=horizon,
            trojan_enables=(trojan,),
            receivers=(evaluator.config.receiver,),
            rng_role=f"latency/{trojan}",
        )[evaluator.config.receiver]
        latency: int | None = None
        for i, trace in enumerate(dirty):
            if monitor.observe(trace) is not None:
                latency = i + 1
                break
        latencies[trojan] = latency

    from repro.experiments.campaign import ED_PERIOD

    return LatencyResult(
        latency_windows=latencies,
        window_seconds=ED_PERIOD / chip.config.f_clk,
        horizon=horizon,
        false_alarms_on_golden=false_alarms,
    )
