"""Sections IV-B and V-A — on-chip sensor vs external probe SNR.

The paper's procedure, reproduced verbatim: record the receivers while
the chip idles (noise record), record while it encrypts (signal
record), form the RMS ratio (Eq. (2)) and convert to dB (Eq. (3)).
Running the same experiment under the *simulation* scenario gives the
Section IV-B numbers; under the *silicon* scenario, the Section V-A
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chip.chip import Chip
from repro.chip.scenario import Scenario
from repro.em.snr import SnrResult, measure_snr
from repro.experiments.campaign import DEFAULT_KEY, get_or_generate_traces
from repro.io.cache import cache_stats

#: Paper values for side-by-side reporting (dB).
PAPER_SNR = {
    "simulation": {"sensor": 29.976, "probe": 17.483},
    "silicon": {"sensor": 30.5489, "probe": 13.8684},
}


@dataclass
class SnrExperimentResult:
    """SNR of both receivers under one scenario."""

    scenario: str
    per_receiver: dict[str, SnrResult]
    #: Trace-cache hit/miss counters at report time (None = cache off).
    cache: dict | None = field(default=None, repr=False)

    def format(self) -> str:
        """Render with the paper's values alongside."""
        lines = [f"SNR ({self.scenario} scenario)"]
        paper = PAPER_SNR.get(self.scenario, {})
        for name, res in self.per_receiver.items():
            ref = paper.get(name)
            ref_txt = f"  (paper: {ref:.2f} dB)" if ref is not None else ""
            lines.append(
                f"  {name:<8} {res.snr_db:7.3f} dB "
                f"(signal {res.signal_rms:.3e} V, noise {res.noise_rms:.3e} V)"
                f"{ref_txt}"
            )
        if self.cache is not None:
            lines.append(f"  trace cache: {self.cache}")
        return "\n".join(lines)


def run_snr_experiment(
    chip: Chip,
    scenario: Scenario,
    n_cycles: int = 1024,
    batch: int = 8,
    key: bytes = DEFAULT_KEY,
) -> SnrExperimentResult:
    """Measure both receivers' SNR under *scenario*.

    Both records route through the shared cache entry point, so a
    repeated run (or another driver requesting the same records)
    serves them from disk instead of re-simulating.
    """
    signal = get_or_generate_traces(
        chip,
        scenario,
        "raw",
        n_cycles=n_cycles,
        batch=batch,
        encrypting=True,
        key=key,
        rng_role="snr/signal",
    )
    noise = get_or_generate_traces(
        chip,
        scenario,
        "raw",
        n_cycles=n_cycles,
        batch=batch,
        encrypting=False,
        key=key,
        rng_role="snr/noise",
    )
    per_receiver = {
        name: measure_snr(signal[name], noise[name])
        for name in chip.receivers
    }
    return SnrExperimentResult(
        scenario=scenario.name,
        per_receiver=per_receiver,
        cache=cache_stats(),
    )
