"""Shared campaign plumbing for the experiment drivers.

Chips take seconds to assemble, so :func:`shared_chip` memoises one
instance per (seed, trojan-set); trace collectors wrap the acquisition
engine with the two standard campaign styles:

* :func:`collect_ed_traces` — back-to-back encryptions cut into
  per-encryption windows (the fingerprinting view).  Cutting windows
  out of one long run, rather than resetting per trace, is what gives
  every Trojan counter a *random phase* relative to the encryption —
  on a real bench the 750 kHz carrier is never reset-synchronised to
  the AES start pulse, and T1's characteristic flat/bimodal histogram
  (Fig. 6e) only appears because of that.
* :func:`collect_spectral_record` — one long continuous record for FFT
  analysis.
* :func:`collect_raw_records` — undecimated full-bench records (the
  SNR experiment's view).

:func:`get_or_generate_traces` is the shared entry point every driver
funnels through: it canonicalises the collector call into a
:class:`~repro.io.cache.PipelineKey` and serves the traces from the
content-addressed disk cache (``REPRO_CACHE_DIR``) when one is
enabled, so two drivers — or two whole experiment suites — requesting
the same (seed, scenario, trojan-set, receiver) bundle only ever pay
for one generation pass.
"""

from __future__ import annotations

import inspect

from functools import lru_cache

import numpy as np

from scipy import signal

from repro.chip.acquire import (
    AcquisitionEngine,
    EncryptionWorkload,
    IdleWorkload,
    acquisition_engine,
)
from repro.chip.chip import ALL_TROJANS, Chip
from repro.chip.config import ChipConfig
from repro.chip.scenario import Scenario
from repro.errors import ExperimentError
from repro.io.cache import PipelineKey, TraceCache, configured_cache
from repro.io.store import TraceBundle
from repro.obs import active_metrics

#: The fixed secret key all campaigns encrypt under.
DEFAULT_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

#: Encryption repetition period in cycles (AES latency 11 + 1 idle).
ED_PERIOD = 12

#: Encryption period for *spectral* campaigns.  Deliberately coprime-ish
#: with the clock dividers so the encryption comb (f_clk / period and
#: harmonics) does not sit on the divider lines the A2 analysis watches
#: — on a real bench, irregular encryption spacing decorrelates these
#: the same way.
SPECTRAL_PERIOD = 13

#: Extra trailing cycles discarded at the start of each record while
#: registers come out of reset.
WARMUP_WINDOWS = 2

#: Decimation factor of the fingerprinting front end.  The bench chain
#: (probe/sensor amplifier + scope) is band-limited well below the raw
#: synthesis rate; decimating to ~200 MS/s keeps every per-cycle power
#: feature while averaging out sample-level plaintext jitter, exactly
#: like the paper's acquisition.
ED_DECIMATE = 12


@lru_cache(maxsize=4)
def shared_chip(seed: int = 0, trojans: tuple[str, ...] = ALL_TROJANS) -> Chip:
    """Build (once) and return the shared test chip."""
    return Chip.build(config=ChipConfig(), trojans=trojans, seed=seed)


@lru_cache(maxsize=4)
def shared_array_chip(
    seed: int = 0,
    rows: int = 4,
    cols: int = 4,
    trojans: tuple[str, ...] = ALL_TROJANS,
) -> Chip:
    """Build (once) the test chip with an N×M sensor array installed.

    The logic, placement, power grid, sensor and probe are identical to
    :func:`shared_chip` — the array only *adds* receiver channels — but
    it is memoised separately because its coupling tensor makes the
    object larger and most campaigns never need it.
    """
    return Chip.build(
        config=ChipConfig(sensor_array_rows=rows, sensor_array_cols=cols),
        trojans=trojans,
        seed=seed,
    )


_CALIBRATION_CACHE: dict[tuple[int, tuple[str, ...], str], Scenario] = {}


def clear_campaign_caches() -> None:
    """Release every process-level campaign cache.

    The memoised :func:`~repro.chip.acquire.acquisition_engine` and
    :func:`shared_chip` each pin strong references to full ``Chip``
    objects (coupling matrices included, tens of MB apiece) for the
    process lifetime; a weakref cache would not help because the cached
    engine itself holds its chip alive.  Campaign teardown — end of an
    experiment driver, a test session, or a worker that is done — calls
    this instead, after which dropped chips are garbage-collectable
    (``tests/chip/test_packed_acquisition.py`` pins that).
    """
    acquisition_engine.cache_clear()
    shared_chip.cache_clear()
    shared_array_chip.cache_clear()
    _CALIBRATION_CACHE.clear()
    # Imported lazily: parallel imports this module at load time.
    from repro.experiments import parallel as _parallel

    _parallel._CHIP_CACHE.clear()


def calibrated(chip: Chip, scenario: Scenario) -> Scenario:
    """SNR-anchored variant of *scenario* for *chip* (memoised).

    See :mod:`repro.chip.calibration`: the four unknown bench noise
    magnitudes are solved from the paper's four reported SNR figures.
    The cache keys on the values that determine the calibration —
    ``(chip.seed, chip.trojans, scenario.name)`` — not ``id(chip)``,
    which a recycled address after garbage collection could collide.
    """
    from repro.chip.calibration import calibrate_scenario

    key = (chip.seed, tuple(chip.trojans), scenario.name)
    cached = _CALIBRATION_CACHE.get(key)
    if cached is None:
        cached = calibrate_scenario(chip, scenario)
        _CALIBRATION_CACHE[key] = cached
    return cached


def collect_ed_traces(
    chip: Chip,
    scenario: Scenario,
    n_traces: int,
    trojan_enables: tuple[str, ...] = (),
    receivers: tuple[str, ...] = ("sensor", "probe"),
    rng_role: str = "ed",
    batch: int = 64,
    key: bytes = DEFAULT_KEY,
    decimate: int = ED_DECIMATE,
) -> dict[str, np.ndarray]:
    """Per-encryption EM traces, ``{receiver: (n_traces, window_samples)}``.

    Runs ``ceil(n_traces / batch)`` windows worth of back-to-back
    encryptions per batch column, segments each receiver record into
    one window per encryption, and band-limits/decimates to the
    analysis rate (set ``decimate=1`` for raw traces).
    """
    windows_per_col = -(-n_traces // batch) + WARMUP_WINDOWS
    n_cycles = windows_per_col * ED_PERIOD
    engine = acquisition_engine(chip, scenario)
    workload = EncryptionWorkload(chip.aes, key, period=ED_PERIOD)
    result = engine.acquire(
        workload,
        n_cycles=n_cycles,
        batch=batch,
        trojan_enables=trojan_enables,
        receivers=receivers,
        rng_role=rng_role,
    )
    return {
        name: segment_ed_windows(
            result.traces[name],
            batch=batch,
            n_traces=n_traces,
            spc=chip.config.samples_per_cycle,
            decimate=decimate,
        )
        for name in receivers
    }


def segment_ed_windows(
    rec: np.ndarray,
    *,
    batch: int,
    n_traces: int,
    spc: int,
    decimate: int = ED_DECIMATE,
) -> np.ndarray:
    """Cut one receiver record into per-encryption analysis windows.

    The shared post-processing of :func:`collect_ed_traces`:
    band-limit/decimate the ``(batch, samples)`` record, strip the
    warm-up windows, and interleave batch columns into ``(n_traces,
    window_samples)``.  Factored out so the streaming fleet producer
    (:class:`repro.fleet.producer.GroupChunkSource`), which acquires
    its records lane-packed through ``acquire_group``, lands on
    byte-identical windows to a solo-acquired campaign chunk — every
    operation here is row-wise, so it cannot reintroduce a
    cross-member dependency.
    """
    window = ED_PERIOD * spc
    windows_per_col = -(-n_traces // batch) + WARMUP_WINDOWS
    usable = windows_per_col - WARMUP_WINDOWS
    if decimate > 1:
        rec = signal.decimate(rec, decimate, axis=1, zero_phase=True)
        w = window // decimate
    else:
        w = window
    segs = rec[:, WARMUP_WINDOWS * w : (WARMUP_WINDOWS + usable) * w]
    segs = segs.reshape(batch, usable, w)
    # Interleave batch columns so truncation keeps phase diversity.
    segs = segs.transpose(1, 0, 2).reshape(batch * usable, w)
    return segs[:n_traces]


def collect_attack_traces(
    chip: Chip,
    scenario: Scenario,
    n_traces: int,
    receiver: str = "sensor",
    rng_role: str = "cpa",
    batch: int = 64,
    key: bytes = DEFAULT_KEY,
) -> tuple[np.ndarray, np.ndarray]:
    """Raw per-encryption traces *with their plaintexts* (for CPA).

    Returns ``(traces, plaintexts)`` where traces has shape
    ``(n_traces, window_samples)`` at the full sample rate and
    plaintexts ``(n_traces, 16)`` — row ``i`` of each corresponds to the
    same encryption.
    """
    spc = chip.config.samples_per_cycle
    window = ED_PERIOD * spc
    windows_per_col = -(-n_traces // batch) + WARMUP_WINDOWS
    n_cycles = windows_per_col * ED_PERIOD
    engine = acquisition_engine(chip, scenario)
    workload = EncryptionWorkload(chip.aes, key, period=ED_PERIOD)
    result = engine.acquire(
        workload,
        n_cycles=n_cycles,
        batch=batch,
        receivers=(receiver,),
        rng_role=rng_role,
    )
    usable = windows_per_col - WARMUP_WINDOWS
    rec = result.traces[receiver]
    segs = rec[:, WARMUP_WINDOWS * window : (WARMUP_WINDOWS + usable) * window]
    segs = segs.reshape(batch, usable, window).transpose(1, 0, 2)
    traces = segs.reshape(batch * usable, window)[:n_traces]
    # workload.plaintexts[w] holds the (batch, 16) block of window w.
    pts = np.concatenate(
        [workload.plaintexts[WARMUP_WINDOWS + w] for w in range(usable)],
        axis=0,
    )[:n_traces]
    return traces, pts


def collect_spectral_record(
    chip: Chip,
    scenario: Scenario,
    n_cycles: int = 4096,
    trojan_enables: tuple[str, ...] = (),
    receivers: tuple[str, ...] = ("sensor",),
    rng_role: str = "spectrum",
    encrypting: bool = True,
    key: bytes = DEFAULT_KEY,
    batch: int = 4,
    include_noise: bool = False,
) -> dict[str, np.ndarray]:
    """Long continuous records per receiver, ``(batch, samples)``.

    Rows are independent records; averaging their magnitude spectra
    (which :func:`repro.analysis.spectral.amplitude_spectrum` does)
    knocks the noise floor down like a spectrum analyser's averaging.

    ``include_noise`` defaults to False: the paper's spectral figures
    are simulation plots / heavily averaged captures whose additive
    noise floor sits below the spots of interest; reproducing that
    averaging directly would need million-cycle records, so the
    drivers analyse the noise-free signal path instead (the noisy
    variant remains available for ablations).
    """
    engine = acquisition_engine(chip, scenario)
    workload = (
        EncryptionWorkload(chip.aes, key, period=SPECTRAL_PERIOD)
        if encrypting
        else IdleWorkload()
    )
    result = engine.acquire(
        workload,
        n_cycles=n_cycles,
        batch=batch,
        trojan_enables=trojan_enables,
        receivers=receivers,
        rng_role=rng_role,
        workload_role="spectral/shared-operation",
        include_noise=include_noise,
    )
    return {name: result.traces[name] for name in receivers}


def collect_raw_records(
    chip: Chip,
    scenario: Scenario,
    n_cycles: int,
    batch: int = 8,
    encrypting: bool = True,
    trojan_enables: tuple[str, ...] = (),
    receivers: tuple[str, ...] | None = None,
    rng_role: str = "raw",
    key: bytes = DEFAULT_KEY,
    period: int = ED_PERIOD,
    include_noise: bool = True,
) -> dict[str, np.ndarray]:
    """Full-rate continuous records, ``{receiver: (batch, samples)}``.

    The undecimated, unsegmented view the SNR experiment measures:
    either back-to-back encryptions (*encrypting*) or the idle noise
    record.  *receivers* defaults to all of the chip's receivers.
    """
    engine = acquisition_engine(chip, scenario)
    workload = (
        EncryptionWorkload(chip.aes, key, period=period)
        if encrypting
        else IdleWorkload()
    )
    result = engine.acquire(
        workload,
        n_cycles=n_cycles,
        batch=batch,
        trojan_enables=trojan_enables,
        receivers=receivers,
        rng_role=rng_role,
        include_noise=include_noise,
    )
    names = receivers if receivers is not None else tuple(chip.receivers)
    return {name: result.traces[name] for name in names}


#: Collector registry of :func:`get_or_generate_traces` — every entry
#: returns ``{receiver: 2-D trace matrix}`` deterministically from
#: (chip, scenario, params).
TRACE_COLLECTORS = {
    "ed": collect_ed_traces,
    "spectral": collect_spectral_record,
    "raw": collect_raw_records,
}


def campaign_pipeline_key(
    chip: Chip, scenario: Scenario, kind: str, params: dict
) -> PipelineKey:
    """Canonical cache key of one collector call.

    Parameter defaults are bound before hashing, so spelling a default
    out explicitly (``batch=64``) addresses the same cache entry as
    omitting it.
    """
    collector = TRACE_COLLECTORS.get(kind)
    if collector is None:
        raise ExperimentError(
            f"unknown campaign kind {kind!r}; expected one of "
            f"{tuple(TRACE_COLLECTORS)}"
        )
    bound = inspect.signature(collector).bind(None, None, **params)
    bound.apply_defaults()
    full = dict(bound.arguments)
    full.pop("chip")
    full.pop("scenario")
    return PipelineKey.for_campaign(chip, scenario, kind, full)


def _campaign_receivers(chip: Chip, kind: str, params: dict) -> tuple[str, ...]:
    """Receiver names a collector call will return, defaults included."""
    bound = inspect.signature(TRACE_COLLECTORS[kind]).bind(None, None, **params)
    bound.apply_defaults()
    receivers = bound.arguments.get("receivers")
    return tuple(receivers) if receivers is not None else tuple(chip.receivers)


def get_or_generate_traces(
    chip: Chip,
    scenario: Scenario,
    kind: str,
    cache: TraceCache | None | bool = None,
    **params,
) -> dict[str, np.ndarray]:
    """Serve a trace campaign from the cache, generating it on a miss.

    The shared entry point of every experiment driver (and of the
    parallel campaign workers).  *kind* picks the collector from
    :data:`TRACE_COLLECTORS`; *params* are its keyword arguments.

    *cache* resolves to the ``REPRO_CACHE_DIR`` environment cache when
    ``None``; pass a :class:`~repro.io.cache.TraceCache` to use a
    specific store, or ``False`` to force regeneration.  With no cache
    the collector runs directly — same results, no disk traffic.

    Cache hits return **read-only memmapped** arrays bit-identical to
    what the collector would produce; misses run the collector once
    and persist one bundle per receiver (atomic renames, so concurrent
    workers sharing the cache directory race benignly).
    """
    if kind not in TRACE_COLLECTORS:
        raise ExperimentError(
            f"unknown campaign kind {kind!r}; expected one of "
            f"{tuple(TRACE_COLLECTORS)}"
        )
    metrics = active_metrics()
    if cache is None:
        cache = configured_cache()
    elif cache is False:
        cache = None
    if cache is None:
        with metrics.time("stage.traces.generate.seconds"):
            return TRACE_COLLECTORS[kind](chip, scenario, **params)

    key = campaign_pipeline_key(chip, scenario, kind, params)
    receivers = _campaign_receivers(chip, kind, params)
    cached: dict[str, np.ndarray] = {}
    for name in receivers:
        bundle = cache.get_bundle(key, receiver=name)
        if bundle is None:
            break
        cached[name] = bundle.traces
    if len(cached) == len(receivers):
        metrics.counter("traces.cache.hit").inc()
        return cached

    metrics.counter("traces.cache.miss").inc()
    with metrics.time("stage.traces.generate.seconds"):
        fresh = TRACE_COLLECTORS[kind](chip, scenario, **params)
    trojan_enables = tuple(params.get("trojan_enables", ()))
    for name, traces in fresh.items():
        cache.put_bundle(
            key,
            TraceBundle(
                traces=traces,
                receiver=name,
                fs=chip.config.fs,
                chip_seed=chip.seed,
                scenario=scenario.name,
                trojan_enables=trojan_enables,
                extras={"kind": kind, "pipeline_key": key.digest()},
            ),
            receiver=name,
        )
    return fresh


def get_or_fit_detector(
    chip: Chip,
    scenario: Scenario,
    kind: str,
    params: dict,
    golden_traces: np.ndarray,
    cache: TraceCache | None | bool = None,
    detector_name: str = "euclidean",
    **detector_kwargs,
):
    """Fitted registry detector, cached as a derived artifact of the
    golden campaign.

    The fitted statistics (fingerprint, Eq. (1) threshold, bootstrap
    floor — or a reference-free population baseline) are pure
    functions of the trace campaign and the detector
    hyper-parameters, so they are addressed by the campaign's
    :class:`PipelineKey` derived with the ``detector`` label — the
    paper's "golden fingerprint fitted once, reused across every
    suspect evaluation" made literal.  *detector_name* resolves
    through :mod:`repro.detectors.registry`; the default keeps the
    historical Euclidean detector and its exact cache keys.
    """
    from repro.detectors.registry import create_detector, detector_from_state

    if cache is None:
        cache = configured_cache()
    elif cache is False:
        cache = None
    if cache is None:
        return create_detector(detector_name, **detector_kwargs).fit(
            golden_traces
        )

    derive_kwargs = dict(detector_kwargs)
    if detector_name != "euclidean":
        # Only non-default names join the key, so every pre-existing
        # cached Euclidean detector state stays addressable.
        derive_kwargs["detector_name"] = detector_name
    key = campaign_pipeline_key(chip, scenario, kind, params).derived(
        "detector", **derive_kwargs
    )
    state = cache.get_json(key)
    if state is not None:
        return detector_from_state(detector_name, state)
    detector = create_detector(detector_name, **detector_kwargs).fit(
        golden_traces
    )
    cache.put_json(key, detector.state_dict())
    return detector
