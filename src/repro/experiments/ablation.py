"""Design-space ablations (DESIGN.md §5, paper Section VI future work).

Four studies on the design choices the paper leaves open:

* :func:`sweep_sensor_turns` — coil turns vs resistance/area/SNR;
* :func:`sweep_probe_standoff` — probe distance vs SNR (why on-chip wins);
* :func:`sweep_pca_dimensions` — PCA denoising depth vs detection quality;
* :func:`threshold_study` — Eq. (1) max-threshold vs percentile
  thresholds on the detection ROC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.euclidean import EuclideanDetector
from repro.analysis.metrics import auc, roc_curve, score_detection
from repro.chip.acquire import AcquisitionEngine, EncryptionWorkload, IdleWorkload
from repro.chip.chip import Chip
from repro.chip.config import ChipConfig
from repro.chip.scenario import Scenario, simulation_scenario
from repro.em.snr import measure_snr
from repro.experiments.campaign import DEFAULT_KEY, collect_ed_traces
from repro.units import UM


@dataclass
class SweepPoint:
    """One point of a one-dimensional design sweep."""

    parameter: float
    snr_db: float
    extra: dict


def _receiver_snr(chip: Chip, scenario: Scenario, receiver: str) -> float:
    engine = AcquisitionEngine(chip, scenario)
    sig = engine.acquire(
        EncryptionWorkload(chip.aes, DEFAULT_KEY, period=12),
        n_cycles=256,
        batch=4,
        rng_role="ablation/sig",
    )
    noi = engine.acquire(
        IdleWorkload(), n_cycles=256, batch=4, rng_role="ablation/noise"
    )
    return measure_snr(sig.traces[receiver], noi.traces[receiver]).snr_db


def sweep_sensor_turns(
    turns_list: tuple[int, ...] = (4, 8, 12, 16),
    seed: int = 1,
) -> list[SweepPoint]:
    """Coil turn count vs sensor SNR and electrical properties."""
    points = []
    for turns in turns_list:
        chip = Chip.build(
            config=ChipConfig(sensor_turns=turns), trojans=(), seed=seed
        )
        points.append(
            SweepPoint(
                parameter=float(turns),
                snr_db=_receiver_snr(chip, simulation_scenario(), "sensor"),
                extra={
                    "resistance_ohm": chip.sensor.resistance(),
                    "effective_area_mm2": chip.sensor.effective_area() * 1e6,
                },
            )
        )
    return points


def sweep_probe_standoff(
    standoffs: tuple[float, ...] = (50 * UM, 100 * UM, 200 * UM, 400 * UM),
    seed: int = 1,
) -> list[SweepPoint]:
    """Probe standoff vs probe SNR (the near-field decay argument).

    The package-loop coupling is disabled for this sweep: it is
    standoff-independent at these distances and would mask the direct
    die radiation whose 1/r decay the ablation quantifies.
    """
    points = []
    for standoff in standoffs:
        chip = Chip.build(
            config=ChipConfig(
                probe_standoff=standoff, package_loop_coupling=0.0
            ),
            trojans=(),
            seed=seed,
        )
        points.append(
            SweepPoint(
                parameter=standoff,
                snr_db=_receiver_snr(chip, simulation_scenario(), "probe"),
                extra={},
            )
        )
    return points


@dataclass
class PcaPoint:
    """Detection quality at one PCA depth."""

    n_components: int | None
    auc: float
    separation: float


def sweep_pca_dimensions(
    chip: Chip,
    scenario: Scenario,
    trojan: str = "trojan4",
    depths: tuple[int | None, ...] = (None, 2, 4, 8, 16, 32),
    n_golden: int = 384,
    n_suspect: int = 256,
) -> list[PcaPoint]:
    """PCA denoising depth vs detection quality for one Trojan."""
    golden = collect_ed_traces(
        chip, scenario, n_golden, receivers=("sensor",), rng_role="abl/g"
    )["sensor"]
    suspect = collect_ed_traces(
        chip,
        scenario,
        n_suspect,
        trojan_enables=(trojan,),
        receivers=("sensor",),
        rng_role="abl/s",
    )["sensor"]
    points = []
    for depth in depths:
        det = EuclideanDetector(n_components=depth).fit(golden)
        g_d = det.golden_distances
        t_d = det.distances(suspect)
        fpr, tpr, _ = roc_curve(g_d, t_d)
        points.append(
            PcaPoint(
                n_components=depth,
                auc=auc(fpr, tpr),
                separation=det.separation(suspect),
            )
        )
    return points


@dataclass
class ThresholdPoint:
    """Detection metrics at one threshold rule."""

    rule: str
    threshold: float
    true_positive_rate: float
    false_positive_rate: float


def threshold_study(
    chip: Chip,
    scenario: Scenario,
    trojan: str = "trojan4",
    n_golden: int = 384,
    n_suspect: int = 256,
) -> list[ThresholdPoint]:
    """Eq. (1) max-intra-golden threshold vs percentile alternatives."""
    golden = collect_ed_traces(
        chip, scenario, n_golden, receivers=("sensor",), rng_role="thr/g"
    )["sensor"]
    suspect = collect_ed_traces(
        chip,
        scenario,
        n_suspect,
        trojan_enables=(trojan,),
        receivers=("sensor",),
        rng_role="thr/s",
    )["sensor"]
    det = EuclideanDetector().fit(golden)
    g_d = det.golden_distances
    t_d = det.distances(suspect)
    assert det.threshold is not None and g_d is not None
    rules = [("eq1-max", det.threshold)] + [
        (f"p{p}", float(np.percentile(g_d, p))) for p in (90, 95, 99)
    ]
    out = []
    for rule, thr in rules:
        m = score_detection(g_d, t_d, thr)
        out.append(
            ThresholdPoint(
                rule=rule,
                threshold=thr,
                true_positive_rate=m.true_positive_rate,
                false_positive_rate=m.false_positive_rate,
            )
        )
    return out
