"""Figure 4 — A2 Trojan detection in the frequency domain.

Two long sensor records are compared: the original circuit performing
encryptions (blue in the paper) and the same workload while the A2
charge pump is being triggered by the fast-flipping clock-division
signal (red).  The pump's per-toggle charge packets add energy at the
divider's transition frequency — which coincides with a clock-related
spot of the original spectrum, so the detection criterion is the
*magnitude increase* at that spot (the paper's T = g case).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.spectral import (
    Spectrum,
    SpectralComparison,
    amplitude_spectra,
    compare_spectra,
)
from repro.chip.chip import Chip
from repro.chip.scenario import Scenario
from repro.experiments.campaign import get_or_generate_traces


@dataclass
class A2SpectrumResult:
    """Golden vs A2-triggering spectra and the comparison verdict."""

    golden: Spectrum
    triggered: Spectrum
    comparison: SpectralComparison
    trigger_frequency: float
    boost_ratio: float = 1.3

    @property
    def detected(self) -> bool:
        """Section IV-D verdict: the magnitude at the known divider spot
        grew by the boost ratio (the T = g case), or the generic
        spectrum comparison found boosted/new spots."""
        return (
            self.magnitude_ratio_at_trigger() >= self.boost_ratio
            or self.comparison.detected
        )

    def magnitude_ratio_at_trigger(self) -> float:
        """Amplitude gain at the trigger line (>= 1 means boosted)."""
        g = self.golden.magnitude_at(self.trigger_frequency)
        t = self.triggered.magnitude_at(self.trigger_frequency)
        return t / max(g, 1e-30)

    def format(self) -> str:
        """Human-readable verdict."""
        lines = [
            f"A2 spectrum inspection @ {self.trigger_frequency / 1e6:.3f} MHz:",
            f"  magnitude gain at trigger line: "
            f"{self.magnitude_ratio_at_trigger():.2f}x",
            f"  boosted spots: "
            + ", ".join(
                f"{f / 1e6:.2f} MHz ({g:.2e}->{s:.2e})"
                for f, g, s in self.comparison.boosted_spots[:6]
            ),
            f"  new spots: "
            + ", ".join(
                f"{f / 1e6:.2f} MHz" for f, _a in self.comparison.new_spots[:6]
            ),
            f"  detected: {self.detected}",
        ]
        return "\n".join(lines)


def run_a2_spectrum(
    chip: Chip,
    scenario: Scenario,
    n_cycles: int = 4096,
    receiver: str = "sensor",
    boost_ratio: float = 1.3,
    band: tuple[float, float] = (1e6, 60e6),
) -> A2SpectrumResult:
    """Reproduce Figure 4 on *receiver*.

    The comparison is band-limited to the clock region (*band*), as in
    the paper's figure, which shows the clock spot and its doubled
    harmonic.
    """
    golden_rec = get_or_generate_traces(
        chip,
        scenario,
        "spectral",
        n_cycles=n_cycles,
        receivers=(receiver,),
        rng_role="a2/golden",
    )[receiver]
    trig_rec = get_or_generate_traces(
        chip,
        scenario,
        "spectral",
        n_cycles=n_cycles,
        trojan_enables=("a2",),
        receivers=(receiver,),
        rng_role="a2/trig",
    )[receiver]
    fs = chip.config.fs
    # Both records transform in one batched rfft dispatch.
    golden_full, trig_full = amplitude_spectra([golden_rec, trig_rec], fs)
    golden = golden_full.band(*band)
    triggered = trig_full.band(*band)
    # Pump strokes fire once per trigger-divider period, putting the
    # activation comb's fundamental at f_clk / N — off every original
    # spectral spot for the default mod-3 divider (the T != g case).
    period = chip.trojans["a2"].metadata["trigger_period_cycles"]
    f_trigger = chip.config.f_clk / period
    comparison = compare_spectra(golden, triggered, boost_ratio=boost_ratio)
    return A2SpectrumResult(
        golden=golden,
        triggered=triggered,
        comparison=comparison,
        trigger_frequency=f_trigger,
        boost_ratio=boost_ratio,
    )
