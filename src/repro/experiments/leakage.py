"""Leakage assessment experiments (TVLA) on the chip's EM traces.

Two uses of Welch's t-test:

* :func:`run_fixed_vs_random_tvla` — the standard first-order leakage
  assessment: the sensor traces of a *fixed* plaintext versus *random*
  plaintexts must fail TVLA (our AES is unprotected, so its EM
  emanations are supposed to leak — this validates the physical model
  against how real chips behave);
* :func:`run_trojan_tvla` — golden vs Trojan-active populations: an
  activated Trojan fails the t-test by construction, giving the
  framework a second, distribution-free detection statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tvla import TvlaResult, welch_t_test
from repro.chip.acquire import EncryptionWorkload
from repro.chip.chip import Chip
from repro.chip.scenario import Scenario
from repro.errors import ExperimentError
from repro.experiments.campaign import (
    DEFAULT_KEY,
    ED_PERIOD,
    collect_ed_traces,
)


class FixedPlaintextWorkload(EncryptionWorkload):
    """Encrypt the *same* block over and over (TVLA's fixed class)."""

    def __init__(self, aes, key: bytes, plaintext: bytes, period: int = ED_PERIOD):
        super().__init__(aes, key, period=period)
        if len(plaintext) != 16:
            raise ExperimentError(
                f"plaintext must be 16 bytes, got {len(plaintext)}"
            )
        self.fixed_plaintext = bytes(plaintext)

    def inputs(self, cycle: int, batch: int):
        phase = cycle % self.period
        if phase == 0:
            pts = np.tile(
                np.frombuffer(self.fixed_plaintext, np.uint8), (batch, 1)
            )
            self.plaintexts.append(pts)
            return self.aes.start_inputs(pts, self._keys)
        if phase == 1:
            return self.aes.idle_inputs(batch)
        return None


#: TVLA's conventional fixed plaintext for AES.
TVLA_FIXED_PLAINTEXT = bytes.fromhex("da39a3ee5e6b4b0d3255bfef95601890")


@dataclass
class LeakageReport:
    """TVLA outcome plus campaign metadata."""

    result: TvlaResult
    n_fixed: int
    n_random: int
    label: str

    def format(self) -> str:
        return (
            f"{self.label}: {self.result.format()} "
            f"({self.n_fixed} vs {self.n_random} traces)"
        )


def run_fixed_vs_random_tvla(
    chip: Chip,
    scenario: Scenario,
    n_traces: int = 400,
    receiver: str = "sensor",
    key: bytes = DEFAULT_KEY,
) -> LeakageReport:
    """First-order fixed-vs-random TVLA on the sensor traces."""
    from repro.chip.acquire import AcquisitionEngine
    from repro.experiments.campaign import WARMUP_WINDOWS

    engine = AcquisitionEngine(chip, scenario)
    spc = chip.config.samples_per_cycle
    window = ED_PERIOD * spc

    def campaign(workload, role):
        batch = min(64, n_traces)
        windows = -(-n_traces // batch) + WARMUP_WINDOWS
        result = engine.acquire(
            workload,
            n_cycles=windows * ED_PERIOD,
            batch=batch,
            receivers=(receiver,),
            rng_role=role,
        )
        usable = windows - WARMUP_WINDOWS
        rec = result.traces[receiver]
        segs = rec[:, WARMUP_WINDOWS * window : (WARMUP_WINDOWS + usable) * window]
        segs = segs.reshape(batch, usable, window).transpose(1, 0, 2)
        return segs.reshape(batch * usable, window)[:n_traces]

    fixed = campaign(
        FixedPlaintextWorkload(chip.aes, key, TVLA_FIXED_PLAINTEXT),
        "tvla/fixed",
    )
    random_ = campaign(EncryptionWorkload(chip.aes, key, period=ED_PERIOD), "tvla/random")
    result = welch_t_test(fixed, random_)
    return LeakageReport(
        result=result,
        n_fixed=fixed.shape[0],
        n_random=random_.shape[0],
        label="fixed-vs-random TVLA",
    )


def run_trojan_tvla(
    chip: Chip,
    scenario: Scenario,
    trojan: str,
    n_traces: int = 400,
    receiver: str = "sensor",
) -> LeakageReport:
    """Golden vs Trojan-active t-test (a second detection statistic)."""
    golden = collect_ed_traces(
        chip,
        scenario,
        n_traces,
        receivers=(receiver,),
        rng_role="tvla/golden",
        decimate=1,
    )[receiver]
    dirty = collect_ed_traces(
        chip,
        scenario,
        n_traces,
        trojan_enables=(trojan,),
        receivers=(receiver,),
        rng_role=f"tvla/{trojan}",
        decimate=1,
    )[receiver]
    result = welch_t_test(golden, dirty)
    return LeakageReport(
        result=result,
        n_fixed=golden.shape[0],
        n_random=dirty.shape[0],
        label=f"golden-vs-{trojan} TVLA",
    )
