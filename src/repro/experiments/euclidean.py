"""Section IV-C — simulated Euclidean distances of the four Trojans.

"The Euclidean distances between the reference circuit and Trojan 1,
2, 3, and 4 circuits are 0.27, 0.25, 0.05, and 0.28, respectively."

The driver trains the Eq. (1) detector on golden sensor traces, then
computes each Trojan's separation (distance between the golden
fingerprint and the mean suspect feature vector).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.euclidean import DistanceReport
from repro.chip.chip import Chip
from repro.chip.scenario import Scenario
from repro.experiments.campaign import get_or_fit_detector
from repro.experiments.parallel import campaign_spec, run_campaigns
from repro.io.cache import cache_stats

#: Paper's simulated EDs (on-chip sensor).
PAPER_EUCLIDEAN = {
    "trojan1": 0.27,
    "trojan2": 0.25,
    "trojan3": 0.05,
    "trojan4": 0.28,
}

DIGITAL_TROJANS = ("trojan1", "trojan2", "trojan3", "trojan4")


@dataclass
class EuclideanExperimentResult:
    """Separations + full reports per Trojan per receiver."""

    receiver: str
    threshold: float
    separations: dict[str, float]
    reports: dict[str, DistanceReport] = field(default_factory=dict)
    #: Trace-cache hit/miss counters at report time (None = cache off).
    cache: dict | None = field(default=None, repr=False)

    def format(self) -> str:
        """Render with the paper's values alongside."""
        lines = [
            f"Euclidean distances ({self.receiver}); "
            f"EDth (Eq. 1) = {self.threshold:.3f}"
        ]
        for name, sep in self.separations.items():
            ref = PAPER_EUCLIDEAN.get(name)
            ref_txt = f"  (paper: {ref:.2f})" if ref is not None else ""
            rep = self.reports.get(name)
            extra = (
                f", mean trace distance {rep.mean_distance:.3f}"
                if rep is not None
                else ""
            )
            lines.append(f"  {name:<9} ED = {sep:.3f}{extra}{ref_txt}")
        if self.cache is not None:
            lines.append(f"  trace cache: {self.cache}")
        return "\n".join(lines)


def run_euclidean_experiment(
    chip: Chip,
    scenario: Scenario,
    receiver: str = "sensor",
    n_golden: int = 1024,
    n_suspect: int = 384,
    trojans: tuple[str, ...] = DIGITAL_TROJANS,
    workers: int | None = None,
) -> EuclideanExperimentResult:
    """Compute Section IV-C's Euclidean distances for *receiver*.

    The golden and per-Trojan campaigns fan out across *workers*
    processes (see :mod:`repro.experiments.parallel`); results match
    the serial loop exactly.
    """
    specs = [
        campaign_spec(
            "golden",
            "ed",
            chip,
            scenario,
            n_traces=n_golden,
            receivers=(receiver,),
            rng_role="euclid/golden",
        )
    ]
    specs += [
        campaign_spec(
            name,
            "ed",
            chip,
            scenario,
            n_traces=n_suspect,
            trojan_enables=(name,),
            receivers=(receiver,),
            rng_role=f"euclid/{name}",
        )
        for name in trojans
    ]
    traces = run_campaigns(specs, workers=workers)
    detector = get_or_fit_detector(
        chip, scenario, "ed", dict(specs[0].params), traces["golden"][receiver]
    )
    separations: dict[str, float] = {}
    reports: dict[str, DistanceReport] = {}
    for name in trojans:
        report = detector.evaluate(traces[name][receiver])
        separations[name] = report.separation
        reports[name] = report
    assert detector.threshold is not None
    return EuclideanExperimentResult(
        receiver=receiver,
        threshold=detector.threshold,
        separations=separations,
        reports=reports,
        cache=cache_stats(),
    )
