"""Trojan localisation via surface field maps.

EM's "location awareness" advantage, quantified: for each Trojan, the
difference between golden and Trojan-active |B| maps is scored per
floorplan region; localisation succeeds when the Trojan's own region
scores highest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.acquire import EncryptionWorkload
from repro.chip.chip import Chip
from repro.em.fieldmap import FieldMap, trojan_difference_maps
from repro.experiments.campaign import DEFAULT_KEY, ED_PERIOD

LOCALIZABLE_TROJANS = ("trojan1", "trojan2", "trojan4")


@dataclass
class LocalizationResult:
    """Per-Trojan localisation outcome."""

    #: Region scores per Trojan: {trojan: {region: mean |dB|}}.
    scores: dict[str, dict[str, float]]
    #: Region the difference map points at, per Trojan.
    located_region: dict[str, str]
    diff_maps: dict[str, FieldMap]

    def localised(self, trojan: str) -> bool:
        return self.located_region[trojan] == trojan

    def format(self) -> str:
        lines = ["Trojan localisation via |B| difference maps"]
        for trojan, region in self.located_region.items():
            verdict = "OK" if region == trojan else "->" + region
            ranked = sorted(
                self.scores[trojan].items(), key=lambda kv: -kv[1]
            )[:3]
            top = ", ".join(f"{r}: {v:.2e}" for r, v in ranked)
            lines.append(f"  {trojan:<9} {verdict:<10} (top regions: {top})")
        return "\n".join(lines)


def run_localization(
    chip: Chip,
    trojans: tuple[str, ...] = LOCALIZABLE_TROJANS,
    n_cycles: int = 48,
    grid: int = 32,
    key: bytes = DEFAULT_KEY,
) -> LocalizationResult:
    """Locate each Trojan from the noise-free field difference map.

    Field maps come from mean switching activity (a layout-level
    simulation quantity, as in the paper's Section IV flow), so no
    measurement scenario is involved.
    """
    scores: dict[str, dict[str, float]] = {}
    located: dict[str, str] = {}
    diff_maps: dict[str, FieldMap] = {}
    maps = trojan_difference_maps(
        chip,
        trojans,
        lambda: EncryptionWorkload(chip.aes, key, period=ED_PERIOD),
        n_cycles=n_cycles,
        grid=grid,
    )
    for trojan in trojans:
        _golden, _active, diff = maps[trojan]
        region_scores = {
            name: diff.region_mean(region.rect)
            for name, region in chip.floorplan.regions.items()
        }
        scores[trojan] = region_scores
        # Locate by the hotspot (the single strongest |dB| point): the
        # region-mean ranking is biased toward thin regions that catch
        # a neighbour's fringe field.
        hx, hy = diff.hotspot()
        hit = next(
            (
                name
                for name, region in chip.floorplan.regions.items()
                if region.rect.contains(hx, hy, tol=1e-9)
            ),
            None,
        )
        located[trojan] = hit if hit is not None else max(
            region_scores, key=lambda k: region_scores[k]
        )
        diff_maps[trojan] = diff
    return LocalizationResult(
        scores=scores, located_region=located, diff_maps=diff_maps
    )
