"""Trojan localisation via surface field maps and sensor arrays.

EM's "location awareness" advantage, quantified two ways:

* :func:`run_localization` — the noise-free |B| difference-map view:
  for each Trojan, the difference between golden and Trojan-active
  field maps is scored per floorplan region; localisation succeeds
  when the Trojan's own region scores highest.
* :func:`run_array_localization` — the measurement view the
  programmable sensor-array follow-up enables: every sub-coil of the
  N×M grid is an independent anomaly channel.  The configured detector
  (any registry plugin) is fitted per channel on golden windows; a
  suspect campaign's per-channel anomaly z-scores form a coil-grid
  heatmap over the floorplan, and the argmax coil is compared against
  the Trojan's actual placement (hit@1 / hit@4, centroid distance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chip.acquire import EncryptionWorkload
from repro.chip.chip import Chip
from repro.chip.scenario import Scenario
from repro.em.fieldmap import FieldMap, trojan_difference_maps
from repro.errors import ExperimentError
from repro.experiments.campaign import (
    DEFAULT_KEY,
    ED_PERIOD,
    get_or_generate_traces,
)

LOCALIZABLE_TROJANS = ("trojan1", "trojan2", "trojan4")

#: The Trojans the sensor-array experiment localises (Table I order).
ARRAY_TROJANS = ("trojan1", "trojan2", "trojan3", "trojan4", "a2")


@dataclass
class LocalizationResult:
    """Per-Trojan localisation outcome."""

    #: Region scores per Trojan: {trojan: {region: mean |dB|}}.
    scores: dict[str, dict[str, float]]
    #: Region the difference map points at, per Trojan.
    located_region: dict[str, str]
    diff_maps: dict[str, FieldMap]

    def localised(self, trojan: str) -> bool:
        return self.located_region[trojan] == trojan

    def format(self) -> str:
        lines = ["Trojan localisation via |B| difference maps"]
        for trojan, region in self.located_region.items():
            verdict = "OK" if region == trojan else "->" + region
            ranked = sorted(
                self.scores[trojan].items(), key=lambda kv: -kv[1]
            )[:3]
            top = ", ".join(f"{r}: {v:.2e}" for r, v in ranked)
            lines.append(f"  {trojan:<9} {verdict:<10} (top regions: {top})")
        return "\n".join(lines)


def run_localization(
    chip: Chip,
    trojans: tuple[str, ...] = LOCALIZABLE_TROJANS,
    n_cycles: int = 48,
    grid: int = 32,
    key: bytes = DEFAULT_KEY,
) -> LocalizationResult:
    """Locate each Trojan from the noise-free field difference map.

    Field maps come from mean switching activity (a layout-level
    simulation quantity, as in the paper's Section IV flow), so no
    measurement scenario is involved.
    """
    scores: dict[str, dict[str, float]] = {}
    located: dict[str, str] = {}
    diff_maps: dict[str, FieldMap] = {}
    maps = trojan_difference_maps(
        chip,
        trojans,
        lambda: EncryptionWorkload(chip.aes, key, period=ED_PERIOD),
        n_cycles=n_cycles,
        grid=grid,
    )
    for trojan in trojans:
        _golden, _active, diff = maps[trojan]
        region_scores = {
            name: diff.region_mean(region.rect)
            for name, region in chip.floorplan.regions.items()
        }
        scores[trojan] = region_scores
        # Locate by the hotspot (the single strongest |dB| point): the
        # region-mean ranking is biased toward thin regions that catch
        # a neighbour's fringe field.
        hx, hy = diff.hotspot()
        hit = next(
            (
                name
                for name, region in chip.floorplan.regions.items()
                if region.rect.contains(hx, hy, tol=1e-9)
            ),
            None,
        )
        located[trojan] = hit if hit is not None else max(
            region_scores, key=lambda k: region_scores[k]
        )
        diff_maps[trojan] = diff
    return LocalizationResult(
        scores=scores, located_region=located, diff_maps=diff_maps
    )


# ----------------------------------------------------------------------
# Sensor-array localization: per-coil anomaly scoring
# ----------------------------------------------------------------------


def _robust_z(neg: np.ndarray, pos: np.ndarray) -> float:
    """Median shift of *pos* over *neg* in robust (MAD) sigma units."""
    med = float(np.median(neg))
    mad = float(np.median(np.abs(neg - med)))
    scale = 1.4826 * mad
    if scale <= 0.0:
        scale = max(float(np.std(neg)), 1e-30)
    return float((float(np.median(pos)) - med) / scale)


def _ranked_cells(heatmap: np.ndarray) -> list[tuple[int, int]]:
    """Cells by descending score; ties break on lowest flat index."""
    flat = np.asarray(heatmap, dtype=np.float64).ravel()
    cols = heatmap.shape[1]
    order = np.argsort(-flat, kind="stable")
    return [(int(i) // cols, int(i) % cols) for i in order]


def _chebyshev(a: tuple[int, int], b: tuple[int, int]) -> int:
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]))


@dataclass
class ArrayChannelOutcome:
    """One suspect round as seen by the whole coil grid."""

    #: Robust z per coil, shape ``(rows, cols)``, row 0 at the die's
    #: bottom edge (matching :class:`repro.em.sensor.SensorArray`).
    heatmap: np.ndarray
    #: Coil whose channel scores highest (ties: lowest flat index).
    argmax_cell: tuple[int, int]
    #: Grid cell over the Trojan's placed centroid (``None`` for the
    #: golden round, which has no true location).
    true_cell: tuple[int, int] | None
    #: argmax coil within one grid cell (Chebyshev) of the truth.
    hit1: bool
    #: any of the four top-scoring coils within one cell of the truth.
    hit4: bool
    #: Distance argmax-tile centre -> placed centroid [um].
    centroid_distance_um: float
    #: Channels whose detector's decide() flagged this round.
    detected_channels: int


@dataclass
class ArrayLocalizationResult:
    """Outcome of :func:`run_array_localization`."""

    rows: int
    cols: int
    detector: str
    reference_free: bool
    channels: tuple[str, ...]
    #: Per-Trojan outcomes, insertion-ordered like the input tuple.
    outcomes: dict[str, ArrayChannelOutcome]
    #: The golden suspect round (should stay quiet).
    golden: ArrayChannelOutcome
    #: Noise-free |B| difference maps per Trojan (rendered context).
    diff_maps: dict[str, FieldMap] = field(default_factory=dict)

    @property
    def golden_flagged(self) -> bool:
        """Any coil channel flagged the Trojan-free suspect round."""
        return self.golden.detected_channels > 0

    def hit_at(self, k: int) -> int:
        """Number of Trojans localised within one cell at rank *k*."""
        if k == 1:
            return sum(o.hit1 for o in self.outcomes.values())
        return sum(o.hit4 for o in self.outcomes.values())

    def format(self) -> str:
        um = 1e6
        lines = [
            f"Sensor-array localisation ({self.rows}x{self.cols} grid, "
            f"detector {self.detector!r})",
            f"  golden round: {self.golden.detected_channels} channel(s) "
            f"flagged ({'FAIL' if self.golden_flagged else 'clean'})",
        ]
        for trojan, o in self.outcomes.items():
            verdict = "hit@1" if o.hit1 else ("hit@4" if o.hit4 else "MISS")
            lines.append(
                f"  {trojan:<9} argmax r{o.argmax_cell[0]}c{o.argmax_cell[1]} "
                f"vs true r{o.true_cell[0]}c{o.true_cell[1]}  {verdict:<6} "
                f"centroid {o.centroid_distance_um:6.1f} um  "
                f"({o.detected_channels}/{len(self.channels)} ch flagged)"
            )
        lines.append(
            f"  hit@1 {self.hit_at(1)}/{len(self.outcomes)}, "
            f"hit@4 {self.hit_at(4)}/{len(self.outcomes)}"
        )
        return "\n".join(lines)

    def payload(self) -> dict:
        """JSON-encodable ``RunResult`` payload."""

        def cell(rc):
            return [int(rc[0]), int(rc[1])]

        def heat(h):
            return [[float(v) for v in row] for row in h]

        return {
            "rows": int(self.rows),
            "cols": int(self.cols),
            "detector": self.detector,
            "reference_free": bool(self.reference_free),
            "channels": list(self.channels),
            "golden": {
                "heatmap": heat(self.golden.heatmap),
                "detected_channels": int(self.golden.detected_channels),
                "flagged": bool(self.golden_flagged),
            },
            "trojans": {
                name: {
                    "heatmap": heat(o.heatmap),
                    "argmax_cell": cell(o.argmax_cell),
                    "true_cell": cell(o.true_cell),
                    "hit1": bool(o.hit1),
                    "hit4": bool(o.hit4),
                    "centroid_distance_um": float(o.centroid_distance_um),
                    "detected_channels": int(o.detected_channels),
                }
                for name, o in self.outcomes.items()
            },
            "hit1": int(self.hit_at(1)),
            "hit4": int(self.hit_at(4)),
            "fieldmaps": {
                name: fmap.as_payload()
                for name, fmap in self.diff_maps.items()
            },
        }


def run_array_localization(
    chip: Chip,
    scenario: Scenario,
    trojans: tuple[str, ...] = ARRAY_TROJANS,
    n_golden: int = 256,
    n_eval: int = 128,
    n_suspect: int = 128,
    detector_name: str | None = None,
    batch: int = 32,
    fieldmap_cycles: int = 48,
    fieldmap_grid: int = 32,
    key: bytes = DEFAULT_KEY,
    cache=None,
) -> ArrayLocalizationResult:
    """Localise Trojans from per-coil anomaly scores of the sensor array.

    The array turns the paper's single detection statistic spatial:
    the configured registry detector (*detector_name*, default the
    ``REPRO_DETECTOR`` knob) is fitted **per coil channel** on golden
    windows, every suspect campaign is scored per channel, and the
    per-coil robust z-scores form a ``(rows, cols)`` heatmap over the
    floorplan.  The argmax coil is then compared against the Trojan's
    placed centroid: *hit@1* means the top coil is within one grid
    cell (Chebyshev) of the cell over the centroid, *hit@4* relaxes to
    the four top-scoring coils.

    Golden-based plugins score decimated ED windows against their own
    held-out golden evaluation set; reference-free plugins score the
    pooled (golden-eval + suspect) full-rate windows, exactly like the
    detector tournament.  A Trojan-free "golden" suspect round is
    always evaluated too — :attr:`ArrayLocalizationResult.golden_flagged`
    is the array's false-positive check.

    All channels of every campaign come from **one** acquisition pass
    per round (the multi-channel synthesis path), so an N×M array
    costs the same simulation time as one coil.
    """
    from repro.detectors.registry import create_detector, get_detector_class

    array = chip.sensor_array
    if array is None:
        raise ExperimentError(
            "chip has no sensor array; build it with "
            "ChipConfig(sensor_array_rows=..., sensor_array_cols=...)"
        )
    channels = chip.receiver_groups.get("array")
    if not channels:
        raise ExperimentError("chip has no 'array' receiver group")
    if detector_name is None:
        from repro.config import active_config

        detector_name = active_config().detector
    info = get_detector_class(detector_name).info
    rows, cols = array.rows, array.cols

    def ed(enables, n, role, raw):
        params = dict(
            n_traces=n,
            receivers=channels,
            trojan_enables=tuple(enables),
            rng_role=role,
            batch=batch,
            key=key,
        )
        if raw:
            params["decimate"] = 1
        return get_or_generate_traces(chip, scenario, "ed", cache=cache, **params)

    raw = bool(info.reference_free)
    eval_traces = ed((), n_eval, "arrayloc/eval", raw)
    if info.reference_free:
        detectors = {
            ch: create_detector(detector_name).fit(np.empty((0, 0)))
            for ch in channels
        }
        neg_scores = {}
    else:
        fit_traces = ed((), n_golden, "arrayloc/fit", raw)
        detectors = {
            ch: create_detector(detector_name).fit(fit_traces[ch])
            for ch in channels
        }
        neg_scores = {
            ch: detectors[ch].score(eval_traces[ch]) for ch in channels
        }

    rounds = ("golden",) + tuple(trojans)
    outcomes: dict[str, ArrayChannelOutcome] = {}
    golden_outcome: ArrayChannelOutcome | None = None
    for name in rounds:
        enables = () if name == "golden" else (name,)
        suspect = ed(enables, n_suspect, f"arrayloc/suspect/{name}", raw)
        z = np.zeros(rows * cols, dtype=np.float64)
        detected = 0
        for i, ch in enumerate(channels):
            det = detectors[ch]
            if info.reference_free:
                scores = det.score(
                    np.vstack([eval_traces[ch], suspect[ch]])
                )
                neg, pos = scores[:n_eval], scores[n_eval:]
                decision = det.decide(scores)
            else:
                neg = neg_scores[ch]
                pos = det.score(suspect[ch])
                decision = det.decide(pos)
            z[i] = _robust_z(neg, pos)
            detected += bool(decision.detected)
        heatmap = z.reshape(rows, cols)
        ranked = _ranked_cells(heatmap)
        argmax_cell = ranked[0]
        if name == "golden":
            golden_outcome = ArrayChannelOutcome(
                heatmap=heatmap,
                argmax_cell=argmax_cell,
                true_cell=None,
                hit1=False,
                hit4=False,
                centroid_distance_um=float("nan"),
                detected_channels=detected,
            )
            continue
        cx, cy = chip.placement.group_centroid(chip.netlist, name)
        true_cell = array.cell_of(cx, cy)
        tile = array.tiles[argmax_cell[0] * cols + argmax_cell[1]]
        tx, ty = tile.center
        outcomes[name] = ArrayChannelOutcome(
            heatmap=heatmap,
            argmax_cell=argmax_cell,
            true_cell=true_cell,
            hit1=_chebyshev(argmax_cell, true_cell) <= 1,
            hit4=any(
                _chebyshev(c, true_cell) <= 1 for c in ranked[:4]
            ),
            centroid_distance_um=float(np.hypot(tx - cx, ty - cy) * 1e6),
            detected_channels=detected,
        )

    diff_maps = {
        trojan: maps[2]
        for trojan, maps in trojan_difference_maps(
            chip,
            tuple(trojans),
            lambda: EncryptionWorkload(chip.aes, key, period=ED_PERIOD),
            n_cycles=fieldmap_cycles,
            grid=fieldmap_grid,
        ).items()
    }
    return ArrayLocalizationResult(
        rows=rows,
        cols=cols,
        detector=detector_name,
        reference_free=bool(info.reference_free),
        channels=tuple(channels),
        outcomes=outcomes,
        golden=golden_outcome,
        diff_maps=diff_maps,
    )
