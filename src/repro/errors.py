"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still being able to discriminate netlist problems from, say,
measurement-configuration problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (unknown net, duplicate instance, ...)."""


class LibraryError(ReproError):
    """Unknown or malformed standard-cell definition."""


class SimulationError(ReproError):
    """The logic simulator cannot execute the netlist (e.g. combinational loop)."""


class LayoutError(ReproError):
    """Floorplanning / placement / routing failure."""


class TechnologyError(ReproError):
    """A geometry request violates the technology design rules."""


class EmModelError(ReproError):
    """Invalid electromagnetic model configuration."""


class MeasurementError(ReproError):
    """Invalid acquisition setup (oscilloscope, probe placement, ...)."""


class AnalysisError(ReproError):
    """Statistical analysis cannot proceed (empty reference set, shape mismatch, ...)."""


class TrojanError(ReproError):
    """Invalid hardware-Trojan configuration."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""
