"""Exception hierarchy for the repro library.

Every error raised by this package derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still being able to discriminate netlist problems from, say,
measurement-configuration problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (unknown net, duplicate instance, ...)."""


class LibraryError(ReproError):
    """Unknown or malformed standard-cell definition."""


class SimulationError(ReproError):
    """The logic simulator cannot execute the netlist (e.g. combinational loop)."""


class LayoutError(ReproError):
    """Floorplanning / placement / routing failure."""


class TechnologyError(ReproError):
    """A geometry request violates the technology design rules."""


class EmModelError(ReproError):
    """Invalid electromagnetic model configuration."""


class MeasurementError(ReproError):
    """Invalid acquisition setup (oscilloscope, probe placement, ...)."""


class AnalysisError(ReproError):
    """Statistical analysis cannot proceed (empty reference set, shape mismatch, ...)."""


class TrojanError(ReproError):
    """Invalid hardware-Trojan configuration."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class ConfigError(ReproError):
    """Invalid runtime configuration (:mod:`repro.config`).

    Raised for problems with the configuration *surface* itself —
    unknown override names, malformed snapshots, wrong value types.
    Knobs that predate the unified config keep raising their historical
    domain error (:class:`EmModelError` for the EM chunk budget,
    :class:`SimulationError` for the simulator backend,
    :class:`ExperimentError` for worker counts and cache sizes) so
    callers that already handle those keep working.
    """
