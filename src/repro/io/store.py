"""Trace-campaign persistence.

A :class:`TraceBundle` couples the trace matrix with the metadata
needed to interpret it later (receiver, sample rate, chip seed,
scenario name, Trojan enables, free-form extras).  Two on-disk formats
round-trip:

* **v2 (default)** — a raw ``.npy`` payload next to a ``.json``
  sidecar manifest.  Because the payload is uncompressed NumPy format,
  ``load_traces(..., mmap=True)`` hands back a *read-only memmapped*
  view with zero decompression or copying; the SHA-256 digest recorded
  in the manifest is checked only on request (``verify=True`` or
  :meth:`TraceBundle.verify`), so hot-path loads never stream the
  whole payload through a hash.
* **v1 (legacy)** — a single compressed ``.npz`` archive with an
  embedded manifest.  Still written when the target path ends in
  ``.npz`` and always loadable; its digest is checked eagerly on load
  (the bytes were just decompressed anyway).

Both :func:`save_traces` and :func:`load_traces` normalise missing
suffixes the same way, and :func:`save_traces` returns the path it
actually wrote — historically ``np.savez_compressed`` appended ``.npz``
silently, so the caller's path and the on-disk path disagreed.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import MeasurementError

#: Current default on-disk format version.
STORE_FORMAT_VERSION = 2


@dataclass
class TraceBundle:
    """A stored trace campaign."""

    traces: np.ndarray
    receiver: str
    fs: float
    chip_seed: int
    scenario: str
    trojan_enables: tuple[str, ...] = ()
    extras: dict = field(default_factory=dict)
    #: Digest recorded in the manifest this bundle was loaded from
    #: (``None`` for bundles built in memory).  v2 loads are lazy:
    #: call :meth:`verify` to check the payload against it.
    stored_digest: str | None = None

    @property
    def n_traces(self) -> int:
        return self.traces.shape[0]

    def digest(self) -> str:
        """SHA-256 of the trace bytes."""
        return hashlib.sha256(
            np.ascontiguousarray(self.traces).tobytes()
        ).hexdigest()

    def verify(self) -> "TraceBundle":
        """Check the payload against the stored manifest digest.

        Raises
        ------
        MeasurementError
            If the digests mismatch (corrupt payload).  Bundles built
            in memory (no stored digest) pass trivially.
        """
        if self.stored_digest is not None and self.digest() != self.stored_digest:
            raise MeasurementError("trace digest mismatch (corrupt payload)")
        return self


def _json_default(obj):
    """JSON encoder hook for numpy scalars and arrays."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serialisable: {type(obj)!r}")


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write *payload* to *path* via a same-directory temp + rename.

    The rename is atomic on POSIX, so concurrent writers (parallel
    campaign workers sharing a cache directory) and crash-interrupted
    ones can only ever leave complete files behind, never partially
    written ones.  This is the store-wide write convention: the trace
    cache, the v2 payload/sidecar writer and the fleet event journal
    all route through it.
    """
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:  # pragma: no cover - best-effort cleanup
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _manifest_for(bundle: TraceBundle, version: int) -> dict:
    return {
        "receiver": bundle.receiver,
        "fs": bundle.fs,
        "chip_seed": bundle.chip_seed,
        "scenario": bundle.scenario,
        "trojan_enables": list(bundle.trojan_enables),
        "extras": bundle.extras,
        "sha256": bundle.digest(),
        "format_version": version,
        "shape": list(bundle.traces.shape),
        "dtype": str(bundle.traces.dtype),
    }


#: Backwards-compatible private alias (pre-fleet call sites).
_atomic_write_bytes = atomic_write_bytes


def _sidecar_for(payload: Path) -> Path:
    return payload.with_suffix(".json")


def resolve_store_path(path: str | Path, fmt: str | None = None) -> Path:
    """Normalise *path* to the payload file a save would produce.

    ``.npz`` / ``.npy`` suffixes are kept; any other (or missing)
    suffix gains the extension of the requested format (default v2,
    ``.npy``).  Shared by :func:`save_traces` and :func:`load_traces`
    so the two always agree on the on-disk name.
    """
    path = Path(path)
    if fmt not in (None, "v1", "v2"):
        raise MeasurementError(f"unknown store format {fmt!r}")
    if path.suffix == ".npz" and fmt in (None, "v1"):
        return path
    if path.suffix == ".npy" and fmt in (None, "v2"):
        return path
    ext = ".npz" if fmt == "v1" else ".npy"
    return Path(str(path) + ext)


def save_traces(
    bundle: TraceBundle, path: str | Path, fmt: str | None = None
) -> Path:
    """Write a bundle and return the path actually written.

    *fmt* selects the on-disk format: ``"v2"`` (raw ``.npy`` payload +
    ``.json`` sidecar manifest, the default), ``"v1"`` (compressed
    ``.npz``), or ``None`` to infer it from the path suffix (``.npz``
    → v1, anything else → v2).  Writes are atomic (temp + rename), so
    a concurrent reader or a crash can never leave a torn file behind.
    """
    if bundle.traces.ndim != 2:
        raise MeasurementError(
            f"trace matrix must be 2-D, got shape {bundle.traces.shape}"
        )
    target = resolve_store_path(path, fmt)
    if target.suffix == ".npz":
        manifest = _manifest_for(bundle, version=1)
        np.savez_compressed(
            target,
            traces=bundle.traces,
            manifest=np.frombuffer(
                json.dumps(manifest, default=_json_default).encode("utf-8"),
                dtype=np.uint8,
            ),
        )
        return target
    manifest = _manifest_for(bundle, version=STORE_FORMAT_VERSION)
    buf = io.BytesIO()
    np.save(buf, np.ascontiguousarray(bundle.traces), allow_pickle=False)
    _atomic_write_bytes(target, buf.getvalue())
    # Sidecar last: its presence marks the payload as complete.
    _atomic_write_bytes(
        _sidecar_for(target),
        (json.dumps(manifest, indent=2, sort_keys=True, default=_json_default)
         + "\n").encode("utf-8"),
    )
    return target


def _bundle_from(traces: np.ndarray, manifest: dict) -> TraceBundle:
    return TraceBundle(
        traces=traces,
        receiver=manifest["receiver"],
        fs=float(manifest["fs"]),
        chip_seed=int(manifest["chip_seed"]),
        scenario=manifest["scenario"],
        trojan_enables=tuple(manifest["trojan_enables"]),
        extras=manifest.get("extras", {}),
        stored_digest=manifest.get("sha256"),
    )


def _load_v1(path: Path) -> TraceBundle:
    with np.load(path) as data:
        if "traces" not in data or "manifest" not in data:
            raise MeasurementError(f"{path} is not a repro trace bundle")
        traces = data["traces"]
        manifest = json.loads(bytes(data["manifest"].tobytes()).decode("utf-8"))
    return _bundle_from(traces, manifest)


def _load_v2(path: Path, mmap: bool) -> TraceBundle:
    sidecar = _sidecar_for(path)
    if not sidecar.exists():
        raise MeasurementError(
            f"{path} has no manifest sidecar {sidecar.name}; not a complete "
            "repro trace bundle"
        )
    manifest = json.loads(sidecar.read_text(encoding="utf-8"))
    if "sha256" not in manifest or "receiver" not in manifest:
        raise MeasurementError(f"{sidecar} is not a trace-bundle manifest")
    traces = np.load(path, mmap_mode="r" if mmap else None, allow_pickle=False)
    if mmap:
        traces.flags.writeable = False
    return _bundle_from(traces, manifest)


def load_traces(
    path: str | Path,
    mmap: bool = False,
    verify: bool | None = None,
) -> TraceBundle:
    """Load a bundle saved by :func:`save_traces` (either format).

    Parameters
    ----------
    path:
        Payload path; a missing suffix resolves exactly like
        :func:`save_traces` (``.npy`` preferred, ``.npz`` fallback).
    mmap:
        Return the v2 payload as a read-only memory map — zero copy,
        zero decompression.  v1 archives must decompress, so they load
        in memory regardless.
    verify:
        Check the stored digest eagerly.  Defaults to the per-format
        historical behaviour: ``True`` for v1 (bytes are in memory
        anyway), ``False`` for v2 (call :meth:`TraceBundle.verify`
        when wanted — hashing would force a full read of the mapped
        payload).

    Raises
    ------
    MeasurementError
        If no bundle exists at the path, the file is not a trace
        bundle, or (when verified) the digest mismatches.
    """
    raw = Path(path)
    candidates = [raw] if raw.exists() else [
        p for p in (Path(str(raw) + ".npy"), Path(str(raw) + ".npz"))
        if p.exists()
    ]
    if not candidates:
        raise MeasurementError(f"no trace bundle at {path}")
    target = candidates[0]
    is_v1 = target.suffix == ".npz"
    bundle = _load_v1(target) if is_v1 else _load_v2(target, mmap=mmap)
    if verify is None:
        verify = is_v1
    if verify and bundle.digest() != bundle.stored_digest:
        raise MeasurementError(f"{target}: trace digest mismatch (corrupt file)")
    return bundle


@dataclass(frozen=True)
class StreamStoreRef:
    """Wire-portable handle to a memmapped per-chip trace stream.

    The sharded fleet service hands trace batches to shard workers by
    *reference*: the front-end saves each chip's full trace matrix once
    through :func:`save_stream_store`, and ingest frames then carry
    this ref (a path plus the expected shape/dtype) instead of payload
    bytes.  A shard opens the ref with :func:`open_stream_store` as a
    read-only memory map, so every process shares the same page-cache
    copy of the traces — zero serialisation, zero duplication.

    The shape/dtype fields double as an integrity contract: a ref only
    opens if the file on disk still matches what the producer wrote.
    """

    path: str
    rows: int
    samples: int
    dtype: str

    def as_dict(self) -> dict:
        """JSON-encodable form (what actually crosses the wire)."""
        return {
            "path": self.path,
            "rows": self.rows,
            "samples": self.samples,
            "dtype": self.dtype,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "StreamStoreRef":
        return cls(
            path=str(data["path"]),
            rows=int(data["rows"]),
            samples=int(data["samples"]),
            dtype=str(data["dtype"]),
        )


def save_stream_store(
    traces: np.ndarray,
    path: str | Path,
    *,
    chip_id: str,
    fs: float = 0.0,
    receiver: str = "stream",
) -> StreamStoreRef:
    """Persist a chip's stream traces for shared-memmap hand-off.

    Wraps the matrix in a v2 :class:`TraceBundle` (raw ``.npy`` +
    sidecar, atomic writes) and returns the :class:`StreamStoreRef`
    a fleet ingest frame would carry.  ``chip_id`` lands in the
    manifest's ``scenario`` field so the sidecar stays self-describing.
    """
    if traces.ndim != 2:
        raise MeasurementError(
            f"stream traces must be 2-D, got shape {traces.shape}"
        )
    bundle = TraceBundle(
        traces=np.ascontiguousarray(traces),
        receiver=receiver,
        fs=float(fs),
        chip_seed=0,
        scenario=chip_id,
        extras={"stream_chip": chip_id},
    )
    written = save_traces(bundle, path, fmt="v2")
    return StreamStoreRef(
        path=str(written),
        rows=int(traces.shape[0]),
        samples=int(traces.shape[1]),
        dtype=str(np.ascontiguousarray(traces).dtype),
    )


def open_stream_store(ref: StreamStoreRef | Mapping) -> np.ndarray:
    """Open a :class:`StreamStoreRef` as a read-only memmapped matrix.

    Raises
    ------
    MeasurementError
        If the payload is missing or its shape/dtype disagrees with
        the ref — a shard must never silently score the wrong traces.
    """
    if not isinstance(ref, StreamStoreRef):
        ref = StreamStoreRef.from_dict(ref)
    bundle = load_traces(ref.path, mmap=True)
    traces = bundle.traces
    expected = (ref.rows, ref.samples)
    if tuple(traces.shape) != expected:
        raise MeasurementError(
            f"{ref.path}: stream store shape {tuple(traces.shape)} does not "
            f"match ref {expected}"
        )
    if str(traces.dtype) != ref.dtype:
        raise MeasurementError(
            f"{ref.path}: stream store dtype {traces.dtype} does not match "
            f"ref {ref.dtype}"
        )
    return traces


class StreamSegmentWriter:
    """Append-side of an incremental (chunked) stream store.

    The streaming fleet front-end hands trace chunks to shard workers
    the same way the one-shot path hands whole campaigns: by memmap
    reference, never by payload bytes.  Each :meth:`append` persists
    one chunk as its own v2 store file (``segment-00000.npy``, ...)
    and returns the :class:`StreamStoreRef` an ``APPEND`` frame
    carries.  Segments are immutable once written — "appendable"
    means the *stream* grows by whole segments, which is what keeps
    every write atomic (the store layer's temp-file + rename) and lets
    readers map each segment read-only the moment its frame arrives.
    """

    def __init__(self, directory: str | Path, prefix: str = "segment") -> None:
        self.directory = Path(directory)
        self.prefix = prefix
        self.appended = 0

    def append(
        self, traces: np.ndarray, *, label: str = "stream"
    ) -> StreamStoreRef:
        """Persist one chunk; returns its wire ref (segments number up)."""
        index = self.appended
        ref = save_stream_store(
            traces,
            self.directory / f"{self.prefix}-{index:05d}.npy",
            chip_id=f"{label}/{index}",
        )
        self.appended += 1
        return ref


class SegmentedStream:
    """Read-side of an incremental stream store: a virtual matrix.

    Covers source windows ``[0, n_windows)`` of one chip; rows arrive
    as memmapped segments (:meth:`append`, strictly in order) and are
    served by source sequence number (:meth:`gather`).  Implements the
    :class:`repro.fleet.feed.TraceSource` contract structurally, so a
    shard-side :class:`~repro.fleet.feed.TraceFeed` can replay its
    deterministic delivery schedule over rows that do not all exist
    yet — asking for a row beyond what has been appended is a protocol
    violation and raises, never blocks (the front-end orders ``APPEND``
    before any frame referencing the segment).  :meth:`advance` drops
    fully consumed segments so a long stream maps only its recent tail.
    """

    def __init__(self, n_windows: int, samples: int, dtype: str) -> None:
        if n_windows < 1:
            raise MeasurementError(
                f"segmented stream needs >= 1 window, got {n_windows}"
            )
        self._n_windows = int(n_windows)
        self.samples = int(samples)
        self.dtype = str(dtype)
        # Per segment: [lo, hi) in source seqs + that chip's row block,
        # kept as a read-only memmap slice (None once advanced past).
        self._bounds: list[tuple[int, int]] = []
        self._rows: list[np.ndarray | None] = []

    @property
    def n_windows(self) -> int:
        return self._n_windows

    @property
    def appended_through(self) -> int:
        """Source windows covered so far (``hi`` of the last segment)."""
        return self._bounds[-1][1] if self._bounds else 0

    def append(
        self,
        ref: StreamStoreRef | Mapping,
        lo: int,
        hi: int,
        row_offset: int = 0,
    ) -> None:
        """Attach the segment holding source windows ``[lo, hi)``.

        *row_offset* locates this chip's block inside the (possibly
        multi-chip) segment file.
        """
        lo, hi = int(lo), int(hi)
        if lo != self.appended_through:
            raise MeasurementError(
                f"segment [{lo}, {hi}) does not extend the stream at "
                f"{self.appended_through}; segments append in order"
            )
        if not lo <= hi <= self._n_windows:
            raise MeasurementError(
                f"segment [{lo}, {hi}) out of range for "
                f"{self._n_windows} windows"
            )
        block = open_stream_store(ref)
        rows = block[row_offset:row_offset + (hi - lo)]
        if rows.shape != (hi - lo, self.samples):
            raise MeasurementError(
                f"segment rows {rows.shape} do not cover [{lo}, {hi}) x "
                f"{self.samples} samples at offset {row_offset}"
            )
        if str(rows.dtype) != self.dtype:
            raise MeasurementError(
                f"segment dtype {rows.dtype} does not match stream "
                f"dtype {self.dtype}"
            )
        self._bounds.append((lo, hi))
        self._rows.append(rows)

    def gather(self, seqs: np.ndarray) -> np.ndarray:
        seqs = np.asarray(seqs, dtype=np.intp)
        n = seqs.shape[0]
        if n == 0:
            return np.empty((0, self.samples), dtype=self.dtype)
        if int(seqs.max()) >= self.appended_through:
            raise MeasurementError(
                f"gather references window {int(seqs.max())} but only "
                f"[0, {self.appended_through}) has been appended"
            )
        los = np.asarray([lo for lo, _ in self._bounds])
        owner = np.searchsorted(los, seqs, side="right") - 1
        first = int(owner[0])
        if (owner == first).all():
            rows = self._segment_rows(first)
            local = seqs - self._bounds[first][0]
            if int(local[-1]) - int(local[0]) == n - 1 and np.array_equal(
                local, np.arange(local[0], local[0] + n)
            ):
                return rows[int(local[0]):int(local[0]) + n]
            return rows[local]
        out = np.empty((n, self.samples), dtype=self.dtype)
        for seg in np.unique(owner):
            mask = owner == seg
            rows = self._segment_rows(int(seg))
            out[mask] = rows[seqs[mask] - self._bounds[int(seg)][0]]
        return out

    def _segment_rows(self, index: int) -> np.ndarray:
        rows = self._rows[index]
        if rows is None:
            lo, hi = self._bounds[index]
            raise MeasurementError(
                f"segment [{lo}, {hi}) was already advanced past; "
                "gather order violated the watermark contract"
            )
        return rows

    def advance(self, watermark: int) -> None:
        """Release segments no future gather can reference."""
        for i, (lo, hi) in enumerate(self._bounds):
            if self._rows[i] is not None and hi <= int(watermark):
                self._rows[i] = None


def save_json_report(report: dict, path: str | Path) -> None:
    """Write an experiment-result dictionary as pretty JSON."""
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True, default=_json_default)
        + "\n",
        encoding="utf-8",
    )


def load_json_report(path: str | Path) -> dict:
    """Load a JSON experiment report."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
