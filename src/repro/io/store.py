"""Trace-campaign persistence.

A :class:`TraceBundle` couples the trace matrix with the metadata
needed to interpret it later (receiver, sample rate, chip seed,
scenario name, Trojan enables, free-form extras).  Bundles round-trip
through a single compressed ``.npz`` file; a SHA-256 digest of the
trace bytes guards against silent corruption.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import MeasurementError


@dataclass
class TraceBundle:
    """A stored trace campaign."""

    traces: np.ndarray
    receiver: str
    fs: float
    chip_seed: int
    scenario: str
    trojan_enables: tuple[str, ...] = ()
    extras: dict = field(default_factory=dict)

    @property
    def n_traces(self) -> int:
        return self.traces.shape[0]

    def digest(self) -> str:
        """SHA-256 of the trace bytes."""
        return hashlib.sha256(
            np.ascontiguousarray(self.traces).tobytes()
        ).hexdigest()


def save_traces(bundle: TraceBundle, path: str | Path) -> None:
    """Write a bundle to a compressed ``.npz`` file."""
    if bundle.traces.ndim != 2:
        raise MeasurementError(
            f"trace matrix must be 2-D, got shape {bundle.traces.shape}"
        )
    manifest = {
        "receiver": bundle.receiver,
        "fs": bundle.fs,
        "chip_seed": bundle.chip_seed,
        "scenario": bundle.scenario,
        "trojan_enables": list(bundle.trojan_enables),
        "extras": bundle.extras,
        "sha256": bundle.digest(),
        "format_version": 1,
    }
    np.savez_compressed(
        path,
        traces=bundle.traces,
        manifest=np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        ),
    )


def load_traces(path: str | Path) -> TraceBundle:
    """Load a bundle, verifying the stored digest.

    Raises
    ------
    MeasurementError
        If the file is not a trace bundle or the digest mismatches.
    """
    with np.load(path) as data:
        if "traces" not in data or "manifest" not in data:
            raise MeasurementError(f"{path} is not a repro trace bundle")
        traces = data["traces"]
        manifest = json.loads(bytes(data["manifest"].tobytes()).decode("utf-8"))
    bundle = TraceBundle(
        traces=traces,
        receiver=manifest["receiver"],
        fs=float(manifest["fs"]),
        chip_seed=int(manifest["chip_seed"]),
        scenario=manifest["scenario"],
        trojan_enables=tuple(manifest["trojan_enables"]),
        extras=manifest.get("extras", {}),
    )
    if bundle.digest() != manifest["sha256"]:
        raise MeasurementError(f"{path}: trace digest mismatch (corrupt file)")
    return bundle


def save_json_report(report: dict, path: str | Path) -> None:
    """Write an experiment-result dictionary as pretty JSON."""

    def _default(obj):
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"not JSON-serialisable: {type(obj)!r}")

    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True, default=_default)
        + "\n",
        encoding="utf-8",
    )


def load_json_report(path: str | Path) -> dict:
    """Load a JSON experiment report."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
