"""Content-addressed artifact cache for the acquisition pipeline.

Every trace set this library generates is a pure function of a small
tuple of inputs: the chip build (seed, Trojan set, physical config),
the measurement scenario, the collector and its parameters, and the
pipeline code version.  :class:`PipelineKey` canonicalises that tuple
and hashes it; :class:`TraceCache` maps the hash to files on disk, so
any driver requesting the same (seed, scenario, trojan-set, receiver)
bundle — across processes, runs, or experiment suites — gets the bytes
it generated last time instead of re-running the chip build → gate
simulation → EM projection pipeline.

The cache is **off by default**.  Point ``REPRO_CACHE_DIR`` at a
directory to enable it process-wide; cap its size with
``REPRO_CACHE_MB`` (least-recently-used entries are evicted once the
budget is exceeded).  Bundles are stored in the v2 store format (raw
``.npy`` + JSON sidecar), so cache hits are zero-copy memmapped reads.
Writes go through atomic same-directory renames, making a shared cache
safe under :func:`repro.experiments.parallel.run_campaigns` workers.

Bump :data:`CACHE_SALT` whenever a code change alters what any
collector produces for the same inputs — the salt is folded into every
key, so stale entries simply stop being addressable.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from pathlib import Path

import numpy as np

# CACHE_DIR_ENV / CACHE_MB_ENV / DEFAULT_CACHE_MB are re-exported here
# for backwards compatibility; their resolution lives in repro.config.
from repro.config import (
    CACHE_DIR_ENV,
    CACHE_MB_ENV,
    DEFAULT_CACHE_MB,
    active_config,
)
from repro.errors import ExperimentError, MeasurementError
from repro.io.store import (
    TraceBundle,
    _atomic_write_bytes,
    _json_default,
    load_traces,
    save_traces,
)

#: Pipeline code-version salt.  Any change that alters collector output
#: for identical inputs must bump this, invalidating every old entry.
#: (2: acquisition fold moved to blocked float32 — traces shift ~1e-5.)
#: (3: keys gained the ``receivers`` field — the chip's installed
#: receiver set/array geometry — so single-coil and sensor-array
#: campaigns can never alias.)
CACHE_SALT = "repro-pipeline-3"


def _canon(obj):
    """Reduce *obj* to deterministic JSON-encodable primitives."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": bytes(obj).hex()}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": _canon(asdict(obj)),
        }
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj) if isinstance(obj, (set, frozenset)) else obj
        return [_canon(v) for v in items]
    raise ExperimentError(
        f"cannot canonicalise {type(obj).__name__!r} into a cache key"
    )


def canonical_json(obj) -> str:
    """Deterministic compact JSON encoding of *obj* (sorted keys)."""
    return json.dumps(_canon(obj), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class PipelineKey:
    """Everything that determines one pipeline artifact, canonicalised.

    The string fields hold :func:`canonical_json` encodings so the key
    itself stays hashable and order-insensitive; :meth:`digest` is the
    content address.
    """

    kind: str
    chip_seed: int
    chip_trojans: tuple[str, ...]
    chip_config: str
    scenario: str
    params: str
    #: The chip's installed receiver channels (names + group layout).
    #: The physical knobs behind them already live in ``chip_config``,
    #: but binding the realised channel set directly guarantees a
    #: sensor-array campaign and a single-coil campaign can never share
    #: a digest even if a future config change made their configs alias.
    receivers: str = "{}"
    salt: str = CACHE_SALT

    @classmethod
    def for_campaign(cls, chip, scenario, kind: str, params: dict) -> "PipelineKey":
        """Key for one collector call on *chip* under *scenario*."""
        return cls(
            kind=kind,
            chip_seed=chip.seed,
            chip_trojans=tuple(chip.trojans),
            chip_config=canonical_json(chip.config),
            scenario=canonical_json(scenario),
            params=canonical_json(params),
            receivers=canonical_json(
                {g: list(names) for g, names in chip.receiver_groups.items()}
            ),
        )

    def derived(self, label: str, **params) -> "PipelineKey":
        """Key of an artifact computed *from* this key's artifact.

        Used for post-processing products — fitted detector state,
        averaged spectra — whose identity is (input artifact, analysis
        parameters).
        """
        return PipelineKey(
            kind=f"{self.kind}/{label}",
            chip_seed=self.chip_seed,
            chip_trojans=self.chip_trojans,
            chip_config=self.chip_config,
            scenario=self.scenario,
            params=canonical_json({"base": self.params, **params}),
            receivers=self.receivers,
            salt=self.salt,
        )

    def digest(self) -> str:
        """SHA-256 content address of this key."""
        import hashlib

        return hashlib.sha256(
            canonical_json(asdict(self)).encode("utf-8")
        ).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/evict counters of one :class:`TraceCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }

    def format(self) -> str:
        return (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.puts} put(s), {self.evictions} eviction(s)"
        )


class TraceCache:
    """Disk-backed, content-addressed, LRU-bounded artifact store.

    Entries live under ``root/<digest[:2]>/`` as v2 trace bundles
    (``<digest>[-receiver].npy`` + sidecar) or JSON artifacts
    (``<digest>.artifact.json``).  Reads bump the file mtime, which is
    the LRU clock; writes are atomic renames, so concurrent readers
    and writers (parallel campaign workers) never see torn entries.
    """

    def __init__(
        self, root: str | Path, max_bytes: int | None = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and max_bytes <= 0:
            raise ExperimentError(
                f"cache size budget must be positive, got {max_bytes}"
            )
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    @classmethod
    def from_env(cls) -> "TraceCache | None":
        """Cache selected by the active config, or None when disabled.

        Reads :func:`repro.config.active_config` (``REPRO_CACHE_DIR`` /
        ``REPRO_CACHE_MB``, or a config pinned with ``use_config``).
        """
        cfg = active_config()
        if cfg.cache_dir is None:
            return None
        return cls(cfg.cache_dir, max_bytes=cfg.cache_bytes())

    # -- paths ---------------------------------------------------------
    def _base(self, key: PipelineKey | str, suffix: str = "") -> Path:
        digest = key.digest() if isinstance(key, PipelineKey) else str(key)
        name = f"{digest}-{suffix}" if suffix else digest
        return self.root / digest[:2] / name

    @staticmethod
    def _touch(*paths: Path) -> None:
        now = time.time()
        for p in paths:
            with contextlib.suppress(OSError):
                os.utime(p, (now, now))

    # -- trace bundles -------------------------------------------------
    def get_bundle(
        self, key: PipelineKey | str, receiver: str = "", mmap: bool = True
    ) -> TraceBundle | None:
        """Stored bundle for *key* (and *receiver*), or None on a miss.

        Hits return read-only memmapped traces by default — near-free
        regardless of campaign size.  A corrupt or torn entry counts
        as a miss and is dropped.
        """
        payload = self._base(key, receiver).with_suffix(".npy")
        if not payload.exists():
            self.stats.misses += 1
            return None
        try:
            bundle = load_traces(payload, mmap=mmap)
        except (MeasurementError, OSError, ValueError):
            self._remove_entry(payload)
            self.stats.misses += 1
            return None
        self._touch(payload, payload.with_suffix(".json"))
        self.stats.hits += 1
        return bundle

    def put_bundle(
        self, key: PipelineKey | str, bundle: TraceBundle, receiver: str = ""
    ) -> Path:
        """Store *bundle* under *key*, evicting LRU entries if needed."""
        payload = self._base(key, receiver).with_suffix(".npy")
        payload.parent.mkdir(parents=True, exist_ok=True)
        path = save_traces(bundle, payload, fmt="v2")
        self.stats.puts += 1
        self._evict()
        return path

    # -- derived JSON artifacts ----------------------------------------
    def get_json(self, key: PipelineKey | str):
        """Stored derived artifact for *key*, or None on a miss."""
        path = self._base(key).with_suffix(".artifact.json")
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            artifact = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self._remove_entry(path)
            self.stats.misses += 1
            return None
        self._touch(path)
        self.stats.hits += 1
        return artifact["value"]

    def put_json(self, key: PipelineKey | str, value) -> Path:
        """Store a JSON-encodable derived artifact (numpy types ok)."""
        path = self._base(key).with_suffix(".artifact.json")
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(
            path,
            json.dumps({"value": value}, default=_json_default).encode("utf-8"),
        )
        self.stats.puts += 1
        self._evict()
        return path

    # -- size management ----------------------------------------------
    def size_bytes(self) -> int:
        """Total bytes currently stored."""
        return sum(st.st_size for _p, st in self._files())

    def _files(self) -> list[tuple[Path, os.stat_result]]:
        out = []
        for p in self.root.rglob("*"):
            if not p.is_file() or p.name.endswith(".tmp"):
                continue
            with contextlib.suppress(OSError):
                out.append((p, p.stat()))
        return out

    @staticmethod
    def _entry_stem(path: Path) -> str:
        """Group key: payload + sidecar of one entry share a stem."""
        name = path.name
        for ext in (".artifact.json", ".json", ".npy"):
            if name.endswith(ext):
                return name[: -len(ext)]
        return name

    def _remove_entry(self, path: Path) -> None:
        """Drop every file of the entry *path* belongs to."""
        stem = self._entry_stem(path)
        for sibling in path.parent.glob(stem + ".*"):
            with contextlib.suppress(OSError):
                sibling.unlink()

    def _evict(self) -> None:
        """Remove least-recently-used entries until under budget."""
        if self.max_bytes is None:
            return
        files = self._files()
        total = sum(st.st_size for _p, st in files)
        if total <= self.max_bytes:
            return
        groups: dict[tuple[Path, str], dict] = {}
        for p, st in files:
            g = groups.setdefault(
                (p.parent, self._entry_stem(p)), {"size": 0, "mtime": 0.0, "paths": []}
            )
            g["size"] += st.st_size
            g["mtime"] = max(g["mtime"], st.st_mtime)
            g["paths"].append(p)
        for _key, g in sorted(groups.items(), key=lambda kv: kv[1]["mtime"]):
            if total <= self.max_bytes:
                break
            for p in g["paths"]:
                with contextlib.suppress(OSError):
                    p.unlink()
            total -= g["size"]
            self.stats.evictions += 1


#: Per-process caches keyed by (root, budget) so repeated
#: :func:`configured_cache` calls accumulate stats on one object.
_ACTIVE_CACHES: dict[tuple[str, int | None], TraceCache] = {}


def configured_cache() -> TraceCache | None:
    """The environment-configured cache for this process, or None.

    Re-reads the environment on every call (tests flip it), but hands
    back the same :class:`TraceCache` instance per configuration so
    hit/miss statistics aggregate across an experiment suite.
    """
    cache = TraceCache.from_env()
    if cache is None:
        return None
    key = (str(cache.root), cache.max_bytes)
    return _ACTIVE_CACHES.setdefault(key, cache)


def cache_stats() -> dict | None:
    """Statistics of the active environment cache (None when off).

    Per-process: campaigns executed in :mod:`repro.experiments.parallel`
    workers count their hits in the worker, not here.
    """
    cache = configured_cache()
    return cache.stats.as_dict() if cache is not None else None
