"""Persistence: trace campaigns and experiment results on disk.

Long campaigns are worth keeping — a silicon-scenario Fig. 6 run takes
minutes — so :mod:`repro.io.store` saves trace sets as compressed
``.npz`` bundles with a JSON manifest (scenario, chip seed, Trojan
enables) and reloads them with integrity checks.
"""

from repro.io.store import (
    TraceBundle,
    load_traces,
    save_traces,
    load_json_report,
    save_json_report,
)

__all__ = [
    "TraceBundle",
    "load_traces",
    "save_traces",
    "load_json_report",
    "save_json_report",
]
