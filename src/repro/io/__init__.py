"""Persistence: trace campaigns and experiment results on disk.

Long campaigns are worth keeping — a silicon-scenario Fig. 6 run takes
minutes — so :mod:`repro.io.store` saves trace sets as bundles with a
JSON manifest (scenario, chip seed, Trojan enables) and reloads them
with integrity checks.  Two formats coexist: the legacy compressed
``.npz`` (v1) and the default raw ``.npy`` + JSON sidecar (v2), whose
payload loads as a zero-copy read-only memmap.

:mod:`repro.io.cache` layers a content-addressed, LRU-bounded disk
cache on top (``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MB``), addressing
trace bundles and derived artifacts by a :class:`~repro.io.cache.
PipelineKey` hash of everything that determines them.
"""

from repro.io.cache import (
    CacheStats,
    PipelineKey,
    TraceCache,
    cache_stats,
    canonical_json,
    configured_cache,
)
from repro.io.store import (
    STORE_FORMAT_VERSION,
    TraceBundle,
    load_traces,
    resolve_store_path,
    save_traces,
    load_json_report,
    save_json_report,
)

__all__ = [
    "CacheStats",
    "PipelineKey",
    "STORE_FORMAT_VERSION",
    "TraceBundle",
    "TraceCache",
    "cache_stats",
    "canonical_json",
    "configured_cache",
    "load_traces",
    "resolve_store_path",
    "save_traces",
    "load_json_report",
    "save_json_report",
]
