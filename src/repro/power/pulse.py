"""Current-pulse kernels and event-train waveform synthesis.

Every switching event is an impulse carrying an amplitude (coupling ×
charge); convolving the impulse train with the right kernel produces
the receiver voltage:

* gate/clock/charge-pump events: current is a unit-area triangular
  pulse ``p(t)``, so the induced emf kernel is ``-p'(t)``
  (:func:`emf_kernel`);
* level-mode analog taps (T2's leakage): current is a smoothed step,
  so each on/off transition contributes ``-amp · p_rise(t)``
  (:func:`step_kernel` returns that unit-area rise pulse).

:func:`synthesize_events` scatters batched event amplitudes onto the
sample grid and performs one FFT convolution per kernel — this is the
step that turns hours of per-gate Hspice work into milliseconds of
numpy.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from repro.errors import EmModelError


def current_kernel(fs: float, width: float) -> np.ndarray:
    """Unit-area triangular current pulse sampled at *fs*.

    Parameters
    ----------
    fs:
        Sample rate [Hz].
    width:
        Full base width of the triangle [s].
    """
    if fs <= 0 or width <= 0:
        raise EmModelError("fs and width must be positive")
    n = max(3, int(round(width * fs)) | 1)  # odd length, >= 3 samples
    ramp = np.bartlett(n)
    area = ramp.sum() / fs
    return ramp / area


def emf_kernel(fs: float, width: float) -> np.ndarray:
    """Derivative of the triangular current pulse (emf shape).

    Convolving an impulse of amplitude ``M·q`` with this kernel yields
    ``M·q·p'(t)`` — the (sign-flipped) induced emf of one charge packet.
    """
    p = current_kernel(fs, width)
    return -np.gradient(p) * fs


def step_kernel(fs: float, rise_time: float) -> np.ndarray:
    """Unit-area rise pulse: derivative of a smoothed current step.

    Convolving signed transition impulses of amplitude ``M·amp`` with
    this kernel yields the emf of a level-mode analog tap.
    """
    return -current_kernel(fs, rise_time)


def synthesize_events(
    event_times: np.ndarray,
    event_amplitudes: np.ndarray,
    kernel: np.ndarray,
    n_samples: int,
    fs: float,
) -> np.ndarray:
    """Convolve a batched impulse train with *kernel*.

    Parameters
    ----------
    event_times:
        Event times [s], shape ``(E,)`` shared across the batch.
    event_amplitudes:
        Amplitudes, shape ``(E,)`` or ``(E, batch)``.
    kernel:
        Sampled kernel (see the kernel constructors above).
    n_samples:
        Output trace length.
    fs:
        Sample rate [Hz].

    Returns
    -------
    numpy.ndarray
        Waveforms of shape ``(batch, n_samples)`` (batch = 1 for 1-D
        amplitudes).
    """
    times = np.asarray(event_times, dtype=np.float64)
    amps = np.asarray(event_amplitudes, dtype=np.float64)
    if amps.ndim == 1:
        amps = amps[:, None]
    if times.shape[0] != amps.shape[0]:
        raise EmModelError(
            f"{times.shape[0]} event times vs {amps.shape[0]} amplitude rows"
        )
    batch = amps.shape[1]
    impulses = np.zeros((batch, n_samples))
    idx = np.round(times * fs).astype(np.int64)
    keep = (idx >= 0) & (idx < n_samples)
    if keep.any():
        np.add.at(impulses, (slice(None), idx[keep]), amps[keep].T)
    return convolve_kernel(impulses, kernel)


def convolve_kernel(impulses: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Centered FFT convolution of batched impulse trains with a kernel."""
    if impulses.ndim != 2:
        raise EmModelError(f"impulse array must be 2-D, got {impulses.shape}")
    out = signal.fftconvolve(impulses, kernel[None, :], mode="full", axes=1)
    lead = len(kernel) // 2
    return out[:, lead : lead + impulses.shape[1]]
