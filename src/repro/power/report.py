"""Power reporting — a PrimeTime-PX-lite for the generated designs.

Combines toggle statistics from a simulation run with the per-cell
charge model into dynamic/clock/leakage power per instance group, so
the chip's power budget (and each Trojan's overhead, which the paper's
related work frets about) can be reported directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.layout.technology import Technology
from repro.logic.netlist import Netlist
from repro.logic.simulator import CompiledNetlist
from repro.power.charges import clock_charges, switching_charges


@dataclass
class GroupPower:
    """Power breakdown of one instance group [W]."""

    group: str
    dynamic: float
    clock: float
    leakage: float

    @property
    def total(self) -> float:
        return self.dynamic + self.clock + self.leakage


@dataclass
class PowerReport:
    """Per-group and total power of one workload run."""

    groups: dict[str, GroupPower]
    f_clk: float
    cycles: int

    @property
    def total(self) -> float:
        return sum(g.total for g in self.groups.values())

    def overhead_percent(self, group: str, reference: str = "aes") -> float:
        """One group's power as a percentage of another's."""
        ref = self.groups[reference].total
        if ref == 0:
            raise ZeroDivisionError(f"group {reference!r} draws no power")
        return 100.0 * self.groups[group].total / ref

    def format(self) -> str:
        lines = [
            f"{'group':<10} {'dynamic':>10} {'clock':>10} {'leakage':>10}"
            f" {'total':>10}   [mW]"
        ]
        for name in sorted(self.groups):
            g = self.groups[name]
            lines.append(
                f"{name:<10} {g.dynamic * 1e3:>10.3f} {g.clock * 1e3:>10.3f}"
                f" {g.leakage * 1e3:>10.3f} {g.total * 1e3:>10.3f}"
            )
        lines.append(f"{'TOTAL':<10} {'':>10} {'':>10} {'':>10} "
                     f"{self.total * 1e3:>10.3f}")
        return "\n".join(lines)


def measure_power(
    netlist: Netlist,
    sim: CompiledNetlist,
    tech: Technology,
    f_clk: float,
    run_cycles,
) -> PowerReport:
    """Run a workload and report per-group power.

    Parameters
    ----------
    netlist, sim, tech:
        The design, its compiled form, and the process data.
    f_clk:
        Clock frequency [Hz].
    run_cycles:
        Callable ``run_cycles(sim) -> (toggle_counts, clock_counts,
        n_cycles, batch)`` driving the workload; see
        :func:`encryption_power_workload` for the standard one.
    """
    toggle_counts, clock_counts, n_cycles, batch = run_cycles(sim)
    if n_cycles <= 0 or batch <= 0:
        raise SimulationError("workload reported no cycles")
    names = sim.instance_names
    q_sw = switching_charges(netlist, names, tech)
    q_clk = clock_charges(netlist, names, tech)

    denom = n_cycles * batch
    dyn_power = toggle_counts / denom * q_sw * tech.vdd * f_clk
    clk_power = clock_counts / denom * q_clk * tech.vdd * f_clk

    groups: dict[str, GroupPower] = {}
    for i, name in enumerate(names):
        inst = netlist.instances[name]
        g = groups.get(inst.group)
        if g is None:
            g = GroupPower(group=inst.group, dynamic=0.0, clock=0.0, leakage=0.0)
            groups[inst.group] = g
        g.dynamic += float(dyn_power[i])
        g.clock += float(clk_power[i])
        g.leakage += inst.cell.leakage * tech.vdd
    return PowerReport(groups=groups, f_clk=f_clk, cycles=n_cycles)


def encryption_power_workload(aes, key: bytes, n_cycles: int = 96, batch: int = 8):
    """Standard workload driver for :func:`measure_power`."""

    def run(sim: CompiledNetlist):
        from repro.crypto.encoding import random_blocks
        from repro.rng import derive

        rng = derive(0, "power-report")
        keys = np.tile(np.frombuffer(key, np.uint8), (batch, 1))
        state = sim.reset(
            batch=batch,
            inputs=aes.start_inputs(random_blocks(rng, batch), keys),
        )
        toggles = np.zeros(sim.num_instances, dtype=np.float64)
        clocks = np.zeros(sim.num_instances, dtype=np.float64)
        for k in range(1, n_cycles + 1):
            en = sim.clock_enable_values(state)
            clocks[sim.seq_instance_idx] += en.sum(axis=1)
            phase = k % 12
            if phase == 0:
                step_inputs = aes.start_inputs(random_blocks(rng, batch), keys)
            elif phase == 1:
                step_inputs = aes.idle_inputs(batch)
            else:
                step_inputs = None
            toggles += sim.step(state, step_inputs).sum(axis=1)
        return toggles, clocks, n_cycles, batch

    return run
