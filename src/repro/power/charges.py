"""Per-cell charge and power accounting.

The dynamic charge a cell moves per output toggle is

    q = (C_out,intrinsic + Σ fanout input pin caps + C_wire) · VDD

with the wire capacitance estimated from fanout (a placed-but-unrouted
netlist has no extracted parasitics; a 6 µm-per-pin estimate is the
usual pre-route heuristic at 180 nm).  Sequential cells additionally
move a clock charge every cycle their clock is enabled.
"""

from __future__ import annotations

import numpy as np

from repro.layout.technology import Technology
from repro.logic.netlist import Netlist
from repro.units import UM

#: Estimated routed wire length per fanout pin [m].
WIRE_LENGTH_PER_PIN = 8 * UM

#: Clock-pin charge of a flop, as a multiple of its input pin cap.
CLOCK_CAP_FACTOR = 2.0


def switching_charges(
    netlist: Netlist,
    instance_names: list[str],
    tech: Technology,
) -> np.ndarray:
    """Charge moved per output toggle for each instance [C].

    *instance_names* fixes the output ordering (pass the compiled
    netlist's instance order so the vector aligns with toggle matrices).
    """
    charges = np.zeros(len(instance_names))
    for i, name in enumerate(instance_names):
        inst = netlist.instances[name]
        out_net = netlist.nets[inst.output_net]
        load_cap = inst.cell.output_cap
        for load_name, pin in out_net.loads:
            load_cell = netlist.instances[load_name].cell
            load_cap += load_cell.input_cap
        load_cap += tech.wire_cap_per_m * WIRE_LENGTH_PER_PIN * max(
            1, out_net.fanout
        )
        charges[i] = load_cap * tech.vdd
    return charges


def clock_charges(
    netlist: Netlist,
    instance_names: list[str],
    tech: Technology,
) -> np.ndarray:
    """Per-cycle clock charge for each instance [C]; zero for
    combinational cells."""
    charges = np.zeros(len(instance_names))
    for i, name in enumerate(instance_names):
        inst = netlist.instances[name]
        if inst.cell.is_sequential:
            charges[i] = CLOCK_CAP_FACTOR * inst.cell.input_cap * tech.vdd
    return charges


def leakage_power(netlist: Netlist, tech: Technology) -> float:
    """Total static leakage power of the netlist [W]."""
    total_current = sum(
        inst.cell.leakage for inst in netlist.instances.values()
    )
    return total_current * tech.vdd


def total_dynamic_energy(
    toggle_counts: np.ndarray,
    charges: np.ndarray,
    vdd: float,
) -> float:
    """Dynamic switching energy of a recorded activity history [J].

    ``toggle_counts`` are per-instance totals (e.g. from
    :class:`~repro.logic.activity.ToggleCountRecorder`), *charges* the
    matching per-toggle charge vector.
    """
    counts = np.asarray(toggle_counts, dtype=np.float64)
    q = np.asarray(charges, dtype=np.float64)
    if counts.shape != q.shape:
        raise ValueError(
            f"toggle counts {counts.shape} and charges {q.shape} must match"
        )
    return float((counts * q).sum() * vdd)
