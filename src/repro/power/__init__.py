"""Transient-current synthesis.

Replaces the paper's Hspice step: each cell toggle becomes a charge
packet (:mod:`~repro.power.charges`) drawn through the power grid as a
short triangular pulse placed within the clock period according to the
gate's logic depth (:mod:`~repro.power.pulse`).  Flip-flops additionally
draw a clock charge every enabled cycle, which is what puts the clock
line and its harmonics into the EM spectra.
"""

from repro.power.charges import (
    clock_charges,
    leakage_power,
    switching_charges,
    total_dynamic_energy,
)
from repro.power.report import PowerReport, encryption_power_workload, measure_power
from repro.power.pulse import (
    current_kernel,
    emf_kernel,
    step_kernel,
    synthesize_events,
)

__all__ = [
    "clock_charges",
    "leakage_power",
    "switching_charges",
    "total_dynamic_energy",
    "current_kernel",
    "emf_kernel",
    "step_kernel",
    "synthesize_events",
    "PowerReport",
    "encryption_power_workload",
    "measure_power",
]
