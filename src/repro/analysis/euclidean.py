"""Euclidean-distance Trojan detector with the paper's Eq. (1) threshold.

"The threshold value is defined to be the maximum Euclidean distance
among the data of Trojan-free design":

.. math::

    ED_{th} = \\arg\\max_{D_i, D_j \\in D_g} \\lVert D_i - D_j \\rVert_2

Traces are compared as *shapes*: each trace is mean-removed and scaled
to unit L2 norm before any distance is taken.  That normalisation is
what puts every distance in the paper's 0–1.5 range (Fig. 6 axes) and
bounds the metric at 2 regardless of how loud a Trojan is — a huge
power waster (T4) and a mid-size leaker (T1) then land at comparable
distances, exactly as Table I's sizes vs Section IV-C's 0.27/0.25/
0.05/0.28 show.

A PCA stage (fit on golden data) can optionally denoise the features;
the default follows the paper's raw-trace processing ("we only perform
the analysis on the raw data from on-chip sensor directly").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.pca import PCA
from repro.errors import AnalysisError


def normalize_traces(traces: np.ndarray) -> np.ndarray:
    """Mean-remove and unit-norm every trace (row).

    Raises
    ------
    AnalysisError
        If any trace is constant (no shape to compare).
    """
    x = np.asarray(traces, dtype=np.float64)
    if x.ndim != 2:
        raise AnalysisError(f"traces must be (n, samples), got {x.shape}")
    x = x - x.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    if np.any(norms == 0):
        raise AnalysisError("cannot normalise a constant trace")
    # ``x`` is a fresh array here, so dividing in place is safe and
    # saves one full-matrix allocation on the fleet hot path.
    x /= norms
    return x


def euclidean_distances(data: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """L2 distance of each row of *data* to a single *reference* vector."""
    x = np.asarray(data, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if x.ndim != 2 or ref.shape != (x.shape[1],):
        raise AnalysisError(
            f"data {x.shape} / reference {ref.shape} shape mismatch"
        )
    return np.linalg.norm(x - ref[None, :], axis=1)


def pairwise_max_distance(data: np.ndarray, chunk: int = 512) -> float:
    """Maximum pairwise L2 distance within *data* (Eq. (1)), chunked."""
    x = np.asarray(data, dtype=np.float64)
    if x.ndim != 2 or x.shape[0] < 2:
        raise AnalysisError("need at least two golden vectors for Eq. (1)")
    sq = (x**2).sum(axis=1)
    best = 0.0
    for i0 in range(0, x.shape[0], chunk):
        xi = x[i0 : i0 + chunk]
        d2 = sq[i0 : i0 + chunk, None] + sq[None, :] - 2.0 * (xi @ x.T)
        best = max(best, float(d2.max()))
    return float(np.sqrt(max(best, 0.0)))


#: Alias used by the public API (the paper calls this EDth).
max_intra_distance = pairwise_max_distance


def _bootstrap_orders(
    rng: np.random.Generator, n: int, n_bootstrap: int
) -> np.ndarray:
    """All split-half permutations at once, shape ``(n_bootstrap, n)``.

    One ``permuted`` call on a tiled index matrix replaces
    ``n_bootstrap`` sequential ``permutation`` draws.
    """
    return rng.permuted(
        np.broadcast_to(np.arange(n), (n_bootstrap, n)), axis=1
    )


def _split_half_floors(feats: np.ndarray, orders: np.ndarray) -> np.ndarray:
    """Split-half mean distances for every permutation, vectorised.

    For each row of *orders* the first and second half index a golden
    subset; both half-means are formed in one indicator-matrix matmul
    (``(2B, n) @ (n, d)``) instead of a Python loop of fancy-indexed
    means.
    """
    n_bootstrap, n = orders.shape
    half = n // 2
    indicator = np.zeros((2 * n_bootstrap, n))
    rows = np.repeat(np.arange(n_bootstrap), half)
    indicator[2 * rows, orders[:, :half].ravel()] = 1.0
    indicator[2 * rows + 1, orders[:, half : 2 * half].ravel()] = 1.0
    means = (indicator @ feats) / half
    return np.linalg.norm(means[0::2] - means[1::2], axis=1)


def _split_half_floors_loop(
    feats: np.ndarray, orders: np.ndarray
) -> np.ndarray:
    """Loop reference for :func:`_split_half_floors` (tests only)."""
    half = orders.shape[1] // 2
    floors = []
    for order in orders:
        a = feats[order[:half]].mean(axis=0)
        b = feats[order[half : 2 * half]].mean(axis=0)
        floors.append(float(np.linalg.norm(a - b)))
    return np.array(floors)


@dataclass
class DistanceReport:
    """Distances of a suspect set plus the verdict."""

    distances: np.ndarray
    threshold: float
    mean_distance: float
    exceed_fraction: float
    separation: float
    #: Largest separation explainable by golden sampling noise alone
    #: (bootstrap split-half estimate scaled by a safety factor).
    separation_floor: float

    @property
    def detected(self) -> bool:
        """Verdict: the suspect set's systematic shift exceeds what
        golden sampling noise can produce, or individual traces trip
        the Eq. (1) threshold in bulk."""
        return (
            self.separation > self.separation_floor
            or self.exceed_fraction > 0.5
        )


class EuclideanDetector:
    """Golden-model fingerprint + Eq. (1) threshold in unit-norm space."""

    #: Safety factor on the bootstrap separation floor.
    FLOOR_FACTOR = 1.5

    def __init__(
        self,
        n_components: int | None = None,
        n_bootstrap: int = 32,
        seed: int = 0,
    ) -> None:
        self.n_components = n_components
        self.n_bootstrap = n_bootstrap
        self.seed = seed
        self._pca: PCA | None = None
        self._fingerprint: np.ndarray | None = None
        self.threshold: float | None = None
        self.golden_distances: np.ndarray | None = None
        self.separation_floor: float | None = None

    # ------------------------------------------------------------------
    def fit(self, golden_traces: np.ndarray) -> "EuclideanDetector":
        """Learn the fingerprint and Eq. (1) threshold from Trojan-free
        traces."""
        x = np.asarray(golden_traces, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 2:
            raise AnalysisError("need at least two golden traces to fit")
        feats = normalize_traces(x)
        if self.n_components is not None:
            k = min(self.n_components, feats.shape[0] - 1, feats.shape[1])
            self._pca = PCA(k).fit(feats)
            feats = self._pca.transform(feats)
        return self._fit_stats(feats)

    def _fit_stats(self, feats: np.ndarray) -> "EuclideanDetector":
        """Golden statistics from already-extracted feature rows.

        The feature space is whatever :meth:`features` produces —
        unit-norm trace shapes here, per-window amplitude spectra in
        the registry's spectral plugin — and every derived statistic
        (fingerprint, Eq. (1) threshold, per-row distances, bootstrap
        separation floor) is computed the same way in either space.
        """
        self._fingerprint = feats.mean(axis=0)
        self.threshold = pairwise_max_distance(feats)
        self.golden_distances = euclidean_distances(feats, self._fingerprint)
        # Bootstrap the separation a golden-vs-golden comparison can
        # reach by sampling alone: random split-half mean distances.
        rng = np.random.default_rng(self.seed)
        orders = _bootstrap_orders(rng, feats.shape[0], self.n_bootstrap)
        floors = _split_half_floors(feats, orders)
        self.separation_floor = self.FLOOR_FACTOR * float(floors.max())
        return self

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Fitted state as JSON-encodable primitives.

        Together with :meth:`from_state` this lets the golden
        fingerprint be computed once and served from the artifact
        cache — the paper's runtime framing, where characterisation
        happens before deployment and every suspect evaluation reuses
        the stored reference.
        """
        if self._fingerprint is None or self.threshold is None:
            raise AnalysisError("cannot serialise an unfitted detector")
        state = {
            "n_components": self.n_components,
            "n_bootstrap": self.n_bootstrap,
            "seed": self.seed,
            "threshold": self.threshold,
            "separation_floor": self.separation_floor,
            "fingerprint": self._fingerprint.tolist(),
            "golden_distances": self.golden_distances.tolist(),
            "pca": None,
        }
        if self._pca is not None:
            state["pca"] = {
                "n_components": self._pca.n_components,
                "mean": self._pca.mean_.tolist(),
                "components": self._pca.components_.tolist(),
                "explained_variance": self._pca.explained_variance_.tolist(),
                "explained_variance_ratio":
                    self._pca.explained_variance_ratio_.tolist(),
            }
        return state

    @classmethod
    def from_state(cls, state: dict) -> "EuclideanDetector":
        """Rebuild a fitted detector from :meth:`state_dict` output."""
        det = cls(
            n_components=state["n_components"],
            n_bootstrap=state["n_bootstrap"],
            seed=state["seed"],
        )
        det.threshold = float(state["threshold"])
        det.separation_floor = (
            float(state["separation_floor"])
            if state["separation_floor"] is not None
            else None
        )
        det._fingerprint = np.asarray(state["fingerprint"], dtype=np.float64)
        det.golden_distances = np.asarray(
            state["golden_distances"], dtype=np.float64
        )
        pca_state = state.get("pca")
        if pca_state is not None:
            pca = PCA(pca_state["n_components"])
            pca.mean_ = np.asarray(pca_state["mean"], dtype=np.float64)
            pca.components_ = np.asarray(
                pca_state["components"], dtype=np.float64
            )
            pca.explained_variance_ = np.asarray(
                pca_state["explained_variance"], dtype=np.float64
            )
            pca.explained_variance_ratio_ = np.asarray(
                pca_state["explained_variance_ratio"], dtype=np.float64
            )
            det._pca = pca
        return det

    @property
    def fingerprint(self) -> np.ndarray:
        """Golden mean feature vector (read-only).

        Raises
        ------
        AnalysisError
            If the detector has not been fitted.
        """
        if self._fingerprint is None:
            raise AnalysisError("detector used before fit()")
        view = self._fingerprint.view()
        view.flags.writeable = False
        return view

    @property
    def uses_pca(self) -> bool:
        """Whether :meth:`features` applies a fitted PCA projection.

        Row-wise normalisation alone is independent across traces, so
        features of many chips' windows can be extracted in one
        batched call with bit-identical results; the PCA matmul is not
        row-blocking-invariant, so batched consumers check this flag
        and fall back to per-chip extraction when it is set.
        """
        return self._pca is not None

    def features(self, traces: np.ndarray) -> np.ndarray:
        """Normalise (and PCA-project, if fitted so) traces."""
        feats = normalize_traces(traces)
        if self._pca is not None:
            feats = self._pca.transform(feats)
        return feats

    def distances(self, traces: np.ndarray) -> np.ndarray:
        """Distance of each trace to the golden fingerprint."""
        if self._fingerprint is None:
            raise AnalysisError("detector used before fit()")
        return euclidean_distances(self.features(traces), self._fingerprint)

    def separation(self, traces: np.ndarray) -> float:
        """Paper-style single-number Euclidean distance between designs.

        The Section IV-C numbers compare the suspect set's *mean*
        feature vector against the golden fingerprint, averaging out
        plaintext-to-plaintext variation and leaving the systematic
        shift the Trojan causes.
        """
        if self._fingerprint is None:
            raise AnalysisError("detector used before fit()")
        feats = self.features(traces)
        return float(np.linalg.norm(feats.mean(axis=0) - self._fingerprint))

    def evaluate(self, traces: np.ndarray) -> DistanceReport:
        """Score a suspect trace set against the golden fingerprint."""
        if self.threshold is None or self.separation_floor is None:
            raise AnalysisError("detector used before fit()")
        d = self.distances(traces)
        return DistanceReport(
            distances=d,
            threshold=self.threshold,
            mean_distance=float(d.mean()),
            exceed_fraction=float((d > self.threshold).mean()),
            separation=self.separation(traces),
            separation_floor=self.separation_floor,
        )
