"""Histogram utilities for the Figure 6 views.

Figure 6 plots, per Trojan and per receiver, the histogram of golden
Euclidean distances (red) against Trojan-active distances (blue).  The
paper's qualitative reading — probe histograms overlap with
inseparable peaks, sensor histograms have separable peaks — is made
quantitative here via overlap coefficients and peak separation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass
class DistanceHistogram:
    """Binned distance distributions of golden vs Trojan-active data."""

    bin_edges: np.ndarray
    golden_counts: np.ndarray
    trojan_counts: np.ndarray

    @property
    def bin_centers(self) -> np.ndarray:
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])

    def golden_peak(self) -> float:
        """Distance at the golden distribution's mode."""
        return float(self.bin_centers[int(np.argmax(self.golden_counts))])

    def trojan_peak(self) -> float:
        """Distance at the Trojan distribution's mode."""
        return float(self.bin_centers[int(np.argmax(self.trojan_counts))])

    def render(self, width: int = 60, height: int = 10) -> str:
        """ASCII rendering (g = golden, T = trojan, * = both)."""
        g = self.golden_counts.astype(float)
        t = self.trojan_counts.astype(float)
        peak = max(g.max(), t.max(), 1.0)
        cols = min(width, g.size)
        idx = np.linspace(0, g.size - 1, cols).astype(int)
        rows = []
        for level in range(height, 0, -1):
            cut = peak * level / height
            row = []
            for i in idx:
                has_g = g[i] >= cut
                has_t = t[i] >= cut
                row.append("*" if has_g and has_t else "g" if has_g else "T" if has_t else " ")
            rows.append("".join(row))
        rows.append("-" * cols)
        lo, hi = self.bin_edges[0], self.bin_edges[-1]
        rows.append(f"{lo:.2f}{' ' * max(1, cols - 12)}{hi:.2f}")
        return "\n".join(rows)


def distance_histogram(
    golden_distances: np.ndarray,
    trojan_distances: np.ndarray,
    bins: int = 80,
    range_max: float | None = None,
) -> DistanceHistogram:
    """Bin the two distance populations on a shared axis."""
    g = np.asarray(golden_distances, dtype=np.float64)
    t = np.asarray(trojan_distances, dtype=np.float64)
    if g.size == 0 or t.size == 0:
        raise AnalysisError("both distance sets must be non-empty")
    hi = range_max if range_max is not None else float(max(g.max(), t.max())) * 1.05
    edges = np.linspace(0.0, max(hi, 1e-12), bins + 1)
    g_counts, _ = np.histogram(g, bins=edges)
    t_counts, _ = np.histogram(t, bins=edges)
    return DistanceHistogram(
        bin_edges=edges, golden_counts=g_counts, trojan_counts=t_counts
    )


def histogram_overlap(hist: DistanceHistogram) -> float:
    """Overlap coefficient of the two normalised distributions, in [0, 1].

    1.0 means the distributions are identical (Trojan invisible); 0
    means fully separated.
    """
    g = hist.golden_counts.astype(float)
    t = hist.trojan_counts.astype(float)
    if g.sum() == 0 or t.sum() == 0:
        raise AnalysisError("empty histogram")
    g /= g.sum()
    t /= t.sum()
    return float(np.minimum(g, t).sum())


def peak_separation(hist: DistanceHistogram, golden_distances: np.ndarray) -> float:
    """Mode shift between the distributions in units of the golden std.

    The paper's sensor criterion: "the Trojans can be detected if the
    shifting of the distributions' peaks are observed".  A value > 1
    means the peaks are separable against the golden spread.
    """
    g_std = float(np.std(np.asarray(golden_distances, dtype=np.float64)))
    if g_std == 0:
        raise AnalysisError("golden distances have zero spread")
    return abs(hist.trojan_peak() - hist.golden_peak()) / g_std
