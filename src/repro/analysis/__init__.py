"""Side-channel data analysis — the trusted off-chip module of Fig. 1.

Implements the paper's analysis chain: trace preprocessing and
standardisation (:mod:`~repro.analysis.preprocess`), PCA dimensionality
reduction (:mod:`~repro.analysis.pca`), the Euclidean-distance detector
with the Eq. (1) max-intra-golden threshold
(:mod:`~repro.analysis.euclidean`), FFT spectral inspection for
A2-style Trojans (:mod:`~repro.analysis.spectral`), plus histogram
utilities for the Fig. 6 views, payload demodulators that prove the
Trojans actually leak (:mod:`~repro.analysis.demod`) and detection
metrics (:mod:`~repro.analysis.metrics`).
"""

from repro.analysis.preprocess import (
    segment_traces,
    standardize_traces,
    trace_align,
)
from repro.analysis.pca import PCA
from repro.analysis.euclidean import (
    EuclideanDetector,
    euclidean_distances,
    max_intra_distance,
)
from repro.analysis.spectral import (
    Spectrum,
    amplitude_spectrum,
    band_energy,
    compare_spectra,
    find_peaks_above,
)
from repro.analysis.histogram import distance_histogram, histogram_overlap, peak_separation
from repro.analysis.demod import (
    demodulate_am_bits,
    despread_cdma_bits,
    leakage_symbol_bits,
)
from repro.analysis.metrics import DetectionMetrics, roc_curve, score_detection
from repro.analysis.cpa import CpaResult, cpa_attack, last_round_predictions
from repro.analysis.tvla import TvlaResult, welch_t_test
from repro.analysis.spectrogram import Spectrogram, detect_activation_time, spectrogram

__all__ = [
    "segment_traces",
    "standardize_traces",
    "trace_align",
    "PCA",
    "EuclideanDetector",
    "euclidean_distances",
    "max_intra_distance",
    "Spectrum",
    "amplitude_spectrum",
    "band_energy",
    "compare_spectra",
    "find_peaks_above",
    "distance_histogram",
    "histogram_overlap",
    "peak_separation",
    "demodulate_am_bits",
    "despread_cdma_bits",
    "leakage_symbol_bits",
    "DetectionMetrics",
    "roc_curve",
    "score_detection",
    "CpaResult",
    "cpa_attack",
    "last_round_predictions",
    "TvlaResult",
    "welch_t_test",
    "Spectrogram",
    "detect_activation_time",
    "spectrogram",
]
