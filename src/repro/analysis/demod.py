"""Trojan payload demodulators.

Detection (does the EM fingerprint shift?) and exploitation (does the
Trojan really leak the key?) are different claims; the paper's Trojans
are real leakers, so the reproduction proves the second claim too:

* :func:`demodulate_am_bits` — the wireless receiver for Trojan 1:
  band-pass around the 750 kHz carrier, envelope detection, per-bit
  integrate-and-dump, threshold;
* :func:`despread_cdma_bits` — the CDMA receiver for Trojan 3:
  regenerate the LFSR chip sequence, XOR-despread, majority vote;
* :func:`leakage_symbol_bits` — the current monitor for Trojan 2:
  sample the leakage condition once per symbol and invert.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from repro.errors import AnalysisError


def demodulate_am_bits(
    trace: np.ndarray,
    fs: float,
    carrier_freq: float,
    bit_duration: float,
    n_bits: int,
    start_time: float = 0.0,
    band_halfwidth: float | None = None,
) -> np.ndarray:
    """Recover on-off-keyed bits from an EM trace (Trojan 1's receiver).

    Parameters
    ----------
    trace:
        1-D voltage record.
    fs:
        Sample rate [Hz].
    carrier_freq:
        AM carrier frequency (750 kHz in the paper).
    bit_duration:
        Seconds per transmitted bit.
    n_bits:
        Number of bits to demodulate.
    start_time:
        Time of the first bit boundary [s].
    band_halfwidth:
        Band-pass half width around the carrier (default: 60 % of it).
    """
    x = np.asarray(trace, dtype=np.float64).ravel()
    if fs <= 0 or carrier_freq <= 0 or bit_duration <= 0:
        raise AnalysisError("fs, carrier_freq and bit_duration must be positive")
    hw = band_halfwidth if band_halfwidth is not None else 0.6 * carrier_freq
    nyq = 0.5 * fs
    lo = max((carrier_freq - hw) / nyq, 1e-6)
    hi = min((carrier_freq + hw) / nyq, 0.999999)
    # Second-order sections: a transfer-function filter is numerically
    # unstable at the tiny normalised frequencies a 750 kHz carrier
    # occupies on a GS/s trace.
    sos = signal.butter(3, [lo, hi], btype="band", output="sos")
    narrow = signal.sosfiltfilt(sos, x)
    envelope = np.abs(signal.hilbert(narrow))

    bit_samples = int(round(bit_duration * fs))
    start = int(round(start_time * fs))
    need = start + n_bits * bit_samples
    if need > x.size:
        raise AnalysisError(
            f"trace of {x.size} samples too short for {n_bits} bits "
            f"({need} needed)"
        )
    levels = np.array(
        [
            envelope[start + k * bit_samples : start + (k + 1) * bit_samples].mean()
            for k in range(n_bits)
        ]
    )
    threshold = 0.5 * (levels.max() + levels.min())
    return (levels > threshold).astype(np.uint8)


def lfsr_sequence(width: int, taps: tuple[int, ...], seed: int, length: int) -> np.ndarray:
    """Software replay of the Fibonacci LFSR in :mod:`repro.logic.builder`.

    Bit 0 of the state is the MSB; the output chip is the MSB before
    each shift, matching the netlist's ``prn_state[0]`` tap.
    """
    if seed <= 0 or seed >= (1 << width):
        raise AnalysisError(f"seed {seed} invalid for a {width}-bit LFSR")
    state = [(seed >> (width - 1 - i)) & 1 for i in range(width)]
    out = np.empty(length, dtype=np.uint8)
    for k in range(length):
        out[k] = state[0]
        fb = 0
        for t in taps:
            fb ^= state[t]
        state = [fb] + state[:-1]
    return out


def despread_cdma_bits(
    chips: np.ndarray,
    prn: np.ndarray,
    chips_per_bit: int,
) -> np.ndarray:
    """Despread a CDMA chip stream (Trojan 3's receiver).

    ``chips[k] = key_bit XOR prn[k]``, so XORing with the replayed PRN
    and majority-voting each *chips_per_bit* window recovers the bits.
    """
    c = np.asarray(chips, dtype=np.uint8).ravel()
    p = np.asarray(prn, dtype=np.uint8).ravel()
    if c.size > p.size:
        raise AnalysisError(
            f"PRN replay of {p.size} chips shorter than stream {c.size}"
        )
    if chips_per_bit <= 0:
        raise AnalysisError(f"chips_per_bit must be positive, got {chips_per_bit}")
    raw = c ^ p[: c.size]
    n_bits = c.size // chips_per_bit
    if n_bits == 0:
        raise AnalysisError("stream shorter than one bit")
    votes = raw[: n_bits * chips_per_bit].reshape(n_bits, chips_per_bit)
    return (votes.mean(axis=1) > 0.5).astype(np.uint8)


def leakage_symbol_bits(
    leak_values: np.ndarray,
    symbol_cycles: int,
    n_bits: int,
    phase: int = 0,
) -> np.ndarray:
    """Read Trojan 2's key stream off the leakage condition record.

    ``leak_values`` is the per-cycle value of the leak-stage net
    (``(cycles,)`` 0/1); the leakage current flows while it is **low**,
    so the transmitted bit is the net value itself sampled mid-symbol.
    """
    v = np.asarray(leak_values).astype(np.uint8).ravel()
    if symbol_cycles <= 0:
        raise AnalysisError(f"symbol_cycles must be positive, got {symbol_cycles}")
    idx = phase + symbol_cycles // 2 + np.arange(n_bits) * symbol_cycles
    if idx[-1] >= v.size:
        raise AnalysisError(
            f"record of {v.size} cycles too short for {n_bits} symbols"
        )
    return v[idx]
