"""Correlation Power/EM Analysis (CPA) — leakage-realism validation.

If the synthetic EM traces are physically meaningful, they must leak
the key the way real AES side channels do.  This module mounts the
textbook last-round CPA attack (Brier et al.) against the chip's own
sensor traces: for every key-byte guess, predict the Hamming distance
between the round-9 and round-10 states and correlate it with the
trace samples around the final round's clock edge.  The correct
sub-key should produce the highest correlation.

This doubles as the strongest possible integration test of the whole
pipeline: netlist timing, charge weighting and EM coupling all have to
be consistent for the attack to work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.aes import INV_SBOX, SHIFT_ROWS_PERM
from repro.errors import AnalysisError

#: Hamming weights of all byte values.
_HW = np.array([bin(v).count("1") for v in range(256)], dtype=np.float64)


def last_round_predictions(ciphertexts: np.ndarray, byte_index: int) -> np.ndarray:
    """Hamming-distance predictions for every guess of one K10 byte.

    For guess *k*, the attacked byte's round-9 value is
    ``InvSBox(ct[j] ^ k)`` sitting at the position ShiftRows moved it
    from; the register bit-flips between round 9 and round 10 at that
    byte are ``HD(round9_byte, ct[shifted_j])``.

    Returns an array of shape ``(256, n_traces)``.
    """
    cts = np.asarray(ciphertexts, dtype=np.uint8)
    if cts.ndim != 2 or cts.shape[1] != 16:
        raise AnalysisError(f"ciphertexts must be (n, 16), got {cts.shape}")
    if not 0 <= byte_index < 16:
        raise AnalysisError(f"byte_index must be in [0, 16), got {byte_index}")
    ct_byte = cts[:, byte_index].astype(np.int64)
    # The round-9 byte that became ct[byte_index] lived at the source
    # position of ShiftRows.
    src = SHIFT_ROWS_PERM[byte_index]
    ct_src = cts[:, src].astype(np.int64)
    inv_sbox = np.asarray(INV_SBOX, dtype=np.int64)
    predictions = np.empty((256, cts.shape[0]))
    for guess in range(256):
        round9 = inv_sbox[ct_byte ^ guess]
        predictions[guess] = _HW[round9 ^ ct_src]
    return predictions


def correlation_matrix(
    predictions: np.ndarray, traces: np.ndarray
) -> np.ndarray:
    """Pearson correlation of each guess row with each trace sample.

    Shapes: predictions ``(256, n)``, traces ``(n, samples)`` →
    result ``(256, samples)``.
    """
    preds = np.asarray(predictions, dtype=np.float64)
    x = np.asarray(traces, dtype=np.float64)
    if preds.shape[1] != x.shape[0]:
        raise AnalysisError(
            f"{preds.shape[1]} predictions vs {x.shape[0]} traces"
        )
    preds_c = preds - preds.mean(axis=1, keepdims=True)
    x_c = x - x.mean(axis=0, keepdims=True)
    p_std = preds_c.std(axis=1, keepdims=True)
    x_std = x_c.std(axis=0, keepdims=True)
    p_std[p_std == 0] = np.inf
    x_std = np.where(x_std == 0, np.inf, x_std)
    corr = (preds_c @ x_c) / (preds.shape[1] * p_std * x_std)
    return corr


@dataclass
class CpaByteResult:
    """Attack outcome for one key byte."""

    byte_index: int
    best_guess: int
    correct_key: int
    correlation_peak: float
    correct_rank: int  # 0 = the correct key won

    @property
    def recovered(self) -> bool:
        return self.best_guess == self.correct_key


@dataclass
class CpaResult:
    """Full 16-byte attack outcome."""

    bytes_: list[CpaByteResult]

    @property
    def recovered_count(self) -> int:
        return sum(b.recovered for b in self.bytes_)

    def mean_rank(self) -> float:
        """Average rank of the correct sub-keys (0 is perfect)."""
        return float(np.mean([b.correct_rank for b in self.bytes_]))

    def format(self) -> str:
        lines = [
            f"CPA: {self.recovered_count}/16 key bytes recovered, "
            f"mean correct-key rank {self.mean_rank():.1f}/255"
        ]
        for b in self.bytes_:
            mark = "OK " if b.recovered else "   "
            lines.append(
                f"  {mark}byte {b.byte_index:2d}: guess {b.best_guess:02x} "
                f"vs key {b.correct_key:02x} (rank {b.correct_rank}, "
                f"peak r = {b.correlation_peak:.3f})"
            )
        return "\n".join(lines)


def cpa_attack(
    traces: np.ndarray,
    ciphertexts: np.ndarray,
    round_key10: bytes,
    sample_window: tuple[int, int] | None = None,
) -> CpaResult:
    """Run last-round CPA on all 16 bytes.

    Parameters
    ----------
    traces:
        ``(n, samples)`` trace matrix (one encryption per row, aligned).
    ciphertexts:
        ``(n, 16)`` matching ciphertext bytes.
    round_key10:
        Ground truth: the last AES round key (for scoring only).
    sample_window:
        Optional (start, stop) sample slice containing the final round.
    """
    x = np.asarray(traces, dtype=np.float64)
    if sample_window is not None:
        x = x[:, sample_window[0] : sample_window[1]]
    if x.ndim != 2 or x.shape[1] == 0:
        raise AnalysisError(f"bad trace window, shape {x.shape}")
    if len(round_key10) != 16:
        raise AnalysisError("round_key10 must be 16 bytes")
    results = []
    for byte_index in range(16):
        preds = last_round_predictions(ciphertexts, byte_index)
        corr = correlation_matrix(preds, x)
        scores = np.abs(corr).max(axis=1)
        order = np.argsort(-scores)
        best = int(order[0])
        correct = round_key10[byte_index]
        rank = int(np.nonzero(order == correct)[0][0])
        results.append(
            CpaByteResult(
                byte_index=byte_index,
                best_guess=best,
                correct_key=correct,
                correlation_peak=float(scores[best]),
                correct_rank=rank,
            )
        )
    return CpaResult(bytes_=results)
