"""Frequency-domain analysis — the A2 path of the framework.

"The data collected by the on-chip sensor is processed in the frequency
domain to identify the abnormal fast flipping Trojan trigger signals."
The comparison logic follows Section IV-D: if the Trojan's transition
frequency T coincides with an existing spot g (e.g. the clock), detect
by the *magnitude increase* at g; otherwise detect the *new spot*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass
class Spectrum:
    """Single-sided amplitude spectrum."""

    freqs: np.ndarray
    amplitude: np.ndarray

    def magnitude_at(self, frequency: float, tolerance: float | None = None) -> float:
        """Peak amplitude within ``frequency ± tolerance``.

        *tolerance* defaults to two frequency bins.
        """
        df = float(self.freqs[1] - self.freqs[0]) if self.freqs.size > 1 else 0.0
        tol = tolerance if tolerance is not None else 2.0 * df
        mask = np.abs(self.freqs - frequency) <= tol
        if not mask.any():
            raise AnalysisError(
                f"no spectral bins within {tol} Hz of {frequency} Hz"
            )
        return float(self.amplitude[mask].max())

    def band(self, f_lo: float, f_hi: float) -> "Spectrum":
        """Restriction to ``[f_lo, f_hi]``."""
        if f_hi <= f_lo:
            raise AnalysisError(f"empty band [{f_lo}, {f_hi}]")
        mask = (self.freqs >= f_lo) & (self.freqs <= f_hi)
        return Spectrum(self.freqs[mask], self.amplitude[mask])


def amplitude_spectrum(
    traces: np.ndarray,
    fs: float,
    window: str = "hann",
    average: bool = True,
) -> Spectrum:
    """Windowed FFT amplitude spectrum, averaged over trace rows.

    Parameters
    ----------
    traces:
        1-D record or ``(batch, samples)``.
    fs:
        Sample rate [Hz].
    window:
        ``"hann"`` or ``"rect"``.
    average:
        Average the magnitude over the batch (incoherent averaging, as
        a spectrum analyser would).
    """
    x = np.asarray(traces, dtype=np.float64)
    if x.ndim == 1:
        x = x[None, :]
    if x.ndim != 2 or x.shape[1] < 8:
        raise AnalysisError(f"need (batch, samples>=8) traces, got {x.shape}")
    return amplitude_spectra([x], fs, window=window, average=average)[0]


def amplitude_spectra(
    trace_sets,
    fs: float,
    window: str = "hann",
    average: bool = True,
) -> list["Spectrum"]:
    """Amplitude spectra of several equal-length trace sets at once.

    Stacks every set's rows into one matrix and runs a **single**
    batched ``rfft`` over the last axis — the golden record and all
    suspect records of a figure transform in one FFT dispatch instead
    of one call per record.  Each returned :class:`Spectrum` is
    numerically identical to calling :func:`amplitude_spectrum` on the
    corresponding set alone.
    """
    mats = []
    for traces in trace_sets:
        x = np.asarray(traces, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] < 8:
            raise AnalysisError(
                f"need (batch, samples>=8) traces, got {x.shape}"
            )
        mats.append(x)
    if not mats:
        return []
    n = mats[0].shape[1]
    if any(m.shape[1] != n for m in mats):
        raise AnalysisError(
            "trace sets must share one record length, got "
            f"{[m.shape[1] for m in mats]}"
        )
    if window == "hann":
        w = np.hanning(n)
    elif window == "rect":
        w = np.ones(n)
    else:
        raise AnalysisError(f"unknown window {window!r}")
    scale = 2.0 / w.sum()
    stacked = np.concatenate(mats, axis=0)
    spec = np.abs(np.fft.rfft(stacked * w[None, :], axis=-1)) * scale
    freqs = np.fft.rfftfreq(n, d=1.0 / fs)
    out: list[Spectrum] = []
    row = 0
    for m in mats:
        block = spec[row : row + m.shape[0]]
        row += m.shape[0]
        amp = block.mean(axis=0) if average else block
        out.append(Spectrum(freqs=freqs, amplitude=amp))
    return out


def band_energy(spectrum: Spectrum, f_lo: float, f_hi: float) -> float:
    """Sum of squared amplitudes within a band (relative energy)."""
    sub = spectrum.band(f_lo, f_hi)
    return float((sub.amplitude**2).sum())


def find_peaks_above(
    spectrum: Spectrum,
    floor_factor: float = 8.0,
    min_separation_bins: int = 3,
) -> list[tuple[float, float]]:
    """Local maxima exceeding ``floor_factor`` × median amplitude.

    Returns ``(frequency, amplitude)`` pairs sorted by amplitude,
    strongest first.
    """
    amp = spectrum.amplitude
    if amp.size < 3:
        raise AnalysisError("spectrum too short for peak search")
    floor = float(np.median(amp)) * floor_factor
    candidates = []
    for i in range(1, amp.size - 1):
        if amp[i] > floor and amp[i] >= amp[i - 1] and amp[i] >= amp[i + 1]:
            candidates.append(i)
    # Enforce separation, keeping the strongest of each cluster.
    candidates.sort(key=lambda i: -amp[i])
    kept: list[int] = []
    for i in candidates:
        if all(abs(i - j) >= min_separation_bins for j in kept):
            kept.append(i)
    return [(float(spectrum.freqs[i]), float(amp[i])) for i in kept]


@dataclass
class SpectralComparison:
    """Outcome of golden-vs-suspect spectrum comparison (Section IV-D)."""

    #: Frequencies where the suspect amplitude rose by >= the ratio
    #: threshold over golden: ``(freq, golden_amp, suspect_amp)``.
    boosted_spots: list[tuple[float, float, float]]
    #: Suspect peaks at frequencies with no golden counterpart.
    new_spots: list[tuple[float, float]]

    @property
    def detected(self) -> bool:
        return bool(self.boosted_spots or self.new_spots)


def compare_spectra(
    golden: Spectrum,
    suspect: Spectrum,
    boost_ratio: float = 1.6,
    floor_factor: float = 8.0,
) -> SpectralComparison:
    """Detect boosted or newly appeared spectral spots.

    ``boost_ratio`` is the amplitude-increase factor that flags an
    existing spot (the T = g case); new suspect peaks more than 3 bins
    from every golden peak are reported as new spots (T != g).
    """
    if golden.freqs.shape != suspect.freqs.shape or not np.allclose(
        golden.freqs, suspect.freqs
    ):
        raise AnalysisError("spectra must share the same frequency grid")
    golden_peaks = find_peaks_above(golden, floor_factor)
    suspect_peaks = find_peaks_above(suspect, floor_factor)
    df = float(golden.freqs[1] - golden.freqs[0])

    boosted: list[tuple[float, float, float]] = []
    for freq, g_amp in golden_peaks:
        s_amp = suspect.magnitude_at(freq)
        if s_amp >= boost_ratio * g_amp:
            boosted.append((freq, g_amp, s_amp))

    new: list[tuple[float, float]] = []
    for freq, s_amp in suspect_peaks:
        near_golden = any(abs(freq - gf) <= 3 * df for gf, _a in golden_peaks)
        if not near_golden:
            g_amp = golden.magnitude_at(freq)
            if s_amp >= boost_ratio * max(g_amp, 1e-30):
                new.append((freq, s_amp))
    return SpectralComparison(boosted_spots=boosted, new_spots=new)
