"""Detection quality metrics.

The paper reports detection qualitatively; the reproduction adds
TPR/FPR/ROC so the ablation benches (threshold choice, PCA dimension)
have a quantitative target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class DetectionMetrics:
    """Point metrics of a thresholded distance detector."""

    threshold: float
    true_positive_rate: float
    false_positive_rate: float
    accuracy: float


def score_detection(
    golden_distances: np.ndarray,
    trojan_distances: np.ndarray,
    threshold: float,
) -> DetectionMetrics:
    """Score a distance threshold: Trojan traces are the positive class."""
    g = np.asarray(golden_distances, dtype=np.float64)
    t = np.asarray(trojan_distances, dtype=np.float64)
    if g.size == 0 or t.size == 0:
        raise AnalysisError("both distance sets must be non-empty")
    tpr = float((t > threshold).mean())
    fpr = float((g > threshold).mean())
    accuracy = float(
        ((t > threshold).sum() + (g <= threshold).sum()) / (t.size + g.size)
    )
    return DetectionMetrics(
        threshold=float(threshold),
        true_positive_rate=tpr,
        false_positive_rate=fpr,
        accuracy=accuracy,
    )


def roc_curve(
    golden_distances: np.ndarray,
    trojan_distances: np.ndarray,
    n_points: int = 200,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC of the distance detector.

    Returns ``(fpr, tpr, thresholds)`` with thresholds swept from above
    the largest to below the smallest observed distance.
    """
    g = np.asarray(golden_distances, dtype=np.float64)
    t = np.asarray(trojan_distances, dtype=np.float64)
    if g.size == 0 or t.size == 0:
        raise AnalysisError("both distance sets must be non-empty")
    lo = min(g.min(), t.min())
    hi = max(g.max(), t.max())
    pad = 1e-12 + 0.01 * (hi - lo)
    thresholds = np.linspace(hi + pad, lo - pad, n_points)
    fpr = np.array([(g > th).mean() for th in thresholds])
    tpr = np.array([(t > th).mean() for th in thresholds])
    return fpr, tpr, thresholds


def auc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Area under an ROC curve via the trapezoid rule."""
    f = np.asarray(fpr, dtype=np.float64)
    t = np.asarray(tpr, dtype=np.float64)
    if f.shape != t.shape or f.size < 2:
        raise AnalysisError("fpr/tpr must be equal-length arrays of >= 2 points")
    order = np.argsort(f)
    return float(np.trapezoid(t[order], f[order]))
