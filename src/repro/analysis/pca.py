"""Principal Component Analysis, from scratch (SVD-based).

The paper: "Techniques such as Principal Component Analysis (PCA) can
help reduce the dimensionality of original data by replacing several
correlated variables with a new set of independent variables."  PCA is
fitted on the *golden* traces only; suspect traces are projected with
the golden model so Trojan energy that falls outside the golden
subspace shows up as distance, not as a new component.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


class PCA:
    """Minimal PCA with the scikit-learn-ish fit/transform contract."""

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise AnalysisError(
                f"n_components must be >= 1, got {n_components}"
            )
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        """Fit on ``(n_samples, n_features)`` data."""
        x = np.asarray(data, dtype=np.float64)
        if x.ndim != 2:
            raise AnalysisError(f"data must be 2-D, got shape {x.shape}")
        n, d = x.shape
        k = self.n_components
        if k > min(n, d):
            raise AnalysisError(
                f"n_components {k} exceeds min(n_samples, n_features) = "
                f"{min(n, d)}"
            )
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        # Economy SVD; rows of vt are the principal directions.
        _u, s, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[:k]
        var = (s**2) / max(1, n - 1)
        self.explained_variance_ = var[:k]
        total = float(var.sum())
        self.explained_variance_ratio_ = (
            var[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project data onto the fitted components."""
        if self.components_ is None or self.mean_ is None:
            raise AnalysisError("PCA used before fit()")
        x = np.asarray(data, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.mean_.shape[0]:
            raise AnalysisError(
                f"data shape {x.shape} does not match fitted dimension "
                f"{self.mean_.shape[0]}"
            )
        return (x - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on *data* and return its projection."""
        return self.fit(data).transform(data)

    def inverse_transform(self, scores: np.ndarray) -> np.ndarray:
        """Map component scores back to the original space."""
        if self.components_ is None or self.mean_ is None:
            raise AnalysisError("PCA used before fit()")
        z = np.asarray(scores, dtype=np.float64)
        if z.ndim != 2 or z.shape[1] != self.components_.shape[0]:
            raise AnalysisError(
                f"scores shape {z.shape} does not match "
                f"{self.components_.shape[0]} components"
            )
        return z @ self.components_ + self.mean_

    def reconstruction_error(self, data: np.ndarray) -> np.ndarray:
        """Per-row RMS error of projecting onto the golden subspace.

        Energy outside the golden subspace — exactly what an activated
        Trojan adds — lands here.
        """
        x = np.asarray(data, dtype=np.float64)
        recon = self.inverse_transform(self.transform(x))
        return np.sqrt(np.mean((x - recon) ** 2, axis=1))
