"""Time-frequency analysis: when did the Trojan wake up?

The runtime framework's spectral path (Fig. 1) works on long records;
a spectrogram localises the activation *in time* as well — the moment
Trojan 1's carrier or A2's trigger comb appears is visible as a step
in the corresponding band's energy track.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass
class Spectrogram:
    """Magnitude STFT of one record."""

    times: np.ndarray  # (frames,) window-centre times [s]
    freqs: np.ndarray  # (bins,)
    magnitude: np.ndarray  # (bins, frames)

    def band_track(self, f_lo: float, f_hi: float) -> np.ndarray:
        """Per-frame energy inside a frequency band."""
        mask = (self.freqs >= f_lo) & (self.freqs <= f_hi)
        if not mask.any():
            raise AnalysisError(f"no bins inside [{f_lo}, {f_hi}] Hz")
        return (self.magnitude[mask] ** 2).sum(axis=0)


def spectrogram(
    record: np.ndarray,
    fs: float,
    window_samples: int = 4096,
    hop_samples: int | None = None,
) -> Spectrogram:
    """Hann-windowed magnitude STFT of a 1-D record."""
    x = np.asarray(record, dtype=np.float64).ravel()
    if window_samples < 16:
        raise AnalysisError(f"window too short: {window_samples}")
    if x.size < window_samples:
        raise AnalysisError(
            f"record of {x.size} samples shorter than one window"
        )
    hop = hop_samples if hop_samples is not None else window_samples // 2
    if hop <= 0:
        raise AnalysisError(f"hop must be positive, got {hop}")
    win = np.hanning(window_samples)
    n_frames = (x.size - window_samples) // hop + 1
    frames = np.stack(
        [
            x[k * hop : k * hop + window_samples] * win
            for k in range(n_frames)
        ]
    )
    mag = np.abs(np.fft.rfft(frames, axis=1)).T * (2.0 / win.sum())
    times = (np.arange(n_frames) * hop + window_samples / 2) / fs
    freqs = np.fft.rfftfreq(window_samples, d=1.0 / fs)
    return Spectrogram(times=times, freqs=freqs, magnitude=mag)


def detect_activation_time(
    record: np.ndarray,
    fs: float,
    band: tuple[float, float],
    window_samples: int = 4096,
    threshold_factor: float = 3.0,
) -> float | None:
    """Time at which a band's energy steps above its quiet baseline.

    The baseline is the median of the band-energy track; the activation
    is the first frame exceeding ``threshold_factor`` × baseline and
    staying there for at least two frames.  Returns None when the band
    never activates.
    """
    spec = spectrogram(record, fs, window_samples=window_samples)
    track = spec.band_track(*band)
    baseline = float(np.median(track))
    if baseline <= 0:
        baseline = float(track.mean()) or 1e-30
    hot = track > threshold_factor * baseline
    for i in range(len(hot) - 1):
        if hot[i] and hot[i + 1]:
            return float(spec.times[i])
    return None
