"""Test Vector Leakage Assessment (TVLA / Welch's t-test).

The standard side-channel leakage assessment (Goodwill et al.):
acquire two trace populations — fixed plaintext vs random plaintexts —
and compute the per-sample Welch t-statistic; |t| > 4.5 anywhere is
evidence of first-order leakage.  Used here both as a leakage-realism
check of the EM model and as an alternative detector: an activated
Trojan makes golden-vs-suspect populations fail the t-test massively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError

#: The conventional TVLA pass/fail threshold on |t|.
TVLA_THRESHOLD = 4.5


@dataclass
class TvlaResult:
    """Per-sample Welch t-statistics of two trace populations."""

    t_values: np.ndarray
    threshold: float = TVLA_THRESHOLD

    @property
    def max_abs_t(self) -> float:
        return float(np.abs(self.t_values).max())

    @property
    def leaky_samples(self) -> int:
        """Number of samples beyond the threshold."""
        return int((np.abs(self.t_values) > self.threshold).sum())

    @property
    def leaks(self) -> bool:
        return self.leaky_samples > 0

    def format(self) -> str:
        verdict = "LEAKS" if self.leaks else "passes"
        return (
            f"TVLA: max |t| = {self.max_abs_t:.1f}, "
            f"{self.leaky_samples}/{self.t_values.size} samples beyond "
            f"|t| > {self.threshold} -> {verdict}"
        )


def welch_t_test(
    population_a: np.ndarray,
    population_b: np.ndarray,
    threshold: float = TVLA_THRESHOLD,
) -> TvlaResult:
    """Per-sample Welch t-statistic between two trace matrices.

    Parameters
    ----------
    population_a, population_b:
        ``(n, samples)`` matrices with equal sample counts (trace
        counts may differ).
    threshold:
        |t| level that flags leakage.
    """
    a = np.asarray(population_a, dtype=np.float64)
    b = np.asarray(population_b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise AnalysisError(
            f"populations must be (n, samples) with equal sample count; "
            f"got {a.shape} and {b.shape}"
        )
    if a.shape[0] < 2 or b.shape[0] < 2:
        raise AnalysisError("each population needs at least two traces")
    mean_a, mean_b = a.mean(axis=0), b.mean(axis=0)
    var_a = a.var(axis=0, ddof=1) / a.shape[0]
    var_b = b.var(axis=0, ddof=1) / b.shape[0]
    denom = np.sqrt(var_a + var_b)
    denom[denom == 0] = np.inf
    return TvlaResult(t_values=(mean_a - mean_b) / denom, threshold=threshold)


def fixed_vs_random_split(
    plaintexts: np.ndarray,
    fixed: bytes,
) -> tuple[np.ndarray, np.ndarray]:
    """Index masks of the fixed-plaintext and random populations."""
    pts = np.asarray(plaintexts, dtype=np.uint8)
    if pts.ndim != 2 or pts.shape[1] != len(fixed):
        raise AnalysisError(
            f"plaintext matrix {pts.shape} does not match fixed block "
            f"of {len(fixed)} bytes"
        )
    target = np.frombuffer(fixed, dtype=np.uint8)
    is_fixed = (pts == target[None, :]).all(axis=1)
    return np.nonzero(is_fixed)[0], np.nonzero(~is_fixed)[0]
