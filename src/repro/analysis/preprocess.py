"""Trace preprocessing.

Fingerprinting compares like with like, so before any distance is
computed traces are (optionally) aligned, detrended and put on a common
scale.  Standardisation also fixes the *units* problem: the paper's
Euclidean distances are O(0.05–0.3) numbers because they are computed
on normalised traces, not on raw volts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalysisError


def standardize_traces(
    traces: np.ndarray,
    reference_mean: np.ndarray | None = None,
    reference_scale: float | None = None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Standardise traces against a reference statistic.

    Each trace (row) is detrended by the *reference* mean trace and
    scaled by the *reference* global RMS, so golden and suspect data go
    through the identical transform (scaling each class by its own
    statistics would hide exactly the differences we are hunting).

    Parameters
    ----------
    traces:
        ``(n_traces, n_samples)`` array.
    reference_mean:
        Mean trace of the golden set; computed from *traces* when None.
    reference_scale:
        Global RMS of the golden set after mean removal; computed from
        *traces* when None.

    Returns
    -------
    tuple
        ``(standardized, reference_mean, reference_scale)``.
    """
    x = np.asarray(traces, dtype=np.float64)
    if x.ndim != 2:
        raise AnalysisError(f"traces must be (n, samples), got {x.shape}")
    if reference_mean is None:
        reference_mean = x.mean(axis=0)
    if reference_mean.shape != (x.shape[1],):
        raise AnalysisError(
            f"reference mean shape {reference_mean.shape} does not match "
            f"trace length {x.shape[1]}"
        )
    centered = x - reference_mean[None, :]
    if reference_scale is None:
        reference_scale = float(np.sqrt(np.mean(centered**2)))
    if reference_scale <= 0:
        raise AnalysisError("reference scale must be positive")
    return centered / reference_scale, reference_mean, reference_scale


def trace_align(
    traces: np.ndarray,
    reference: np.ndarray,
    max_shift: int = 8,
) -> np.ndarray:
    """Align each trace to *reference* by integer-shift cross-correlation.

    Compensates trigger jitter (the silicon scenario rolls traces by a
    fraction of a cycle).  Shifts beyond ``±max_shift`` samples are
    clamped.
    """
    x = np.asarray(traces, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if x.ndim != 2 or ref.shape != (x.shape[1],):
        raise AnalysisError(
            f"traces {x.shape} / reference {ref.shape} shape mismatch"
        )
    if max_shift < 0:
        raise AnalysisError(f"max_shift must be >= 0, got {max_shift}")
    out = np.empty_like(x)
    shifts = range(-max_shift, max_shift + 1)
    for i, row in enumerate(x):
        best_shift, best_score = 0, -np.inf
        for s in shifts:
            score = float(np.dot(np.roll(row, -s), ref))
            if score > best_score:
                best_score, best_shift = score, s
        out[i] = np.roll(row, -best_shift)
    return out


def segment_traces(
    waveform: np.ndarray,
    segment_samples: int,
    hop_samples: int | None = None,
) -> np.ndarray:
    """Cut a long record into fixed-length segments.

    Parameters
    ----------
    waveform:
        1-D record or ``(batch, samples)`` array (batches concatenate).
    segment_samples:
        Segment length.
    hop_samples:
        Stride between segment starts (defaults to non-overlapping).

    Returns
    -------
    numpy.ndarray
        ``(n_segments, segment_samples)``.
    """
    if segment_samples <= 0:
        raise AnalysisError(f"segment length must be positive, got {segment_samples}")
    hop = hop_samples if hop_samples is not None else segment_samples
    if hop <= 0:
        raise AnalysisError(f"hop must be positive, got {hop}")
    x = np.asarray(waveform, dtype=np.float64)
    if x.ndim == 1:
        x = x[None, :]
    segments: list[np.ndarray] = []
    for row in x:
        n = (row.size - segment_samples) // hop + 1
        for k in range(max(0, n)):
            segments.append(row[k * hop : k * hop + segment_samples])
    if not segments:
        raise AnalysisError(
            f"record of {x.shape[1]} samples too short for segments of "
            f"{segment_samples}"
        )
    return np.stack(segments, axis=0)
