"""Surface EM field maps — the location-awareness claim.

The paper (after Kumar et al., ICCAD'17): "EM radiation computation is
performed and EM leakage from every point of the IC's surface can be
acquired", and EM's advantages include "location awareness".  This
module computes the magnetic field magnitude over a grid just above
the die from the *average* per-segment currents of a workload, so a
Trojan's activation literally lights up its floorplan region in the
difference map.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.chip.chip import Chip
from repro.em.biot_savart import b_field_of_segments
from repro.errors import EmModelError
from repro.logic.activity import ToggleCountRecorder
from repro.units import UM


@dataclass
class FieldMap:
    """|B| sampled on a regular grid above the die."""

    xs: np.ndarray  # (nx,) grid x coordinates [m]
    ys: np.ndarray  # (ny,)
    magnitude: np.ndarray  # (ny, nx) field magnitude [T]

    def hotspot(self) -> tuple[float, float]:
        """(x, y) of the strongest field point.

        Ties break deterministically on the **lowest flat (row-major)
        index** — i.e. the bottom-most row, then left-most column, of
        the tied maxima — so localization verdicts are reproducible on
        the symmetric maps small grids produce.
        """
        flat = np.asarray(self.magnitude, dtype=np.float64).ravel()
        # np.argmax returns the first (lowest flat index) maximum, but
        # state the contract explicitly rather than lean on it.
        iy, ix = np.unravel_index(int(np.argmax(flat)), self.magnitude.shape)
        return float(self.xs[ix]), float(self.ys[iy])

    def region_mean(self, rect) -> float:
        """Mean |B| over a floorplan rectangle."""
        mask_x = (self.xs >= rect.x0) & (self.xs <= rect.x1)
        mask_y = (self.ys >= rect.y0) & (self.ys <= rect.y1)
        if not mask_x.any() or not mask_y.any():
            raise EmModelError("rectangle does not intersect the map grid")
        return float(self.magnitude[np.ix_(mask_y, mask_x)].mean())

    # -- storable grid exports -----------------------------------------
    def as_payload(self) -> dict:
        """JSON-encodable grid export (a ``RunResult`` payload node).

        Plain nested lists — ``{"xs": [...], "ys": [...],
        "magnitude": [[...]]}`` — so heatmaps ride inside experiment
        artifacts and survive the canonical-JSON round trip bit-for-bit
        (float64 → JSON → float64 is exact for finite values).
        """
        return {
            "xs": [float(v) for v in self.xs],
            "ys": [float(v) for v in self.ys],
            "magnitude": [[float(v) for v in row] for row in self.magnitude],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FieldMap":
        """Inverse of :meth:`as_payload`."""
        try:
            xs = np.asarray(payload["xs"], dtype=np.float64)
            ys = np.asarray(payload["ys"], dtype=np.float64)
            magnitude = np.asarray(payload["magnitude"], dtype=np.float64)
        except (KeyError, TypeError, ValueError) as err:
            raise EmModelError(f"malformed field-map payload: {err}") from None
        if magnitude.shape != (ys.size, xs.size):
            raise EmModelError(
                f"field-map payload shape mismatch: magnitude "
                f"{magnitude.shape} vs grid ({ys.size}, {xs.size})"
            )
        return cls(xs=xs, ys=ys, magnitude=magnitude)

    def save(self, path) -> "Path":
        """Write the grid as ``<path>.npy`` plus a ``<path>.json`` axis
        sidecar; returns the ``.npy`` path.  Writes are atomic renames,
        like every other artifact writer in the repo."""
        import io as _io
        import json as _json

        from repro.io.store import _atomic_write_bytes

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        npy = path.with_suffix(".npy")
        buf = _io.BytesIO()
        np.save(buf, np.asarray(self.magnitude, dtype=np.float64))
        _atomic_write_bytes(npy, buf.getvalue())
        sidecar = {
            "xs": [float(v) for v in self.xs],
            "ys": [float(v) for v in self.ys],
        }
        _atomic_write_bytes(
            path.with_suffix(".json"),
            _json.dumps(sidecar, sort_keys=True).encode("utf-8"),
        )
        return npy

    @classmethod
    def load(cls, path) -> "FieldMap":
        """Inverse of :meth:`save` (accepts the ``.npy`` or base path)."""
        import json as _json

        path = Path(path)
        magnitude = np.load(path.with_suffix(".npy"))
        sidecar = _json.loads(
            path.with_suffix(".json").read_text(encoding="utf-8")
        )
        return cls(
            xs=np.asarray(sidecar["xs"], dtype=np.float64),
            ys=np.asarray(sidecar["ys"], dtype=np.float64),
            magnitude=np.asarray(magnitude, dtype=np.float64),
        )

    def render(self, width: int = 48, height: int = 24) -> str:
        """ASCII heat map (darker character = stronger field)."""
        shades = " .:-=+*#%@"
        mag = self.magnitude
        lo, hi = float(mag.min()), float(mag.max())
        span = max(hi - lo, 1e-30)
        ny, nx = mag.shape
        rows = []
        for j in np.linspace(ny - 1, 0, height).astype(int):
            row = []
            for i in np.linspace(0, nx - 1, width).astype(int):
                level = int((mag[j, i] - lo) / span * (len(shades) - 1))
                row.append(shades[level])
            rows.append("".join(row))
        return "\n".join(rows)


def average_cell_activity(
    chip: Chip,
    workload,
    n_cycles: int = 64,
    batch: int = 4,
    trojan_enables: tuple[str, ...] = (),
    seed_role: str = "fieldmap",
) -> np.ndarray:
    """Mean toggles per cycle for every cell under *workload*."""
    from repro.rng import derive

    sim = chip.sim
    workload.begin(batch, derive(chip.seed, seed_role))
    inputs = {}
    for name, trojan in chip.trojans.items():
        inputs[trojan.enable_pin] = np.full(
            batch, name in trojan_enables, dtype=bool
        )
    wl0 = workload.inputs(0, batch)
    if wl0:
        inputs.update(wl0)
    state = sim.reset(batch=batch, inputs=inputs)
    recorder = ToggleCountRecorder(sim)
    for k in range(1, n_cycles + 1):
        recorder.record(sim.step(state, workload.inputs(k, batch)))
    return recorder.counts / (n_cycles * batch)


def field_map_from_activity(
    chip: Chip,
    activity: np.ndarray,
    z_height: float = 10 * UM,
    grid: int = 40,
) -> FieldMap:
    """|B| map above the die for the given mean cell activity.

    Each cell's average current is ``activity x q_switch x f_clk``;
    mapping through the power grid gives per-segment currents, and the
    Biot–Savart solver evaluates the field on the grid plane.
    """
    if activity.shape != (chip.sim.num_instances,):
        raise EmModelError(
            f"activity vector has shape {activity.shape}, expected "
            f"({chip.sim.num_instances},)"
        )
    cell_currents = activity * chip.q_switch * chip.config.f_clk
    seg_currents = chip.current_map.matrix @ cell_currents
    die = chip.floorplan.die
    xs = np.linspace(die.x0, die.x1, grid)
    ys = np.linspace(die.y0, die.y1, grid)
    gx, gy = np.meshgrid(xs, ys)
    z = chip.tech.layer(chip.tech.sensor_layer).z + z_height
    points = np.stack(
        [gx.ravel(), gy.ravel(), np.full(gx.size, z)], axis=1
    )
    field = b_field_of_segments(
        chip.grid.seg_start,
        chip.grid.seg_end,
        np.asarray(seg_currents).ravel(),
        points,
    )
    magnitude = np.linalg.norm(field, axis=1).reshape(grid, grid)
    return FieldMap(xs=xs, ys=ys, magnitude=magnitude)


def trojan_difference_map(
    chip: Chip,
    trojan: str,
    workload_factory,
    n_cycles: int = 64,
    grid: int = 40,
    golden_activity: np.ndarray | None = None,
) -> tuple[FieldMap, FieldMap, FieldMap]:
    """(golden, active, |difference|) field maps for one Trojan.

    *workload_factory* builds a fresh workload per acquisition (e.g.
    ``lambda: EncryptionWorkload(chip.aes, key, period=12)``).

    The golden activity does not depend on the Trojan, so callers
    sweeping several Trojans should pass a precomputed
    *golden_activity* (or use :func:`trojan_difference_maps`, which
    does) rather than re-simulating it per Trojan.
    """
    if golden_activity is None:
        golden_activity = average_cell_activity(
            chip, workload_factory(), n_cycles=n_cycles
        )
    active_act = average_cell_activity(
        chip,
        workload_factory(),
        n_cycles=n_cycles,
        trojan_enables=(trojan,),
    )
    golden = field_map_from_activity(chip, golden_activity, grid=grid)
    active = field_map_from_activity(chip, active_act, grid=grid)
    diff = FieldMap(
        xs=golden.xs,
        ys=golden.ys,
        magnitude=np.abs(active.magnitude - golden.magnitude),
    )
    return golden, active, diff


def trojan_difference_maps(
    chip: Chip,
    trojans: tuple[str, ...],
    workload_factory,
    n_cycles: int = 64,
    grid: int = 40,
) -> dict[str, tuple[FieldMap, FieldMap, FieldMap]]:
    """Difference maps for a whole Trojan sweep, golden computed once.

    Returns ``{trojan: (golden, active, |difference|)}`` with the same
    per-Trojan values as calling :func:`trojan_difference_map` in a
    loop — minus N-1 redundant golden-activity simulations.
    """
    golden_activity = average_cell_activity(
        chip, workload_factory(), n_cycles=n_cycles
    )
    return {
        trojan: trojan_difference_map(
            chip,
            trojan,
            workload_factory,
            n_cycles=n_cycles,
            grid=grid,
            golden_activity=golden_activity,
        )
        for trojan in trojans
    }
