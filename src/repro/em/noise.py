"""Noise models.

Two contributions matter for the paper's SNR comparison:

* **Environment noise** — ambient magnetic-field fluctuations ("random
  white noise is added in the simulation to mimic the real-world
  environment noises").  A coil picks this up in proportion to its
  effective area, which is precisely why the physically small on-chip
  spiral outperforms the large external probe head: it sees nearly the
  same signal flux (it is closer) but an order of magnitude less
  ambient flux.
* **Thermal (Johnson) noise** of the coil's own trace resistance —
  small, but included for physical completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.errors import EmModelError
from repro.units import K_BOLTZMANN, ROOM_TEMPERATURE


@dataclass(frozen=True)
class EnvironmentNoise:
    """White ambient dB/dt noise.

    ``b_dot_rms`` is the RMS rate of change of the ambient flux density
    [T/s] within the acquisition bandwidth.  The induced noise emf in a
    coil of effective area ``A`` (m²·turns) is ``A * b_dot_rms``.
    """

    b_dot_rms: float

    def __post_init__(self) -> None:
        if self.b_dot_rms < 0:
            raise EmModelError(f"b_dot_rms must be >= 0, got {self.b_dot_rms}")

    def emf_rms(self, effective_area: float) -> float:
        """RMS noise voltage induced in a coil of *effective_area*."""
        if effective_area < 0:
            raise EmModelError(
                f"effective area must be >= 0, got {effective_area}"
            )
        return effective_area * self.b_dot_rms

    def scaled(self, factor: float) -> "EnvironmentNoise":
        """A copy with *factor* times the noise level."""
        return EnvironmentNoise(self.b_dot_rms * factor)


def thermal_noise_rms(
    resistance: float,
    bandwidth: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """Johnson–Nyquist voltage noise RMS: sqrt(4 k T R B)."""
    if resistance < 0 or bandwidth < 0 or temperature < 0:
        raise EmModelError(
            "resistance, bandwidth and temperature must be non-negative"
        )
    return math.sqrt(4.0 * K_BOLTZMANN * temperature * resistance * bandwidth)


def white_noise(
    rng: np.random.Generator, shape: tuple[int, ...], rms: float
) -> np.ndarray:
    """Zero-mean Gaussian white noise with the given RMS."""
    if rms < 0:
        raise EmModelError(f"noise RMS must be >= 0, got {rms}")
    if rms == 0.0:
        return np.zeros(shape)
    return rng.normal(0.0, rms, size=shape)
