"""Memory budgeting for the vectorised EM kernels.

The Biot–Savart and Neumann solvers broadcast every source segment
against every observation/quadrature point.  At field-map sizes
(thousands of power-grid segments × thousands of surface points) the
naive broadcast would allocate gigabytes, so both kernels walk the
source axis in chunks sized to a fixed byte budget — large enough that
numpy amortises per-call overhead, small enough to stay cache- and
RAM-friendly.

The budget is configurable per call (``chunk_bytes=``) or process-wide
through the ``REPRO_EM_CHUNK_MB`` environment variable, resolved by
:mod:`repro.config`; see ``docs/CONFIG.md`` and ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from repro.config import CHUNK_ENV_VAR, DEFAULT_CHUNK_BYTES, active_config
from repro.errors import EmModelError

__all__ = [
    "CHUNK_ENV_VAR",
    "DEFAULT_CHUNK_BYTES",
    "CACHE_CHUNK_BYTES",
    "resolve_chunk_bytes",
    "rows_per_chunk",
]

#: Preferred working-set size for elementwise kernel chunks [bytes].
#: The EM kernels are memory-bandwidth-bound, so chunks that keep all
#: live temporaries resident in the last-level cache beat chunks that
#: merely fit in RAM.  The byte budget above remains a hard ceiling;
#: this target only shrinks chunks further when the budget allows more.
CACHE_CHUNK_BYTES = 4 * 1024 * 1024


def resolve_chunk_bytes(chunk_bytes: int | None = None) -> int:
    """Return the effective temporary-buffer budget in bytes.

    Precedence: explicit *chunk_bytes* argument, then the
    ``REPRO_EM_CHUNK_MB`` environment variable, then
    :data:`DEFAULT_CHUNK_BYTES` — the standard
    :mod:`repro.config` resolution order.
    """
    if chunk_bytes is None:
        return active_config().em_chunk_bytes
    if chunk_bytes <= 0:
        raise EmModelError(f"chunk budget must be positive, got {chunk_bytes}")
    return chunk_bytes


def rows_per_chunk(
    bytes_per_row: int,
    chunk_bytes: int | None = None,
    target_bytes: int | None = None,
) -> int:
    """How many source rows fit in the budget (always at least one).

    *target_bytes*, when given, lowers the effective budget below the
    configured ceiling — used by kernels that prefer cache-resident
    chunks (:data:`CACHE_CHUNK_BYTES`) over the full RAM budget.
    """
    budget = resolve_chunk_bytes(chunk_bytes)
    if target_bytes is not None:
        budget = min(budget, target_bytes)
    return max(1, budget // max(1, bytes_per_row))
