"""Electromagnetic models.

The chain follows the paper's simulation flow (Kumar et al., ICCAD'17
style): power-grid segment currents → magnetic coupling → induced emf
in a receiving coil, plus environment/thermal noise and the paper's
SNR definition (Eqs. (2)/(3)).

* :mod:`~repro.em.mutual` — partial mutual inductance between straight
  segments and a coil polyline (Neumann double integral, PEEC style);
* :mod:`~repro.em.biot_savart` — direct B-field evaluation, used for
  validation and field maps;
* :mod:`~repro.em.sensor` — the on-chip spiral sensor (paper Fig. 2b);
* :mod:`~repro.em.probe` — the external LANGER-style multi-turn probe
  (paper Fig. 2a);
* :mod:`~repro.em.noise` — environment/thermal noise models;
* :mod:`~repro.em.snr` — RMS-voltage SNR per the paper.
"""

from repro.em.mutual import mutual_inductance_to_loop, mutual_inductance_to_loops
from repro.em.biot_savart import b_field_of_segments
from repro.em.sensor import OnChipSensor, SensorArray
from repro.em.probe import ExternalProbe
from repro.em.noise import EnvironmentNoise, thermal_noise_rms, white_noise
from repro.em.snr import SnrResult, measure_snr, rms, snr_db, snr_voltage

__all__ = [
    "mutual_inductance_to_loop",
    "mutual_inductance_to_loops",
    "b_field_of_segments",
    "OnChipSensor",
    "SensorArray",
    "ExternalProbe",
    "EnvironmentNoise",
    "thermal_noise_rms",
    "white_noise",
    "SnrResult",
    "measure_snr",
    "rms",
    "snr_db",
    "snr_voltage",
]
