"""SNR per the paper's Eqs. (2) and (3).

The paper measures signal and noise *separately in the same
environment*: first the chip is powered but idle (noise record), then
it encrypts (signal record), and

.. math::

    SNR_{voltage} = \\frac{Signal\\,Voltage_{RMS}}{Noise\\,Voltage_{RMS}},
    \\qquad SNR_{dB} = 20 \\log_{10}(SNR_{voltage}).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.units import db


def rms(x: np.ndarray, axis: int | None = None) -> np.ndarray | float:
    """Root-mean-square along *axis* (all elements when None)."""
    x = np.asarray(x, dtype=np.float64)
    value = np.sqrt(np.mean(np.square(x), axis=axis))
    return float(value) if axis is None else value


def snr_voltage(signal_rms: float, noise_rms: float) -> float:
    """Paper Eq. (2): amplitude SNR from the two RMS voltages."""
    if noise_rms <= 0:
        raise AnalysisError(f"noise RMS must be > 0, got {noise_rms}")
    if signal_rms < 0:
        raise AnalysisError(f"signal RMS must be >= 0, got {signal_rms}")
    return signal_rms / noise_rms


def snr_db(signal_rms: float, noise_rms: float) -> float:
    """Paper Eq. (3): SNR in decibels."""
    ratio = snr_voltage(signal_rms, noise_rms)
    if ratio <= 0:
        raise AnalysisError("zero signal gives undefined dB SNR")
    return db(ratio)


@dataclass(frozen=True)
class SnrResult:
    """Outcome of one SNR measurement."""

    signal_rms: float
    noise_rms: float
    snr_voltage: float
    snr_db: float


def measure_snr(
    signal_traces: np.ndarray,
    noise_traces: np.ndarray,
    subtract_mean: bool = True,
) -> SnrResult:
    """Apply the paper's two-record SNR procedure.

    Parameters
    ----------
    signal_traces:
        Voltage record(s) during encryption, any shape.
    noise_traces:
        Voltage record(s) while the chip idles, any shape.
    subtract_mean:
        Remove each record's DC offset before taking RMS (an
        oscilloscope is AC-coupled in this kind of measurement).
    """
    sig = np.asarray(signal_traces, dtype=np.float64)
    noi = np.asarray(noise_traces, dtype=np.float64)
    if sig.size == 0 or noi.size == 0:
        raise AnalysisError("signal and noise records must be non-empty")
    if subtract_mean:
        sig = sig - sig.mean()
        noi = noi - noi.mean()
    s = rms(sig)
    n = rms(noi)
    return SnrResult(
        signal_rms=s,
        noise_rms=n,
        snr_voltage=snr_voltage(s, n),
        snr_db=snr_db(s, n),
    )
