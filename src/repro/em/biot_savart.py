"""Biot–Savart field of finite straight segments.

Direct field evaluation used to validate the mutual-inductance solver
(flux integration must agree with the Neumann result) and to render
surface field maps of the die ("EM leakage from every point of the
IC's surface", paper Section IV-A).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EmModelError
from repro.units import MU_0, UM


def b_field_of_segments(
    seg_start: np.ndarray,
    seg_end: np.ndarray,
    currents: np.ndarray,
    points: np.ndarray,
    min_distance: float = 0.1 * UM,
) -> np.ndarray:
    """Magnetic flux density at *points* from current-carrying segments.

    Uses the exact finite-wire solution

    .. math::

        \\vec B = \\frac{\\mu_0 I}{4\\pi d}
                  (\\cos\\alpha_1 - \\cos\\alpha_2)\\; \\hat\\phi

    with the angles measured from the segment axis at its two ends.

    Parameters
    ----------
    seg_start, seg_end:
        Segments, shape ``(N, 3)`` [m].
    currents:
        Signed current per segment, shape ``(N,)`` [A].
    points:
        Observation points, shape ``(P, 3)`` [m].
    min_distance:
        Radial floor [m] to avoid the on-axis singularity.

    Returns
    -------
    numpy.ndarray
        Field vectors, shape ``(P, 3)`` [T].
    """
    a = np.asarray(seg_start, dtype=np.float64)
    b = np.asarray(seg_end, dtype=np.float64)
    i_seg = np.asarray(currents, dtype=np.float64)
    pts = np.asarray(points, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 2 or a.shape[1] != 3:
        raise EmModelError(f"segments must be (N, 3); got {a.shape}, {b.shape}")
    if i_seg.shape != (a.shape[0],):
        raise EmModelError(
            f"currents shape {i_seg.shape} does not match {a.shape[0]} segments"
        )
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise EmModelError(f"points must be (P, 3), got {pts.shape}")

    field = np.zeros_like(pts)
    axis = b - a  # (N, 3)
    length = np.linalg.norm(axis, axis=1)
    ok = length > 0
    for idx in np.nonzero(ok)[0]:
        u = axis[idx] / length[idx]
        ap = pts - a[idx]  # (P, 3)
        proj = ap @ u  # (P,)
        radial = ap - proj[:, None] * u[None, :]
        d = np.linalg.norm(radial, axis=1)
        d = np.maximum(d, min_distance)
        bp_proj = proj - length[idx]
        ra = np.sqrt(proj**2 + d**2)
        rb = np.sqrt(bp_proj**2 + d**2)
        cos1 = proj / ra
        cos2 = bp_proj / rb
        magnitude = MU_0 * i_seg[idx] / (4.0 * math.pi * d) * (cos1 - cos2)
        phi = np.cross(np.broadcast_to(u, radial.shape), radial)
        norm = np.linalg.norm(phi, axis=1)
        safe = norm > 0
        phi[safe] /= norm[safe, None]
        field += magnitude[:, None] * phi
    return field


def flux_through_polygon(
    seg_start: np.ndarray,
    seg_end: np.ndarray,
    currents: np.ndarray,
    polygon: np.ndarray,
    grid: int = 24,
) -> float:
    """Magnetic flux through a planar polygon (z = const), by quadrature.

    A brute-force check of the Neumann solver: discretise the polygon's
    bounding box, evaluate Bz at interior points, sum.  Only intended
    for tests — O(grid² · segments).
    """
    poly = np.asarray(polygon, dtype=np.float64)
    if poly.ndim != 2 or poly.shape[1] != 3:
        raise EmModelError(f"polygon must be (M, 3), got {poly.shape}")
    z = float(poly[0, 2])
    if not np.allclose(poly[:, 2], z):
        raise EmModelError("polygon must be planar in z")
    xs = np.linspace(poly[:, 0].min(), poly[:, 0].max(), grid + 1)
    ys = np.linspace(poly[:, 1].min(), poly[:, 1].max(), grid + 1)
    xc = 0.5 * (xs[:-1] + xs[1:])
    yc = 0.5 * (ys[:-1] + ys[1:])
    cell = (xs[1] - xs[0]) * (ys[1] - ys[0])
    gx, gy = np.meshgrid(xc, yc)
    pts = np.stack([gx.ravel(), gy.ravel(), np.full(gx.size, z)], axis=1)

    inside = _points_in_polygon(pts[:, 0], pts[:, 1], poly[:, 0], poly[:, 1])
    if not inside.any():
        return 0.0
    field = b_field_of_segments(seg_start, seg_end, currents, pts[inside])
    return float(field[:, 2].sum() * cell)


def _points_in_polygon(
    px: np.ndarray, py: np.ndarray, vx: np.ndarray, vy: np.ndarray
) -> np.ndarray:
    """Vectorised even-odd point-in-polygon test."""
    inside = np.zeros(px.shape, dtype=bool)
    n = len(vx)
    j = n - 1
    for i in range(n):
        crosses = (vy[i] > py) != (vy[j] > py)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_int = (vx[j] - vx[i]) * (py - vy[i]) / (vy[j] - vy[i]) + vx[i]
        inside ^= crosses & (px < x_int)
        j = i
    return inside
