"""Biot–Savart field of finite straight segments.

Direct field evaluation used to validate the mutual-inductance solver
(flux integration must agree with the Neumann result) and to render
surface field maps of the die ("EM leakage from every point of the
IC's surface", paper Section IV-A).
"""

from __future__ import annotations

import math

import numpy as np

from repro.em.chunking import CACHE_CHUNK_BYTES, rows_per_chunk
from repro.errors import EmModelError
from repro.units import MU_0, UM

_BIOT_PREFACTOR = MU_0 / (4.0 * math.pi)


def b_field_of_segments(
    seg_start: np.ndarray,
    seg_end: np.ndarray,
    currents: np.ndarray,
    points: np.ndarray,
    min_distance: float = 0.1 * UM,
    chunk_bytes: int | None = None,
) -> np.ndarray:
    """Magnetic flux density at *points* from current-carrying segments.

    Uses the exact finite-wire solution

    .. math::

        \\vec B = \\frac{\\mu_0 I}{4\\pi d}
                  (\\cos\\alpha_1 - \\cos\\alpha_2)\\; \\hat\\phi

    with the angles measured from the segment axis at its two ends.

    All segments are evaluated against all points by ``(S, P)``
    broadcasting, walking the segment axis in memory-capped chunks so a
    full-die field map (thousands of power-grid segments × thousands of
    surface points) never materialises the complete ``(N, P, 3)``
    tensor.  Axis-aligned segments — the entire power grid, in
    practice — take a specialised branch that works directly on the two
    transverse coordinate planes: no 3-vector temporaries, no cross
    products, and one field component known to vanish.

    Parameters
    ----------
    seg_start, seg_end:
        Segments, shape ``(N, 3)`` [m].
    currents:
        Signed current per segment, shape ``(N,)`` [A].
    points:
        Observation points, shape ``(P, 3)`` [m].
    min_distance:
        Radial floor [m] to avoid the on-axis singularity.
    chunk_bytes:
        Budget for the transient broadcast buffers; defaults to the
        ``REPRO_EM_CHUNK_MB`` environment variable or 64 MiB.

    Returns
    -------
    numpy.ndarray
        Field vectors, shape ``(P, 3)`` [T].
    """
    a = np.asarray(seg_start, dtype=np.float64)
    b = np.asarray(seg_end, dtype=np.float64)
    i_seg = np.asarray(currents, dtype=np.float64)
    pts = np.asarray(points, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 2 or a.shape[1] != 3:
        raise EmModelError(f"segments must be (N, 3); got {a.shape}, {b.shape}")
    if i_seg.shape != (a.shape[0],):
        raise EmModelError(
            f"currents shape {i_seg.shape} does not match {a.shape[0]} segments"
        )
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise EmModelError(f"points must be (P, 3), got {pts.shape}")

    field = np.zeros_like(pts)
    axis = b - a  # (N, 3)
    length = np.linalg.norm(axis, axis=1)
    ok = length > 0
    if not ok.any() or pts.shape[0] == 0:
        return field
    a, axis, length, i_seg = a[ok], axis[ok], length[ok], i_seg[ok]

    # Segments lying exactly on a coordinate axis (the whole power
    # grid) go through the specialised planar branch; anything oblique
    # falls back to the general broadcast.
    generic = np.ones(a.shape[0], dtype=bool)
    for k in range(3):
        j, l = (k + 1) % 3, (k + 2) % 3
        sel = (axis[:, j] == 0.0) & (axis[:, l] == 0.0) & (axis[:, k] != 0.0)
        if sel.any():
            _b_axis_aligned(
                a[sel],
                length[sel],
                np.sign(axis[sel, k]),
                i_seg[sel],
                pts,
                k,
                min_distance,
                chunk_bytes,
                field,
            )
            generic &= ~sel
    if generic.any():
        _b_generic(
            a[generic],
            axis[generic],
            length[generic],
            i_seg[generic],
            pts,
            min_distance,
            chunk_bytes,
            field,
        )
    return field


def _b_axis_aligned(
    a: np.ndarray,
    length: np.ndarray,
    sign: np.ndarray,
    i_seg: np.ndarray,
    pts: np.ndarray,
    k: int,
    min_distance: float,
    chunk_bytes: int | None,
    field: np.ndarray,
) -> None:
    """Accumulate the field of segments parallel to coordinate axis *k*.

    With ``u = sign * e_k`` the radial separation lives entirely in the
    ``(j, l)`` plane, so the whole computation runs on ``(S, P)`` scalar
    planes: ``u x ap = sign * (ap_j e_l - ap_l e_j)`` and the field
    picks up no component along the segment axis.
    """
    j, l = (k + 1) % 3, (k + 2) % 3
    pk, pj, pl = pts[:, k], pts[:, j], pts[:, l]
    md2 = min_distance * min_distance
    amp = (_BIOT_PREFACTOR * i_seg * sign)[:, None]

    # ~10 (S, P)-sized float64 temporaries live at once per chunk; keep
    # them cache-resident rather than filling the whole byte budget.
    step = rows_per_chunk(
        10 * 8 * pts.shape[0], chunk_bytes, target_bytes=CACHE_CHUNK_BYTES
    )
    for lo in range(0, a.shape[0], step):
        hi = lo + step
        sg = sign[lo:hi, None]
        proj = pk[None, :] - a[lo:hi, k, None]
        proj *= sg
        dj = pj[None, :] - a[lo:hi, j, None]
        dl = pl[None, :] - a[lo:hi, l, None]
        d2 = dj * dj
        d2 += dl * dl
        clamped = d2 < md2
        any_clamped = bool(clamped.any())
        if any_clamped:
            np.maximum(d2, md2, out=d2)
        ra = proj * proj
        ra += d2
        np.sqrt(ra, out=ra)
        bp = proj - length[lo:hi, None]
        rb = bp * bp
        rb += d2
        np.sqrt(rb, out=rb)
        # fac = (cos a1 - cos a2) / (d_clamped * d_raw): the clamped
        # distance feeds the magnitude, the raw distance normalises
        # u x ap to the unit azimuthal direction.
        fac = proj / ra
        fac -= bp / rb
        if any_clamped:
            si, pi = np.nonzero(clamped)
            draw = np.sqrt(dj[si, pi] ** 2 + dl[si, pi] ** 2)
            on_axis = draw == 0.0
            draw[on_axis] = np.inf  # zero azimuthal direction => no field
            fac[si, pi] /= min_distance * draw
            unc = ~clamped
            fac[unc] /= d2[unc]
        else:
            fac /= d2
        fac *= amp[lo:hi]
        field[:, j] -= np.einsum("sp,sp->p", fac, dl)
        field[:, l] += np.einsum("sp,sp->p", fac, dj)


def _b_generic(
    a: np.ndarray,
    axis: np.ndarray,
    length: np.ndarray,
    i_seg: np.ndarray,
    pts: np.ndarray,
    min_distance: float,
    chunk_bytes: int | None,
    field: np.ndarray,
) -> None:
    """Accumulate the field of arbitrarily oriented segments."""
    u_all = axis / length[:, None]

    # ~16 (S, P, 3)-sized float64 temporaries live at once per chunk.
    n_pts = pts.shape[0]
    step = rows_per_chunk(
        16 * 24 * n_pts, chunk_bytes, target_bytes=CACHE_CHUNK_BYTES
    )
    for lo in range(0, a.shape[0], step):
        hi = lo + step
        u = u_all[lo:hi]  # (S, 3)
        ap = pts[None, :, :] - a[lo:hi, None, :]  # (S, P, 3)
        proj = np.einsum("spk,sk->sp", ap, u)  # (S, P)
        radial = ap - proj[:, :, None] * u[:, None, :]
        d = np.linalg.norm(radial, axis=2)
        np.maximum(d, min_distance, out=d)
        bp_proj = proj - length[lo:hi, None]
        ra = np.sqrt(proj**2 + d**2)
        rb = np.sqrt(bp_proj**2 + d**2)
        cos1 = proj / ra
        cos2 = bp_proj / rb
        magnitude = (
            MU_0 * i_seg[lo:hi, None] / (4.0 * math.pi * d) * (cos1 - cos2)
        )
        phi = np.cross(np.broadcast_to(u[:, None, :], radial.shape), radial)
        norm = np.linalg.norm(phi, axis=2)[:, :, None]
        np.divide(phi, norm, out=phi, where=norm > 0)
        field += np.einsum("sp,spk->pk", magnitude, phi)


def _b_field_of_segments_loop(
    seg_start: np.ndarray,
    seg_end: np.ndarray,
    currents: np.ndarray,
    points: np.ndarray,
    min_distance: float = 0.1 * UM,
) -> np.ndarray:
    """Reference per-segment-loop implementation.

    Kept as the ground truth for the vectorised kernel's equivalence
    tests and the perf benchmark's baseline; not part of the public API.
    """
    a = np.asarray(seg_start, dtype=np.float64)
    b = np.asarray(seg_end, dtype=np.float64)
    i_seg = np.asarray(currents, dtype=np.float64)
    pts = np.asarray(points, dtype=np.float64)

    field = np.zeros_like(pts)
    axis = b - a  # (N, 3)
    length = np.linalg.norm(axis, axis=1)
    ok = length > 0
    for idx in np.nonzero(ok)[0]:
        u = axis[idx] / length[idx]
        ap = pts - a[idx]  # (P, 3)
        proj = ap @ u  # (P,)
        radial = ap - proj[:, None] * u[None, :]
        d = np.linalg.norm(radial, axis=1)
        d = np.maximum(d, min_distance)
        bp_proj = proj - length[idx]
        ra = np.sqrt(proj**2 + d**2)
        rb = np.sqrt(bp_proj**2 + d**2)
        cos1 = proj / ra
        cos2 = bp_proj / rb
        magnitude = MU_0 * i_seg[idx] / (4.0 * math.pi * d) * (cos1 - cos2)
        phi = np.cross(np.broadcast_to(u, radial.shape), radial)
        norm = np.linalg.norm(phi, axis=1)
        safe = norm > 0
        phi[safe] /= norm[safe, None]
        field += magnitude[:, None] * phi
    return field


def flux_through_polygon(
    seg_start: np.ndarray,
    seg_end: np.ndarray,
    currents: np.ndarray,
    polygon: np.ndarray,
    grid: int = 24,
) -> float:
    """Magnetic flux through a planar polygon (z = const), by quadrature.

    A brute-force check of the Neumann solver: discretise the polygon's
    bounding box, evaluate Bz at interior points, sum.  Only intended
    for tests — O(grid² · segments).
    """
    poly = np.asarray(polygon, dtype=np.float64)
    if poly.ndim != 2 or poly.shape[1] != 3:
        raise EmModelError(f"polygon must be (M, 3), got {poly.shape}")
    z = float(poly[0, 2])
    if not np.allclose(poly[:, 2], z):
        raise EmModelError("polygon must be planar in z")
    xs = np.linspace(poly[:, 0].min(), poly[:, 0].max(), grid + 1)
    ys = np.linspace(poly[:, 1].min(), poly[:, 1].max(), grid + 1)
    xc = 0.5 * (xs[:-1] + xs[1:])
    yc = 0.5 * (ys[:-1] + ys[1:])
    cell = (xs[1] - xs[0]) * (ys[1] - ys[0])
    gx, gy = np.meshgrid(xc, yc)
    pts = np.stack([gx.ravel(), gy.ravel(), np.full(gx.size, z)], axis=1)

    inside = _points_in_polygon(pts[:, 0], pts[:, 1], poly[:, 0], poly[:, 1])
    if not inside.any():
        return 0.0
    field = b_field_of_segments(seg_start, seg_end, currents, pts[inside])
    return float(field[:, 2].sum() * cell)


def _points_in_polygon(
    px: np.ndarray, py: np.ndarray, vx: np.ndarray, vy: np.ndarray
) -> np.ndarray:
    """Vectorised even-odd point-in-polygon test."""
    inside = np.zeros(px.shape, dtype=bool)
    n = len(vx)
    j = n - 1
    for i in range(n):
        crosses = (vy[i] > py) != (vy[j] > py)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_int = (vx[j] - vx[i]) * (py - vy[i]) / (vy[j] - vy[i]) + vx[i]
        inside ^= crosses & (px < x_int)
        j = i
    return inside
