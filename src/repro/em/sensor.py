"""The on-chip EM sensor — the paper's key component (Fig. 2b).

A one-way spiral coil on the topmost metal layer (M6), starting at the
die centre and growing to cover the whole circuit.  Its two ends route
to the Sensor In / Sensor Out pads; the differential voltage between
them is the sensor output.  Because the coil sits a few microns above
the power grid, it intercepts the near field of every cell's current
loop before VDD/VSS cancellation sets in — that geometry, not any
amplifier, is where the SNR advantage over an external probe comes
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EmModelError, TechnologyError
from repro.layout.geometry import Rect, enclosed_area, polyline_length, rectangular_spiral
from repro.layout.technology import Technology
from repro.em.mutual import mutual_inductance_to_loop, mutual_inductance_to_loops
from repro.units import UM


@dataclass
class OnChipSensor:
    """Spiral sensor geometry plus its electrical properties."""

    polyline: np.ndarray
    turns: int
    pitch: float
    trace_width: float
    layer_name: str
    tech: Technology

    @classmethod
    def design(
        cls,
        die: Rect,
        tech: Technology,
        turns: int = 12,
        trace_width: float = 2.0 * UM,
        edge_margin: float = 10.0 * UM,
    ) -> "OnChipSensor":
        """Design a spiral covering *die* on the technology's top layer.

        The coil pitch is chosen so the outermost turn reaches the die
        edge minus *edge_margin*; the trace width must respect the top
        layer's minimum width rule ("the width of the coils is set not
        to violate the design rules", paper Section III-C).

        Raises
        ------
        TechnologyError
            If *trace_width* violates the sensor layer's minimum width.
        EmModelError
            If the requested turn count cannot fit the die.
        """
        layer = tech.layer(tech.sensor_layer)
        if trace_width < layer.min_width:
            raise TechnologyError(
                f"sensor trace width {trace_width:.2e} violates "
                f"{layer.name} minimum width {layer.min_width:.2e}"
            )
        half_extent = 0.5 * min(die.width, die.height) - edge_margin
        if half_extent <= 0:
            raise EmModelError("die too small for a sensor coil")
        pitch = half_extent / turns
        if pitch < 2.0 * trace_width:
            raise EmModelError(
                f"{turns} turns need a pitch of {pitch:.2e} m, below twice "
                f"the trace width; reduce turns or width"
            )
        cx, cy = die.center
        polyline = rectangular_spiral(cx, cy, layer.z, pitch, turns)
        return cls(
            polyline=polyline,
            turns=turns,
            pitch=pitch,
            trace_width=trace_width,
            layer_name=layer.name,
            tech=tech,
        )

    # ------------------------------------------------------------------
    # Electromagnetics
    # ------------------------------------------------------------------
    def coupling(
        self, seg_start: np.ndarray, seg_end: np.ndarray, n_quad: int = 4
    ) -> np.ndarray:
        """Mutual inductance of each source segment to the coil [H]."""
        return mutual_inductance_to_loop(
            seg_start, seg_end, self.polyline, n_quad=n_quad
        )

    def effective_area(self) -> float:
        """Turns-weighted flux-capture area [m² · turns].

        The shoelace area of the open spiral counts each annulus with
        multiplicity equal to the number of turns enclosing it, which is
        exactly the uniform-field pickup area.  Environment noise
        couples proportionally to this.
        """
        return abs(enclosed_area(self.polyline))

    def length(self) -> float:
        """Total coil trace length [m]."""
        return polyline_length(self.polyline)

    def resistance(self) -> float:
        """DC resistance of the coil trace [ohm]."""
        layer = self.tech.layer(self.layer_name)
        return layer.wire_resistance(self.length(), self.trace_width)

    def describe(self) -> str:
        """One-line geometric summary."""
        um = 1e6
        return (
            f"on-chip spiral: {self.turns} turns, pitch {self.pitch * um:.1f} um, "
            f"width {self.trace_width * um:.1f} um on {self.layer_name}, "
            f"length {self.length() * 1e3:.2f} mm, R = {self.resistance():.1f} ohm, "
            f"A_eff = {self.effective_area() * 1e6:.3f} mm^2-turns"
        )


@dataclass
class SensorArray:
    """An N×M grid of smaller spiral coils tiling the die.

    The programmable sensor-array follow-up replaces the one full-die
    spiral with selectable sub-coils; each sub-coil sees mostly the
    current loops under its own tile, which is what turns detection
    into localization.  Every coil is a full :class:`OnChipSensor`
    (same layer, same DRC checks), just designed inside its tile
    instead of the whole die.

    Coils are stored row-major: ``coils[r * cols + c]`` covers tile
    ``(r, c)``, with row 0 at the *bottom* of the die (lowest y) and
    column 0 at the left, matching floorplan coordinates.
    """

    rows: int
    cols: int
    coils: list[OnChipSensor]
    tiles: list[Rect]
    die: Rect

    @classmethod
    def design_grid(
        cls,
        die: Rect,
        tech: Technology,
        rows: int,
        cols: int,
        turns: int = 3,
        trace_width: float = 2.0 * UM,
        edge_margin: float = 4.0 * UM,
    ) -> "SensorArray":
        """Tile *die* with ``rows x cols`` sub-coils.

        Each tile gets its own :meth:`OnChipSensor.design` call, so the
        per-tile pitch/width validation (minimum width, pitch >= 2w)
        applies to the sub-coils exactly as to the full-die spiral.
        """
        if rows < 1 or cols < 1:
            raise EmModelError(
                f"sensor array needs rows >= 1 and cols >= 1, got {rows}x{cols}"
            )
        tile_w = die.width / cols
        tile_h = die.height / rows
        coils: list[OnChipSensor] = []
        tiles: list[Rect] = []
        for r in range(rows):
            for c in range(cols):
                tile = Rect(
                    die.x0 + c * tile_w,
                    die.y0 + r * tile_h,
                    die.x0 + (c + 1) * tile_w,
                    die.y0 + (r + 1) * tile_h,
                )
                coils.append(
                    OnChipSensor.design(
                        tile,
                        tech,
                        turns=turns,
                        trace_width=trace_width,
                        edge_margin=edge_margin,
                    )
                )
                tiles.append(tile)
        return cls(rows=rows, cols=cols, coils=coils, tiles=tiles, die=die)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def channel_names(self, prefix: str = "array") -> list[str]:
        """Row-major channel names, ``{prefix}.r{r}c{c}``."""
        return [
            f"{prefix}.r{r}c{c}"
            for r in range(self.rows)
            for c in range(self.cols)
        ]

    def coil_at(self, row: int, col: int) -> OnChipSensor:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise EmModelError(
                f"coil ({row}, {col}) outside {self.rows}x{self.cols} array"
            )
        return self.coils[row * self.cols + col]

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Grid cell ``(row, col)`` containing die point ``(x, y)``.

        Points outside the die clamp to the nearest edge cell.
        """
        c = int((x - self.die.x0) / self.die.width * self.cols)
        r = int((y - self.die.y0) / self.die.height * self.rows)
        return (
            min(max(r, 0), self.rows - 1),
            min(max(c, 0), self.cols - 1),
        )

    def centers(self) -> np.ndarray:
        """Tile centres, shape ``(rows*cols, 2)`` [m], row-major."""
        return np.array([tile.center for tile in self.tiles])

    # ------------------------------------------------------------------
    # Electromagnetics
    # ------------------------------------------------------------------
    def coupling(
        self, seg_start: np.ndarray, seg_end: np.ndarray, n_quad: int = 4
    ) -> np.ndarray:
        """Coupling tensor of every source segment to every coil.

        One batched :func:`mutual_inductance_to_loops` pass; shape
        ``(rows*cols, n_segments)`` [H], coils row-major.
        """
        return mutual_inductance_to_loops(
            seg_start,
            seg_end,
            [coil.polyline for coil in self.coils],
            n_quad=n_quad,
        )

    def describe(self) -> str:
        """One-line geometric summary of the grid."""
        coil = self.coils[0]
        um = 1e6
        return (
            f"{self.rows}x{self.cols} sensor array: "
            f"{len(self.coils)} spirals of {coil.turns} turns, "
            f"pitch {coil.pitch * um:.1f} um, width "
            f"{coil.trace_width * um:.1f} um on {coil.layer_name}"
        )
