"""The on-chip EM sensor — the paper's key component (Fig. 2b).

A one-way spiral coil on the topmost metal layer (M6), starting at the
die centre and growing to cover the whole circuit.  Its two ends route
to the Sensor In / Sensor Out pads; the differential voltage between
them is the sensor output.  Because the coil sits a few microns above
the power grid, it intercepts the near field of every cell's current
loop before VDD/VSS cancellation sets in — that geometry, not any
amplifier, is where the SNR advantage over an external probe comes
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EmModelError, TechnologyError
from repro.layout.geometry import Rect, enclosed_area, polyline_length, rectangular_spiral
from repro.layout.technology import Technology
from repro.em.mutual import mutual_inductance_to_loop
from repro.units import UM


@dataclass
class OnChipSensor:
    """Spiral sensor geometry plus its electrical properties."""

    polyline: np.ndarray
    turns: int
    pitch: float
    trace_width: float
    layer_name: str
    tech: Technology

    @classmethod
    def design(
        cls,
        die: Rect,
        tech: Technology,
        turns: int = 12,
        trace_width: float = 2.0 * UM,
        edge_margin: float = 10.0 * UM,
    ) -> "OnChipSensor":
        """Design a spiral covering *die* on the technology's top layer.

        The coil pitch is chosen so the outermost turn reaches the die
        edge minus *edge_margin*; the trace width must respect the top
        layer's minimum width rule ("the width of the coils is set not
        to violate the design rules", paper Section III-C).

        Raises
        ------
        TechnologyError
            If *trace_width* violates the sensor layer's minimum width.
        EmModelError
            If the requested turn count cannot fit the die.
        """
        layer = tech.layer(tech.sensor_layer)
        if trace_width < layer.min_width:
            raise TechnologyError(
                f"sensor trace width {trace_width:.2e} violates "
                f"{layer.name} minimum width {layer.min_width:.2e}"
            )
        half_extent = 0.5 * min(die.width, die.height) - edge_margin
        if half_extent <= 0:
            raise EmModelError("die too small for a sensor coil")
        pitch = half_extent / turns
        if pitch < 2.0 * trace_width:
            raise EmModelError(
                f"{turns} turns need a pitch of {pitch:.2e} m, below twice "
                f"the trace width; reduce turns or width"
            )
        cx, cy = die.center
        polyline = rectangular_spiral(cx, cy, layer.z, pitch, turns)
        return cls(
            polyline=polyline,
            turns=turns,
            pitch=pitch,
            trace_width=trace_width,
            layer_name=layer.name,
            tech=tech,
        )

    # ------------------------------------------------------------------
    # Electromagnetics
    # ------------------------------------------------------------------
    def coupling(
        self, seg_start: np.ndarray, seg_end: np.ndarray, n_quad: int = 4
    ) -> np.ndarray:
        """Mutual inductance of each source segment to the coil [H]."""
        return mutual_inductance_to_loop(
            seg_start, seg_end, self.polyline, n_quad=n_quad
        )

    def effective_area(self) -> float:
        """Turns-weighted flux-capture area [m² · turns].

        The shoelace area of the open spiral counts each annulus with
        multiplicity equal to the number of turns enclosing it, which is
        exactly the uniform-field pickup area.  Environment noise
        couples proportionally to this.
        """
        return abs(enclosed_area(self.polyline))

    def length(self) -> float:
        """Total coil trace length [m]."""
        return polyline_length(self.polyline)

    def resistance(self) -> float:
        """DC resistance of the coil trace [ohm]."""
        layer = self.tech.layer(self.layer_name)
        return layer.wire_resistance(self.length(), self.trace_width)

    def describe(self) -> str:
        """One-line geometric summary."""
        um = 1e6
        return (
            f"on-chip spiral: {self.turns} turns, pitch {self.pitch * um:.1f} um, "
            f"width {self.trace_width * um:.1f} um on {self.layer_name}, "
            f"length {self.length() * 1e3:.2f} mm, R = {self.resistance():.1f} ohm, "
            f"A_eff = {self.effective_area() * 1e6:.3f} mm^2-turns"
        )
