"""External EM probe model — paper Fig. 2a.

The X-rayed LANGER RF probe is "several metal coils with the same
diameter at the top end"; we model it as a stack of identical circular
loops at a standoff above the die surface (the paper sets the probe
100 µm above the circuit, "with reference to the real thickness of
packaging of the chip").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmModelError
from repro.layout.geometry import Rect, circular_loop, enclosed_area
from repro.em.mutual import mutual_inductance_to_loop
from repro.units import MM, UM


@dataclass
class ExternalProbe:
    """Stacked-loop external probe."""

    loops: list[np.ndarray]
    radius: float
    standoff: float

    @classmethod
    def langer_rf(
        cls,
        die: Rect,
        die_top_z: float,
        standoff: float = 100 * UM,
        radius: float = 1.2 * MM,
        turns: int = 8,
        turn_spacing: float = 60 * UM,
        n_sides: int = 24,
    ) -> "ExternalProbe":
        """A LANGER-RF-style probe centred over the die.

        Parameters
        ----------
        die:
            Die outline (the probe centres on it).
        die_top_z:
            Height of the die surface above the transistor plane [m].
        standoff:
            Probe-tip height above the die surface [m]; the paper's
            simulations use 100 µm.
        radius:
            Loop radius [m] (mm-class for a real RF probe head).
        turns:
            Number of stacked identical loops.
        turn_spacing:
            Vertical spacing between loops [m].
        """
        if turns < 1:
            raise EmModelError(f"probe needs at least 1 turn, got {turns}")
        if standoff < 0:
            raise EmModelError(f"standoff must be >= 0, got {standoff}")
        cx, cy = die.center
        z0 = die_top_z + standoff
        loops = [
            circular_loop(cx, cy, z0 + k * turn_spacing, radius, n_sides)
            for k in range(turns)
        ]
        return cls(loops=loops, radius=radius, standoff=standoff)

    @property
    def turns(self) -> int:
        return len(self.loops)

    def coupling(
        self, seg_start: np.ndarray, seg_end: np.ndarray, n_quad: int = 4
    ) -> np.ndarray:
        """Mutual inductance of each source segment to the probe [H]."""
        total = np.zeros(np.asarray(seg_start).shape[0])
        for loop in self.loops:
            total += mutual_inductance_to_loop(
                seg_start, seg_end, loop, n_quad=n_quad
            )
        return total

    def effective_area(self) -> float:
        """Total flux-capture area of all turns [m² · turns]."""
        return float(sum(abs(enclosed_area(loop)) for loop in self.loops))

    def describe(self) -> str:
        """One-line geometric summary."""
        return (
            f"external probe: {self.turns} turns, radius {self.radius * 1e3:.2f} mm, "
            f"standoff {self.standoff * 1e6:.0f} um, "
            f"A_eff = {self.effective_area() * 1e6:.2f} mm^2-turns"
        )
