"""Partial mutual inductance between wire segments and a coil.

PEEC-style Neumann double integral: for a straight source segment *s*
and a straight coil segment *c*,

.. math::

    M_{sc} = \\frac{\\mu_0}{4\\pi}
             \\int_s \\int_c \\frac{d\\vec l_s \\cdot d\\vec l_c}{r}

evaluated with Gauss–Legendre quadrature.  Summing over the coil's
segments gives each power-grid segment's coupling to the whole coil;
the induced emf is then ``-M_s * dI_s/dt`` summed over segments.

Perpendicular segments contribute nothing (the dot product vanishes),
which the implementation exploits by skipping near-orthogonal pairs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EmModelError
from repro.units import MU_0, UM


def _gauss01(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss–Legendre nodes/weights transformed to [0, 1]."""
    if n < 1:
        raise EmModelError(f"quadrature order must be >= 1, got {n}")
    x, w = np.polynomial.legendre.leggauss(n)
    return 0.5 * (x + 1.0), 0.5 * w


def mutual_inductance_to_loop(
    seg_start: np.ndarray,
    seg_end: np.ndarray,
    loop_points: np.ndarray,
    n_quad: int = 4,
    min_distance: float = 0.5 * UM,
) -> np.ndarray:
    """Mutual inductance of each source segment to a coil polyline.

    Parameters
    ----------
    seg_start, seg_end:
        Source segments, shape ``(N, 3)`` each [m].
    loop_points:
        Coil polyline vertices, shape ``(M, 3)``; consecutive vertices
        form the coil segments (the polyline need not be closed — an
        on-chip spiral is open and its pads close the circuit).
    n_quad:
        Gauss–Legendre order per dimension.
    min_distance:
        Distance floor [m] guarding the 1/r kernel where a coil trace
        crosses directly over a grid wire.

    Returns
    -------
    numpy.ndarray
        Mutual inductance per source segment, shape ``(N,)`` [H].
    """
    s0 = np.asarray(seg_start, dtype=np.float64)
    s1 = np.asarray(seg_end, dtype=np.float64)
    loop = np.asarray(loop_points, dtype=np.float64)
    if s0.shape != s1.shape or s0.ndim != 2 or s0.shape[1] != 3:
        raise EmModelError(
            f"segment arrays must both be (N, 3); got {s0.shape} and {s1.shape}"
        )
    if loop.ndim != 2 or loop.shape[1] != 3 or loop.shape[0] < 2:
        raise EmModelError(f"loop polyline must be (M>=2, 3), got {loop.shape}")
    if min_distance <= 0:
        raise EmModelError(f"min_distance must be positive, got {min_distance}")

    u, w = _gauss01(n_quad)
    n_src = s0.shape[0]
    result = np.zeros(n_src)
    if n_src == 0:
        return result

    d_src = s1 - s0  # (N, 3), includes length
    # Quadrature points along every source segment: (N, A, 3).
    p_src = s0[:, None, :] + u[None, :, None] * d_src[:, None, :]

    c0_all, c1_all = loop[:-1], loop[1:]
    for c0, c1 in zip(c0_all, c1_all):
        d_coil = c1 - c0
        coil_len = float(np.linalg.norm(d_coil))
        if coil_len == 0.0:
            continue
        # (t_s . t_c) including both lengths: dot of the full vectors.
        dots = d_src @ d_coil  # (N,)
        active = np.abs(dots) > 0.0
        if not active.any():
            continue
        p_coil = c0[None, :] + u[:, None] * d_coil[None, :]  # (B, 3)
        diff = p_src[active][:, :, None, :] - p_coil[None, None, :, :]
        dist = np.linalg.norm(diff, axis=-1)  # (n_active, A, B)
        np.maximum(dist, min_distance, out=dist)
        kernel = (w[None, :, None] * w[None, None, :] / dist).sum(axis=(1, 2))
        result[active] += dots[active] * kernel
    return MU_0 / (4.0 * math.pi) * result
