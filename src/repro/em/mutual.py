"""Partial mutual inductance between wire segments and a coil.

PEEC-style Neumann double integral: for a straight source segment *s*
and a straight coil segment *c*,

.. math::

    M_{sc} = \\frac{\\mu_0}{4\\pi}
             \\int_s \\int_c \\frac{d\\vec l_s \\cdot d\\vec l_c}{r}

evaluated with Gauss–Legendre quadrature.  Summing over the coil's
segments gives each power-grid segment's coupling to the whole coil;
the induced emf is then ``-M_s * dI_s/dt`` summed over segments.

Perpendicular segments contribute nothing (the dot product vanishes),
which the implementation exploits by skipping near-orthogonal pairs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.em.chunking import CACHE_CHUNK_BYTES, rows_per_chunk
from repro.errors import EmModelError
from repro.units import MU_0, UM


def _gauss01(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss–Legendre nodes/weights transformed to [0, 1]."""
    if n < 1:
        raise EmModelError(f"quadrature order must be >= 1, got {n}")
    x, w = np.polynomial.legendre.leggauss(n)
    return 0.5 * (x + 1.0), 0.5 * w


def mutual_inductance_to_loop(
    seg_start: np.ndarray,
    seg_end: np.ndarray,
    loop_points: np.ndarray,
    n_quad: int = 4,
    min_distance: float = 0.5 * UM,
    chunk_bytes: int | None = None,
) -> np.ndarray:
    """Mutual inductance of each source segment to a coil polyline.

    Every source segment is integrated against every coil segment at
    once: the pairwise quadrature-point distances come from a single
    ``(S*A, 3) @ (3, C*B)`` matrix product via the expansion
    ``|p - q|^2 = |p|^2 - 2 p.q + |q|^2`` (coordinates centred first),
    walking the source axis in memory-capped chunks so a many-turn
    spiral against a full power grid stays within a fixed
    transient-buffer budget.  Pairs close enough for the expansion to
    cancel catastrophically are recomputed exactly from the original
    coordinates, so accuracy matches the direct difference tensor.

    Parameters
    ----------
    seg_start, seg_end:
        Source segments, shape ``(N, 3)`` each [m].
    loop_points:
        Coil polyline vertices, shape ``(M, 3)``; consecutive vertices
        form the coil segments (the polyline need not be closed — an
        on-chip spiral is open and its pads close the circuit).
    n_quad:
        Gauss–Legendre order per dimension.
    min_distance:
        Distance floor [m] guarding the 1/r kernel where a coil trace
        crosses directly over a grid wire.
    chunk_bytes:
        Budget for the transient broadcast buffers; defaults to the
        ``REPRO_EM_CHUNK_MB`` environment variable or 64 MiB.

    Returns
    -------
    numpy.ndarray
        Mutual inductance per source segment, shape ``(N,)`` [H].
    """
    s0 = np.asarray(seg_start, dtype=np.float64)
    s1 = np.asarray(seg_end, dtype=np.float64)
    loop = np.asarray(loop_points, dtype=np.float64)
    if s0.shape != s1.shape or s0.ndim != 2 or s0.shape[1] != 3:
        raise EmModelError(
            f"segment arrays must both be (N, 3); got {s0.shape} and {s1.shape}"
        )
    if loop.ndim != 2 or loop.shape[1] != 3 or loop.shape[0] < 2:
        raise EmModelError(f"loop polyline must be (M>=2, 3), got {loop.shape}")
    if min_distance <= 0:
        raise EmModelError(f"min_distance must be positive, got {min_distance}")

    u, w = _gauss01(n_quad)
    n_src = s0.shape[0]
    result = np.zeros(n_src)
    if n_src == 0:
        return result

    c0 = loop[:-1]
    d_coil = loop[1:] - c0  # (C, 3), includes length
    keep = np.linalg.norm(d_coil, axis=1) > 0
    c0, d_coil = c0[keep], d_coil[keep]
    if c0.shape[0] == 0:
        return result

    d_src = s1 - s0  # (N, 3), includes length
    # (t_s . t_c) including both lengths: dot of the full vectors.
    dots = d_src @ d_coil.T  # (N, C); orthogonal pairs contribute 0
    # Coil quadrature points, flattened to (C*B, 3).
    n_a = u.size
    n_coil = c0.shape[0]
    p_coil = (
        c0[:, None, :] + u[None, :, None] * d_coil[:, None, :]
    ).reshape(n_coil * n_a, 3)
    ww = w[:, None] * w[None, :]  # (A, B)

    # Centre the coordinates so |p|^2 - 2 p.q + |q|^2 cancels as little
    # as possible, but keep the originals for the exact recompute of
    # near-coincident pairs.
    center = 0.5 * (p_coil.min(axis=0) + p_coil.max(axis=0))
    pc = p_coil - center
    pc2 = np.einsum("ij,ij->i", pc, pc)  # (C*B,)
    pc_t2 = -2.0 * pc.T  # (3, C*B)
    md2 = min_distance * min_distance
    coil_scale2 = pc2.max(initial=0.0)

    # ~6 (S*A, C*B)-sized float64 values live at once per source row.
    step = rows_per_chunk(
        6 * 8 * n_a * n_coil * n_a,
        chunk_bytes,
        target_bytes=CACHE_CHUNK_BYTES,
    )
    for lo in range(0, n_src, step):
        hi = lo + step
        # Quadrature points along the chunk's source segments: (S*A, 3).
        p_src = (
            s0[lo:hi, None, :] + u[None, :, None] * d_src[lo:hi, None, :]
        ).reshape(-1, 3)
        ps = p_src - center
        ps2 = np.einsum("ij,ij->i", ps, ps)
        d2 = ps @ pc_t2  # (S*A, C*B)
        d2 += ps2[:, None]
        d2 += pc2[None, :]
        # The expansion loses ~eps * scale^2 absolute accuracy; pairs
        # whose separation is comparable to that noise floor (or to the
        # clamp radius) are redone with the direct difference.
        scale2 = max(ps2.max(initial=0.0), coil_scale2)
        thresh = max(md2, 1e-3 * scale2)
        risky = d2 < thresh
        if risky.any():
            ri, ci = np.nonzero(risky)
            diff = p_src[ri] - p_coil[ci]
            d2[ri, ci] = np.einsum("ij,ij->i", diff, diff)
        np.maximum(d2, md2, out=d2)
        np.sqrt(d2, out=d2)
        np.divide(1.0, d2, out=d2)
        kernel = np.einsum(
            "ab,sacb->sc", ww, d2.reshape(-1, n_a, n_coil, n_a)
        )
        result[lo:hi] = (dots[lo:hi] * kernel).sum(axis=1)
    return MU_0 / (4.0 * math.pi) * result


def mutual_inductance_to_loops(
    seg_start: np.ndarray,
    seg_end: np.ndarray,
    loops: "list[np.ndarray] | tuple[np.ndarray, ...]",
    n_quad: int = 4,
    min_distance: float = 0.5 * UM,
    chunk_bytes: int | None = None,
) -> np.ndarray:
    """Mutual inductance of each source segment to *each* coil polyline.

    The batched companion to :func:`mutual_inductance_to_loop` for
    sensor arrays: all coils' segments are concatenated into one
    quadrature-point cloud, so every source chunk needs a single
    ``(S*A, 3) @ (3, C_tot*B)`` product regardless of how many coils
    tile the die, and the per-coil sums fall out of one
    ``reduceat`` over the coil boundaries.  Calling the single-loop
    kernel per coil remains the 1e-12 reference (the only difference
    is the centring constant, whose rounding the risky-pair exact
    recompute keeps below that tolerance).

    Parameters
    ----------
    seg_start, seg_end:
        Source segments, shape ``(N, 3)`` each [m].
    loops:
        Sequence of coil polylines, each shape ``(M_k, 3)``.
    n_quad, min_distance, chunk_bytes:
        As for :func:`mutual_inductance_to_loop`.

    Returns
    -------
    numpy.ndarray
        Coupling tensor, shape ``(len(loops), N)`` [H].
    """
    s0 = np.asarray(seg_start, dtype=np.float64)
    s1 = np.asarray(seg_end, dtype=np.float64)
    if s0.shape != s1.shape or s0.ndim != 2 or s0.shape[1] != 3:
        raise EmModelError(
            f"segment arrays must both be (N, 3); got {s0.shape} and {s1.shape}"
        )
    if len(loops) == 0:
        raise EmModelError("mutual_inductance_to_loops needs at least one loop")
    if min_distance <= 0:
        raise EmModelError(f"min_distance must be positive, got {min_distance}")

    u, w = _gauss01(n_quad)
    n_src = s0.shape[0]
    n_loops = len(loops)
    result = np.zeros((n_loops, n_src))
    if n_src == 0:
        return result

    # Concatenate every coil's segments, remembering which coil each
    # belongs to so reduceat can split the per-segment sums back out.
    c0_parts: list[np.ndarray] = []
    d_parts: list[np.ndarray] = []
    counts = np.zeros(n_loops, dtype=np.intp)
    for k, loop_points in enumerate(loops):
        loop = np.asarray(loop_points, dtype=np.float64)
        if loop.ndim != 2 or loop.shape[1] != 3 or loop.shape[0] < 2:
            raise EmModelError(
                f"loop polyline {k} must be (M>=2, 3), got {loop.shape}"
            )
        c0 = loop[:-1]
        d_coil = loop[1:] - c0
        keep = np.linalg.norm(d_coil, axis=1) > 0
        c0, d_coil = c0[keep], d_coil[keep]
        counts[k] = c0.shape[0]
        c0_parts.append(c0)
        d_parts.append(d_coil)
    n_coil = int(counts.sum())
    if n_coil == 0:
        return result
    # Degenerate (all-zero-length) coils would break the reduceat
    # boundaries, so batch only the live ones and scatter rows back.
    live = np.nonzero(counts > 0)[0]
    c0_all = np.concatenate([c0_parts[k] for k in live], axis=0)
    d_all = np.concatenate([d_parts[k] for k in live], axis=0)
    live_counts = counts[live]
    starts = np.concatenate(([0], np.cumsum(live_counts)[:-1])).astype(np.intp)

    d_src = s1 - s0
    dots = d_src @ d_all.T  # (N, C_tot)
    n_a = u.size
    p_coil = (
        c0_all[:, None, :] + u[None, :, None] * d_all[:, None, :]
    ).reshape(n_coil * n_a, 3)
    ww = w[:, None] * w[None, :]

    center = 0.5 * (p_coil.min(axis=0) + p_coil.max(axis=0))
    pc = p_coil - center
    pc2 = np.einsum("ij,ij->i", pc, pc)
    pc_t2 = -2.0 * pc.T
    md2 = min_distance * min_distance
    coil_scale2 = pc2.max(initial=0.0)

    step = rows_per_chunk(
        6 * 8 * n_a * n_coil * n_a,
        chunk_bytes,
        target_bytes=CACHE_CHUNK_BYTES,
    )
    for lo in range(0, n_src, step):
        hi = lo + step
        p_src = (
            s0[lo:hi, None, :] + u[None, :, None] * d_src[lo:hi, None, :]
        ).reshape(-1, 3)
        ps = p_src - center
        ps2 = np.einsum("ij,ij->i", ps, ps)
        d2 = ps @ pc_t2
        d2 += ps2[:, None]
        d2 += pc2[None, :]
        scale2 = max(ps2.max(initial=0.0), coil_scale2)
        thresh = max(md2, 1e-3 * scale2)
        risky = d2 < thresh
        if risky.any():
            ri, ci = np.nonzero(risky)
            diff = p_src[ri] - p_coil[ci]
            d2[ri, ci] = np.einsum("ij,ij->i", diff, diff)
        np.maximum(d2, md2, out=d2)
        np.sqrt(d2, out=d2)
        np.divide(1.0, d2, out=d2)
        kernel = np.einsum(
            "ab,sacb->sc", ww, d2.reshape(-1, n_a, n_coil, n_a)
        )
        contrib = dots[lo:hi] * kernel  # (S, C_tot)
        per_loop = np.add.reduceat(contrib, starts, axis=1)  # (S, n_live)
        result[np.ix_(live, np.arange(lo, min(hi, n_src)))] = per_loop.T
    return MU_0 / (4.0 * math.pi) * result


def _mutual_inductance_to_loop_loop(
    seg_start: np.ndarray,
    seg_end: np.ndarray,
    loop_points: np.ndarray,
    n_quad: int = 4,
    min_distance: float = 0.5 * UM,
) -> np.ndarray:
    """Reference per-coil-segment-loop implementation.

    Kept as the ground truth for the vectorised kernel's equivalence
    tests and the perf benchmark's baseline; not part of the public API.
    """
    s0 = np.asarray(seg_start, dtype=np.float64)
    s1 = np.asarray(seg_end, dtype=np.float64)
    loop = np.asarray(loop_points, dtype=np.float64)

    u, w = _gauss01(n_quad)
    n_src = s0.shape[0]
    result = np.zeros(n_src)
    if n_src == 0:
        return result

    d_src = s1 - s0  # (N, 3), includes length
    p_src = s0[:, None, :] + u[None, :, None] * d_src[:, None, :]

    c0_all, c1_all = loop[:-1], loop[1:]
    for c0, c1 in zip(c0_all, c1_all):
        d_coil = c1 - c0
        coil_len = float(np.linalg.norm(d_coil))
        if coil_len == 0.0:
            continue
        dots = d_src @ d_coil  # (N,)
        active = np.abs(dots) > 0.0
        if not active.any():
            continue
        p_coil = c0[None, :] + u[:, None] * d_coil[None, :]  # (B, 3)
        diff = p_src[active][:, :, None, :] - p_coil[None, None, :, :]
        dist = np.linalg.norm(diff, axis=-1)  # (n_active, A, B)
        np.maximum(dist, min_distance, out=dist)
        kernel = (w[None, :, None] * w[None, None, :] / dist).sum(axis=(1, 2))
        result[active] += dots[active] * kernel
    return MU_0 / (4.0 * math.pi) * result
