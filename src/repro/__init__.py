"""repro — reproduction of "Runtime Trust Evaluation and Hardware Trojan
Detection Using On-Chip EM Sensors" (He et al., DAC 2020).

The package builds the paper's entire stack in Python: a gate-level AES
test chip with five hardware Trojans, a procedural 180 nm layout with a
spiral on-chip EM sensor on the top metal layer, a Neumann/Biot–Savart
EM solver, silicon/measurement models, and the runtime trust-evaluation
framework (Euclidean-distance and spectral detectors) that the paper
contributes.

Quickstart::

    from repro import build_protected_chip, simulation_scenario
    from repro.chip.calibration import calibrate_scenario
    from repro.experiments import collect_ed_traces
    from repro.framework import RuntimeTrustEvaluator

    chip = build_protected_chip(seed=1)
    scenario = calibrate_scenario(chip, simulation_scenario())
    evaluator = RuntimeTrustEvaluator.train(chip, scenario)
    dirty = collect_ed_traces(chip, scenario, 128, trojan_enables=("trojan4",))
    print(evaluator.evaluate_traces(dirty["sensor"]).format())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-reproduction scorecard.
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.chip import (
    AcquisitionEngine,
    Chip,
    ChipConfig,
    EncryptionWorkload,
    IdleWorkload,
    Oscilloscope,
    Scenario,
    build_protected_chip,
    silicon_scenario,
    simulation_scenario,
)
from repro.framework import (
    AlarmEvent,
    RuntimeMonitor,
    RuntimeTrustEvaluator,
    TrustReport,
    Verdict,
)

__all__ = [
    "__version__",
    "AcquisitionEngine",
    "Chip",
    "ChipConfig",
    "EncryptionWorkload",
    "IdleWorkload",
    "Oscilloscope",
    "Scenario",
    "build_protected_chip",
    "silicon_scenario",
    "simulation_scenario",
    "AlarmEvent",
    "RuntimeMonitor",
    "RuntimeTrustEvaluator",
    "TrustReport",
    "Verdict",
]
