"""Trust-evaluation reports."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.euclidean import DistanceReport
from repro.analysis.spectral import SpectralComparison


class Verdict(enum.Enum):
    """Outcome of one trust evaluation."""

    TRUSTED = "trusted"
    SUSPECT_TIME_DOMAIN = "suspect-time-domain"
    SUSPECT_SPECTRAL = "suspect-spectral"
    SUSPECT_BOTH = "suspect-both"

    @property
    def is_alarm(self) -> bool:
        """True when the framework would raise the Fig. 1 alarm."""
        return self is not Verdict.TRUSTED


@dataclass
class TrustReport:
    """Everything the analysis module concluded about one trace set."""

    verdict: Verdict
    distance: DistanceReport | None = None
    spectral: SpectralComparison | None = None
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"verdict: {self.verdict.value}"]
        if self.distance is not None:
            d = self.distance
            lines.append(
                f"  time domain: separation {d.separation:.3f} "
                f"(noise floor {d.separation_floor:.3f}, "
                f"EDth {d.threshold:.3f}, "
                f"{100 * d.exceed_fraction:.1f}% traces beyond EDth)"
            )
        if self.spectral is not None:
            s = self.spectral
            lines.append(
                f"  spectral: {len(s.boosted_spots)} boosted spot(s), "
                f"{len(s.new_spots)} new spot(s)"
            )
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def combine_verdicts(time_alarm: bool, spectral_alarm: bool) -> Verdict:
    """Fold the two detector outcomes into one verdict."""
    if time_alarm and spectral_alarm:
        return Verdict.SUSPECT_BOTH
    if time_alarm:
        return Verdict.SUSPECT_TIME_DOMAIN
    if spectral_alarm:
        return Verdict.SUSPECT_SPECTRAL
    return Verdict.TRUSTED
