"""The trained trust evaluator.

"We assume the users know how the circuit will operate, thus the
features of the circuit's EM side-channel can be defined through
simulations" — :meth:`RuntimeTrustEvaluator.train` plays that role: it
characterises the golden chip once (time-domain fingerprint + spectrum)
and afterwards judges any suspect trace set against the stored
reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.euclidean import EuclideanDetector
from repro.analysis.spectral import (
    Spectrum,
    amplitude_spectrum,
    compare_spectra,
)
from repro.chip.chip import Chip
from repro.chip.scenario import Scenario, simulation_scenario
from repro.config import active_config
from repro.errors import AnalysisError
from repro.experiments.campaign import (
    get_or_fit_detector,
    get_or_generate_traces,
)
from repro.framework.report import TrustReport, Verdict, combine_verdicts


@dataclass
class EvaluatorConfig:
    """Training/evaluation knobs."""

    receiver: str = "sensor"
    n_reference: int = 512
    spectral_cycles: int = 2048
    spectral_boost_ratio: float = 1.6
    pca_components: int | None = None
    #: Registry name of the window detector; ``None`` resolves the
    #: active configuration's ``detector`` knob (``REPRO_DETECTOR``).
    detector: str | None = None


class RuntimeTrustEvaluator:
    """Golden reference + the two detection paths of Fig. 1."""

    def __init__(
        self,
        detector: EuclideanDetector,
        golden_spectrum: Spectrum,
        fs: float,
        config: EvaluatorConfig,
    ) -> None:
        self.detector = detector
        self.golden_spectrum = golden_spectrum
        self.fs = fs
        self.config = config

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        chip: Chip,
        scenario: Scenario | None = None,
        config: EvaluatorConfig | None = None,
    ) -> "RuntimeTrustEvaluator":
        """Characterise the golden chip.

        *chip* must be Trojan-free or have all Trojans dormant; the
        evaluator assumes what it sees during training is trusted (the
        paper's pre-deployment characterisation step).
        """
        scenario = scenario or simulation_scenario()
        config = config or EvaluatorConfig()
        ed_params = dict(
            n_traces=config.n_reference,
            receivers=(config.receiver,),
            rng_role="framework/train-ed",
        )
        golden = get_or_generate_traces(chip, scenario, "ed", **ed_params)[
            config.receiver
        ]
        detector_name = (
            config.detector
            if config.detector is not None
            else active_config().detector
        )
        detector_kwargs: dict = {}
        if detector_name == "euclidean":
            detector_kwargs["n_components"] = config.pca_components
        elif config.pca_components is not None:
            raise AnalysisError(
                "pca_components only applies to the 'euclidean' "
                f"detector, not {detector_name!r}"
            )
        detector = get_or_fit_detector(
            chip,
            scenario,
            "ed",
            ed_params,
            golden,
            detector_name=detector_name,
            **detector_kwargs,
        )
        record = get_or_generate_traces(
            chip,
            scenario,
            "spectral",
            n_cycles=config.spectral_cycles,
            receivers=(config.receiver,),
            rng_role="framework/train-spec",
        )[config.receiver]
        spectrum = amplitude_spectrum(record, chip.config.fs)
        return cls(
            detector=detector,
            golden_spectrum=spectrum,
            fs=chip.config.fs,
            config=config,
        )

    # ------------------------------------------------------------------
    def evaluate_traces(self, traces: np.ndarray) -> TrustReport:
        """Time-domain evaluation of per-encryption trace windows."""
        if not hasattr(self.detector, "evaluate"):
            raise AnalysisError(
                "one-shot DistanceReport evaluation needs a golden-"
                "based detector; use score()/decide() via the registry"
            )
        report = self.detector.evaluate(traces)
        verdict = combine_verdicts(report.detected, False)
        return TrustReport(verdict=verdict, distance=report)

    def evaluate_spectrum(self, record: np.ndarray) -> TrustReport:
        """Frequency-domain evaluation of a long continuous record."""
        suspect = amplitude_spectrum(record, self.fs)
        if suspect.freqs.shape != self.golden_spectrum.freqs.shape:
            raise AnalysisError(
                "suspect record length differs from the training record; "
                f"expected spectra of {self.golden_spectrum.freqs.shape[0]} "
                f"bins, got {suspect.freqs.shape[0]}"
            )
        comparison = compare_spectra(
            self.golden_spectrum,
            suspect,
            boost_ratio=self.config.spectral_boost_ratio,
        )
        verdict = combine_verdicts(False, comparison.detected)
        return TrustReport(verdict=verdict, spectral=comparison)

    def evaluate(
        self,
        traces: np.ndarray | None = None,
        record: np.ndarray | None = None,
    ) -> TrustReport:
        """Joint evaluation; pass either or both inputs."""
        if traces is None and record is None:
            raise AnalysisError("need trace windows, a long record, or both")
        time_report = None
        spectral = None
        if traces is not None:
            if not hasattr(self.detector, "evaluate"):
                raise AnalysisError(
                    "one-shot DistanceReport evaluation needs a golden-"
                    "based detector; use score()/decide() via the "
                    "registry"
                )
            time_report = self.detector.evaluate(traces)
        if record is not None:
            spectral = self.evaluate_spectrum(record).spectral
        verdict = combine_verdicts(
            bool(time_report.detected) if time_report is not None else False,
            bool(spectral.detected) if spectral is not None else False,
        )
        return TrustReport(verdict=verdict, distance=time_report, spectral=spectral)
