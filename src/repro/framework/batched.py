"""Batched fleet scoring: every chip's sliding window as dense arrays.

The sequential fleet path scores one chip at a time — a Python loop
per chip per window through :meth:`RuntimeMonitor._observe_feature`.
At fleet scale the per-window work is a handful of tiny NumPy calls,
so interpreter overhead dominates and throughput is flat in the chip
count.  :class:`BatchedFleetMonitor` turns one scheduler tick over the
whole fleet into a fixed number of vectorised operations:

* a ``(chips, window, features)`` **ring buffer** replaces the per-chip
  deques — each chip's write position is ``count % window``;
* a ``(chips, features)`` **running-sum matrix** replaces the per-chip
  running sums — eviction and insertion are one fused
  ``(sums - oldest) + rows`` over every chip that received a window;
* per-chip **streak / count / threshold vectors** carry the hysteresis
  and the ``REFRESH_EVERY`` drift-refresh schedule, applied with masks.

Feature extraction for the whole arrival tick happens in one
``detector.features`` call (row-wise normalisation is independent
across traces; when a PCA projection is fitted the engine falls back
to per-chip extraction, because a matmul is not row-blocking
invariant), and every chip's separation comes out of one row-norm over
the mean-feature matrix.

**Bit-identity.**  The engine performs, per chip, exactly the float64
operation sequence of :meth:`RuntimeMonitor._observe_feature`:
elementwise sum updates are order-identical (the ring slot of a
not-yet-full chip holds ``0.0`` and ``x - 0.0`` is bitwise ``x``), the
drift refresh re-sums the ordered window with the same contiguous
``add.reduce``, and separations go through the shared
:func:`~repro.framework.monitor.row_separations` reduction.  Alarms —
indices, separations, thresholds, messages — are therefore bitwise
equal to a sequential run over the same stream, which is what lets the
fleet scheduler switch modes with ``REPRO_FLEET_SCORING`` without
changing a single journal byte.

State lives in the dense arrays while the engine runs;
:meth:`sync_to_sessions` writes it back into the per-chip
:class:`RuntimeMonitor` deques so the existing per-session
``state_dict`` checkpoints (and everything else that reads monitor
state) keep working unchanged.  Construction performs the inverse
load, so a checkpoint written by either mode resumes in either mode.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import AnalysisError
from repro.framework.monitor import AlarmEvent, RuntimeMonitor, row_separations
from repro.obs import active_metrics
from repro.obs.metrics import MetricsRegistry


class BatchedFleetMonitor:
    """Scores many chips' monitor sessions with dense array operations.

    Parameters
    ----------
    sessions:
        The :class:`~repro.fleet.session.MonitorSession` objects to
        score (one per chip).  All sessions must share one evaluator
        (the golden fingerprint is design-wide) and one sliding-window
        length; thresholds and confirmation counts may differ per chip.
        Any state the monitors already hold (mid-stream resume) is
        loaded into the dense arrays.
    metrics:
        Registry for stage timings and scoring counters; defaults to
        the first session's.
    """

    def __init__(self, sessions, metrics: MetricsRegistry | None = None):
        sessions = list(sessions)
        if not sessions:
            raise AnalysisError("batched monitor needs at least one session")
        ids = [s.chip_id for s in sessions]
        if len(set(ids)) != len(ids):
            raise AnalysisError(f"chip ids must be unique, got {ids}")
        detectors = {id(s.evaluator.detector) for s in sessions}
        if len(detectors) != 1:
            raise AnalysisError(
                "batched scoring requires one shared evaluator across "
                "the fleet (the golden fingerprint is design-wide)"
            )
        shared_detector = sessions[0].evaluator.detector
        if not getattr(shared_detector, "supports_batched", True):
            # The fleet scheduler checks this itself and falls back to
            # sequential scoring (counted, not silent); reaching here
            # means a direct construction with an unsupported plugin.
            raise AnalysisError(
                f"detector {type(shared_detector).__name__} does not "
                "support batched scoring; use sequential mode"
            )
        windows = {s.monitor.window for s in sessions}
        if len(windows) != 1:
            raise AnalysisError(
                f"batched scoring requires a uniform sliding window, "
                f"got lengths {sorted(windows)}"
            )
        self.sessions = sessions
        self.detector = sessions[0].evaluator.detector
        self.metrics = metrics if metrics is not None else sessions[0].metrics
        self.window = sessions[0].monitor.window
        self._fingerprint = np.asarray(
            self.detector.fingerprint, dtype=np.float64
        )
        n_chips = len(sessions)
        n_feat = self._fingerprint.shape[0]
        self._index = {chip_id: k for k, chip_id in enumerate(ids)}
        # Slot-major ring layout: one tick's slot (``ring[pos]``) is a
        # contiguous ``(chips, features)`` block, so the steady-state
        # eviction/insertion touches one cache-friendly slab instead of
        # strided rows scattered across the whole buffer.
        self._ring = np.zeros((self.window, n_chips, n_feat))
        self._sums = np.zeros((n_chips, n_feat))
        self._counts = np.zeros(n_chips, dtype=np.int64)
        self._streaks = np.zeros(n_chips, dtype=np.int64)
        self._thresholds = np.array(
            [s.monitor.threshold for s in sessions], dtype=np.float64
        )
        self._confirms = np.array(
            [s.monitor.confirm for s in sessions], dtype=np.int64
        )
        for k, session in enumerate(sessions):
            self._load_monitor(k, session.monitor)
        # Hot-loop instrument cache: registry lookups (f-string + lock)
        # are measurable at fleet scale, the instruments are not.
        self._scoring_hists = {
            s.chip_id: s.metrics.histogram(
                f"chip.{s.chip_id}.scoring.seconds"
            )
            for s in sessions
        }
        self._c_batched = self.metrics.counter("fleet.scoring.batched")
        self._h_features = self.metrics.histogram("stage.features.seconds")
        self._h_separation = self.metrics.histogram(
            "stage.separation.seconds"
        )

    def _load_monitor(self, k: int, monitor: RuntimeMonitor) -> None:
        """Adopt one monitor's (possibly mid-stream) state into row *k*."""
        count = monitor.windows_seen
        self._counts[k] = count
        self._streaks[k] = monitor._streak
        entries = list(monitor._features)
        if not entries:
            return
        if count >= self.window:
            # Oldest entry belongs at the current write position.
            pos = count % self.window
            for j, row in enumerate(entries):
                self._ring[(pos + j) % self.window, k] = row
        else:
            self._ring[: len(entries), k] = entries
        if monitor._feature_sum is not None:
            self._sums[k] = monitor._feature_sum

    # ------------------------------------------------------------------
    def _extract_features(self, pairs) -> np.ndarray:
        """One feature-extraction call for the whole arrival tick."""
        if len(pairs) == 1:
            return self.detector.features(pairs[0][1].traces)
        if self.detector.uses_pca:
            # A PCA matmul is not row-blocking invariant; extract per
            # chip so features stay bitwise equal to sequential runs.
            return np.concatenate(
                [self.detector.features(b.traces) for _, b in pairs], axis=0
            )
        return self.detector.features(
            np.concatenate([b.traces for _, b in pairs], axis=0)
        )

    def _ring_sum(self, k: int, count: int) -> np.ndarray:
        """Exact re-sum of chip *k*'s ordered window (drift control)."""
        if count >= self.window:
            pos = count % self.window
            ordered = np.roll(self._ring[:, k], -pos, axis=0)
        else:
            ordered = self._ring[:count, k]
        return ordered.sum(axis=0)

    def ingest_tick(self, pairs) -> dict[str, list[AlarmEvent]]:
        """Score one scheduler tick's arrivals across every chip at once.

        *pairs* is a sequence of ``(session, WindowBatch)`` tuples —
        at most one batch per chip per tick.  Returns the alarms raised
        this tick, keyed by chip id.  Stream accounting is computed for
        the whole tick in one vectorised pass and landed per session
        (:meth:`~repro.fleet.session.MonitorSession._apply_accounting`,
        then ``_journal_alarms``) in pair order — the exact counter and
        journal stream sequential ingestion produces in the same order.
        """
        index = self._index
        live: list = []
        kept_idx: list[int] = []
        kept_lens: list[int] = []
        seen = set()
        uniform_len = True
        for session, batch in pairs:
            chip_id = session.chip_id
            if batch.chip_id != chip_id:
                raise AnalysisError(
                    f"session {chip_id!r} paired with batch for "
                    f"{batch.chip_id!r}"
                )
            if chip_id in seen or chip_id not in index:
                raise AnalysisError(
                    f"chip {chip_id!r} must appear exactly once "
                    "per tick and belong to this engine"
                )
            seen.add(chip_id)
            n = len(batch.seqs)
            if n == 0:
                continue
            if kept_lens and n != kept_lens[0]:
                uniform_len = False
            live.append((session, batch))
            kept_idx.append(index[chip_id])
            kept_lens.append(n)
        pairs = live
        if not pairs:
            return {}
        idx = np.array(kept_idx, dtype=np.int64)
        events: list[list[AlarmEvent]] = [[] for _ in pairs]
        counts = self._counts[idx]
        length = kept_lens[0]
        uniform = uniform_len and bool((counts == counts[0]).all())
        start = time.perf_counter()
        if uniform:
            steps, t_feat = self._extract_step_major(pairs, length)
            self._score_uniform(steps, idx, length, int(counts[0]), events)
        else:
            feats = self._extract_features(pairs)
            t_feat = time.perf_counter()
            self._h_features.observe(t_feat - start)
            lens = np.array(kept_lens, dtype=np.int64)
            self._score_ragged(feats, idx, lens, events)
        elapsed = time.perf_counter() - start
        self._h_separation.observe(time.perf_counter() - t_feat)
        windows_scored = sum(kept_lens)
        self._c_batched.inc(windows_scored)
        shared = active_metrics()
        if shared is not self.metrics:
            shared.counter("fleet.scoring.batched").inc(windows_scored)
        accounting = self._account_tick(pairs, kept_lens, uniform_len)
        out: dict[str, list[AlarmEvent]] = {}
        for i, ((session, batch), raised) in enumerate(zip(pairs, events)):
            self._scoring_hists[session.chip_id].observe(elapsed)
            n_gaps, n_ooo, last_seq = accounting[i]
            session._apply_accounting(kept_lens[i], n_gaps, n_ooo, last_seq)
            session._journal_alarms(batch, raised)
            out[session.chip_id] = raised
        return out

    def _extract_step_major(self, pairs, length):
        """Features for a uniform tick, laid out step-major.

        Row-wise normalisation is order-independent across rows, so
        extracting the arrival matrix in step-major order (step 0 of
        every chip first) yields the same per-row values while letting
        every scoring step read one contiguous ``(chips, features)``
        slab with no transpose.  A fitted PCA projection keeps the
        per-chip path (a matmul is not row-blocking invariant).
        """
        start = time.perf_counter()
        n = len(pairs)
        if n > 1 and not self.detector.uses_pca:
            stacked = np.stack([b.traces for _, b in pairs], axis=1)
            feats = self.detector.features(
                stacked.reshape(n * length, stacked.shape[2])
            )
            steps = feats.reshape(length, n, feats.shape[1])
        else:
            feats = self._extract_features(pairs)
            steps = np.ascontiguousarray(
                feats.reshape(n, length, feats.shape[1]).transpose(1, 0, 2)
            )
        t_feat = time.perf_counter()
        self._h_features.observe(t_feat - start)
        return steps, t_feat

    def _emit_alarm(self, chip, pair_pos, count, sep, threshold, events):
        monitor = self.sessions[chip].monitor
        event = AlarmEvent(
            window_index=count,
            separation=sep,
            threshold=threshold,
            message=(
                f"EM fingerprint left the golden envelope "
                f"({sep:.3f} > {threshold:.3f}) for "
                f"{monitor.confirm} consecutive windows"
            ),
        )
        monitor.alarms.append(event)
        events[pair_pos].append(event)

    def _score_uniform(self, steps, idx, length, count0, events) -> None:
        """Steady-state fast path: one batch length, one window count.

        *steps* is the tick's features in step-major layout —
        ``(length, chips, features)``, each step one contiguous slab.
        When every chip in the tick delivered the same number of
        windows and sits at the same stream position (the healthy-fleet
        steady state), the ring position, the drift-refresh schedule
        and the warm-up test collapse to scalars; and when the tick
        covers the whole fleet in construction order the gather/scatter
        disappears too — the dense arrays are updated in place.  The
        float64 operation sequence per chip is unchanged, so results
        stay bitwise equal to the ragged path and to sequential runs.
        """
        window = self.window
        refresh_every = RuntimeMonitor.REFRESH_EVERY
        n = idx.shape[0]
        full = n == len(self.sessions) and np.array_equal(
            idx, np.arange(n, dtype=idx.dtype)
        )
        if full:
            sums, streaks = self._sums, self._streaks
            thresholds, confirms = self._thresholds, self._confirms
        else:
            sums = self._sums[idx]
            streaks = self._streaks[idx]
            thresholds = self._thresholds[idx]
            confirms = self._confirms[idx]
        ring = self._ring
        # Per-tick scratch (means workspace + separations), reused by
        # every ready step in the loop below.
        mbuf = np.empty_like(sums)
        sbuf = np.empty(n)
        for j in range(length):
            count = count0 + j + 1
            pos = (count0 + j) % window
            rows = steps[j]
            # Ring slots of not-yet-full chips hold 0.0, and
            # ``x - 0.0`` is bitwise ``x`` — no mask needed for the
            # eviction term.
            oldest = ring[pos] if full else ring[pos, idx]
            np.subtract(sums, oldest, out=sums)
            np.add(sums, rows, out=sums)
            if full:
                ring[pos] = rows
            else:
                ring[pos, idx] = rows
            if count % refresh_every == 0:
                for k in idx:
                    self._sums[k] = self._ring_sum(int(k), count)
                if not full:
                    sums = self._sums[idx]
            if count < window:
                continue
            np.divide(sums, window, out=mbuf)
            seps = row_separations(
                mbuf, self._fingerprint, work=mbuf, out=sbuf
            )
            over = seps > thresholds
            streaks[:] = np.where(over, streaks + 1, 0)
            fired = streaks == confirms
            if fired.any():
                for k in np.flatnonzero(fired):
                    self._emit_alarm(
                        int(idx[k]), int(k), count,
                        float(seps[k]), float(thresholds[k]), events,
                    )
        if full:
            self._counts += length
        else:
            self._sums[idx] = sums
            self._streaks[idx] = streaks
            self._counts[idx] += length

    def _score_ragged(self, feats, idx, lens, events) -> None:
        """General path: per-chip batch lengths / stream positions."""
        offsets = np.zeros(lens.shape[0], dtype=np.int64)
        np.cumsum(lens[:-1], out=offsets[1:])
        refresh_every = RuntimeMonitor.REFRESH_EVERY
        window = self.window
        for j in range(int(lens.max())):
            live = lens > j
            chips = idx[live]
            where = np.flatnonzero(live)
            rows = feats[offsets[live] + j]
            pos = self._counts[chips] % window
            # See _score_uniform: ``x - 0.0`` is bitwise ``x``.
            oldest = self._ring[pos, chips]
            self._sums[chips] = (self._sums[chips] - oldest) + rows
            self._ring[pos, chips] = rows
            self._counts[chips] += 1
            counts = self._counts[chips]
            stale = counts % refresh_every == 0
            if stale.any():
                for k in chips[stale]:
                    self._sums[int(k)] = self._ring_sum(
                        int(k), int(self._counts[k])
                    )
            ready = counts >= window
            if not ready.any():
                continue
            r_chips = chips[ready]
            r_where = where[ready]
            means = self._sums[r_chips] / window
            seps = row_separations(means, self._fingerprint)
            over = seps > self._thresholds[r_chips]
            streaks = np.where(over, self._streaks[r_chips] + 1, 0)
            self._streaks[r_chips] = streaks
            fired = streaks == self._confirms[r_chips]
            if not fired.any():
                continue
            for k in np.flatnonzero(fired):
                chip = int(r_chips[k])
                self._emit_alarm(
                    chip, int(r_where[k]), int(self._counts[chip]),
                    float(seps[k]), float(self._thresholds[chip]), events,
                )

    def _account_tick(
        self, pairs, lens: list[int], uniform: bool
    ) -> list[tuple[int, int, int]]:
        """Vectorised stream accounting for one whole tick.

        Computes, per pair, the same ``(gaps, out_of_order, last_seq)``
        verdicts :meth:`MonitorSession._account` derives per batch —
        each sequence compared against the running maximum of
        everything before it — in one padded matrix pass instead of a
        NumPy round trip per chip.  *uniform* asserts every entry of
        *lens* is equal, which drops the padding masks entirely.
        """
        n = len(pairs)
        lmax = lens[0] if uniform else max(lens)
        arrays = [b.seq_array for _, b in pairs]
        # Sequence numbers are non-negative, so -1 can flag virgin
        # streams (no high-water mark yet): their first seq becomes
        # the base and is itself exempt from the gap/regression tests.
        bases = np.fromiter(
            (
                -1 if s._last_seq is None else s._last_seq
                for s, _ in pairs
            ),
            dtype=np.int64,
            count=n,
        )
        skip_first = bases < 0
        # Column 0 carries each chip's comparison base (its running
        # high-water mark, or the first seq of a virgin stream).
        if uniform and all(a is not None for a in arrays):
            # No padding: every cell of the matrix is overwritten and
            # every position is a real delivery, so the validity masks
            # vanish.  A virgin stream's first seq equals its own base,
            # so its first comparison always reads "<=" and never ">
            # base + 1" — one subtraction undoes the spurious count.
            seqs = np.empty((n, lmax + 1), dtype=np.int64)
            seqs[:, 1:] = np.concatenate(arrays).reshape(n, lmax)
            body = seqs[:, 1:]
            seqs[:, 0] = np.where(skip_first, body[:, 0], bases)
            prev_max = np.maximum.accumulate(seqs[:, :-1], axis=1)
            gaps = np.count_nonzero(body > prev_max + 1, axis=1)
            ooo = np.count_nonzero(body <= prev_max, axis=1) - skip_first
            last = np.maximum(prev_max[:, -1], body[:, -1])
            return list(zip(gaps.tolist(), ooo.tolist(), last.tolist()))
        lens_arr = np.asarray(lens, dtype=np.int64)
        seqs = np.zeros((n, lmax + 1), dtype=np.int64)
        for i, row in enumerate(arrays):
            if row is None:
                row = np.asarray(pairs[i][1].seqs, dtype=np.int64)
            seqs[i, 1 : 1 + row.shape[0]] = row
        skip = skip_first
        seqs[:, 0] = np.where(skip, seqs[:, 1], bases)
        prev_max = np.maximum.accumulate(seqs[:, :-1], axis=1)
        body = seqs[:, 1:]
        valid = np.arange(lmax)[None, :] < lens_arr[:, None]
        eligible = valid.copy()
        eligible[:, 0] &= ~skip
        gaps = np.count_nonzero((body > prev_max + 1) & eligible, axis=1)
        ooo = np.count_nonzero((body <= prev_max) & eligible, axis=1)
        rows = np.arange(n)
        last = np.maximum(
            prev_max[rows, lens_arr - 1], body[rows, lens_arr - 1]
        )
        return list(zip(gaps.tolist(), ooo.tolist(), last.tolist()))

    # ------------------------------------------------------------------
    def sync_to_sessions(self) -> None:
        """Write the dense state back into the per-chip monitors.

        After this the monitors' deques, running sums, counts and
        streaks equal what a sequential run over the same stream would
        hold — so per-session ``state_dict`` checkpoints (and any other
        reader of monitor state) interconvert freely with the batched
        engine.
        """
        for k, session in enumerate(self.sessions):
            monitor = session.monitor
            count = int(self._counts[k])
            monitor._count = count
            monitor._streak = int(self._streaks[k])
            monitor._features.clear()
            if count == 0:
                continue
            if count >= self.window:
                pos = count % self.window
                ordered = np.roll(self._ring[:, k], -pos, axis=0)
            else:
                ordered = np.ascontiguousarray(self._ring[:count, k])
            # ``ordered`` is a fresh array owned by nothing else, so
            # the deque can hold row views without copying each row.
            monitor._features.extend(ordered)
            monitor._feature_sum = self._sums[k].copy()

    def state_dict(self) -> dict:
        """Per-chip session states (after a sync), JSON-encodable.

        The batched engine does not define its own checkpoint format:
        it syncs into the sessions and returns their ``state_dict``
        output keyed by chip id, so checkpoints are interchangeable
        between scoring modes.
        """
        self.sync_to_sessions()
        return {s.chip_id: s.state_dict() for s in self.sessions}
