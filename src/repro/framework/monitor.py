"""Streaming runtime monitor.

"The monitor keeps reading the EM sensor output" — this class is the
window-by-window alarm logic that turns the one-shot evaluator into a
*runtime* framework.  Trace windows arrive one at a time; the monitor
keeps a sliding record of their distances to the golden fingerprint
and raises an :class:`AlarmEvent` when the recent separation leaves the
golden envelope.  Hysteresis (consecutive-window confirmation) keeps a
single noisy window from tripping the alarm.

Each observation is O(1) in the sliding-window length: a running
feature sum is maintained alongside the deque (evicted features are
subtracted, new ones added), so the windowed mean never re-stacks the
whole window.  The sum is recomputed exactly from the deque every
:data:`RuntimeMonitor.REFRESH_EVERY` observations to keep float64
drift bounded on unbounded streams; the refresh schedule is a pure
function of the observation count, so checkpoint/resume (see
:meth:`RuntimeMonitor.state_dict`) replays bit-identically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.framework.evaluator import RuntimeTrustEvaluator


@dataclass(frozen=True)
class AlarmEvent:
    """One raised alarm."""

    window_index: int
    separation: float
    threshold: float
    message: str


def row_separations(
    means: np.ndarray,
    fingerprint: np.ndarray,
    work: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Euclidean distance of mean feature vector(s) to the fingerprint.

    Accepts a single ``(features,)`` vector or a ``(rows, features)``
    matrix and reduces over the last axis.  The reduction is written as
    an explicit last-axis ufunc reduce — *not* the 1-D BLAS dot that
    ``np.linalg.norm`` takes on vectors — because the ufunc form is
    row-independent: the distance of one chip's mean is bitwise the
    same whether it is computed alone or as one row of a whole fleet's
    matrix.  Both the sequential :class:`RuntimeMonitor` and the
    batched :class:`~repro.framework.batched.BatchedFleetMonitor` go
    through this helper, which is what makes their alarm streams
    bit-identical.

    *work* (shaped like *means*) and *out* (one slot per row) are
    optional scratch buffers for hot loops that call this every window;
    the float64 operation sequence is identical either way.
    """
    if work is None:
        sq = means - fingerprint
        np.multiply(sq, sq, out=sq)
    else:
        np.subtract(means, fingerprint, out=work)
        np.multiply(work, work, out=work)
        sq = work
    if out is None:
        return np.sqrt(np.add.reduce(sq, axis=-1))
    return np.sqrt(np.add.reduce(sq, axis=-1), out=out)


class RuntimeMonitor:
    """Sliding-window alarm logic on top of a trained evaluator."""

    #: Observations between exact recomputations of the running
    #: feature sum (drift control; any value reproduces the same
    #: alarms on the same stream to float64 round-off).
    REFRESH_EVERY = 4096

    def __init__(
        self,
        evaluator: RuntimeTrustEvaluator,
        window: int = 64,
        confirm: int = 3,
        threshold: float | None = None,
    ) -> None:
        """
        Parameters
        ----------
        evaluator:
            Trained :class:`RuntimeTrustEvaluator`.
        window:
            Number of recent trace windows in the sliding estimate.
        confirm:
            Consecutive out-of-envelope estimates required to alarm.
        threshold:
            Explicit separation threshold; ``None`` derives the
            analytic three-sigma H0 envelope below.  The fleet layer
            passes the detector's bootstrap floor rescaled to *window*
            (:func:`repro.fleet.session.floor_scaled_threshold`).
        """
        if window < 2:
            raise AnalysisError(f"window must be >= 2, got {window}")
        if confirm < 1:
            raise AnalysisError(f"confirm must be >= 1, got {confirm}")
        self.evaluator = evaluator
        self.window = window
        self.confirm = confirm
        self._features: deque[np.ndarray] = deque(maxlen=window)
        self._feature_sum: np.ndarray | None = None
        self._streak = 0
        self._count = 0
        self.alarms: list[AlarmEvent] = []
        # Under H0 a W-window mean sits ~d_rms/sqrt(W) from the
        # fingerprint (d_rms = golden per-trace distance RMS); the
        # fingerprint itself carries ~d_rms/sqrt(n_golden) of sampling
        # error.  Three sigmas of the combined fluctuation is the alarm
        # threshold.
        detector = evaluator.detector
        golden_distances = getattr(detector, "golden_distances", None)
        if golden_distances is None and not hasattr(
            detector, "streaming_threshold"
        ):
            raise AnalysisError("evaluator's detector is not fitted")
        if threshold is None:
            if golden_distances is not None:
                d_rms = float(np.sqrt(np.mean(golden_distances**2)))
                n_golden = golden_distances.shape[0]
                threshold = float(
                    3.0 * d_rms * np.sqrt(1.0 / window + 1.0 / n_golden)
                )
            else:
                # Reference-free detectors carry their own population-
                # calibrated envelope for the W-window sliding mean.
                threshold = float(detector.streaming_threshold(window))
        elif threshold <= 0:
            raise AnalysisError(f"threshold must be > 0, got {threshold}")
        self.threshold = float(threshold)

    @property
    def windows_seen(self) -> int:
        """Total trace windows processed."""
        return self._count

    def current_separation(self) -> float:
        """Separation of the sliding window's mean feature vector."""
        if not self._features or self._feature_sum is None:
            raise AnalysisError("no windows observed yet")
        mean_feat = self._feature_sum / len(self._features)
        fingerprint = self.evaluator.detector.fingerprint
        return float(row_separations(mean_feat, fingerprint))

    def observe(self, trace: np.ndarray) -> AlarmEvent | None:
        """Feed one trace window; returns an alarm if one fires now."""
        detector = self.evaluator.detector
        feat = detector.features(np.atleast_2d(trace))[0]
        return self._observe_feature(feat)

    def observe_features(self, feats: np.ndarray) -> list[AlarmEvent]:
        """Feed pre-extracted feature rows; returns every alarm raised.

        The feature-extraction stage (:meth:`EuclideanDetector.
        features`) is the caller's, which lets batch replay pay it once
        per batch and lets instrumented callers time the two stages
        separately (see :mod:`repro.fleet`).

        When the caller already holds float64 rows (the fleet hot path
        does — :meth:`EuclideanDetector.features` returns them) the
        input is used as-is: the deque keeps row views into the
        caller's array, no conversion copy is made.
        """
        if not (
            isinstance(feats, np.ndarray) and feats.dtype == np.float64
        ):
            feats = np.asarray(feats, dtype=np.float64)
        if feats.ndim != 2:
            feats = np.atleast_2d(feats)
        events = []
        for feat in feats:
            event = self._observe_feature(feat)
            if event is not None:
                events.append(event)
        return events

    def observe_stream(self, traces: np.ndarray) -> list[AlarmEvent]:
        """Feed many windows; returns every alarm raised.

        Features are extracted once on the full batch, so streaming
        replay does not pay the per-trace extraction overhead.
        """
        feats = self.evaluator.detector.features(np.atleast_2d(traces))
        return self.observe_features(feats)

    def _observe_feature(self, feat: np.ndarray) -> AlarmEvent | None:
        if self._feature_sum is None:
            self._feature_sum = np.zeros_like(feat, dtype=np.float64)
        if len(self._features) == self.window:
            # The deque is about to evict its oldest entry.
            self._feature_sum = self._feature_sum - self._features[0]
        self._features.append(feat)
        self._feature_sum = self._feature_sum + feat
        self._count += 1
        if self._count % self.REFRESH_EVERY == 0:
            self._feature_sum = np.stack(self._features).sum(axis=0)
        if len(self._features) < self.window:
            return None
        sep = self.current_separation()
        threshold = self.threshold
        if sep > threshold:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak == self.confirm:
            event = AlarmEvent(
                window_index=self._count,
                separation=sep,
                threshold=threshold,
                message=(
                    f"EM fingerprint left the golden envelope "
                    f"({sep:.3f} > {threshold:.3f}) for {self.confirm} "
                    "consecutive windows"
                ),
            )
            self.alarms.append(event)
            return event
        return None

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full mutable state as JSON-encodable primitives.

        Restoring with :meth:`from_state` (against the same evaluator)
        continues the stream bit-identically: the feature deque, the
        running sum, the streak, the observation count and the stored
        threshold all round-trip exactly (Python's JSON float encoding
        is shortest-round-trip, so every float64 survives).
        """
        return {
            "window": self.window,
            "confirm": self.confirm,
            "threshold": self.threshold,
            "count": self._count,
            "streak": self._streak,
            "features": [f.tolist() for f in self._features],
            "feature_sum": (
                self._feature_sum.tolist()
                if self._feature_sum is not None
                else None
            ),
            "alarms": [asdict(a) for a in self.alarms],
        }

    @classmethod
    def from_state(
        cls, state: dict, evaluator: RuntimeTrustEvaluator
    ) -> "RuntimeMonitor":
        """Rebuild a monitor mid-stream from :meth:`state_dict` output.

        *evaluator* must be the evaluator the state was captured
        against (same fitted detector); the stored threshold is
        restored verbatim rather than recomputed, so resumed alarms
        carry bit-identical thresholds.
        """
        monitor = cls(
            evaluator, window=int(state["window"]), confirm=int(state["confirm"])
        )
        monitor.threshold = float(state["threshold"])
        monitor._count = int(state["count"])
        monitor._streak = int(state["streak"])
        for feat in state["features"]:
            monitor._features.append(np.asarray(feat, dtype=np.float64))
        if state["feature_sum"] is not None:
            monitor._feature_sum = np.asarray(
                state["feature_sum"], dtype=np.float64
            )
        monitor.alarms = [AlarmEvent(**a) for a in state["alarms"]]
        return monitor
