"""Streaming runtime monitor.

"The monitor keeps reading the EM sensor output" — this class is the
window-by-window alarm logic that turns the one-shot evaluator into a
*runtime* framework.  Trace windows arrive one at a time; the monitor
keeps a sliding record of their distances to the golden fingerprint
and raises an :class:`AlarmEvent` when the recent separation leaves the
golden envelope.  Hysteresis (consecutive-window confirmation) keeps a
single noisy window from tripping the alarm.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.framework.evaluator import RuntimeTrustEvaluator


@dataclass(frozen=True)
class AlarmEvent:
    """One raised alarm."""

    window_index: int
    separation: float
    threshold: float
    message: str


class RuntimeMonitor:
    """Sliding-window alarm logic on top of a trained evaluator."""

    def __init__(
        self,
        evaluator: RuntimeTrustEvaluator,
        window: int = 64,
        confirm: int = 3,
    ) -> None:
        """
        Parameters
        ----------
        evaluator:
            Trained :class:`RuntimeTrustEvaluator`.
        window:
            Number of recent trace windows in the sliding estimate.
        confirm:
            Consecutive out-of-envelope estimates required to alarm.
        """
        if window < 2:
            raise AnalysisError(f"window must be >= 2, got {window}")
        if confirm < 1:
            raise AnalysisError(f"confirm must be >= 1, got {confirm}")
        self.evaluator = evaluator
        self.window = window
        self.confirm = confirm
        self._features: deque[np.ndarray] = deque(maxlen=window)
        self._streak = 0
        self._count = 0
        self.alarms: list[AlarmEvent] = []
        # Under H0 a W-window mean sits ~d_rms/sqrt(W) from the
        # fingerprint (d_rms = golden per-trace distance RMS); the
        # fingerprint itself carries ~d_rms/sqrt(n_golden) of sampling
        # error.  Three sigmas of the combined fluctuation is the alarm
        # threshold.
        detector = evaluator.detector
        if detector.golden_distances is None:
            raise AnalysisError("evaluator's detector is not fitted")
        d_rms = float(np.sqrt(np.mean(detector.golden_distances**2)))
        n_golden = detector.golden_distances.shape[0]
        self.threshold = 3.0 * d_rms * np.sqrt(1.0 / window + 1.0 / n_golden)

    @property
    def windows_seen(self) -> int:
        """Total trace windows processed."""
        return self._count

    def current_separation(self) -> float:
        """Separation of the sliding window's mean feature vector."""
        if not self._features:
            raise AnalysisError("no windows observed yet")
        detector = self.evaluator.detector
        assert detector._fingerprint is not None
        mean_feat = np.mean(np.stack(self._features), axis=0)
        return float(np.linalg.norm(mean_feat - detector._fingerprint))

    def observe(self, trace: np.ndarray) -> AlarmEvent | None:
        """Feed one trace window; returns an alarm if one fires now."""
        detector = self.evaluator.detector
        feat = detector.features(np.atleast_2d(trace))[0]
        self._features.append(feat)
        self._count += 1
        if len(self._features) < self.window:
            return None
        sep = self.current_separation()
        threshold = self.threshold
        if sep > threshold:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak == self.confirm:
            event = AlarmEvent(
                window_index=self._count,
                separation=sep,
                threshold=threshold,
                message=(
                    f"EM fingerprint left the golden envelope "
                    f"({sep:.3f} > {threshold:.3f}) for {self.confirm} "
                    "consecutive windows"
                ),
            )
            self.alarms.append(event)
            return event
        return None

    def observe_stream(self, traces: np.ndarray) -> list[AlarmEvent]:
        """Feed many windows; returns every alarm raised."""
        events = []
        for row in np.atleast_2d(traces):
            event = self.observe(row)
            if event is not None:
                events.append(event)
        return events
