"""The runtime trust-evaluation framework (paper Fig. 1).

This is the paper's headline contribution, assembled from the
substrates: the on-chip EM sensor streams measurements to a trusted
data-analysis module which holds a golden fingerprint and raises an
alarm when either the time-domain Euclidean detector (Eq. (1)) or the
frequency-domain spot inspector sees the circuit leave its envelope.

* :class:`~repro.framework.evaluator.RuntimeTrustEvaluator` — train on
  a golden chip, evaluate suspect trace sets, produce
  :class:`~repro.framework.report.TrustReport`\\ s;
* :class:`~repro.framework.monitor.RuntimeMonitor` — the streaming
  (window-by-window) alarm logic that makes it *runtime* rather than
  one-shot;
* :class:`~repro.framework.batched.BatchedFleetMonitor` — the same
  alarm logic over a whole fleet at once, held as dense arrays and
  bit-identical to the per-chip monitors.
"""

from repro.framework.report import TrustReport, Verdict
from repro.framework.evaluator import RuntimeTrustEvaluator
from repro.framework.monitor import AlarmEvent, RuntimeMonitor, row_separations
from repro.framework.batched import BatchedFleetMonitor
from repro.framework.classifier import Attribution, TrojanClassifier

__all__ = [
    "TrustReport",
    "Verdict",
    "RuntimeTrustEvaluator",
    "AlarmEvent",
    "RuntimeMonitor",
    "BatchedFleetMonitor",
    "row_separations",
    "Attribution",
    "TrojanClassifier",
]
