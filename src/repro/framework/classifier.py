"""Trojan identification: which Trojan is active?

The paper's framework raises an alarm; a deployed system also wants to
know *what* tripped it.  :class:`TrojanClassifier` extends the
fingerprint idea to a nearest-template classifier: each known Trojan's
EM signature (mean feature offset from golden) becomes a template, and
a suspect trace set is attributed to the template its own offset most
resembles (cosine similarity in the golden-normalised feature space).

Templates are built from the defender's *own* characterisation runs —
exactly the "features of the circuit's EM side-channel can be defined
through simulations" workflow the paper assumes, extended per Trojan
class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


@dataclass
class Attribution:
    """Outcome of one classification."""

    label: str
    similarity: float
    scores: dict[str, float]
    separation: float

    def format(self) -> str:
        ranked = sorted(self.scores.items(), key=lambda kv: -kv[1])
        body = ", ".join(f"{k}: {v:.2f}" for k, v in ranked)
        return (
            f"attributed to {self.label!r} "
            f"(cos = {self.similarity:.2f}; all: {body})"
        )


class TrojanClassifier:
    """Nearest-template attribution on top of a fitted detector.

    Works with any fitted registry detector that exposes a reference
    ``fingerprint`` in its ``features()`` space — the golden-based
    plugins (mean golden feature vector) and the reference-free ones
    (population-median spectrum) alike; templates and suspects are
    always compared as offsets from that detector's own reference.
    """

    def __init__(self, detector) -> None:
        try:
            detector.fingerprint
        except AnalysisError:
            raise AnalysisError(
                "detector must be fitted before classification"
            ) from None
        except AttributeError:
            raise AnalysisError(
                f"{type(detector).__name__} exposes no fingerprint; "
                "classification needs a reference feature vector"
            ) from None
        self.detector = detector
        self._templates: dict[str, np.ndarray] = {}

    def add_template(self, label: str, traces: np.ndarray) -> None:
        """Register a Trojan class from characterisation traces."""
        if label in self._templates:
            raise AnalysisError(f"template {label!r} already registered")
        offset = self._offset(traces)
        norm = np.linalg.norm(offset)
        if norm == 0:
            raise AnalysisError(
                f"template {label!r} is indistinguishable from golden"
            )
        self._templates[label] = offset / norm

    def _offset(self, traces: np.ndarray) -> np.ndarray:
        feats = self.detector.features(traces)
        return feats.mean(axis=0) - self.detector.fingerprint

    @property
    def labels(self) -> list[str]:
        return sorted(self._templates)

    def classify(self, traces: np.ndarray) -> Attribution:
        """Attribute a suspect trace set to the closest template.

        Raises
        ------
        AnalysisError
            If no templates have been registered.
        """
        if not self._templates:
            raise AnalysisError("no templates registered")
        offset = self._offset(traces)
        norm = np.linalg.norm(offset)
        separation = float(norm)
        if norm == 0:
            direction = offset
        else:
            direction = offset / norm
        scores = {
            label: float(np.dot(direction, template))
            for label, template in self._templates.items()
        }
        best = max(scores, key=lambda k: scores[k])
        return Attribution(
            label=best,
            similarity=scores[best],
            scores=scores,
            separation=separation,
        )
