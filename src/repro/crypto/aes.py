"""Bit-accurate AES-128 reference implementation (FIPS-197).

This module is the *functional* golden model: the structural netlist in
:mod:`repro.crypto.aes_circuit` is verified cycle-by-cycle against the
round states produced here.  Only the 128-bit key size is implemented
because that is what the paper's test chip uses.

The state is kept as a flat 16-byte ``bytes`` object in FIPS-197 order
(byte ``i`` holds row ``i % 4``, column ``i // 4``).
"""

from __future__ import annotations

__all__ = [
    "SBOX",
    "INV_SBOX",
    "RCON",
    "expand_key",
    "encrypt_block",
    "decrypt_block",
    "round_states",
    "AES128",
]


def _build_sbox() -> tuple[list[int], list[int]]:
    """Construct the AES S-box from first principles.

    Computing the table (multiplicative inverse in GF(2^8) followed by
    the affine transform) instead of hard-coding 256 literals gives the
    test suite an independent check: the table is wrong iff the field
    arithmetic is wrong.
    """
    # Multiplicative inverse via exponentiation tables on generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by generator 0x03 = x ^ xtime(x)
        x ^= ((x << 1) ^ 0x1B) & 0xFF if x & 0x80 else (x << 1)
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i
        result = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            result |= b << bit
        sbox[value] = result
    inv_sbox = [0] * 256
    for i, v in enumerate(sbox):
        inv_sbox[v] = i
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

#: Round constants for AES-128 key expansion (Rcon[1..10]).
RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def xtime(a: int) -> int:
    """Multiply by x (i.e. 0x02) in GF(2^8) with the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Full GF(2^8) multiplication (Russian-peasant)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = xtime(a)
        b >>= 1
    return result


def expand_key(key: bytes) -> list[bytes]:
    """Return the 11 round keys of AES-128 key expansion.

    Raises
    ------
    ValueError
        If *key* is not exactly 16 bytes.
    """
    if len(key) != 16:
        raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [SBOX[b] for b in temp]  # SubWord
            temp[0] ^= RCON[i // 4 - 1]
        words.append([t ^ w for t, w in zip(temp, words[i - 4])])
    return [
        bytes(b for w in words[4 * r : 4 * r + 4] for b in w) for r in range(11)
    ]


def _sub_bytes(state: list[int]) -> list[int]:
    return [SBOX[b] for b in state]


def _inv_sub_bytes(state: list[int]) -> list[int]:
    return [INV_SBOX[b] for b in state]


# ShiftRows byte permutation, output index -> input index.  Output byte
# at (row, col) comes from input byte at (row, (col + row) mod 4); the
# flat FIPS index of (row, col) is row + 4*col.
SHIFT_ROWS_PERM = [
    (flat % 4) + 4 * (((flat // 4) + (flat % 4)) % 4) for flat in range(16)
]

INV_SHIFT_ROWS_PERM = [0] * 16
for _out, _in in enumerate(SHIFT_ROWS_PERM):
    INV_SHIFT_ROWS_PERM[_in] = _out


def _shift_rows(state: list[int]) -> list[int]:
    return [state[SHIFT_ROWS_PERM[i]] for i in range(16)]


def _inv_shift_rows(state: list[int]) -> list[int]:
    return [state[INV_SHIFT_ROWS_PERM[i]] for i in range(16)]


def _mix_single_column(col: list[int]) -> list[int]:
    a0, a1, a2, a3 = col
    return [
        xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3,
        a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3,
        a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3),
        (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3),
    ]


def _mix_columns(state: list[int]) -> list[int]:
    out: list[int] = []
    for c in range(4):
        out.extend(_mix_single_column(state[4 * c : 4 * c + 4]))
    return out


def _inv_mix_single_column(col: list[int]) -> list[int]:
    a0, a1, a2, a3 = col
    return [
        gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9),
        gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13),
        gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11),
        gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14),
    ]


def _inv_mix_columns(state: list[int]) -> list[int]:
    out: list[int] = []
    for c in range(4):
        out.extend(_inv_mix_single_column(state[4 * c : 4 * c + 4]))
    return out


def _add_round_key(state: list[int], round_key: bytes) -> list[int]:
    return [s ^ k for s, k in zip(state, round_key)]


def round_states(plaintext: bytes, key: bytes) -> list[bytes]:
    """All intermediate states: after initial ARK, then after each round.

    Returns 11 states; ``round_states(...)[-1]`` is the ciphertext.
    This is the oracle the netlist verification steps against.
    """
    if len(plaintext) != 16:
        raise ValueError(f"plaintext must be 16 bytes, got {len(plaintext)}")
    round_keys = expand_key(key)
    state = _add_round_key(list(plaintext), round_keys[0])
    states = [bytes(state)]
    for rnd in range(1, 10):
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _mix_columns(state)
        state = _add_round_key(state, round_keys[rnd])
        states.append(bytes(state))
    state = _sub_bytes(state)
    state = _shift_rows(state)
    state = _add_round_key(state, round_keys[10])
    states.append(bytes(state))
    return states


def encrypt_block(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128."""
    return round_states(plaintext, key)[-1]


def decrypt_block(ciphertext: bytes, key: bytes) -> bytes:
    """Decrypt one 16-byte block with AES-128."""
    if len(ciphertext) != 16:
        raise ValueError(f"ciphertext must be 16 bytes, got {len(ciphertext)}")
    round_keys = expand_key(key)
    state = _add_round_key(list(ciphertext), round_keys[10])
    for rnd in range(9, 0, -1):
        state = _inv_shift_rows(state)
        state = _inv_sub_bytes(state)
        state = _add_round_key(state, round_keys[rnd])
        state = _inv_mix_columns(state)
    state = _inv_shift_rows(state)
    state = _inv_sub_bytes(state)
    state = _add_round_key(state, round_keys[0])
    return bytes(state)


class AES128:
    """Convenience object caching the key schedule for repeated blocks."""

    def __init__(self, key: bytes) -> None:
        self.key = bytes(key)
        self.round_keys = expand_key(self.key)

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt one block."""
        return encrypt_block(plaintext, self.key)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt one block."""
        return decrypt_block(ciphertext, self.key)
