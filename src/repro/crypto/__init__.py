"""AES-128: bit-accurate reference model and structural circuit generator.

:mod:`repro.crypto.aes` is a pure-Python FIPS-197 implementation used as
the golden functional reference; :mod:`repro.crypto.aes_circuit`
generates the gate-level AES netlist (iterative round architecture,
decoded-PLA S-boxes) that the logic simulator executes and whose
switching activity feeds the EM models — the counterpart of the paper's
33 k-gate 180 nm AES test chip.
"""

from repro.crypto.aes import (
    SBOX,
    INV_SBOX,
    RCON,
    AES128,
    expand_key,
    encrypt_block,
    decrypt_block,
)
from repro.crypto.encoding import (
    bits_to_bytes,
    bytes_to_bits,
    bus_inputs,
    random_blocks,
)
from repro.crypto.aes_circuit import AesCircuit, build_aes_circuit

__all__ = [
    "SBOX",
    "INV_SBOX",
    "RCON",
    "AES128",
    "expand_key",
    "encrypt_block",
    "decrypt_block",
    "bits_to_bytes",
    "bytes_to_bits",
    "bus_inputs",
    "random_blocks",
    "AesCircuit",
    "build_aes_circuit",
]
