"""Structural gate-level AES-128 circuit generator.

Generates the iterative-round AES core of the paper's test chip as a
:class:`~repro.logic.netlist.Netlist`:

* 128-bit state and round-key registers (clock-enabled flops),
* 16 SubBytes S-boxes plus 4 key-schedule S-boxes, each a decoded-PLA
  ROM (decoder + OR planes) — the dominant share of the ~30 k gates,
* ShiftRows as pure wiring, MixColumns as an xtime/XOR network,
* on-the-fly key schedule with an Rcon ROM addressed by the round
  counter,
* a tiny controller (busy/done flops, 4-bit round counter).

Timing: assert ``start`` with plaintext and key for one cycle; the
initial AddRoundKey loads at the next clock edge and each following
edge completes one round.  ``done`` pulses high on the cycle the
ciphertext lands in the state register — :data:`AES_LATENCY` edges
after the ``start`` cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto import aes as aes_ref
from repro.crypto.encoding import bus_inputs
from repro.logic.builder import Bus, NetlistBuilder
from repro.logic.netlist import Netlist

#: Clock edges from the ``start`` cycle until ``done`` / ciphertext valid.
AES_LATENCY = 11

#: Instance-group label stamped on every AES cell (Table I accounting).
AES_GROUP = "aes"


def _byte(bus: Bus, i: int) -> Bus:
    """Byte *i* of a byte-ordered bus (8 nets, MSB first)."""
    return bus[8 * i : 8 * i + 8]


def _xtime_bus(b: NetlistBuilder, a: Bus) -> Bus:
    """GF(2^8) multiplication by 0x02 on an 8-bit bus (MSB first).

    Left shift, then conditionally XOR 0x1B — realised as three XOR
    gates on the bit positions where 0x1B is set (the shifted-out MSB
    lands directly on the LSB).
    """
    msb = a[0]
    return [
        a[1],
        a[2],
        a[3],
        b.xor2(a[4], msb),
        b.xor2(a[5], msb),
        a[6],
        b.xor2(a[7], msb),
        msb,
    ]


def _xor_bytes(b: NetlistBuilder, *buses: Bus) -> Bus:
    """Bitwise XOR of several equal-width buses."""
    acc = list(buses[0])
    for other in buses[1:]:
        acc = b.xor_bus(acc, other)
    return acc


def _sbox_bus(b: NetlistBuilder, byte_bus: Bus) -> Bus:
    """One SubBytes S-box as a decoded-PLA ROM."""
    return b.rom(byte_bus, aes_ref.SBOX, 8)


def _shift_rows_bus(state: Bus) -> Bus:
    """ShiftRows as a pure byte-wise rewiring of the 128-bit bus."""
    out: Bus = []
    for i in range(16):
        out.extend(_byte(state, aes_ref.SHIFT_ROWS_PERM[i]))
    return out


def _mix_columns_bus(b: NetlistBuilder, state: Bus) -> Bus:
    """MixColumns over all four columns as an xtime/XOR network."""
    out: Bus = []
    for col in range(4):
        a = [_byte(state, 4 * col + r) for r in range(4)]
        xt = [_xtime_bus(b, byte) for byte in a]
        t3 = [b.xor_bus(xt[r], a[r]) for r in range(4)]  # 0x03 * a_r
        out.extend(_xor_bytes(b, xt[0], t3[1], a[2], a[3]))
        out.extend(_xor_bytes(b, a[0], xt[1], t3[2], a[3]))
        out.extend(_xor_bytes(b, a[0], a[1], xt[2], t3[3]))
        out.extend(_xor_bytes(b, t3[0], a[1], a[2], xt[3]))
    return out


def _key_schedule_bus(b: NetlistBuilder, key: Bus, rcon: Bus) -> Bus:
    """One round of on-the-fly AES-128 key expansion.

    *key* holds round key ``K_{r-1}``; *rcon* is the 8-bit round
    constant for round ``r``; returns ``K_r``.
    """
    w = [key[32 * i : 32 * i + 32] for i in range(4)]
    rot = _byte(w[3], 1) + _byte(w[3], 2) + _byte(w[3], 3) + _byte(w[3], 0)
    sub = []
    for i in range(4):
        sub.extend(_sbox_bus(b, rot[8 * i : 8 * i + 8]))
    temp = b.xor_bus(sub[:8], rcon) + sub[8:]
    w0 = b.xor_bus(w[0], temp)
    w1 = b.xor_bus(w[1], w0)
    w2 = b.xor_bus(w[2], w1)
    w3 = b.xor_bus(w[3], w2)
    return w0 + w1 + w2 + w3


@dataclass
class AesCircuit:
    """The generated AES netlist together with its interface nets."""

    netlist: Netlist
    pt: Bus
    key: Bus
    start: str
    state_q: Bus
    key_q: Bus
    round_ctr: Bus
    busy: str
    done: str
    clkdiv: Bus = field(default_factory=list)
    latency: int = AES_LATENCY
    extra_inputs: dict[str, str] = field(default_factory=dict)

    def start_inputs(
        self, plaintexts: np.ndarray, keys: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Input dict for the ``start`` cycle of a batched encryption.

        *plaintexts* and *keys* are uint8 arrays of shape ``(batch, 16)``.
        """
        batch = plaintexts.shape[0]
        inputs = bus_inputs(self.pt, plaintexts)
        inputs.update(bus_inputs(self.key, keys))
        inputs[self.start] = np.ones(batch, dtype=bool)
        return inputs

    def idle_inputs(self, batch: int) -> dict[str, np.ndarray]:
        """Input dict that deasserts ``start`` (other inputs unchanged)."""
        return {self.start: np.zeros(batch, dtype=bool)}


def build_aes_circuit(builder: NetlistBuilder | None = None) -> AesCircuit:
    """Generate the structural AES-128 core.

    When *builder* is given the AES is added to that (shared) netlist —
    this is how the Trojan generators attach to the same die — otherwise
    a fresh netlist named ``"aes_core"`` is created.
    """
    own_builder = builder is None
    b = builder if builder is not None else NetlistBuilder("aes_core")
    with b.in_group(AES_GROUP):
        pt = b.input_bus("pt", 128)
        key = b.input_bus("key", 128)
        start = b.input("start")

        # Registers are declared first as plain nets so combinational
        # logic can reference them; flop instances are created at the end
        # once their D nets exist.
        state_q: Bus = [b.net("state_q") for _ in range(128)]
        key_q: Bus = [b.net("key_q") for _ in range(128)]
        ctr_q: Bus = [b.net("ctr_q") for _ in range(4)]
        busy_q = b.net("busy_q")

        # ---------------- controller ---------------------------------
        is_last = b.equals_const(ctr_q, 10)
        run_en = b.or2(start, busy_q)
        busy_d = b.or2(start, b.and2(busy_q, b.inv(is_last)))
        done_d = b.and2(busy_q, is_last)

        one4 = b.const_bus(1, 4)
        ctr_plus1, _carry = b.adder_bus(ctr_q, one4)
        ctr_d = b.mux_bus(ctr_plus1, one4, start)

        # ---------------- round datapath ------------------------------
        sb: Bus = []
        for i in range(16):
            sb.extend(_sbox_bus(b, _byte(state_q, i)))
        sr = _shift_rows_bus(sb)
        mc = _mix_columns_bus(b, sr)

        rcon_words = [0] * 16
        for rnd in range(1, 11):
            rcon_words[rnd] = aes_ref.RCON[rnd - 1]
        rcon = b.rom(ctr_q, rcon_words, 8)
        key_next = _key_schedule_bus(b, key_q, rcon)

        normal = b.xor_bus(mc, key_next)
        final = b.xor_bus(sr, key_next)
        round_out = b.mux_bus(normal, final, is_last)

        load_val = b.xor_bus(pt, key)
        state_d = b.mux_bus(round_out, load_val, start)
        key_d = b.mux_bus(key_next, key, start)

        # ---------------- registers ----------------------------------
        for d, q in zip(state_d, state_q):
            b.flop_into(d, q, enable=run_en)
        for d, q in zip(key_d, key_q):
            b.flop_into(d, q, enable=run_en)
        for d, q in zip(ctr_d, ctr_q):
            b.flop_into(d, q, enable=run_en)
        b.flop_into(busy_d, busy_q)
        done_q = b.dff(done_d)

        # Free-running clock divider for the chip's I/O and test logic.
        # Its MSB-side bits are the "on-chip clock division signal" the
        # paper's A2 Trojan rides as its fast-toggling trigger input.
        clkdiv = b.counter(3)

        b.mark_output_bus(state_q)
        b.mark_output(done_q)

    netlist = b.build() if own_builder else b.netlist
    return AesCircuit(
        netlist=netlist,
        pt=pt,
        key=key,
        start=start,
        state_q=state_q,
        key_q=key_q,
        round_ctr=ctr_q,
        busy=busy_q,
        done=done_q,
        clkdiv=clkdiv,
    )
