"""Bit/byte packing helpers bridging numpy batches and 128-bit buses.

The simulator works on per-net boolean batches; the crypto world works
on 16-byte blocks.  Bus bit order everywhere is: byte 0 first, MSB of
each byte first — so bus index ``8*i + (7 - b)`` holds bit ``b`` of
byte ``i``.
"""

from __future__ import annotations

import numpy as np


def bytes_to_bits(blocks: np.ndarray) -> np.ndarray:
    """Convert blocks of bytes to bus-ordered bits.

    Parameters
    ----------
    blocks:
        uint8 array of shape ``(batch, nbytes)``.

    Returns
    -------
    numpy.ndarray
        bool array of shape ``(8 * nbytes, batch)``, MSB-first per byte.
    """
    blocks = np.asarray(blocks, dtype=np.uint8)
    if blocks.ndim != 2:
        raise ValueError(f"expected (batch, nbytes) array, got shape {blocks.shape}")
    bits = np.unpackbits(blocks, axis=1, bitorder="big")
    return bits.T.astype(bool)


def bits_to_bytes(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bytes_to_bits`.

    Parameters
    ----------
    bits:
        bool array of shape ``(8 * nbytes, batch)``.

    Returns
    -------
    numpy.ndarray
        uint8 array of shape ``(batch, nbytes)``.
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim != 2 or bits.shape[0] % 8:
        raise ValueError(
            f"expected (8*nbytes, batch) bool array, got shape {bits.shape}"
        )
    return np.packbits(bits.T.astype(np.uint8), axis=1, bitorder="big")


def bus_inputs(bus: list[str], blocks: np.ndarray) -> dict[str, np.ndarray]:
    """Build a simulator input dict binding *bus* to byte *blocks*.

    ``blocks`` has shape ``(batch, len(bus)//8)``; the result maps each
    bus net name to its ``(batch,)`` boolean column.
    """
    bits = bytes_to_bits(blocks)
    if bits.shape[0] != len(bus):
        raise ValueError(
            f"bus has {len(bus)} nets but blocks encode {bits.shape[0]} bits"
        )
    return {net: bits[i] for i, net in enumerate(bus)}


def random_blocks(rng: np.random.Generator, batch: int, nbytes: int = 16) -> np.ndarray:
    """Uniformly random byte blocks of shape ``(batch, nbytes)``."""
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")
    return rng.integers(0, 256, size=(batch, nbytes), dtype=np.uint8)


def blocks_from_bytes(items: list[bytes]) -> np.ndarray:
    """Stack equal-length ``bytes`` objects into a ``(batch, nbytes)`` array."""
    if not items:
        raise ValueError("need at least one block")
    length = len(items[0])
    if any(len(it) != length for it in items):
        raise ValueError("all blocks must have equal length")
    return np.frombuffer(b"".join(items), dtype=np.uint8).reshape(len(items), length)
