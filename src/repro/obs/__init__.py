"""Shared observability package: metrics, timings and the event journal.

Promoted out of :mod:`repro.fleet` so that *every* layer of the
runtime — the acquisition engine, the campaign/cache plumbing, the
experiment registry and the fleet service — reports through one
instrumentation surface:

* :class:`MetricsRegistry` — lazily created, thread-safe counters,
  gauges and p50/p95/p99 histograms with ``time()`` stage hooks;
* :class:`EventJournal` — the timestamp-free, atomically flushed JSONL
  event log.

Most call sites do not thread a registry explicitly; they report to
the **active** registry:

* :func:`active_metrics` returns the innermost registry installed with
  :func:`use_metrics`, falling back to one process-global registry;
* :func:`use_metrics` scopes a fresh (or given) registry to a block —
  the experiment registry wraps every ``repro run`` in one so each
  :class:`~repro.experiments.result.RunResult` artifact carries
  exactly the metrics of its own run.

Instrumentation recorded inside :mod:`repro.experiments.parallel`
worker *processes* stays in those processes; only the coordinating
process's registry lands in the artifact.

The old import paths ``repro.fleet.metrics`` and
``repro.fleet.journal`` remain as deprecated aliases (one
``DeprecationWarning`` at import).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.obs.journal import EVENT_KINDS, EventJournal
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SUMMARY_PERCENTILES,
    format_snapshot,
)

__all__ = [
    "EVENT_KINDS",
    "EventJournal",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SUMMARY_PERCENTILES",
    "format_snapshot",
    "active_metrics",
    "use_metrics",
]

#: Fallback registry when no scoped registry is installed.  Process-
#: global, so ad-hoc driver calls still aggregate somewhere inspectable.
_GLOBAL_REGISTRY = MetricsRegistry()

_SCOPED: list[MetricsRegistry] = []


def active_metrics() -> MetricsRegistry:
    """The registry instrumented code should report to right now."""
    if _SCOPED:
        return _SCOPED[-1]
    return _GLOBAL_REGISTRY


@contextlib.contextmanager
def use_metrics(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Scope *registry* (or a fresh one) as the active registry.

    Nests; the innermost scope wins and the previous active registry
    is restored on exit.  Yields the registry so the caller can
    snapshot it afterwards.
    """
    reg = registry if registry is not None else MetricsRegistry()
    _SCOPED.append(reg)
    try:
        yield reg
    finally:
        _SCOPED.pop()
