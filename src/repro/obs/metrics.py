"""Shared observability: counters, gauges and latency histograms.

A deliberately small, dependency-free metrics registry in the
Prometheus idiom, used across the whole runtime — the acquisition
engine, the campaign cache layer, the experiment registry and the
fleet service all report through it.  Instruments are created lazily
by name (:meth:`MetricsRegistry.counter` / :meth:`gauge` /
:meth:`histogram`), are individually thread-safe (the threaded fleet
scheduler fans ingestion across workers), and snapshot into plain
JSON-encodable dictionaries so a run can persist its metrics inside
its :class:`~repro.experiments.result.RunResult` artifact or next to
the event journal.

Timing instrumentation goes through :meth:`MetricsRegistry.time`,
a context manager that lands ``perf_counter`` durations in a
histogram; the per-stage hooks around the simulator cycle loop
(:mod:`repro.chip.acquire`), trace generation
(:mod:`repro.experiments.campaign`) and the monitor session stages
(:mod:`repro.fleet.session`) use it.  Latency histograms report
p50/p95/p99 in their summaries.

Code that wants to report without threading a registry through every
call reads the *active* registry via :func:`repro.obs.active_metrics`;
:func:`repro.obs.use_metrics` scopes a fresh registry to one run.
(This module previously lived at ``repro.fleet.metrics``; that import
path remains as a deprecated alias.)
"""

from __future__ import annotations

import contextlib
import threading
import time

import numpy as np

from repro.errors import ExperimentError

#: Percentiles reported by every histogram summary.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> int:
        """Add *n* (must be >= 0); returns the new value."""
        if n < 0:
            raise ExperimentError(f"counter {self.name}: cannot add {n}")
        with self._lock:
            self._value += n
            return self._value

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down (queue depths, high-water marks)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def max(self, value: float) -> None:
        """Keep the running maximum (high-water tracking)."""
        with self._lock:
            self._value = max(self._value, float(value))

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Sample distribution with percentile summaries (p50/p95/p99)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return float(sum(self._values))

    def percentile(self, q: float) -> float:
        """q-th percentile of the observed samples (0 when empty)."""
        with self._lock:
            if not self._values:
                return 0.0
            return float(np.percentile(self._values, q))

    def samples(self) -> list[float]:
        """Copy of every observed sample (full fidelity, not a summary)."""
        with self._lock:
            return list(self._values)

    def merge(self, other: "Histogram | list[float]") -> "Histogram":
        """Fold another histogram's samples into this one, exactly.

        Histograms store their raw samples, so the merge is a plain
        concatenation and every percentile of the merged histogram is
        **exact**: ``merged.percentile(q)`` equals ``np.percentile``
        over the concatenated sample list, with no bucket-boundary
        approximation.  This is what lets per-shard fleet registries
        roll up into correct fleet-wide p50/p95/p99 — quantiles are
        not averaged across shards (averaging per-shard percentiles is
        wrong for any skewed distribution), the samples themselves are
        pooled.
        """
        incoming = other.samples() if isinstance(other, Histogram) else [
            float(v) for v in other
        ]
        with self._lock:
            self._values.extend(incoming)
        return self

    def summary(self) -> dict:
        """JSON-encodable summary: count, sum, mean, p50/p95/p99, max."""
        with self._lock:
            values = list(self._values)
        if not values:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "max": 0.0,
                    **{f"p{int(q)}": 0.0 for q in SUMMARY_PERCENTILES}}
        arr = np.asarray(values, dtype=np.float64)
        out = {
            "count": int(arr.size),
            "sum": float(arr.sum()),
            "mean": float(arr.mean()),
            "max": float(arr.max()),
        }
        for q in SUMMARY_PERCENTILES:
            out[f"p{int(q)}"] = float(np.percentile(arr, q))
        return out


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram(name))

    @contextlib.contextmanager
    def time(self, name: str):
        """Time the enclosed block into histogram *name* (seconds)."""
        hist = self.histogram(name)
        start = time.perf_counter()
        try:
            yield hist
        finally:
            hist.observe(time.perf_counter() - start)

    def state_dict(self) -> dict:
        """Full-fidelity registry state (counters, gauges, samples).

        Unlike :meth:`snapshot`, histograms are dumped as their raw
        sample lists, so the state can cross a process boundary (the
        fleet shard workers ship theirs back over the wire) and be
        folded into another registry with :meth:`merge_state` without
        losing percentile exactness.  JSON-encodable.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.samples() for n, h in sorted(histograms.items())
            },
        }

    def merge_state(self, state: dict) -> "MetricsRegistry":
        """Fold a :meth:`state_dict` into this registry.

        Counters add, gauges keep the running maximum (every gauge in
        the runtime is a high-water mark), histograms pool their raw
        samples via :meth:`Histogram.merge` — so merged percentiles
        are exact on the union of the samples.  Instruments missing on
        either side are created / left untouched.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).max(float(value))
        for name, samples in state.get("histograms", {}).items():
            self.histogram(name).merge(samples)
        return self

    def snapshot(self) -> dict:
        """All instruments as one JSON-encodable dictionary."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(histograms.items())
            },
        }

    def format(self) -> str:
        """Human-readable metrics summary."""
        return format_snapshot(self.snapshot())


def format_snapshot(snap: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dictionary."""
    lines = ["metrics:"]
    for name, value in snap["counters"].items():
        lines.append(f"  {name} = {value}")
    for name, value in snap["gauges"].items():
        lines.append(f"  {name} = {value:g}")
    for name, s in snap["histograms"].items():
        lines.append(
            f"  {name}: n={s['count']} mean={s['mean']:.3e}s "
            f"p50={s['p50']:.3e}s p95={s['p95']:.3e}s "
            f"p99={s['p99']:.3e}s max={s['max']:.3e}s"
        )
    return "\n".join(lines)
