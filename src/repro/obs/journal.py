"""JSONL event journal for instrumented runs.

(This module previously lived at ``repro.fleet.journal``; that import
path remains as a deprecated alias.)

Every noteworthy fleet event — an alarm, a checkpoint, a dropped
window, a spectral-sweep verdict — is one JSON object per line.
Events carry **no wall-clock timestamps or global counters** by
design: a journal is a pure function of the (seeded) run that produced
it, so the checkpoint/resume tests can assert that a resumed run's
journal equals the uninterrupted run's journal tail byte for byte.
Ordering is the line order.

Flushes follow the :mod:`repro.io.store` write convention — the whole
journal is rewritten through a same-directory temp file and an atomic
rename (:func:`repro.io.store.atomic_write_bytes`), so a concurrent
reader or a crash mid-flush can never observe a torn line.
"""

from __future__ import annotations

import contextlib
import json
import threading
from pathlib import Path

from repro.errors import ExperimentError
from repro.io.store import _json_default, atomic_write_bytes

#: Event kinds the fleet layer emits (free-form kinds are allowed; this
#: is the documented core vocabulary).
EVENT_KINDS = ("alarm", "drop", "checkpoint", "spectral", "campaign")


class EventJournal:
    """Append-only in-memory event log with atomic JSONL persistence."""

    def __init__(self, path: str | Path | None = None) -> None:
        """
        Parameters
        ----------
        path:
            JSONL target; ``None`` keeps the journal in memory only
            (:meth:`flush` then is a no-op).
        """
        self.path = Path(path) if path is not None else None
        self._events: list[dict] = []
        # Parallel per-event ordering tags (``annotate``).  Tags are
        # bookkeeping *outside* the journal content: they never appear
        # in the event dictionaries and are never flushed, so tagging
        # cannot change a single journal byte.
        self._tags: list[dict | None] = []
        self._context: dict | None = None
        self._lock = threading.Lock()

    def record(self, kind: str, **fields) -> dict:
        """Append one event; returns the event dictionary."""
        if not kind:
            raise ExperimentError("journal event kind must be non-empty")
        event = {"kind": kind, **fields}
        with self._lock:
            self._events.append(event)
            self._tags.append(self._context)
        return event

    @contextlib.contextmanager
    def annotate(self, **tags):
        """Tag every event recorded in the block with ordering metadata.

        The sharded fleet runtime uses this to stamp each event with
        the global scheduler tick and phase it belongs to, so per-shard
        journals can later be merged back into the exact event order a
        single-process run would have produced (see
        :meth:`repro.fleet.ingest.ShardedFleetScheduler`).  Tags live
        next to the events, not inside them — flushed bytes are
        unaffected.  Nesting replaces the context for the inner block.
        """
        with self._lock:
            previous = self._context
            self._context = dict(tags)
        try:
            yield self
        finally:
            with self._lock:
                self._context = previous

    def tagged(self) -> list[tuple[dict | None, dict]]:
        """Snapshot of ``(tag, event)`` pairs in insertion order."""
        with self._lock:
            return list(zip(self._tags, self._events))

    def rewrite(self, events: list[dict]) -> None:
        """Replace the event list wholesale (tags are cleared).

        This exists for exactly one consumer: the sharded fleet
        front-end, which collects tagged events from every shard,
        sorts them into the global (tick, phase, chip) order and
        installs the merged stream here so the flushed journal is
        byte-identical to a single-process run.  Any other use would
        break the append-only reading of a journal — don't.
        """
        with self._lock:
            self._events = list(events)
            self._tags = [None] * len(self._events)

    @property
    def events(self) -> list[dict]:
        """Snapshot of all recorded events (insertion order)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def tail(self, n: int) -> list[dict]:
        """The last *n* events (all of them when n exceeds the count)."""
        if n < 0:
            raise ExperimentError(f"tail length must be >= 0, got {n}")
        with self._lock:
            return list(self._events[len(self._events) - n:]) if n else []

    def flush(self) -> Path | None:
        """Persist every event as JSONL via an atomic rename.

        Returns the path written, or ``None`` for in-memory journals.
        Rewriting the whole file keeps the invariant simple: the file
        on disk is always a complete, valid JSONL prefix-free journal.
        """
        if self.path is None:
            return None
        with self._lock:
            events = list(self._events)
        payload = "".join(
            json.dumps(e, sort_keys=True, default=_json_default) + "\n"
            for e in events
        ).encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(self.path, payload)
        return self.path

    @staticmethod
    def load(path: str | Path) -> list[dict]:
        """Parse a flushed journal back into its event list."""
        text = Path(path).read_text(encoding="utf-8")
        return [json.loads(line) for line in text.splitlines() if line]
