"""``repro`` — the unified reproduction command line.

One entry point for everything the repo reproduces:

``repro list``
    the experiment registry — every table/figure, its scenario and
    its full/smoke sizes;
``repro detectors``
    the detector registry — every pluggable window detector, whether
    it needs a golden reference, and what it measures;
``repro run fig4 euclidean --out out/``
    run selected experiments and write one validated
    :class:`~repro.experiments.result.RunResult` JSON artifact each;
``repro run --all --smoke``
    the CI ``cli-smoke`` sweep — every registered experiment at
    reduced sizes;
``repro fleet ...``
    the fleet monitoring campaign (the old ``repro-fleet`` script,
    which remains as a deprecated alias).

``--workers``/``--smoke`` are conveniences over the ``REPRO_*``
environment (see ``docs/CONFIG.md``); an explicit flag always beats
the environment because it is resolved as a
:meth:`repro.config.ReproConfig.resolve` override.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.config import ReproConfig
from repro.errors import ReproError
from repro.experiments.registry import all_specs, get_spec, run_experiment
from repro.obs import format_snapshot


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the paper's tables and figures. "
            "`repro fleet ...` forwards to the fleet monitoring "
            "campaign (formerly the repro-fleet script)."
        ),
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered experiments")

    sub.add_parser("detectors", help="list the registered detectors")

    run = sub.add_parser("run", help="run experiments, write artifacts")
    run.add_argument("names", nargs="*", metavar="experiment",
                     help="experiment names (see `repro list`)")
    run.add_argument("--all", action="store_true",
                     help="run every registered experiment")
    run.add_argument("--smoke", action="store_true",
                     help="reduced sizes (also via REPRO_BENCH_SMOKE=1)")
    run.add_argument("--seed", type=int, default=1,
                     help="chip seed (default 1)")
    run.add_argument("--workers", type=int, default=None,
                     help="campaign fan-out override (beats REPRO_WORKERS)")
    run.add_argument("--out", default="out",
                     help="artifact directory (default: out/)")
    run.add_argument("--metrics", action="store_true",
                     help="print each run's metrics snapshot")

    fleet = sub.add_parser(
        "fleet", add_help=False,
        help="fleet monitoring campaign (see `repro fleet --help`)",
    )
    fleet.add_argument("fleet_args", nargs=argparse.REMAINDER)
    return p


def _schema_summary(schema) -> str:
    """One-line sketch of a payload schema: top-level keys with their
    node kinds (``dict``/``list``/scalar name), ``-`` when undeclared."""
    if not schema:
        return "-"

    def kind(node) -> str:
        if isinstance(node, dict):
            return "{...}"
        if isinstance(node, list):
            return "[...]"
        return str(node)

    return ", ".join(f"{key}:{kind(node)}" for key, node in schema.items())


def _cmd_list() -> int:
    specs = all_specs()
    width = max(len(s.name) for s in specs)
    print(f"{'experiment':<{width}}  {'scenario':<8}  description")
    for spec in specs:
        print(f"{spec.name:<{width}}  {spec.scenario:<8}  {spec.title}")
        print(f"{'':<{width}}  {'':<8}  payload: "
              f"{_schema_summary(spec.schema)}")
    print(f"\n{len(specs)} experiments; run with "
          f"`repro run <name>` or `repro run --all --smoke`")
    return 0


def _cmd_detectors() -> int:
    from repro.detectors import all_detector_infos

    infos = all_detector_infos()
    name_w = max(len(i.name) for i in infos)
    basis_w = max(len(i.basis) for i in infos)
    print(f"{'detector':<{name_w}}  {'basis':<{basis_w}}  description")
    for info in infos:
        print(f"{info.name:<{name_w}}  {info.basis:<{basis_w}}  "
              f"{info.summary}")
    print(f"\n{len(infos)} detectors; select with REPRO_DETECTOR or "
          f"compare with `repro run detector_tournament`")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.all:
        names = [spec.name for spec in all_specs()]
    else:
        names = list(args.names)
    if not names:
        print("repro run: pass experiment names or --all", file=sys.stderr)
        return 1
    try:
        for name in names:
            get_spec(name)
    except ReproError as err:
        print(f"repro run: {err}", file=sys.stderr)
        return 1

    overrides: dict = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    config = ReproConfig.resolve(**overrides)
    smoke = args.smoke or config.bench_smoke
    out_dir = Path(args.out)

    for name in names:
        print(f"=== {name} ({'smoke' if smoke else 'full'}) ===")
        result = run_experiment(
            name, smoke=smoke, seed=args.seed, config=config
        )
        print(result.text)
        if args.metrics:
            print()
            print(format_snapshot(result.metrics))
        path = result.save(out_dir / f"{name}.json")
        print(f"artifact: {path}  ({result.elapsed_seconds:.1f}s)\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `repro fleet` forwards everything (including --help) untouched.
    if argv and argv[0] == "fleet":
        from repro.fleet.cli import main as fleet_main

        return fleet_main(argv[1:])
    args = _parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "detectors":
        return _cmd_detectors()
    if args.command == "run":
        return _cmd_run(args)
    # Unreachable fallback (fleet is dispatched above); keep argparse
    # help honest if that ever changes.
    from repro.fleet.cli import main as fleet_main

    return fleet_main(args.fleet_args)


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    raise SystemExit(main())
