"""A2-style analog Trojan (paper Sections III-E / IV-D; Yang et al., S&P'16).

The A2 Trojan is six transistors: a capacitor-based charge pump that
sips charge every time a *fast-toggling* trigger wire flips, and fires
its payload once the capacitor crosses a threshold.  In the paper's
test chip the trigger input rides the on-chip clock-division signal.

Digitally the Trojan is almost invisible — Table I sizes it at 0.087 %
of the AES *by area* — so this module contributes:

* two minimum-size cells in group ``"a2"`` as the area/placement proxy
  of the analog structure,
* an :class:`~repro.trojans.base.AnalogTap` that draws a charge packet
  on every toggle of the clock-division wire while triggering is under
  way — the *fast flipping signal* whose extra spectral energy Figure 4
  detects,
* :class:`A2ChargePump`, the behavioural capacitor model used to decide
  when the payload fires (and by the tests to prove the trigger works
  like the published A2: frequent toggles fire it, sparse toggles leak
  away harmlessly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes_circuit import AesCircuit
from repro.errors import TrojanError
from repro.logic.builder import NetlistBuilder
from repro.trojans.base import AnalogTap, HardwareTrojan, TapMode, TrojanKind
from repro.units import FF, V


@dataclass(frozen=True)
class A2Params:
    """Electrical knobs of the charge pump."""

    #: Clock-division ratio of the gated trigger.  The default mod-3
    #: divider puts the armed trigger's pump strokes at f_clk / 3
    #: (8 MHz on the 24 MHz test chip) — a frequency spot the original
    #: circuit's power-of-two dividers and encryption combs never
    #: occupy, i.e. the paper's "newly added frequency spot" (T != g)
    #: detection case.
    trigger_period_cycles: int = 3
    #: Charge injected per pump stroke [C]; the pump capacitor plus the
    #: payload driver's input swing ~25 fF through the 1.8 V rail.
    charge_per_toggle: float = 25 * FF * 1.8 * V
    #: Capacitance of the gated trigger route [F].  The clock-division
    #: signal is generated next to the AES divider and routed across
    #: the die to the pump, so the armed wire drags a long
    #: heavily-loaded net with it; its charging current, not the
    #: 6-transistor pump alone, is the EM-visible artefact.
    trigger_wire_cap: float = 0.18e-12
    #: Charge actually deposited on the pump capacitor per stroke [C]
    #: (the small coupling-cap share of the stroke; the rest of
    #: :attr:`charge_per_toggle` charges the trigger route and payload
    #: driver and never reaches the cap).
    pump_charge_per_toggle: float = 1.2 * FF * 1.8 * V
    #: Capacitor size [F].
    cap: float = 18 * FF
    #: Payload fires when the cap voltage crosses this fraction of VDD.
    threshold_fraction: float = 0.75
    #: Fraction of stored charge leaking away per clock cycle.
    leak_fraction: float = 0.02


class A2ChargePump:
    """Behavioural model of the 6-transistor A2 trigger circuit.

    Call :meth:`step` once per clock cycle with the number of trigger
    toggles observed in that cycle; the model integrates charge, leaks,
    and reports when the payload fires.
    """

    def __init__(self, params: A2Params, vdd: float = 1.8) -> None:
        if not 0.0 < params.threshold_fraction < 1.0:
            raise TrojanError(
                f"threshold_fraction must be in (0, 1), got "
                f"{params.threshold_fraction}"
            )
        if not 0.0 <= params.leak_fraction < 1.0:
            raise TrojanError(
                f"leak_fraction must be in [0, 1), got {params.leak_fraction}"
            )
        self.params = params
        self.vdd = vdd
        self.charge = 0.0
        self.fired = False

    @property
    def voltage(self) -> float:
        """Current capacitor voltage [V], clamped to VDD."""
        return min(self.charge / self.params.cap, self.vdd)

    @property
    def threshold_voltage(self) -> float:
        """Payload-firing threshold [V]."""
        return self.params.threshold_fraction * self.vdd

    def step(self, toggles: int) -> bool:
        """Advance one clock cycle; returns True when the payload fires.

        The pump saturates at VDD and leaks a fixed fraction per cycle,
        exactly the mechanism that makes A2 immune to slow/occasional
        toggles but certain to fire under a sustained fast-flipping
        trigger.
        """
        if toggles < 0:
            raise TrojanError(f"toggle count must be >= 0, got {toggles}")
        self.charge *= 1.0 - self.params.leak_fraction
        self.charge += toggles * self.params.pump_charge_per_toggle
        self.charge = min(self.charge, self.params.cap * self.vdd)
        if not self.fired and self.voltage >= self.threshold_voltage:
            self.fired = True
            return True
        return False

    def reset(self) -> None:
        """Discharge the capacitor and rearm the payload."""
        self.charge = 0.0
        self.fired = False


def attach_a2(
    b: NetlistBuilder,
    aes: AesCircuit,
    params: A2Params | None = None,
) -> HardwareTrojan:
    """Attach the A2 analog Trojan to the shared die netlist."""
    params = params or A2Params()
    if not aes.clkdiv:
        raise TrojanError("AES circuit exposes no clock-division bus")
    n = params.trigger_period_cycles
    if n < 2:
        raise TrojanError(f"trigger period must be >= 2 cycles, got {n}")
    group = "a2"
    with b.in_group(group):
        enable_pin = b.input("a2_en")
        # The trigger wire is *quiet until the attack*: a tiny gated
        # mod-N clock divider (clock-enabled by the attacker) drives the
        # pump only while triggering is under way ("when the A2-style
        # Trojans are being triggered, the fast flipping signals will
        # result in extra frequency spots or increased amplitude").
        width = max(1, (n - 1).bit_length())
        cnt = [b.net("a2_cnt") for _ in range(width)]
        wrap = b.equals_const(cnt, n - 1)
        one = b.const_bus(1, width)
        inc, _carry = b.adder_bus(cnt, one)
        zero = b.const_bus(0, width)
        nxt = b.mux_bus(inc, zero, wrap)
        for d, q in zip(nxt, cnt):
            b.flop_into(d, q, enable=enable_pin)
        trigger_wire = wrap
        # Area proxy of the 6-transistor analog cell: two minimum cells
        # hanging off the trigger wire (they also load it realistically).
        sense = b.inv(trigger_wire)
        b.inv(sense)

    tap = AnalogTap(
        net=trigger_wire,
        mode=TapMode.PULSE_ON_RISE,
        amplitude=params.charge_per_toggle + params.trigger_wire_cap * 1.8,
        gate_by=enable_pin,
        group=group,
        spread=True,
    )
    return HardwareTrojan(
        name="a2",
        group=group,
        kind=TrojanKind.ANALOG,
        enable_pin=enable_pin,
        active_net=enable_pin,
        description="A2-style analog charge-pump Trojan on a gated clock divider",
        monitor_nets={"trigger_wire": trigger_wire},
        analog_taps=[tap],
        metadata={
            "trigger_period_cycles": n,
            "charge_per_toggle": params.charge_per_toggle,
        },
    )
