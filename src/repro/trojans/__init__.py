"""Hardware-Trojan generators.

Re-implementations of the paper's five Trojans (Section IV-A), each a
netlist generator that attaches to the shared AES die and registers the
analog current taps its payload needs:

* **Trojan 1** (:mod:`~repro.trojans.t1_am`) — leaks the key over an AM
  radio carrier at 750 kHz.
* **Trojan 2** (:mod:`~repro.trojans.t2_leakage`) — leaks the key
  through a conditional leakage current (shift register + 2 inverters).
* **Trojan 3** (:mod:`~repro.trojans.t3_cdma`) — leaks the key over a
  CDMA channel spread by an LFSR PRNG; smallest Trojan.
* **Trojan 4** (:mod:`~repro.trojans.t4_power`) — degrades performance
  by toggling a large register bank.
* **A2** (:mod:`~repro.trojans.a2`) — analog charge-pump Trojan whose
  fast-flipping trigger rides the on-chip clock-division signal.

Each Trojan is dormant after reset (all its flops are clock-gated by
the activation signal) and activates via an internal state-match
trigger or the external per-Trojan enable pin the paper adds for
manageable experiments.
"""

from repro.trojans.base import (
    AnalogTap,
    HardwareTrojan,
    TapMode,
    TrojanKind,
    attach_activation,
    trigger_plaintext,
)
from repro.trojans.t1_am import attach_trojan1
from repro.trojans.t2_leakage import attach_trojan2
from repro.trojans.t3_cdma import attach_trojan3
from repro.trojans.t4_power import attach_trojan4
from repro.trojans.a2 import A2ChargePump, attach_a2
from repro.trojans.taxonomy import PROFILES, TrojanProfile, profile

__all__ = [
    "AnalogTap",
    "HardwareTrojan",
    "TapMode",
    "TrojanKind",
    "attach_activation",
    "trigger_plaintext",
    "attach_trojan1",
    "attach_trojan2",
    "attach_trojan3",
    "attach_trojan4",
    "A2ChargePump",
    "attach_a2",
    "PROFILES",
    "TrojanProfile",
    "profile",
]
