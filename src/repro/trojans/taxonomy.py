"""Trojan taxonomy — TrustHub-style classification of the five payloads.

The paper builds its Trojans "modifying benchmarks from TrustHub"; this
module records each implementation's position in the standard Trojan
taxonomy (insertion phase, abstraction level, activation mechanism,
effect, location) so downstream tooling can reason about coverage the
way the benchmark suite does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InsertionPhase(enum.Enum):
    DESIGN = "design"
    FABRICATION = "fabrication"


class AbstractionLevel(enum.Enum):
    GATE = "gate"
    TRANSISTOR = "transistor"


class Activation(enum.Enum):
    ALWAYS_ON = "always-on"
    INTERNALLY_TRIGGERED = "internally-triggered"
    EXTERNALLY_TRIGGERED = "externally-triggered"


class Effect(enum.Enum):
    LEAK_INFORMATION = "leak-information"
    DEGRADE_PERFORMANCE = "degrade-performance"
    CHANGE_FUNCTIONALITY = "change-functionality"
    DENIAL_OF_SERVICE = "denial-of-service"


@dataclass(frozen=True)
class TrojanProfile:
    """Taxonomy record of one Trojan implementation."""

    name: str
    insertion: InsertionPhase
    abstraction: AbstractionLevel
    activation: tuple[Activation, ...]
    effect: Effect
    channel: str
    trusthub_family: str

    def summary(self) -> str:
        acts = "/".join(a.value for a in self.activation)
        return (
            f"{self.name}: {self.abstraction.value}-level, "
            f"{acts}, {self.effect.value} via {self.channel} "
            f"(TrustHub family {self.trusthub_family})"
        )


#: Registry of the test chip's Trojans.
PROFILES: dict[str, TrojanProfile] = {
    "trojan1": TrojanProfile(
        name="trojan1",
        insertion=InsertionPhase.DESIGN,
        abstraction=AbstractionLevel.GATE,
        activation=(
            Activation.INTERNALLY_TRIGGERED,
            Activation.EXTERNALLY_TRIGGERED,
        ),
        effect=Effect.LEAK_INFORMATION,
        channel="AM radio carrier @ 750 kHz",
        trusthub_family="AES-T1800 (RF leaker)",
    ),
    "trojan2": TrojanProfile(
        name="trojan2",
        insertion=InsertionPhase.DESIGN,
        abstraction=AbstractionLevel.GATE,
        activation=(
            Activation.INTERNALLY_TRIGGERED,
            Activation.EXTERNALLY_TRIGGERED,
        ),
        effect=Effect.LEAK_INFORMATION,
        channel="conditional leakage current",
        trusthub_family="AES-T1600 (leakage leaker)",
    ),
    "trojan3": TrojanProfile(
        name="trojan3",
        insertion=InsertionPhase.DESIGN,
        abstraction=AbstractionLevel.GATE,
        activation=(
            Activation.INTERNALLY_TRIGGERED,
            Activation.EXTERNALLY_TRIGGERED,
        ),
        effect=Effect.LEAK_INFORMATION,
        channel="CDMA-spread covert channel",
        trusthub_family="AES-T1100 (CDMA leaker)",
    ),
    "trojan4": TrojanProfile(
        name="trojan4",
        insertion=InsertionPhase.DESIGN,
        abstraction=AbstractionLevel.GATE,
        activation=(
            Activation.INTERNALLY_TRIGGERED,
            Activation.EXTERNALLY_TRIGGERED,
        ),
        effect=Effect.DEGRADE_PERFORMANCE,
        channel="supply current (register bank)",
        trusthub_family="AES-T500 (power waster)",
    ),
    "a2": TrojanProfile(
        name="a2",
        insertion=InsertionPhase.FABRICATION,
        abstraction=AbstractionLevel.TRANSISTOR,
        activation=(Activation.EXTERNALLY_TRIGGERED,),
        effect=Effect.CHANGE_FUNCTIONALITY,
        channel="analog charge pump on a clock-division wire",
        trusthub_family="A2 (Yang et al., S&P'16)",
    ),
}


def profile(name: str) -> TrojanProfile:
    """Look up a Trojan's taxonomy record.

    Raises
    ------
    KeyError
        If the Trojan is not in the registry.
    """
    return PROFILES[name]


def by_effect(effect: Effect) -> list[TrojanProfile]:
    """All registered Trojans with the given payload effect."""
    return [p for p in PROFILES.values() if p.effect is effect]


def coverage_summary() -> str:
    """Taxonomy coverage of the test chip, one line per Trojan."""
    return "\n".join(p.summary() for p in PROFILES.values())
