"""Trojan 1 — AM-radio key leaker (paper Section IV-A).

"Trojan 1 leaks the secret information through the AM radio carrier at
a 750 KHz frequency and the leaked information can be demodulated with
a wireless radio receiver."

Structure:

* a frame counter clocked only while the Trojan is active; bit 3 (from
  the LSB) toggles every 16 cycles, giving a square-wave carrier with a
  period of 32 clock cycles — exactly 750 kHz at the chip's 24 MHz
  clock;
* a 128:1 multiplexer tree that taps the AES **key input bus** (stable
  between loads, unlike the round-key register) and walks
  through the key one bit per 4 carrier periods (on-off keying);
* a bank of toggle flops ("antenna drivers") that flip on every carrier
  edge while the current key bit is 1, pumping a strong current burst
  train at 1.5 MHz whose amplitude envelope is the key stream.

The demodulator in :mod:`repro.analysis.demod` recovers the key bits
from the EM trace envelope, proving the payload actually leaks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes_circuit import AesCircuit
from repro.errors import TrojanError
from repro.logic.builder import NetlistBuilder
from repro.trojans.base import (
    AnalogTap,
    HardwareTrojan,
    TapMode,
    TrojanKind,
    attach_activation,
)
from repro.units import PF, V

#: Clock cycles per carrier period (24 MHz / 32 = 750 kHz).
CARRIER_DIVIDE = 32

#: Carrier periods per transmitted key bit.
PERIODS_PER_BIT = 4

#: Cycles per transmitted key bit.
CYCLES_PER_BIT = CARRIER_DIVIDE * PERIODS_PER_BIT


@dataclass(frozen=True)
class Trojan1Params:
    """Size/trigger knobs for Trojan 1."""

    #: Number of antenna-driver toggle flops (sets radiated power and
    #: most of the gate count; default lands near the paper's 5 %).
    n_drivers: int = 650
    #: First AES state byte of the 4-byte internal-trigger window.
    match_byte: int = 0
    #: Rare 32-bit value arming the internal trigger.
    match_value: int = 0xA5C396E1
    #: Capacitance of the antenna node the driver bank charges [F].
    #: Every rise moves this charge coherently through one grid path —
    #: the 750 kHz carrier the paper's radio receiver picks up.
    antenna_cap: float = 0.5 * PF
    #: Reset value of the frame counter (frame phase the measurement
    #: campaign happens to catch; bit index = frame_init >> 7).
    frame_init: int = 2 << 7


def attach_trojan1(
    b: NetlistBuilder,
    aes: AesCircuit,
    params: Trojan1Params | None = None,
) -> HardwareTrojan:
    """Attach Trojan 1 to the shared die netlist."""
    params = params or Trojan1Params()
    if params.n_drivers <= 0:
        raise TrojanError(f"n_drivers must be positive, got {params.n_drivers}")
    group = "trojan1"
    with b.in_group(group):
        match_bus = aes.state_q[8 * params.match_byte : 8 * params.match_byte + 32]
        enable_pin, active = attach_activation(
            b, group, match_bus, params.match_value
        )

        # Frame counter: 14 bits cover carrier phase (bits 0-4 from the
        # LSB) and the 7-bit key-bit index (bits 7-13).  The reset value
        # models catching the free-running leaker at an arbitrary frame
        # phase (a real chip is never reset synchronously with the
        # Trojan's transmission).
        frame = b.counter(14, enable=active, init=params.frame_init)
        # Bus is MSB first: the LSB is frame[13].  Counter bit p (from
        # the LSB) has period 2**(p+1) cycles, so the 32-cycle carrier
        # is bit 4 -> bus index 13 - 4 = 9.
        carrier = frame[9]
        bit_index = frame[0:7]  # counter bits 13..7, MSB first

        key_bit = b.mux_tree(aes.key, bit_index)

        # On-off keying: while the current key bit is 1 the driver bank
        # toggles every clock during the carrier's high half-period,
        # radiating current bursts whose envelope is the 750 kHz square
        # carrier gated by the key stream.
        antenna = b.and2(carrier, key_bit)
        for _ in range(params.n_drivers):
            q = b.net("drv_q")
            d = b.xor2(q, antenna)
            b.flop_into(d, q, enable=active)

    # The bank drives one shared antenna node; its charging current is
    # a single coherent analog tap (scattering it over 650 cell sites
    # would let opposite rail directions cancel the carrier).
    tap = AnalogTap(
        net=antenna,
        mode=TapMode.PULSE_ON_RISE,
        amplitude=params.antenna_cap * 1.8 * V,
        gate_by=active,
        group=group,
    )
    return HardwareTrojan(
        name="trojan1",
        group=group,
        kind=TrojanKind.DIGITAL,
        enable_pin=enable_pin,
        active_net=active,
        description="AM-radio key leaker on a 750 kHz carrier",
        monitor_nets={
            "carrier": carrier,
            "antenna": antenna,
            "key_bit": key_bit,
        },
        monitor_buses={"bit_index": bit_index, "frame": frame},
        analog_taps=[tap],
    )
