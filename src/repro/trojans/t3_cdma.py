"""Trojan 3 — CDMA-channel key leaker (paper Section IV-A).

"Trojan 3 leaks the secret information through a Code Division Multiple
Access (CDMA) channel which utilizes multiple clock cycles to leak a
single bit.  A pseudo-random number generator is used to provide a CDMA
sequence for the exclusive OR operation on the secret information."

Structure:

* a 16-bit maximal-length LFSR generates the spreading sequence;
* each key bit is XOR-spread over :data:`CHIPS_PER_BIT` chips;
* the chip stream drives a tiny output stage (a few buffers).

This is the paper's smallest Trojan (0.76 % of the AES) and, exactly as
in the paper, the hardest to detect: its Euclidean distance barely
clears the reference spread and its spectrum is pseudo-noise — spread
*below* the clock line rather than concentrated at a new spot.

Despreading the chip stream with the same LFSR sequence recovers the
key (majority vote per bit), which the tests use to prove the leak is
real.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes_circuit import AesCircuit
from repro.logic.builder import NetlistBuilder
from repro.trojans.base import (
    AnalogTap,
    HardwareTrojan,
    TapMode,
    TrojanKind,
    attach_activation,
)
from repro.units import FF, V

#: Chips (clock cycles) per leaked key bit.
CHIPS_PER_BIT = 32

#: LFSR taps (0 = MSB, 15 = oldest stage) for a maximal 16-bit
#: sequence (x^16 + x^14 + x^13 + x^11 + 1).  The recurrence is
#: b[t] = b[t-16] ^ b[t-14] ^ b[t-13] ^ b[t-11], i.e. stage indices
#: 15, 13, 12 and 10.
LFSR_TAPS = (10, 12, 13, 15)

#: LFSR width.
LFSR_WIDTH = 16


@dataclass(frozen=True)
class Trojan3Params:
    """Size/trigger knobs for Trojan 3."""

    #: Output-stage buffer count (small by design).
    n_drivers: int = 4
    #: Capacitance of the covert-channel output wire the chip stream
    #: drives [F] — small compared with T1's antenna, as befits the
    #: paper's hardest-to-detect Trojan.
    output_wire_cap: float = 110 * FF
    #: LFSR seed (non-zero).
    seed: int = 0xACE1
    match_byte: int = 8
    match_value: int = 0x5AF20D93


def attach_trojan3(
    b: NetlistBuilder,
    aes: AesCircuit,
    params: Trojan3Params | None = None,
) -> HardwareTrojan:
    """Attach Trojan 3 to the shared die netlist."""
    params = params or Trojan3Params()
    group = "trojan3"
    with b.in_group(group):
        match_bus = aes.state_q[8 * params.match_byte : 8 * params.match_byte + 32]
        enable_pin, active = attach_activation(
            b, group, match_bus, params.match_value
        )

        # Spreading PRNG: clock-gated by `active` so the dormant Trojan
        # draws nothing.
        prn_state = [b.net("lfsr_q") for _ in range(LFSR_WIDTH)]
        feedback = b.xor_tree([prn_state[t] for t in LFSR_TAPS])
        d_bus = [feedback] + prn_state[:-1]
        for i, (q, d) in enumerate(zip(prn_state, d_bus)):
            init = (params.seed >> (LFSR_WIDTH - 1 - i)) & 1
            b.flop_into(d, q, enable=active, init=init)
        prn_bit = prn_state[0]

        chip_cnt = b.counter(5, enable=active)
        wrap = b.equals_const(chip_cnt, CHIPS_PER_BIT - 1)
        bit_en = b.and2(active, wrap)
        bit_index = b.counter(7, enable=bit_en)
        key_bit = b.mux_tree(aes.key, bit_index)

        chip = b.xor2(prn_bit, key_bit)
        chip_q = b.dff(chip, enable=active)
        for _ in range(params.n_drivers):
            b.buf(chip_q)

    # The covert-channel output wire radiates the (pseudo-noise) chip
    # stream; the charge is modest, which is why T3 stays the hardest
    # Trojan to spot in both paper and reproduction.
    tap = AnalogTap(
        net=chip_q,
        mode=TapMode.PULSE_ON_RISE,
        amplitude=params.output_wire_cap * 1.8 * V,
        gate_by=active,
        group=group,
    )
    return HardwareTrojan(
        name="trojan3",
        group=group,
        kind=TrojanKind.DIGITAL,
        enable_pin=enable_pin,
        active_net=active,
        description="CDMA key leaker spread by a 16-bit LFSR",
        monitor_nets={"chip": chip_q, "prn": prn_bit, "key_bit": key_bit},
        monitor_buses={"bit_index": bit_index, "lfsr": prn_state},
        analog_taps=[tap],
    )
