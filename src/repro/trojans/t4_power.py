"""Trojan 4 — performance-degradation Trojan (paper Section IV-A).

"Trojan 4 causes performance degradation of the circuit.  It increases
the power consumption by introducing more flipping registers after
activation."

Structure: a large bank of toggle flops (DFFE + feedback inverter) that
all flip on every clock cycle once the Trojan is armed.  Dormant, the
bank is clock-gated and invisible; active, it adds a broadband current
comparable to a sizeable fraction of the AES itself — which is why the
paper sees the largest Euclidean distance (0.28) and the strongest
spectral lift for this Trojan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes_circuit import AesCircuit
from repro.errors import TrojanError
from repro.logic.builder import NetlistBuilder
from repro.trojans.base import HardwareTrojan, TrojanKind, attach_activation


@dataclass(frozen=True)
class Trojan4Params:
    """Size/trigger knobs for Trojan 4."""

    #: Toggle-flop count; each costs a DFFE plus an inverter.  The
    #: default lands near the paper's 8.4 % of the AES gate count.
    n_toggles: int = 1180
    match_byte: int = 12
    match_value: int = 0xC30B64F7


def attach_trojan4(
    b: NetlistBuilder,
    aes: AesCircuit,
    params: Trojan4Params | None = None,
) -> HardwareTrojan:
    """Attach Trojan 4 to the shared die netlist."""
    params = params or Trojan4Params()
    if params.n_toggles <= 0:
        raise TrojanError(f"n_toggles must be positive, got {params.n_toggles}")
    group = "trojan4"
    with b.in_group(group):
        match_bus = aes.state_q[8 * params.match_byte : 8 * params.match_byte + 32]
        enable_pin, active = attach_activation(
            b, group, match_bus, params.match_value
        )
        # The bank flips on every other cycle (a phase flop gates the
        # clock enables), so its current comb sits on 12 MHz-spaced
        # lines interleaved with the 24 MHz core-clock comb — the
        # "significant amplitude increase in a number of frequency
        # spots" of Fig. 6(l).
        phase_q = b.net("wob_phase")
        b.flop_into(b.inv(phase_q), phase_q, enable=active)
        bank_en = b.and2(active, phase_q)
        first_q: str | None = None
        for _ in range(params.n_toggles):
            q = b.net("wob_q")
            b.flop_into(b.inv(q), q, enable=bank_en)
            if first_q is None:
                first_q = q
    assert first_q is not None
    return HardwareTrojan(
        name="trojan4",
        group=group,
        kind=TrojanKind.DIGITAL,
        enable_pin=enable_pin,
        active_net=active,
        description="power-wasting bank of flipping registers",
        monitor_nets={"toggle0": first_q},
    )
