"""Shared Trojan infrastructure: descriptors, analog taps, triggers.

A :class:`HardwareTrojan` bundles everything the rest of the pipeline
needs to know about one attached Trojan: its instance group (for
Table I accounting and floorplanning), its external enable pin, the
nets worth monitoring in tests, and the :class:`AnalogTap` list through
which non-gate currents (leakage paths, charge pumps) are injected into
the EM synthesis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TrojanError
from repro.logic.builder import Bus, NetlistBuilder
from repro.units import NS


class TrojanKind(enum.Enum):
    """Digital Trojans are pure netlist additions; analog ones also
    carry transistor-level behaviour outside the cell library."""

    DIGITAL = "digital"
    ANALOG = "analog"


class TapMode(enum.Enum):
    """How an :class:`AnalogTap` converts a digital net into current."""

    #: A charge packet is drawn every time the net toggles.
    PULSE_ON_TOGGLE = "pulse_on_toggle"
    #: A charge packet is drawn on rising edges only (a diode-connected
    #: charge pump conducts on one polarity — the A2 case).
    PULSE_ON_RISE = "pulse_on_rise"
    #: A static current flows while the net is low (T2's leakage path).
    CURRENT_WHEN_LOW = "current_when_low"
    #: A static current flows while the net is high.
    CURRENT_WHEN_HIGH = "current_when_high"


@dataclass(frozen=True)
class AnalogTap:
    """A non-gate current source attached to a digital net.

    Parameters
    ----------
    net:
        Net whose digital value controls the current.
    mode:
        Conversion mode, see :class:`TapMode`.
    amplitude:
        Static current [A] for level modes, or charge-per-toggle [C]
        for :attr:`TapMode.PULSE_ON_TOGGLE`.
    gate_by:
        Optional primary-input name that must be 1 for the tap to carry
        any current (the external Trojan enable).
    rise_time:
        Current edge rate for level modes [s]; sets how much of the
        switching energy lands in-band.
    group:
        Instance group whose placement region locates this current
        physically (the tap radiates from that region's centroid).
    spread:
        True when the tap's current flows through a die-spanning net
        (e.g. A2's long gated trigger route); the tap then couples like
        a source at the die centre instead of at one cell.
    """

    net: str
    mode: TapMode
    amplitude: float
    gate_by: str | None = None
    rise_time: float = 2 * NS
    group: str = ""
    spread: bool = False
    #: Optional net whose driver cell locates this tap (when the
    #: radiating current loop sits at the *source* of a routed signal
    #: rather than at the observed net's driver).
    position_net: str | None = None

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise TrojanError(f"tap amplitude must be >= 0, got {self.amplitude}")
        if self.rise_time <= 0:
            raise TrojanError(f"tap rise time must be > 0, got {self.rise_time}")


@dataclass
class HardwareTrojan:
    """Descriptor of one attached Trojan."""

    name: str
    group: str
    kind: TrojanKind
    enable_pin: str
    active_net: str
    description: str
    monitor_nets: dict[str, str] = field(default_factory=dict)
    monitor_buses: dict[str, Bus] = field(default_factory=dict)
    analog_taps: list[AnalogTap] = field(default_factory=list)
    #: Free-form facts about the attachment (e.g. A2's divider bit)
    #: that experiment drivers need.
    metadata: dict = field(default_factory=dict)


def attach_activation(
    b: NetlistBuilder,
    name: str,
    match_bus: Bus,
    match_value: int,
) -> tuple[str, str]:
    """Build the dual trigger shared by all digital Trojans.

    The Trojan arms either through its *internal* stealthy trigger — a
    sticky comparator that fires when *match_bus* (a 32-bit slice of
    the AES state) takes the rare value *match_value* — or through the
    *external* per-Trojan enable pin the paper adds so each payload can
    be activated "in a more manageable way".

    The 32-bit match makes spontaneous arming astronomically unlikely
    (p = 2^-32 per cycle), which is what keeps the Trojan stealthy at
    test time; the attacker, knowing the key, arms it deliberately by
    submitting the plaintext ``match_pattern XOR key`` so the magic
    value appears in the state register after the initial AddRoundKey.

    Returns ``(enable_pin_name, active_net)``.  ``active_net`` stays
    high once armed (sticky) and is the clock-enable of every flop in
    the Trojan, so a dormant Trojan draws no dynamic current at all.
    """
    if len(match_bus) != 32:
        raise TrojanError(
            f"internal trigger needs a 32-bit match bus, got {len(match_bus)}"
        )
    enable_pin = b.input(f"{name}_en")
    match = b.equals_const(match_bus, match_value)
    armed_q = b.net(f"{name}_armed")
    armed_d = b.or2(match, armed_q)
    b.flop_into(armed_d, armed_q)
    active = b.or2(enable_pin, armed_q)
    return enable_pin, active


def trigger_plaintext(key: bytes, match_byte: int, match_value: int) -> bytes:
    """Plaintext that arms a Trojan's internal trigger on this *key*.

    After the initial AddRoundKey the state is ``pt XOR key``, so
    placing ``match_value`` at bytes ``match_byte..match_byte+3`` of
    ``pt XOR key`` fires the comparator one cycle after ``start``.
    """
    if len(key) != 16:
        raise TrojanError(f"key must be 16 bytes, got {len(key)}")
    if not 0 <= match_byte <= 12:
        raise TrojanError(f"match_byte must be in [0, 12], got {match_byte}")
    pattern = bytearray(16)
    for i in range(4):
        pattern[match_byte + i] = (match_value >> (8 * (3 - i))) & 0xFF
    return bytes(p ^ k for p, k in zip(pattern, key))
