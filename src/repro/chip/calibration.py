"""SNR-anchored noise calibration.

The paper never reports its bench's absolute noise levels — only the
resulting SNRs (Eqs. (2)/(3)): 29.976/17.483 dB in simulation and
30.5489/13.8684 dB on silicon.  Those four numbers are therefore the
only honest source for the four unknown noise magnitudes (two receivers
× two scenarios).  :func:`calibrate_scenario` measures each receiver's
noise-free signal RMS under the standard encryption workload and solves
for the additive white-noise RMS that reproduces the target SNR,
accounting for the idle-activity floor that contaminates the paper's
"chip powered but not encrypting" noise record.

Everything *else* the library reports — Euclidean separations,
histogram overlaps, spectral spots — is then a prediction of the
physical model, not a fit.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.chip.acquire import (
    AcquisitionEngine,
    EncryptionWorkload,
    IdleWorkload,
)
from repro.chip.chip import Chip
from repro.chip.scenario import Scenario
from repro.em.snr import rms
from repro.errors import MeasurementError

#: The paper's reported SNR values [dB], by scenario and receiver.
PAPER_SNR_TARGETS = {
    "simulation": {"sensor": 29.976, "probe": 17.483},
    "silicon": {"sensor": 30.5489, "probe": 13.8684},
}

#: Default key used for the calibration workload.
_CAL_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def calibrate_scenario(
    chip: Chip,
    scenario: Scenario,
    targets: dict[str, float] | None = None,
    n_cycles: int = 1024,
    batch: int = 8,
) -> Scenario:
    """Return a copy of *scenario* with noise overrides hitting *targets*.

    Parameters
    ----------
    chip:
        The chip whose signal levels anchor the calibration.
    scenario:
        Base scenario (process variation, attenuation, scope are kept).
    targets:
        Target SNR per receiver [dB]; defaults to the paper's values
        for the scenario's name.
    """
    if targets is None:
        try:
            targets = PAPER_SNR_TARGETS[scenario.name]
        except KeyError:
            raise MeasurementError(
                f"no default SNR targets for scenario {scenario.name!r}; "
                "pass targets explicitly"
            ) from None
    engine = AcquisitionEngine(chip, scenario)
    signal = engine.acquire(
        EncryptionWorkload(chip.aes, _CAL_KEY, period=12),
        n_cycles=n_cycles,
        batch=batch,
        include_noise=False,
        rng_role="calibration/signal",
    )
    idle = engine.acquire(
        IdleWorkload(),
        n_cycles=n_cycles,
        batch=batch,
        include_noise=False,
        rng_role="calibration/idle",
    )
    # Preserve any receiver overrides the scenario already carries and
    # is not being recalibrated for.
    overrides: list[tuple[str, float]] = [
        (name, rms)
        for name, rms in (scenario.noise_overrides or ())
        if name not in targets
    ]
    for name, target_db in targets.items():
        if name not in chip.receivers:
            raise MeasurementError(f"chip has no receiver {name!r}")
        sig = signal.traces[name]
        sig_rms = float(rms(sig - sig.mean()))
        idl = idle.traces[name]
        idle_rms = float(rms(idl - idl.mean()))
        want_noise_record = sig_rms / (10.0 ** (target_db / 20.0))
        add_sq = want_noise_record**2 - idle_rms**2
        if add_sq <= 0:
            raise MeasurementError(
                f"receiver {name!r}: idle-activity floor {idle_rms:.3e} V "
                f"already exceeds the noise record needed for "
                f"{target_db:.2f} dB ({want_noise_record:.3e} V)"
            )
        overrides.append((name, math.sqrt(add_sq)))
    return replace(scenario, noise_overrides=tuple(overrides))
