"""Trace acquisition: logic activity → receiver voltage waveforms.

:class:`AcquisitionEngine` runs a workload on the chip's compiled
netlist cycle by cycle, folds each cycle's toggle matrix into per-cycle
per-delay-bin amplitude frames (weights = EM coupling × switched
charge, optionally scattered by process variation), then synthesises
continuous-time receiver voltages by kernel convolution, adds noise and
applies the scenario's oscilloscope.

The engine is the simulated twin of the paper's measurement bench: one
call gives you what the scope stored for one campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property, lru_cache

import numpy as np

from scipy import signal as _signal

from repro.chip.chip import Chip, Receiver
from repro.chip.scenario import Scenario
from repro.crypto.encoding import random_blocks
from repro.em.noise import thermal_noise_rms, white_noise
from repro.errors import ExperimentError, MeasurementError
from repro.logic.activity import ActivityAccumulator
from repro.logic.simulator import (
    PackedState,
    lane_slices,
    resolve_backend,
    unpack_bits,
)
from repro.obs import active_metrics
from repro.power.pulse import (
    current_kernel,
    emf_kernel,
    step_kernel,
    synthesize_events,
)
from repro.rng import derive
from repro.trojans.base import TapMode
from repro.units import MHZ


#: Effective noise bandwidth of the acquisition front end [Hz] used for
#: the coil thermal-noise contribution (the bench chain band-limits
#: noise well below the raw sample rate).
NOISE_BANDWIDTH = 1.8 * MHZ

#: Relative VDD-rail current drawn by a *falling* output transition
#: (discharge mostly flows to VSS locally; rises pull the full packet
#: through the grid).  This rise/fall asymmetry is what puts odd
#: harmonics — e.g. Trojan 1's 750 kHz AM fundamental — into the field.
FALL_CURRENT_FRACTION = 0.35

#: Column budget of one blocked activity fold: the engine buffers
#: ``max(1, FOLD_BLOCK_COLS // batch)`` cycles of toggle data and folds
#: them through a single GEMM, bounding the float32 weight block at
#: roughly ``num_instances * FOLD_BLOCK_COLS * 4`` bytes (~36 MB on
#: the reference chip).  Measured on the reference chip, 256 columns
#: per fold beats 1024 by ~40 % per column (smaller resident block →
#: better cache behaviour for both the weight build and the GEMM).
FOLD_BLOCK_COLS = 256


@lru_cache(maxsize=16)
def _butter_lowpass(order: int, cutoff_frac: float):
    """Shared Butterworth design, keyed on ``(order, cutoff_frac)``.

    The probe-drift and coloured-noise paths redesign the identical
    filter for every receiver of every campaign; the coefficients only
    depend on the order and the normalised cutoff, so one design per
    (order, cutoff) serves the whole process.  The returned arrays are
    read-only — ``lfilter`` never mutates its coefficients.
    """
    b, a = _signal.butter(order, cutoff_frac)
    b.flags.writeable = False
    a.flags.writeable = False
    return b, a


class IdleWorkload:
    """Chip powered, clock running, no encryption (the paper's noise
    record: "the chip is powered up without executing the encryption")."""

    def begin(self, batch: int, rng: np.random.Generator) -> None:
        """No per-campaign state to set up."""

    def inputs(self, cycle: int, batch: int):
        """No stimulus on any cycle."""
        return None


class EncryptionWorkload:
    """Back-to-back AES encryptions of random plaintexts, fixed key.

    One encryption starts every *period* cycles (the AES takes 11, so
    the default 16 leaves a realistic idle gap).  Per batch column the
    plaintexts are independent; the key is shared, as on the bench.
    """

    def __init__(self, aes, key: bytes, period: int = 16) -> None:
        if period < aes.latency + 1:
            raise ExperimentError(
                f"period {period} shorter than AES latency {aes.latency} + 1"
            )
        if len(key) != 16:
            raise ExperimentError(f"key must be 16 bytes, got {len(key)}")
        self.aes = aes
        self.key = bytes(key)
        self.period = period
        self.plaintexts: list[np.ndarray] = []
        self._rng: np.random.Generator | None = None
        self._keys: np.ndarray | None = None

    def begin(self, batch: int, rng: np.random.Generator) -> None:
        """Reset per-campaign state (plaintext log, RNG, key tile)."""
        self.plaintexts = []
        self._rng = rng
        self._keys = np.tile(
            np.frombuffer(self.key, dtype=np.uint8), (batch, 1)
        )

    def inputs(self, cycle: int, batch: int):
        """Stimulus for *cycle*: start pulse + fresh plaintexts, or None."""
        if self._rng is None or self._keys is None:
            raise ExperimentError("workload used before begin() was called")
        phase = cycle % self.period
        if phase == 0:
            pts = random_blocks(self._rng, batch)
            self.plaintexts.append(pts)
            return self.aes.start_inputs(pts, self._keys)
        if phase == 1:
            return self.aes.idle_inputs(batch)
        return None


@dataclass(frozen=True)
class GroupMember:
    """One chip's campaign inside a lane-packed group acquisition.

    Fleet variants (golden vs T1–T4/A2) share one netlist and differ
    only in which Trojan enable pins are asserted and which RNG streams
    drive stimulus and noise — exactly the knobs this record carries.
    """

    #: Key of this member's entry in the :meth:`AcquisitionEngine.
    #: acquire_group` result dictionary.
    name: str
    #: Stimulus generator with ``begin(batch, rng)`` / ``inputs(cycle,
    #: batch)``; each member needs its own instance (workloads hold
    #: per-campaign state).
    workload: object
    #: This member's batch lanes within the shared words.
    batch: int
    trojan_enables: tuple[str, ...] = ()
    rng_role: str = "acquire"
    workload_role: str | None = None


class _GroupStimulus:
    """Column-concatenates the member workloads' per-cycle stimulus."""

    def __init__(self, members: tuple[GroupMember, ...]) -> None:
        self._members = members

    def inputs(self, cycle: int, batch: int):
        parts = [
            (m, m.workload.inputs(cycle, m.batch)) for m in self._members
        ]
        if all(p is None for _, p in parts):
            return None
        keys = next(set(p) for _, p in parts if p is not None)
        if any(p is None or set(p) != keys for _, p in parts):
            raise MeasurementError(
                "lane-group members must share stimulus cadence and "
                f"input pins at every cycle (cycle {cycle})"
            )
        merged: dict[str, np.ndarray] = {}
        for key in keys:
            cols = []
            for m, p in parts:
                arr = np.asarray(p[key], dtype=bool)
                if arr.ndim == 0:
                    arr = np.full(m.batch, bool(arr))
                cols.append(arr)
            merged[key] = np.concatenate(cols)
        return merged


@dataclass
class AcquisitionResult:
    """Traces plus the side information tests and demodulators need."""

    traces: dict[str, np.ndarray]  # receiver -> (batch, n_samples)
    fs: float
    n_cycles: int
    samples_per_cycle: int
    #: Recorded per-cycle net values: name -> (n_cycles + 1, batch);
    #: row 0 is the post-reset value.
    recorded: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_samples(self) -> int:
        return next(iter(self.traces.values())).shape[1]

    def stacked(self, names: "tuple[str, ...] | list[str]") -> np.ndarray:
        """Channel-stacked traces, shape ``(batch, len(names), n_samples)``.

        The multi-channel view a sensor-array consumer wants: pass a
        channel group (e.g. ``chip.receiver_groups["array"]``) to get
        every coil's trace from the one shared simulation pass.
        """
        if not names:
            raise MeasurementError("stacked() needs at least one receiver name")
        return np.stack([self.traces[name] for name in names], axis=1)

    @cached_property
    def time(self) -> np.ndarray:
        """Sample time axis [s] (built once, cached on the instance)."""
        return np.arange(self.n_samples) / self.fs


@lru_cache(maxsize=8)
def acquisition_engine(chip: Chip, scenario: Scenario) -> "AcquisitionEngine":
    """Memoised :class:`AcquisitionEngine` for (chip, scenario).

    Engine construction folds the per-cell coupling/charge weights for
    every receiver — work that is identical for every campaign on the
    same chip and scenario, so the collectors in
    :mod:`repro.experiments.campaign` all funnel through this cache.
    The engine itself is stateless across :meth:`~AcquisitionEngine.
    acquire` calls (each derives fresh RNG streams), so sharing one
    instance is observationally identical to building it per campaign.
    """
    return AcquisitionEngine(chip, scenario)


class AcquisitionEngine:
    """Measurement bench for one chip under one scenario."""

    def __init__(self, chip: Chip, scenario: Scenario) -> None:
        self.chip = chip
        self.scenario = scenario
        scale = scenario.cell_charge_scale(
            chip.sim.num_instances, chip.seed
        )
        if scale is None:
            scale = np.ones(chip.sim.num_instances)
        self._charge_scale = scale
        # Per-receiver event weights.
        self._w_data: dict[str, np.ndarray] = {}
        self._w_clock_seq: dict[str, np.ndarray] = {}
        for name, rcv in chip.receivers.items():
            w = rcv.cell_coupling * chip.q_switch * scale
            self._w_data[name] = w
            w_clk = rcv.cell_coupling * chip.q_clock * scale
            self._w_clock_seq[name] = w_clk[chip.sim.seq_instance_idx]

    # ------------------------------------------------------------------
    def acquire(
        self,
        workload,
        n_cycles: int,
        batch: int = 1,
        trojan_enables: tuple[str, ...] = (),
        record_nets: dict[str, str] | None = None,
        receivers: tuple[str, ...] | None = None,
        include_noise: bool = True,
        rng_role: str = "acquire",
        workload_role: str | None = None,
        reference_fold: bool = False,
    ) -> AcquisitionResult:
        """Run *workload* for *n_cycles* and return receiver traces.

        Parameters
        ----------
        workload:
            Object with ``begin(batch, rng)`` and ``inputs(cycle, batch)``.
        n_cycles:
            Clock cycles to simulate.
        batch:
            Independent traces acquired in parallel.
        trojan_enables:
            Trojan names whose external enable pin is asserted
            throughout the campaign.
        record_nets:
            Extra nets to log per cycle, as ``{label: net_name}``.
        receivers:
            Receiver subset (default: all of the chip's receivers).
        include_noise:
            Add environment/thermal noise (switch off to study the pure
            signal path, e.g. for coupling ablations).
        rng_role:
            Label decorrelating this campaign's random streams from
            other campaigns on the same chip/scenario.
        workload_role:
            Label seeding the workload's stimulus stream.  Defaults to
            *rng_role*; pass the same value across two campaigns to
            replay the identical plaintext sequence (the paper's
            golden-vs-Trojan spectra compare "the same operation").
        reference_fold:
            Run the retained pre-bit-slicing loop instead: bool
            backend, per-cycle float64 activity fold.  Kept as the
            numerical baseline the blocked float32 fold is benchmarked
            and regression-tested against (agreement is ~1e-5 relative,
            the float32 fold's rounding over ~35 k-term sums).

        The cycle loop runs on the backend :func:`repro.logic.
        simulator.resolve_backend` picks for *batch* (``packed`` from
        64 up, overridable via ``REPRO_SIM_BACKEND``); both backends
        share one blocked float32 fold and produce bit-identical
        traces, toggles and recorded nets for the same RNG streams.
        """
        chip = self.chip
        cfg = chip.config
        sim = chip.sim
        if n_cycles <= 0:
            raise MeasurementError(f"n_cycles must be positive, got {n_cycles}")
        names = receivers if receivers is not None else tuple(chip.receivers)
        for name in names:
            if name not in chip.receivers:
                raise MeasurementError(f"unknown receiver {name!r}")

        rng = derive(chip.seed ^ self.scenario.seed, f"{rng_role}/{self.scenario.name}")
        wl_role = workload_role if workload_role is not None else rng_role
        workload.begin(batch, derive(chip.seed, f"{wl_role}/workload"))

        enable_inputs = {}
        for tr_name in trojan_enables:
            if tr_name not in chip.trojans:
                raise MeasurementError(
                    f"chip has no trojan {tr_name!r}; present: "
                    f"{sorted(chip.trojans)}"
                )
            enable_inputs[chip.trojans[tr_name].enable_pin] = np.ones(
                batch, dtype=bool
            )
        # Deassert enables of all other embedded Trojans explicitly.
        for tr_name, tr in chip.trojans.items():
            if tr_name not in trojan_enables:
                enable_inputs[tr.enable_pin] = np.zeros(batch, dtype=bool)

        first_inputs = dict(enable_inputs)
        wl0 = workload.inputs(0, batch)
        if wl0:
            first_inputs.update(wl0)
        backend = "bool" if reference_fold else resolve_backend(batch)
        state = sim.reset(batch=batch, inputs=first_inputs, backend=backend)

        levels = sim.instance_levels
        fold_dtype = np.float64 if reference_fold else np.float32
        accumulators = {
            name: ActivityAccumulator(
                self._w_data[name], levels, dtype=fold_dtype
            )
            for name in names
        }
        acc_list = list(accumulators.values())
        watch: dict[str, str] = dict(record_nets or {})
        for i, tap in enumerate(chip.taps):
            watch[f"__tap{i}_net"] = tap.net
            if tap.gate_by is not None:
                watch[f"__tap{i}_gate"] = tap.gate_by
        watch_labels = list(watch)
        watch_idx = np.array(
            [sim.net_index[net] for net in watch.values()], dtype=np.int64
        )

        # Per-stage observability: which backend ran, and how long the
        # cycle loop took, land in the active metrics registry (and so
        # in every saved RunResult artifact).
        metrics = active_metrics()
        metrics.counter(f"sim.backend.{backend}").inc()
        metrics.counter("acquire.cycles").inc(n_cycles * batch)

        run = self._run_cycles_reference if reference_fold else (
            self._run_cycles_blocked
        )
        with metrics.time("stage.sim_cycles.seconds"):
            clock_en, rec_full = run(
                state, workload, n_cycles, batch, acc_list, watch_idx
            )

        n_samples = (n_cycles + 1) * cfg.samples_per_cycle
        rec_arrays = {
            label: rec_full[:, j] for j, label in enumerate(watch_labels)
        }

        traces: dict[str, np.ndarray] = {}
        with metrics.time("stage.synthesize.seconds"):
            for name in names:
                traces[name] = self._synthesize_receiver(
                    name,
                    accumulators[name].result(),
                    clock_en,
                    rec_arrays,
                    n_cycles,
                    n_samples,
                    batch,
                    include_noise,
                    self._channel_rng(name, rng, rng_role),
                )
        public_recorded = {
            label: arr
            for label, arr in rec_arrays.items()
            if not label.startswith("__tap")
        }
        return AcquisitionResult(
            traces=traces,
            fs=cfg.fs,
            n_cycles=n_cycles,
            samples_per_cycle=cfg.samples_per_cycle,
            recorded=public_recorded,
        )

    # ------------------------------------------------------------------
    def acquire_group(
        self,
        members,
        n_cycles: int,
        record_nets: dict[str, str] | None = None,
        receivers: tuple[str, ...] | None = None,
        include_noise: bool = True,
        backend: str | None = None,
    ) -> dict[str, AcquisitionResult]:
        """Acquire several same-netlist campaigns in one packed pass.

        Fleet chips instantiated from one netlist (golden vs the
        Trojan variants, which differ only in which enable pin is
        asserted) run the **same** compiled stepping kernel; packing
        each member's batch columns into the shared uint64 lane words
        amortises the per-cycle gather/scatter and the blocked activity
        fold across the whole group — one stepping pass and one fold
        GEMM per block instead of one per chip.

        Every per-member random stream (stimulus, noise, scope) is
        derived exactly as a solo :meth:`acquire` call with the same
        roles would derive it, and synthesis runs per member on its own
        lane slice, so each member's result matches its solo
        acquisition; only the logic/fold compute layout changes.  The
        fleet's streaming ingest leans on this: one lane-packed pass
        per campaign *chunk* (members carrying per-chunk ``rng_role``
        values — :func:`repro.fleet.producer.chunk_role`) is bitwise
        equal to the solo per-chunk campaigns the replay path
        prematerialises, which is what makes ``--ingest=stream``
        byte-identical to replay.

        Parameters
        ----------
        members:
            Sequence of :class:`GroupMember`; names must be unique and
            workload instances distinct (workloads hold per-campaign
            state).
        n_cycles, record_nets, receivers, include_noise:
            As in :meth:`acquire`, shared by the whole group.
        backend:
            Backend override; default defers to :func:`repro.logic.
            simulator.resolve_backend` for the *combined* batch, so a
            group of small batches still reaches the packed kernel.

        Returns
        -------
        dict
            ``{member.name: AcquisitionResult}`` in member order.
        """
        chip = self.chip
        cfg = chip.config
        sim = chip.sim
        members = tuple(members)
        if not members:
            raise MeasurementError("acquire_group needs at least one member")
        if len({m.name for m in members}) != len(members):
            raise MeasurementError("group member names must be unique")
        if len({id(m.workload) for m in members}) != len(members):
            raise MeasurementError(
                "group members must not share workload instances "
                "(workloads hold per-campaign state)"
            )
        if n_cycles <= 0:
            raise MeasurementError(f"n_cycles must be positive, got {n_cycles}")
        names = receivers if receivers is not None else tuple(chip.receivers)
        for name in names:
            if name not in chip.receivers:
                raise MeasurementError(f"unknown receiver {name!r}")
        for m in members:
            for tr_name in m.trojan_enables:
                if tr_name not in chip.trojans:
                    raise MeasurementError(
                        f"chip has no trojan {tr_name!r}; present: "
                        f"{sorted(chip.trojans)}"
                    )
        slices = lane_slices([m.batch for m in members])
        total = slices[-1].stop

        # Identical RNG derivations to solo acquire() calls with the
        # same roles — lane packing changes the compute layout only.
        rngs = []
        for m in members:
            rngs.append(
                derive(
                    chip.seed ^ self.scenario.seed,
                    f"{m.rng_role}/{self.scenario.name}",
                )
            )
            wl_role = (
                m.workload_role if m.workload_role is not None else m.rng_role
            )
            m.workload.begin(
                m.batch, derive(chip.seed, f"{wl_role}/workload")
            )

        # Per-lane Trojan enables: each pin is asserted exactly on the
        # lanes of the members that enable it, deasserted elsewhere.
        enable_inputs = {}
        for tr_name, tr in chip.trojans.items():
            lanes = np.zeros(total, dtype=bool)
            for m, sl in zip(members, slices):
                if tr_name in m.trojan_enables:
                    lanes[sl] = True
            enable_inputs[tr.enable_pin] = lanes

        stimulus = _GroupStimulus(members)
        first_inputs = dict(enable_inputs)
        wl0 = stimulus.inputs(0, total)
        if wl0:
            first_inputs.update(wl0)
        resolved = resolve_backend(total, backend)
        state = sim.reset(batch=total, inputs=first_inputs, backend=resolved)

        levels = sim.instance_levels
        accumulators = {
            name: ActivityAccumulator(
                self._w_data[name], levels, dtype=np.float32
            )
            for name in names
        }
        acc_list = list(accumulators.values())
        watch: dict[str, str] = dict(record_nets or {})
        for i, tap in enumerate(chip.taps):
            watch[f"__tap{i}_net"] = tap.net
            if tap.gate_by is not None:
                watch[f"__tap{i}_gate"] = tap.gate_by
        watch_labels = list(watch)
        watch_idx = np.array(
            [sim.net_index[net] for net in watch.values()], dtype=np.int64
        )

        metrics = active_metrics()
        metrics.counter(f"sim.backend.{resolved}").inc()
        metrics.counter("acquire.cycles").inc(n_cycles * total)
        metrics.counter("acquire.group.chips").inc(len(members))
        metrics.counter("acquire.group.lanes").inc(total)

        with metrics.time("stage.sim_cycles.seconds"):
            clock_en, rec_full = self._run_cycles_blocked(
                state, stimulus, n_cycles, total, acc_list, watch_idx
            )

        n_samples = (n_cycles + 1) * cfg.samples_per_cycle
        folded = {name: accumulators[name].result() for name in names}

        results: dict[str, AcquisitionResult] = {}
        with metrics.time("stage.synthesize.seconds"):
            for m, sl, rng in zip(members, slices, rngs):
                rec_arrays = {
                    label: np.ascontiguousarray(rec_full[:, j, sl])
                    for j, label in enumerate(watch_labels)
                }
                member_clock = np.ascontiguousarray(clock_en[:, :, sl])
                traces: dict[str, np.ndarray] = {}
                for name in names:
                    traces[name] = self._synthesize_receiver(
                        name,
                        np.ascontiguousarray(folded[name][:, :, sl]),
                        member_clock,
                        rec_arrays,
                        n_cycles,
                        n_samples,
                        m.batch,
                        include_noise,
                        self._channel_rng(name, rng, m.rng_role),
                    )
                results[m.name] = AcquisitionResult(
                    traces=traces,
                    fs=cfg.fs,
                    n_cycles=n_cycles,
                    samples_per_cycle=cfg.samples_per_cycle,
                    recorded={
                        label: arr
                        for label, arr in rec_arrays.items()
                        if not label.startswith("__tap")
                    },
                )
        return results

    # ------------------------------------------------------------------
    def _channel_rng(
        self, name: str, shared: np.random.Generator, rng_role: str
    ) -> np.random.Generator:
        """Noise/scope stream for receiver *name*.

        Standalone receivers (``sensor``/``probe``/``power``) keep the
        legacy behaviour: one stream per campaign, consumed in receiver
        order — changing that would change every archived single-coil
        trace bit pattern.  Channel-group members instead derive an
        independent stream keyed by the channel name, so acquiring any
        subset of an array's coils yields bitwise the same samples per
        coil as acquiring them all (or each solo).
        """
        if self.chip.receivers[name].group is None:
            return shared
        return derive(
            self.chip.seed ^ self.scenario.seed,
            f"{rng_role}/{self.scenario.name}/{name}",
        )

    # ------------------------------------------------------------------
    def _run_cycles_blocked(
        self,
        state,
        workload,
        n_cycles: int,
        batch: int,
        acc_list: list[ActivityAccumulator],
        watch_idx: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cycle loop with a blocked float32 activity fold.

        Buffers up to ``FOLD_BLOCK_COLS // batch`` cycles of toggle
        data, then folds the whole block through one stacked GEMM.  The
        bool and packed backends fill byte-for-byte identical weight
        blocks (``toggled-and-fell * FALL_CURRENT_FRACTION + rising``)
        and issue identical BLAS calls, so their folded frames — and
        therefore the traces — are bit-identical by construction, not
        by floating-point luck.

        Returns ``(clock_en, recorded)`` as bool arrays of shapes
        ``(n_cycles, n_seq, batch)`` and
        ``(n_cycles + 1, len(watch_idx), batch)``.
        """
        sim = self.chip.sim
        n_inst = sim.num_instances
        n_seq = sim.seq_instance_idx.size
        packed = isinstance(state, PackedState)
        block = max(1, min(n_cycles, FOLD_BLOCK_COLS // batch))
        w_block = np.empty((n_inst, block * batch), dtype=np.float32)
        fall = np.float32(FALL_CURRENT_FRACTION)
        if packed:
            nwords = state.nwords
            tog_words = np.empty((block, n_inst, nwords), dtype=np.uint64)
            ris_words = np.empty_like(tog_words)
            clock_en_words = np.empty(
                (n_cycles, n_seq, nwords), dtype=np.uint64
            )
            rec_words = np.empty(
                (n_cycles + 1, watch_idx.size, nwords), dtype=np.uint64
            )
            if watch_idx.size:
                rec_words[0] = state.words[watch_idx]
        else:
            s_block = np.empty((n_inst, block * batch), dtype=bool)
            r_block = np.empty((n_inst, block * batch), dtype=bool)
            clock_en = np.empty((n_cycles, n_seq, batch), dtype=bool)
            rec_buf = np.empty(
                (n_cycles + 1, watch_idx.size, batch), dtype=bool
            )
            if watch_idx.size:
                rec_buf[0] = state.values[watch_idx]

        def flush(c: int) -> None:
            if packed:
                tog = tog_words[:c].transpose(1, 0, 2)
                ris = ris_words[:c].transpose(1, 0, 2)
                # s = toggled-and-fell, r = rising: disjoint masks, so
                # the weight block is exactly s*0.35 + r*1.0 per lane.
                s_bits = np.ascontiguousarray(
                    unpack_bits(tog ^ ris, batch)
                ).reshape(n_inst, c * batch)
                r_bits = np.ascontiguousarray(
                    unpack_bits(ris, batch)
                ).reshape(n_inst, c * batch)
            else:
                s_bits = s_block[:, : c * batch]
                r_bits = r_block[:, : c * batch]
            wv = w_block[:, : c * batch]
            np.multiply(s_bits, fall, out=wv)
            np.add(wv, r_bits, out=wv)
            ActivityAccumulator.record_all_blocks(acc_list, wv, c, batch)

        fill = 0
        for k in range(1, n_cycles + 1):
            if packed:
                clock_en_words[k - 1] = sim.clock_enable_values(state)
                toggles = sim.step(state, workload.inputs(k, batch))
                tog_words[fill] = toggles
                np.bitwise_and(
                    toggles, sim.output_values(state), out=ris_words[fill]
                )
                if watch_idx.size:
                    rec_words[k] = state.words[watch_idx]
            else:
                clock_en[k - 1] = sim.clock_enable_values(state)
                toggles = sim.step(state, workload.inputs(k, batch))
                rising = toggles & sim.output_values(state)
                off = fill * batch
                np.logical_xor(
                    toggles, rising, out=s_block[:, off : off + batch]
                )
                r_block[:, off : off + batch] = rising
                if watch_idx.size:
                    rec_buf[k] = state.values[watch_idx]
            fill += 1
            if fill == block:
                flush(fill)
                fill = 0
        if fill:
            flush(fill)

        if packed:
            clock_en = np.ascontiguousarray(
                unpack_bits(clock_en_words, batch)
            )
            rec_buf = np.ascontiguousarray(unpack_bits(rec_words, batch))
        return clock_en, rec_buf

    def _run_cycles_reference(
        self,
        state,
        workload,
        n_cycles: int,
        batch: int,
        acc_list: list[ActivityAccumulator],
        watch_idx: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Retained pre-bit-slicing cycle loop (per-cycle float64 fold).

        The baseline implementation the blocked fold is benchmarked
        against, same idiom as the loop references in ``repro.em``.
        """
        sim = self.chip.sim
        n_seq = sim.seq_instance_idx.size
        clock_en = np.empty((n_cycles, n_seq, batch), dtype=bool)
        rec_buf = np.empty((n_cycles + 1, watch_idx.size, batch), dtype=bool)
        if watch_idx.size:
            rec_buf[0] = state.values[watch_idx]
        for k in range(1, n_cycles + 1):
            clock_en[k - 1] = sim.clock_enable_values(state)
            toggles = sim.step(state, workload.inputs(k, batch))
            rising = toggles & sim.output_values(state)
            weighted = toggles * FALL_CURRENT_FRACTION + rising * (
                1.0 - FALL_CURRENT_FRACTION
            )
            ActivityAccumulator.record_all(acc_list, weighted)
            if watch_idx.size:
                rec_buf[k] = state.values[watch_idx]
        return clock_en, rec_buf

    # ------------------------------------------------------------------
    def _synthesize_receiver(
        self,
        name: str,
        data_amps: np.ndarray,  # (cycles, bins, batch)
        clock_en: np.ndarray,  # (cycles, n_seq, batch)
        recorded: dict[str, np.ndarray],
        n_cycles: int,
        n_samples: int,
        batch: int,
        include_noise: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        chip = self.chip
        cfg = chip.config
        rcv = chip.receivers[name]
        t_clk = cfg.t_clk

        n_bins = data_amps.shape[1]
        edge_times = (np.arange(n_cycles) + 1) * t_clk

        # Data events: cycle edge + per-level stagger.
        data_times = (
            edge_times[:, None] + (np.arange(n_bins) * cfg.gate_delay)[None, :]
        ).reshape(-1)
        data_flat = data_amps.reshape(n_cycles * n_bins, batch)

        # Clock events at the edges proper.
        w_clk = self._w_clock_seq[name]
        clock_amps = np.einsum("s,csb->cb", w_clk, clock_en)

        times = np.concatenate([data_times, edge_times])
        amps = np.concatenate([data_flat, clock_amps], axis=0)
        if rcv.sense == "current":
            # A shunt monitor sees the current pulses themselves.
            kern = current_kernel(cfg.fs, cfg.pulse_width)
        else:
            kern = emf_kernel(cfg.fs, cfg.pulse_width)
        wave = synthesize_events(times, amps, kern, n_samples, cfg.fs)

        # Analog taps.
        for i, tap in enumerate(chip.taps):
            coupling = rcv.tap_coupling[i]
            vals = recorded[f"__tap{i}_net"].astype(np.float64)
            if tap.gate_by is not None:
                vals = vals * recorded[f"__tap{i}_gate"]
            if tap.mode in (TapMode.PULSE_ON_TOGGLE, TapMode.PULSE_ON_RISE):
                deltas = np.diff(recorded[f"__tap{i}_net"].astype(np.int8), axis=0)
                if tap.mode is TapMode.PULSE_ON_RISE:
                    events = (deltas > 0).astype(np.float64)
                else:
                    events = np.abs(deltas).astype(np.float64)
                if tap.gate_by is not None:
                    events = events * recorded[f"__tap{i}_gate"][1:]
                amps_tap = coupling * tap.amplitude * events
                wave += synthesize_events(
                    edge_times, amps_tap, kern, n_samples, cfg.fs
                )
            else:
                level = vals if tap.mode is TapMode.CURRENT_WHEN_HIGH else (
                    (1.0 - recorded[f"__tap{i}_net"].astype(np.float64))
                )
                if tap.mode is TapMode.CURRENT_WHEN_LOW and tap.gate_by is not None:
                    level = level * recorded[f"__tap{i}_gate"]
                if rcv.sense == "current":
                    # The shunt sees the static level itself: a box
                    # waveform, amp x level, held for each cycle.
                    spc = cfg.samples_per_cycle
                    box = np.repeat(level.T, spc, axis=1)
                    box = box[:, : n_samples - spc]
                    pad = np.zeros((box.shape[0], n_samples - box.shape[1]))
                    wave += coupling * tap.amplitude * np.concatenate(
                        [box, pad], axis=1
                    )
                else:
                    delta = np.diff(level, axis=0)  # transitions at edges
                    amps_tap = coupling * tap.amplitude * delta
                    s_kern = step_kernel(cfg.fs, tap.rise_time)
                    wave += synthesize_events(
                        edge_times, amps_tap, s_kern, n_samples, cfg.fs
                    )

        if rcv.external:
            wave = wave * self.scenario.probe_attenuation
            # Positional drift distorts the *signal* path (it scales
            # with the signal), so it applies regardless of the
            # additive-noise switch — the SNR calibration must see it
            # in the signal record exactly as a real bench would.
            drift = self.scenario.probe_drift_fraction
            if drift > 0:
                wave = wave + self._probe_drift(wave, drift, rng)

        if include_noise:
            override = self.scenario.noise_override_for(name)
            if override is not None:
                total_rms = float(override)
            else:
                env_rms = self.scenario.env_noise.emf_rms(rcv.effective_area)
                if rcv.external:
                    env_rms *= self.scenario.probe_env_factor
                th_rms = thermal_noise_rms(rcv.resistance, NOISE_BANDWIDTH)
                total_rms = float(np.hypot(env_rms, th_rms))
            wave = wave + self._noise_for(rcv, wave.shape, total_rms, rng)

        scope = self.scenario.oscilloscope
        if scope is not None:
            wave = scope.digitize(wave, cfg.fs, rng)
        return wave

    def _probe_drift(
        self,
        wave: np.ndarray,
        fraction: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-trace smooth shape distortion of the external probe.

        Each batch row gets an independent band-limited (< ~2 MHz)
        random component whose RMS is *fraction* of that row's signal
        RMS — the trace-to-trace signature of probe repositioning.
        Proportional to the signal, it contributes almost nothing to
        the idle noise record, so the record-level SNR calibration is
        unaffected.
        """
        nyq = 0.5 * self.chip.config.fs
        b, a = _butter_lowpass(2, min(2e6 / nyq, 0.99))
        raw = rng.normal(size=wave.shape)
        smooth = _signal.lfilter(b, a, raw, axis=-1)
        row_rms = np.sqrt(np.mean(smooth**2, axis=-1, keepdims=True))
        row_rms[row_rms == 0] = 1.0
        target = fraction * np.sqrt(
            np.mean(wave**2, axis=-1, keepdims=True)
        )
        return smooth * (target / row_rms)

    def _noise_for(
        self,
        rcv: Receiver,
        shape: tuple[int, ...],
        total_rms: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Receiver noise record with the right spectral colour.

        The sensor's floor is white (coil thermal noise).  The external
        probe's floor is dominated by bench EMI concentrated below
        :data:`~repro.chip.scenario.PROBE_INBAND_CUTOFF`; the coloured
        part is synthesised by low-passing white noise and rescaling,
        so the record-level RMS still equals *total_rms* exactly as the
        SNR calibration assumes.
        """
        from repro.chip.scenario import PROBE_INBAND_CUTOFF

        frac = self.scenario.probe_inband_fraction if rcv.external else 0.0
        if total_rms == 0.0:
            return np.zeros(shape)
        if frac <= 0.0:
            return white_noise(rng, shape, total_rms)
        inband_rms = float(np.sqrt(frac)) * total_rms
        broad_rms = float(np.sqrt(max(0.0, 1.0 - frac))) * total_rms
        noise = white_noise(rng, shape, broad_rms)
        raw = rng.normal(size=shape)
        nyq = 0.5 * self.chip.config.fs
        b, a = _butter_lowpass(3, min(PROBE_INBAND_CUTOFF / nyq, 0.99))
        coloured = _signal.lfilter(b, a, raw, axis=-1)
        c_rms = float(np.sqrt(np.mean(coloured**2)))
        if c_rms > 0:
            noise = noise + coloured * (inband_rms / c_rms)
        return noise
