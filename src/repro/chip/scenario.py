"""Measurement scenarios: ideal simulation vs fabricated silicon.

The paper evaluates twice — Section IV by layout-level EM simulation
and Section V on fabricated chips — and the differences between the two
sets of numbers come entirely from measurement reality.  A
:class:`Scenario` packages those differences:

* **simulation**: no process variation, mild white environment noise,
  ideal acquisition;
* **silicon**: per-cell process variation (lognormal drive/cap
  scatter), stronger ambient noise, packaging attenuation on the
  external probe path (the on-chip sensor, being inside the package,
  is unaffected), and an oscilloscope front end.

Noise levels are stated as ambient dB/dt densities; each receiver
converts them through its own effective area, which is what reproduces
the paper's asymmetric SNR outcome (the probe degrades from 17.5 dB to
13.9 dB on silicon while the sensor holds around 30 dB).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chip.oscilloscope import Oscilloscope
from repro.em.noise import EnvironmentNoise
from repro.rng import derive

#: Upper edge of the probe's coloured (EMI) noise band [Hz].
PROBE_INBAND_CUTOFF = 100e6


@dataclass(frozen=True)
class Scenario:
    """One measurement context."""

    name: str
    env_noise: EnvironmentNoise
    #: Lognormal sigma of per-cell switching-charge scatter (0 = ideal).
    process_sigma: float = 0.0
    #: Amplitude factor applied to the external probe's *signal* path
    #: (package lid / bond-wire shadowing); 1.0 = unattenuated.
    probe_attenuation: float = 1.0
    #: Extra multiplicative factor on the probe's environment-noise
    #: pickup (bench cabling and lab ambience; the on-chip sensor's
    #: pickup is fixed by its area alone).
    probe_env_factor: float = 1.0
    oscilloscope: Oscilloscope | None = None
    seed: int = 0
    #: Fraction of the external probe's noise *power* concentrated
    #: below :data:`PROBE_INBAND_CUTOFF` (bench EMI: mains harmonics,
    #: radio, switching supplies).  The on-chip sensor's floor is
    #: genuinely white (thermal), so this colouring is what makes probe
    #: trace shapes wander far more than sensor shapes at equal
    #: record-level SNR — the effect behind Fig. 6's probe-vs-sensor
    #: separability gap.
    probe_inband_fraction: float = 1.0
    #: Per-trace positional-drift noise of the hand-positioned probe,
    #: as a fraction of the probe's signal RMS.  Re-seating/standoff
    #: wobble re-weights which die regions the probe sees, distorting
    #: the trace *shape* in proportion to the signal — variance the
    #: wire-bonded on-chip sensor simply does not have.  This is the
    #: dominant reason the paper's probe histograms (Fig. 6a-d) smear
    #: while the record-level SNR still reads 13.9 dB.
    probe_drift_fraction: float = 0.0
    #: Absolute receiver noise RMS overrides [V], keyed by receiver
    #: name.  When set for a receiver, the engine adds exactly this
    #: much white noise instead of deriving it from the environment /
    #: thermal models — used by the SNR auto-calibration, which anchors
    #: the unknowable bench noise magnitudes to the paper's reported
    #: SNR figures.
    noise_overrides: tuple[tuple[str, float], ...] | None = None

    def noise_override_for(self, receiver: str) -> float | None:
        """Absolute noise RMS override for *receiver*, if any."""
        if self.noise_overrides is None:
            return None
        for name, rms in self.noise_overrides:
            if name == receiver:
                return rms
        return None

    def cell_charge_scale(
        self, n_cells: int, chip_seed: int
    ) -> np.ndarray | None:
        """Per-cell process-variation factors (None when ideal)."""
        if self.process_sigma <= 0.0:
            return None
        rng = derive(chip_seed ^ self.seed, f"process/{self.name}")
        return rng.lognormal(0.0, self.process_sigma, size=n_cells)


#: Ambient dB/dt RMS used for Section IV-style simulations [T/s].
#: Calibrated so the *probe* (whose noise floor is its large-area
#: ambient pickup) lands near the paper's 17.5 dB; the sensor's floor
#: is its own trace thermal noise, landing it near 30 dB.
SIMULATION_B_DOT_RMS = 2.9e-2

#: Ambient dB/dt RMS on the lab bench (Section V) [T/s].
SILICON_B_DOT_RMS = 3.2e-2


def simulation_scenario(seed: int = 0) -> Scenario:
    """Section IV: layout-level EM simulation with white noise added."""
    return Scenario(
        name="simulation",
        env_noise=EnvironmentNoise(SIMULATION_B_DOT_RMS),
        process_sigma=0.0,
        probe_attenuation=1.0,
        probe_env_factor=1.0,
        oscilloscope=None,
        seed=seed,
    )


def array_scenario(rows: int = 4, cols: int = 4, seed: int = 0) -> Scenario:
    """Sensor-array localization runs: simulation-grade acquisition.

    The array follow-up (programmable coil grid) is evaluated in the
    same layout-level simulation regime as Section IV — no process
    variation, white ambient noise — but the scenario *name* carries
    the grid dimensions so trace-cache keys and RNG streams for
    different array shapes can never collide.  The matching chip build
    is ``ChipConfig(sensor_array_rows=rows, sensor_array_cols=cols)``.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"array scenario needs rows, cols >= 1, got {rows}x{cols}")
    return Scenario(
        name=f"array{rows}x{cols}",
        env_noise=EnvironmentNoise(SIMULATION_B_DOT_RMS),
        process_sigma=0.0,
        probe_attenuation=1.0,
        probe_env_factor=1.0,
        oscilloscope=None,
        seed=seed,
    )


def silicon_scenario(seed: int = 0) -> Scenario:
    """Section V: fabricated chip on the bench, measured by a scope."""
    return Scenario(
        name="silicon",
        env_noise=EnvironmentNoise(SILICON_B_DOT_RMS),
        process_sigma=0.08,
        probe_attenuation=0.66,
        probe_env_factor=1.0,
        probe_drift_fraction=0.8,
        oscilloscope=Oscilloscope(),
        seed=seed,
    )
