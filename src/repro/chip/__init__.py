"""Chip integration: the fabricated test chip as one object.

:class:`~repro.chip.chip.Chip` assembles everything — netlist (AES +
Trojans), placement, power grid, on-chip sensor, external probe and the
per-cell EM coupling weights — and
:class:`~repro.chip.acquire.AcquisitionEngine` turns logic activity
into receiver voltage traces under a measurement
:class:`~repro.chip.scenario.Scenario` (ideal simulation vs fabricated
silicon with process variation, packaging and an oscilloscope).
"""

from repro.chip.config import ChipConfig
from repro.chip.scenario import (
    Scenario,
    array_scenario,
    silicon_scenario,
    simulation_scenario,
)
from repro.chip.oscilloscope import Oscilloscope
from repro.chip.chip import Chip, Receiver, build_protected_chip
from repro.chip.acquire import (
    AcquisitionEngine,
    EncryptionWorkload,
    GroupMember,
    IdleWorkload,
)

__all__ = [
    "ChipConfig",
    "Scenario",
    "array_scenario",
    "silicon_scenario",
    "simulation_scenario",
    "Oscilloscope",
    "Chip",
    "Receiver",
    "build_protected_chip",
    "AcquisitionEngine",
    "EncryptionWorkload",
    "GroupMember",
    "IdleWorkload",
]
